// Command segbench regenerates Table 1 of the paper: segmentation
// performance (COCO mAP and mAR) of DocParse against Amazon Textract,
// Unstructured, and Azure Document Intelligence on the synthetic
// DocLayNet-style benchmark corpus.
//
// Usage:
//
//	segbench                  # default: 100 documents, seed 11
//	segbench -docs 200 -seed 3 -per-class
package main

import (
	"flag"
	"fmt"

	"aryn/internal/layout"
)

func main() {
	var (
		nDocs    = flag.Int("docs", 100, "benchmark corpus size (documents)")
		seed     = flag.Int64("seed", 11, "corpus and model seed")
		perClass = flag.Bool("per-class", false, "print per-class AP/AR breakdowns")
	)
	flag.Parse()

	corpus := layout.GenerateCorpus(*nDocs, *seed)
	fmt.Printf("benchmark corpus: %d documents, %d pages, %d ground-truth regions\n\n",
		len(corpus.Docs), corpus.Pages(), len(corpus.GroundTruths()))

	var results []layout.ServiceResult
	for _, seg := range layout.Table1Services(*seed + 1) {
		res := layout.EvaluateSegmenter(corpus, seg)
		results = append(results, layout.ServiceResult{Service: seg.Name(), Result: res})
		if *perClass {
			fmt.Printf("== %s ==\n%s\n", seg.Name(), res.ClassTable())
		}
	}
	fmt.Println("Table 1 — segmentation performance on the DocLayNet-style benchmark:")
	fmt.Print(layout.FormatTable1(results))
	fmt.Println("\npaper reference: DocParse 0.640/0.747, Textract 0.423/0.507,")
	fmt.Println("Unstructured 0.347/0.505, Azure 0.266/0.475")
}
