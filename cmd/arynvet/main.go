// Command arynvet is the repository's custom static-analysis suite,
// run as a vet tool:
//
//	go vet -vettool=$(make -s arynvet-bin) ./...
//
// It machine-enforces the invariants the compiler cannot see and tests
// only probabilistically catch: byte-reproducible plan execution
// (determinism), compute-only critical sections (lockheld), cancelable
// request paths (ctxflow), the frozen /v1 wire contract (wirestable),
// and single-point SSE emission (sseorder). docs/static-analysis.md
// documents each invariant and the //lint:allow suppression policy;
// `make vet-custom` is the entry point and part of `make ci`.
package main

import (
	"aryn/internal/analysis/registry"
	"aryn/internal/analysis/unit"
)

func main() {
	unit.Main(registry.All()...)
}
