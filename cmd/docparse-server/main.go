// Command docparse-server runs DocParse as the REST service of §4: POST a
// raw document to /v1/document/partition and receive the labeled chunks
// as JSON (or Markdown / an element listing via ?format=).
//
// Usage:
//
//	docparse-server -addr :8087
//	curl -s --data-binary @report.rawdoc 'localhost:8087/v1/document/partition?format=markdown'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"aryn/internal/docparse"
	"aryn/internal/vision"
)

func main() {
	var (
		addr    = flag.String("addr", ":8087", "listen address")
		seed    = flag.Int64("seed", 1, "model seed")
		service = flag.String("service", "docparse", "segmentation service: docparse|textract|unstructured|azure")
	)
	flag.Parse()

	var opts []docparse.Option
	switch *service {
	case "docparse":
		// default model
	case "textract":
		opts = append(opts, docparse.WithSegmenter(vision.NewModel("Amazon Textract", *seed, vision.ProfileTextract())))
	case "unstructured":
		opts = append(opts, docparse.WithSegmenter(vision.NewModel("Unstructured (YoloX)", *seed, vision.ProfileUnstructured())))
	case "azure":
		opts = append(opts, docparse.WithSegmenter(vision.NewModel("Azure AI Document Intelligence", *seed, vision.ProfileAzure())))
	default:
		log.Fatalf("docparse-server: unknown service %q", *service)
	}
	opts = append(opts, docparse.WithSeed(*seed))

	handler := docparse.NewHandler(docparse.New(opts...))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("docparse-server listening on %s (service=%s)\n", *addr, *service)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatal(err)
	}
}
