// Command docparse parses a raw document through the DocParse pipeline and
// renders the result: the labeled segmentation of each page (the Figure 2
// visualization), the element listing, and Markdown/JSON output.
//
// Usage:
//
//	docparse -render                 # segment a sample NTSB report, draw page 1
//	docparse -render -page 2
//	docparse -markdown               # full Markdown rendering of the parse
//	docparse -elements               # one line per parsed element
//	docparse -service textract       # parse with a competitor profile
//	docparse -in report.rawdoc       # parse a rawdoc file from disk
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"aryn/internal/docparse"
	"aryn/internal/ntsb"
	"aryn/internal/rawdoc"
	"aryn/internal/vision"
)

func main() {
	var (
		in       = flag.String("in", "", "rawdoc file to parse (default: generate a sample NTSB report)")
		seed     = flag.Int64("seed", 42, "sample report seed")
		service  = flag.String("service", "docparse", "segmentation service: docparse|textract|unstructured|azure")
		render   = flag.Bool("render", false, "draw the labeled segmentation of one page (Fig. 2)")
		page     = flag.Int("page", 1, "page to render")
		markdown = flag.Bool("markdown", false, "print the parsed document as Markdown")
		elements = flag.Bool("elements", false, "print the parsed element listing")
		asJSON   = flag.Bool("json", false, "print the parsed document as JSON")
	)
	flag.Parse()

	if err := run(*in, *seed, *service, *page, *render, *markdown, *elements, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "docparse:", err)
		os.Exit(1)
	}
}

func run(in string, seed int64, service string, page int, render, markdown, elements, asJSON bool) error {
	var raw *rawdoc.Doc
	if in != "" {
		blob, err := os.ReadFile(in)
		if err != nil {
			return err
		}
		raw, err = rawdoc.Decode(blob)
		if err != nil {
			return err
		}
	} else {
		incs := ntsb.GenerateIncidents(5, seed)
		raw = ntsb.BuildReport(&incs[0])
		fmt.Printf("(no -in given: generated sample report %s)\n\n", raw.ID)
	}

	seg, err := segmenter(service, seed)
	if err != nil {
		return err
	}
	svc := docparse.New(docparse.WithSegmenter(seg), docparse.WithSeed(seed))

	if render {
		if page < 1 || page > len(raw.Pages) {
			return fmt.Errorf("page %d out of range (document has %d pages)", page, len(raw.Pages))
		}
		p := raw.Pages[page-1]
		dets := seg.Segment(p, fmt.Sprintf("%s/%d", raw.ID, p.Number))
		fmt.Print(docparse.RenderDetections(p, dets, 100, 56))
		return nil
	}

	doc, err := svc.ParseRaw(raw)
	if err != nil {
		return err
	}
	switch {
	case markdown:
		fmt.Print(doc.Markdown())
	case elements:
		fmt.Print(docparse.DescribeElements(doc))
	case asJSON:
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(b))
	default:
		fmt.Printf("parsed %s: %d pages, %d elements\n", doc.ID, doc.PageCount(), len(doc.AllElements()))
		fmt.Print(docparse.DescribeElements(doc))
	}
	return nil
}

func segmenter(service string, seed int64) (vision.Segmenter, error) {
	switch service {
	case "docparse":
		return vision.NewModel("DocParse", seed, vision.ProfileDocParse()), nil
	case "textract":
		return vision.NewModel("Amazon Textract", seed, vision.ProfileTextract()), nil
	case "unstructured":
		return vision.NewModel("Unstructured (YoloX)", seed, vision.ProfileUnstructured()), nil
	case "azure":
		return vision.NewModel("Azure AI Document Intelligence", seed, vision.ProfileAzure()), nil
	default:
		return nil, fmt.Errorf("unknown service %q", service)
	}
}
