// Command benchjson converts `go test -bench` output (stdin) into a JSON
// benchmark record. It preserves other labels already present in the
// output file, so a checked-in file can carry a pinned "before" section
// while `make bench-retrieval` refreshes "after":
//
//	go test -run=NONE -bench Retrieval -benchmem . | benchjson -out BENCH_retrieval.json -label after
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed measurements: ns/op plus any extra
// -benchmem / ReportMetric columns keyed by unit.
type Result struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// File is the on-disk layout of BENCH_*.json.
type File struct {
	Description string                       `json:"description,omitempty"`
	CPU         string                       `json:"cpu,omitempty"`
	Results     map[string]map[string]Result `json:"results"`
}

func main() {
	out := flag.String("out", "", "output JSON path (required)")
	label := flag.String("label", "after", "label to record results under")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	parsed, cpu, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(parsed) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	file := File{Results: map[string]map[string]Result{}}
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not valid JSON: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if file.Results == nil {
		file.Results = map[string]map[string]Result{}
	}
	file.Results[*label] = parsed
	if cpu != "" {
		file.CPU = cpu
	}

	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s under %q\n", len(parsed), *out, *label)
}

// parse reads benchmark lines, returning name -> result plus the cpu line.
func parse(f *os.File) (map[string]Result, string, error) {
	results := map[string]Result{}
	cpu := ""
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 { // strip GOMAXPROCS suffix
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		r := Result{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsPerOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[i+1]] = val
			}
		}
		results[name] = r
	}
	return results, cpu, sc.Err()
}
