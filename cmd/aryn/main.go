// Command aryn is the end-to-end Aryn CLI: generate or load an NTSB-style
// corpus, ingest it through the DocParse→Sycamore ETL pipeline, and answer
// natural-language questions with Luna — printing the generated plan, the
// compiled Sycamore pipeline, and the execution trace for inspection, the
// textual equivalent of the Figure 6 UI.
//
// Usage:
//
//	aryn -docs 100 -q "How many incidents were there by state?" -show-plan -show-trace
//	aryn -q "..." -explain            # EXPLAIN ANALYZE: per-node runtime metrics
//	aryn -q "..." -stream              # print partial batches as the pipeline emits them
//	aryn -docs 100 -interactive        # conversational session with follow-ups
//	aryn -demo schema                  # print the extracted Table 3 schema
//	aryn -rag -q "..."                 # answer via the RAG baseline instead
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aryn/internal/core"
	"aryn/internal/cost"
	"aryn/internal/docmodel"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

func main() {
	var (
		nDocs       = flag.Int("docs", 100, "number of synthetic NTSB accidents to generate and ingest")
		seed        = flag.Int64("seed", 42, "corpus seed")
		sysSeed     = flag.Int64("system-seed", 7, "system (LLM/models) seed")
		question    = flag.String("q", "", "natural-language question to answer")
		interactive = flag.Bool("interactive", false, "start a conversational session on stdin")
		showPlan    = flag.Bool("show-plan", false, "print the logical plan JSON")
		showTrace   = flag.Bool("show-trace", false, "print the execution trace")
		explain     = flag.Bool("explain", false, "print EXPLAIN ANALYZE: the executed plan annotated with per-node runtime metrics")
		showDocs    = flag.Bool("show-docs", false, "print result documents (drill-down)")
		useRAG      = flag.Bool("rag", false, "answer with the RAG baseline instead of Luna")
		stream      = flag.Bool("stream", false, "stream the answer: print partial result batches as the pipeline emits them, then the final result")
		demo        = flag.String("demo", "", "demo mode: 'schema' prints the extracted schema (Table 3)")
		parallelism = flag.Int("parallelism", 8, "Sycamore stage parallelism")
		optimize    = flag.Bool("optimize", false, "enable the cost-based optimize phase (predicate hoisting, filter reordering, proxy cascades)")
	)
	flag.Parse()

	show := display{plan: *showPlan, trace: *showTrace, docs: *showDocs, explain: *explain, stream: *stream}
	if err := run(*nDocs, *seed, *sysSeed, *parallelism, *question, *demo, *interactive, *optimize, show, *useRAG); err != nil {
		fmt.Fprintln(os.Stderr, "aryn:", err)
		os.Exit(1)
	}
}

// display selects which views of a result the CLI prints, and whether
// execution streams partial batches to the terminal as they arrive.
type display struct {
	plan, trace, docs, explain, stream bool
}

func run(nDocs int, seed, sysSeed int64, parallelism int, question, demo string, interactive, optimize bool, show display, useRAG bool) error {
	ctx := context.Background()
	fmt.Printf("generating %d synthetic NTSB accidents (seed %d)...\n", nDocs, seed)
	corpus, err := ntsb.GenerateCorpus(nDocs, seed)
	if err != nil {
		return err
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		return err
	}
	sys := core.New(core.Config{Seed: sysSeed, Parallelism: parallelism, Optimize: optimize})
	fmt.Printf("ingesting %d report documents (DocParse -> llmExtract -> index)...\n", len(blobs))
	stats, err := sys.Ingest(ctx, blobs)
	if err != nil {
		return err
	}
	fmt.Printf("ingested: %d documents, %d chunks, %s wall, %d LLM calls (%d tokens)\n",
		stats.Documents, stats.Chunks, stats.Wall.Round(1e6), stats.Usage.Calls, stats.Usage.Total())
	fmt.Printf("llm middleware: %s\n\n", stats.LLM)

	switch {
	case demo == "schema":
		fmt.Println("Extracted schema (Table 3):")
		fmt.Print(sys.Schema.PromptBlock())
		return nil
	case interactive:
		return repl(ctx, sys, show)
	case question != "":
		return answer(ctx, sys, question, show, useRAG)
	default:
		flag.Usage()
		return nil
	}
}

func answer(ctx context.Context, sys *core.System, q string, show display, useRAG bool) error {
	if useRAG {
		resp, err := sys.AskRAG(ctx, q)
		if err != nil {
			return err
		}
		fmt.Printf("RAG (k=%d, %d chunks, %d poisoned):\n%s\n", sys.RAG.K, resp.Retrieved, resp.PoisonedChunks, resp.Text)
		return nil
	}
	res, err := ask(ctx, sys, q, show)
	if err != nil {
		return err
	}
	printResult(res, show)
	return nil
}

// ask answers one question, either in batch mode or — with -stream —
// over the pipelined execution path, narrating partial batches with
// their arrival offsets so time-to-first-result is visible at the
// terminal. Both paths return the same final Result.
func ask(ctx context.Context, sys *core.System, q string, show display) (*luna.Result, error) {
	if !show.stream {
		return sys.Ask(ctx, q)
	}
	svc := sys.QueryService()
	if svc == nil {
		return nil, fmt.Errorf("system is not ready to answer queries")
	}
	start := time.Now()
	var batches, docs int
	res, err := svc.AskStream(ctx, q, luna.StreamHooks{
		OnPartial: func(part []*docmodel.Document) {
			batches++
			docs += len(part)
			fmt.Printf("  [+%8s] partial batch %d: %d doc(s), %d total\n",
				time.Since(start).Round(time.Millisecond), batches, len(part), docs)
		},
	})
	if err != nil {
		return nil, err
	}
	fmt.Printf("  [+%8s] stream complete: %d partial batch(es), %d doc(s)\n",
		time.Since(start).Round(time.Millisecond), batches, docs)
	return res, nil
}

func printResult(res *luna.Result, show display) {
	fmt.Printf("Q: %s\nA: %s\n", res.Question, res.Answer.String())
	if show.plan {
		fmt.Println("\n-- logical plan --")
		fmt.Println(res.Rewritten.JSON())
		if res.Optimized != nil {
			fmt.Println("\n-- optimized plan --")
			fmt.Println(res.Optimized.JSON())
		}
		fmt.Println("\n-- compiled Sycamore pipeline --")
		fmt.Println(res.Compiled)
	}
	if show.trace && res.Trace != nil {
		fmt.Println("\n-- execution trace --")
		fmt.Print(res.Trace.String())
	}
	if show.explain && res.Exec != nil {
		fmt.Println("\n-- explain analyze --")
		fmt.Println(res.ExecutedPlan().AnnotatedJSON(res.Exec))
		printEstimates(res)
	}
	if show.docs {
		fmt.Println("\n-- result documents --")
		for i, d := range res.Docs {
			if i >= 10 {
				fmt.Printf("  ... and %d more\n", len(res.Docs)-10)
				break
			}
			fmt.Printf("  %s %s\n", d.ID, d.Properties.JSON())
		}
	}
	fmt.Println()
}

// printEstimates renders the cost model's pre-execution estimates next to
// the runtime annotation above — the estimated half of EXPLAIN ANALYZE's
// estimated-vs-observed comparison.
func printEstimates(res *luna.Result) {
	if res.Cost == nil {
		return
	}
	fmt.Println("\n-- estimated cost (rewritten plan) --")
	printEstimate(res.Cost)
	if res.CostOptimized != nil {
		fmt.Println("\n-- estimated cost (optimized plan) --")
		printEstimate(res.CostOptimized)
	}
}

func printEstimate(pe *cost.PlanEstimate) {
	for _, n := range pe.Nodes {
		src := "default"
		if n.Observed {
			src = "observed"
		}
		fmt.Printf("  %-24s docs %8.1f -> %8.1f  llm %7.1f  units %9.1f  (%s)\n",
			n.Op+" #"+fmt.Sprint(n.ID), n.DocsIn, n.DocsOut, n.LLMCalls, n.Units, src)
	}
	fmt.Printf("  total: %.1f estimated LLM calls, %.1f cost units\n", pe.LLMCalls, pe.Units)
}

func repl(ctx context.Context, sys *core.System, show display) error {
	fmt.Println("conversational session — ask questions; follow-ups like \"what about X\" refine the last query; 'quit' to exit")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("luna> ")
		if !sc.Scan() {
			return sc.Err()
		}
		q := strings.TrimSpace(sc.Text())
		switch q {
		case "":
			continue
		case "q", "quit", "exit":
			return nil
		}
		res, err := ask(ctx, sys, q, show)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res, show)
	}
}
