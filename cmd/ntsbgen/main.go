// Command ntsbgen generates the synthetic NTSB incident-report corpus to
// disk: one rawdoc blob per report plus a ground-truth CSV for scoring.
//
// Usage:
//
//	ntsbgen -docs 100 -out ./ntsb_data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"aryn/internal/ntsb"
)

func main() {
	var (
		nDocs = flag.Int("docs", 100, "number of accidents to generate")
		seed  = flag.Int64("seed", 42, "corpus seed")
		out   = flag.String("out", "ntsb_data", "output directory")
	)
	flag.Parse()

	if err := run(*nDocs, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ntsbgen:", err)
		os.Exit(1)
	}
}

func run(nDocs int, seed int64, out string) error {
	corpus, err := ntsb.GenerateCorpus(nDocs, seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		return err
	}
	for id, blob := range blobs {
		if err := os.WriteFile(filepath.Join(out, id+".rawdoc"), blob, 0o644); err != nil {
			return err
		}
	}

	f, err := os.Create(filepath.Join(out, "ground_truth.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"report_id", "accident_number", "city", "state", "date", "aircraft",
		"manufacturer", "category", "registration", "damage", "engines", "cause",
		"damaged_part", "injuries", "fatal", "weather_related", "bird_strike"}
	if err := w.Write(header); err != nil {
		return err
	}
	for i := range corpus.Incidents {
		in := &corpus.Incidents[i]
		row := []string{
			in.ReportID, in.AccidentNumber, in.City, in.State,
			in.Date.Format("2006-01-02 15:04"), in.Aircraft, in.Manufacturer,
			in.Category, in.Registration, in.Damage, strconv.Itoa(in.Engines),
			string(in.Cause), in.DamagedPart, in.InjuryText, strconv.Itoa(in.Fatal),
			strconv.FormatBool(in.WeatherRelated), strconv.FormatBool(in.BirdStrike),
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	fmt.Printf("wrote %d reports (%d accidents) + ground_truth.csv to %s\n", len(blobs), nDocs, out)
	return nil
}
