// Command arynd runs Aryn as a long-lived network service: it boots a
// wired core.System, optionally warm-starts the LLM response cache and
// pre-ingests a synthetic corpus, and serves the concurrent query layer
// (internal/server) with graceful shutdown — the deployment shape of the
// paper, where DocParse and Luna sit behind endpoints that many analysts
// hit at once.
//
// Usage:
//
//	arynd -addr :8088 -docs 200                      # boot with a corpus
//	arynd -addr :8088 -llm-cache /var/aryn/llm.cache # warm-start + persist
//	curl -s localhost:8088/healthz
//	curl -s -X POST localhost:8088/query -d '{"question":"How many incidents were there?"}'
//
// Plans are first-class (§6.2 inspect→edit→re-run): POST /plan returns
// the validated DAG plan without executing it, and POST /query accepts
// an edited plan back:
//
//	curl -s -X POST localhost:8088/plan  -d '{"question":"How many incidents were there?"}'
//	curl -s -X POST localhost:8088/query -d '{"plan":{"nodes":[{"id":"n1","op":"queryDatabase"},{"id":"n2","op":"count","inputs":["n1"]}],"output":"n2"}}'
//
// Canonical routes live under /v1 (the unprefixed spellings are
// deprecated aliases). "Accept: text/event-stream" on POST /v1/query
// streams partial results over SSE, and POST /v1/ingest runs ingest as
// an async job — see docs/streaming-api.md for the wire contract.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aryn/internal/core"
	"aryn/internal/fault"
	"aryn/internal/ntsb"
	"aryn/internal/resilience"
	"aryn/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8088", "listen address")
		docs        = flag.Int("docs", 0, "pre-ingest this many synthetic NTSB accidents at boot (0 = start empty)")
		seed        = flag.Int64("seed", 42, "corpus seed for -docs")
		sysSeed     = flag.Int64("system-seed", 7, "system (LLM/models) seed")
		parallelism = flag.Int("parallelism", 8, "Sycamore stage parallelism")
		llmCache    = flag.String("llm-cache", "", "LLM response cache path: warm-start from it at boot, persist back on shutdown")
		maxInFlight = flag.Int("max-inflight", 16, "max concurrently executing requests")
		maxWaiters  = flag.Int("max-waiters", 64, "max requests queued for a slot before shedding 429s")
		queueWait   = flag.Duration("queue-wait", 2*time.Second, "max time a queued request waits for a slot")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "idle chat session eviction TTL")
		maxSessions = flag.Int("max-sessions", 1024, "max live chat sessions")
		qryTimeout  = flag.Duration("query-timeout", 60*time.Second, "per-query/chat execution deadline (0 = unlimited)")
		heartbeat   = flag.Duration("stream-heartbeat", 10*time.Second, "SSE heartbeat cadence on streamed responses")
		progress    = flag.Duration("stream-progress", 250*time.Millisecond, "SSE progress-snapshot cadence on streamed responses")
		jobTTL      = flag.Duration("job-ttl", 10*time.Minute, "how long terminal ingest jobs stay pollable before reaping")
		maxJobs     = flag.Int("max-queued-jobs", 4, "max ingest jobs waiting for the worker before shedding 429s")
		faultSpec   = flag.String("fault-spec", "", "activate this JSON fault spec at boot (implies -fault-endpoint; see docs/fault-injection.md)")
		faultEP     = flag.Bool("fault-endpoint", false, "expose the dev-only /faults chaos-control endpoint")
		optimize    = flag.Bool("optimize", false, "enable the cost-based optimize phase by default (per-request \"optimize\" flag overrides)")
		feedback    = flag.String("feedback", "", "optimizer feedback-store path: warm-start from it at boot, persist back on shutdown")
	)
	flag.Parse()

	cfg := server.Config{
		MaxInFlight:     *maxInFlight,
		MaxWaiters:      *maxWaiters,
		QueueWait:       *queueWait,
		SessionTTL:      *sessionTTL,
		MaxSessions:     *maxSessions,
		RequestTimeout:  *qryTimeout,
		StreamHeartbeat: *heartbeat,
		StreamProgress:  *progress,
		JobTTL:          *jobTTL,
		MaxQueuedJobs:   *maxJobs,
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = -1 // 0 on the flag means unlimited
	}
	var inj *fault.Injector
	if *faultSpec != "" || *faultEP {
		spec := fault.Spec{}
		if *faultSpec != "" {
			var err error
			if spec, err = fault.ParseSpec(*faultSpec); err != nil {
				fmt.Fprintln(os.Stderr, "arynd:", err)
				os.Exit(1)
			}
		}
		inj = fault.New(spec)
		cfg.Fault = inj
	}

	if err := run(*addr, *docs, *seed, *sysSeed, *parallelism, *llmCache, *optimize, *feedback, inj, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "arynd:", err)
		os.Exit(1)
	}
}

func run(addr string, docs int, seed, sysSeed int64, parallelism int, llmCache string, optimize bool, feedback string, inj *fault.Injector, cfg server.Config) error {
	sys := core.New(core.Config{
		Seed:         sysSeed,
		Parallelism:  parallelism,
		LLMCachePath: llmCache,
		Optimize:     optimize,
		FeedbackPath: feedback,
		// The daemon always serves with the resilience middleware: retries
		// with jittered backoff, the per-backend circuit breaker behind
		// /stats, and degraded-mode serving when the breaker opens.
		Resilience: &resilience.Options{},
		Fault:      inj,
	})
	if inj != nil {
		if inj.Spec().Active() {
			log.Printf("arynd: fault injection ACTIVE at boot (dev only)")
		} else {
			log.Printf("arynd: /faults chaos endpoint enabled (dev only)")
		}
	}
	if llmCache != "" {
		log.Printf("arynd: LLM cache warm-start from %s", llmCache)
	}
	if optimize {
		log.Printf("arynd: cost-based optimization ON by default")
	}
	if feedback != "" {
		log.Printf("arynd: optimizer feedback warm-start from %s (%d signatures)", feedback, sys.OptimizerStats().Entries)
	}

	if docs > 0 {
		log.Printf("arynd: ingesting %d synthetic NTSB accidents (seed %d)...", docs, seed)
		corpus, err := ntsb.GenerateCorpus(docs, seed)
		if err != nil {
			return err
		}
		blobs, err := corpus.Blobs()
		if err != nil {
			return err
		}
		stats, err := sys.Ingest(context.Background(), blobs)
		if err != nil {
			return err
		}
		log.Printf("arynd: ingested %d documents / %d chunks in %s (%d LLM calls)",
			stats.Documents, stats.Chunks, stats.Wall.Round(time.Millisecond), stats.Usage.Calls)
	}

	srv := server.New(sys, cfg)
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("arynd: listening on %s (max-inflight=%d max-waiters=%d)",
			addr, cfg.MaxInFlight, cfg.MaxWaiters)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case sig := <-sigc:
		log.Printf("arynd: %s received, draining...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("arynd: shutdown: %v", err)
		}
	}

	if llmCache != "" {
		if err := sys.SaveLLMCache(llmCache); err != nil {
			log.Printf("arynd: persist LLM cache: %v", err)
		} else {
			log.Printf("arynd: LLM cache persisted to %s", llmCache)
		}
	}
	if feedback != "" {
		if err := sys.SaveFeedback(feedback); err != nil {
			log.Printf("arynd: persist optimizer feedback: %v", err)
		} else {
			log.Printf("arynd: optimizer feedback persisted to %s", feedback)
		}
	}
	return nil
}
