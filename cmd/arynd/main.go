// Command arynd runs Aryn as a long-lived network service: it boots a
// wired core.System, optionally warm-starts the LLM response cache and
// pre-ingests a synthetic corpus, and serves the concurrent query layer
// (internal/server) with graceful shutdown — the deployment shape of the
// paper, where DocParse and Luna sit behind endpoints that many analysts
// hit at once.
//
// Usage:
//
//	arynd -addr :8088 -docs 200                      # boot with a corpus
//	arynd -addr :8088 -llm-cache /var/aryn/llm.cache # warm-start + persist
//	curl -s localhost:8088/healthz
//	curl -s -X POST localhost:8088/query -d '{"question":"How many incidents were there?"}'
//
// Plans are first-class (§6.2 inspect→edit→re-run): POST /plan returns
// the validated DAG plan without executing it, and POST /query accepts
// an edited plan back:
//
//	curl -s -X POST localhost:8088/plan  -d '{"question":"How many incidents were there?"}'
//	curl -s -X POST localhost:8088/query -d '{"plan":{"nodes":[{"id":"n1","op":"queryDatabase"},{"id":"n2","op":"count","inputs":["n1"]}],"output":"n2"}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aryn/internal/core"
	"aryn/internal/ntsb"
	"aryn/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8088", "listen address")
		docs        = flag.Int("docs", 0, "pre-ingest this many synthetic NTSB accidents at boot (0 = start empty)")
		seed        = flag.Int64("seed", 42, "corpus seed for -docs")
		sysSeed     = flag.Int64("system-seed", 7, "system (LLM/models) seed")
		parallelism = flag.Int("parallelism", 8, "Sycamore stage parallelism")
		llmCache    = flag.String("llm-cache", "", "LLM response cache path: warm-start from it at boot, persist back on shutdown")
		maxInFlight = flag.Int("max-inflight", 16, "max concurrently executing requests")
		maxWaiters  = flag.Int("max-waiters", 64, "max requests queued for a slot before shedding 429s")
		queueWait   = flag.Duration("queue-wait", 2*time.Second, "max time a queued request waits for a slot")
		sessionTTL  = flag.Duration("session-ttl", 30*time.Minute, "idle chat session eviction TTL")
		maxSessions = flag.Int("max-sessions", 1024, "max live chat sessions")
		reqTimeout  = flag.Duration("request-timeout", 60*time.Second, "per-request execution deadline")
	)
	flag.Parse()

	if err := run(*addr, *docs, *seed, *sysSeed, *parallelism, *llmCache, server.Config{
		MaxInFlight:    *maxInFlight,
		MaxWaiters:     *maxWaiters,
		QueueWait:      *queueWait,
		SessionTTL:     *sessionTTL,
		MaxSessions:    *maxSessions,
		RequestTimeout: *reqTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "arynd:", err)
		os.Exit(1)
	}
}

func run(addr string, docs int, seed, sysSeed int64, parallelism int, llmCache string, cfg server.Config) error {
	sys := core.New(core.Config{
		Seed:         sysSeed,
		Parallelism:  parallelism,
		LLMCachePath: llmCache,
	})
	if llmCache != "" {
		log.Printf("arynd: LLM cache warm-start from %s", llmCache)
	}

	if docs > 0 {
		log.Printf("arynd: ingesting %d synthetic NTSB accidents (seed %d)...", docs, seed)
		corpus, err := ntsb.GenerateCorpus(docs, seed)
		if err != nil {
			return err
		}
		blobs, err := corpus.Blobs()
		if err != nil {
			return err
		}
		stats, err := sys.Ingest(context.Background(), blobs)
		if err != nil {
			return err
		}
		log.Printf("arynd: ingested %d documents / %d chunks in %s (%d LLM calls)",
			stats.Documents, stats.Chunks, stats.Wall.Round(time.Millisecond), stats.Usage.Calls)
	}

	srv := server.New(sys, cfg)
	defer srv.Close()
	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("arynd: listening on %s (max-inflight=%d max-waiters=%d)",
			addr, cfg.MaxInFlight, cfg.MaxWaiters)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case sig := <-sigc:
		log.Printf("arynd: %s received, draining...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("arynd: shutdown: %v", err)
		}
	}

	if llmCache != "" {
		if err := sys.SaveLLMCache(llmCache); err != nil {
			log.Printf("arynd: persist LLM cache: %v", err)
		} else {
			log.Printf("arynd: LLM cache persisted to %s", llmCache)
		}
	}
	return nil
}
