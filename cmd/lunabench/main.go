// Command lunabench regenerates Table 4 of the paper: Luna versus the RAG
// baseline on the 30-question NTSB analytics benchmark, with the §7.2
// error taxonomy (counting, filter, interpretation).
//
// Usage:
//
//	lunabench                          # defaults: 100 accidents, canonical seeds
//	lunabench -detail                  # per-question verdicts
//	lunabench -docs 50 -k 20           # smaller corpus, shallower retrieval
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"aryn/internal/core"
	"aryn/internal/ntsb"
	"aryn/internal/qa"
)

func main() {
	var (
		nDocs      = flag.Int("docs", 100, "number of accidents in the corpus")
		corpusSeed = flag.Int64("seed", 42, "corpus seed")
		sysSeed    = flag.Int64("system-seed", 7, "system seed")
		k          = flag.Int("k", 100, "RAG retrieval depth")
		detail     = flag.Bool("detail", false, "print per-question verdicts")
		failures   = flag.Bool("failures", false, "print Luna's incorrect answers vs ground truth")
	)
	flag.Parse()

	if err := run(*nDocs, *corpusSeed, *sysSeed, *k, *detail, *failures); err != nil {
		fmt.Fprintln(os.Stderr, "lunabench:", err)
		os.Exit(1)
	}
}

func run(nDocs int, corpusSeed, sysSeed int64, k int, detail, failures bool) error {
	ctx := context.Background()
	corpus, err := ntsb.GenerateCorpus(nDocs, corpusSeed)
	if err != nil {
		return err
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		return err
	}
	sys := core.New(core.Config{Seed: sysSeed, Parallelism: 8, RAGK: k})
	fmt.Printf("ingesting %d reports (%d accidents)...\n", len(blobs), nDocs)
	stats, err := sys.Ingest(ctx, blobs)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d docs / %d chunks in %s\n\n", stats.Documents, stats.Chunks, stats.Wall.Round(1e6))

	t4, err := qa.RunTable4(ctx, sys, corpus)
	if err != nil {
		return err
	}
	fmt.Println("Table 4 — Luna vs. RAG on the 30-question NTSB benchmark:")
	fmt.Println(t4.Format())
	fmt.Println("paper reference: Luna 20 (67%) / 10 (33%) / 0; RAG 2 (6.7%) / 20 (67%) / 8 (26.7%)")
	fmt.Println("paper taxonomy: counting 6, filter 3, interpretation 1")

	if detail {
		fmt.Println()
		fmt.Println(t4.Detail())
	}
	if failures {
		fmt.Println()
		for _, r := range t4.LunaRecords {
			if r.Verdict != qa.Correct {
				fmt.Printf("Q%-2d [%s] got=%s\n     gt=%s\n", r.Question.ID, r.Category, r.Answer.String(), r.GT.String())
			}
		}
	}
	return nil
}
