// Command lunabench regenerates Table 4 of the paper: Luna versus the RAG
// baseline on the 30-question NTSB analytics benchmark, with the §7.2
// error taxonomy (counting, filter, interpretation). With -joins it
// instead measures the branch scheduler: a two-sided join plan executed
// with concurrent branch scheduling versus forced-serial subtrees.
//
// Usage:
//
//	lunabench                          # defaults: 100 accidents, canonical seeds
//	lunabench -detail                  # per-question verdicts
//	lunabench -docs 50 -k 20           # smaller corpus, shallower retrieval
//	lunabench -joins                   # concurrent vs serial join-build comparison
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"aryn/internal/core"
	"aryn/internal/llm"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
	"aryn/internal/qa"
)

func main() {
	var (
		nDocs      = flag.Int("docs", 100, "number of accidents in the corpus")
		corpusSeed = flag.Int64("seed", 42, "corpus seed")
		sysSeed    = flag.Int64("system-seed", 7, "system seed")
		k          = flag.Int("k", 100, "RAG retrieval depth")
		detail     = flag.Bool("detail", false, "print per-question verdicts")
		failures   = flag.Bool("failures", false, "print Luna's incorrect answers vs ground truth")
		joins      = flag.Bool("joins", false, "measure concurrent vs serial join-build scheduling instead of Table 4")
		latency    = flag.Duration("latency", 2*time.Millisecond, "simulated per-call LLM latency for -joins")
		runs       = flag.Int("runs", 3, "measurement runs per mode for -joins (best of)")
	)
	flag.Parse()

	var err error
	if *joins {
		err = runJoins(*nDocs, *corpusSeed, *sysSeed, *latency, *runs)
	} else {
		err = run(*nDocs, *corpusSeed, *sysSeed, *k, *detail, *failures)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lunabench:", err)
		os.Exit(1)
	}
}

// joinPlan is the measured workload: both sides scan the corpus and run
// an LLM filter, so each side is a real pipeline with fill/drain phases,
// then join on the accident number. Serial scheduling runs the build side
// only after the probe side has fully drained; concurrent scheduling
// starts both at query begin under the shared worker budget.
func joinPlan() *luna.LogicalPlan {
	return &luna.LogicalPlan{
		Nodes: []luna.PlanNode{
			{ID: "probe", LogicalOp: luna.LogicalOp{Op: luna.OpQueryDatabase}},
			{ID: "probeFilter", Inputs: []string{"probe"}, LogicalOp: luna.LogicalOp{
				Op: luna.OpLLMFilter, Question: "Does the document indicate engine problems?"}},
			{ID: "build", LogicalOp: luna.LogicalOp{Op: luna.OpQueryDatabase}},
			{ID: "buildFilter", Inputs: []string{"build"}, LogicalOp: luna.LogicalOp{
				Op: luna.OpLLMFilter, Question: "Does the document indicate damage to the aircraft?"}},
			{ID: "j", Inputs: []string{"probeFilter", "buildFilter"}, LogicalOp: luna.LogicalOp{
				Op: luna.OpJoin, LeftKey: "accidentNumber", RightKey: "accidentNumber", Prefix: "r"}},
			{ID: "out", Inputs: []string{"j"}, LogicalOp: luna.LogicalOp{Op: luna.OpCount}},
		},
		Output: "out",
	}
}

// runJoins measures the same join plan under serial and concurrent branch
// scheduling. The LLM cache and batcher are disabled so every call pays
// the simulated latency and neither mode can warm the other up; both
// modes share the per-query worker budget, so the speedup measured is
// scheduling (overlapped branches), not extra workers.
func runJoins(nDocs int, corpusSeed, sysSeed int64, latency time.Duration, runs int) error {
	ctx := context.Background()
	corpus, err := ntsb.GenerateCorpus(nDocs, corpusSeed)
	if err != nil {
		return err
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		return err
	}
	sys := core.New(core.Config{
		Seed:            sysSeed,
		Parallelism:     8,
		DisableLLMCache: true,
		LLMMaxBatch:     1, // 1 disables batching
		LLMOptions:      []llm.SimOption{llm.WithLatency(latency)},
	})
	fmt.Printf("ingesting %d reports (latency %s per LLM call)...\n", len(blobs), latency)
	stats, err := sys.Ingest(ctx, blobs)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d docs / %d chunks in %s\n\n", stats.Documents, stats.Chunks, stats.Wall.Round(time.Millisecond))

	measure := func(serial bool) (time.Duration, string, error) {
		svc := sys.QueryService()
		svc.Executor.Serial = serial
		defer func() { svc.Executor.Serial = false }()
		best := time.Duration(0)
		answer := ""
		for i := 0; i < runs; i++ {
			res, rerr := svc.RunPlan(ctx, "join bench", joinPlan())
			if rerr != nil {
				return 0, "", rerr
			}
			wall := time.Duration(res.Exec.WallMS * float64(time.Millisecond))
			if best == 0 || wall < best {
				best = wall
			}
			answer = res.Answer.String()
		}
		return best, answer, nil
	}

	serialWall, serialAns, err := measure(true)
	if err != nil {
		return err
	}
	concWall, concAns, err := measure(false)
	if err != nil {
		return err
	}
	if serialAns != concAns {
		return fmt.Errorf("answers differ: serial %q vs concurrent %q", serialAns, concAns)
	}

	fmt.Println("Join build scheduling — serial vs concurrent branches (best of", runs, "runs):")
	fmt.Printf("  %-22s %12s\n", "mode", "wall")
	fmt.Printf("  %-22s %12s\n", "serial subtrees", serialWall.Round(time.Microsecond))
	fmt.Printf("  %-22s %12s\n", "concurrent branches", concWall.Round(time.Microsecond))
	if concWall > 0 {
		fmt.Printf("  speedup: %.2fx (identical answer: %s)\n", float64(serialWall)/float64(concWall), concAns)
	}
	return nil
}

func run(nDocs int, corpusSeed, sysSeed int64, k int, detail, failures bool) error {
	ctx := context.Background()
	corpus, err := ntsb.GenerateCorpus(nDocs, corpusSeed)
	if err != nil {
		return err
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		return err
	}
	sys := core.New(core.Config{Seed: sysSeed, Parallelism: 8, RAGK: k})
	fmt.Printf("ingesting %d reports (%d accidents)...\n", len(blobs), nDocs)
	stats, err := sys.Ingest(ctx, blobs)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %d docs / %d chunks in %s\n\n", stats.Documents, stats.Chunks, stats.Wall.Round(1e6))

	t4, err := qa.RunTable4(ctx, sys, corpus)
	if err != nil {
		return err
	}
	fmt.Println("Table 4 — Luna vs. RAG on the 30-question NTSB benchmark:")
	fmt.Println(t4.Format())
	fmt.Println("paper reference: Luna 20 (67%) / 10 (33%) / 0; RAG 2 (6.7%) / 20 (67%) / 8 (26.7%)")
	fmt.Println("paper taxonomy: counting 6, filter 3, interpretation 1")

	if detail {
		fmt.Println()
		fmt.Println(t4.Detail())
	}
	if failures {
		fmt.Println()
		for _, r := range t4.LunaRecords {
			if r.Verdict != qa.Correct {
				fmt.Printf("Q%-2d [%s] got=%s\n     gt=%s\n", r.Question.ID, r.Category, r.Answer.String(), r.GT.String())
			}
		}
	}
	return nil
}
