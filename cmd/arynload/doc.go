// Command arynload is the serving-load benchmark harness: it drives the
// e2e scenario mixes (internal/scenario) against a live arynd at a target
// rate and reports per-request latency percentiles, error/shed rates, and
// the server-side LLM cache hit-rate as BENCH_serving.json — the serving
// counterpart of BENCH_retrieval.json, with the same label/section file
// shape (before/after trajectories merge into one file).
//
// Usage:
//
//	arynd -addr :8088 -docs 48 &                  # something to load
//	arynload -addr http://127.0.0.1:8088          # all standard mixes
//	arynload -list                                # scenario catalog
//	arynload -mixes read-heavy -qps 50 -duration 30s \
//	         -out BENCH_serving.json -label after # one mix, recorded
//
// Each mix carries the SLO its numbers are checked against
// (docs/serving-slos.md); -slo (on by default) exits non-zero on any
// violation, which is how CI enforces the serving contract. `make
// bench-serving` wraps the whole boot→load→record cycle via
// scripts/bench_serving.sh.
package main
