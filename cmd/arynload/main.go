package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aryn/internal/scenario"
)

func main() {
	var (
		addr     = flag.String("addr", "http://127.0.0.1:8088", "base URL of the arynd under load")
		list     = flag.Bool("list", false, "list registered scenarios (name, paper section, description) and exit")
		mixNames = flag.String("mixes", "all", "comma-separated mix names to run (see docs/serving-slos.md), or 'all'")
		qps      = flag.Float64("qps", 25, "target scenario-execution launch rate per mix")
		duration = flag.Duration("duration", 8*time.Second, "load duration per mix")
		execs    = flag.Int("executions", 0, "stop a mix after this many executions (0 = duration only)")
		workers  = flag.Int("workers", 16, "max concurrently running scenario executions")
		seed     = flag.Int64("seed", 1, "weighted scenario picker seed")
		out      = flag.String("out", "", "write/merge the report into this BENCH_serving.json (empty = stdout only)")
		label    = flag.String("label", "after", "results label to record under (before/after trajectory)")
		slo      = flag.Bool("slo", true, "check each mix's report against its SLO and exit non-zero on violations")
		docs     = flag.Int("ingest-docs", 8, "synthetic docs per ingest-scenario corpus")
		turns    = flag.Int("chat-turns", 3, "follow-up turns per chat-session execution")
		burst    = flag.Int("burst", 12, "concurrent requests per overload-shed execution")
	)
	flag.Parse()

	if *list {
		listScenarios()
		return
	}
	if err := run(*addr, *mixNames, *qps, *duration, *execs, *workers, *seed, *out, *label, *slo,
		scenario.Params{IngestDocs: *docs, ChatTurns: *turns, BurstSize: *burst}); err != nil {
		fmt.Fprintln(os.Stderr, "arynload:", err)
		os.Exit(1)
	}
}

// listScenarios prints the self-describing scenario catalog.
func listScenarios() {
	fmt.Printf("%-22s %-45s %s\n", "SCENARIO", "PAPER", "DESCRIPTION")
	for _, s := range scenario.All() {
		fmt.Printf("%-22s %-45s %s\n", s.Name, s.Paper, s.Description)
	}
	fmt.Println("\nMIXES (weights → SLO):")
	for _, m := range append(scenario.Mixes(), scenario.ChaosMix()) {
		fmt.Printf("  %-16s %s\n", m.Name, m.Description)
		slo := fmt.Sprintf("SLO p99 ≤ %s, shed ≤ %.0f%%, errors ≤ %.1f%%",
			m.SLO.P99, m.SLO.MaxShedRate*100, m.SLO.MaxErrorRate*100)
		if m.SLO.TTFE > 0 {
			slo += fmt.Sprintf(", TTFE p95 ≤ %s", m.SLO.TTFE)
		}
		fmt.Printf("  %-16s weights %v, %s\n", "", m.Weights, slo)
	}
	fmt.Println("\nThe chaos mix is opt-in (-mixes chaos) and needs an arynd started with -fault-endpoint.")
}

func run(addr, mixNames string, qps float64, duration time.Duration, execs, workers int, seed int64, out, label string, slo bool, params scenario.Params) error {
	mixes, err := resolveMixes(mixNames)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	client := scenario.NewClient(addr, scenario.WithParams(params))
	if err := client.WaitReady(ctx, 15*time.Second); err != nil {
		return err
	}

	reports := map[string]*scenario.Report{}
	var violations []string
	for i, mix := range mixes {
		fmt.Fprintf(os.Stderr, "arynload: mix %s (%d/%d): qps %.0f for %s...\n",
			mix.Name, i+1, len(mixes), qps, duration)
		report, err := scenario.RunLoad(ctx, client, mix, scenario.LoadOptions{
			QPS:           qps,
			Duration:      duration,
			MaxExecutions: execs,
			Workers:       workers,
			Seed:          seed,
		})
		if err != nil {
			return fmt.Errorf("mix %s: %w", mix.Name, err)
		}
		reports[mix.Name] = report
		printReport(report)
		for _, v := range mix.SLO.Check(report) {
			violations = append(violations, fmt.Sprintf("mix %s: %s", mix.Name, v))
		}
	}

	if out != "" {
		if err := writeBenchFile(out, label, reports); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "arynload: wrote %d mix reports to %s under %q\n", len(reports), out, label)
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "arynload: SLO VIOLATION:", v)
		}
		if slo {
			return fmt.Errorf("%d SLO violation(s) — targets are documented in docs/serving-slos.md", len(violations))
		}
	} else {
		fmt.Fprintln(os.Stderr, "arynload: all mixes within SLO")
	}
	return nil
}

// resolveMixes parses the -mixes flag against the standard mix set.
func resolveMixes(names string) ([]scenario.Mix, error) {
	if names == "" || names == "all" {
		return scenario.Mixes(), nil
	}
	var out []scenario.Mix
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, ok := scenario.MixByName(name)
		if !ok {
			known := make([]string, 0)
			for _, k := range append(scenario.Mixes(), scenario.ChaosMix()) {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("unknown mix %q (have: %s)", name, strings.Join(known, ", "))
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no mixes selected")
	}
	return out, nil
}

// printReport renders one mix's numbers for humans (stderr keeps stdout
// clean for -list and JSON piping).
func printReport(r *scenario.Report) {
	fmt.Fprintf(os.Stderr,
		"arynload:   %d executions (%d shed, %d failed, %d skipped ticks), %d requests in %.1fs (%.1f req/s)\n",
		r.Executions, r.ShedExecs, r.FailedExecs, r.Skipped, r.Requests, r.DurationMS/1000, r.AchievedQPS)
	fmt.Fprintf(os.Stderr,
		"arynload:   latency p50 %.1fms p95 %.1fms p99 %.1fms max %.1fms | shed %.2f%% errors %.2f%% | cache hit-rate %.1f%% (%d/%d)\n",
		r.P50MS, r.P95MS, r.P99MS, r.MaxMS,
		r.ShedRate*100, r.ErrorRate*100,
		r.CacheHitRate*100, r.CacheHits, r.CacheHits+r.CacheMisses)
	if r.StreamRequests > 0 {
		fmt.Fprintf(os.Stderr,
			"arynload:   streamed %d requests | time-to-first-event p50 %.1fms p95 %.1fms max %.1fms\n",
			r.StreamRequests, r.TTFEP50MS, r.TTFEP95MS, r.TTFEMaxMS)
	}
}

// benchFile mirrors the BENCH_retrieval.json layout: results keyed by
// label then by name, so before/after trajectories live side by side and
// a refresh preserves other labels.
type benchFile struct {
	Description string                                 `json:"description,omitempty"`
	Results     map[string]map[string]*scenario.Report `json:"results"`
}

func writeBenchFile(path, label string, reports map[string]*scenario.Report) error {
	file := benchFile{
		Description: "Serving-load benchmark (cmd/arynload over internal/scenario mixes against a live arynd). " +
			"Per-mix request latency percentiles, shed/error rates, and server-side LLM cache hit-rate; " +
			"SLO targets live in docs/serving-slos.md, methodology in docs/benchmarks.md. " +
			"Refresh with `make bench-serving`.",
		Results: map[string]map[string]*scenario.Report{},
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &file); err != nil {
			return fmt.Errorf("%s exists but is not valid JSON: %w", path, err)
		}
	}
	if file.Results == nil {
		file.Results = map[string]map[string]*scenario.Report{}
	}
	file.Results[label] = reports
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
