package aryn

// BenchmarkOptimizer pins the cost-based optimize phase against the same
// standard query mix with optimization off and on: byte-identical answers
// are asserted inside the benchmark (the equivalence contract), and the
// reported metrics carry the before/after LLM-call, token, and wall-time
// numbers that BENCH_optimizer.json records. The optimized run must cut
// LLM calls by at least 30% — the acceptance bar the optimizer ships
// under — so a regression in any rewrite (hoisting, reordering, proxy
// cascades) fails the bench instead of silently shrinking the win.

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

// optimizerBenchMix is the standard query mix: the plan shapes each
// rewrite targets (single predicates for cascades, chains for reordering,
// trailing basic filters for hoisting, a DAG join for multi-branch
// plans), over the canonical seed-42 NTSB corpus.
var optimizerBenchMix = []struct {
	name string
	plan string
}{
	{"count-fires", `{"ops":[
		{"op":"queryDatabase"},
		{"op":"llmFilter","question":"Does the report mention a fire?"},
		{"op":"count"}]}`},
	{"state-fuel", `{"ops":[
		{"op":"queryDatabase"},
		{"op":"llmFilter","question":"Does the report mention fuel?"},
		{"op":"basicFilter","filters":[{"field":"us_state","kind":"term","value":"AZ"}]},
		{"op":"count"}]}`},
	{"twin-hoist", `{"ops":[
		{"op":"queryDatabase"},
		{"op":"llmFilter","question":"Does the report mention a pilot?"},
		{"op":"llmFilter","question":"Does the report mention a fire?"},
		{"op":"basicFilter","filters":[{"field":"engines","kind":"term","value":2}]},
		{"op":"count"}]}`},
	{"group-by-state", `{"ops":[
		{"op":"queryDatabase"},
		{"op":"llmFilter","question":"Does the report mention ice?"},
		{"op":"groupByAggregate","key":"us_state","agg":"count"}]}`},
	{"destroyed-birds", `{"ops":[
		{"op":"queryDatabase"},
		{"op":"llmFilter","question":"Does the report mention birds?"},
		{"op":"basicFilter","filters":[{"field":"aircraftDamage","kind":"term","value":"Destroyed"}]},
		{"op":"count"}]}`},
	{"join-filters", `{"nodes":[
		{"id":"a","op":"queryDatabase"},
		{"id":"b","inputs":["a"],"op":"llmFilter","question":"Does the report mention a fire?"},
		{"id":"c","inputs":["a"],"op":"llmFilter","question":"Does the report mention fuel?"},
		{"id":"d","inputs":["b","c"],"op":"join","left_key":"accidentNumber","right_key":"accidentNumber"},
		{"id":"e","inputs":["d"],"op":"count"}],"output":"e"}`},
}

// optimizerMixResult aggregates one full pass over the mix.
type optimizerMixResult struct {
	answers  []string
	llmCalls int64
	tokens   int64
	wall     time.Duration
}

// runOptimizerMix builds a fresh ingested system (so the LLM cache of one
// mode can never subsidize the other) and runs every plan in the mix.
func runOptimizerMix(b *testing.B, optimize bool) optimizerMixResult {
	b.Helper()
	corpus, err := ntsb.GenerateCorpus(30, 42)
	if err != nil {
		b.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		b.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7, Parallelism: 8, Optimize: optimize})
	if _, err := sys.Ingest(context.Background(), blobs); err != nil {
		b.Fatal(err)
	}
	svc := sys.QueryService()
	if svc == nil {
		b.Fatal("system not ready to answer queries")
	}

	var out optimizerMixResult
	start := time.Now()
	for _, q := range optimizerBenchMix {
		plan, err := luna.ParsePlan(q.plan)
		if err != nil {
			b.Fatalf("%s: %v", q.name, err)
		}
		res, err := svc.RunPlan(context.Background(), q.name, plan)
		if err != nil {
			b.Fatalf("%s: %v", q.name, err)
		}
		answer := fmt.Sprintf("%s|docs=%d", res.Answer.String(), len(res.Docs))
		for _, d := range res.Docs {
			answer += "," + d.ID
		}
		out.answers = append(out.answers, q.name+": "+answer)
		if res.Exec != nil {
			for _, ne := range res.Exec.Nodes {
				out.llmCalls += ne.Runtime.LLMCalls
				out.tokens += ne.Runtime.PromptTokens + ne.Runtime.CompletionTokens
			}
		}
		if optimize && res.Optimized == nil {
			b.Fatalf("%s: optimize enabled but no optimized plan produced", q.name)
		}
		if !optimize && res.Optimized != nil {
			b.Fatalf("%s: optimize disabled but an optimized plan was produced", q.name)
		}
	}
	out.wall = time.Since(start)
	return out
}

// BenchmarkOptimizer runs the mix once per mode up front to enforce the
// equivalence and ≥30% LLM-call-reduction contracts, then pins per-mode
// metrics under unoptimized/ and optimized/ sub-benchmarks.
func BenchmarkOptimizer(b *testing.B) {
	base := runOptimizerMix(b, false)
	opt := runOptimizerMix(b, true)

	if !reflect.DeepEqual(base.answers, opt.answers) {
		b.Fatalf("optimized mix diverged from unoptimized:\nunoptimized: %v\noptimized:   %v",
			base.answers, opt.answers)
	}
	if base.llmCalls == 0 {
		b.Fatal("unoptimized mix made no LLM calls; the mix no longer exercises the optimizer")
	}
	if limit := base.llmCalls * 7 / 10; opt.llmCalls > limit {
		b.Fatalf("optimizer saved too little: %d LLM calls optimized vs %d unoptimized (need <= %d, a 30%% cut)",
			opt.llmCalls, base.llmCalls, limit)
	}
	reduction := 100 * float64(base.llmCalls-opt.llmCalls) / float64(base.llmCalls)

	bench := func(optimize bool) func(*testing.B) {
		return func(b *testing.B) {
			var r optimizerMixResult
			for i := 0; i < b.N; i++ {
				r = runOptimizerMix(b, optimize)
			}
			b.ReportMetric(float64(r.llmCalls), "llm_calls")
			b.ReportMetric(float64(r.tokens), "llm_tokens")
			b.ReportMetric(float64(r.wall.Milliseconds()), "mix_wall_ms")
			if optimize {
				b.ReportMetric(reduction, "llm_call_cut_pct")
			}
		}
	}
	b.Run("unoptimized", bench(false))
	b.Run("optimized", bench(true))
}
