// Package aryn's benchmark harness regenerates every quantitative table
// and figure of the paper (run with `go test -bench . -benchmem`) and
// measures the ablations DESIGN.md calls out. Custom metrics carry the
// reproduced numbers: mAP/mAR for Table 1, correct/incorrect/refusal
// counts for Table 4, recall for the vector-index ablation, and LLM-call
// counts for the plan-rewrite ablation.
package aryn

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/docmodel"
	"aryn/internal/docparse"
	"aryn/internal/docset"
	"aryn/internal/embed"
	"aryn/internal/index"
	"aryn/internal/layout"
	"aryn/internal/llm"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
	"aryn/internal/qa"
	"aryn/internal/rag"
	"aryn/internal/vision"
)

// ingestedSystem builds and ingests the canonical evaluation corpus once.
func ingestedSystem(b *testing.B, nDocs int, ragK int) (*core.System, *ntsb.Corpus) {
	b.Helper()
	corpus, err := ntsb.GenerateCorpus(nDocs, 42)
	if err != nil {
		b.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		b.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7, Parallelism: 8, RAGK: ragK})
	if _, err := sys.Ingest(context.Background(), blobs); err != nil {
		b.Fatal(err)
	}
	return sys, corpus
}

// BenchmarkTable1Segmentation regenerates Table 1: COCO mAP/mAR of the
// four segmentation services on the DocLayNet-style benchmark. The metric
// names carry the reproduced values.
func BenchmarkTable1Segmentation(b *testing.B) {
	corpus := layout.GenerateCorpus(40, 11)
	services := layout.Table1Services(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, seg := range services {
			res := layout.EvaluateSegmenter(corpus, seg)
			b.ReportMetric(res.MAP, shortName(seg.Name())+"_mAP")
			b.ReportMetric(res.MAR, shortName(seg.Name())+"_mAR")
		}
	}
}

func shortName(s string) string {
	switch s {
	case "DocParse":
		return "docparse"
	case "Amazon Textract":
		return "textract"
	case "Unstructured (YoloX)":
		return "unstructured"
	default:
		return "azure"
	}
}

// BenchmarkTable3SchemaExtraction measures the Table 3 ETL step: full
// llmExtract of the 20-field schema over parsed reports (documents per
// second; accuracy is asserted in the core tests).
func BenchmarkTable3SchemaExtraction(b *testing.B) {
	incs := ntsb.GenerateIncidents(20, 42)
	parser := docparse.New()
	var docs []string
	for i := range incs {
		d, err := parser.ParseRaw(ntsb.BuildReport(&incs[i]))
		if err != nil {
			b.Fatal(err)
		}
		docs = append(docs, d.TextContent())
	}
	sim := llm.NewSim(7)
	fields := core.ExtractionSchema()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prompt := llm.ExtractPrompt(fields, docs[i%len(docs)])
		if _, err := sim.Complete(context.Background(), llm.Request{Prompt: prompt}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4LunaVsRAG regenerates Table 4: the 30-question benchmark
// under both systems. Metrics carry the correct/incorrect/refusal cells.
func BenchmarkTable4LunaVsRAG(b *testing.B) {
	sys, corpus := ingestedSystem(b, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4, err := qa.RunTable4(context.Background(), sys, corpus)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(t4.Luna.Correct), "luna_correct")
		b.ReportMetric(float64(t4.Luna.Incorrect), "luna_incorrect")
		b.ReportMetric(float64(t4.Luna.Refusal), "luna_refusal")
		b.ReportMetric(float64(t4.RAG.Correct), "rag_correct")
		b.ReportMetric(float64(t4.RAG.Incorrect), "rag_incorrect")
		b.ReportMetric(float64(t4.RAG.Refusal), "rag_refusal")
		b.ReportMetric(float64(t4.Luna.ByCategory[qa.ErrCounting]), "luna_err_counting")
		b.ReportMetric(float64(t4.Luna.ByCategory[qa.ErrFilter]), "luna_err_filter")
		b.ReportMetric(float64(t4.Luna.ByCategory[qa.ErrInterpretation]), "luna_err_interpretation")
	}
}

// BenchmarkFigure2DocParse measures DocParse parsing throughput
// (pages/op) — the Figure 2/3 pipeline end to end.
func BenchmarkFigure2DocParse(b *testing.B) {
	incs := ntsb.GenerateIncidents(10, 42)
	raws := make([]int, 0)
	_ = raws
	parser := docparse.New()
	reports := make([]*ntsb.Incident, len(incs))
	for i := range incs {
		reports[i] = &incs[i]
	}
	pages := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw := ntsb.BuildReport(reports[i%len(reports)])
		doc, err := parser.ParseRaw(raw)
		if err != nil {
			b.Fatal(err)
		}
		pages += doc.PageCount()
	}
	b.ReportMetric(float64(pages)/float64(b.N), "pages/op")
}

// BenchmarkFigure6QueryLatency measures end-to-end Luna query latency
// (plan + validate + rewrite + compile + execute with trace) for a
// metadata-backed analytics question.
func BenchmarkFigure6QueryLatency(b *testing.B) {
	sys, _ := ingestedSystem(b, 50, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Query.Ask(context.Background(), "How many incidents were there by state?"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRewrite compares LLM calls per document for a plan
// with three separate llmExtract operators versus the fused plan the
// §6.1 rewriter produces.
func BenchmarkAblationRewrite(b *testing.B) {
	raw := &luna.LogicalPlan{Ops: []luna.LogicalOp{
		{Op: luna.OpQueryDatabase},
		{Op: luna.OpLLMExtract, Fields: []llm.FieldSpec{{Name: "a", Type: "string"}}},
		{Op: luna.OpLLMExtract, Fields: []llm.FieldSpec{{Name: "b", Type: "string"}}},
		{Op: luna.OpLLMExtract, Fields: []llm.FieldSpec{{Name: "c", Type: "string"}}},
		{Op: luna.OpCount},
	}}
	_, rawCalls := luna.ExtractFieldsUsed(raw)
	fused := luna.Rewrite(raw, luna.DefaultRewrites())
	_, fusedCalls := luna.ExtractFieldsUsed(fused)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = luna.Rewrite(raw, luna.DefaultRewrites())
	}
	b.ReportMetric(float64(rawCalls), "llm_calls_per_doc_raw")
	b.ReportMetric(float64(fusedCalls), "llm_calls_per_doc_fused")
}

// BenchmarkAblationDedup measures the §7.2 counting-error fix: the same
// count question with and without the distinct-by-accident rewrite.
func BenchmarkAblationDedup(b *testing.B) {
	sys, corpus := ingestedSystem(b, 100, 100)
	accidents := map[string]bool{}
	for i := range corpus.Incidents {
		accidents[corpus.Incidents[i].AccidentNumber] = true
	}
	plan := &luna.LogicalPlan{Ops: []luna.LogicalOp{{Op: luna.OpQueryDatabase}, {Op: luna.OpCount}}}
	withDedup := luna.Rewrite(plan, luna.RewriteOptions{DedupByAccident: true})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		naive, err := sys.Query.Executor.Run(ctx, plan)
		if err != nil {
			b.Fatal(err)
		}
		fixed, err := sys.Query.Executor.Run(ctx, withDedup)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(naive.Answer.Number, "count_naive")
		b.ReportMetric(fixed.Answer.Number, "count_deduped")
		b.ReportMetric(float64(len(accidents)), "count_truth")
	}
}

// BenchmarkAblationETLvsQuery contrasts answering from pre-extracted
// metadata (ETL-time) against a query-time llmExtract sweep — the §5
// motivation for running operators at either time.
func BenchmarkAblationETLvsQuery(b *testing.B) {
	sys, _ := ingestedSystem(b, 50, 100)
	ctx := context.Background()

	b.Run("etl-time-metadata-filter", func(b *testing.B) {
		plan := &luna.LogicalPlan{Ops: []luna.LogicalOp{
			{Op: luna.OpQueryDatabase, Filters: []luna.FilterSpec{{Field: "aircraftDamage", Kind: "term", Value: "Substantial"}}},
			{Op: luna.OpCount},
		}}
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query.Executor.Run(ctx, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-time-llm-sweep", func(b *testing.B) {
		plan := &luna.LogicalPlan{Ops: []luna.LogicalOp{
			{Op: luna.OpQueryDatabase},
			{Op: luna.OpLLMExtract, Fields: []llm.FieldSpec{{Name: "damaged_part", Type: "string"}}},
			{Op: luna.OpGroupByAggregate, Key: "damaged_part", Agg: "count"},
		}}
		for i := 0; i < b.N; i++ {
			if _, err := sys.Query.Executor.Run(ctx, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRAGContext sweeps the RAG retrieval depth k and
// reports accuracy on the 30-question benchmark — the §7.2 observation
// that more context does not rescue aggregation questions.
func BenchmarkAblationRAGContext(b *testing.B) {
	sys, corpus := ingestedSystem(b, 100, 100)
	ctx := context.Background()
	for _, k := range []int{5, 20, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			pipe := rag.New(sys.Store, sys.LLM, sys.Embedder)
			pipe.K = k
			for i := 0; i < b.N; i++ {
				correct := 0
				for _, q := range qa.Questions(corpus) {
					resp, err := pipe.Answer(ctx, q.Text)
					if err != nil {
						b.Fatal(err)
					}
					ans := qa.ParseRAGAnswer(q, resp.Answer, resp.Text, resp.Refused)
					if qa.Grade(q, ans, q.GT(corpus)) == qa.Correct {
						correct++
					}
				}
				b.ReportMetric(float64(correct), "correct_of_30")
			}
		})
	}
}

// BenchmarkAblationVectorIndex compares exact brute-force kNN against
// HNSW on latency and recall.
func BenchmarkAblationVectorIndex(b *testing.B) {
	em := embed.NewHash(1)
	words := []string{"engine", "wing", "landing", "fuel", "bird", "wind", "runway",
		"pilot", "gear", "propeller", "stall", "fire", "terrain", "approach",
		"takeoff", "cruise", "collision", "water", "night", "maintenance"}
	texts := make([]string, 3000)
	for i := range texts {
		// Distinct vocabulary mixes per chunk, like real narratives.
		texts[i] = fmt.Sprintf("%s %s %s narrative %d",
			words[i%len(words)], words[(i/3)%len(words)], words[(i/7)%len(words)], i)
	}
	vecs := make([][]float32, len(texts))
	for i, t := range texts {
		vecs[i] = em.Embed(t)
	}
	query := em.Embed("engine failure during landing")

	exact := index.NewExact()
	hnsw := index.NewHNSW(3)
	for i, v := range vecs {
		exact.Add(i, v)
		hnsw.Add(i, v)
	}

	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exact.Search(query, 10)
		}
	})
	b.Run("hnsw", func(b *testing.B) {
		truth := map[int]bool{}
		for _, r := range exact.Search(query, 10) {
			truth[r.Doc] = true
		}
		hits := 0
		for i := 0; i < b.N; i++ {
			res := hnsw.Search(query, 10)
			if i == 0 {
				for _, r := range res {
					if truth[r.Doc] {
						hits++
					}
				}
			}
		}
		b.ReportMetric(float64(hits)/10, "recall@10")
	})
}

// BenchmarkBM25Search measures keyword retrieval throughput over the
// ingested chunk index.
func BenchmarkBM25Search(b *testing.B) {
	sys, _ := ingestedSystem(b, 100, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Store.SearchDocs(index.Query{Keyword: "engine power loss wing", K: 10})
	}
}

// BenchmarkEmbed measures embedding throughput for typical chunk text.
func BenchmarkEmbed(b *testing.B) {
	em := embed.NewHash(1)
	text := "The pilot reported that during cruise flight the engine experienced a total loss of power and the airplane sustained substantial damage to the left wing during the forced landing."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.Embed(text)
	}
}

// BenchmarkDocSetPipeline measures the structured-operator executor on a
// pure map/filter/reduce chain (no LLM), isolating engine overhead.
func BenchmarkDocSetPipeline(b *testing.B) {
	ec := docset.NewContext(docset.WithParallelism(8))
	input := make([]*docmodel.Document, 2000)
	for i := range input {
		d := docmodel.New(fmt.Sprintf("d%04d", i))
		d.SetProperty("bucket", fmt.Sprintf("b%d", i%7))
		d.SetProperty("i", i)
		input[i] = d
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := docset.FromDocuments(ec, input).
			Filter("even", func(d *docmodel.Document) (bool, error) {
				v, _ := d.Properties.Int("i")
				return v%2 == 0, nil
			}).
			GroupByAggregate("bucket", docset.AggCount, "").
			TakeAll(context.Background())
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentPage measures raw segmentation throughput per page.
func BenchmarkSegmentPage(b *testing.B) {
	incs := ntsb.GenerateIncidents(3, 42)
	raw := ntsb.BuildReport(&incs[0])
	seg := vision.NewModel("DocParse", 1, vision.ProfileDocParse())
	page := raw.Pages[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.Segment(page, "bench/1")
	}
}

// BenchmarkAblationOCR measures extraction robustness to OCR quality:
// Table 3 field accuracy over scanned documents at increasing character
// error rates — the §4 argument for high-quality parsing as the
// foundation of answer quality.
func BenchmarkAblationOCR(b *testing.B) {
	incs := ntsb.GenerateIncidents(20, 42)
	sim := llm.NewSim(7)
	for _, cer := range []float64{0, 0.02, 0.10} {
		b.Run(fmt.Sprintf("cer=%.2f", cer), func(b *testing.B) {
			parser := docparse.New(docparse.WithOCRErrorRate(cer))
			for i := 0; i < b.N; i++ {
				correct, total := 0, 0
				for j := range incs {
					inc := &incs[j]
					raw := ntsb.BuildReport(inc)
					raw.Meta["scanned"] = "true"
					doc, err := parser.ParseRaw(raw)
					if err != nil {
						b.Fatal(err)
					}
					prompt := llm.ExtractPrompt([]llm.FieldSpec{
						{Name: "us_state", Type: "string"},
						{Name: "aircraftDamage", Type: "string"},
						{Name: "registration", Type: "string"},
					}, doc.TextContent())
					resp, err := sim.Complete(context.Background(), llm.Request{Prompt: prompt})
					if err != nil {
						b.Fatal(err)
					}
					for field, want := range map[string]string{
						"us_state":       inc.StateAbbrev(),
						"aircraftDamage": inc.Damage,
						"registration":   inc.Registration,
					} {
						total++
						if strings.Contains(resp.Text, fmt.Sprintf("%q:%q", field, want)) {
							correct++
						}
					}
				}
				b.ReportMetric(float64(correct)/float64(total), "field_accuracy")
			}
		})
	}
}

// extractionPrompts builds the repeated-query workload the middleware
// benchmarks share: the full Table 3 extraction prompt over n parsed
// reports.
func extractionPrompts(b *testing.B, n int) []string {
	b.Helper()
	incs := ntsb.GenerateIncidents(n, 42)
	parser := docparse.New()
	fields := core.ExtractionSchema()
	prompts := make([]string, 0, n)
	for i := range incs {
		d, err := parser.ParseRaw(ntsb.BuildReport(&incs[i]))
		if err != nil {
			b.Fatal(err)
		}
		prompts = append(prompts, llm.ExtractPrompt(fields, d.TextContent()))
	}
	return prompts
}

// BenchmarkMiddlewareRepeatedExtract measures one sweep of the 20-prompt
// extraction workload per op, uncached versus served from the middleware
// cache — the repeated-query case (same documents re-extracted across
// queries) that motivates the cache layer.
func BenchmarkMiddlewareRepeatedExtract(b *testing.B) {
	prompts := extractionPrompts(b, 20)
	ctx := context.Background()

	b.Run("uncached", func(b *testing.B) {
		sim := llm.NewSim(7)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range prompts {
				if _, err := sim.Complete(ctx, llm.Request{Prompt: p}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		stack := llm.NewStack(llm.NewSim(7))
		for _, p := range prompts { // warm sweep
			if _, err := stack.Complete(ctx, llm.Request{Prompt: p}); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, p := range prompts {
				if _, err := stack.Complete(ctx, llm.Request{Prompt: p}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		st := stack.StackStats()
		b.ReportMetric(float64(st.Cache.Hits)/float64(st.Cache.Hits+st.Cache.Misses), "hit_rate")
		b.ReportMetric(float64(st.Cache.Saved.Total())/float64(b.N), "tokens_saved/op")
	})
}

// BenchmarkMiddlewareCacheSpeedup reports the acceptance metric directly:
// the wall-time ratio of the uncached extraction sweep to the cache-served
// sweep (cache_speedup_x must stay >= 5).
func BenchmarkMiddlewareCacheSpeedup(b *testing.B) {
	prompts := extractionPrompts(b, 20)
	ctx := context.Background()
	const sweeps = 20

	for i := 0; i < b.N; i++ {
		sim := llm.NewSim(7)
		uncachedStart := time.Now()
		for s := 0; s < sweeps; s++ {
			for _, p := range prompts {
				if _, err := sim.Complete(ctx, llm.Request{Prompt: p}); err != nil {
					b.Fatal(err)
				}
			}
		}
		uncached := time.Since(uncachedStart)

		stack := llm.NewStack(llm.NewSim(7))
		for _, p := range prompts { // warm sweep
			if _, err := stack.Complete(ctx, llm.Request{Prompt: p}); err != nil {
				b.Fatal(err)
			}
		}
		cachedStart := time.Now()
		for s := 0; s < sweeps; s++ {
			for _, p := range prompts {
				if _, err := stack.Complete(ctx, llm.Request{Prompt: p}); err != nil {
					b.Fatal(err)
				}
			}
		}
		cached := time.Since(cachedStart)
		b.ReportMetric(float64(uncached)/float64(cached), "cache_speedup_x")
	}
}

// BenchmarkMiddlewareSingleflight measures overlapping identical queries:
// 8 workers issuing the same prompt concurrently against a model with a
// 2ms simulated network round-trip. The dedup layer collapses them to one
// upstream call per round (cache disabled to isolate the effect).
func BenchmarkMiddlewareSingleflight(b *testing.B) {
	prompts := extractionPrompts(b, 1)
	ctx := context.Background()
	sim := llm.NewSim(7, llm.WithLatency(2*time.Millisecond))
	stack := llm.NewStack(sim, llm.WithoutCache(), llm.WithBatching(1, 0))
	meter := llm.NewMeter(stack)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := meter.Complete(ctx, llm.Request{Prompt: prompts[0]}); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	st := stack.StackStats()
	b.ReportMetric(float64(st.Flight.Shared)/float64(b.N), "collapsed/op")
	b.ReportMetric(float64(meter.Usage().Calls)/float64(b.N), "upstream_calls/op")
}

// BenchmarkMiddlewareBatchedPipeline runs a docset llmExtract stage over
// 64 documents with 8 workers against a model with a 2ms round-trip — the
// paper's batched extract execution. Batched dispatch pays the round-trip
// once per group instead of once per document.
func BenchmarkMiddlewareBatchedPipeline(b *testing.B) {
	incs := ntsb.GenerateIncidents(64, 42)
	parser := docparse.New()
	input := make([]*docmodel.Document, 0, len(incs))
	for i := range incs {
		d, err := parser.ParseRaw(ntsb.BuildReport(&incs[i]))
		if err != nil {
			b.Fatal(err)
		}
		input = append(input, d)
	}
	fields := core.ExtractionSchema()

	run := func(b *testing.B, opts ...llm.StackOption) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Fresh stack per op: batching stats and cache start cold.
			sim := llm.NewSim(7, llm.WithLatency(2*time.Millisecond))
			stack := llm.NewStack(sim, opts...)
			meter := llm.NewMeter(stack)
			ec := docset.NewContext(docset.WithLLM(meter), docset.WithParallelism(8))
			docs := make([]*docmodel.Document, len(input))
			for j, d := range input {
				docs[j] = d.Clone()
			}
			b.StartTimer()
			if _, err := docset.FromDocuments(ec, docs).LLMExtract(fields).TakeAll(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			st := stack.StackStats()
			if st.Batch.Batches > 0 {
				b.ReportMetric(float64(st.Batch.Requests)/float64(st.Batch.Batches), "mean_batch_size")
			}
			b.ReportMetric(float64(meter.Usage().Calls), "upstream_calls")
			b.StartTimer()
		}
	}
	b.Run("unbatched", func(b *testing.B) { run(b, llm.WithBatching(1, 0)) })
	b.Run("batched", func(b *testing.B) { run(b, llm.WithBatching(8, time.Millisecond)) })
}
