// Conversational analytics: the §6.2 interaction pattern — ask a
// question, inspect the generated plan and execution trace, then refine
// with follow-ups ("what about …", "show only …") that implicitly reuse
// the previous query. This is the Figure 6 user experience as an API.
//
//	go run ./examples/conversational
package main

import (
	"context"
	"fmt"
	"log"

	"aryn/internal/core"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

func main() {
	ctx := context.Background()

	corpus, err := ntsb.GenerateCorpus(60, 5)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		log.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7})
	if _, err := sys.Ingest(ctx, blobs); err != nil {
		log.Fatal(err)
	}

	// Opening question.
	res, err := sys.Ask(ctx, "How many incidents involved substantial damage?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1: %s\nA1: %s\n\n", res.Question, res.Answer.String())

	// Verifiability: the user inspects the plan...
	fmt.Println("generated plan (user-inspectable, §6.2):")
	fmt.Println(res.Rewritten.JSON())

	// ...and the per-operator lineage trace before trusting the answer.
	fmt.Println("\nexecution trace:")
	fmt.Print(res.Trace.String())

	// Follow-up 1: switch the damage level, keep the query shape.
	res2, err := sys.Ask(ctx, "what about destroyed aircraft?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ2 (follow-up): %s\nA2: %s\n", res2.Question, res2.Answer.String())
	fmt.Println("merged plan:", res2.Rewritten.String())

	// Follow-up 2: narrow geographically, still keeping the terminal.
	res3, err := sys.Ask(ctx, "show only results in California")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ3 (follow-up): %s\nA3: %s\n", res3.Question, res3.Answer.String())
	fmt.Println("merged plan:", res3.Rewritten.String())

	// Power-user path: edit the plan DAG directly and re-run (the Figure
	// 6 "modify any part of the plan" affordance). The same JSON shape is
	// served over HTTP: POST /plan to inspect, edit, then POST /query
	// {"plan": ...} to re-execute.
	edited := res3.Rewritten.Clone()
	for i := range edited.Nodes {
		if edited.Nodes[i].Op == luna.OpQueryDatabase {
			edited.Nodes[i].Filters = nil // drop all filters
		}
	}
	res4, err := sys.Query.RunPlan(ctx, "(edited plan: no filters)", edited)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ4 (user-edited plan): %s -> %s\n", res4.Question, res4.Answer.String())

	// Joins make plans true DAGs: two scan roots feeding one join node
	// (the §9 "extend Aryn to support joins" direction as a logical
	// operator). Fatal incidents that happened in a state which also saw
	// substantially damaged aircraft.
	joinPlan := &luna.LogicalPlan{
		Nodes: []luna.PlanNode{
			{ID: "fatal", LogicalOp: luna.LogicalOp{Op: luna.OpQueryDatabase,
				Filters: []luna.FilterSpec{{Field: "fatalities", Kind: "gte", Value: 1}}}},
			{ID: "damaged", LogicalOp: luna.LogicalOp{Op: luna.OpQueryDatabase,
				Filters: []luna.FilterSpec{{Field: "aircraftDamage", Kind: "term", Value: "Substantial"}}}},
			{ID: "samestate", Inputs: []string{"fatal", "damaged"}, LogicalOp: luna.LogicalOp{
				Op: luna.OpJoin, LeftKey: "us_state", RightKey: "us_state", JoinKind: "semi"}},
			{ID: "total", Inputs: []string{"samestate"}, LogicalOp: luna.LogicalOp{Op: luna.OpCount}},
		},
		Output: "total",
	}
	res5, err := sys.Query.RunPlan(ctx, "(join plan: fatal incidents in states with substantial damage)", joinPlan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ5 (DAG join plan):\n%s\n-> %s\n", joinPlan.String(), res5.Answer.String())

	// EXPLAIN ANALYZE: the executed plan annotated with per-node runtime —
	// wall/busy time, docs in/out, LLM calls/tokens/cache hits. The two
	// scan roots are independent branches: the scheduler ran them
	// concurrently (their busy windows overlap), under one worker budget.
	// Over HTTP the same view is POST /plan {"plan": ..., "analyze": true}
	// or POST /query {"include_plan": true} (see docs/plan-api.md).
	fmt.Println("\nEXPLAIN ANALYZE (executed plan with per-node runtime):")
	fmt.Println(res5.Rewritten.AnnotatedJSON(res5.Exec))
}
