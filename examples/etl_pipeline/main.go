// ETL pipeline: the paper's Figure 4 script, in Go. Reads raw binaries,
// partitions them with DocParse, extracts a three-field schema with an
// LLM (Figure 5 shows the output), explodes into chunks, embeds them, and
// writes everything to an index — with an intermediate materialization for
// debugging (§5.3).
//
//	go run ./examples/etl_pipeline
package main

import (
	"context"
	"fmt"
	"log"

	"aryn/internal/core"
	"aryn/internal/docparse"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/llm"
	"aryn/internal/ntsb"
)

func main() {
	ctx := context.Background()

	corpus, err := ntsb.GenerateCorpus(10, 3)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		log.Fatal(err)
	}

	// The Figure 4 schema.
	schema := []llm.FieldSpec{
		{Name: "us_state", Type: "string"},
		{Name: "probable_cause", Type: "string"},
		{Name: "weather_related", Type: "bool"},
	}

	ec := docset.NewContext(docset.WithLLM(llm.NewSim(7)), docset.WithParallelism(4))
	store := index.NewStore()
	cache := docset.NewMemoryCache()

	ds := docset.ReadBinary(ec, blobs).
		Partition(docparse.New()).
		LLMExtract(schema).
		MaterializeMemory(cache, "post-extract"). // inspect intermediates (§5.3)
		Write(store).
		Explode().
		MergeChunks(120).
		Embed().
		Write(store)

	fmt.Println("pipeline:")
	fmt.Println(ds.PlanString())
	fmt.Println()

	docs, trace, err := ds.Execute(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d chunks indexed, %d parent docs\n\n", len(docs), store.NumDocs())
	fmt.Println("per-operator trace:")
	fmt.Print(trace.String())

	// Figure 5: the llmExtract output for the first document.
	if snap, ok := cache.Get("post-extract"); ok && len(snap) > 0 {
		d := snap[0]
		fmt.Printf("\nllmExtract output for %s (Figure 5):\n", d.ID)
		out := map[string]any{}
		for _, f := range schema {
			if v, ok := d.Properties.Get(f.Name); ok {
				out[f.Name] = v
			}
		}
		for _, k := range []string{"us_state", "probable_cause", "weather_related"} {
			fmt.Printf("  %-16s %v\n", k+":", out[k])
		}
	}

	// The store is now queryable.
	hits := store.SearchDocs(index.Query{Keyword: "engine power", K: 3})
	fmt.Printf("\nkeyword search \"engine power\" -> %d documents\n", len(hits))

	_ = core.ExtractionSchema // full Table 3 schema lives in core
}
