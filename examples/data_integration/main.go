// Data integration: the paper's §1 pattern ("the competitive information
// may involve a lookup in a database in addition to a sweep-and-harvest
// phase") and §9 future work (joins, external sources). A sweep over the
// incident corpus is joined against an external manufacturer registry —
// the data-warehouse dimension table — to answer a question neither
// source can answer alone.
//
//	go run ./examples/data_integration
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"aryn/internal/core"
	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/ntsb"
)

// manufacturerRegistry is the external "database": fleet sizes by maker,
// the denominator an incident-rate analysis needs.
var manufacturerRegistry = []*docmodel.Document{
	dim("Cessna", "USA", 44000),
	dim("Piper", "USA", 23000),
	dim("Beech", "USA", 17000),
	dim("Cirrus", "USA", 8000),
	dim("Mooney", "USA", 6500),
	dim("Robinson", "USA", 9800),
	dim("Bell", "USA", 4100),
}

func dim(maker, country string, fleet int) *docmodel.Document {
	d := docmodel.New("registry-" + maker)
	d.SetProperty("maker", maker)
	d.SetProperty("country", country)
	d.SetProperty("fleet_size", fleet)
	return d
}

func main() {
	ctx := context.Background()

	corpus, err := ntsb.GenerateCorpus(100, 42)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		log.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7, Parallelism: 8})
	if _, err := sys.Ingest(ctx, blobs); err != nil {
		log.Fatal(err)
	}

	// Sweep phase: derive the manufacturer from the aircraft field (the
	// first token of make+model) with an ordinary map.
	incidents := docset.QueryDatabase(sys.EC, sys.Store, index.Query{}).
		Map("manufacturer", func(d *docmodel.Document) (*docmodel.Document, error) {
			d.SetProperty("manufacturer", strings.SplitN(d.Property("aircraft"), " ", 2)[0])
			return d, nil
		})

	// Integration phase: join against the registry, then compute
	// incidents per 10k fleet aircraft per manufacturer.
	registry := docset.FromDocuments(sys.EC, manufacturerRegistry)
	rates, err := incidents.
		Join(registry, "manufacturer", "maker", "mfr", docset.InnerJoin).
		GroupByAggregate("manufacturer", docset.AggCount, "").
		TakeAll(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fleet := map[string]float64{}
	for _, r := range manufacturerRegistry {
		f, _ := r.Properties.Float("fleet_size")
		fleet[r.Property("maker")] = f
	}
	fmt.Println("incidents per 10,000 registered aircraft, by manufacturer:")
	fmt.Printf("%-12s %10s %12s %14s\n", "maker", "incidents", "fleet", "per 10k")
	for _, d := range rates {
		maker := d.Property("manufacturer")
		n, _ := d.Properties.Float("value")
		fmt.Printf("%-12s %10.0f %12.0f %14.2f\n", maker, n, fleet[maker], 1e4*n/fleet[maker])
	}

	// Anti-join: incidents whose manufacturer is NOT in the registry —
	// the data-quality check an integration pipeline runs.
	unknown, err := incidents.
		Join(registry, "manufacturer", "maker", "", docset.AntiJoin).
		GroupByAggregate("manufacturer", docset.AggCount, "").
		TakeAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmanufacturers missing from the registry:")
	for _, d := range unknown {
		n, _ := d.Properties.Int("value")
		fmt.Printf("  %-24s %d incidents\n", d.Property("manufacturer"), n)
	}
}
