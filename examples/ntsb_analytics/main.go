// NTSB analytics: the "sweep and harvest" session from the paper's
// introduction — questions whose answers require combining metadata
// filters with query-time LLM extraction and filtering over free text,
// including the flagship "most common parts with substantial damage in
// single-engine aircraft" analysis.
//
//	go run ./examples/ntsb_analytics
package main

import (
	"context"
	"fmt"
	"log"

	"aryn/internal/core"
	"aryn/internal/ntsb"
)

func main() {
	ctx := context.Background()

	corpus, err := ntsb.GenerateCorpus(100, 42)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		log.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7, Parallelism: 8})
	if _, err := sys.Ingest(ctx, blobs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d reports over %d accidents\n\n", len(corpus.Incidents), 100)

	questions := []string{
		// Metadata-only: answered from the extracted Table 3 schema.
		"How many incidents involved substantial damage?",
		"Which state had the most incidents?",
		// Semantic filter: the answer is only in the narrative text.
		"Which incidents occurred in July involving birds?",
		// Sweep-and-harvest: metadata narrowing plus query-time extraction
		// with LLM semantic operators (§2's motivating example).
		"What are the top three most commonly damaged parts in single-engine aircraft incidents?",
		// Aggregation over extracted numerics.
		"What was the maximum wind speed recorded, in knots?",
	}

	for _, q := range questions {
		res, err := sys.Query.Ask(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q: %s\nA: %s\n", q, res.Answer.String())
		fmt.Printf("plan: %d nodes", len(res.Rewritten.Nodes))
		for _, n := range res.Rewritten.Nodes {
			fmt.Printf(" | %s", n.Op)
		}
		fmt.Println()
		// Lineage: how many documents each operator saw and emitted.
		if nt := res.Trace.Nodes[0]; nt != nil {
			fmt.Printf("scanned %d documents at the root\n", nt.Out)
		}
		fmt.Println()
	}

	// LLM usage across the whole session — the cost of query-time
	// semantic operators.
	u := sys.LLM.Usage()
	fmt.Printf("session LLM usage: %d calls, %d prompt tokens, %d completion tokens\n",
		u.Calls, u.PromptTokens, u.CompletionTokens)
}
