// Quickstart: the minimal end-to-end Aryn flow — generate a small corpus
// of synthetic NTSB reports, ingest it (DocParse → llmExtract → index),
// and ask one natural-language question.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"aryn/internal/core"
	"aryn/internal/ntsb"
)

func main() {
	ctx := context.Background()

	// 1. Get raw documents. In production these are PDFs; here they are
	// synthetic NTSB incident reports in the rawdoc format.
	corpus, err := ntsb.GenerateCorpus(25, 1)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the system and run the ETL pipeline of Figure 4:
	// partition → llmExtract(schema) → write parents → explode → embed →
	// write chunks.
	sys := core.New(core.Config{Seed: 7})
	stats, err := sys.Ingest(ctx, blobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d documents (%d chunks) in %s using %d LLM calls\n\n",
		stats.Documents, stats.Chunks, stats.Wall.Round(1e6), stats.Usage.Calls)

	// 3. Ask a question. Luna plans it, validates and optimizes the plan,
	// compiles it to a Sycamore pipeline, and executes with full lineage.
	res, err := sys.Ask(ctx, "How many incidents were there by state?")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Q:", res.Question)
	fmt.Println("A:", res.Answer.String())
	fmt.Println("\nthe plan Luna generated:")
	fmt.Println(res.Rewritten.String())
}
