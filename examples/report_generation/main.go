// Report generation / BI: the §2 use case of extracting a structured
// summary dataset from a document collection — group incidents by state,
// summarize each group's narratives with the LLM, cluster the fleet-wide
// causes, and emit a compact brief. This is the "LLM-powered document
// pipeline" pattern, built directly on Sycamore operators.
//
//	go run ./examples/report_generation
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"aryn/internal/core"
	"aryn/internal/docset"
	"aryn/internal/index"
	"aryn/internal/ntsb"
)

func main() {
	ctx := context.Background()

	corpus, err := ntsb.GenerateCorpus(60, 9)
	if err != nil {
		log.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		log.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7, Parallelism: 8})
	if _, err := sys.Ingest(ctx, blobs); err != nil {
		log.Fatal(err)
	}

	// Section 1: structured rollup — incidents per damage level.
	rollup, err := docset.QueryDatabase(sys.EC, sys.Store, index.Query{}).
		GroupByAggregate("aircraftDamage", docset.AggCount, "").
		TakeAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Damage rollup ==")
	for _, d := range rollup {
		n, _ := d.Properties.Int("value")
		fmt.Printf("  %-12s %d\n", d.Property("aircraftDamage"), n)
	}

	// Section 2: per-state narrative briefs via llmReduceByKey — one LLM
	// summary per group (Table 2b).
	briefs, err := docset.QueryDatabase(sys.EC, sys.Store, index.Query{}).
		LLMReduceByKey("us_state", "summarize the incidents in this state in one paragraph").
		TakeAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(briefs, func(i, j int) bool {
		a, _ := briefs[i].Properties.Int("group_size")
		b, _ := briefs[j].Properties.Int("group_size")
		return a > b
	})
	fmt.Println("\n== State briefs (top 3 states) ==")
	for i, d := range briefs {
		if i == 3 {
			break
		}
		n, _ := d.Properties.Int("group_size")
		text := d.Text
		if len(text) > 160 {
			text = text[:159] + "…"
		}
		fmt.Printf("  %s (%d incidents): %s\n", d.Property("us_state"), n, text)
	}

	// Section 3: thematic clustering of probable causes (llmCluster).
	clustered, err := docset.QueryDatabase(sys.EC, sys.Store, index.Query{}).
		LLMCluster(4, []string{"probable_cause"}, 17).
		GroupByAggregate("cluster_label", docset.AggCount, "").
		TakeAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Cause themes (k-means over cause statements) ==")
	for _, d := range clustered {
		n, _ := d.Properties.Int("value")
		fmt.Printf("  %-40s %d incidents\n", d.Property("cluster_label"), n)
	}

	// Section 4: persist the brief's source dataset for downstream BI.
	out := "/tmp/aryn_report_dataset.jsonl.gz"
	docs, err := docset.QueryDatabase(sys.EC, sys.Store, index.Query{}).TakeAll(ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := docset.WriteJSONL(out, docs); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %d structured records to %s\n", len(docs), out)
}
