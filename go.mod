module aryn

go 1.24
