# Developer and CI entry points. CI (.github/workflows/ci.yml) runs the
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test lint bench bench-retrieval ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Bench smoke: every benchmark compiles and completes one iteration, so
# bench_test.go cannot silently rot. Full runs use -benchtime=default.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Retrieval perf trajectory: run the hot-path benchmarks and refresh the
# "after" section of BENCH_retrieval.json (the "before" section is pinned
# to the pre-overhaul baseline). CI uploads the JSON as an artifact.
# Two steps (not a pipe) so a failed/panicked benchmark run fails the
# target instead of benchjson swallowing the partial output.
bench-retrieval:
	tmp=$$(mktemp); \
	$(GO) test -run=NONE -bench 'BenchmarkRetrieval' -benchmem -benchtime=1s . > $$tmp || { rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchjson -out BENCH_retrieval.json -label after < $$tmp; \
	status=$$?; rm -f $$tmp; exit $$status

ci: build lint test bench
