# Developer and CI entry points. CI (.github/workflows/ci.yml) runs the
# same targets, so a green `make ci` locally means a green pipeline.

GO ?= go

.PHONY: build test lint bench ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Bench smoke: every benchmark compiles and completes one iteration, so
# bench_test.go cannot silently rot. Full runs use -benchtime=default.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

ci: build lint test bench
