# Developer and CI entry points. CI (.github/workflows/ci.yml) runs the
# same targets (make ci across an os×Go matrix, plus smoke and
# bench-retrieval jobs), so a green `make ci` locally means a green
# pipeline.

GO ?= go
# Pinned staticcheck release; CI installs exactly this and caches it.
STATICCHECK_VERSION ?= 2025.1.1
# Pinned govulncheck release; CI installs exactly this and caches it.
GOVULNCHECK_VERSION ?= v1.1.4
# Where the arynvet vet tool is built; override for a custom location.
ARYNVET_BIN ?= $(CURDIR)/.bin/arynvet

.PHONY: build test lint staticcheck print-staticcheck-version govulncheck print-govulncheck-version arynvet-bin vet-custom smoke bench bench-retrieval bench-serving bench-optimizer chaos docs-check cover fuzz-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi

# Static analysis beyond vet. Skips with a notice when the binary is not
# installed (the dev container has no network); CI always installs the
# pinned version, so findings cannot land unseen.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION))"; \
	fi

# CI derives its install/cache pin from here so the version lives in
# exactly one place.
print-staticcheck-version:
	@echo $(STATICCHECK_VERSION)

# Known-vulnerability scan. Like staticcheck: skips with a notice when
# the binary is absent (no network in the dev container); CI installs
# the pinned version in its own non-blocking job.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI pins $(GOVULNCHECK_VERSION))"; \
	fi

print-govulncheck-version:
	@echo $(GOVULNCHECK_VERSION)

# Build the arynvet vet tool and print its path, so callers can say
# `go vet -vettool=$(make -s arynvet-bin) ./...`. Built from source
# every time (go build is incremental, so this is cheap).
arynvet-bin:
	@mkdir -p $(dir $(ARYNVET_BIN))
	@$(GO) build -o $(ARYNVET_BIN) ./cmd/arynvet
	@echo $(ARYNVET_BIN)

# The repo's custom analyzer suite (determinism, lockheld, ctxflow,
# wirestable, sseorder) over the whole tree. Any diagnostic fails the
# target; sanctioned exceptions carry //lint:allow markers in the source.
# See docs/static-analysis.md.
vet-custom:
	@bin=$$($(MAKE) -s arynvet-bin) && $(GO) vet -vettool=$$bin ./...

# End-to-end serving smoke: boot arynd, health check, ingest→query→chat
# round-trip over HTTP, graceful shutdown.
smoke:
	./scripts/smoke.sh

# Documentation gates: every internal/ package has a doc.go package
# comment, and every relative markdown link resolves. Hermetic (no
# network, no Go toolchain); CI runs it as its own job, separate from
# the build matrix.
docs-check:
	./scripts/docscheck.sh

# Bench smoke: every benchmark compiles and completes one iteration, so
# bench_test.go cannot silently rot. Full runs use -benchtime=default.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Retrieval perf trajectory: run the hot-path benchmarks and refresh the
# "after" section of BENCH_retrieval.json (the "before" section is pinned
# to the pre-overhaul baseline). CI uploads the JSON as an artifact.
# Two steps (not a pipe) so a failed/panicked benchmark run fails the
# target instead of benchjson swallowing the partial output.
bench-retrieval:
	tmp=$$(mktemp); \
	$(GO) test -run=NONE -bench 'BenchmarkRetrieval' -benchmem -benchtime=1s . > $$tmp || { rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchjson -out BENCH_retrieval.json -label after < $$tmp; \
	status=$$?; rm -f $$tmp; exit $$status

# Optimizer trajectory: run the standard query mix with the cost-based
# optimize phase off and on, and refresh the "optimizer" section of
# BENCH_optimizer.json. The benchmark itself enforces the contract —
# byte-identical answers and a >=30% LLM-call cut — so a regression in
# any rewrite fails the target before the JSON is touched. Same
# two-step-not-a-pipe shape as bench-retrieval.
bench-optimizer:
	tmp=$$(mktemp); \
	$(GO) test -run=NONE -bench 'BenchmarkOptimizer' -benchtime=1x . > $$tmp || { rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchjson -out BENCH_optimizer.json -label optimizer < $$tmp; \
	status=$$?; rm -f $$tmp; exit $$status

# Coverage gate: merged profile over ./..., then per-package floors for
# the optimization-loop packages (internal/cost, internal/luna,
# internal/docset). CI uploads coverage.out as an artifact.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	./scripts/covercheck.sh coverage.out

# Short native-fuzz smoke over the plan surface: decode, validate, and
# the cost-rewrite phase each fuzz briefly beyond their seed corpora
# (testdata/fuzz/). One -fuzz pattern per invocation — go test allows
# only a single fuzzing target at a time.
fuzz-smoke:
	$(GO) test ./internal/luna/ -run '^$$' -fuzz '^FuzzPlanDecode$$' -fuzztime 10s
	$(GO) test ./internal/luna/ -run '^$$' -fuzz '^FuzzValidatePlan$$' -fuzztime 10s
	$(GO) test ./internal/luna/ -run '^$$' -fuzz '^FuzzCostRewrite$$' -fuzztime 10s

# Serving-load trajectory: boot arynd, drive the standard scenario mixes
# with arynload, and refresh the "after" section of BENCH_serving.json.
# Knobs (BENCH_SERVING_QPS, _DURATION, _MIXES, ...) are env vars — see
# scripts/bench_serving.sh; CI runs a short burst and uploads the JSON.
bench-serving:
	./scripts/bench_serving.sh

# Chaos gate: boot arynd with the /faults endpoint and drive the opt-in
# chaos mix (scripted LLM outages, flaky backends, cache kills, ingest
# saturation) through arynload. The mix's zero-error SLO is the
# degradation contract: degraded 200s, never 500s. Knobs (CHAOS_QPS,
# _DURATION, ...) are env vars — see scripts/chaos.sh.
chaos:
	./scripts/chaos.sh

ci: build lint staticcheck vet-custom test bench
