package docset

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"aryn/internal/llm"
)

// Trace is the execution lineage of one plan run: per-operator input and
// output counts, durations, retries, and sampled records. Luna surfaces
// this to users for answer auditing (§6.2: "inspecting the data flowing
// out of each of the operators").
type Trace struct {
	Nodes []*NodeTrace
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// LLM reports call-middleware activity during this run (cache hits,
	// singleflight collapses, batch sizes) when the context's client
	// carries a middleware stack; nil otherwise.
	LLM *llm.StackStats
}

// NodeTrace is the lineage record for one operator.
type NodeTrace struct {
	// Name is the operator's display name (e.g. "llmFilter[engine problems]").
	Name string
	// In and Out count documents entering and leaving the operator.
	In, Out int64
	// Retries counts transient-failure retries performed.
	Retries int64
	// Duration is the operator's busy time across workers.
	Duration time.Duration
	// Samples holds up to SampleSize one-line summaries of output docs.
	Samples []string

	mu  sync.Mutex
	cap int
}

func newNodeTrace(name string, sampleCap int) *NodeTrace {
	return &NodeTrace{Name: name, cap: sampleCap}
}

func (n *NodeTrace) addSample(s string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.Samples) < n.cap {
		n.Samples = append(n.Samples, s)
	}
}

func (n *NodeTrace) addDuration(d time.Duration) {
	n.mu.Lock()
	n.Duration += d
	n.mu.Unlock()
}

// String renders the trace as the operator table the CLI shows.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %8s %8s %8s %10s\n", "operator", "in", "out", "retries", "busy")
	for _, n := range t.Nodes {
		fmt.Fprintf(&sb, "%-40s %8d %8d %8d %10s\n", truncName(n.Name, 40), n.In, n.Out, n.Retries, n.Duration.Round(time.Microsecond))
	}
	fmt.Fprintf(&sb, "wall time: %s\n", t.Wall.Round(time.Microsecond))
	if t.LLM != nil {
		fmt.Fprintf(&sb, "llm middleware: %s\n", t.LLM)
	}
	return sb.String()
}

// Detailed renders the trace including sampled records (drill-down view).
func (t *Trace) Detailed() string {
	var sb strings.Builder
	sb.WriteString(t.String())
	for _, n := range t.Nodes {
		if len(n.Samples) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "\n%s samples:\n", n.Name)
		for _, s := range n.Samples {
			fmt.Fprintf(&sb, "  - %s\n", truncName(s, 120))
		}
	}
	return sb.String()
}

// Node returns the trace entry with the given name (nil if absent).
func (t *Trace) Node(name string) *NodeTrace {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
