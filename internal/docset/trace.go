package docset

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aryn/internal/llm"
)

// Trace is the execution lineage of one plan run: per-operator input and
// output counts, durations, retries, and sampled records. Luna surfaces
// this to users for answer auditing (§6.2: "inspecting the data flowing
// out of each of the operators").
type Trace struct {
	Nodes []*NodeTrace
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// LLM reports call-middleware activity during this run (cache hits,
	// singleflight collapses, batch sizes) when the context's client
	// carries a middleware stack; nil otherwise. When branches of one
	// query execute concurrently their middleware windows overlap, so the
	// scheduler replaces the per-branch deltas with a single query-level
	// delta in the merged trace (per-node attribution lives in the
	// NodeTrace LLM counters, which count each call exactly once).
	LLM *llm.StackStats
}

// NodeTrace is the lineage record for one operator.
type NodeTrace struct {
	// Name is the operator's display name (e.g. "llmFilter[engine problems]").
	Name string
	// Tag is the logical plan-node ID this operator was compiled from
	// ("" for operators with no logical counterpart, e.g. shared-subtree
	// replay sources). EXPLAIN ANALYZE aggregates runtime stats by tag.
	Tag string
	// In and Out count documents entering and leaving the operator.
	In, Out int64
	// Retries counts transient-failure retries performed.
	Retries int64
	// BackoffNS accumulates nanoseconds spent waiting between retry
	// attempts — time the operator was stalled on backoff, not busy —
	// so EXPLAIN ANALYZE can separate "slow" from "retrying".
	BackoffNS int64
	// FirstOutNS is how long after its pipeline started this operator
	// emitted its first output document (nanoseconds; 0 when it never
	// emitted). Alongside Duration, it is what EXPLAIN ANALYZE shows as
	// first-batch latency: how quickly results began flowing, not just
	// how long the operator stayed busy.
	FirstOutNS int64
	// Batches counts streaming-edge batch arrivals through this operator
	// (the replay source of a streaming Task edge). 0 for fused stages,
	// whose documents flow one envelope at a time.
	Batches int64
	// Err records why this operator failed ("" on success). Execute fills
	// it after the run settles, so partial results stay auditable: the
	// trace shows exactly which node broke and what flowed before it did.
	Err string
	// Duration is the operator's busy time across workers.
	Duration time.Duration
	// LLMCalls, PromptTokens, CompletionTokens, and CacheHits count
	// language-model activity issued by this operator's workers. Calls are
	// attributed at dispatch, so a subtree shared by several consumers
	// reports its usage exactly once no matter how many branches replay
	// its output. Token counts are true upstream spend: responses served
	// from the middleware cache count as a CacheHit with zero tokens.
	LLMCalls         int64
	PromptTokens     int64
	CompletionTokens int64
	CacheHits        int64
	// Escalations, ProxyKept, and ProxyDropped are proxy-cascade counters
	// (llmFilterCascade stages only; zero elsewhere): documents escalated
	// to the full LLM because their proxy score fell inside the threshold
	// band, kept on proxy score alone, and dropped on proxy score alone.
	Escalations  int64
	ProxyKept    int64
	ProxyDropped int64
	// Samples holds up to SampleSize one-line summaries of output docs.
	Samples []string

	mu  sync.Mutex
	cap int
	// start/end bound the operator's busy window (first work started /
	// last work finished). Zero when the operator never ran work.
	start, end time.Time
	// epoch is when the pipeline began executing; FirstOutNS is measured
	// against it. Set once before the stage goroutines start.
	epoch time.Time
}

// wallclock is the package's single sanctioned wall-clock read. Trace
// spans and EXPLAIN ANALYZE timings are observability output, never
// result bytes, so they may see real time — but only through this seam,
// so any new wall-clock read added to an execution path is flagged at
// the point it is introduced.
var wallclock = time.Now //lint:allow determinism trace-only timing seam; spans never reach result bytes

func newNodeTrace(name, tag string, sampleCap int) *NodeTrace {
	return &NodeTrace{Name: name, Tag: tag, cap: sampleCap}
}

// noteFirstOut records the first output emission (no-op afterwards).
func (n *NodeTrace) noteFirstOut() {
	if atomic.LoadInt64(&n.FirstOutNS) != 0 {
		return
	}
	ns := int64(time.Since(n.epoch))
	if ns < 1 {
		ns = 1
	}
	atomic.CompareAndSwapInt64(&n.FirstOutNS, 0, ns)
}

// setErr records the operator's failure under the trace mutex so live
// progress snapshots never race the post-run annotation pass.
func (n *NodeTrace) setErr(msg string) {
	n.mu.Lock()
	n.Err = msg
	n.mu.Unlock()
}

// NodeSnapshot is a race-safe point-in-time copy of an operator's
// counters, taken while the pipeline may still be executing. It backs
// live progress reporting (SSE progress events, job phase polling).
type NodeSnapshot struct {
	Name             string
	Tag              string
	In, Out          int64
	Retries          int64
	Batches          int64
	FirstOut         time.Duration
	Busy             time.Duration
	LLMCalls         int64
	PromptTokens     int64
	CompletionTokens int64
	CacheHits        int64
	Escalations      int64
	ProxyKept        int64
	ProxyDropped     int64
	Err              string
}

// Snapshot returns a consistent view of the node's counters. Atomic
// fields load atomically; mutex-guarded fields copy under the lock.
func (n *NodeTrace) Snapshot() NodeSnapshot {
	s := NodeSnapshot{
		Name:             n.Name,
		Tag:              n.Tag,
		In:               atomic.LoadInt64(&n.In),
		Out:              atomic.LoadInt64(&n.Out),
		Retries:          atomic.LoadInt64(&n.Retries),
		Batches:          atomic.LoadInt64(&n.Batches),
		FirstOut:         time.Duration(atomic.LoadInt64(&n.FirstOutNS)),
		LLMCalls:         atomic.LoadInt64(&n.LLMCalls),
		PromptTokens:     atomic.LoadInt64(&n.PromptTokens),
		CompletionTokens: atomic.LoadInt64(&n.CompletionTokens),
		CacheHits:        atomic.LoadInt64(&n.CacheHits),
		Escalations:      atomic.LoadInt64(&n.Escalations),
		ProxyKept:        atomic.LoadInt64(&n.ProxyKept),
		ProxyDropped:     atomic.LoadInt64(&n.ProxyDropped),
	}
	n.mu.Lock()
	s.Busy = n.Duration
	s.Err = n.Err
	n.mu.Unlock()
	return s
}

// Snapshots returns race-safe copies of every node's counters, in
// pipeline order — the payload of one live progress observation.
func (t *Trace) Snapshots() []NodeSnapshot {
	out := make([]NodeSnapshot, len(t.Nodes))
	for i, n := range t.Nodes {
		out[i] = n.Snapshot()
	}
	return out
}

func (n *NodeTrace) addSample(s string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if len(n.Samples) < n.cap {
		n.Samples = append(n.Samples, s)
	}
}

// noteSpan records one unit of work: busy time accumulates and the busy
// window widens. The window is what EXPLAIN ANALYZE uses to show that
// independent branches of a plan actually overlapped in wall-clock time.
func (n *NodeTrace) noteSpan(t0, t1 time.Time) {
	n.mu.Lock()
	n.Duration += t1.Sub(t0)
	if n.start.IsZero() || t0.Before(n.start) {
		n.start = t0
	}
	if t1.After(n.end) {
		n.end = t1
	}
	n.mu.Unlock()
}

// Window returns the operator's busy window (zero times if it never ran).
func (n *NodeTrace) Window() (start, end time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.start, n.end
}

// String renders the trace as the operator table the CLI shows.
func (t *Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %8s %8s %8s %10s %6s\n", "operator", "in", "out", "retries", "busy", "llm")
	for _, n := range t.Nodes {
		fmt.Fprintf(&sb, "%-40s %8d %8d %8d %10s %6d\n",
			truncName(n.Name, 40), n.In, n.Out, n.Retries, n.Duration.Round(time.Microsecond), n.LLMCalls)
	}
	fmt.Fprintf(&sb, "wall time: %s\n", t.Wall.Round(time.Microsecond))
	if t.LLM != nil {
		fmt.Fprintf(&sb, "llm middleware: %s\n", t.LLM)
	}
	return sb.String()
}

// Detailed renders the trace including sampled records (drill-down view).
func (t *Trace) Detailed() string {
	var sb strings.Builder
	sb.WriteString(t.String())
	for _, n := range t.Nodes {
		if len(n.Samples) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "\n%s samples:\n", n.Name)
		for _, s := range n.Samples {
			fmt.Fprintf(&sb, "  - %s\n", truncName(s, 120))
		}
	}
	return sb.String()
}

// Node returns the trace entry with the given name (nil if absent).
func (t *Trace) Node(name string) *NodeTrace {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Tagged returns every trace entry compiled from the given logical plan
// node, in pipeline order (a logical operator may lower to several
// physical stages).
func (t *Trace) Tagged(tag string) []*NodeTrace {
	var out []*NodeTrace
	for _, n := range t.Nodes {
		if n.Tag == tag {
			out = append(out, n)
		}
	}
	return out
}

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// tracingLLM wraps the context's LLM client for one stage, counting every
// call into that stage's trace node. It preserves middleware-stats
// discovery (llm.StatsOf) by exposing the wrapped client. For map stages
// (yields set) it also releases the caller's worker-budget slot for the
// duration of the round-trip: the budget caps busy workers, and a worker
// blocked on the model is not busy — this is what lets concurrent
// branches overlap their model latency instead of serializing on the
// budget.
type tracingLLM struct {
	inner  llm.Client
	nt     *NodeTrace
	yield  *workerBudget
	yields bool
}

// Complete forwards the call and records it against the stage.
func (t *tracingLLM) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if t.yields && t.yield != nil {
		<-t.yield.slots
		defer func() { t.yield.slots <- struct{}{} }()
	}
	resp, err := t.inner.Complete(ctx, req)
	if err == nil {
		atomic.AddInt64(&t.nt.LLMCalls, 1)
		atomic.AddInt64(&t.nt.PromptTokens, int64(resp.Usage.PromptTokens))
		atomic.AddInt64(&t.nt.CompletionTokens, int64(resp.Usage.CompletionTokens))
		if resp.FromCache {
			atomic.AddInt64(&t.nt.CacheHits, 1)
		}
	}
	return resp, err
}

// Name identifies the backing model.
func (t *tracingLLM) Name() string { return t.inner.Name() }

// Inner exposes the wrapped client so llm.StatsOf keeps walking the
// middleware chain through the per-stage wrapper.
func (t *tracingLLM) Inner() llm.Client { return t.inner }
