package docset

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/index"
)

func testDocs(n int) []*docmodel.Document {
	docs := make([]*docmodel.Document, n)
	for i := range docs {
		d := docmodel.New(fmt.Sprintf("d%03d", i))
		d.Text = fmt.Sprintf("document number %d", i)
		d.SetProperty("i", i)
		d.SetProperty("parity", []string{"even", "odd"}[i%2])
		docs[i] = d
	}
	return docs
}

func TestMapFilterFlatMap(t *testing.T) {
	ec := NewContext()
	ds := FromDocuments(ec, testDocs(10)).
		Filter("even", func(d *docmodel.Document) (bool, error) {
			i, _ := d.Properties.Int("i")
			return i%2 == 0, nil
		}).
		Map("tag", func(d *docmodel.Document) (*docmodel.Document, error) {
			d.SetProperty("tagged", true)
			return d, nil
		}).
		FlatMap("dup", func(d *docmodel.Document) ([]*docmodel.Document, error) {
			c := d.Clone()
			c.ID += "-copy"
			return []*docmodel.Document{d, c}, nil
		})
	docs, trace, err := ds.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 10 { // 5 even docs duplicated
		t.Fatalf("got %d docs, want 10", len(docs))
	}
	for _, d := range docs {
		if v, _ := d.Properties.Bool("tagged"); !v {
			t.Errorf("%s not tagged", d.ID)
		}
	}
	// Trace counts.
	if nt := trace.Node("filter[even]"); nt == nil || nt.In != 10 || nt.Out != 5 {
		t.Errorf("filter trace wrong: %+v", nt)
	}
	if nt := trace.Node("flatMap[dup]"); nt == nil || nt.Out != 10 {
		t.Errorf("flatMap trace wrong: %+v", nt)
	}
}

func TestDeterministicOrderAcrossParallelism(t *testing.T) {
	run := func(par int) []string {
		ec := NewContext(WithParallelism(par))
		ds := FromDocuments(ec, testDocs(50)).
			Map("noop", func(d *docmodel.Document) (*docmodel.Document, error) { return d, nil }).
			FlatMap("expand", func(d *docmodel.Document) ([]*docmodel.Document, error) {
				c := d.Clone()
				c.ID += "-x"
				return []*docmodel.Document{d, c}, nil
			})
		docs, err := ds.TakeAll(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]string, len(docs))
		for i, d := range docs {
			ids[i] = d.ID
		}
		return ids
	}
	seq := run(1)
	par := run(16)
	if strings.Join(seq, ",") != strings.Join(par, ",") {
		t.Error("output order must not depend on parallelism")
	}
	// And must match source order.
	if seq[0] != "d000" || seq[1] != "d000-x" || seq[2] != "d001" {
		t.Errorf("unexpected head order: %v", seq[:4])
	}
}

func TestLazinessNothingRunsUntilExecute(t *testing.T) {
	ec := NewContext()
	var ran atomic.Bool
	ds := FromDocuments(ec, testDocs(3)).Map("sideeffect", func(d *docmodel.Document) (*docmodel.Document, error) {
		ran.Store(true)
		return d, nil
	})
	if ran.Load() {
		t.Fatal("map ran before Execute")
	}
	if _, err := ds.TakeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("map never ran")
	}
}

func TestPlanImmutability(t *testing.T) {
	ec := NewContext()
	base := FromDocuments(ec, testDocs(4))
	a := base.Filter("a", func(d *docmodel.Document) (bool, error) { return true, nil })
	b := base.Filter("b", func(d *docmodel.Document) (bool, error) { return false, nil })
	da, _ := a.TakeAll(context.Background())
	db, _ := b.TakeAll(context.Background())
	if len(da) != 4 || len(db) != 0 {
		t.Errorf("branching plans interfered: %d, %d", len(da), len(db))
	}
	if len(base.stages) != 0 {
		t.Error("base plan mutated")
	}
}

func TestSourceDocumentsNotMutated(t *testing.T) {
	ec := NewContext()
	src := testDocs(2)
	ds := FromDocuments(ec, src).Map("mutate", func(d *docmodel.Document) (*docmodel.Document, error) {
		d.SetProperty("i", 999)
		return d, nil
	})
	if _, err := ds.TakeAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	if v, _ := src[0].Properties.Int("i"); v != 0 {
		t.Error("transform mutated caller-owned source document")
	}
}

func TestErrorPropagationAndCancellation(t *testing.T) {
	ec := NewContext(WithParallelism(4))
	boom := errors.New("boom")
	ds := FromDocuments(ec, testDocs(100)).Map("explode", func(d *docmodel.Document) (*docmodel.Document, error) {
		if i, _ := d.Properties.Int("i"); i == 13 {
			return nil, boom
		}
		return d, nil
	})
	_, _, err := ds.Execute(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestContextCancellationStopsPipeline(t *testing.T) {
	ec := NewContext()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := FromDocuments(ec, testDocs(10)).Execute(ctx)
	if err == nil {
		t.Fatal("cancelled execute should error")
	}
}

func TestExplode(t *testing.T) {
	ec := NewContext()
	parent := docmodel.New("P")
	parent.SetProperty("us_state", "KY")
	parent.AddElement(&docmodel.Element{Type: docmodel.Text, Text: "first chunk", Page: 1})
	parent.AddElement(&docmodel.Element{Type: docmodel.Table, Page: 2, Table: &docmodel.TableData{
		NumRows: 1, NumCols: 2,
		Cells: []docmodel.TableCell{{Row: 0, Col: 0, Text: "k"}, {Row: 0, Col: 1, Text: "v"}},
	}})
	docs, err := FromDocuments(ec, []*docmodel.Document{parent}).Explode().TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("explode produced %d chunks, want 2", len(docs))
	}
	for _, c := range docs {
		if c.ParentID != "P" {
			t.Errorf("chunk %s missing parent pointer", c.ID)
		}
		if c.Property("us_state") != "KY" {
			t.Errorf("chunk %s did not inherit properties", c.ID)
		}
	}
	if docs[0].Text != "first chunk" {
		t.Errorf("chunk text = %q", docs[0].Text)
	}
	if !strings.Contains(docs[1].Text, "| k | v |") {
		t.Errorf("table chunk should carry markdown, got %q", docs[1].Text)
	}
}

func TestReduceByKeySortedAndSkipsEmptyKeys(t *testing.T) {
	ec := NewContext()
	docs := testDocs(10)
	docs[3].Properties["parity"] = "" // missing key -> dropped
	out, err := FromDocuments(ec, docs).
		ReduceByKey("parity", func(d *docmodel.Document) string { return d.Property("parity") },
			func(key string, group []*docmodel.Document) (*docmodel.Document, error) {
				r := docmodel.New(key)
				r.SetProperty("n", len(group))
				return r, nil
			}).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].ID != "even" || out[1].ID != "odd" {
		t.Fatalf("groups = %v", ids(out))
	}
	nEven, _ := out[0].Properties.Int("n")
	nOdd, _ := out[1].Properties.Int("n")
	if nEven != 5 || nOdd != 4 {
		t.Errorf("even=%d odd=%d (doc 3 should be dropped)", nEven, nOdd)
	}
}

func TestLimitAndSortBy(t *testing.T) {
	ec := NewContext()
	docs, err := FromDocuments(ec, testDocs(10)).SortBy("i", true).Limit(3).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 || docs[0].ID != "d009" || docs[2].ID != "d007" {
		t.Fatalf("top3 = %v", ids(docs))
	}
	// Ascending with missing values last.
	extra := testDocs(3)
	delete(extra[1].Properties, "i")
	asc, _ := FromDocuments(ec, extra).SortBy("i", false).TakeAll(context.Background())
	if asc[len(asc)-1].ID != "d001" {
		t.Errorf("missing value should sort last: %v", ids(asc))
	}
}

func TestDistinct(t *testing.T) {
	ec := NewContext()
	docs := testDocs(6)
	for i := range docs {
		docs[i].SetProperty("acc", fmt.Sprintf("A%d", i/2)) // pairs share keys
	}
	out, err := FromDocuments(ec, docs).Distinct("acc").TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("distinct kept %d, want 3", len(out))
	}
}

func TestGroupByAggregate(t *testing.T) {
	ec := NewContext()
	out, err := FromDocuments(ec, testDocs(10)).
		GroupByAggregate("parity", AggSum, "i").TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	even, _ := out[0].Properties.Float("value") // 0+2+4+6+8
	odd, _ := out[1].Properties.Float("value")  // 1+3+5+7+9
	if even != 20 || odd != 25 {
		t.Errorf("sum even=%v odd=%v", even, odd)
	}
	cnt, _ := FromDocuments(ec, testDocs(10)).GroupByAggregate("parity", AggCount, "").TakeAll(context.Background())
	if v, _ := cnt[0].Properties.Int("value"); v != 5 {
		t.Errorf("count = %d", v)
	}
	avg, _ := FromDocuments(ec, testDocs(10)).GroupByAggregate("parity", AggAvg, "i").TakeAll(context.Background())
	if v, _ := avg[1].Properties.Float("value"); v != 5 {
		t.Errorf("avg odd = %v", v)
	}
	mn, _ := FromDocuments(ec, testDocs(10)).GroupByAggregate("parity", AggMin, "i").TakeAll(context.Background())
	mx, _ := FromDocuments(ec, testDocs(10)).GroupByAggregate("parity", AggMax, "i").TakeAll(context.Background())
	if v, _ := mn[0].Properties.Float("value"); v != 0 {
		t.Errorf("min even = %v", v)
	}
	if v, _ := mx[0].Properties.Float("value"); v != 8 {
		t.Errorf("max even = %v", v)
	}
}

func TestGroupByAggregateUnknownAgg(t *testing.T) {
	ec := NewContext()
	_, _, err := FromDocuments(ec, testDocs(2)).GroupByAggregate("parity", AggKind("median"), "i").Execute(context.Background())
	if err == nil {
		t.Error("unknown aggregation should error")
	}
}

func TestTopK(t *testing.T) {
	ec := NewContext()
	out, err := FromDocuments(ec, testDocs(10)).
		GroupByAggregate("parity", AggCount, "").
		TopK("value", 1).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Property("parity") != "even" {
		t.Fatalf("topK = %v", ids(out))
	}
}

func TestCountAndTake(t *testing.T) {
	ec := NewContext()
	n, err := FromDocuments(ec, testDocs(7)).Count(context.Background())
	if err != nil || n != 7 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	docs, err := FromDocuments(ec, testDocs(7)).Take(context.Background(), 2)
	if err != nil || len(docs) != 2 {
		t.Fatalf("Take = %d, %v", len(docs), err)
	}
}

func TestQueryDatabaseSource(t *testing.T) {
	ec := NewContext()
	store := index.NewStore()
	for _, d := range testDocs(5) {
		if err := store.PutDocument(d); err != nil {
			t.Fatal(err)
		}
	}
	docs, err := QueryDatabase(ec, store, index.Query{Filter: index.Term("parity", "odd")}).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("odd docs = %v", ids(docs))
	}
}

// TestQueryDatabaseCopyOnWrite pins the zero-clone contract: pure-read
// plans flow the store's shared snapshots straight through, while plans
// containing a mutating operator clone at the source so the indexed
// documents stay pristine.
func TestQueryDatabaseCopyOnWrite(t *testing.T) {
	ec := NewContext()
	store := index.NewStore()
	for _, d := range testDocs(4) {
		if err := store.PutDocument(d); err != nil {
			t.Fatal(err)
		}
	}

	// Read-only plan: output documents ARE the store snapshots.
	docs, err := QueryDatabase(ec, store, index.Query{}).
		Filter("all", func(*docmodel.Document) (bool, error) { return true, nil }).
		TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stored, _ := store.Document(docs[0].ID)
	if docs[0] != stored {
		t.Error("pure-read plan should pass shared snapshots through without cloning")
	}

	// Mutating plan: the Map writes to its input, which must be a clone.
	mutated, err := QueryDatabase(ec, store, index.Query{}).
		Map("poison", func(d *docmodel.Document) (*docmodel.Document, error) {
			d.SetProperty("poisoned", true)
			return d, nil
		}).
		TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(mutated) != 4 {
		t.Fatalf("mutating plan returned %d docs", len(mutated))
	}
	for _, d := range store.Documents() {
		if _, ok := d.Properties.Get("poisoned"); ok {
			t.Fatalf("mutating plan leaked writes into stored snapshot %s", d.ID)
		}
	}
}

// TestNeedsSourceClone pins the plan-level clone decision: only a mutator
// reachable by the source documents (i.e. before any fresh-document
// barrier) forces the copy.
func TestNeedsSourceClone(t *testing.T) {
	ec := NewContext()
	store := index.NewStore()
	src := func() *DocSet { return QueryDatabase(ec, store, index.Query{}) }
	ident := func(d *docmodel.Document) (*docmodel.Document, error) { return d, nil }

	if src().GroupByAggregate("k", AggCount, "").needsSourceClone() {
		t.Error("read-only aggregation must not clone the source")
	}
	if !src().Map("m", ident).needsSourceClone() {
		t.Error("a Map over source documents must clone")
	}
	if src().GroupByAggregate("k", AggCount, "").Map("m", ident).needsSourceClone() {
		t.Error("a mutator after a fresh aggregation barrier must not clone the source")
	}
	if !src().Map("m", ident).GroupByAggregate("k", AggCount, "").needsSourceClone() {
		t.Error("a mutator before the barrier must still clone")
	}
	if src().LLMReduceByKey("k", "summarize").needsSourceClone() {
		t.Error("LLMReduceByKey only mutates its fresh group documents")
	}
}

func TestWriteRoutesDocsAndChunks(t *testing.T) {
	ec := NewContext()
	store := index.NewStore()
	parent := docmodel.New("P")
	parent.AddElement(&docmodel.Element{Type: docmodel.Text, Text: "alpha beta", Page: 1})
	parent.AddElement(&docmodel.Element{Type: docmodel.Text, Text: "gamma delta", Page: 2})

	// Write parents, then explode+embed+write chunks (the Fig. 4 pipeline).
	_, err := FromDocuments(ec, []*docmodel.Document{parent}).
		Write(store).
		Explode().
		Embed().
		Write(store).
		TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if store.NumDocs() != 1 || store.NumChunks() != 2 {
		t.Fatalf("store has %d docs %d chunks", store.NumDocs(), store.NumChunks())
	}
	hits := store.SearchDocs(index.Query{Keyword: "gamma"})
	if len(hits) != 1 || hits[0].Doc.ID != "P" {
		t.Errorf("reassembly failed: %+v", hits)
	}
}

func TestPlanString(t *testing.T) {
	ec := NewContext()
	s := FromDocuments(ec, testDocs(1)).Explode().Limit(5).PlanString()
	for _, want := range []string{"scan[memory", "explode", "limit[5]"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan missing %q:\n%s", want, s)
		}
	}
}

func ids(docs []*docmodel.Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.ID
	}
	return out
}
