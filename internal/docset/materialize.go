package docset

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"aryn/internal/docmodel"
)

// MemoryCache is the in-memory materialization target: named snapshots of
// intermediate DocSet results, used for debugging and re-execution (§5.3).
// Safe for concurrent use.
type MemoryCache struct {
	mu    sync.Mutex
	items map[string][]*docmodel.Document
}

// NewMemoryCache returns an empty cache.
func NewMemoryCache() *MemoryCache {
	return &MemoryCache{items: make(map[string][]*docmodel.Document)}
}

// Get returns the snapshot stored under name.
func (m *MemoryCache) Get(name string) ([]*docmodel.Document, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	docs, ok := m.items[name]
	return docs, ok
}

func (m *MemoryCache) put(name string, docs []*docmodel.Document) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.items[name] = docs
}

// MaterializeMemory snapshots the documents flowing through this point of
// the plan into the cache under name, then passes them through unchanged.
func (ds *DocSet) MaterializeMemory(cache *MemoryCache, name string) *DocSet {
	return ds.with(stageSpec{
		name: "materialize[memory:" + name + "]",
		kind: barrierKind,
		barrierFn: func(_ *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			snap := make([]*docmodel.Document, len(docs))
			for i, d := range docs {
				snap[i] = d.Clone()
			}
			cache.put(name, snap)
			return docs, nil
		},
	})
}

// Shared returns a DocSet whose pipeline executes at most once and
// replays its result to every consumer — the materialization a DAG plan
// needs when one subtree feeds several downstream operators (a diamond),
// so the shared prefix is not re-computed per consumer. The replayed
// documents are marked shared: consumers with mutating stages clone at
// their source, keeping branches isolated.
//
// Shared is the lazy convenience form of ShareTask: execution starts on
// first demand. The Luna scheduler uses ShareTask directly so it can
// start the subtree eagerly, concurrent with the branches that consume
// it, and collect its lineage trace (which this form discards). Either
// way the subtree's LLM usage is attributed to its own stages exactly
// once — concurrent first-demand from two consumers cannot double-count
// it, because attribution happens at call dispatch, not by re-tracing
// each consumer's execution window.
func (ds *DocSet) Shared() *DocSet {
	return ds.ShareTask().DocSet()
}

// ShareTask wraps this DocSet as a schedulable Task whose output replays
// to any number of consumers (see Task).
func (ds *DocSet) ShareTask() *Task {
	return NewTask(fmt.Sprintf("shared[%s +%d stages]", ds.source.name, len(ds.stages)), ds)
}

// MaterializeDisk writes the documents flowing through this point to a
// gzipped JSON-lines file and passes them through unchanged.
func (ds *DocSet) MaterializeDisk(path string) *DocSet {
	return ds.with(stageSpec{
		name: "materialize[disk:" + filepath.Base(path) + "]",
		kind: barrierKind,
		barrierFn: func(_ *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			if err := WriteJSONL(path, docs); err != nil {
				return nil, err
			}
			return docs, nil
		},
	})
}

// WriteJSONL persists documents as gzipped JSON lines.
func WriteJSONL(path string, docs []*docmodel.Document) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("materialize: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := json.NewEncoder(zw)
	for _, d := range docs {
		if err := enc.Encode(d); err != nil {
			return fmt.Errorf("materialize: encode %s: %w", d.ID, err)
		}
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("materialize: flush: %w", err)
	}
	return f.Close()
}

// ReadJSONL loads documents previously written by WriteJSONL.
func ReadJSONL(path string) ([]*docmodel.Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("materialize: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("materialize: %w", err)
	}
	defer zr.Close()
	dec := json.NewDecoder(zr)
	var out []*docmodel.Document
	for dec.More() {
		var d docmodel.Document
		if err := dec.Decode(&d); err != nil {
			return nil, fmt.Errorf("materialize: decode: %w", err)
		}
		out = append(out, &d)
	}
	return out, nil
}
