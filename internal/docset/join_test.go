package docset

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"aryn/internal/docmodel"
)

// errBoom is a shared sentinel for failure-propagation tests.
var errBoom = errors.New("boom")

// joinFixtures builds a left DocSet of incidents and a right DocSet of an
// aircraft-registry "dimension table".
func joinFixtures(ec *Context) (*DocSet, *DocSet) {
	mk := func(id string, props map[string]any) *docmodel.Document {
		d := docmodel.New(id)
		for k, v := range props {
			d.SetProperty(k, v)
		}
		return d
	}
	left := FromDocuments(ec, []*docmodel.Document{
		mk("I1", map[string]any{"manufacturer": "Cessna", "state": "KY"}),
		mk("I2", map[string]any{"manufacturer": "Piper", "state": "CA"}),
		mk("I3", map[string]any{"manufacturer": "Unknown Works", "state": "TX"}),
		mk("I4", map[string]any{"manufacturer": "cessna", "state": "AZ"}), // case fold
	})
	right := FromDocuments(ec, []*docmodel.Document{
		mk("M1", map[string]any{"maker": "Cessna", "hq": "Wichita", "founded": 1927}),
		mk("M2", map[string]any{"maker": "Piper", "hq": "Vero Beach", "founded": 1927}),
		mk("M3", map[string]any{"maker": "Mooney", "hq": "Kerrville", "founded": 1929}),
	})
	return left, right
}

func TestInnerJoin(t *testing.T) {
	ec := NewContext()
	left, right := joinFixtures(ec)
	docs, err := left.Join(right, "manufacturer", "maker", "mfr", InnerJoin).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 { // I1, I2, I4 (case-insensitive); I3 dropped
		t.Fatalf("inner join produced %d docs: %v", len(docs), ids(docs))
	}
	if docs[0].Property("mfr.hq") != "Wichita" {
		t.Errorf("join enrichment missing: %v", docs[0].Properties.JSON())
	}
	if docs[0].Property("state") != "KY" {
		t.Error("left properties lost")
	}
}

func TestLeftJoinKeepsUnmatched(t *testing.T) {
	ec := NewContext()
	left, right := joinFixtures(ec)
	docs, err := left.Join(right, "manufacturer", "maker", "mfr", LeftJoin).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 4 {
		t.Fatalf("left join produced %d docs", len(docs))
	}
	var unmatched *docmodel.Document
	for _, d := range docs {
		if d.ID == "I3" {
			unmatched = d
		}
	}
	if unmatched == nil {
		t.Fatal("unmatched left doc dropped")
	}
	if unmatched.Property("mfr.hq") != "" {
		t.Error("unmatched doc should not be enriched")
	}
}

func TestSemiAndAntiJoin(t *testing.T) {
	ec := NewContext()
	left, right := joinFixtures(ec)
	semi, err := left.Join(right, "manufacturer", "maker", "", SemiJoin).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(semi) != 3 {
		t.Errorf("semi join = %v", ids(semi))
	}
	for _, d := range semi {
		if d.Property("right.hq") != "" {
			t.Error("semi join must not enrich")
		}
	}
	left2, right2 := joinFixtures(ec)
	anti, err := left2.Join(right2, "manufacturer", "maker", "", AntiJoin).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(anti) != 1 || anti[0].ID != "I3" {
		t.Errorf("anti join = %v", ids(anti))
	}
}

func TestJoinOneToMany(t *testing.T) {
	ec := NewContext()
	mk := func(id, k string) *docmodel.Document {
		d := docmodel.New(id)
		d.SetProperty("k", k)
		return d
	}
	left := FromDocuments(ec, []*docmodel.Document{mk("L1", "x")})
	right := FromDocuments(ec, []*docmodel.Document{mk("R1", "x"), mk("R2", "x")})
	docs, err := left.Join(right, "k", "k", "r", InnerJoin).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("one-to-many should emit one doc per match, got %d", len(docs))
	}
}

func TestJoinRightSideErrorPropagates(t *testing.T) {
	ec := NewContext()
	left, _ := joinFixtures(ec)
	failing := FromDocuments(ec, testDocs(2)).Map("boom", func(d *docmodel.Document) (*docmodel.Document, error) {
		return nil, errBoom
	})
	if _, err := left.Join(failing, "manufacturer", "maker", "", InnerJoin).TakeAll(context.Background()); err == nil {
		t.Error("right-side failure should propagate")
	}
}

func TestJoinUnknownKind(t *testing.T) {
	ec := NewContext()
	left, right := joinFixtures(ec)
	if _, err := left.Join(right, "manufacturer", "maker", "", JoinKind("cross")).TakeAll(context.Background()); err == nil {
		t.Error("unknown join kind should fail")
	}
}

func TestLookupEnrichment(t *testing.T) {
	ec := NewContext()
	left, _ := joinFixtures(ec)
	registry := map[string]docmodel.Properties{
		"Cessna": {"country": "USA"},
		"PIPER":  {"country": "USA"}, // key normalization
	}
	docs, err := left.Lookup("manufacturer", "reg", registry).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	enriched := 0
	for _, d := range docs {
		if d.Property("reg.country") == "USA" {
			enriched++
		}
	}
	if enriched != 3 { // I1, I2, I4
		t.Errorf("lookup enriched %d docs, want 3", enriched)
	}
	if len(docs) != 4 {
		t.Error("lookup must pass all docs through")
	}
}

func TestSharedExecutesSubtreeOnce(t *testing.T) {
	ec := NewContext()
	left, _ := joinFixtures(ec)
	var runs atomic.Int64
	shared := left.Map("counted", func(d *docmodel.Document) (*docmodel.Document, error) {
		runs.Add(1)
		return d, nil
	}).Shared()

	// A diamond: the shared subtree probes AND builds the same join.
	docs, _, err := shared.Join(shared, "manufacturer", "manufacturer", "self", InnerJoin).
		Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Fatal("self-join returned nothing")
	}
	if got := runs.Load(); got != 4 {
		t.Errorf("shared subtree ran its map %d times, want 4 (once per doc, one execution)", got)
	}
}

func TestJoinBuildSideHonorsCancellation(t *testing.T) {
	// Parallelism 1 makes the build side deterministic: its first map
	// call cancels the query context, so the remaining two documents
	// must never be processed — the build side runs under the outer
	// plan's context, not context.Background().
	ec := NewContext(WithParallelism(1))
	left, right := joinFixtures(ec)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var runs atomic.Int64
	cancellingRight := right.Map("cancelling", func(d *docmodel.Document) (*docmodel.Document, error) {
		runs.Add(1)
		cancel()
		return d, nil
	})
	_, _, err := left.Join(cancellingRight, "manufacturer", "maker", "", InnerJoin).Execute(ctx)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled join should surface context.Canceled, got %v", err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("build side processed %d documents after cancellation, want 1", got)
	}
}
