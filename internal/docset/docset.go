package docset

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/index"
)

// DocSet is a lazy, immutable plan over a collection of documents. Every
// transform returns a new DocSet; nothing executes until Execute (or a
// helper like Count/TakeAll) is called — the Spark-style deferred model of
// §5.3.
type DocSet struct {
	ctx    *Context
	source sourceSpec
	stages []stageSpec
}

// with returns a copy of ds with one more stage appended (plans share
// structure but never mutate).
func (ds *DocSet) with(sp stageSpec) *DocSet {
	stages := make([]stageSpec, len(ds.stages)+1)
	copy(stages, ds.stages)
	stages[len(ds.stages)] = sp
	return &DocSet{ctx: ds.ctx, source: ds.source, stages: stages}
}

// Tag labels the plan-node identity of the operators this DocSet adds
// over base: every stage beyond base's stage count, plus the source when
// base is nil (a source belongs to the node that created it). Compilers
// call Tag after lowering each logical node so execution traces can be
// aggregated back to plan nodes (EXPLAIN ANALYZE). Returns a copy; ds is
// unchanged.
func (ds *DocSet) Tag(base *DocSet, tag string) *DocSet {
	out := &DocSet{ctx: ds.ctx, source: ds.source}
	out.stages = make([]stageSpec, len(ds.stages))
	copy(out.stages, ds.stages)
	from := 0
	if base != nil {
		from = len(base.stages)
	} else {
		out.source.tag = tag
	}
	for i := from; i < len(out.stages); i++ {
		out.stages[i].tag = tag
	}
	return out
}

// FromDocuments builds a DocSet over an in-memory document slice. The
// caller keeps ownership: when the plan contains a mutating operator the
// executor clones documents at the source, and pure-read plans flow the
// originals through untouched.
func FromDocuments(ec *Context, docs []*docmodel.Document) *DocSet {
	snapshot := make([]*docmodel.Document, len(docs))
	copy(snapshot, docs)
	return &DocSet{
		ctx: ec,
		source: sourceSpec{
			name:   fmt.Sprintf("scan[memory, %d docs]", len(snapshot)),
			shared: true,
			emit: func(ctx context.Context, _ *Context, yield func(*docmodel.Document) error) error {
				for _, d := range snapshot {
					if err := yield(d); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// ReadBinary builds a single-node DocSet per raw blob, the state documents
// are in before partitioning (§5.1: "when first reading a PDF, it may be
// represented as a single-node document with the raw PDF binary").
func ReadBinary(ec *Context, blobs map[string][]byte) *DocSet {
	// Deterministic order: sort ids.
	ids := make([]string, 0, len(blobs))
	for id := range blobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	docs := make([]*docmodel.Document, 0, len(ids))
	for _, id := range ids {
		d := docmodel.New(id)
		d.Binary = blobs[id]
		docs = append(docs, d)
	}
	ds := FromDocuments(ec, docs)
	ds.source.name = fmt.Sprintf("readBinary[%d blobs]", len(docs))
	return ds
}

// QueryDatabase scans an index with keyword search and/or property filters
// — the queryDatabase operator of Table 2a.
func QueryDatabase(ec *Context, store *index.Store, q index.Query) *DocSet {
	return &DocSet{
		ctx: ec,
		source: sourceSpec{
			name: describeQuery("queryDatabase", q),
			// SearchDocs returns the store's shared snapshots; the
			// executor clones them only for mutating plans.
			shared: true,
			emit: func(ctx context.Context, _ *Context, yield func(*docmodel.Document) error) error {
				for _, hit := range store.SearchDocs(q) {
					if err := yield(hit.Doc); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

// QueryVectorDatabase performs semantic search over the index: the query
// text is embedded and the nearest chunks' parent documents are returned
// (Table 2b). Property filters still apply.
func QueryVectorDatabase(ec *Context, store *index.Store, queryText string, filter index.Predicate, k int) *DocSet {
	return &DocSet{
		ctx: ec,
		source: sourceSpec{
			name:   fmt.Sprintf("queryVectorDatabase[%q, k=%d]", queryText, k),
			shared: true,
			emit: func(ctx context.Context, ec *Context, yield func(*docmodel.Document) error) error {
				vec := ec.Embedder.Embed(queryText)
				q := index.Query{Vector: vec, Filter: filter, K: k}
				for _, hit := range store.SearchDocs(q) {
					if err := yield(hit.Doc); err != nil {
						return err
					}
				}
				return nil
			},
		},
	}
}

func describeQuery(op string, q index.Query) string {
	desc := op + "["
	if q.Keyword != "" {
		desc += fmt.Sprintf("keyword=%q ", q.Keyword)
	}
	if q.Filter != nil {
		desc += "filter=" + q.Filter.String() + " "
	}
	if q.K > 0 {
		desc += fmt.Sprintf("k=%d", q.K)
	}
	return strings.TrimRight(desc, " ") + "]"
}

// TakeAll executes the plan and returns just the documents.
func (ds *DocSet) TakeAll(ctx context.Context) ([]*docmodel.Document, error) {
	docs, _, err := ds.Execute(ctx)
	return docs, err
}

// Take executes the plan and returns at most n documents.
func (ds *DocSet) Take(ctx context.Context, n int) ([]*docmodel.Document, error) {
	docs, err := ds.Limit(n).TakeAll(ctx)
	return docs, err
}

// Count executes the plan and returns the number of result documents.
func (ds *DocSet) Count(ctx context.Context) (int, error) {
	docs, _, err := ds.Execute(ctx)
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// PlanString renders the logical plan for inspection (§6.2 explainability).
func (ds *DocSet) PlanString() string {
	out := ds.source.name
	for _, sp := range ds.stages {
		out += "\n  -> " + sp.name
	}
	return out
}
