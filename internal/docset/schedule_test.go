package docset

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aryn/internal/docmodel"
)

func scheduleDocs(n int) []*docmodel.Document {
	docs := make([]*docmodel.Document, n)
	for i := range docs {
		d := docmodel.New(fmt.Sprintf("d%02d", i))
		d.SetProperty("k", i%2)
		d.Text = "engine fire and substantial damage"
		docs[i] = d
	}
	return docs
}

// Concurrent first-demand from many consumers must execute a shared
// subtree exactly once, with no race on its memoized result (run under
// -race: this is the regression test for concurrent Shared()
// materialization).
func TestConcurrentSharedMaterializesOnce(t *testing.T) {
	ec := NewContext(WithParallelism(4))
	var runs int64
	shared := FromDocuments(ec, scheduleDocs(6)).
		Filter("counted", func(d *docmodel.Document) (bool, error) {
			atomic.AddInt64(&runs, 1)
			return true, nil
		}).Shared()

	const consumers = 8
	var wg sync.WaitGroup
	outs := make([][]*docmodel.Document, consumers)
	errs := make([]error, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = shared.Limit(10).TakeAll(context.Background())
		}(i)
	}
	wg.Wait()
	for i := 0; i < consumers; i++ {
		if errs[i] != nil {
			t.Fatalf("consumer %d: %v", i, errs[i])
		}
		if len(outs[i]) != 6 {
			t.Errorf("consumer %d got %d docs, want 6", i, len(outs[i]))
		}
	}
	if got := atomic.LoadInt64(&runs); got != 6 {
		t.Errorf("shared subtree filter ran %d times, want 6 (once per doc, one execution)", got)
	}
}

// A task started eagerly by a scheduler overlaps with work that does not
// consume it, and its trace is retained for the scheduler to merge.
func TestTaskStartIsEagerAndIdempotent(t *testing.T) {
	ec := NewContext(WithParallelism(2))
	started := make(chan struct{})
	task := NewTask("branch", FromDocuments(ec, scheduleDocs(3)).
		Filter("signal", func(d *docmodel.Document) (bool, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			return true, nil
		}))
	ctx := context.Background()
	task.Start(ctx)
	task.Start(ctx) // idempotent
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("task did not start eagerly")
	}
	docs, err := task.Wait(ctx)
	if err != nil || len(docs) != 3 {
		t.Fatalf("Wait = %d docs, %v", len(docs), err)
	}
	task.Join()
	if task.Trace() == nil || len(task.Trace().Nodes) == 0 {
		t.Error("task trace missing after completion")
	}
	if !task.Started() {
		t.Error("Started() = false after Start")
	}
}

// A failing subtree surfaces its error through every consumer.
func TestTaskErrorPropagates(t *testing.T) {
	ec := NewContext()
	boom := errors.New("subtree failed")
	task := NewTask("bad branch", FromDocuments(ec, scheduleDocs(2)).
		Filter("boom", func(d *docmodel.Document) (bool, error) { return false, boom }))
	if _, err := task.DocSet().TakeAll(context.Background()); !errors.Is(err, boom) {
		t.Errorf("consumer error = %v, want %v", err, boom)
	}
	if _, err := task.Wait(context.Background()); !errors.Is(err, boom) {
		t.Errorf("Wait error = %v, want %v", err, boom)
	}
}

// The per-query worker budget caps busy workers across every pipeline in
// the scope, no matter how many branches run concurrently — and execution
// under a budget of 1 yields byte-identical output to an unbudgeted run.
func TestQueryScopeBudgetCapsBusyWorkers(t *testing.T) {
	const parallelism = 3
	ec := NewContext(WithParallelism(parallelism))
	qec := ec.QueryScope()

	var busy, peak int64
	gauge := func(d *docmodel.Document) (bool, error) {
		n := atomic.AddInt64(&busy, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		atomic.AddInt64(&busy, -1)
		return true, nil
	}

	mk := func(ec *Context) *DocSet {
		return FromDocuments(ec, scheduleDocs(10)).Filter("gauge", gauge)
	}
	var wg sync.WaitGroup
	var errL, errR error
	var outL, outR []*docmodel.Document
	wg.Add(2)
	go func() { defer wg.Done(); outL, errL = mk(qec).TakeAll(context.Background()) }()
	go func() { defer wg.Done(); outR, errR = mk(qec).TakeAll(context.Background()) }()
	wg.Wait()
	if errL != nil || errR != nil {
		t.Fatal(errL, errR)
	}
	if got := atomic.LoadInt64(&peak); got > parallelism {
		t.Errorf("peak busy workers = %d, want <= %d (two branches share one budget)", got, parallelism)
	}

	// Determinism across budget sizes: the same pipeline under a budget
	// of 1 emits byte-identical documents.
	one := NewContext(WithParallelism(1)).QueryScope()
	outOne, err := mk(one).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(outL)
	b, _ := json.Marshal(outOne)
	if string(a) != string(b) {
		t.Error("budget 1 vs N output differs")
	}
	if len(outR) != len(outL) {
		t.Errorf("branch outputs differ: %d vs %d", len(outR), len(outL))
	}
}

// Re-executing a joined DocSet built with the lazy Join API must run the
// build side afresh each time (the historical contract for direct docset
// users — only JoinTask pipelines are single-use).
func TestJoinReexecutesBuildSide(t *testing.T) {
	ec := NewContext(WithParallelism(2))
	var builds int64
	joined := FromDocuments(ec, scheduleDocs(2)).
		Join(FromDocuments(ec, scheduleDocs(2)).
			Filter("buildCount", func(d *docmodel.Document) (bool, error) {
				atomic.AddInt64(&builds, 1)
				return true, nil
			}), "k", "k", "r", SemiJoin)
	for run := 1; run <= 2; run++ {
		docs, _, err := joined.Execute(context.Background())
		if err != nil || len(docs) != 2 {
			t.Fatalf("run %d: %d docs, %v", run, len(docs), err)
		}
	}
	if got := atomic.LoadInt64(&builds); got != 4 {
		t.Errorf("build side ran %d doc-filters across 2 executions, want 4 (fresh build per run)", got)
	}

	// A cancelled first run must not poison a retry.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := joined.Execute(cancelled); err == nil {
		t.Fatal("cancelled run should fail")
	}
	if docs, _, err := joined.Execute(context.Background()); err != nil || len(docs) != 2 {
		t.Errorf("retry after cancellation: %d docs, %v", len(docs), err)
	}
}

// JoinTask consumes a prebuilt build side: starting it before the probe
// runs must not change join results, and the build executes once.
func TestJoinTaskPrebuiltBuildSide(t *testing.T) {
	ec := NewContext(WithParallelism(2))
	left := FromDocuments(ec, scheduleDocs(4))
	var builds int64
	right := FromDocuments(ec, scheduleDocs(4)).
		Filter("buildCount", func(d *docmodel.Document) (bool, error) {
			atomic.AddInt64(&builds, 1)
			return true, nil
		})
	build := NewTask("join build", right)
	build.Start(context.Background())
	joined, _, err := left.JoinTask(build, "k", "k", "r", InnerJoin).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 4 left docs × 2 matches each (k is 0/1 over 4 docs).
	if len(joined) != 8 {
		t.Errorf("joined = %d docs, want 8", len(joined))
	}
	if got := atomic.LoadInt64(&builds); got != 4 {
		t.Errorf("build side ran %d times, want 4 (once per doc)", got)
	}
}
