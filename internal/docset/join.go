package docset

import (
	"context"
	"fmt"
	"strings"

	"aryn/internal/docmodel"
)

// This file implements joins across DocSets — listed as future work in the
// paper (§9: "We need to extend Aryn to support joins and allow queries to
// incorporate external sources like data warehouses"). The implementation
// is a hash equi-join on document properties, which covers the paper's
// motivating "data integration" pattern (§1: combining a sweep-and-harvest
// phase with a database lookup).

// JoinKind selects join semantics.
type JoinKind string

// Join kinds.
const (
	// InnerJoin keeps left documents with at least one right match.
	InnerJoin JoinKind = "inner"
	// LeftJoin keeps every left document, enriched when a match exists.
	LeftJoin JoinKind = "left"
	// SemiJoin keeps matching left documents without enrichment (an
	// existence filter against the right side).
	SemiJoin JoinKind = "semi"
	// AntiJoin keeps left documents with no right match.
	AntiJoin JoinKind = "anti"
)

// Join hash-joins this DocSet (the probe side) against the result of
// building right: left documents whose leftKey property equals some right
// document's rightKey property are combined according to kind. On inner
// and left joins, the right document's properties are merged in under
// "<prefix>." namespacing so provenance stays visible; a left document
// matching multiple right documents is emitted once per match.
//
// The right side is fully executed and built into a hash table when the
// join stage runs (broadcast-hash-join semantics); use the smaller
// collection as the right side. Join executes the build side afresh on
// every run of the joined plan (the historical contract for direct
// docset users). The Luna scheduler lowers joins through JoinTask
// instead, so the build executes concurrently with the probe side.
func (ds *DocSet) Join(right *DocSet, leftKey, rightKey, prefix string, kind JoinKind) *DocSet {
	return ds.join(leftKey, rightKey, prefix, kind,
		func(ctx context.Context) ([]*docmodel.Document, error) {
			docs, _, err := right.Execute(ctx)
			return docs, err
		})
}

// JoinTask hash-joins this DocSet (the probe side) against a prebuilt
// build-side Task: the probe barrier waits for the task's documents
// instead of executing the build side inline, so a scheduler that started
// the task at query begin overlaps build and probe work. Because a Task
// executes at most once, the joined DocSet is single-use — compilers
// create a fresh Task per run (Join's per-execution semantics are
// otherwise identical).
func (ds *DocSet) JoinTask(build *Task, leftKey, rightKey, prefix string, kind JoinKind) *DocSet {
	return ds.join(leftKey, rightKey, prefix, kind, build.Wait)
}

// join is the shared probe: buildFn produces the build-side documents
// when the barrier runs.
func (ds *DocSet) join(leftKey, rightKey, prefix string, kind JoinKind, buildFn func(context.Context) ([]*docmodel.Document, error)) *DocSet {
	if prefix == "" {
		prefix = "right"
	}
	return ds.with(stageSpec{
		name: fmt.Sprintf("join[%s, %s=%s]", kind, leftKey, rightKey),
		kind: barrierKind,
		// The build side runs under the outer plan's context, so a
		// cancelled or timed-out query aborts right-side work too. The
		// barrier holds no worker-budget token while waiting, so the
		// build side can always draw workers.
		barrierCtxFn: func(ctx context.Context, ec *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			rightDocs, err := buildFn(ctx)
			if err != nil {
				return nil, fmt.Errorf("join: right side: %w", err)
			}
			table := map[string][]*docmodel.Document{}
			for _, r := range rightDocs {
				k := joinKey(r, rightKey)
				if k == "" {
					continue
				}
				table[k] = append(table[k], r)
			}
			var out []*docmodel.Document
			for _, l := range docs {
				matches := table[joinKey(l, leftKey)]
				switch kind {
				case InnerJoin:
					for _, r := range matches {
						out = append(out, merged(l, r, prefix))
					}
				case LeftJoin:
					if len(matches) == 0 {
						out = append(out, l)
						continue
					}
					for _, r := range matches {
						out = append(out, merged(l, r, prefix))
					}
				case SemiJoin:
					if len(matches) > 0 {
						out = append(out, l)
					}
				case AntiJoin:
					if len(matches) == 0 {
						out = append(out, l)
					}
				default:
					return nil, fmt.Errorf("join: unknown kind %q", kind)
				}
			}
			return out, nil
		},
	})
}

// joinKey normalizes the join attribute (case-insensitive string match).
func joinKey(d *docmodel.Document, field string) string {
	return strings.ToLower(strings.TrimSpace(d.Property(field)))
}

// merged clones the left document and merges the right document's
// properties under the prefix namespace.
func merged(l, r *docmodel.Document, prefix string) *docmodel.Document {
	out := l.Clone()
	for k, v := range r.Properties {
		out.SetProperty(prefix+"."+k, v)
	}
	return out
}

// Lookup is the §1 "data integration" convenience: enrich each document
// from an external key→properties table (a data-warehouse dimension
// table), left-join semantics with missing keys passed through.
func (ds *DocSet) Lookup(field, prefix string, table map[string]docmodel.Properties) *DocSet {
	if prefix == "" {
		prefix = "lookup"
	}
	norm := make(map[string]docmodel.Properties, len(table))
	for k, v := range table {
		norm[strings.ToLower(strings.TrimSpace(k))] = v
	}
	return ds.with(stageSpec{
		name:    fmt.Sprintf("lookup[%s]", field),
		kind:    mapKind,
		mutates: true, // merges looked-up properties into d
		mapFn: func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			if props, ok := norm[joinKey(d, field)]; ok {
				for k, v := range props {
					d.SetProperty(prefix+"."+k, v)
				}
			}
			return []*docmodel.Document{d}, nil
		},
	})
}
