package docset

import (
	"fmt"
	"math"

	"aryn/internal/docmodel"
)

// AggKind selects the aggregation function for GroupByAggregate.
type AggKind string

// Supported aggregations.
const (
	AggCount AggKind = "count"
	AggSum   AggKind = "sum"
	AggAvg   AggKind = "avg"
	AggMin   AggKind = "min"
	AggMax   AggKind = "max"
)

// GroupByAggregate is the database-style group-by the Luna planner exposes
// as a logical operator (§6.1): group documents by keyField and compute
// one aggregate per group. The result documents carry properties
// {keyField: key, "value": aggregate, "count": groupSize} and are emitted
// in sorted key order. valueField is ignored for AggCount. An empty
// keyField aggregates the whole set into a single "all" group.
func (ds *DocSet) GroupByAggregate(keyField string, agg AggKind, valueField string) *DocSet {
	name := fmt.Sprintf("groupByAggregate[%s, %s(%s)]", keyField, agg, valueField)
	if agg == AggCount {
		name = fmt.Sprintf("groupByAggregate[%s, count]", keyField)
	}
	keyFn := func(d *docmodel.Document) string { return d.Property(keyField) }
	if keyField == "" {
		keyField = "group"
		keyFn = func(*docmodel.Document) string { return "all" }
	}
	// The reduce below only reads group members, so it must not force a
	// source clone of shared index snapshots (the Luna analytics path).
	return ds.reduceByKey(name, keyFn, func(key string, docs []*docmodel.Document) (*docmodel.Document, error) {
		out := docmodel.New(keyField + "=" + key)
		out.SetProperty(keyField, key)
		out.SetProperty("count", len(docs))
		switch agg {
		case AggCount:
			out.SetProperty("value", len(docs))
		case AggSum, AggAvg, AggMin, AggMax:
			var sum float64
			minV, maxV := math.Inf(1), math.Inf(-1)
			n := 0
			for _, d := range docs {
				v, ok := d.Properties.Float(valueField)
				if !ok {
					continue
				}
				sum += v
				minV = math.Min(minV, v)
				maxV = math.Max(maxV, v)
				n++
			}
			if n == 0 {
				out.SetProperty("value", nil)
				break
			}
			switch agg {
			case AggSum:
				out.SetProperty("value", sum)
			case AggAvg:
				out.SetProperty("value", sum/float64(n))
			case AggMin:
				out.SetProperty("value", minV)
			case AggMax:
				out.SetProperty("value", maxV)
			}
		default:
			return nil, fmt.Errorf("groupByAggregate: unknown aggregation %q", agg)
		}
		return out, nil
	}, false)
}

// TopK sorts groups/documents by a numeric property descending and keeps
// the first k — the "top three most common parts" pattern.
func (ds *DocSet) TopK(field string, k int) *DocSet {
	return ds.SortBy(field, true).Limit(k)
}
