package docset

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"aryn/internal/docmodel"
	"aryn/internal/llm"
	"aryn/internal/resilience"
)

func testRetrier() *resilience.Retrier {
	return resilience.NewRetrier(resilience.Policy{
		BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Seed: 1,
	})
}

// TestRetryBackoffRecordedInTrace: transient map failures are retried with
// paced backoff, and the stall shows up in the stage's trace node so
// EXPLAIN ANALYZE separates "stalled retrying" from "busy".
func TestRetryBackoffRecordedInTrace(t *testing.T) {
	ec := NewContext(WithParallelism(1), WithRetries(2), WithBackoff(testRetrier()))
	var calls atomic.Int32
	docs, trace, err := FromDocuments(ec, testDocs(1)).
		Map("flaky", func(d *docmodel.Document) (*docmodel.Document, error) {
			if calls.Add(1) <= 2 {
				return nil, fmt.Errorf("blip: %w", llm.ErrTransient)
			}
			return d, nil
		}).
		Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("got %d docs, want the retried document", len(docs))
	}
	nt := trace.Node("map[flaky]")
	if nt == nil {
		t.Fatal("no trace node for map[flaky]")
	}
	if nt.Retries != 2 {
		t.Errorf("trace retries = %d, want 2", nt.Retries)
	}
	if nt.BackoffNS <= 0 {
		t.Errorf("trace BackoffNS = %d, want > 0 (paced retries must be visible)", nt.BackoffNS)
	}
	if nt.Err != "" {
		t.Errorf("successful stage carries an error annotation: %q", nt.Err)
	}
}

// TestPartialDocsAndErrAnnotation: a failing plan hands back whatever
// flowed out before the failure, and the trace pins the failure to the
// stage that actually died.
func TestPartialDocsAndErrAnnotation(t *testing.T) {
	ec := NewContext(WithParallelism(1), WithRetries(0))
	docs, trace, err := FromDocuments(ec, testDocs(5)).
		Map("explode", func(d *docmodel.Document) (*docmodel.Document, error) {
			if d.ID == "d003" {
				return nil, errors.New("perma-boom")
			}
			return d, nil
		}).
		Execute(context.Background())
	if err == nil {
		t.Fatal("want the permanent failure to surface")
	}
	if len(docs) == 0 || len(docs) >= 5 {
		t.Fatalf("got %d docs, want a non-empty strict subset (partial results)", len(docs))
	}
	for _, d := range docs {
		if d.ID >= "d003" {
			t.Errorf("doc %s flowed out past the failure point", d.ID)
		}
	}
	nt := trace.Node("map[explode]")
	if nt == nil {
		t.Fatal("no trace node for map[explode]")
	}
	if !strings.Contains(nt.Err, "perma-boom") {
		t.Errorf("trace node error = %q, want the failing operator's error", nt.Err)
	}
}

// TestAttemptTimeoutIsTransient: an attempt cut off by its own budget is
// retried like any transient failure while the plan stays alive.
func TestAttemptTimeoutIsTransient(t *testing.T) {
	ec := NewContext(WithRetries(1), WithAttemptTimeout(15*time.Millisecond), WithBackoff(testRetrier()))
	var attempts atomic.Int32
	fn := func(c *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
		if attempts.Add(1) == 1 {
			<-c.CallContext().Done() // wedge until the attempt budget fires
			return nil, c.CallContext().Err()
		}
		return []*docmodel.Document{d}, nil
	}
	nt := &NodeTrace{Name: "map[slow]"}
	docs, err := applyWithRetry(context.Background(), ec, fn, docmodel.New("d"), nt)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || attempts.Load() != 2 {
		t.Fatalf("docs = %d, attempts = %d; want a retry after the budget fired", len(docs), attempts.Load())
	}
	if nt.Retries != 1 {
		t.Errorf("trace retries = %d, want 1", nt.Retries)
	}
}

// TestPlanDeadlineNotRetried: when the plan's own context dies mid-attempt
// the failure is terminal — not an operator fault, not retryable.
func TestPlanDeadlineNotRetried(t *testing.T) {
	ec := NewContext(WithRetries(3), WithBackoff(testRetrier()))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	var attempts atomic.Int32
	fn := func(c *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
		attempts.Add(1)
		<-c.CallContext().Done()
		return nil, c.CallContext().Err()
	}
	nt := &NodeTrace{Name: "map[wedged]"}
	_, err := applyWithRetry(ctx, ec, fn, docmodel.New("d"), nt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want the plan deadline, got %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Errorf("plan-deadline failure was retried %d times", got-1)
	}
}

// TestFaultHookGatesAttempts: a transient hook fault consumes a retry; a
// permanent one aborts before the operator ever runs.
func TestFaultHookGatesAttempts(t *testing.T) {
	var hookCalls, fnCalls atomic.Int32
	ec := NewContext(WithRetries(2), WithBackoff(testRetrier()),
		WithFaultHook(func(op string) error {
			if hookCalls.Add(1) == 1 {
				return fmt.Errorf("fault[%s]: %w", op, llm.ErrTransient)
			}
			return nil
		}))
	fn := func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
		fnCalls.Add(1)
		return []*docmodel.Document{d}, nil
	}
	nt := &NodeTrace{Name: "map[hooked]"}
	if _, err := applyWithRetry(context.Background(), ec, fn, docmodel.New("d"), nt); err != nil {
		t.Fatal(err)
	}
	if fnCalls.Load() != 1 || nt.Retries != 1 {
		t.Errorf("fn ran %d times, retries = %d; want the hook fault to burn one retry", fnCalls.Load(), nt.Retries)
	}

	perm := errors.New("permanent fault")
	ec2 := NewContext(WithRetries(2), WithFaultHook(func(string) error { return perm }))
	var ran atomic.Int32
	_, err := applyWithRetry(context.Background(), ec2, func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
		ran.Add(1)
		return []*docmodel.Document{d}, nil
	}, docmodel.New("d"), &NodeTrace{Name: "map[perm]"})
	if !errors.Is(err, perm) {
		t.Fatalf("want the permanent hook fault, got %v", err)
	}
	if ran.Load() != 0 {
		t.Error("operator ran despite a permanent injected fault")
	}
}
