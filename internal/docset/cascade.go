package docset

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"aryn/internal/docmodel"
	"aryn/internal/embed"
	"aryn/internal/llm"
)

// Default proxy-cascade thresholds. The low bar is deliberately close to
// zero: a document whose text shares essentially no vocabulary with the
// question is safe to drop without asking the model. The high bar sits at
// the cosine ceiling, so by default nothing is kept on proxy score alone
// — keeps must still survive the real predicate. Savings therefore come
// from drops, which is the direction that can be made conservative.
const (
	DefaultCascadeLow  = 0.05
	DefaultCascadeHigh = 1.0
)

// LLMFilterCascade is LLMFilter behind an embedding-similarity proxy (the
// model-cascade pattern: ZenDB's cheap pre-filters, UQE's proxy scoring).
// Each document is scored by cosine similarity between the question
// embedding and the document embedding; scores below low are dropped and
// scores at or above high are kept without consulting the LLM, while the
// uncertain band in between escalates to the exact same LLM predicate as
// LLMFilter (same prompt bytes, same yes-prefix test), so escalated
// documents are judged identically. Escalations and proxy decisions are
// counted in the stage's NodeTrace.
//
// high <= 0 selects DefaultCascadeHigh; low <= 0 disables the drop rung
// entirely (cosine can go negative, so 0 is not a safe implicit floor).
func (ds *DocSet) LLMFilterCascade(question string, low, high float64) *DocSet {
	if high <= 0 {
		high = DefaultCascadeHigh
	}
	var once sync.Once
	var qvec []float32
	return ds.with(stageSpec{
		name: fmt.Sprintf("llmFilterCascade[%s, band=%g..%g]", question, low, high),
		kind: mapKind,
		mapFn: func(ec *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			once.Do(func() { qvec = ec.Embedder.Embed(question) })
			score := proxyScore(ec, qvec, d)
			switch {
			case low > 0 && score < low:
				if ec.nt != nil {
					atomic.AddInt64(&ec.nt.ProxyDropped, 1)
				}
				return nil, nil
			case score >= high:
				if ec.nt != nil {
					atomic.AddInt64(&ec.nt.ProxyKept, 1)
				}
				return []*docmodel.Document{d}, nil
			}
			if ec.nt != nil {
				atomic.AddInt64(&ec.nt.Escalations, 1)
			}
			prompt := llm.FilterPrompt(question, d.TextContent())
			resp, err := ec.LLM.Complete(ec.CallContext(), llm.Request{Prompt: prompt})
			if err != nil {
				return nil, err
			}
			if strings.HasPrefix(strings.ToLower(strings.TrimSpace(resp.Text)), "yes") {
				return []*docmodel.Document{d}, nil
			}
			return nil, nil
		},
	})
}

// proxyScore is the cascade's cheap screen: cosine similarity between the
// question vector and the document's embedding (computed on the fly from
// the document text when ingestion did not embed it).
func proxyScore(ec *Context, qvec []float32, d *docmodel.Document) float64 {
	dvec := d.Embedding
	if len(dvec) == 0 {
		text := d.Text
		if text == "" {
			text = d.TextContent()
		}
		dvec = ec.Embedder.Embed(text)
	}
	return embed.Cosine(qvec, dvec)
}
