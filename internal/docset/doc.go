// Package docset implements Sycamore's core abstraction (§5): DocSets —
// reliable, lazily-evaluated collections of hierarchical documents — and
// the structured and semantic operators of Table 2. Transform chains
// build a logical plan; Execute runs it as a pipelined dataflow with
// bounded parallelism, per-call retries, deterministic output ordering,
// and a full per-operator lineage trace.
//
// Paper counterpart: Sycamore, the DocSet ETL/analytics engine of §5.
//
// Concurrency: DocSets are immutable plans — every transform returns a
// new value, so building and executing DocSets from many goroutines is
// safe. Execute runs each map stage with Context.Parallelism workers;
// output order is made deterministic by hierarchical sequence numbers, so
// results are byte-identical at any parallelism. Independent subtrees
// wrap as Tasks (schedule.go): a Task executes at most once no matter how
// many consumers race to demand it, and replays its output to all of
// them. A query-scoped Context (QueryScope) adds a worker budget — a
// work-conserving semaphore over busy workers shared by every pipeline of
// one query — so concurrent branches never multiply the query's worker
// footprint; workers yield their slot while blocked on a model
// round-trip. Traces attribute LLM calls to the dispatching stage exactly
// once.
package docset
