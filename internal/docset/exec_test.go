package docset

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"aryn/internal/docmodel"
	"aryn/internal/llm"
)

func TestSeqLessLexicographic(t *testing.T) {
	cases := []struct {
		a, b []int32
		want bool
	}{
		{[]int32{1}, []int32{2}, true},
		{[]int32{2}, []int32{1}, false},
		{[]int32{1}, []int32{1, 0}, true}, // prefix sorts first
		{[]int32{1, 0}, []int32{1}, false},
		{[]int32{1, 2}, []int32{1, 3}, true},
		{[]int32{1, 2}, []int32{1, 2}, false},
	}
	for _, c := range cases {
		if got := seqLess(c.a, c.b); got != c.want {
			t.Errorf("seqLess(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSeqLessTotalOrder(t *testing.T) {
	// Irreflexive and asymmetric for arbitrary sequences.
	f := func(a, b []int32) bool {
		if seqLess(a, a) || seqLess(b, b) {
			return false
		}
		return !(seqLess(a, b) && seqLess(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChildSeqDoesNotAliasParent(t *testing.T) {
	parent := []int32{1, 2}
	c1 := childSeq(parent, 0)
	c2 := childSeq(parent, 1)
	c1[2] = 99
	if c2[2] != 1 {
		t.Error("sibling sequences alias the same array")
	}
	if parent[0] != 1 || parent[1] != 2 {
		t.Error("parent mutated")
	}
}

func TestBarrierErrorPropagates(t *testing.T) {
	ec := NewContext()
	boom := errors.New("barrier boom")
	_, _, err := FromDocuments(ec, testDocs(5)).
		ReduceByKey("x", func(d *docmodel.Document) string { return "k" },
			func(string, []*docmodel.Document) (*docmodel.Document, error) { return nil, boom }).
		Execute(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	ec := NewContext()
	boom := errors.New("source boom")
	ds := &DocSet{ctx: ec, source: sourceSpec{
		name: "failing",
		emit: func(ctx context.Context, _ *Context, yield func(*docmodel.Document) error) error {
			if err := yield(docmodel.New("one")); err != nil {
				return err
			}
			return boom
		},
	}}
	_, _, err := ds.Execute(context.Background())
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestTraceDurationsAndRender(t *testing.T) {
	ec := NewContext()
	_, trace, err := FromDocuments(ec, testDocs(5)).
		Map("slow", func(d *docmodel.Document) (*docmodel.Document, error) { return d, nil }).
		Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s := trace.String()
	for _, want := range []string{"operator", "map[slow]", "wall time"} {
		if !contains(s, want) {
			t.Errorf("trace render missing %q:\n%s", want, s)
		}
	}
	det := trace.Detailed()
	if !contains(det, "samples:") {
		t.Errorf("detailed trace missing samples:\n%s", det)
	}
	if trace.Node("map[slow]") == nil || trace.Node("nope") != nil {
		t.Error("Node lookup broken")
	}
}

func TestMergeChunks(t *testing.T) {
	ec := NewContext()
	var chunks []*docmodel.Document
	mkChunk := func(parent string, i int, words int) {
		d := docmodel.New(fmt.Sprintf("%s#%d", parent, i))
		d.ParentID = parent
		d.SetProperty("p", parent)
		text := ""
		for w := 0; w < words; w++ {
			text += fmt.Sprintf("w%d ", w)
		}
		d.Text = text
		chunks = append(chunks, d)
	}
	for i := 0; i < 6; i++ {
		mkChunk("A", i, 30) // 6 chunks x 30 tokens -> 2 merged at 100
	}
	mkChunk("B", 0, 10) // parent boundary forces a flush

	out, err := FromDocuments(ec, chunks).MergeChunks(100).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("merged into %d chunks, want 3 (2 for A, 1 for B)", len(out))
	}
	for _, d := range out[:2] {
		if d.ParentID != "A" || d.Property("p") != "A" {
			t.Errorf("merged chunk lost provenance: %+v", d)
		}
	}
	if out[2].ParentID != "B" {
		t.Errorf("parent boundary not respected: %s", out[2].ParentID)
	}
	// Reading order preserved inside merged text.
	if !contains(out[0].Text, "w0") {
		t.Error("merged text lost content")
	}
}

func TestLLMReduceByKeyUsesOneCallPerGroup(t *testing.T) {
	scripted := &llm.Scripted{Responses: []llm.Response{{Text: "combined"}}}
	ec := NewContext(WithLLM(scripted))
	docs := testDocs(6) // parity groups: even/odd
	out, err := FromDocuments(ec, docs).LLMReduceByKey("parity", "combine").TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %d", len(out))
	}
	if scripted.Calls() != 2 {
		t.Errorf("LLM calls = %d, want one per group", scripted.Calls())
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }
