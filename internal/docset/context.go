// Package docset implements Sycamore's core abstraction (§5): DocSets —
// reliable, lazily-evaluated collections of hierarchical documents — and
// the structured and semantic operators of Table 2. Transform chains build
// a logical plan; Execute runs it as a pipelined dataflow with bounded
// parallelism, per-call retries, deterministic output ordering, and a full
// per-operator lineage trace.
package docset

import (
	"aryn/internal/embed"
	"aryn/internal/llm"
)

// Context carries the shared services a DocSet plan executes against: the
// LLM backing semantic operators, the embedding model, and execution knobs.
// It is the Go analogue of Sycamore's `context` handle (Fig. 4).
type Context struct {
	// LLM backs the semantic operators (llmExtract, llmFilter, ...).
	LLM llm.Client
	// Embedder backs the embed transform.
	Embedder embed.Embedder
	// Parallelism is the worker count per pipeline stage (default 4).
	Parallelism int
	// Retries is how many times a transient LLM failure is retried per
	// document (default 2).
	Retries int
	// SampleSize is how many document summaries each operator keeps in its
	// lineage trace (default 3).
	SampleSize int
}

// Option configures a Context.
type Option func(*Context)

// WithLLM sets the language model.
func WithLLM(c llm.Client) Option { return func(ctx *Context) { ctx.LLM = c } }

// WithEmbedder sets the embedding model.
func WithEmbedder(e embed.Embedder) Option { return func(ctx *Context) { ctx.Embedder = e } }

// WithParallelism sets per-stage worker count.
func WithParallelism(n int) Option {
	return func(ctx *Context) {
		if n > 0 {
			ctx.Parallelism = n
		}
	}
}

// WithRetries sets the per-document retry budget for transient failures.
func WithRetries(n int) Option {
	return func(ctx *Context) {
		if n >= 0 {
			ctx.Retries = n
		}
	}
}

// NewContext builds an execution context. Unset services default to a
// seeded Sim LLM and hash embedder so examples work out of the box.
func NewContext(opts ...Option) *Context {
	ctx := &Context{Parallelism: 4, Retries: 2, SampleSize: 3}
	for _, o := range opts {
		o(ctx)
	}
	if ctx.LLM == nil {
		ctx.LLM = llm.NewSim(0)
	}
	if ctx.Embedder == nil {
		ctx.Embedder = embed.NewHash(0)
	}
	return ctx
}
