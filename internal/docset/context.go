package docset

import (
	"context"
	"time"

	"aryn/internal/embed"
	"aryn/internal/llm"
	"aryn/internal/resilience"
)

// Context carries the shared services a DocSet plan executes against: the
// LLM backing semantic operators, the embedding model, and execution knobs.
// It is the Go analogue of Sycamore's `context` handle (Fig. 4).
type Context struct {
	// LLM backs the semantic operators (llmExtract, llmFilter, ...).
	LLM llm.Client
	// Embedder backs the embed transform.
	Embedder embed.Embedder
	// Parallelism is the worker count per pipeline stage (default 4).
	Parallelism int
	// Retries is how many times a transient LLM failure is retried per
	// document (default 2).
	Retries int
	// SampleSize is how many document summaries each operator keeps in its
	// lineage trace (default 3).
	SampleSize int
	// AttemptTimeout bounds each per-document attempt (map-stage retries
	// get a fresh budget per attempt). 0 means no per-attempt bound.
	AttemptTimeout time.Duration
	// Backoff paces the delay between transient-failure retries. The
	// default is a fast seeded full-jitter policy (single-digit
	// milliseconds) so in-process retries stay cheap; server deployments
	// install the same retrier family they use in the LLM middleware.
	Backoff *resilience.Retrier
	// FaultHook, when set, is consulted once per map-stage attempt with
	// the operator name — the chaos-testing seam that lets a fault
	// injector fail or slow ingest/index paths that never touch the LLM.
	FaultHook func(op string) error
	// StreamBatch is how many documents a streaming edge accumulates
	// before handing a batch downstream (Task.StartStream) or to an
	// ExecuteStream sink (default 8). Smaller batches lower time to first
	// result; larger ones amortize channel and HTTP flush overhead.
	StreamBatch int
	// StreamBuffer is the bounded depth, in batches, of a streaming task
	// edge's channel (default 2). It caps how far a producer can run
	// ahead of a slow consumer before backpressure pauses it.
	StreamBuffer int
	// TraceSink, when set, observes every pipeline trace the moment its
	// skeleton exists — before execution starts — so callers can poll
	// live per-operator progress (NodeTrace.Snapshot) while the plan
	// runs. The Luna executor installs it per query scope to drive SSE
	// progress events.
	TraceSink func(*Trace)

	// callCtx is the context the current stage attempt runs under. Stage
	// runners install it (per attempt for map stages, per plan for
	// barriers) so semantic operators issue LLM calls that honor the
	// plan's cancellation and the per-attempt timeout.
	callCtx context.Context

	// budget, when set, caps the busy map-stage workers across every
	// pipeline sharing this context — the per-query worker budget the
	// scheduler installs so a plan whose branches execute concurrently
	// still draws at most Parallelism workers from the pool the server
	// shares between sessions. Nil means per-stage parallelism only (the
	// historical contract for direct docset users).
	budget *workerBudget

	// nt is the trace node of the stage this context view executes
	// (installed by forStage), so stage bodies — notably streaming-edge
	// sources — can record activity the generic runners cannot see, like
	// per-batch arrivals.
	nt *NodeTrace
}

// streamBatchSize returns the effective streaming batch size (contexts
// built without NewContext fall back to the default).
func (c *Context) streamBatchSize() int {
	if c.StreamBatch > 0 {
		return c.StreamBatch
	}
	return 8
}

// streamBufferDepth returns the effective streaming-edge buffer depth in
// batches.
func (c *Context) streamBufferDepth() int {
	if c.StreamBuffer > 0 {
		return c.StreamBuffer
	}
	return 2
}

// workerBudget is a counting semaphore over busy workers. Tokens are held
// only while a stage is actively processing a document — never across
// channel sends or subtree waits — so pipelines sharing a budget cannot
// deadlock on it, and an idle branch's capacity is immediately available
// to its siblings (work-conserving).
type workerBudget struct {
	slots chan struct{}
}

func newWorkerBudget(n int) *workerBudget {
	if n < 1 {
		n = 1
	}
	return &workerBudget{slots: make(chan struct{}, n)}
}

// QueryScope returns a copy of the context with a fresh worker budget of
// Parallelism slots shared by every pipeline lowered under it. The Luna
// executor opens one scope per query; the scope's budget is what lets it
// schedule independent plan branches concurrently without multiplying the
// query's worker footprint by the branch count.
func (c *Context) QueryScope() *Context {
	out := *c
	out.budget = newWorkerBudget(c.Parallelism)
	return &out
}

// acquireWorker blocks until a budget slot is free (or ctx is done).
// No-op without a budget.
func (c *Context) acquireWorker(ctx context.Context) error {
	if c.budget == nil {
		return nil
	}
	select {
	case c.budget.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// releaseWorker returns a slot taken by acquireWorker.
func (c *Context) releaseWorker() {
	if c.budget == nil {
		return
	}
	<-c.budget.slots
}

// CallContext returns the context the current stage attempt should issue
// model and I/O calls under: the plan's context bounded by the per-attempt
// timeout. Background when the operator runs outside a stage (direct
// calls in tests).
func (c *Context) CallContext() context.Context {
	if c.callCtx != nil {
		return c.callCtx
	}
	return context.Background() //lint:allow ctxflow documented fallback: operators invoked outside a stage (direct calls in tests) have no plan context
}

// withCallCtx returns a copy of the context with the attempt context
// installed (stage runners call this; operators read CallContext).
func (c *Context) withCallCtx(ctx context.Context) *Context {
	out := *c
	out.callCtx = ctx
	return &out
}

// forStage returns a stage-scoped view of the context whose LLM client
// records per-call activity into the stage's trace node. Attribution at
// dispatch is what makes shared subtrees report their usage exactly once:
// the calls land on the subtree's own stages, not on every consumer that
// replays its output.
//
// yieldsBudget marks stages whose workers hold a budget token while the
// client is invoked (map stages): their calls release the slot for the
// duration of the model round-trip — a worker blocked on the network is
// not drawing on the worker pool, so a sibling branch can compute while
// this one waits. Barrier and source stages never hold tokens and must
// not yield.
func (c *Context) forStage(nt *NodeTrace, yieldsBudget bool) *Context {
	out := *c
	out.nt = nt
	if c.LLM != nil {
		out.LLM = &tracingLLM{inner: c.LLM, nt: nt, yield: c.budget, yields: yieldsBudget}
	}
	return &out
}

// Option configures a Context.
type Option func(*Context)

// WithLLM sets the language model.
func WithLLM(c llm.Client) Option { return func(ctx *Context) { ctx.LLM = c } }

// WithEmbedder sets the embedding model.
func WithEmbedder(e embed.Embedder) Option { return func(ctx *Context) { ctx.Embedder = e } }

// WithParallelism sets per-stage worker count.
func WithParallelism(n int) Option {
	return func(ctx *Context) {
		if n > 0 {
			ctx.Parallelism = n
		}
	}
}

// WithRetries sets the per-document retry budget for transient failures.
func WithRetries(n int) Option {
	return func(ctx *Context) {
		if n >= 0 {
			ctx.Retries = n
		}
	}
}

// WithBackoff sets the retrier pacing delays between transient-failure
// retries (its MaxAttempts is ignored here — Retries owns the budget).
func WithBackoff(r *resilience.Retrier) Option {
	return func(ctx *Context) { ctx.Backoff = r }
}

// WithAttemptTimeout bounds each per-document map-stage attempt.
func WithAttemptTimeout(d time.Duration) Option {
	return func(ctx *Context) { ctx.AttemptTimeout = d }
}

// WithFaultHook installs a chaos-testing hook consulted once per
// map-stage attempt (see Context.FaultHook).
func WithFaultHook(hook func(op string) error) Option {
	return func(ctx *Context) { ctx.FaultHook = hook }
}

// WithStreamBatch sets how many documents streaming edges accumulate per
// batch (see Context.StreamBatch).
func WithStreamBatch(n int) Option {
	return func(ctx *Context) {
		if n > 0 {
			ctx.StreamBatch = n
		}
	}
}

// WithStreamBuffer sets the bounded depth, in batches, of streaming task
// edges (see Context.StreamBuffer).
func WithStreamBuffer(n int) Option {
	return func(ctx *Context) {
		if n > 0 {
			ctx.StreamBuffer = n
		}
	}
}

// NewContext builds an execution context. Unset services default to a
// seeded Sim LLM and hash embedder so examples work out of the box.
func NewContext(opts ...Option) *Context {
	ctx := &Context{Parallelism: 4, Retries: 2, SampleSize: 3, StreamBatch: 8, StreamBuffer: 2}
	for _, o := range opts {
		o(ctx)
	}
	if ctx.LLM == nil {
		ctx.LLM = llm.NewSim(0)
	}
	if ctx.Embedder == nil {
		ctx.Embedder = embed.NewHash(0)
	}
	if ctx.Backoff == nil {
		// Fast in-process default: retries pace in single-digit
		// milliseconds so library users and tests never notice, while the
		// delay still decorrelates a retry stampede.
		ctx.Backoff = resilience.NewRetrier(resilience.Policy{
			BaseDelay: time.Millisecond,
			MaxDelay:  20 * time.Millisecond,
			Seed:      1,
		})
	}
	return ctx
}
