package docset

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aryn/internal/docmodel"
)

func streamDocs(n int) []*docmodel.Document {
	docs := make([]*docmodel.Document, n)
	for i := range docs {
		d := docmodel.New(fmt.Sprintf("s%03d", i))
		d.SetProperty("rank", i)
		d.Text = "engine fire near the runway"
		docs[i] = d
	}
	return docs
}

func docJSON(t *testing.T, docs []*docmodel.Document) string {
	t.Helper()
	b, err := json.Marshal(docs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// ExecuteStream must deliver every result document through the sink in
// bounded batches and still return the exact documents Execute returns,
// in the same deterministic order.
func TestExecuteStreamMatchesExecute(t *testing.T) {
	build := func(ec *Context) *DocSet {
		return FromDocuments(ec, streamDocs(23)).
			Filter("keep", func(d *docmodel.Document) (bool, error) { return true, nil }).
			Map("mark", func(d *docmodel.Document) (*docmodel.Document, error) {
				d.SetProperty("seen", true)
				return d, nil
			})
	}

	batchEC := NewContext(WithParallelism(4))
	want, _, err := build(batchEC).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	streamEC := NewContext(WithParallelism(4), WithStreamBatch(4))
	var streamed int
	var batches int
	got, trace, err := build(streamEC).ExecuteStream(context.Background(), func(docs []*docmodel.Document) {
		if len(docs) == 0 || len(docs) > 4 {
			t.Errorf("sink batch of %d docs, want 1..4", len(docs))
		}
		streamed += len(docs)
		batches++
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed != len(want) {
		t.Errorf("sink saw %d docs, want %d", streamed, len(want))
	}
	if batches < 2 {
		t.Errorf("sink saw %d batches, want several (23 docs / batch 4)", batches)
	}
	if a, b := docJSON(t, got), docJSON(t, want); a != b {
		t.Errorf("streamed result differs from batch result:\n%s\nvs\n%s", a, b)
	}
	// First-batch latency is recorded for the operators that emitted.
	final := trace.Nodes[len(trace.Nodes)-1]
	if fo := atomic.LoadInt64(&final.FirstOutNS); fo <= 0 || time.Duration(fo) > trace.Wall+time.Second {
		t.Errorf("final stage FirstOutNS = %d, want within (0, wall]", fo)
	}
}

// A streaming task edge must produce byte-identical output to the
// materialized handoff, for both order-insensitive (map) and
// order-sensitive (barrier) consumers.
func TestStreamTaskEdgeByteIdentical(t *testing.T) {
	consumers := map[string]func(*DocSet) *DocSet{
		"map": func(ds *DocSet) *DocSet {
			return ds.Map("stamp", func(d *docmodel.Document) (*docmodel.Document, error) {
				d.SetProperty("consumed", true)
				return d, nil
			})
		},
		"barrier": func(ds *DocSet) *DocSet { return ds.TopK("rank", 7) },
	}
	for name, consume := range consumers {
		t.Run(name, func(t *testing.T) {
			producer := func(ec *Context) *DocSet {
				return FromDocuments(ec, streamDocs(19)).
					Filter("pass", func(d *docmodel.Document) (bool, error) { return true, nil })
			}
			ctx := context.Background()

			mec := NewContext(WithParallelism(3))
			mat := NewTask("edge", producer(mec))
			mat.Start(ctx)
			want, _, err := consume(mat.DocSet()).Execute(ctx)
			if err != nil {
				t.Fatal(err)
			}

			sec := NewContext(WithParallelism(3), WithStreamBatch(4), WithStreamBuffer(2))
			st := NewTask("edge", producer(sec))
			st.StartStream(ctx)
			got, trace, err := consume(st.StreamDocSet()).Execute(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := docJSON(t, got), docJSON(t, want); a != b {
				t.Errorf("streaming edge output differs from materialized:\n%s\nvs\n%s", a, b)
			}
			// The consumer's source node counted batch arrivals.
			src := trace.Nodes[0]
			if n := atomic.LoadInt64(&src.Batches); n < 2 {
				t.Errorf("edge source saw %d batches, want several (19 docs / batch 4)", n)
			}
		})
	}
}

// The consumer must begin processing while the producer is still
// emitting: the whole point of the bounded-channel edge.
func TestStreamTaskEdgeOverlapsProducerAndConsumer(t *testing.T) {
	ec := NewContext(WithParallelism(2), WithStreamBatch(2), WithStreamBuffer(1))
	var produced, overlapped int64
	prod := FromDocuments(ec, streamDocs(16)).
		Map("slowProduce", func(d *docmodel.Document) (*docmodel.Document, error) {
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&produced, 1)
			return d, nil
		})
	task := NewTask("edge", prod)
	ctx := context.Background()
	task.StartStream(ctx)
	out, _, err := task.StreamDocSet().
		Map("consume", func(d *docmodel.Document) (*docmodel.Document, error) {
			if atomic.LoadInt64(&produced) < 16 {
				atomic.AddInt64(&overlapped, 1)
			}
			return d, nil
		}).Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 16 {
		t.Fatalf("got %d docs, want 16", len(out))
	}
	if atomic.LoadInt64(&overlapped) == 0 {
		t.Error("consumer never ran while the producer was still emitting; edge did not pipeline")
	}
}

// The bounded edge must backpressure the producer: with a slow consumer
// the producer cannot run unboundedly ahead.
func TestStreamTaskEdgeBackpressure(t *testing.T) {
	ec := NewContext(WithParallelism(1), WithStreamBatch(1), WithStreamBuffer(1))
	var produced, consumed, maxAhead int64
	prod := FromDocuments(ec, streamDocs(32)).
		Map("count", func(d *docmodel.Document) (*docmodel.Document, error) {
			p := atomic.AddInt64(&produced, 1)
			c := atomic.LoadInt64(&consumed)
			for {
				old := atomic.LoadInt64(&maxAhead)
				if p-c <= old || atomic.CompareAndSwapInt64(&maxAhead, old, p-c) {
					break
				}
			}
			return d, nil
		})
	task := NewTask("edge", prod)
	ctx := context.Background()
	task.StartStream(ctx)
	_, _, err := task.StreamDocSet().
		Map("slowConsume", func(d *docmodel.Document) (*docmodel.Document, error) {
			time.Sleep(time.Millisecond)
			atomic.AddInt64(&consumed, 1)
			return d, nil
		}).Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity between the two map stages: the producer's pending batch,
	// the edge buffer, and the channel/worker slack inside both
	// pipelines. With batch=1, buffer=1, parallelism=1 that is single
	// digits; 12 leaves margin while still proving the bound (vs 32).
	if ahead := atomic.LoadInt64(&maxAhead); ahead > 12 {
		t.Errorf("producer ran %d docs ahead of the consumer, want bounded (<= 12)", ahead)
	}
}

// A producer failure mid-stream must surface on the consumer, labeled
// with the task name.
func TestStreamTaskEdgeErrorPropagates(t *testing.T) {
	ec := NewContext(WithParallelism(1), WithStreamBatch(1), WithRetries(0))
	boom := errors.New("producer exploded")
	prod := FromDocuments(ec, streamDocs(8)).
		Map("explode", func(d *docmodel.Document) (*docmodel.Document, error) {
			if v, _ := d.Properties.Float("rank"); v >= 4 {
				return nil, boom
			}
			return d, nil
		})
	task := NewTask("badEdge", prod)
	ctx := context.Background()
	task.StartStream(ctx)
	_, _, err := task.StreamDocSet().Execute(ctx)
	if err == nil {
		t.Fatal("consumer succeeded past a failed producer")
	}
	if !strings.Contains(err.Error(), "badEdge") || !strings.Contains(err.Error(), "producer exploded") {
		t.Errorf("error %q does not carry the task name and producer failure", err)
	}
}

// Wait on a streamed task must refuse rather than silently return nil
// docs (streaming retains nothing).
func TestStreamTaskWaitRefuses(t *testing.T) {
	ec := NewContext(WithStreamBatch(4))
	task := NewTask("edge", FromDocuments(ec, streamDocs(4)))
	ctx := context.Background()
	task.StartStream(ctx)
	if _, _, err := task.StreamDocSet().Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := task.Wait(ctx); err == nil {
		t.Error("Wait on a streamed task returned no error")
	}
}

// Live progress snapshots must be safe to take while the pipeline is
// executing (run under -race), and the TraceSink must see the trace
// before results flow.
func TestTraceSinkLiveSnapshots(t *testing.T) {
	ec := NewContext(WithParallelism(2))
	var mu sync.Mutex
	var registered []*Trace
	ec.TraceSink = func(tr *Trace) {
		mu.Lock()
		registered = append(registered, tr)
		mu.Unlock()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			for _, tr := range registered {
				tr.Snapshots()
			}
			mu.Unlock()
		}
	}()
	docs, _, err := FromDocuments(ec, streamDocs(40)).
		Map("work", func(d *docmodel.Document) (*docmodel.Document, error) {
			time.Sleep(200 * time.Microsecond)
			d.SetProperty("w", 1)
			return d, nil
		}).Execute(context.Background())
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 40 {
		t.Fatalf("got %d docs, want 40", len(docs))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(registered) != 1 {
		t.Fatalf("TraceSink saw %d traces, want 1", len(registered))
	}
	snaps := registered[0].Snapshots()
	final := snaps[len(snaps)-1]
	if final.Out != 40 || final.FirstOut <= 0 {
		t.Errorf("final snapshot = %+v, want Out=40 and positive FirstOut", final)
	}
}
