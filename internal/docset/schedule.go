package docset

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"aryn/internal/docmodel"
)

// This file implements the branch scheduler: independently-executable
// subtrees of a physical plan (join build sides, diamond prefixes shared
// by several consumers, extra roots of a multi-root DAG) wrapped as Tasks
// that run in their own goroutines. The Luna compiler collects the Tasks
// a plan needs and starts them all when the query begins, so independent
// branches overlap in wall-clock time instead of executing lazily, one at
// a time, in topological order. The per-query worker budget
// (Context.QueryScope) keeps the combined footprint at Parallelism busy
// workers no matter how many branches run at once.

// Task is one independently-schedulable subtree of a physical plan. It
// executes at most once — no matter how many consumers wait on it or how
// racy their first demand is — and retains its documents, lineage trace,
// and error for every consumer. The zero value is not usable; construct
// with NewTask.
type Task struct {
	name string
	ds   *DocSet

	mu      sync.Mutex
	started bool
	done    chan struct{}
	docs    []*docmodel.Document
	trace   *Trace
	err     error
	// edge is the bounded batch channel of a task started in streaming
	// mode (StartStream); nil for materialized tasks. Streaming tasks do
	// not retain their documents — the single consumer owns them.
	edge chan []envelope
}

// NewTask wraps the subtree for scheduling. The name labels the task in
// traces and errors (e.g. "shared[queryDatabase ...]", "join build[n2]").
func NewTask(name string, ds *DocSet) *Task {
	return &Task{name: name, ds: ds, done: make(chan struct{})}
}

// Name returns the task's display label.
func (t *Task) Name() string { return t.name }

// Start launches the subtree in its own goroutine. Idempotent: the first
// caller's context governs the execution (later contexts only bound that
// caller's Wait), exactly as the lazy Shared() contract always worked —
// except the scheduler calls Start eagerly at query begin, so the subtree
// runs concurrently with everything that does not consume it.
func (t *Task) Start(ctx context.Context) {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.mu.Unlock()
	go func() {
		docs, trace, err := t.ds.Execute(ctx)
		t.docs, t.trace, t.err = docs, trace, err
		close(t.done)
	}()
}

// StartStream launches the subtree in streaming mode: output envelopes
// flow to the consumer over a bounded channel of batches (Context
// StreamBatch documents per batch, StreamBuffer batches deep) instead of
// materializing, so a downstream pipeline overlaps with this subtree
// under the shared worker budget — extract on document k while document
// k+1 is still being retrieved. The mode suits exactly one consumer
// reading via StreamDocSet; order-sensitive consumers (sort/topk, join
// build sides) and multi-consumer diamonds keep the materialized
// handoff (Start), which remains the scheduler default.
//
// Idempotent like Start; if the task was already started in materialized
// mode this is a no-op and StreamDocSet falls back to replay.
func (t *Task) StartStream(ctx context.Context) {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	batch := t.ds.ctx.streamBatchSize()
	edge := make(chan []envelope, t.ds.ctx.streamBufferDepth())
	t.edge = edge
	t.mu.Unlock()
	go func() {
		var pending []envelope
		send := func() error {
			if len(pending) == 0 {
				return nil
			}
			out := pending
			pending = nil
			select {
			case edge <- out:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		trace, err := t.ds.executeInto(ctx, func(env envelope) error {
			pending = append(pending, env)
			if len(pending) >= batch {
				return send()
			}
			return nil
		})
		if err == nil {
			err = send()
		}
		t.trace, t.err = trace, err
		close(edge)
		close(t.done)
	}()
}

// StreamDocSet returns a pipeline source that consumes the task's
// streaming edge: batches arrive as the subtree produces them, and each
// envelope keeps its producer sequence number so the consumer's final
// sort reconstructs the same deterministic order a materialized handoff
// yields. Single consumer only — the edge is drained destructively. If
// the task runs in materialized mode (Start won the race, or StartStream
// was never called before Start), this degrades to the replay source.
func (t *Task) StreamDocSet() *DocSet {
	t.mu.Lock()
	edge := t.edge
	t.mu.Unlock()
	if edge == nil {
		return t.DocSet()
	}
	return &DocSet{
		ctx: t.ds.ctx,
		source: sourceSpec{
			name:   t.name,
			shared: true,
			emitEnv: func(ctx context.Context, ec *Context, yield func(envelope) error) error {
				for {
					select {
					case batch, ok := <-edge:
						if !ok {
							// Producer finished: surface its error, if any.
							<-t.done
							if t.err != nil {
								return fmt.Errorf("%s: %w", t.name, t.err)
							}
							return nil
						}
						if nt := ec.nt; nt != nil {
							atomic.AddInt64(&nt.Batches, 1)
						}
						for _, env := range batch {
							if err := yield(env); err != nil {
								return err
							}
						}
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			},
		},
	}
}

// Started reports whether the task has been launched.
func (t *Task) Started() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// Wait blocks until the subtree has executed (starting it if nobody has)
// and returns its documents. The returned slice is shared by every
// consumer — treat it as read-only (consumers with mutating stages clone
// at their source, the same contract index snapshots follow).
func (t *Task) Wait(ctx context.Context) ([]*docmodel.Document, error) {
	t.Start(ctx)
	select {
	case <-t.done:
		t.mu.Lock()
		streamed := t.edge != nil
		t.mu.Unlock()
		if streamed && t.err == nil {
			// Streaming tasks hand their documents to the single edge
			// consumer; there is nothing retained to replay.
			return nil, fmt.Errorf("%s: task streamed its output; nothing retained to replay", t.name)
		}
		return t.docs, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Join blocks until the task's goroutine has fully exited (or forever if
// it was never started — check Started). Unlike Wait it ignores ctx: the
// scheduler uses it on error paths, after cancelling the execution
// context, to make sure no subtree goroutine outlives its query.
func (t *Task) Join() {
	<-t.done
}

// Trace returns the subtree's lineage trace; valid only after the task
// completed (Wait or Join returned).
func (t *Task) Trace() *Trace { return t.trace }

// Err returns the subtree's execution error; valid only after completion.
func (t *Task) Err() error { return t.err }

// DocSet returns a pipeline source that replays the task's output: it
// waits for the subtree (starting it on first demand if the scheduler
// has not) and yields the retained documents to the consumer. The source
// is marked shared, so consumers that mutate clone at their own boundary
// and branches stay isolated.
func (t *Task) DocSet() *DocSet {
	return &DocSet{
		ctx: t.ds.ctx,
		source: sourceSpec{
			name:   t.name,
			shared: true,
			emit: func(ctx context.Context, _ *Context, yield func(*docmodel.Document) error) error {
				docs, err := t.Wait(ctx)
				if err != nil {
					return fmt.Errorf("%s: %w", t.name, err)
				}
				for _, d := range docs {
					if yerr := yield(d); yerr != nil {
						return yerr
					}
				}
				return nil
			},
		},
	}
}
