package docset

import (
	"context"
	"fmt"
	"sync"

	"aryn/internal/docmodel"
)

// This file implements the branch scheduler: independently-executable
// subtrees of a physical plan (join build sides, diamond prefixes shared
// by several consumers, extra roots of a multi-root DAG) wrapped as Tasks
// that run in their own goroutines. The Luna compiler collects the Tasks
// a plan needs and starts them all when the query begins, so independent
// branches overlap in wall-clock time instead of executing lazily, one at
// a time, in topological order. The per-query worker budget
// (Context.QueryScope) keeps the combined footprint at Parallelism busy
// workers no matter how many branches run at once.

// Task is one independently-schedulable subtree of a physical plan. It
// executes at most once — no matter how many consumers wait on it or how
// racy their first demand is — and retains its documents, lineage trace,
// and error for every consumer. The zero value is not usable; construct
// with NewTask.
type Task struct {
	name string
	ds   *DocSet

	mu      sync.Mutex
	started bool
	done    chan struct{}
	docs    []*docmodel.Document
	trace   *Trace
	err     error
}

// NewTask wraps the subtree for scheduling. The name labels the task in
// traces and errors (e.g. "shared[queryDatabase ...]", "join build[n2]").
func NewTask(name string, ds *DocSet) *Task {
	return &Task{name: name, ds: ds, done: make(chan struct{})}
}

// Name returns the task's display label.
func (t *Task) Name() string { return t.name }

// Start launches the subtree in its own goroutine. Idempotent: the first
// caller's context governs the execution (later contexts only bound that
// caller's Wait), exactly as the lazy Shared() contract always worked —
// except the scheduler calls Start eagerly at query begin, so the subtree
// runs concurrently with everything that does not consume it.
func (t *Task) Start(ctx context.Context) {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		return
	}
	t.started = true
	t.mu.Unlock()
	go func() {
		docs, trace, err := t.ds.Execute(ctx)
		t.docs, t.trace, t.err = docs, trace, err
		close(t.done)
	}()
}

// Started reports whether the task has been launched.
func (t *Task) Started() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started
}

// Wait blocks until the subtree has executed (starting it if nobody has)
// and returns its documents. The returned slice is shared by every
// consumer — treat it as read-only (consumers with mutating stages clone
// at their source, the same contract index snapshots follow).
func (t *Task) Wait(ctx context.Context) ([]*docmodel.Document, error) {
	t.Start(ctx)
	select {
	case <-t.done:
		return t.docs, t.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Join blocks until the task's goroutine has fully exited (or forever if
// it was never started — check Started). Unlike Wait it ignores ctx: the
// scheduler uses it on error paths, after cancelling the execution
// context, to make sure no subtree goroutine outlives its query.
func (t *Task) Join() {
	<-t.done
}

// Trace returns the subtree's lineage trace; valid only after the task
// completed (Wait or Join returned).
func (t *Task) Trace() *Trace { return t.trace }

// Err returns the subtree's execution error; valid only after completion.
func (t *Task) Err() error { return t.err }

// DocSet returns a pipeline source that replays the task's output: it
// waits for the subtree (starting it on first demand if the scheduler
// has not) and yields the retained documents to the consumer. The source
// is marked shared, so consumers that mutate clone at their own boundary
// and branches stay isolated.
func (t *Task) DocSet() *DocSet {
	return &DocSet{
		ctx: t.ds.ctx,
		source: sourceSpec{
			name:   t.name,
			shared: true,
			emit: func(ctx context.Context, _ *Context, yield func(*docmodel.Document) error) error {
				docs, err := t.Wait(ctx)
				if err != nil {
					return fmt.Errorf("%s: %w", t.name, err)
				}
				for _, d := range docs {
					if yerr := yield(d); yerr != nil {
						return yerr
					}
				}
				return nil
			},
		},
	}
}
