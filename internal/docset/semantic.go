package docset

import (
	"encoding/json"
	"fmt"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/llm"
)

// This file implements the semantic operators of Table 2b: transforms
// driven by LLM prompts. They are kept separate from the structured
// operators because — as the paper notes (§5.2) — they behave differently
// in practice: non-deterministic in general, and users want to inspect
// their outputs (which the lineage trace supports).

// LLMExtract pulls the given fields out of each document's text content
// with one LLM call per document, merging the results into the document's
// properties — Fig. 4/5's OpenAIPropertyExtractor.
func (ds *DocSet) LLMExtract(fields []llm.FieldSpec) *DocSet {
	names := make([]string, len(fields))
	for i, f := range fields {
		names[i] = f.Name
	}
	return ds.with(stageSpec{
		name:    "llmExtract[" + strings.Join(names, ",") + "]",
		kind:    mapKind,
		mutates: true, // merges extracted fields into d.Properties
		mapFn: func(ec *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			prompt := llm.ExtractPrompt(fields, d.TextContent())
			resp, err := ec.LLM.Complete(ec.CallContext(), llm.Request{Prompt: prompt})
			if err != nil {
				return nil, err
			}
			var extracted map[string]any
			if err := json.Unmarshal([]byte(resp.Text), &extracted); err != nil {
				return nil, fmt.Errorf("llmExtract: model returned non-JSON for %s: %w", d.ID, err)
			}
			for k, v := range extracted {
				if v != nil {
					d.SetProperty(k, v)
				}
			}
			return []*docmodel.Document{d}, nil
		},
	})
}

// LLMFilter keeps documents for which the LLM answers the natural-language
// predicate affirmatively (Table 2b).
func (ds *DocSet) LLMFilter(question string) *DocSet {
	return ds.with(stageSpec{
		name: "llmFilter[" + question + "]",
		kind: mapKind,
		mapFn: func(ec *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			prompt := llm.FilterPrompt(question, d.TextContent())
			resp, err := ec.LLM.Complete(ec.CallContext(), llm.Request{Prompt: prompt})
			if err != nil {
				return nil, err
			}
			if strings.HasPrefix(strings.ToLower(strings.TrimSpace(resp.Text)), "yes") {
				return []*docmodel.Document{d}, nil
			}
			return nil, nil
		},
	})
}

// LLMReduceByKey groups documents by the given property and has the LLM
// combine each group into a single summary document (Table 2b). It is the
// composition the paper describes: a structured reduce to form groups,
// then one narrow LLM call per group.
func (ds *DocSet) LLMReduceByKey(keyField, instruction string) *DocSet {
	grouped := ds.reduceByKey("group:"+keyField, func(d *docmodel.Document) string {
		return d.Property(keyField)
	}, func(key string, docs []*docmodel.Document) (*docmodel.Document, error) {
		merged := docmodel.New(keyField + "=" + key)
		merged.SetProperty(keyField, key)
		merged.SetProperty("group_size", len(docs))
		items := make([]string, 0, len(docs))
		for _, d := range docs {
			items = append(items, strings.ReplaceAll(d.TextContent(), "\n", " "))
		}
		merged.Text = strings.Join(items, "\n")
		return merged, nil
	}, false) // reduce reads members and emits fresh group documents
	return grouped.with(stageSpec{
		name:    "llmCombine[" + instruction + "]",
		kind:    mapKind,
		mutates: true, // rewrites d.Text with the combined summary
		mapFn: func(ec *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			items := strings.Split(d.Text, "\n")
			prompt := llm.SummarizePrompt(instruction, items)
			resp, err := ec.LLM.Complete(ec.CallContext(), llm.Request{Prompt: prompt})
			if err != nil {
				return nil, err
			}
			d.Text = resp.Text
			return []*docmodel.Document{d}, nil
		},
	})
}

// Embed computes an embedding vector for each document's text (Table 2b).
func (ds *DocSet) Embed() *DocSet {
	return ds.with(stageSpec{
		name:    "embed",
		kind:    mapKind,
		mutates: true, // assigns d.Embedding
		mapFn: func(ec *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			text := d.Text
			if text == "" {
				text = d.TextContent()
			}
			d.Embedding = ec.Embedder.Embed(text)
			return []*docmodel.Document{d}, nil
		},
	})
}

// Summarize collapses the whole DocSet into one generated answer document
// — the llmGenerate logical operator, "the G in RAG" (§6.1), usually the
// last step of a plan.
func (ds *DocSet) Summarize(instruction string) *DocSet {
	return ds.with(stageSpec{
		name:  "llmGenerate[" + instruction + "]",
		kind:  barrierKind,
		fresh: true, // emits a single new summary document
		barrierFn: func(ec *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			items := make([]string, 0, len(docs))
			for _, d := range docs {
				items = append(items, d.TextContent())
			}
			prompt := llm.SummarizePrompt(instruction, items)
			resp, err := ec.LLM.Complete(ec.CallContext(), llm.Request{Prompt: prompt})
			if err != nil {
				return nil, err
			}
			out := docmodel.New("summary")
			out.Text = resp.Text
			out.SetProperty("source_count", len(docs))
			return []*docmodel.Document{out}, nil
		},
	})
}
