package docset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/embed"
	"aryn/internal/llm"
)

// LLMCluster groups documents into k clusters by semantic similarity of
// the given fields (falling back to full text when fields is empty) — the
// llmCluster logical operator (§6.1). Each document gains properties
// "cluster_id" (0..k-1) and "cluster_label" (the cluster's most
// characteristic content tokens). Clustering is k-means over embeddings
// with seeded initialization, so results are reproducible.
func (ds *DocSet) LLMCluster(k int, fields []string, seed int64) *DocSet {
	name := fmt.Sprintf("llmCluster[k=%d, fields=%s]", k, strings.Join(fields, ","))
	return ds.with(stageSpec{
		name:    name,
		kind:    barrierKind,
		mutates: true, // assigns cluster_id / cluster_label properties
		barrierFn: func(ec *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			if k <= 0 {
				return nil, fmt.Errorf("llmCluster: k must be positive, got %d", k)
			}
			if len(docs) == 0 {
				return docs, nil
			}
			if k > len(docs) {
				k = len(docs)
			}
			texts := make([]string, len(docs))
			vecs := make([][]float32, len(docs))
			for i, d := range docs {
				texts[i] = clusterText(d, fields)
				vecs[i] = ec.Embedder.Embed(texts[i])
			}
			assign := kmeans(vecs, k, seed)
			labels := clusterLabels(texts, assign, k)
			for i, d := range docs {
				d.SetProperty("cluster_id", assign[i])
				d.SetProperty("cluster_label", labels[assign[i]])
			}
			return docs, nil
		},
	})
}

func clusterText(d *docmodel.Document, fields []string) string {
	if len(fields) == 0 {
		return d.TextContent()
	}
	parts := make([]string, 0, len(fields))
	for _, f := range fields {
		if v := d.Property(f); v != "" {
			parts = append(parts, v)
		}
	}
	if len(parts) == 0 {
		return d.TextContent()
	}
	return strings.Join(parts, " ")
}

// kmeans runs Lloyd's algorithm with k-means++-style seeded init and a
// fixed iteration budget, returning per-point cluster assignments.
func kmeans(vecs [][]float32, k int, seed int64) []int {
	n := len(vecs)
	rng := rand.New(rand.NewSource(seed))
	dim := len(vecs[0])

	// k-means++ init: first center uniform, rest distance-weighted.
	centers := make([][]float32, 0, k)
	centers = append(centers, append([]float32(nil), vecs[rng.Intn(n)]...))
	for len(centers) < k {
		weights := make([]float64, n)
		total := 0.0
		for i, v := range vecs {
			best := math2Inf()
			for _, c := range centers {
				if d := 1 - embed.Cosine(v, c); d < best {
					best = d
				}
			}
			weights[i] = best * best
			total += weights[i]
		}
		pick := 0
		if total > 0 {
			r := rng.Float64() * total
			for i, w := range weights {
				r -= w
				if r <= 0 {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(n)
		}
		centers = append(centers, append([]float32(nil), vecs[pick]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < 25; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math2Inf()
			for ci, c := range centers {
				if d := 1 - embed.Cosine(v, c); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centers.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for ci := range sums {
			sums[ci] = make([]float64, dim)
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for j, x := range v {
				sums[c][j] += float64(x)
			}
		}
		for ci := range centers {
			if counts[ci] == 0 {
				continue // empty cluster keeps its center
			}
			for j := range centers[ci] {
				centers[ci][j] = float32(sums[ci][j] / float64(counts[ci]))
			}
			embed.Normalize(centers[ci])
		}
	}
	return assign
}

func math2Inf() float64 { return 1e18 }

// clusterLabels derives a short label per cluster from its members' most
// frequent content tokens.
func clusterLabels(texts []string, assign []int, k int) []string {
	counts := make([]map[string]int, k)
	for i := range counts {
		counts[i] = map[string]int{}
	}
	for i, t := range texts {
		for _, tok := range llm.ContentTokens(t) {
			counts[assign[i]][tok]++
		}
	}
	labels := make([]string, k)
	for ci, m := range counts {
		type tc struct {
			tok string
			n   int
		}
		all := make([]tc, 0, len(m))
		for t, n := range m {
			all = append(all, tc{t, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].tok < all[j].tok
		})
		top := make([]string, 0, 3)
		for _, e := range all {
			top = append(top, e.tok)
			if len(top) == 3 {
				break
			}
		}
		labels[ci] = strings.Join(top, "/")
	}
	return labels
}
