package docset

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aryn/internal/docmodel"
	"aryn/internal/llm"
	"aryn/internal/resilience"
)

// envelope carries a document through the pipeline with a hierarchical
// sequence number. Sequences make output ordering deterministic no matter
// how workers interleave: results are re-sorted by lineage position, so a
// run with parallelism 1 and parallelism 32 produce identical output.
type envelope struct {
	seq []int32
	doc *docmodel.Document
}

func seqLess(a, b []int32) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

func childSeq(parent []int32, i int) []int32 {
	out := make([]int32, len(parent)+1)
	copy(out, parent)
	out[len(parent)] = int32(i)
	return out
}

// stageKind selects the execution strategy for a stage.
type stageKind int

const (
	// mapKind stages process one document at a time (possibly emitting 0..N
	// documents) and run with per-stage worker parallelism.
	mapKind stageKind = iota
	// barrierKind stages need the whole upstream collection at once
	// (reduce, sort, limit) and run single-threaded.
	barrierKind
)

// stageSpec is the plan-time description of one operator.
type stageSpec struct {
	name string
	// tag is the logical plan-node ID this stage was compiled from (""
	// when the stage has no logical counterpart). Copied onto the stage's
	// NodeTrace so EXPLAIN ANALYZE can aggregate runtime by plan node.
	tag       string
	kind      stageKind
	mapFn     func(*Context, *docmodel.Document) ([]*docmodel.Document, error)
	barrierFn func(*Context, []*docmodel.Document) ([]*docmodel.Document, error)
	// barrierCtxFn is barrierFn for stages that run nested pipelines and
	// must honor the plan's cancellation/deadline (join's build side).
	// Takes precedence over barrierFn when set.
	barrierCtxFn func(context.Context, *Context, []*docmodel.Document) ([]*docmodel.Document, error)
	// mutates marks stages that may write to their input documents
	// (SetProperty, Text/Embedding assignment, user-supplied map
	// functions). Shared-source plans clone at the source only when some
	// stage carries this flag — the copy-on-write escape hatch that lets
	// pure-read pipelines flow zero-clone snapshots end to end.
	mutates bool
	// fresh marks stages whose outputs are newly created documents
	// sharing no mutable state with their inputs (aggregation barriers,
	// explode). A mutator downstream of a fresh stage only ever touches
	// those fresh documents, so it does not force a source clone.
	fresh bool
}

// sourceSpec produces the root documents of a plan.
type sourceSpec struct {
	name string
	// tag is the logical plan-node ID this source was compiled from (see
	// stageSpec.tag).
	tag  string
	emit func(ctx context.Context, ec *Context, yield func(*docmodel.Document) error) error
	// emitEnv is the envelope-level form of emit, used by sources that
	// relay another pipeline's output (streaming task edges): yielded
	// envelopes keep their producer sequence numbers, so the final sort
	// reconstructs the producer's deterministic order no matter how
	// batches interleaved in flight. Takes precedence over emit.
	emitEnv func(ctx context.Context, ec *Context, yield func(envelope) error) error
	// shared marks sources that yield documents owned by someone else
	// (index.Store snapshots, caller-held slices) rather than documents
	// created for this plan. Execute clones shared documents at the
	// source iff a downstream stage mutates.
	shared bool
}

// needsSourceClone reports whether Execute must copy documents as they
// leave the source: only when the source shares ownership AND some stage
// mutates its inputs before a fresh-document barrier replaces them.
func (ds *DocSet) needsSourceClone() bool {
	if !ds.source.shared {
		return false
	}
	for _, sp := range ds.stages {
		if sp.mutates {
			return true
		}
		if sp.fresh {
			return false // later mutators touch fresh documents only
		}
	}
	return false
}

// Execute runs the plan and returns the resulting documents (in
// deterministic order) along with the lineage trace.
func (ds *DocSet) Execute(ctx context.Context) ([]*docmodel.Document, *Trace, error) {
	return ds.ExecuteStream(ctx, nil)
}

// StreamSink observes documents as they clear the plan's final stage, in
// arrival order — the batches are previews, NOT the canonical result.
// The canonical, deterministically-ordered documents are the ones
// ExecuteStream returns; they are byte-identical to Execute's for the
// same plan. Sinks run on the collector goroutine: a slow sink
// backpressures the pipeline rather than buffering unboundedly.
type StreamSink func(docs []*docmodel.Document)

// ExecuteStream runs the plan like Execute while handing arrival-order
// batches of Context.StreamBatch documents to sink as they clear the
// final stage, so consumers (SSE responses, CLI progress) see results
// before the tail of the pipeline finishes. A nil sink is exactly
// Execute. On failure the tail batch is withheld — everything already
// delivered stands, and the returned partial documents keep the
// degraded-mode contract.
func (ds *DocSet) ExecuteStream(ctx context.Context, sink StreamSink) ([]*docmodel.Document, *Trace, error) {
	var collected []envelope
	delivered := 0
	batch := ds.ctx.streamBatchSize()
	flush := func() {
		if sink == nil || delivered == len(collected) {
			return
		}
		docs := make([]*docmodel.Document, 0, len(collected)-delivered)
		for _, env := range collected[delivered:] {
			docs = append(docs, env.doc)
		}
		delivered = len(collected)
		sink(docs)
	}
	trace, err := ds.executeInto(ctx, func(env envelope) error {
		collected = append(collected, env)
		if sink != nil && len(collected)-delivered >= batch {
			flush()
		}
		return nil
	})
	if err == nil {
		flush()
	}
	sort.Slice(collected, func(i, j int) bool { return seqLess(collected[i].seq, collected[j].seq) })
	docs := make([]*docmodel.Document, len(collected))
	for i, env := range collected {
		docs[i] = env.doc
	}
	return docs, trace, err
}

// executeInto runs the pipeline, handing each output envelope to deliver
// on the collector goroutine in arrival order. It owns trace assembly:
// the skeleton is published to Context.TraceSink before execution starts
// (live progress), per-node errors are annotated after it settles. A
// deliver error cancels the run (the consumer went away); remaining
// envelopes drain so stage goroutines exit cleanly.
func (ds *DocSet) executeInto(ctx context.Context, deliver func(envelope) error) (*Trace, error) {
	start := wallclock()
	trace := &Trace{}
	llmBefore, hasLLMStats := llm.StatsOf(ds.ctx.LLM)
	traces := make([]*NodeTrace, 0, len(ds.stages)+1)
	srcTrace := newNodeTrace(ds.source.name, ds.source.tag, ds.ctx.SampleSize)
	traces = append(traces, srcTrace)
	for _, sp := range ds.stages {
		traces = append(traces, newNodeTrace(sp.name, sp.tag, ds.ctx.SampleSize))
	}
	for _, nt := range traces {
		nt.epoch = start
	}
	trace.Nodes = traces
	if ds.ctx.TraceSink != nil {
		ds.ctx.TraceSink(trace)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	chanCap := 2 * ds.ctx.Parallelism
	var wg sync.WaitGroup
	errs := make([]error, len(ds.stages)+1)

	// Source goroutine.
	srcOut := make(chan envelope, chanCap)
	cloneAtSource := ds.needsSourceClone()
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(srcOut)
		// Busy spans cover the source's own work between yields — never
		// the time blocked handing documents to a backpressured consumer —
		// so EXPLAIN ANALYZE attributes downstream latency downstream.
		resumed := wallclock()
		yieldEnv := func(env envelope) error {
			if cloneAtSource {
				env.doc = env.doc.Clone()
			}
			atomic.AddInt64(&srcTrace.In, 1)
			// Sample before sending: once a document crosses the channel its
			// ownership transfers downstream.
			srcTrace.addSample(env.doc.Summary())
			srcTrace.noteSpan(resumed, wallclock())
			defer func() { resumed = wallclock() }()
			select {
			case srcOut <- env:
				atomic.AddInt64(&srcTrace.Out, 1)
				srcTrace.noteFirstOut()
				return nil
			case <-cctx.Done():
				return cctx.Err()
			}
		}
		var err error
		if ds.source.emitEnv != nil {
			// Envelope-relay sources (streaming task edges) keep the
			// producer's sequence numbers intact.
			err = ds.source.emitEnv(cctx, ds.ctx.forStage(srcTrace, false), yieldEnv)
		} else {
			i := 0
			err = ds.source.emit(cctx, ds.ctx.forStage(srcTrace, false), func(d *docmodel.Document) error {
				env := envelope{seq: []int32{int32(i)}, doc: d}
				i++
				return yieldEnv(env)
			})
		}
		srcTrace.noteSpan(resumed, wallclock())
		if err != nil {
			errs[0] = err
			cancel()
		}
	}()

	// Stage goroutines.
	in := srcOut
	for i, sp := range ds.stages {
		out := make(chan envelope, chanCap)
		nt := traces[i+1]
		wg.Add(1)
		go func(i int, sp stageSpec, in <-chan envelope, out chan<- envelope) {
			defer wg.Done()
			defer close(out)
			var err error
			switch sp.kind {
			case mapKind:
				err = runMapStage(cctx, ds.ctx.forStage(nt, true), sp, nt, in, out)
			case barrierKind:
				err = runBarrierStage(cctx, ds.ctx.forStage(nt, false), sp, nt, in, out)
			default:
				err = fmt.Errorf("docset: unknown stage kind %d", sp.kind)
			}
			if err != nil {
				errs[i+1] = err
				cancel()
			}
		}(i, sp, in, out)
		in = out
	}

	// Collect: deliver envelopes as they arrive; after a deliver failure
	// keep draining so upstream goroutines never block on a full channel.
	var deliverErr error
	for env := range in {
		if deliverErr != nil {
			continue
		}
		if err := deliver(env); err != nil {
			deliverErr = err
			cancel()
		}
	}
	wg.Wait()
	trace.Wall = time.Since(start)
	if hasLLMStats {
		if after, ok := llm.StatsOf(ds.ctx.LLM); ok {
			delta := after.Sub(llmBefore)
			trace.LLM = &delta
		}
	}

	// Report the first real (non-cancellation) error.
	var firstErr error
	for _, e := range errs {
		if e != nil && !errors.Is(e, context.Canceled) {
			firstErr = e
			break
		}
	}
	if firstErr == nil && deliverErr != nil && !errors.Is(deliverErr, context.Canceled) {
		firstErr = deliverErr
	}
	if firstErr == nil {
		for _, e := range errs {
			if e != nil {
				firstErr = e
				break
			}
		}
	}
	if firstErr == nil && deliverErr != nil {
		firstErr = deliverErr
	}
	if firstErr == nil && ctx.Err() != nil {
		firstErr = ctx.Err()
	}

	if firstErr != nil {
		// Annotate the trace with which operators actually failed
		// (collateral cancellations stay blank): callers serving under
		// degraded mode return partial results with per-node error
		// provenance instead of discarding completed work.
		for i, e := range errs {
			if e != nil && !errors.Is(e, context.Canceled) {
				traces[i].setErr(e.Error())
			}
		}
		return trace, fmt.Errorf("docset: execute: %w", firstErr)
	}
	return trace, nil
}

// runMapStage fans the input across workers, applying the map function
// with transient-failure retries.
func runMapStage(ctx context.Context, ec *Context, sp stageSpec, nt *NodeTrace, in <-chan envelope, out chan<- envelope) error {
	workers := ec.Parallelism
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	errOnce := sync.Once{}
	var stageErr error
	fail := func(err error) {
		errOnce.Do(func() { stageErr = err })
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for env := range in {
				if ctx.Err() != nil {
					return
				}
				atomic.AddInt64(&nt.In, 1)
				// The budget token is held for exactly the busy span —
				// never across channel sends — so concurrent branches
				// share the per-query worker budget without deadlock.
				if err := ec.acquireWorker(ctx); err != nil {
					return
				}
				t0 := wallclock()
				results, err := applyWithRetry(ctx, ec, sp.mapFn, env.doc, nt)
				nt.noteSpan(t0, wallclock())
				ec.releaseWorker()
				if err != nil {
					fail(fmt.Errorf("%s: %w", sp.name, err))
					return
				}
				for j, d := range results {
					outEnv := envelope{seq: childSeq(env.seq, j), doc: d}
					nt.addSample(d.Summary())
					select {
					case out <- outEnv:
						atomic.AddInt64(&nt.Out, 1)
						nt.noteFirstOut()
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if stageErr != nil {
		return stageErr
	}
	return nil
}

// applyWithRetry runs one document through a map function, retrying
// transient failures up to the context's Retries budget. Retries pace
// through the context's resilience.Retrier (full-jitter backoff, honoring
// Retry-After hints and the plan deadline), each attempt runs under a
// fresh AttemptTimeout when one is configured, and the FaultHook gets a
// chance to fail the attempt first. Backoff waits accumulate in the trace
// node so EXPLAIN ANALYZE separates "stalled retrying" from "busy".
func applyWithRetry(ctx context.Context, ec *Context, fn func(*Context, *docmodel.Document) ([]*docmodel.Document, error), doc *docmodel.Document, nt *NodeTrace) ([]*docmodel.Document, error) {
	var lastErr error
	for attempt := 0; attempt <= ec.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("retries cut short: %w", lastErr)
			}
			return nil, err
		}
		if attempt > 0 && ec.Backoff != nil {
			hint, _ := resilience.RetryAfterHint(lastErr)
			waited, err := ec.Backoff.Wait(ctx, attempt, hint)
			atomic.AddInt64(&nt.BackoffNS, int64(waited))
			if err != nil {
				return nil, fmt.Errorf("retries cut short: %w", lastErr)
			}
		}
		if ec.FaultHook != nil {
			if err := ec.FaultHook(nt.Name); err != nil {
				lastErr = err
				if !errors.Is(err, llm.ErrTransient) {
					return nil, err
				}
				atomic.AddInt64(&nt.Retries, 1)
				continue
			}
		}
		actx := ctx
		var cancel context.CancelFunc
		if ec.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, ec.AttemptTimeout)
		}
		results, err := fn(ec.withCallCtx(actx), doc)
		if cancel != nil {
			cancel()
		}
		if err == nil {
			return results, nil
		}
		if ctx.Err() != nil {
			// The plan itself was canceled or timed out mid-attempt: not an
			// operator failure, and not retryable.
			return nil, ctx.Err()
		}
		if ec.AttemptTimeout > 0 && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			// Only the attempt's own budget expired (the plan is alive): a
			// slow backend call, retryable like any transient failure.
			err = fmt.Errorf("attempt timed out after %s: %w", ec.AttemptTimeout, llm.ErrTransient)
		}
		lastErr = err
		if !errors.Is(err, llm.ErrTransient) {
			return nil, err
		}
		atomic.AddInt64(&nt.Retries, 1)
	}
	return nil, fmt.Errorf("retries exhausted: %w", lastErr)
}

// runBarrierStage gathers the whole input (in deterministic order), applies
// the stage function once, and re-emits.
func runBarrierStage(ctx context.Context, ec *Context, sp stageSpec, nt *NodeTrace, in <-chan envelope, out chan<- envelope) error {
	var collected []envelope
	for env := range in {
		atomic.AddInt64(&nt.In, 1)
		collected = append(collected, env)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sort.Slice(collected, func(i, j int) bool { return seqLess(collected[i].seq, collected[j].seq) })
	docs := make([]*docmodel.Document, len(collected))
	for i, env := range collected {
		docs[i] = env.doc
	}
	t0 := wallclock()
	var results []*docmodel.Document
	var err error
	// Barriers run one shot under the plan context directly (no per-attempt
	// budget: a reduce over the whole collection is not retryable work).
	bec := ec.withCallCtx(ctx)
	if sp.barrierCtxFn != nil {
		results, err = sp.barrierCtxFn(ctx, bec, docs)
	} else {
		results, err = sp.barrierFn(bec, docs)
	}
	nt.noteSpan(t0, wallclock())
	if err != nil {
		return fmt.Errorf("%s: %w", sp.name, err)
	}
	for i, d := range results {
		nt.addSample(d.Summary())
		select {
		case out <- envelope{seq: []int32{int32(i)}, doc: d}:
			atomic.AddInt64(&nt.Out, 1)
			nt.noteFirstOut()
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
