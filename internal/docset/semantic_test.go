package docset

import (
	"context"
	"strings"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/llm"
)

func ntsbishDoc(id, state, narrative string) *docmodel.Document {
	d := docmodel.New(id)
	d.AddElement(&docmodel.Element{Type: docmodel.Table, Page: 1, Table: &docmodel.TableData{
		NumRows: 2, NumCols: 2,
		Cells: []docmodel.TableCell{
			{Row: 0, Col: 0, Text: "Location"}, {Row: 0, Col: 1, Text: state},
			{Row: 1, Col: 0, Text: "Aircraft"}, {Row: 1, Col: 1, Text: "Cessna 172"},
		},
	}})
	d.AddElement(&docmodel.Element{Type: docmodel.Text, Text: narrative, Page: 2})
	return d
}

func TestLLMExtract(t *testing.T) {
	ec := NewContext(WithLLM(llm.NewSim(1)))
	docs := []*docmodel.Document{
		ntsbishDoc("A", "Mesa, Arizona", "The engine lost power over the desert."),
		ntsbishDoc("B", "Hilo, Hawaii", "The airplane landed long in heavy rain and wind."),
	}
	out, err := FromDocuments(ec, docs).LLMExtract([]llm.FieldSpec{
		{Name: "us_state", Type: "string"},
		{Name: "weather_related", Type: "bool"},
	}).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Property("us_state") != "AZ" || out[1].Property("us_state") != "HI" {
		t.Errorf("states = %q, %q", out[0].Property("us_state"), out[1].Property("us_state"))
	}
	wA, _ := out[0].Properties.Bool("weather_related")
	wB, _ := out[1].Properties.Bool("weather_related")
	if wA || !wB {
		t.Errorf("weather_related = %v, %v (want false, true)", wA, wB)
	}
}

func TestLLMFilter(t *testing.T) {
	ec := NewContext(WithLLM(llm.NewSim(1)))
	docs := []*docmodel.Document{
		ntsbishDoc("A", "Mesa, Arizona", "The airplane struck a flock of geese after takeoff."),
		ntsbishDoc("B", "Hilo, Hawaii", "The pilot ran the left tank dry and landed in a field."),
	}
	out, err := FromDocuments(ec, docs).LLMFilter("Does the incident involve birds?").TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].ID != "A" {
		t.Fatalf("filter kept %v", ids(out))
	}
}

func TestLLMFilterRetriesTransientFailures(t *testing.T) {
	// 40% failure rate with 5 retries: all docs should eventually pass.
	ec := NewContext(WithLLM(llm.NewSim(3, llm.WithFailureRate(0.4))), WithRetries(6), WithParallelism(2))
	docs := []*docmodel.Document{
		ntsbishDoc("A", "Mesa, Arizona", "A bird strike damaged the windshield."),
		ntsbishDoc("B", "Reno, Nevada", "Geese were ingested into the engine."),
	}
	out, trace, err := FromDocuments(ec, docs).LLMFilter("Does the incident involve birds?").Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("kept %d docs", len(out))
	}
	nt := trace.Node("llmFilter[Does the incident involve birds?]")
	if nt == nil || nt.Retries == 0 {
		t.Error("expected recorded retries under failure injection")
	}
}

func TestLLMExtractFailsAfterRetryBudget(t *testing.T) {
	ec := NewContext(WithLLM(llm.NewSim(3, llm.WithFailureRate(1.0))), WithRetries(2))
	docs := []*docmodel.Document{ntsbishDoc("A", "Mesa, Arizona", "text")}
	_, _, err := FromDocuments(ec, docs).LLMExtract([]llm.FieldSpec{{Name: "us_state", Type: "string"}}).Execute(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retries exhausted") {
		t.Fatalf("want retries exhausted, got %v", err)
	}
}

func TestEmbedTransform(t *testing.T) {
	ec := NewContext()
	d := docmodel.New("X")
	d.Text = "engine failure during cruise"
	out, err := FromDocuments(ec, []*docmodel.Document{d}).Embed().TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0].Embedding) == 0 {
		t.Fatal("embedding missing")
	}
}

func TestSummarize(t *testing.T) {
	ec := NewContext(WithLLM(llm.NewSim(1)))
	docs := []*docmodel.Document{
		ntsbishDoc("A", "Mesa, Arizona", "Engine failure forced an off-airport landing."),
		ntsbishDoc("B", "Hilo, Hawaii", "A gear collapse occurred on rollout."),
	}
	out, err := FromDocuments(ec, docs).Summarize("summarize the incidents").TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("summarize should produce one doc, got %d", len(out))
	}
	if n, _ := out[0].Properties.Int("source_count"); n != 2 {
		t.Errorf("source_count = %d", n)
	}
	if out[0].Text == "" {
		t.Error("summary text empty")
	}
}

func TestLLMReduceByKey(t *testing.T) {
	ec := NewContext(WithLLM(llm.NewSim(1)))
	a := ntsbishDoc("A", "Mesa, Arizona", "Engine failure after takeoff.")
	a.SetProperty("state", "AZ")
	b := ntsbishDoc("B", "Tucson, Arizona", "Engine fire in cruise.")
	b.SetProperty("state", "AZ")
	c := ntsbishDoc("C", "Hilo, Hawaii", "Hard landing in rain.")
	c.SetProperty("state", "HI")
	out, err := FromDocuments(ec, []*docmodel.Document{a, b, c}).
		LLMReduceByKey("state", "combine the incident narratives").TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %v", ids(out))
	}
	if out[0].Property("state") != "AZ" || out[1].Property("state") != "HI" {
		t.Errorf("group keys = %q, %q", out[0].Property("state"), out[1].Property("state"))
	}
	if n, _ := out[0].Properties.Int("group_size"); n != 2 {
		t.Errorf("AZ group size = %d", n)
	}
	if !strings.Contains(out[0].Text, "Summary") {
		t.Errorf("combined text = %q", out[0].Text)
	}
}

func TestLLMCluster(t *testing.T) {
	ec := NewContext()
	mk := func(id, text string) *docmodel.Document {
		d := docmodel.New(id)
		d.Text = text
		return d
	}
	docs := []*docmodel.Document{
		mk("e1", "engine failure power loss cylinder carburetor engine"),
		mk("e2", "engine power loss fuel starvation engine cylinder"),
		mk("w1", "crosswind gust landing runway excursion wind"),
		mk("w2", "gusting wind hard landing bounced runway wind"),
	}
	out, err := FromDocuments(ec, docs).LLMCluster(2, nil, 7).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cluster := map[string]int{}
	for _, d := range out {
		cid, ok := d.Properties.Int("cluster_id")
		if !ok {
			t.Fatalf("%s missing cluster_id", d.ID)
		}
		cluster[d.ID] = cid
		if d.Property("cluster_label") == "" {
			t.Errorf("%s missing cluster_label", d.ID)
		}
	}
	if cluster["e1"] != cluster["e2"] || cluster["w1"] != cluster["w2"] {
		t.Errorf("similar docs should co-cluster: %v", cluster)
	}
	if cluster["e1"] == cluster["w1"] {
		t.Errorf("dissimilar docs should separate: %v", cluster)
	}
}

func TestLLMClusterValidation(t *testing.T) {
	ec := NewContext()
	_, _, err := FromDocuments(ec, testDocs(3)).LLMCluster(0, nil, 1).Execute(context.Background())
	if err == nil {
		t.Error("k=0 should error")
	}
	// k > n clamps rather than failing.
	out, err := FromDocuments(ec, testDocs(2)).LLMCluster(5, nil, 1).TakeAll(context.Background())
	if err != nil || len(out) != 2 {
		t.Errorf("k>n should clamp: %v %v", len(out), err)
	}
	// Empty input passes through.
	out, err = FromDocuments(ec, nil).LLMCluster(3, nil, 1).TakeAll(context.Background())
	if err != nil || len(out) != 0 {
		t.Errorf("empty input: %v %v", len(out), err)
	}
}

func TestMaterializeMemoryAndDisk(t *testing.T) {
	ec := NewContext()
	cache := NewMemoryCache()
	path := t.TempDir() + "/snap.jsonl.gz"
	out, err := FromDocuments(ec, testDocs(4)).
		MaterializeMemory(cache, "mid").
		MaterializeDisk(path).
		TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatal("materialize should pass docs through")
	}
	snap, ok := cache.Get("mid")
	if !ok || len(snap) != 4 {
		t.Fatalf("memory snapshot missing: %v %d", ok, len(snap))
	}
	// Snapshot is isolated from downstream mutation.
	out[0].SetProperty("i", -1)
	if v, _ := snap[0].Properties.Int("i"); v != 0 {
		t.Error("snapshot must be a deep copy")
	}
	loaded, err := ReadJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 4 || loaded[0].ID != "d000" {
		t.Fatalf("disk round trip: %v", ids(loaded))
	}
	if _, ok := cache.Get("absent"); ok {
		t.Error("absent cache key should miss")
	}
}
