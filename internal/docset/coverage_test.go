package docset

import (
	"context"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/embed"
	"aryn/internal/index"
)

func TestQueryVectorDatabaseSource(t *testing.T) {
	ec := NewContext(WithEmbedder(embed.NewHash(1)))
	store := index.NewStore()
	em := embed.NewHash(1)
	add := func(id, text string) {
		d := docmodel.New(id)
		if err := store.PutDocument(d); err != nil {
			t.Fatal(err)
		}
		if err := store.PutChunk(index.Chunk{ID: id + "-c", ParentID: id, Text: text, Vector: em.Embed(text)}); err != nil {
			t.Fatal(err)
		}
	}
	add("B1", "the airplane struck a flock of geese after takeoff")
	add("W1", "gusting crosswinds forced a runway excursion during landing")
	docs, err := QueryVectorDatabase(ec, store, "bird strike geese", nil, 1).TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 || docs[0].ID != "B1" {
		t.Fatalf("semantic source = %v", ids(docs))
	}
}

func TestFilterPropsTransform(t *testing.T) {
	ec := NewContext()
	docs, err := FromDocuments(ec, testDocs(10)).
		FilterProps(index.Term("parity", "even")).
		TakeAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("FilterProps kept %d", len(docs))
	}
}

func TestClusterTextFieldSelection(t *testing.T) {
	d := docmodel.New("x")
	d.Text = "full body text"
	d.SetProperty("cause", "engine failure")
	if got := clusterText(d, []string{"cause"}); got != "engine failure" {
		t.Errorf("field text = %q", got)
	}
	if got := clusterText(d, []string{"missing"}); got == "" {
		t.Error("missing fields should fall back to full text")
	}
	if got := clusterText(d, nil); got == "" {
		t.Error("nil fields should use full text")
	}
}

func TestPropLessMixedTypes(t *testing.T) {
	mk := func(v any) *docmodel.Document {
		d := docmodel.New("x")
		if v != nil {
			d.SetProperty("f", v)
		}
		return d
	}
	// Numeric before non-numeric.
	if !propLess(mk(1), mk("abc"), "f") {
		t.Error("numeric should sort before string")
	}
	// Present before missing.
	if !propLess(mk("abc"), mk(nil), "f") {
		t.Error("present should sort before missing")
	}
	// Case-insensitive string order.
	if !propLess(mk("Alpha"), mk("beta"), "f") {
		t.Error("string ordering should be case-insensitive")
	}
}

func TestTruncName(t *testing.T) {
	if got := truncName("short", 40); got != "short" {
		t.Errorf("no-op truncation = %q", got)
	}
	long := "a-very-long-operator-name-that-will-not-fit-in-the-column"
	got := truncName(long, 20)
	if len(got) > 22 { // 19 bytes + multibyte ellipsis
		t.Errorf("truncated length = %d (%q)", len(got), got)
	}
}
