package docset

import (
	"fmt"
	"sort"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/index"
	"aryn/internal/llm"
)

// This file implements the structured operators of Table 2a: standard
// dataflow transforms that take arbitrary functions and reshape documents.

// Map transforms each document with fn (fn may mutate and return its
// argument; each document flows through exactly one ownership path).
func (ds *DocSet) Map(name string, fn func(*docmodel.Document) (*docmodel.Document, error)) *DocSet {
	return ds.with(stageSpec{
		name:    "map[" + name + "]",
		kind:    mapKind,
		mutates: true,
		mapFn: func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			out, err := fn(d)
			if err != nil {
				return nil, err
			}
			if out == nil {
				return nil, nil
			}
			return []*docmodel.Document{out}, nil
		},
	})
}

// Filter keeps documents for which pred returns true. pred must treat its
// argument as read-only: filtered documents may be shared index snapshots
// (use Map for in-place edits).
func (ds *DocSet) Filter(name string, pred func(*docmodel.Document) (bool, error)) *DocSet {
	return ds.with(stageSpec{
		name: "filter[" + name + "]",
		kind: mapKind,
		mapFn: func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			ok, err := pred(d)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
			return []*docmodel.Document{d}, nil
		},
	})
}

// FilterProps keeps documents whose properties satisfy the predicate —
// the compiled form of a metadata filter.
func (ds *DocSet) FilterProps(pred index.Predicate) *DocSet {
	return ds.Filter(pred.String(), func(d *docmodel.Document) (bool, error) {
		return pred.Match(d.Properties), nil
	})
}

// FlatMap expands each document into zero or more documents (fn may
// mutate its argument).
func (ds *DocSet) FlatMap(name string, fn func(*docmodel.Document) ([]*docmodel.Document, error)) *DocSet {
	return ds.with(stageSpec{
		name:    "flatMap[" + name + "]",
		kind:    mapKind,
		mutates: true,
		mapFn: func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			return fn(d)
		},
	})
}

// Partitioner converts a raw binary document into a parsed document tree.
// DocParse implements this interface; the transform is Sycamore's
// `partition` (Table 2a).
type Partitioner interface {
	// Partition parses doc.Binary into elements/children on a new document.
	Partition(doc *docmodel.Document) (*docmodel.Document, error)
	// Name identifies the partitioner in plans.
	Name() string
}

// Partition parses raw documents with the given partitioner.
func (ds *DocSet) Partition(p Partitioner) *DocSet {
	return ds.with(stageSpec{
		name: "partition[" + p.Name() + "]",
		kind: mapKind,
		mapFn: func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			parsed, err := p.Partition(d)
			if err != nil {
				return nil, fmt.Errorf("partition %s: %w", d.ID, err)
			}
			return []*docmodel.Document{parsed}, nil
		},
	})
}

// Explode unnests every element into a top-level chunk document carrying
// the parent's properties and a ParentID back-pointer (Table 2a). The
// parent document itself is not emitted. Page furniture (repeated headers
// and footers) is boilerplate, not content, and is dropped — indexing it
// would pollute retrieval with chunks shared by every document.
func (ds *DocSet) Explode() *DocSet {
	return ds.with(stageSpec{
		name:  "explode",
		kind:  mapKind,
		fresh: true, // emits new chunk documents with cloned elements/props
		mapFn: func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			var elements []*docmodel.Element
			for _, e := range d.AllElements() {
				if e.Type == docmodel.PageHeader || e.Type == docmodel.PageFooter {
					continue
				}
				elements = append(elements, e)
			}
			out := make([]*docmodel.Document, 0, len(elements))
			for i, e := range elements {
				chunk := docmodel.New(fmt.Sprintf("%s#%d", d.ID, i))
				chunk.ParentID = d.ID
				chunk.Title = d.Title
				chunk.Properties = d.Properties.Clone()
				switch {
				case e.Type == docmodel.Table && e.Table != nil:
					chunk.Text = e.Table.Markdown()
				case e.Type == docmodel.Picture && e.Image != nil:
					chunk.Text = e.Image.Summary
				default:
					chunk.Text = e.Text
				}
				chunk.Elements = []*docmodel.Element{e.Clone()}
				out = append(out, chunk)
			}
			return out, nil
		},
	})
}

// MergeChunks coalesces consecutive exploded chunks of the same parent
// into retrieval-sized passages of at most maxTokens tokens — the
// chunking granularity RAG systems index at. Chunk order (reading order)
// is preserved; properties come from the parent via the inputs.
func (ds *DocSet) MergeChunks(maxTokens int) *DocSet {
	return ds.with(stageSpec{
		name: fmt.Sprintf("mergeChunks[%d tok]", maxTokens),
		kind: barrierKind,
		barrierFn: func(_ *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			var out []*docmodel.Document
			var cur *docmodel.Document
			var curTokens, seq int
			flush := func() {
				if cur != nil {
					out = append(out, cur)
					cur = nil
					curTokens = 0
				}
			}
			for _, d := range docs {
				t := llm.CountTokens(d.Text)
				if cur == nil || cur.ParentID != d.ParentID || curTokens+t > maxTokens {
					flush()
					seq++
					merged := docmodel.New(fmt.Sprintf("%s#m%d", d.ParentID, seq))
					merged.ParentID = d.ParentID
					merged.Title = d.Title
					merged.Properties = d.Properties.Clone()
					cur = merged
				}
				if cur.Text != "" {
					cur.Text += "\n"
				}
				cur.Text += d.Text
				curTokens += t
				for _, e := range d.Elements {
					cur.Elements = append(cur.Elements, e)
				}
			}
			flush()
			return out, nil
		},
	})
}

// ReduceByKey groups documents by key and reduces each group to one
// document (Table 2a). Groups are emitted in sorted key order. Documents
// with an empty key are dropped, accommodating missing fields (§5.2).
func (ds *DocSet) ReduceByKey(name string, key func(*docmodel.Document) string, reduce func(key string, docs []*docmodel.Document) (*docmodel.Document, error)) *DocSet {
	// User-supplied reduce functions may write to group members.
	return ds.reduceByKey(name, key, reduce, true)
}

// reduceByKey is ReduceByKey with an explicit mutation contract: internal
// callers whose reduce functions only read their group and emit brand-new
// group documents (GroupByAggregate, LLMReduceByKey) pass mutates=false,
// which also marks the stage as a fresh-document barrier — shared-source
// plans stay zero-clone even with mutators downstream of the aggregation.
func (ds *DocSet) reduceByKey(name string, key func(*docmodel.Document) string, reduce func(key string, docs []*docmodel.Document) (*docmodel.Document, error), mutates bool) *DocSet {
	return ds.with(stageSpec{
		name:    "reduceByKey[" + name + "]",
		kind:    barrierKind,
		mutates: mutates,
		fresh:   !mutates,
		barrierFn: func(_ *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			groups := map[string][]*docmodel.Document{}
			var order []string
			for _, d := range docs {
				k := key(d)
				if k == "" {
					continue
				}
				if _, ok := groups[k]; !ok {
					order = append(order, k)
				}
				groups[k] = append(groups[k], d)
			}
			sort.Strings(order)
			out := make([]*docmodel.Document, 0, len(order))
			for _, k := range order {
				reduced, err := reduce(k, groups[k])
				if err != nil {
					return nil, err
				}
				if reduced != nil {
					out = append(out, reduced)
				}
			}
			return out, nil
		},
	})
}

// Limit keeps the first n documents (deterministic order).
func (ds *DocSet) Limit(n int) *DocSet {
	return ds.with(stageSpec{
		name: fmt.Sprintf("limit[%d]", n),
		kind: barrierKind,
		barrierFn: func(_ *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			if n >= 0 && len(docs) > n {
				docs = docs[:n]
			}
			return docs, nil
		},
	})
}

// SortBy orders documents by the given property. Missing values sort last;
// numeric values compare numerically when both sides parse.
func (ds *DocSet) SortBy(field string, descending bool) *DocSet {
	dir := "asc"
	if descending {
		dir = "desc"
	}
	return ds.with(stageSpec{
		name: fmt.Sprintf("sort[%s %s]", field, dir),
		kind: barrierKind,
		barrierFn: func(_ *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			sort.SliceStable(docs, func(i, j int) bool {
				less := propLess(docs[i], docs[j], field)
				if descending {
					return propLess(docs[j], docs[i], field)
				}
				return less
			})
			return docs, nil
		},
	})
}

func propLess(a, b *docmodel.Document, field string) bool {
	av, aok := a.Properties.Float(field)
	bv, bok := b.Properties.Float(field)
	switch {
	case aok && bok:
		return av < bv
	case aok != bok:
		return aok // numeric before non-numeric
	}
	as, bs := a.Property(field), b.Property(field)
	if (as == "") != (bs == "") {
		return as != "" // present before missing
	}
	return strings.ToLower(as) < strings.ToLower(bs)
}

// Distinct keeps the first document per key, dropping duplicates — the
// deduplication step whose absence causes the paper's counting errors
// (§7.2: one incident with two aircraft counted twice).
func (ds *DocSet) Distinct(field string) *DocSet {
	return ds.with(stageSpec{
		name: "distinct[" + field + "]",
		kind: barrierKind,
		barrierFn: func(_ *Context, docs []*docmodel.Document) ([]*docmodel.Document, error) {
			seen := map[string]bool{}
			var out []*docmodel.Document
			for _, d := range docs {
				k := d.Property(field)
				if k == "" {
					k = d.ID
				}
				if seen[k] {
					continue
				}
				seen[k] = true
				out = append(out, d)
			}
			return out, nil
		},
	})
}

// Write stores documents into the index and passes them through: chunk
// documents (non-empty ParentID) index as chunks, everything else upserts
// as a parent document (Table 2a's write).
func (ds *DocSet) Write(store *index.Store) *DocSet {
	return ds.with(stageSpec{
		name: "write[index]",
		kind: mapKind,
		mapFn: func(_ *Context, d *docmodel.Document) ([]*docmodel.Document, error) {
			if d.ParentID != "" {
				err := store.PutChunk(index.Chunk{
					ID:       d.ID,
					ParentID: d.ParentID,
					Text:     d.Text,
					Vector:   d.Embedding,
					Page:     firstPage(d),
				})
				if err != nil {
					return nil, err
				}
			} else if err := store.PutDocument(d); err != nil {
				return nil, err
			}
			return []*docmodel.Document{d}, nil
		},
	})
}

func firstPage(d *docmodel.Document) int {
	for _, e := range d.AllElements() {
		if e.Page > 0 {
			return e.Page
		}
	}
	return 0
}
