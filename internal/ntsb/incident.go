package ntsb

import (
	"fmt"
	"math/rand"
	"time"
)

// Cause categorizes the accident's primary cause.
type Cause string

// Cause categories.
const (
	CauseEngine      Cause = "engine"      // mechanical powerplant failure
	CauseFuel        Cause = "fuel"        // exhaustion/contamination (engine stops, but cause is fuel management)
	CausePilot       Cause = "pilot"       // loss of control, judgment
	CauseWeather     Cause = "weather"     // wind, icing, IMC
	CauseBird        Cause = "bird"        // bird strike
	CauseMaintenance Cause = "maintenance" // improper maintenance
	CauseMidair      Cause = "midair"      // midair collision (multi-aircraft)
)

// Incident is the ground-truth record behind one report document.
type Incident struct {
	// ReportID uniquely identifies the report (one per aircraft).
	ReportID string
	// AccidentNumber is shared by reports of the same accident: the unit
	// "how many incidents" questions should count.
	AccidentNumber string
	City           string
	State          string // full name, e.g. "Kentucky"
	Date           time.Time
	Aircraft       string // "Piper PA-38-112"
	Manufacturer   string
	Category       string // Airplane | Helicopter | Glider
	Registration   string
	Damage         string // Destroyed | Substantial | Minor | None
	Engines        int
	EngineType     string
	Cause          Cause
	DamagedPart    string
	InjuryText     string // e.g. "1 Fatal, 1 Minor" or "None"
	Fatal          int
	Serious        int
	Minor          int
	WeatherRelated bool
	BirdStrike     bool
	Fire           bool
	Water          bool // ditching / water impact
	StudentPilot   bool
	Night          bool
	Phase          string // takeoff | cruise | approach | landing | maneuvering
	PartRegulation string // "Part 91: General aviation" etc.
	PilotCert      string
	PilotHours     int
	Conditions     string // VMC | IMC
	Visibility     float64
	WindSpeed      int
	WindGust       int
	Temperature    float64
	Operator       string
	Departure      string
	Destination    string
	// EngineMention is true when the narrative discusses the engine even
	// though the cause is elsewhere ("examination revealed no anomalies").
	EngineMention bool
}

// Month returns the incident's month name (e.g. "July").
func (in *Incident) Month() string { return in.Date.Month().String() }

// Year returns the incident's calendar year.
func (in *Incident) Year() int { return in.Date.Year() }

// aircraft types: manufacturer, model, category, engines, engine type.
type acType struct {
	mfr, model, category, engineType string
	engines                          int
}

var aircraftTypes = []acType{
	{"Cessna", "172S", "Airplane", "Reciprocating", 1},
	{"Cessna", "182T", "Airplane", "Reciprocating", 1},
	{"Cessna", "150M", "Airplane", "Reciprocating", 1},
	{"Piper", "PA-28-140", "Airplane", "Reciprocating", 1},
	{"Piper", "PA-38-112", "Airplane", "Reciprocating", 1},
	{"Piper", "PA-18", "Airplane", "Reciprocating", 1},
	{"Beech", "A36", "Airplane", "Reciprocating", 1},
	{"Beech", "58", "Airplane", "Reciprocating", 2},
	{"Cirrus", "SR22", "Airplane", "Reciprocating", 1},
	{"Mooney", "M20J", "Airplane", "Reciprocating", 1},
	{"Robinson", "R44", "Helicopter", "Reciprocating", 1},
	{"Robinson", "R22", "Helicopter", "Reciprocating", 1},
	{"Bell", "206", "Helicopter", "Turbo shaft", 1},
	{"Schweizer", "SGS 2-33A", "Glider", "None", 0},
	{"Air Tractor", "AT-502B", "Airplane", "Turbo prop", 1},
}

// cityState pairs exclude Hawaii so "incidents in Hawaii" is zero, as in
// the paper's RAG-success case.
var cityStates = [][2]string{
	{"Gilbertsville", "Kentucky"}, {"Lexington", "Kentucky"},
	{"Mesa", "Arizona"}, {"Tucson", "Arizona"},
	{"Fresno", "California"}, {"Redding", "California"}, {"Lancaster", "California"},
	{"Dallas", "Texas"}, {"Lubbock", "Texas"}, {"Abilene", "Texas"},
	{"Ocala", "Florida"}, {"Sebring", "Florida"},
	{"Anchorage", "Alaska"}, {"Palmer", "Alaska"}, {"Talkeetna", "Alaska"},
	{"Reno", "Nevada"}, {"Elko", "Nevada"},
	{"Bend", "Oregon"}, {"Salem", "Oregon"},
	{"Olympia", "Washington"}, {"Yakima", "Washington"},
	{"Greeley", "Colorado"}, {"Durango", "Colorado"},
	{"Bozeman", "Montana"}, {"Kalispell", "Montana"},
	{"Ames", "Iowa"}, {"Dubuque", "Iowa"},
	{"Rome", "Georgia"}, {"Valdosta", "Georgia"},
	{"Utica", "New York"}, {"Elmira", "New York"},
	{"Winchester", "Virginia"}, {"Danville", "Virginia"},
	{"Marion", "Ohio"}, {"Findlay", "Ohio"},
	{"Jackson", "Tennessee"}, {"Cookeville", "Tennessee"},
	{"Kenosha", "Wisconsin"}, {"Wausau", "Wisconsin"},
	{"Gallup", "New Mexico"}, {"Roswell", "New Mexico"},
	{"Enid", "Oklahoma"}, {"Ardmore", "Oklahoma"},
}

var damagedParts = []string{
	"left wing", "right wing", "fuselage", "empennage", "landing gear",
	"propeller", "firewall", "horizontal stabilizer", "nose gear", "engine mount",
}

var phases = []string{"takeoff", "cruise", "approach", "landing", "maneuvering"}

var operators = []string{
	"On file", "Private individual", "Sun Valley Aviation LLC", "Bluegrass Flying Club",
	"Anderson Aviation LLC", "High Desert Helicopters", "Pioneer Flight Academy",
	"Lakeshore Aero Services", "Canyon Air Works",
}

var regions = []string{"CEN", "ERA", "WPR", "DCA"}

// GenerateIncidents produces n accidents (a few of which involve two
// aircraft and therefore yield more than n reports), deterministically
// from the seed. The returned slice has one entry per report document.
func GenerateIncidents(n int, seed int64) []Incident {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2024, 6, 1, 0, 0, 0, 0, time.UTC)
	var out []Incident

	// Multi-aircraft accidents: ~3% of accidents are midair collisions
	// producing two reports with a shared accident number.
	nPairs := n / 33
	if nPairs == 0 && n >= 20 {
		nPairs = 1
	}
	pairAt := map[int]bool{}
	for p := 0; p < nPairs; p++ {
		pairAt[7+p*31] = true // deterministic, spread out
	}

	regIdx := 0
	for i := 0; i < n; i++ {
		acc := fmt.Sprintf("%s24LA%03d", regions[i%len(regions)], 100+i)
		date := base.Add(time.Duration(rng.Intn(122)) * 24 * time.Hour) // Jun 1 - Sep 30
		if pairAt[i] {
			a := makeIncident(rng, acc, acc+"A", date, &regIdx)
			b := makeIncident(rng, acc, acc+"B", date, &regIdx)
			// One Cessna and one Beech, both single-engine airplanes: the
			// engines-breakdown question double-counts the accident (§7.2)
			// while per-manufacturer counts stay accident-consistent.
			pairTypes := [2]acType{aircraftTypes[0], aircraftTypes[6]}
			for j, inc := range []*Incident{&a, &b} {
				inc.Cause = CauseMidair
				inc.City, inc.State = a.City, a.State
				inc.Damage = "Substantial"
				inc.Fatal, inc.Serious, inc.Minor = 0, 0, 1
				inc.InjuryText = "1 Minor"
				inc.BirdStrike, inc.Fire, inc.Water, inc.StudentPilot, inc.Night = false, false, false, false, false
				inc.WeatherRelated = false
				inc.Conditions = "Visual (VMC)"
				inc.WindGust = 0
				inc.PartRegulation = "Part 91: General aviation"
				if inc.PilotCert == "Student" {
					inc.PilotCert = "Private"
				}
				// Avoid July so list questions about July stay unaffected.
				if inc.Date.Month() == time.July {
					inc.Date = inc.Date.AddDate(0, 1, 0)
				}
				applyType(inc, pairTypes[j], rng)
			}
			out = append(out, a, b)
			continue
		}
		inc := makeIncident(rng, acc, acc, date, &regIdx)
		out = append(out, inc)
	}

	// Pin exactly two July bird strikes (the paper's list-question case):
	// clear any accidental ones, then force two single-aircraft incidents.
	julyBirds := 0
	for idx := range out {
		if out[idx].BirdStrike && out[idx].Date.Month() == time.July {
			julyBirds++
			if julyBirds > 2 {
				out[idx].Date = out[idx].Date.AddDate(0, -1, 0)
				julyBirds--
			}
		}
	}
	for idx := 0; julyBirds < 2 && idx < len(out); idx++ {
		inc := &out[idx]
		if inc.Cause == CauseMidair || inc.BirdStrike {
			continue
		}
		setCause(inc, CauseBird, rand.New(rand.NewSource(seed+int64(idx))))
		inc.Date = time.Date(2024, 7, 3+julyBirds*9, 14, 30, 0, 0, time.UTC)
		julyBirds++
	}
	return out
}

// skewIdx draws an index biased toward the front of the range, giving the
// corpus realistic non-uniform geography and part-damage distributions
// (stable arg-max answers for "which state had the most incidents" and
// well-separated top-3 part counts).
func skewIdx(rng *rand.Rand, n int) int {
	r := rng.Float64()
	i := int(r * r * r * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

func makeIncident(rng *rand.Rand, accNum, reportID string, date time.Time, regIdx *int) Incident {
	cs := cityStates[skewIdx(rng, len(cityStates))]
	inc := Incident{
		ReportID:       reportID,
		AccidentNumber: accNum,
		City:           cs[0],
		State:          cs[1],
		Date:           date.Add(time.Duration(8+rng.Intn(12)) * time.Hour),
		Phase:          phases[rng.Intn(len(phases))],
		Operator:       operators[rng.Intn(len(operators))],
		PilotHours:     40 + rng.Intn(12000),
		Visibility:     []float64{10, 10, 10, 7, 5, 3, 1}[rng.Intn(7)],
		WindSpeed:      rng.Intn(22),
		Temperature:    8 + rng.Float64()*28,
	}
	*regIdx++
	inc.Registration = fmt.Sprintf("N%d%c%c", 100+rng.Intn(900), 'A'+rune(rng.Intn(26)), 'A'+rune(rng.Intn(26)))
	applyType(&inc, aircraftTypes[rng.Intn(len(aircraftTypes))], rng)

	// Cause mix.
	c := rng.Float64()
	switch {
	case c < 0.16:
		setCause(&inc, CauseEngine, rng)
	case c < 0.30:
		setCause(&inc, CauseFuel, rng)
	case c < 0.58:
		setCause(&inc, CausePilot, rng)
	case c < 0.74:
		setCause(&inc, CauseWeather, rng)
	case c < 0.79:
		setCause(&inc, CauseBird, rng)
	case c < 0.88:
		setCause(&inc, CauseMaintenance, rng)
	default:
		setCause(&inc, CausePilot, rng)
		inc.Water = rng.Float64() < 0.5
	}

	// Damage: overwhelmingly substantial, as in the paper (94/100).
	d := rng.Float64()
	switch {
	case d < 0.94:
		inc.Damage = "Substantial"
	case d < 0.98:
		inc.Damage = "Destroyed"
	default:
		inc.Damage = "Minor"
	}
	inc.DamagedPart = damagedParts[skewIdx(rng, len(damagedParts))]

	// Injuries.
	r := rng.Float64()
	switch {
	case r < 0.08 || inc.Damage == "Destroyed" && r < 0.5:
		inc.Fatal = 1 + rng.Intn(2)
		inc.InjuryText = fmt.Sprintf("%d Fatal", inc.Fatal)
	case r < 0.25:
		inc.Serious = 1 + rng.Intn(3)
		inc.InjuryText = fmt.Sprintf("%d Serious", inc.Serious)
	case r < 0.45:
		inc.Minor = 1 + rng.Intn(2)
		inc.InjuryText = fmt.Sprintf("%d Minor", inc.Minor)
	default:
		inc.InjuryText = "None"
	}

	inc.StudentPilot = rng.Float64() < 0.10
	inc.Night = rng.Float64() < 0.12
	inc.Fire = inc.Fire || rng.Float64() < 0.07
	if inc.StudentPilot {
		inc.PilotCert = "Student"
		inc.PilotHours = 20 + rng.Intn(120)
	} else {
		inc.PilotCert = []string{"Private", "Private", "Commercial", "Airline transport"}[rng.Intn(4)]
	}
	if inc.Conditions == "" {
		inc.Conditions = "Visual (VMC)"
	}
	reg := []string{
		"Part 91: General aviation", "Part 91: General aviation", "Part 91: General aviation",
		"Part 137: Agricultural", "Part 135: Air taxi", "Part 91: Instructional",
	}[rng.Intn(6)]
	if inc.StudentPilot {
		reg = "Part 91: Instructional"
	}
	inc.PartRegulation = reg
	inc.Departure = fmt.Sprintf("%s, %s (%c%c%c)", inc.City, inc.State, 'A'+rune(rng.Intn(26)), 'A'+rune(rng.Intn(26)), 'A'+rune(rng.Intn(26)))
	dst := cityStates[rng.Intn(len(cityStates))]
	inc.Destination = fmt.Sprintf("%s, %s", dst[0], dst[1])

	// Most non-engine reports still examine the engine (the filter trap).
	if inc.Cause != CauseEngine && inc.Cause != CauseFuel && inc.Category != "Glider" {
		inc.EngineMention = rng.Float64() < 0.65
	}
	return inc
}

func applyType(inc *Incident, t acType, rng *rand.Rand) {
	inc.Manufacturer = t.mfr
	inc.Aircraft = t.mfr + " " + t.model
	inc.Category = t.category
	inc.Engines = t.engines
	inc.EngineType = t.engineType
}

func setCause(inc *Incident, c Cause, rng *rand.Rand) {
	inc.Cause = c
	switch c {
	case CauseWeather:
		inc.WeatherRelated = true
		inc.WindSpeed = 15 + rng.Intn(15)
		inc.WindGust = inc.WindSpeed + 4 + rng.Intn(8)
		if rng.Float64() < 0.35 {
			inc.Conditions = "Instrument (IMC)"
			inc.Visibility = 0.5 + rng.Float64()*2
		}
	case CauseBird:
		inc.BirdStrike = true
	case CauseEngine, CauseFuel:
		if inc.Category == "Glider" {
			// Gliders have no engine; re-roll as pilot cause.
			inc.Cause = CausePilot
		}
	}
}

// Accidents returns the number of distinct accident numbers (the unit a
// correct "how many incidents" answer counts).
func Accidents(incidents []Incident) int {
	seen := map[string]bool{}
	for i := range incidents {
		seen[incidents[i].AccidentNumber] = true
	}
	return len(seen)
}
