// Package ntsb synthesizes the evaluation corpus of §7: aviation
// incident reports in the style of the NTSB CAROL database, rendered as
// rawdoc "PDFs", with exact ground truth retained for scoring.
//
// The generator deliberately reproduces the dataset properties the
// paper's failure analysis depends on: a few accidents involve two
// aircraft and yield two reports sharing an accident number (the §7.2
// double-counting trap); most narratives mention the engine even when the
// engine was not causal (the llmFilter generosity trap); and every report
// embeds the NTSB liability disclaimer (the RAG context-poisoning trap).
//
// Paper counterpart: the NTSB corpus of §7.1.
//
// Concurrency: generation is a pure function of (count, seed); corpora
// are plain data once generated. Generate in one goroutine, read from
// many.
package ntsb
