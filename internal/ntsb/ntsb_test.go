package ntsb

import (
	"strings"
	"testing"
	"time"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
)

func TestGenerateIncidentsDeterministic(t *testing.T) {
	a := GenerateIncidents(100, 42)
	b := GenerateIncidents(100, 42)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("incident %d differs across runs", i)
		}
	}
}

func TestMultiAircraftAccidents(t *testing.T) {
	incs := GenerateIncidents(100, 42)
	if len(incs) <= 100 {
		t.Fatalf("expected multi-aircraft pairs to inflate report count, got %d", len(incs))
	}
	if got := Accidents(incs); got != 100 {
		t.Errorf("accidents = %d, want 100", got)
	}
	// Pairs share accident numbers and are single-engine substantial.
	byAcc := map[string][]Incident{}
	for _, in := range incs {
		byAcc[in.AccidentNumber] = append(byAcc[in.AccidentNumber], in)
	}
	pairs := 0
	for _, group := range byAcc {
		if len(group) == 2 {
			pairs++
			for _, in := range group {
				if in.Cause != CauseMidair || in.Engines != 1 || in.Damage != "Substantial" {
					t.Errorf("pair member %s: cause=%v engines=%d damage=%s", in.ReportID, in.Cause, in.Engines, in.Damage)
				}
				if in.Date.Month() == time.July {
					t.Errorf("pair member %s lands in July (would perturb July questions)", in.ReportID)
				}
			}
		}
	}
	if pairs < 2 {
		t.Errorf("pairs = %d, want >= 2", pairs)
	}
}

func TestExactlyTwoJulyBirdStrikes(t *testing.T) {
	incs := GenerateIncidents(100, 42)
	n := 0
	for _, in := range incs {
		if in.BirdStrike && in.Date.Month() == time.July {
			n++
		}
	}
	if n != 2 {
		t.Errorf("July bird strikes = %d, want exactly 2", n)
	}
}

func TestNoHawaiiIncidents(t *testing.T) {
	for _, in := range GenerateIncidents(150, 7) {
		if in.State == "Hawaii" {
			t.Fatal("corpus must contain no Hawaii incidents")
		}
	}
}

func TestDamageDistributionMostlySubstantial(t *testing.T) {
	incs := GenerateIncidents(100, 42)
	sub := 0
	for _, in := range incs {
		if in.Damage == "Substantial" {
			sub++
		}
	}
	if frac := float64(sub) / float64(len(incs)); frac < 0.85 || frac > 0.99 {
		t.Errorf("substantial fraction %.2f outside the paper's ~0.94 regime", frac)
	}
}

func TestEngineMentionTrapExists(t *testing.T) {
	incs := GenerateIncidents(100, 42)
	mentions := 0
	for _, in := range incs {
		if in.Cause != CauseEngine && in.Cause != CauseFuel && in.EngineMention {
			mentions++
		}
	}
	if mentions < 20 {
		t.Errorf("only %d non-engine reports mention the engine; the filter trap needs more", mentions)
	}
}

func TestGlidersHaveNoEngineCause(t *testing.T) {
	for _, in := range GenerateIncidents(200, 9) {
		if in.Category == "Glider" && (in.Cause == CauseEngine || in.Cause == CauseFuel) {
			t.Fatalf("glider %s has engine/fuel cause", in.ReportID)
		}
	}
}

func TestBuildReportStructure(t *testing.T) {
	incs := GenerateIncidents(10, 42)
	inc := &incs[0]
	doc := BuildReport(inc)
	if len(doc.Pages) < 2 {
		t.Errorf("report has %d pages, want multi-page", len(doc.Pages))
	}
	byType := map[docmodel.ElementType]int{}
	var allText strings.Builder
	for _, r := range doc.Regions {
		byType[r.Type]++
		allText.WriteString(r.Text + "\n")
		if r.Type == docmodel.Table && r.Table != nil {
			for _, c := range r.Table.Cells {
				allText.WriteString(c.Text + "\n")
			}
		}
	}
	for _, et := range []docmodel.ElementType{docmodel.Title, docmodel.SectionHeader, docmodel.Text, docmodel.Table, docmodel.Picture, docmodel.Caption} {
		if byType[et] == 0 {
			t.Errorf("report missing %v regions", et)
		}
	}
	text := allText.String()
	for _, want := range []string{
		inc.AccidentNumber, inc.Registration, inc.Aircraft, inc.Damage,
		inc.City, inc.State, "Probable Cause", "damage to the " + inc.DamagedPart,
		"does not assign fault or blame",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q", want)
		}
	}
}

func TestReportDeterministic(t *testing.T) {
	incs := GenerateIncidents(5, 42)
	a := BuildReport(&incs[0])
	b := BuildReport(&incs[0])
	if a.Stats() != b.Stats() {
		t.Errorf("report build not deterministic: %s vs %s", a.Stats(), b.Stats())
	}
}

func TestCorpusBlobsRoundTrip(t *testing.T) {
	c, err := GenerateCorpus(10, 42)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := c.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != len(c.Docs) {
		t.Fatalf("blob count %d != doc count %d", len(blobs), len(c.Docs))
	}
	for id, blob := range blobs {
		d, err := rawdoc.Decode(blob)
		if err != nil {
			t.Fatalf("decode %s: %v", id, err)
		}
		if d.ID != id {
			t.Errorf("blob id mismatch: %s vs %s", d.ID, id)
		}
	}
	if _, ok := c.GroundTruth(c.Incidents[3].ReportID); !ok {
		t.Error("GroundTruth lookup failed")
	}
	if _, ok := c.GroundTruth("nope"); ok {
		t.Error("GroundTruth should miss unknown id")
	}
}

func TestNarrativeEmbedsCauseSignals(t *testing.T) {
	incs := GenerateIncidents(200, 11)
	checked := map[Cause]bool{}
	for i := range incs {
		inc := &incs[i]
		if checked[inc.Cause] {
			continue
		}
		checked[inc.Cause] = true
		doc := BuildReport(inc)
		var text strings.Builder
		for _, r := range doc.Regions {
			text.WriteString(r.Text + " ")
		}
		s := strings.ToLower(text.String())
		switch inc.Cause {
		case CauseEngine:
			if !strings.Contains(s, "loss of power") {
				t.Errorf("engine narrative missing power-loss language")
			}
		case CauseBird:
			if !strings.Contains(s, "bird") && !strings.Contains(s, "geese") {
				t.Errorf("bird narrative missing bird language")
			}
		case CauseFuel:
			if !strings.Contains(s, "fuel") {
				t.Errorf("fuel narrative missing fuel language")
			}
		case CauseMidair:
			if !strings.Contains(s, "collided with another airplane") {
				t.Errorf("midair narrative missing collision language")
			}
		}
	}
	if len(checked) < 5 {
		t.Errorf("only %d causes exercised; corpus too uniform", len(checked))
	}
}

func TestStateAbbrevHelper(t *testing.T) {
	in := Incident{State: "Kentucky"}
	if in.StateAbbrev() != "KY" {
		t.Errorf("StateAbbrev = %q", in.StateAbbrev())
	}
}
