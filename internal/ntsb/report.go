package ntsb

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"

	"aryn/internal/llm"
	"aryn/internal/rawdoc"
)

// Disclaimer is the boilerplate paragraph every NTSB report carries; it
// contains llm.DisclaimerMarker and is the vector for RAG context
// poisoning (§7.2).
const Disclaimer = "The NTSB does not assign fault or blame for an accident or incident; " +
	"rather, as specified by NTSB regulation, accident/incident investigations are fact-finding " +
	"proceedings with no formal issues and no adverse parties, and are not conducted for the " +
	"purpose of determining the rights or liabilities of any person (Title 49 Code of Federal " +
	"Regulations section 831.4)."

// BuildReport renders the incident as a complete multi-page report
// document: header table, analysis narrative, probable cause, factual
// tables, photographs, and administrative boilerplate.
func BuildReport(inc *Incident) *rawdoc.Doc {
	h := fnv.New64a()
	h.Write([]byte(inc.ReportID))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))

	b := rawdoc.NewBuilder(inc.ReportID, "Aviation Investigation Final Report — "+inc.ReportID)
	b.SetFurniture("National Transportation Safety Board — Aviation Investigation Final Report", inc.ReportID)

	b.AddTitle("Aviation Investigation Final Report")
	b.AddTable([][]string{
		{"Field", "Value"},
		{"Location", fmt.Sprintf("%s, %s", inc.City, inc.State)},
		{"Accident Number", inc.AccidentNumber},
		{"Date & Time", inc.Date.Format("January 2, 2006 15:04")},
		{"Aircraft", inc.Aircraft},
		{"Aircraft Category", inc.Category},
		{"Aircraft Damage", inc.Damage},
		{"Registration", inc.Registration},
		{"Injuries", inc.InjuryText},
		{"Defining Event", definingEvent(inc)},
		{"Flight Conducted Under", inc.PartRegulation},
	}, true)

	b.AddSectionHeader("Analysis")
	for _, p := range narrative(inc, rng) {
		b.AddParagraph(p)
	}

	b.AddSectionHeader("Probable Cause and Findings")
	b.AddParagraph("The National Transportation Safety Board determines the probable cause of this accident to be: " + probableCause(inc))
	b.AddParagraph(Disclaimer)

	b.AddSectionHeader("Factual Information")
	b.AddParagraph("Pilot Information")
	b.AddTable([][]string{
		{"Certificate", inc.PilotCert},
		{"Age", fmt.Sprintf("%d", 19+rng.Intn(55))},
		{"Flight Time", fmt.Sprintf("%d hours (total, all aircraft)", inc.PilotHours)},
		{"Medical Certification", "Class 3 valid"},
	}, false)

	b.AddParagraph("Aircraft and Owner/Operator Information")
	b.AddTable([][]string{
		{"Aircraft Make", inc.Manufacturer},
		{"Model/Series", strings.TrimPrefix(inc.Aircraft, inc.Manufacturer+" ")},
		{"Engines", fmt.Sprintf("%d %s", inc.Engines, inc.EngineType)},
		{"Registration", inc.Registration},
		{"Operator", inc.Operator},
		{"Operating Certificate(s) Held", "None"},
	}, false)

	b.AddParagraph("Meteorological Information and Flight Plan")
	wind := fmt.Sprintf("%d knots", inc.WindSpeed)
	if inc.WindGust > 0 {
		wind = fmt.Sprintf("%d knots gusting to %d knots", inc.WindSpeed, inc.WindGust)
	}
	b.AddTable([][]string{
		{"Conditions at Accident Site", inc.Conditions},
		{"Visibility", fmt.Sprintf("%.1f miles", inc.Visibility)},
		{"Wind Speed", wind},
		{"Wind Direction", fmt.Sprintf("%d0°", 1+rng.Intn(35))},
		{"Temperature", fmt.Sprintf("%.1fC", inc.Temperature)},
		{"Condition of Light", lightCondition(inc)},
		{"Departure Point", inc.Departure},
		{"Destination", inc.Destination},
	}, false)

	b.AddParagraph("Wreckage and Impact Information")
	b.AddTable([][]string{
		{"Crew Injuries", inc.InjuryText},
		{"Aircraft Damage", inc.Damage},
		{"Aircraft Fire", yesNo(inc.Fire, "On-ground", "None")},
		{"Ground Injuries", "N/A"},
	}, false)

	b.PageBreak()
	b.AddImage("photograph of the main wreckage at the accident site", "jpeg", 900, 600)
	b.AddCaption(fmt.Sprintf("Figure 1: Main wreckage of %s (%s).", inc.Aircraft, inc.Registration))
	if rng.Float64() < 0.5 {
		b.AddImage("map of the flight track with the accident location marked", "png", 800, 500)
		b.AddCaption("Figure 2: Flight track overview.")
	}

	b.AddSectionHeader("Administrative Information")
	b.AddParagraph(fmt.Sprintf("Investigator In Charge (IIC): %s. Report published %s. "+
		"The NTSB traveled to the scene of this accident.",
		iicNames[rng.Intn(len(iicNames))], inc.Date.AddDate(0, 3, 0).Format("January 2, 2006")))
	b.AddFootnote("Times are local unless otherwise noted.")

	doc := b.Doc()
	doc.Meta["accident_number"] = inc.AccidentNumber
	return doc
}

var iicNames = []string{
	"Taylor Morgan", "Jordan Blake", "Casey Whitfield", "Riley Donovan", "Avery Sinclair",
}

func yesNo(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}

func lightCondition(inc *Incident) string {
	if inc.Night {
		return "Night"
	}
	return "Day"
}

func definingEvent(inc *Incident) string {
	switch inc.Cause {
	case CauseEngine:
		return "Loss of engine power (total)"
	case CauseFuel:
		return "Fuel related"
	case CauseWeather:
		return "Loss of control in flight"
	case CauseBird:
		return "Birdstrike"
	case CauseMaintenance:
		return "Sys/Comp malf/fail (non-power)"
	case CauseMidair:
		return "Midair collision"
	default:
		return "Loss of control on ground"
	}
}

// narrative writes the Analysis section: 2-4 paragraphs embedding the
// extractable facts (damaged part, cause mechanics, incidental engine
// examination) in prose, the way real reports do.
func narrative(inc *Incident, rng *rand.Rand) []string {
	var paras []string
	opening := fmt.Sprintf("On %s, about %s, a %s, %s, was %s near %s, %s. "+
		"The flight was conducted under %s.",
		inc.Date.Format("January 2, 2006"), inc.Date.Format("15:04"),
		inc.Aircraft, inc.Registration,
		damageVerb(inc), inc.City, inc.State, inc.PartRegulation)
	paras = append(paras, opening)

	switch inc.Cause {
	case CauseEngine:
		paras = append(paras, fmt.Sprintf(
			"The pilot reported that during %s the engine experienced a %s loss of power. "+
				"Attempts to restore power by adjusting the throttle and mixture were unsuccessful. "+
				"The pilot executed a forced landing to a field, and the airplane sustained %s damage to the %s. "+
				"A post-accident examination of the engine revealed a failed %s.",
			inc.Phase, []string{"total", "partial"}[rng.Intn(2)],
			severity(inc.Damage), inc.DamagedPart,
			[]string{"cylinder", "crankshaft bearing", "magneto", "exhaust valve"}[rng.Intn(4)]))
	case CauseFuel:
		paras = append(paras, fmt.Sprintf(
			"During %s, the engine lost power. The pilot was unable to reach a runway and landed in rough terrain, "+
				"resulting in %s damage to the %s. Examination revealed that the fuel tanks contained "+
				"%s. The engine itself exhibited no mechanical anomalies; the power loss was consistent with %s.",
			inc.Phase, severity(inc.Damage), inc.DamagedPart,
			[]string{"only unusable fuel", "water-contaminated fuel", "less than one gallon of fuel"}[rng.Intn(3)],
			[]string{"fuel exhaustion", "fuel starvation", "fuel contamination"}[rng.Intn(3)]))
	case CausePilot:
		p := fmt.Sprintf(
			"The pilot %s during %s, and the aircraft %s, resulting in %s damage to the %s.",
			[]string{"failed to maintain directional control", "misjudged the flare", "allowed the airspeed to decay",
				"lost control"}[rng.Intn(4)],
			inc.Phase,
			[]string{"veered off the runway", "landed hard and bounced", "entered an aerodynamic stall",
				"struck a fence"}[rng.Intn(4)],
			severity(inc.Damage), inc.DamagedPart)
		if inc.Water {
			p = fmt.Sprintf("The pilot lost control during %s over a lake and the aircraft ditched into the water, "+
				"resulting in %s damage to the %s. The occupants egressed before the airplane partially sank.",
				inc.Phase, severity(inc.Damage), inc.DamagedPart)
		}
		paras = append(paras, p)
	case CauseWeather:
		paras = append(paras, fmt.Sprintf(
			"Weather conditions included wind of %d knots gusting to %d knots%s. While %s, the %s encountered "+
				"%s, and the pilot was unable to maintain control. The aircraft sustained %s damage to the %s.",
			inc.WindSpeed, inc.WindGust, imcClause(inc), gerund(inc.Phase), strings.ToLower(inc.Category),
			[]string{"a strong gusting crosswind", "windshear", "severe turbulence", "carburetor icing conditions"}[rng.Intn(4)],
			severity(inc.Damage), inc.DamagedPart))
	case CauseBird:
		paras = append(paras, fmt.Sprintf(
			"Shortly after %s, the %s struck %s. The impact shattered portions of the airframe and resulted in "+
				"%s damage to the %s. Bird remains were recovered from the wreckage.",
			inc.Phase, strings.ToLower(inc.Category),
			[]string{"a flock of geese", "a large bird", "several birds"}[rng.Intn(3)],
			severity(inc.Damage), inc.DamagedPart))
	case CauseMaintenance:
		paras = append(paras, fmt.Sprintf(
			"Review of the maintenance records revealed that the most recent annual inspection was completed %d months "+
				"before the accident. During %s, a mechanical failure attributed to improper maintenance occurred, and "+
				"the aircraft sustained %s damage to the %s.",
			13+rng.Intn(12), inc.Phase, severity(inc.Damage), inc.DamagedPart))
	case CauseMidair:
		paras = append(paras, fmt.Sprintf(
			"While maneuvering in the traffic pattern, the airplane collided with another airplane. "+
				"Both aircraft sustained substantial damage; this report addresses %s, which sustained %s damage to the %s. "+
				"Neither pilot reported seeing the other aircraft before the collision.",
			inc.Registration, severity(inc.Damage), inc.DamagedPart))
	}

	if inc.Fire {
		paras = append(paras, "A post-crash fire ensued and consumed portions of the airframe before first responders extinguished it.")
	}
	if inc.EngineMention {
		paras = append(paras, "A post-accident examination of the engine revealed no pre-impact anomalies, "+
			"and the engine produced power during a subsequent test run.")
	}
	if inc.StudentPilot {
		paras = append(paras, "The student pilot was conducting a supervised solo flight at the time of the accident.")
	}
	return paras
}

// severity phrases the damage level for narrative text ("extensive
// damage to the left wing" rather than "destroyed damage to ...").
func severity(damage string) string {
	switch damage {
	case "Destroyed":
		return "extensive"
	case "Minor":
		return "minor"
	default:
		return "substantial"
	}
}

func damageVerb(inc *Incident) string {
	switch inc.Damage {
	case "Destroyed":
		return "destroyed when it impacted terrain"
	case "Minor":
		return "involved in an accident"
	default:
		return "substantially damaged when it was involved in an accident"
	}
}

func imcClause(inc *Incident) string {
	if strings.Contains(inc.Conditions, "IMC") {
		return ", with instrument meteorological conditions prevailing"
	}
	return ""
}

func gerund(phase string) string {
	switch phase {
	case "takeoff":
		return "departing"
	case "landing":
		return "landing"
	case "approach":
		return "on approach"
	case "cruise":
		return "in cruise flight"
	default:
		return "maneuvering"
	}
}

// probableCause writes the formal cause statement (the llmExtract target
// for the probable_cause field).
func probableCause(inc *Incident) string {
	switch inc.Cause {
	case CauseEngine:
		return "A total loss of engine power due to the failure of an internal engine component, " +
			"which resulted in a forced landing."
	case CauseFuel:
		return "The pilot's inadequate fuel planning, which resulted in a loss of engine power due to " +
			"fuel exhaustion and a subsequent forced landing."
	case CausePilot:
		if inc.Water {
			return "The pilot's failure to maintain control, which resulted in a ditching into water."
		}
		return "The pilot's failure to maintain aircraft control, which resulted in a loss of control and impact with terrain."
	case CauseWeather:
		return "An encounter with gusting wind conditions that exceeded the aircraft's crosswind capability, " +
			"resulting in a loss of control. Contributing was the pilot's decision to continue flight into " +
			"deteriorating weather."
	case CauseBird:
		return "An in-flight collision with birds, which resulted in structural damage to the airframe."
	case CauseMaintenance:
		return "Maintenance personnel's improper maintenance practices, which resulted in an in-flight " +
			"mechanical failure."
	case CauseMidair:
		return "Both pilots' inadequate visual lookout, which resulted in a midair collision in the traffic pattern."
	default:
		return "Undetermined."
	}
}

// Corpus bundles the generated raw documents and their ground truth.
type Corpus struct {
	Incidents []Incident
	Docs      []*rawdoc.Doc
}

// GenerateCorpus produces n accidents' worth of encoded report documents
// plus the ground truth. Blobs are keyed by report ID.
func GenerateCorpus(n int, seed int64) (*Corpus, error) {
	incidents := GenerateIncidents(n, seed)
	c := &Corpus{Incidents: incidents}
	for i := range incidents {
		c.Docs = append(c.Docs, BuildReport(&incidents[i]))
	}
	return c, nil
}

// Blobs encodes every report to its rawdoc binary, keyed by report ID.
func (c *Corpus) Blobs() (map[string][]byte, error) {
	out := make(map[string][]byte, len(c.Docs))
	for _, d := range c.Docs {
		blob, err := d.Encode()
		if err != nil {
			return nil, fmt.Errorf("ntsb: encode %s: %w", d.ID, err)
		}
		out[d.ID] = blob
	}
	return out, nil
}

// GroundTruth returns the incident record for a report ID.
func (c *Corpus) GroundTruth(reportID string) (*Incident, bool) {
	for i := range c.Incidents {
		if c.Incidents[i].ReportID == reportID {
			return &c.Incidents[i], true
		}
	}
	return nil, false
}

// StateAbbrev returns the incident's USPS state code.
func (in *Incident) StateAbbrev() string { return llm.StateAbbrev(in.State) }
