// Package api defines the wire types of the Aryn serving layer: request
// and response DTOs for every endpoint, the unified error envelope, the
// async ingest-job resource, and the SSE streaming events. The server
// marshals these; the scenario harness and external clients unmarshal the
// same structs, so drift between producer and consumer breaks at compile
// time instead of in production.
//
// Versioning: every endpoint is canonically mounted under /v1/. The
// legacy unprefixed routes remain as aliases for one release and answer
// with a "Deprecation: true" header plus a Link header pointing at the
// successor route (docs/streaming-api.md records the policy).
package api

import (
	"encoding/json"

	"aryn/internal/cost"
	"aryn/internal/fault"
	"aryn/internal/llm"
	"aryn/internal/resilience"
)

// ---- error envelope ----

// Error codes: a closed, machine-matchable vocabulary. Clients branch on
// Code; Message is for humans and may change freely.
const (
	// CodeBadRequest is a malformed or semantically invalid request body.
	CodeBadRequest = "bad_request"
	// CodeInvalidPlan is a submitted logical plan that failed validation;
	// Details lists every node-level problem.
	CodeInvalidPlan = "invalid_plan"
	// CodeSaturated is admission-control shedding (HTTP 429 + Retry-After).
	CodeSaturated = "saturated"
	// CodeConflict is a request that cannot run in the current state (an
	// ingest already in progress, no data ingested yet).
	CodeConflict = "conflict"
	// CodeNotFound is an unknown resource (expired session, reaped job).
	CodeNotFound = "not_found"
	// CodeUnavailable is backend unavailability that could not be served
	// degraded (circuit open, retries exhausted).
	CodeUnavailable = "unavailable"
	// CodeTimeout is a request that outran its execution deadline.
	CodeTimeout = "timeout"
	// CodeTooLarge is a request body over the configured byte cap.
	CodeTooLarge = "too_large"
	// CodeInternal is everything else — a server fault.
	CodeInternal = "internal"
)

// ErrorBody is the inner object of the unified error envelope.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Details lists individual sub-failures when the error aggregates
	// several (plan validation reports every invalid node at once).
	Details []string `json:"details,omitempty"`
}

// ErrorEnvelope is the single error shape every endpoint returns —
// {"error":{"code","message","details":[...]}} — and the payload of SSE
// "error" events (which omit TraceID: the stream already carried it).
type ErrorEnvelope struct {
	Error   ErrorBody `json:"error"`
	TraceID string    `json:"trace_id,omitempty"`
}

// ---- ingest ----

// IngestRequest loads documents: either raw blobs (base64 rawdoc
// binaries keyed by document ID) or a generated synthetic NTSB corpus.
type IngestRequest struct {
	// Blobs are base64-encoded rawdoc binaries keyed by document ID.
	Blobs map[string]string `json:"blobs,omitempty"`
	// Docs generates that many synthetic NTSB reports when Blobs is empty.
	Docs int `json:"docs,omitempty"`
	// Seed drives the synthetic corpus (default 42).
	Seed int64 `json:"seed,omitempty"`
}

// IngestResponse summarizes one completed ingest run (the synchronous
// legacy /ingest response, and the Result of a finished ingest job).
type IngestResponse struct {
	TraceID   string         `json:"trace_id"`
	Documents int            `json:"documents"`
	Chunks    int            `json:"chunks"`
	Elements  int            `json:"elements"`
	WallMS    int64          `json:"wall_ms"`
	Usage     llm.Usage      `json:"usage"`
	LLM       llm.StackStats `json:"llm"`
}

// ---- async ingest jobs ----

// Job states. Terminal states (done, failed) persist until the job TTL
// elapses, after which GET /v1/jobs/{id} answers 404.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobAccepted is the 202 response of POST /v1/ingest: the job resource
// handle. The Location header carries the same poll URL.
type JobAccepted struct {
	TraceID string `json:"trace_id"`
	JobID   string `json:"job_id"`
	State   string `json:"state"`
	// Location is the poll URL for the job resource.
	Location string `json:"location"`
}

// JobResponse is the GET /v1/jobs/{id} snapshot and the payload of job
// SSE "progress"/"result" events.
type JobResponse struct {
	TraceID string `json:"trace_id,omitempty"`
	JobID   string `json:"job_id"`
	// State is queued → running → done | failed.
	State string `json:"state"`
	// Phase is the deepest pipeline stage work has reached while running
	// (partition, llmExtract, embed, …) — "" before the run starts.
	Phase string `json:"phase,omitempty"`
	// Docs is the corpus size the job was submitted with.
	Docs int `json:"docs"`
	// Nodes reports live per-stage progress (docs in/out) while the job
	// runs and the final counts once it completes.
	Nodes []NodeProgress `json:"nodes,omitempty"`
	// Error is set on failed jobs.
	Error *ErrorBody `json:"error,omitempty"`
	// Result is set on done jobs: the same summary the synchronous ingest
	// returns.
	Result *IngestResponse `json:"result,omitempty"`
	// AgeMS is how long ago the job was submitted.
	AgeMS int64 `json:"age_ms"`
}

// ---- query / plan / chat ----

// QueryRequest is a one-shot question — or a user-edited plan to execute
// (exactly one of Question/Plan drives execution; Plan wins when both are
// set, with Question kept as the display label). Send it with
// "Accept: text/event-stream" to receive the SSE stream instead of one
// JSON response (docs/streaming-api.md).
type QueryRequest struct {
	Question string `json:"question,omitempty"`
	// Plan is a logical plan to execute directly after validation (the
	// §6.2 "modify any part of the plan" path). Accepts the DAG form
	// {"nodes": [...], "output": ...} and the legacy {"ops": [...]} form.
	Plan json.RawMessage `json:"plan,omitempty"`
	// RAG answers through the retrieval-augmented baseline instead of Luna.
	RAG bool `json:"rag,omitempty"`
	// IncludePlan attaches the original and rewritten plan JSON plus the
	// compiled physical pipeline to the response.
	IncludePlan bool `json:"include_plan,omitempty"`
	// Optimize overrides the server's cost-based-optimization default for
	// this request: true forces the optimize phase on, false forces it
	// off, absent inherits the server configuration. Equivalence tests
	// diff the same query both ways through this flag.
	Optimize *bool `json:"optimize,omitempty"`
}

// PlanDetail carries every stage of a query's plan: what the planner
// emitted (or the user submitted), what the optimizer made of it, the
// physical pipeline it lowers to — and, when the query executed, the
// EXPLAIN ANALYZE view: the plan annotated with per-node runtime metrics
// (wall/busy time, first-output latency, docs in/out, LLM calls/tokens/
// cache hits, retries).
type PlanDetail struct {
	Original  json.RawMessage `json:"original,omitempty"`
	Rewritten json.RawMessage `json:"rewritten,omitempty"`
	// Optimized is the plan after the cost-based optimize phase (absent
	// when the phase is off for this request).
	Optimized json.RawMessage `json:"optimized,omitempty"`
	// Cost/CostOptimized are the cost model's pre-execution estimates for
	// the rewritten and optimized plans: per-node document cardinalities,
	// LLM calls, and unit costs, with Observed marking figures refined by
	// feedback-store evidence.
	Cost          *cost.PlanEstimate `json:"cost,omitempty"`
	CostOptimized *cost.PlanEstimate `json:"cost_optimized,omitempty"`
	Compiled      string             `json:"compiled,omitempty"`
	// Executed is the rewritten plan with a "runtime" object per node and
	// an "exec" query-level summary (wall_ms, worker budget, scheduled
	// branches). Present on executed queries (POST /query with
	// include_plan, POST /plan with analyze).
	Executed json.RawMessage `json:"executed,omitempty"`
}

// QueryResponse is the answer to a one-shot question, and the payload of
// the SSE "result" event.
type QueryResponse struct {
	TraceID  string          `json:"trace_id"`
	Question string          `json:"question"`
	Answer   string          `json:"answer"`
	Kind     string          `json:"kind,omitempty"`
	Docs     int             `json:"docs,omitempty"`
	Plan     *PlanDetail     `json:"plan,omitempty"`
	LLM      *llm.StackStats `json:"llm,omitempty"`
	WallMS   int64           `json:"wall_ms"`
	// Degraded marks a retrieval-only fallback answer served because the
	// model backend was unavailable (circuit open or retries exhausted);
	// DegradedReason says why. The request still succeeded (200) — the
	// degradation contract is "a worse answer, never a 500".
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// PlanRequest plans a question — or dry-runs an edited plan — without
// executing anything, unless Analyze asks for EXPLAIN ANALYZE.
type PlanRequest struct {
	Question string `json:"question,omitempty"`
	// Plan, when set, is validated, rewritten, and compiled instead of
	// calling the planner (a dry run for hand-edited plans).
	Plan json.RawMessage `json:"plan,omitempty"`
	// Analyze executes the plan (or planned question) and returns the
	// executed plan annotated with per-node runtime metrics — EXPLAIN
	// ANALYZE: full runtime feedback without the answer payload.
	Analyze bool `json:"analyze,omitempty"`
	// Optimize overrides the server's cost-based-optimization default for
	// this request (see QueryRequest.Optimize).
	Optimize *bool `json:"optimize,omitempty"`
}

// PlanResponse is the inspectable half of the inspect→edit→re-run loop.
type PlanResponse struct {
	TraceID  string     `json:"trace_id"`
	Question string     `json:"question,omitempty"`
	Plan     PlanDetail `json:"plan"`
	WallMS   int64      `json:"wall_ms"`
}

// ChatRequest is one conversational turn. Omit SessionID to open a new
// session; reuse the returned one for follow-ups ("what about …").
type ChatRequest struct {
	SessionID string `json:"session_id,omitempty"`
	Question  string `json:"question"`
}

// ChatResponse is one conversational answer.
type ChatResponse struct {
	TraceID   string `json:"trace_id"`
	SessionID string `json:"session_id"`
	// Turn is the 1-based conversation length after this exchange —
	// clients can assert their session state was neither lost nor
	// interleaved with another session's.
	Turn   int    `json:"turn"`
	Answer string `json:"answer"`
	Kind   string `json:"kind,omitempty"`
	WallMS int64  `json:"wall_ms"`
	// Degraded/DegradedReason mirror QueryResponse: a retrieval-only
	// fallback turn (not recorded in the conversation history — follow-ups
	// never resolve against a degraded answer).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// ---- SSE streaming events ----

// SSE event names emitted by the streaming query endpoint. A stream is a
// sequence of progress/partial/heartbeat events followed by exactly one
// terminal event: "result" (preceded by "trace" when runtime detail
// exists) or "error". Job streams emit progress/heartbeat then one
// terminal "result".
const (
	EventProgress  = "progress"
	EventPartial   = "partial"
	EventTrace     = "trace"
	EventResult    = "result"
	EventError     = "error"
	EventHeartbeat = "heartbeat"
)

// NodeProgress is one operator's live counters inside a progress event.
type NodeProgress struct {
	// Name is the physical stage name; Tag is the logical plan-node ID it
	// lowers from ("" for untagged plumbing stages).
	Name string `json:"name"`
	Tag  string `json:"tag,omitempty"`
	// In/Out count documents entering and leaving the stage so far.
	In  int64 `json:"in"`
	Out int64 `json:"out"`
	// Batches counts streaming-edge batch arrivals (0 on non-edge stages).
	Batches int64 `json:"batches,omitempty"`
}

// ProgressEvent is the payload of SSE "progress" events: a point-in-time
// snapshot of every scheduled pipeline's operators.
type ProgressEvent struct {
	// Pipelines is how many execution pipelines have been scheduled so far.
	Pipelines int `json:"pipelines"`
	// Nodes concatenates the operator snapshots of every pipeline.
	Nodes []NodeProgress `json:"nodes"`
}

// PartialEvent is the payload of SSE "partial" events: result documents
// as they clear the query's output node, before the terminal result.
type PartialEvent struct {
	// Seq numbers partial batches from 1 within one stream.
	Seq int `json:"seq"`
	// Count is len(Docs); the terminal result's Docs equals the sum of all
	// partial Counts.
	Count int `json:"count"`
	// Docs holds the serialized result documents of this batch.
	Docs json.RawMessage `json:"docs"`
}

// TraceEvent is the payload of the SSE "trace" event: the EXPLAIN
// ANALYZE annotation of the executed plan, emitted once before the
// terminal result when runtime detail exists.
type TraceEvent struct {
	Executed json.RawMessage `json:"executed"`
}

// HeartbeatEvent is the payload of SSE "heartbeat" events, sent at the
// configured cadence so idle proxies keep the connection open.
type HeartbeatEvent struct {
	UptimeMS int64 `json:"uptime_ms"`
}

// ---- stats ----

// GateStats is the admission-control snapshot inside StatsResponse.
type GateStats struct {
	InFlight    int64 `json:"in_flight"`
	Waiters     int64 `json:"waiters"`
	WaitersHigh int64 `json:"waiters_high_water"`
	Admitted    int64 `json:"admitted"`
	Shed        int64 `json:"shed"`
}

// SessionStats is the chat-session snapshot inside StatsResponse.
type SessionStats struct {
	Live    int   `json:"live"`
	Evicted int64 `json:"evicted"`
}

// JobStats is the ingest-job snapshot inside StatsResponse.
type JobStats struct {
	// Queued and Running count live jobs; Done and Failed count terminal
	// jobs still retained (TTL not yet elapsed); Reaped counts jobs the
	// janitor has expired.
	Queued  int   `json:"queued"`
	Running int   `json:"running"`
	Done    int   `json:"done"`
	Failed  int   `json:"failed"`
	Reaped  int64 `json:"reaped"`
}

// EndpointStats is one route's /stats snapshot — the counters the
// arynload benchmark harness reads (docs/operations.md documents each
// field). Aliased routes (legacy unprefixed and canonical /v1) share one
// counter, keyed by the unversioned path.
type EndpointStats struct {
	Requests     int64   `json:"requests"`
	OK           int64   `json:"ok"`
	ClientErrors int64   `json:"client_errors"`
	ServerErrors int64   `json:"server_errors"`
	Shed         int64   `json:"shed"`
	TotalMS      int64   `json:"total_ms"`
	MeanMS       float64 `json:"mean_ms"`
	MaxMS        int64   `json:"max_ms"`
}

// StatsResponse is the /stats snapshot.
type StatsResponse struct {
	TraceID  string    `json:"trace_id"`
	UptimeMS int64     `json:"uptime_ms"`
	Requests int64     `json:"requests"`
	Ready    bool      `json:"ready"`
	Docs     int       `json:"docs"`
	Chunks   int       `json:"chunks"`
	Usage    llm.Usage `json:"usage"`
	// UsageFailed is spend carried by calls that ultimately errored
	// (retry storms, injected faults) — kept out of Usage so delivered
	// answers' accounting stays honest.
	UsageFailed llm.Usage      `json:"usage_failed"`
	LLM         llm.StackStats `json:"llm"`
	Gate        GateStats      `json:"admission"`
	Sessions    SessionStats   `json:"sessions"`
	Jobs        JobStats       `json:"jobs"`
	// Resilience reports the retry/breaker middleware (nil when the system
	// was built without it); Fault reports the chaos injector (nil when
	// not wired). Degraded/DegradedServed summarize degraded-mode serving.
	Resilience     *resilience.Stats `json:"resilience,omitempty"`
	Fault          *fault.Stats      `json:"fault,omitempty"`
	Degraded       bool              `json:"degraded"`
	DegradedServed int64             `json:"degraded_served"`
	// Optimizer reports the cost-model feedback store: distinct operator
	// signatures observed, total observations, and optimizer lookup
	// hit/miss counts.
	Optimizer *cost.StoreStats `json:"optimizer,omitempty"`
	// Endpoints breaks the traffic down per route: request counts by
	// outcome class (ok / client error / server error / shed) plus
	// cumulative and max handler latency — the server-side counters the
	// arynload harness and operators read.
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

// ---- fault control (dev-only chaos API) ----

// FaultControlRequest mutates the fault injector: activate a spec, clear
// all faults, and/or purge the LLM response cache (the cache-killed
// chaos move). Spec and Clear are mutually exclusive; Clear wins.
type FaultControlRequest struct {
	// Spec activates a new fault spec (replacing the current one; outage
	// windows re-anchor to now).
	Spec *fault.Spec `json:"spec,omitempty"`
	// Clear deactivates all fault injection.
	Clear bool `json:"clear,omitempty"`
	// PurgeLLMCache drops every resident LLM response-cache entry.
	PurgeLLMCache bool `json:"purge_llm_cache,omitempty"`
}

// FaultStateResponse reports the injector state after a control request
// (and on GET).
type FaultStateResponse struct {
	TraceID string      `json:"trace_id"`
	Spec    fault.Spec  `json:"spec"`
	Active  bool        `json:"active"`
	Stats   fault.Stats `json:"stats"`
	// PurgedCacheEntries reports how many cache entries a purge dropped.
	PurgedCacheEntries int `json:"purged_cache_entries,omitempty"`
}
