package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/luna"
	"aryn/internal/resilience"
	"aryn/internal/server/api"
)

// This file implements the SSE half of POST /v1/query: the same request
// body, selected by "Accept: text/event-stream", answered as a stream of
// progress / partial / heartbeat events with one terminal result (or
// error) instead of a single JSON response. The executor's streaming
// path (luna.StreamHooks over the bounded-channel output edge) feeds it,
// so the first result rows reach the client while upstream operators are
// still working — time-to-first-result instead of time-to-last-result.
// docs/streaming-api.md specifies the event contract.

// wantsSSE reports whether the client asked for the streaming variant.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// sseConn writes Server-Sent Events over one response. Events carry
// monotonically increasing ids and are flushed immediately; send errors
// are swallowed because a vanished client already surfaces through the
// request context.
type sseConn struct {
	w  http.ResponseWriter
	fl http.Flusher
	id int
}

// openSSE switches the response into SSE mode (nil when the transport
// cannot stream — the caller answers with a plain error instead).
func openSSE(w http.ResponseWriter) *sseConn {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	// Disable proxy-side response buffering (nginx and friends), which
	// would defeat the stream.
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &sseConn{w: w, fl: fl}
}

// send writes one event frame and flushes it.
func (c *sseConn) send(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	c.id++
	if _, err := fmt.Fprintf(c.w, "id: %d\nevent: %s\ndata: %s\n\n", c.id, event, data); err != nil {
		return
	}
	c.fl.Flush()
}

// liveTraces collects the pipeline traces a streaming execution
// registers, and renders point-in-time progress snapshots from them.
type liveTraces struct {
	mu     sync.Mutex
	traces []*docset.Trace
}

func (l *liveTraces) add(tr *docset.Trace) {
	l.mu.Lock()
	l.traces = append(l.traces, tr)
	l.mu.Unlock()
}

func (l *liveTraces) progress() api.ProgressEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	ev := api.ProgressEvent{Pipelines: len(l.traces), Nodes: []api.NodeProgress{}}
	for _, tr := range l.traces {
		for _, snap := range tr.Snapshots() {
			ev.Nodes = append(ev.Nodes, api.NodeProgress{
				Name:    snap.Name,
				Tag:     snap.Tag,
				In:      snap.In,
				Out:     snap.Out,
				Batches: snap.Batches,
			})
		}
	}
	return ev
}

// handleQueryStream serves POST /v1/query with Accept: text/event-stream.
// Validation failures before execution starts are ordinary JSON errors
// (the stream has not begun); once the stream is open, every outcome —
// including failure — arrives as an event.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if req.Question == "" && len(req.Plan) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("question or plan is required"))
		return
	}
	if !s.sys.Ready() {
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("no data ingested yet"))
		return
	}
	var plan *luna.LogicalPlan
	question := req.Question
	if len(req.Plan) > 0 {
		p, err := decodePlan(req.Plan)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		plan = p
		if question == "" {
			question = "(user-submitted plan)"
		}
	}

	conn := openSSE(w)
	if conn == nil {
		s.writeError(w, r, http.StatusInternalServerError,
			fmt.Errorf("response writer does not support streaming"))
		return
	}
	ctx, cancel := s.workCtx(r)
	defer cancel()
	start := time.Now()

	// The RAG baseline has no streaming executor; it runs to completion
	// and arrives as a single terminal result on the open stream.
	if req.RAG {
		resp, err := s.sys.AskRAG(ctx, question)
		if err != nil {
			s.streamFailure(conn, r, question, false, nil, err, start)
			return
		}
		answer := resp.Answer
		if answer == "" {
			answer = resp.Text
		}
		conn.send(api.EventResult, QueryResponse{
			TraceID:  traceFrom(r.Context()),
			Question: question,
			Answer:   answer,
			Kind:     "rag",
			Docs:     resp.Retrieved,
			WallMS:   time.Since(start).Milliseconds(),
		})
		return
	}

	live := &liveTraces{}
	partials := make(chan api.PartialEvent, 4)
	partialSeq := 0
	hooks := luna.StreamHooks{
		// OnPartial runs on the output edge's collector goroutine: results
		// are handed to the stream the moment they clear the output node.
		// Blocking on a slow client backpressures the executor through the
		// bounded edge instead of buffering unboundedly here.
		OnPartial: func(docs []*docmodel.Document) {
			data, err := json.Marshal(docs)
			if err != nil {
				return
			}
			partialSeq++
			select {
			case partials <- api.PartialEvent{Seq: partialSeq, Count: len(docs), Docs: data}:
			case <-ctx.Done():
			}
		},
		OnTrace: live.add,
	}

	type outcome struct {
		res *luna.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		svc := s.queryService(req.Optimize)
		var o outcome
		if plan != nil {
			o.res, o.err = svc.RunPlanStream(ctx, question, plan, hooks)
		} else {
			o.res, o.err = svc.AskStream(ctx, question, hooks)
		}
		done <- o
	}()

	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	progress := time.NewTicker(s.cfg.StreamProgress)
	defer progress.Stop()

	for {
		select {
		case ev := <-partials:
			conn.send(api.EventPartial, ev)
		case <-progress.C:
			conn.send(api.EventProgress, live.progress())
		case <-heartbeat.C:
			conn.send(api.EventHeartbeat, api.HeartbeatEvent{UptimeMS: time.Since(s.start).Milliseconds()})
		case o := <-done:
			// Flush partials that raced completion so the stream's partial
			// docs always sum to the terminal result's count.
			for {
				select {
				case ev := <-partials:
					conn.send(api.EventPartial, ev)
					continue
				default:
				}
				break
			}
			// A final progress snapshot gives every stream at least one,
			// with the complete counters.
			conn.send(api.EventProgress, live.progress())
			if o.err != nil {
				s.streamFailure(conn, r, question, req.IncludePlan, o.res, o.err, start)
				return
			}
			s.streamResult(conn, r, question, req.IncludePlan, o.res, start)
			return
		case <-ctx.Done():
			// Client gone or deadline hit: cancellation is already tearing
			// execution down. Keep draining the hooks until the executor
			// returns, so it can never block on a dead stream and the
			// admission slot and worker budget release deterministically
			// before the handler (and its gate release) returns.
			for {
				select {
				case <-partials:
				case o := <-done:
					if o.err == nil {
						s.streamResult(conn, r, question, req.IncludePlan, o.res, start)
						return
					}
					s.streamFailure(conn, r, question, req.IncludePlan, o.res, o.err, start)
					return
				}
			}
		}
	}
}

// streamResult emits the trace event (when runtime detail exists) and
// the terminal result — byte-identical Answer/Docs to the non-streamed
// response for the same plan.
func (s *Server) streamResult(conn *sseConn, r *http.Request, question string, includePlan bool, res *luna.Result, start time.Time) {
	if executed := executedPlan(res); executed != nil {
		conn.send(api.EventTrace, api.TraceEvent{Executed: executed})
	}
	out := QueryResponse{
		TraceID:  traceFrom(r.Context()),
		Question: question,
		Answer:   res.Answer.String(),
		Kind:     string(res.Answer.Kind),
		Docs:     len(res.Docs),
		LLM:      res.LLM,
		WallMS:   time.Since(start).Milliseconds(),
	}
	if includePlan {
		d := resultDetail(res)
		out.Plan = &d
	}
	conn.send(api.EventResult, out)
}

// streamFailure is the SSE counterpart of maybeDegrade + writeError: a
// degradable backend outage becomes a degraded terminal result, anything
// else becomes a terminal error event carrying the unified envelope.
func (s *Server) streamFailure(conn *sseConn, r *http.Request, question string, includePlan bool, res *luna.Result, err error, start time.Time) {
	if resilience.Unavailable(err) && r.Context().Err() == nil {
		conn.send(api.EventResult, s.degradedQueryResponse(r, question, includePlan, res, err, start))
		return
	}
	conn.send(api.EventError, api.ErrorEnvelope{
		Error:   errorBody(statusOf(err), err),
		TraceID: traceFrom(r.Context()),
	})
}
