package server

import (
	"context"
	"sync/atomic"
	"time"

	"aryn/internal/server/api"
)

// gate is the bounded admission-control layer: at most slots requests
// execute at once, at most maxWaiters more wait (briefly) for a slot, and
// everything beyond that is shed immediately. Shedding with 429 instead
// of queueing keeps tail latency bounded when the system is saturated —
// the server degrades by refusing work, not by collapsing.
type gate struct {
	slots      chan struct{}
	maxWaiters int64
	maxWait    time.Duration

	waiters atomic.Int64
	// waitersHigh is the high-water mark of concurrent waiters, proving
	// in tests that the queue really is bounded.
	waitersHigh atomic.Int64
	inFlight    atomic.Int64
	admitted    atomic.Int64
	shed        atomic.Int64
}

func newGate(maxInFlight, maxWaiters int, maxWait time.Duration) *gate {
	return &gate{
		slots:      make(chan struct{}, maxInFlight),
		maxWaiters: int64(maxWaiters),
		maxWait:    maxWait,
	}
}

// acquire tries to admit one request. On success it returns a release
// func the caller must invoke when done. On failure (queue full, wait
// timeout, or caller cancellation) it returns ok=false and the caller
// should answer 429 with the suggested Retry-After.
func (g *gate) acquire(ctx context.Context) (release func(), ok bool) {
	select {
	case g.slots <- struct{}{}:
		return g.admit(), true
	default:
	}

	// No free slot: join the bounded wait queue.
	w := g.waiters.Add(1)
	if w > g.maxWaiters {
		g.waiters.Add(-1)
		g.shed.Add(1)
		return nil, false
	}
	defer g.waiters.Add(-1)
	for {
		high := g.waitersHigh.Load()
		if w <= high || g.waitersHigh.CompareAndSwap(high, w) {
			break
		}
	}

	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.admit(), true
	case <-timer.C:
		g.shed.Add(1)
		return nil, false
	case <-ctx.Done():
		g.shed.Add(1)
		return nil, false
	}
}

func (g *gate) admit() func() {
	g.inFlight.Add(1)
	g.admitted.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			g.inFlight.Add(-1)
			<-g.slots
		}
	}
}

// retryAfter suggests how long a shed client should back off: one full
// wait window, rounded up to at least a second for the HTTP header.
func (g *gate) retryAfter() time.Duration {
	if g.maxWait < time.Second {
		return time.Second
	}
	return g.maxWait
}

// gateStats is the admission snapshot reported by /stats (the wire shape
// lives in the api package).
type gateStats = api.GateStats

func (g *gate) stats() gateStats {
	return gateStats{
		InFlight:    g.inFlight.Load(),
		Waiters:     g.waiters.Load(),
		WaitersHigh: g.waitersHigh.Load(),
		Admitted:    g.admitted.Load(),
		Shed:        g.shed.Load(),
	}
}
