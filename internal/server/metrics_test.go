package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestEndpointCountersOnStats drives traffic through distinct outcome
// classes and checks the /stats endpoint breakdown moved accordingly —
// these counters are the server side of the arynload benchmark contract.
func TestEndpointCountersOnStats(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})

	// One ok query, one 400 (malformed plan JSON is a client error).
	resp := postJSON(t, ts.URL+"/query", QueryRequest{Question: "How many incidents were there in total?"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)

	for _, route := range []string{"/healthz", "/stats", "/ingest", "/plan", "/query", "/chat"} {
		if _, ok := stats.Endpoints[route]; !ok {
			t.Errorf("stats.Endpoints missing route %q", route)
		}
	}
	q := stats.Endpoints["/query"]
	if q.OK < 1 {
		t.Errorf("/query ok = %d, want >= 1", q.OK)
	}
	if q.ClientErrors < 1 {
		t.Errorf("/query client_errors = %d, want >= 1", q.ClientErrors)
	}
	if q.Requests != q.OK+q.ClientErrors+q.ServerErrors+q.Shed {
		t.Errorf("/query outcome classes do not sum to requests: %+v", q)
	}
	// /stats itself is counted: the snapshot happens before the in-flight
	// request is recorded, so a second fetch must see the first.
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Endpoints["/stats"].Requests < 1 {
		t.Errorf("/stats requests = %d, want >= 1", stats.Endpoints["/stats"].Requests)
	}
}

// TestEndpointCountersShed pins that gate sheds land in the shed class,
// not client_errors — arynload's shed-rate depends on this distinction.
func TestEndpointCountersShed(t *testing.T) {
	ts := newTestServer(t, latencySystem(t), Config{
		MaxInFlight: 1,
		MaxWaiters:  0,
		QueueWait:   time.Millisecond,
	})

	const n = 8
	body := `{"question":"How many incidents were there in total?"}`
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
			if err != nil {
				done <- 0
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
	}
	sheds := 0
	for i := 0; i < n; i++ {
		if <-done == http.StatusTooManyRequests {
			sheds++
		}
	}
	if sheds == 0 {
		t.Skip("no contention achieved; nothing to assert")
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	q := stats.Endpoints["/query"]
	if q.Shed != int64(sheds) {
		t.Errorf("/query shed = %d, want %d", q.Shed, sheds)
	}
	if q.ClientErrors != 0 {
		t.Errorf("sheds leaked into client_errors: %+v", q)
	}
}

func TestEndpointCountersRecord(t *testing.T) {
	var e endpointCounters
	e.record(http.StatusOK, 10*time.Millisecond)
	e.record(http.StatusNotFound, 30*time.Millisecond)
	e.record(http.StatusTooManyRequests, 0)
	e.record(http.StatusInternalServerError, 5*time.Millisecond)
	s := e.snapshot()
	if s.Requests != 4 || s.OK != 1 || s.ClientErrors != 1 || s.Shed != 1 || s.ServerErrors != 1 {
		t.Errorf("classification wrong: %+v", s)
	}
	if s.MaxMS != 30 {
		t.Errorf("max_ms = %d, want 30", s.MaxMS)
	}
	if s.TotalMS != 45 {
		t.Errorf("total_ms = %d, want 45", s.TotalMS)
	}
	if s.MeanMS != 11.25 {
		t.Errorf("mean_ms = %v, want 11.25", s.MeanMS)
	}
}
