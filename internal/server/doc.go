// Package server is the concurrent query-serving layer: it exposes a
// wired core.System over HTTP so many analysts hit one Aryn instance at
// once — the service shape of the paper (§3, Figure 1), where DocParse
// and Luna run behind network endpoints rather than a library call.
//
// Endpoints:
//
//	POST /ingest   load documents (raw blobs or a generated NTSB corpus)
//	POST /plan     plan a question (or dry-run an edited plan) without
//	               executing; {"analyze": true} executes and returns the
//	               plan annotated with per-node runtime (EXPLAIN ANALYZE)
//	POST /query    one-shot Luna question or a user-edited plan (or ?rag)
//	POST /chat     stateful conversational session with follow-ups
//	GET  /stats    LLM middleware counters, index size, serving stats
//	GET  /healthz  liveness + readiness (never gated by admission)
//
// Plans are first-class citizens (§6.2 inspect→edit→re-run): POST /plan
// returns the validated DAG plan JSON plus the optimizer's rewrite and
// the compiled physical pipeline; the client may edit the JSON and
// submit it back through POST /query {"plan": ...} for execution.
// Executed queries report per-node runtime metrics under "executed".
// Invalid plans come back as 400 with every node-level problem listed in
// a structured {"errors": [...]} array. See docs/plan-api.md for the
// full lifecycle with curl examples.
//
// Paper counterpart: the deployed Aryn service of §3 (Figure 1).
//
// Concurrency: every work request passes a bounded admission gate
// (MaxInFlight executing, MaxWaiters queued, beyond that 429 +
// Retry-After); chat sessions are isolated conversations whose turns
// serialize internally; ingest is exclusive per run and never blocks
// queries — but it indexes into the shared store incrementally, so a
// query racing an ingest may observe a partially loaded corpus (what is
// swapped atomically at the end is the schema + query service, not the
// document set). Each admitted query additionally runs under its own
// Luna worker budget, so a plan with many concurrent branches draws the
// same per-query worker footprint as a chain.
package server
