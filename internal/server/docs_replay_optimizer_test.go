package server

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// docs_replay_optimizer_test replays every HTTP example in
// docs/optimizer.md against a live handler, holding the page to what it
// promises: optimize:true plan responses carry the optimized DAG (with a
// proxy cascade) and both cost estimates, and optimize:true executions
// answer with the optimized plan as the executed annotation.

func readOptimizerDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "optimizer.md"))
	if err != nil {
		t.Fatalf("read docs/optimizer.md: %v", err)
	}
	return string(data)
}

// TestOptimizerDocExamplesReplay runs the doc's curl examples (same
// format as docs/plan-api.md, matched by curlRE) and checks the
// responses carry the fields the surrounding prose promises.
func TestOptimizerDocExamplesReplay(t *testing.T) {
	doc := readOptimizerDoc(t)
	examples := curlRE.FindAllStringSubmatch(doc, -1)
	if len(examples) < 2 {
		t.Fatalf("found %d curl examples in docs/optimizer.md, expected at least 2 (plan, query)", len(examples))
	}
	ts := newTestServer(t, readySystem(t), Config{})

	for _, ex := range examples {
		path, payload := ex[1], ex[2]
		t.Run(strings.TrimPrefix(path, "/"), func(t *testing.T) {
			var req struct {
				Optimize    *bool           `json:"optimize"`
				IncludePlan bool            `json:"include_plan"`
				Plan        json.RawMessage `json:"plan"`
			}
			if err := json.Unmarshal([]byte(payload), &req); err != nil {
				t.Fatalf("documented payload is not valid JSON: %v\n%s", err, payload)
			}
			if req.Optimize == nil || !*req.Optimize {
				t.Fatalf("optimizer doc example must set optimize:true:\n%s", payload)
			}
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(payload))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("documented example got status %d", resp.StatusCode)
			}
			var body struct {
				Answer string      `json:"answer"`
				Plan   *PlanDetail `json:"plan"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}
			if body.Plan == nil {
				t.Fatal("response carries no plan detail")
			}
			if len(body.Plan.Optimized) == 0 {
				t.Fatal("doc promises plan.optimized under optimize:true")
			}
			if !rawPlanContainsOp(body.Plan.Optimized, "llmFilterCascade") {
				t.Errorf("doc promises the predicate becomes a cascade, optimized plan: %s", body.Plan.Optimized)
			}
			if body.Plan.Cost == nil || body.Plan.CostOptimized == nil {
				t.Fatalf("doc promises plan.cost and plan.cost_optimized: cost=%v cost_optimized=%v",
					body.Plan.Cost != nil, body.Plan.CostOptimized != nil)
			}
			if body.Plan.CostOptimized.LLMCalls > body.Plan.Cost.LLMCalls {
				t.Errorf("optimized estimate must not cost more LLM calls: %.1f > %.1f",
					body.Plan.CostOptimized.LLMCalls, body.Plan.Cost.LLMCalls)
			}
			switch path {
			case "/plan":
				if body.Plan.Executed != nil {
					t.Error("non-analyze /plan must not execute")
				}
			case "/query":
				if body.Answer == "" {
					t.Error("doc promises an answer on executed plans")
				}
				if len(body.Plan.Executed) == 0 {
					t.Fatal("doc promises plan.executed under include_plan")
				}
				// "executed is the optimized plan annotated with runtime
				// metrics": the cascade must appear in the annotation too.
				if !rawPlanContainsOp(body.Plan.Executed, "llmFilterCascade") {
					t.Errorf("executed annotation is not the optimized plan: %s", body.Plan.Executed)
				}
			default:
				t.Fatalf("doc documents unknown endpoint %s", path)
			}
		})
	}
}

// rawPlanContainsOp reports whether any node of an encoded plan carries op.
func rawPlanContainsOp(plan json.RawMessage, op string) bool {
	var p struct {
		Nodes []struct {
			Op string `json:"op"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(plan, &p); err != nil {
		return false
	}
	for _, n := range p.Nodes {
		if n.Op == op {
			return true
		}
	}
	return false
}
