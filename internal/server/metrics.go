package server

import (
	"net/http"
	"sync/atomic"
	"time"
)

// endpointCounters accumulates per-route serving metrics. All fields are
// atomics: handlers bump them on the hot path without a lock, /stats
// reads are point-in-time snapshots.
type endpointCounters struct {
	requests     atomic.Int64
	ok           atomic.Int64 // 2xx/3xx
	clientErrors atomic.Int64 // 4xx except 429
	serverErrors atomic.Int64 // 5xx
	shed         atomic.Int64 // 429
	totalMS      atomic.Int64
	maxMS        atomic.Int64
}

func (e *endpointCounters) record(status int, elapsed time.Duration) {
	e.requests.Add(1)
	switch {
	case status == http.StatusTooManyRequests:
		e.shed.Add(1)
	case status >= 500:
		e.serverErrors.Add(1)
	case status >= 400:
		e.clientErrors.Add(1)
	default:
		e.ok.Add(1)
	}
	ms := elapsed.Milliseconds()
	e.totalMS.Add(ms)
	for {
		cur := e.maxMS.Load()
		if ms <= cur || e.maxMS.CompareAndSwap(cur, ms) {
			break
		}
	}
}

// EndpointStats is one route's /stats snapshot — the counters the
// arynload benchmark harness reads (docs/operations.md documents each
// field).
type EndpointStats struct {
	Requests     int64   `json:"requests"`
	OK           int64   `json:"ok"`
	ClientErrors int64   `json:"client_errors"`
	ServerErrors int64   `json:"server_errors"`
	Shed         int64   `json:"shed"`
	TotalMS      int64   `json:"total_ms"`
	MeanMS       float64 `json:"mean_ms"`
	MaxMS        int64   `json:"max_ms"`
}

func (e *endpointCounters) snapshot() EndpointStats {
	s := EndpointStats{
		Requests:     e.requests.Load(),
		OK:           e.ok.Load(),
		ClientErrors: e.clientErrors.Load(),
		ServerErrors: e.serverErrors.Load(),
		Shed:         e.shed.Load(),
		TotalMS:      e.totalMS.Load(),
		MaxMS:        e.maxMS.Load(),
	}
	if s.Requests > 0 {
		s.MeanMS = float64(s.TotalMS) / float64(s.Requests)
	}
	return s
}

// statusWriter captures the status a handler writes (200 when the handler
// never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// counted wraps h with the per-endpoint metrics for route.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.endpoints[route]
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		ep.record(sw.status, time.Since(start))
	}
}
