package server

import (
	"net/http"
	"sync/atomic"
	"time"

	"aryn/internal/server/api"
)

// endpointCounters accumulates per-route serving metrics. All fields are
// atomics: handlers bump them on the hot path without a lock, /stats
// reads are point-in-time snapshots.
type endpointCounters struct {
	requests     atomic.Int64
	ok           atomic.Int64 // 2xx/3xx
	clientErrors atomic.Int64 // 4xx except 429
	serverErrors atomic.Int64 // 5xx
	shed         atomic.Int64 // 429
	totalMS      atomic.Int64
	maxMS        atomic.Int64
}

func (e *endpointCounters) record(status int, elapsed time.Duration) {
	e.requests.Add(1)
	switch {
	case status == http.StatusTooManyRequests:
		e.shed.Add(1)
	case status >= 500:
		e.serverErrors.Add(1)
	case status >= 400:
		e.clientErrors.Add(1)
	default:
		e.ok.Add(1)
	}
	ms := elapsed.Milliseconds()
	e.totalMS.Add(ms)
	for {
		cur := e.maxMS.Load()
		if ms <= cur || e.maxMS.CompareAndSwap(cur, ms) {
			break
		}
	}
}

// EndpointStats is one route's /stats snapshot — the counters the
// arynload benchmark harness reads (the wire shape lives in the api
// package; docs/operations.md documents each field).
type EndpointStats = api.EndpointStats

func (e *endpointCounters) snapshot() EndpointStats {
	s := EndpointStats{
		Requests:     e.requests.Load(),
		OK:           e.ok.Load(),
		ClientErrors: e.clientErrors.Load(),
		ServerErrors: e.serverErrors.Load(),
		Shed:         e.shed.Load(),
		TotalMS:      e.totalMS.Load(),
		MaxMS:        e.maxMS.Load(),
	}
	if s.Requests > 0 {
		s.MeanMS = float64(s.TotalMS) / float64(s.Requests)
	}
	return s
}

// statusWriter captures the status a handler writes (200 when the handler
// never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush passes through to the underlying writer so SSE handlers can push
// each event immediately (the metrics wrapper must not buffer a stream).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// counted wraps h with the per-endpoint metrics for route.
func (s *Server) counted(route string, h http.HandlerFunc) http.HandlerFunc {
	ep := s.endpoints[route]
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		ep.record(sw.status, time.Since(start))
	}
}
