package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// executedPlanShape is the EXPLAIN ANALYZE wire format both /plan
// {analyze:true} and /query {include_plan:true} return under "executed".
type executedPlanShape struct {
	Nodes []struct {
		ID      string `json:"id"`
		Op      string `json:"op"`
		Runtime *struct {
			DocsIn   int64   `json:"docs_in"`
			DocsOut  int64   `json:"docs_out"`
			LLMCalls int64   `json:"llm_calls"`
			BusyMS   float64 `json:"busy_ms"`
		} `json:"runtime"`
	} `json:"nodes"`
	Output string `json:"output"`
	Exec   *struct {
		WallMS   float64 `json:"wall_ms"`
		Budget   int     `json:"budget"`
		Branches int     `json:"branches"`
	} `json:"exec"`
}

// POST /plan {"analyze": true} executes the submitted plan and returns
// the annotated executed plan without the answer payload.
func TestPlanAnalyzeExecutesWithoutAnswer(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})

	plan := json.RawMessage(`{"nodes":[
		{"id":"n1","op":"queryDatabase"},
		{"id":"n2","op":"count","inputs":["n1"]}],"output":"n2"}`)
	var out PlanResponse
	resp := postJSON(t, ts.URL+"/plan", PlanRequest{Plan: plan, Analyze: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}
	if len(out.Plan.Executed) == 0 {
		t.Fatal("analyze response carries no executed plan")
	}
	if len(out.Plan.Rewritten) == 0 || out.Plan.Compiled == "" {
		t.Errorf("analyze should still return rewritten + compiled: %+v", out.Plan)
	}

	var executed executedPlanShape
	if err := json.Unmarshal(out.Plan.Executed, &executed); err != nil {
		t.Fatal(err)
	}
	if executed.Output != "n2" || len(executed.Nodes) != 2 {
		t.Fatalf("executed plan shape: %s", out.Plan.Executed)
	}
	scan := executed.Nodes[0]
	if scan.Runtime == nil || scan.Runtime.DocsOut <= 0 {
		t.Errorf("scan node missing runtime: %s", out.Plan.Executed)
	}
	if executed.Exec == nil || executed.Exec.Budget <= 0 || executed.Exec.Branches < 1 {
		t.Errorf("exec summary missing: %s", out.Plan.Executed)
	}

	// No answer payload: PlanResponse has no answer field by shape; make
	// sure the raw body does not smuggle one in either.
	raw := struct {
		Answer *string `json:"answer"`
	}{}
	resp2 := postJSON(t, ts.URL+"/plan", PlanRequest{Plan: plan, Analyze: true}, &raw)
	if resp2.StatusCode != http.StatusOK || raw.Answer != nil {
		t.Errorf("analyze must not return an answer payload (got %v)", raw.Answer)
	}
}

// analyze with a question runs the planner and then executes.
func TestPlanAnalyzeQuestion(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	var out PlanResponse
	resp := postJSON(t, ts.URL+"/plan",
		PlanRequest{Question: "How many incidents were there?", Analyze: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}
	if len(out.Plan.Original) == 0 || len(out.Plan.Executed) == 0 {
		t.Fatalf("analyze(question) incomplete: %+v", out.Plan)
	}
}

// Invalid plans under analyze still come back 400 with the structured
// errors array.
func TestPlanAnalyzeInvalidPlan400(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	bad := json.RawMessage(`{"nodes":[
		{"id":"n1","op":"queryDatabase","filters":[{"field":"hallucinated","kind":"term","value":1}]}],
		"output":"n1"}`)
	var errOut errorResponse
	resp := postJSON(t, ts.URL+"/plan", PlanRequest{Plan: bad, Analyze: true}, &errOut)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("analyze(bad plan) status = %d, want 400", resp.StatusCode)
	}
	if len(errOut.Error.Details) == 0 {
		t.Errorf("structured error details missing: %+v", errOut)
	}
}

// /query with include_plan now returns the executed plan alongside
// original/rewritten/compiled.
func TestQueryIncludePlanReturnsExecuted(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	var out QueryResponse
	resp := postJSON(t, ts.URL+"/query",
		QueryRequest{Question: "How many incidents were there?", IncludePlan: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if out.Plan == nil || len(out.Plan.Executed) == 0 {
		t.Fatalf("include_plan response missing executed: %+v", out.Plan)
	}
	var executed executedPlanShape
	if err := json.Unmarshal(out.Plan.Executed, &executed); err != nil {
		t.Fatal(err)
	}
	if len(executed.Nodes) == 0 || executed.Exec == nil {
		t.Errorf("executed plan incomplete: %s", out.Plan.Executed)
	}
	if out.Answer == "" {
		t.Error("query must still return the answer")
	}
}
