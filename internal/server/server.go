package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aryn/internal/core"
	"aryn/internal/fault"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
	"aryn/internal/resilience"
	"aryn/internal/server/api"
)

// Config tunes the serving layer. Zero values pick sane defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing work requests (default 16).
	MaxInFlight int
	// MaxWaiters bounds requests queued for a slot; beyond this the
	// server sheds with 429 (default 64).
	MaxWaiters int
	// QueueWait is how long a queued request waits for a slot before
	// being shed (default 2s).
	QueueWait time.Duration
	// SessionTTL evicts idle chat sessions (default 30m).
	SessionTTL time.Duration
	// MaxSessions caps live chat sessions (default 1024).
	MaxSessions int
	// RequestTimeout bounds one query/chat execution (0 picks the 60s
	// default; negative disables the bound entirely — arynd's
	// -query-timeout 0).
	RequestTimeout time.Duration
	// IngestTimeout bounds one ingest run (default 10m).
	IngestTimeout time.Duration
	// MaxIngestDocs caps the synthetic-corpus size one /ingest request
	// may ask for (default 10000).
	MaxIngestDocs int
	// MaxIngestBodyBytes caps an /ingest request body (default 64 MiB) —
	// blob uploads are big but must not be unbounded.
	MaxIngestBodyBytes int64
	// MaxBodyBytes caps every other request body (default 1 MiB).
	MaxBodyBytes int64
	// StreamHeartbeat is the SSE heartbeat cadence (default 10s) — often
	// enough that idle proxies keep the connection open, rare enough to
	// stay out of the data's way.
	StreamHeartbeat time.Duration
	// StreamProgress is the SSE progress-snapshot cadence (default 250ms):
	// how often a streaming query or job emits per-node counters.
	StreamProgress time.Duration
	// JobTTL is how long a terminal (done/failed) ingest job stays
	// pollable before the janitor reaps it (default 10m).
	JobTTL time.Duration
	// MaxQueuedJobs bounds ingest jobs waiting for the worker; submissions
	// beyond it are shed with 429 (default 4).
	MaxQueuedJobs int
	// Fault, when set, exposes the dev-only /faults endpoint controlling
	// the injector (wire the same injector into core.Config.Fault). Leave
	// nil in production deployments: the route is simply absent.
	Fault *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.IngestTimeout <= 0 {
		c.IngestTimeout = 10 * time.Minute
	}
	if c.MaxIngestDocs <= 0 {
		c.MaxIngestDocs = 10000
	}
	if c.MaxIngestBodyBytes <= 0 {
		c.MaxIngestBodyBytes = 64 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 10 * time.Second
	}
	if c.StreamProgress <= 0 {
		c.StreamProgress = 250 * time.Millisecond
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.MaxQueuedJobs <= 0 {
		c.MaxQueuedJobs = 4
	}
	return c
}

// Server serves one core.System to concurrent clients.
type Server struct {
	sys       *core.System
	cfg       Config
	gate      *gate
	sessions  *sessionTable
	jobs      *jobManager
	mux       *http.ServeMux
	start     time.Time
	endpoints map[string]*endpointCounters

	// ingestMu makes ingest runs exclusive: a second concurrent /ingest
	// gets 409 instead of racing the pipeline.
	ingestMu sync.Mutex

	traceSeq atomic.Uint64
	requests atomic.Int64
	// degradedServed counts 200s answered retrieval-only because the model
	// backend was unavailable.
	degradedServed atomic.Int64
}

// New wraps sys in a serving layer.
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:       sys,
		cfg:       cfg,
		gate:      newGate(cfg.MaxInFlight, cfg.MaxWaiters, cfg.QueueWait),
		sessions:  newSessionTable(cfg.SessionTTL, cfg.MaxSessions),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		endpoints: map[string]*endpointCounters{},
	}
	s.jobs = newJobManager(s, cfg.JobTTL, cfg.MaxQueuedJobs)
	routes := []string{"/healthz", "/stats", "/ingest", "/plan", "/query", "/chat", "/jobs"}
	if cfg.Fault != nil {
		routes = append(routes, "/faults")
	}
	for _, route := range routes {
		s.endpoints[route] = &endpointCounters{}
	}
	s.route("GET", "/healthz", s.handleHealthz)
	s.route("GET", "/stats", s.handleStats)
	s.route("POST", "/plan", s.gated(s.handlePlan))
	s.route("POST", "/query", s.gated(s.handleQuery))
	s.route("POST", "/chat", s.gated(s.handleChat))
	// Ingest splits by version: the canonical /v1 route is the async job
	// API (202 + pollable job), the legacy alias keeps the synchronous
	// contract for one release. Both share the /ingest counter.
	s.mux.HandleFunc("POST /v1/ingest", s.counted("/ingest", s.handleIngestAsync))
	s.mux.HandleFunc("POST /ingest", s.deprecated("/v1/ingest", s.counted("/ingest", s.gated(s.handleIngest))))
	// Jobs are new in /v1 — no legacy alias to deprecate.
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.counted("/jobs", s.handleJob))
	if cfg.Fault != nil {
		// Dev-only chaos control plane: not gated (a saturated or faulted
		// server must still accept "clear the faults").
		s.route("GET", "/faults", s.handleFaultsGet)
		s.route("POST", "/faults", s.handleFaultsPost)
	}
	return s
}

// route mounts h at its canonical /v1 path and keeps the legacy
// unprefixed path as a deprecated alias (answering with a Deprecation
// header and a successor-version Link). Both record into one counter
// keyed by the unversioned route name, so /stats reports logical
// endpoints, not spellings.
func (s *Server) route(method, path string, h http.HandlerFunc) {
	counted := s.counted(path, h)
	s.mux.HandleFunc(method+" /v1"+path, counted)
	s.mux.HandleFunc(method+" "+path, s.deprecated("/v1"+path, counted))
}

// deprecated marks a legacy route alias per the versioning policy in
// docs/streaming-api.md: the response carries "Deprecation: true" and a
// Link header naming the successor route.
func (s *Server) deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
		h(w, r)
	}
}

// Handler returns the root handler (trace-ID middleware over the mux).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		trace := s.newTraceID()
		w.Header().Set("X-Trace-Id", trace)
		r = r.WithContext(withTrace(r.Context(), trace))
		s.mux.ServeHTTP(w, r)
	})
}

// Close stops background work (the session janitor, the ingest-job
// worker and janitor).
func (s *Server) Close() {
	s.sessions.close()
	s.jobs.close()
}

// workCtx bounds one query/chat execution by RequestTimeout; a negative
// timeout means unlimited (the work still dies with the client).
func (s *Server) workCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout < 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// gated wraps a work handler with admission control: shed with 429 +
// Retry-After when saturated, and bound the request context so a stuck
// client cannot pin a slot forever. Cancellation flows through the
// context into the LLM middleware, which aborts queued calls.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.gate.acquire(r.Context())
		if !ok {
			retry := s.gate.retryAfter()
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
			s.writeError(w, r, http.StatusTooManyRequests,
				fmt.Errorf("server saturated (%d in flight, %d queued); retry in %s",
					s.cfg.MaxInFlight, s.cfg.MaxWaiters, retry))
			return
		}
		defer release()
		h(w, r)
	}
}

// ---- request / response shapes ----
//
// The wire types live in the api package so the scenario harness and
// external clients share them; the aliases below keep this package's
// historical names working.

type (
	IngestRequest       = api.IngestRequest
	IngestResponse      = api.IngestResponse
	QueryRequest        = api.QueryRequest
	PlanDetail          = api.PlanDetail
	QueryResponse       = api.QueryResponse
	PlanRequest         = api.PlanRequest
	PlanResponse        = api.PlanResponse
	ChatRequest         = api.ChatRequest
	ChatResponse        = api.ChatResponse
	StatsResponse       = api.StatsResponse
	FaultControlRequest = api.FaultControlRequest
	FaultStateResponse  = api.FaultStateResponse
	errorResponse       = api.ErrorEnvelope
)

// ---- handlers ----

// handleHealthz distinguishes three conditions: live (the process answers
// at all — implied by any response), ready (data is ingested and queries
// can run), and degraded (serving continues but the model backend is
// unavailable, so answers fall back to retrieval-only). Status stays 200
// even when degraded: a degraded server is still serving, and restarting
// it (what a non-200 health check triggers) would not fix the backend.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	degraded, reason := s.sys.Degraded()
	status := "ok"
	if degraded {
		status = "degraded"
	}
	resp := map[string]any{
		"status":   status,
		"live":     true,
		"ready":    s.sys.Ready(),
		"degraded": degraded,
		"docs":     s.sys.Store.NumDocs(),
		"chunks":   s.sys.Store.NumChunks(),
		"trace_id": traceFrom(r.Context()),
	}
	if reason != "" {
		resp["reason"] = reason
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	endpoints := make(map[string]EndpointStats, len(s.endpoints))
	for route, ep := range s.endpoints {
		endpoints[route] = ep.snapshot()
	}
	degraded, _ := s.sys.Degraded()
	resp := StatsResponse{
		TraceID:        traceFrom(r.Context()),
		UptimeMS:       time.Since(s.start).Milliseconds(),
		Requests:       s.requests.Load(),
		Ready:          s.sys.Ready(),
		Docs:           s.sys.Store.NumDocs(),
		Chunks:         s.sys.Store.NumChunks(),
		Usage:          s.sys.LLM.Usage(),
		UsageFailed:    s.sys.LLM.FailedUsage(),
		LLM:            s.sys.LLMStats(),
		Gate:           s.gate.stats(),
		Sessions:       api.SessionStats{Live: s.sessions.count(), Evicted: s.sessions.evictedCount()},
		Jobs:           s.jobs.stats(),
		Degraded:       degraded,
		DegradedServed: s.degradedServed.Load(),
		Endpoints:      endpoints,
	}
	if s.sys.Resilience != nil {
		st := s.sys.Resilience.Stats()
		resp.Resilience = &st
	}
	if s.sys.Fault != nil {
		st := s.sys.Fault.Stats()
		resp.Fault = &st
	}
	ost := s.sys.OptimizerStats()
	resp.Optimizer = &ost
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !s.decodeBody(w, r, s.cfg.MaxIngestBodyBytes, &req) {
		return
	}
	// Claim exclusivity before materializing blobs: a rejected request
	// should not pay for corpus generation it will throw away.
	if !s.ingestMu.TryLock() {
		w.Header().Set("Retry-After", "5")
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("an ingest is already in progress"))
		return
	}
	defer s.ingestMu.Unlock()
	blobs, err := s.ingestBlobs(req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.IngestTimeout)
	defer cancel()
	stats, err := s.sys.Ingest(ctx, blobs)
	if err != nil {
		// statusOf separates backend unavailability (503, retryable — the
		// chaos suite asserts exhausted stage retries never surface as a
		// 500) from real internal failures.
		s.writeError(w, r, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, IngestResponse{
		TraceID:   traceFrom(r.Context()),
		Documents: stats.Documents,
		Chunks:    stats.Chunks,
		Elements:  stats.Elements,
		WallMS:    stats.Wall.Milliseconds(),
		Usage:     stats.Usage,
		LLM:       stats.LLM,
	})
}

// ingestBlobs materializes the request's document set: decoded client
// blobs when provided, a generated NTSB corpus otherwise.
func (s *Server) ingestBlobs(req IngestRequest) (map[string][]byte, error) {
	if len(req.Blobs) > 0 {
		blobs := make(map[string][]byte, len(req.Blobs))
		for id, b64 := range req.Blobs {
			raw, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, fmt.Errorf("blob %q: invalid base64: %w", id, err)
			}
			blobs[id] = raw
		}
		return blobs, nil
	}
	if req.Docs <= 0 {
		return nil, fmt.Errorf("provide blobs or a positive docs count")
	}
	if req.Docs > s.cfg.MaxIngestDocs {
		return nil, fmt.Errorf("docs %d exceeds the per-request cap %d", req.Docs, s.cfg.MaxIngestDocs)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 42
	}
	corpus, err := ntsb.GenerateCorpus(req.Docs, seed)
	if err != nil {
		return nil, fmt.Errorf("generate corpus: %w", err)
	}
	return corpus.Blobs()
}

// handlePlan serves POST /plan: the execution-free half of the plan API,
// plus EXPLAIN ANALYZE. With a question it runs the planner + validator +
// rewriter; with a plan it dry-runs a user edit. Either way the response
// carries the plan JSON the client can edit and POST back to /query.
// With {"analyze": true} the plan (or planned question) additionally
// executes, and the response's plan detail carries "executed" — the plan
// annotated with per-node runtime metrics — while the answer payload is
// withheld (the runtime feedback loop without the result).
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if req.Question == "" && len(req.Plan) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("provide a question or a plan"))
		return
	}
	if !s.sys.Ready() {
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("no data ingested yet"))
		return
	}
	ctx, cancel := s.workCtx(r)
	defer cancel()
	start := time.Now()
	svc := s.queryService(req.Optimize)

	if req.Analyze {
		s.handleAnalyze(w, r, ctx, svc, req, start)
		return
	}

	var preview *luna.PlanPreview
	if len(req.Plan) > 0 {
		plan, err := decodePlan(req.Plan)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		preview, err = svc.InspectPlan(plan)
		if err != nil {
			s.writeError(w, r, statusOf(err), err)
			return
		}
	} else {
		var err error
		preview, err = svc.PlanOnly(ctx, req.Question)
		if err != nil {
			s.writeError(w, r, statusOf(err), err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, PlanResponse{
		TraceID:  traceFrom(r.Context()),
		Question: req.Question,
		Plan:     previewDetail(preview),
		WallMS:   time.Since(start).Milliseconds(),
	})
}

// handleAnalyze serves POST /plan {"analyze": true}: EXPLAIN ANALYZE. The
// plan executes for real (semantic operators run, LLM calls are spent) —
// what comes back is the annotated plan, not the answer.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, ctx context.Context, svc *luna.Service, req PlanRequest, start time.Time) {
	var res *luna.Result
	var err error
	if len(req.Plan) > 0 {
		var plan *luna.LogicalPlan
		plan, err = decodePlan(req.Plan)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		question := req.Question
		if question == "" {
			question = "(explain analyze)"
		}
		res, err = svc.RunPlan(ctx, question, plan)
	} else {
		res, err = svc.Ask(ctx, req.Question)
	}
	if err != nil {
		s.writeError(w, r, statusOf(err), err)
		return
	}
	detail := resultDetail(res)
	s.writeJSON(w, http.StatusOK, PlanResponse{
		TraceID:  traceFrom(r.Context()),
		Question: req.Question,
		Plan:     detail,
		WallMS:   time.Since(start).Milliseconds(),
	})
}

// executedPlan renders a result's EXPLAIN ANALYZE annotation (nil when
// the result carries no runtime detail). The annotation is built over the
// plan that actually ran — the optimized plan when the optimize phase was
// on — so node IDs line up with the runtime trace.
func executedPlan(res *luna.Result) json.RawMessage {
	ran := res.ExecutedPlan()
	if res.Exec == nil || ran == nil {
		return nil
	}
	return json.RawMessage(ran.AnnotatedJSON(res.Exec))
}

// decodePlan parses a submitted plan body (DAG or legacy linear form).
func decodePlan(raw json.RawMessage) (*luna.LogicalPlan, error) {
	var plan luna.LogicalPlan
	if err := json.Unmarshal(raw, &plan); err != nil {
		return nil, fmt.Errorf("bad plan JSON: %w", err)
	}
	return &plan, nil
}

// planDetail renders the plan stages for a response.
func planDetail(original, rewritten *luna.LogicalPlan, compiled string) PlanDetail {
	d := PlanDetail{Compiled: compiled}
	if original != nil {
		d.Original = json.RawMessage(original.JSON())
	}
	if rewritten != nil {
		d.Rewritten = json.RawMessage(rewritten.JSON())
	}
	return d
}

// resultDetail renders an executed result's full plan detail: the stage
// plans, the optimized plan and cost estimates when the optimize phase
// ran, and the EXPLAIN ANALYZE annotation.
func resultDetail(res *luna.Result) PlanDetail {
	d := planDetail(res.Plan, res.Rewritten, res.Compiled)
	if res.Optimized != nil {
		d.Optimized = json.RawMessage(res.Optimized.JSON())
	}
	d.Cost = res.Cost
	d.CostOptimized = res.CostOptimized
	d.Executed = executedPlan(res)
	return d
}

// previewDetail renders a planned-but-not-executed preview's plan detail,
// including the cost-annotated original and optimized plans.
func previewDetail(pv *luna.PlanPreview) PlanDetail {
	d := planDetail(pv.Plan, pv.Rewritten, pv.Compiled)
	if pv.Optimized != nil {
		d.Optimized = json.RawMessage(pv.Optimized.JSON())
	}
	d.Cost = pv.Cost
	d.CostOptimized = pv.CostOptimized
	return d
}

// queryService resolves the service for one request: the system's wired
// service, with the request's optimize override applied when present.
func (s *Server) queryService(optimize *bool) *luna.Service {
	svc := s.sys.QueryService()
	if svc != nil && optimize != nil {
		svc = svc.WithOptimize(*optimize)
	}
	return svc
}

// maybeDegrade serves the degradation contract for /query: when err means
// "the model backend is unavailable" (circuit open or transient failures
// exhausted) and the client is still there, answer 200 with a
// retrieval-only fallback tagged degraded instead of a 5xx. res, when
// non-nil, is the partial result of the failed execution; with includePlan
// its plan detail (including per-node error annotations in "executed")
// rides along for drill-down. Returns true when it wrote the response.
func (s *Server) maybeDegrade(w http.ResponseWriter, r *http.Request, question string, includePlan bool, res *luna.Result, err error, start time.Time) bool {
	if !resilience.Unavailable(err) || r.Context().Err() != nil {
		return false
	}
	out := s.degradedQueryResponse(r, question, includePlan, res, err, start)
	s.writeJSON(w, http.StatusOK, out)
	return true
}

// degradedQueryResponse builds the retrieval-only fallback answer shared
// by the JSON and SSE query paths (the caller has already established
// the error is degradable).
func (s *Server) degradedQueryResponse(r *http.Request, question string, includePlan bool, res *luna.Result, err error, start time.Time) QueryResponse {
	answer, docs := s.sys.RetrievalOnly(question, 5)
	out := QueryResponse{
		TraceID:        traceFrom(r.Context()),
		Question:       question,
		Answer:         answer,
		Kind:           "retrieval-only",
		Docs:           docs,
		Degraded:       true,
		DegradedReason: err.Error(),
		WallMS:         time.Since(start).Milliseconds(),
	}
	if includePlan && res != nil {
		d := resultDetail(res)
		out.Plan = &d
	}
	s.degradedServed.Add(1)
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if wantsSSE(r) {
		s.handleQueryStream(w, r)
		return
	}
	var req QueryRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if req.Question == "" && len(req.Plan) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("question or plan is required"))
		return
	}
	if !s.sys.Ready() {
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("no data ingested yet"))
		return
	}
	ctx, cancel := s.workCtx(r)
	defer cancel()
	start := time.Now()

	// Execute-by-plan: the user edited a plan (typically from POST /plan)
	// and re-runs it; validation still applies but the planner LLM does
	// not.
	if len(req.Plan) > 0 {
		plan, err := decodePlan(req.Plan)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		question := req.Question
		if question == "" {
			question = "(user-submitted plan)"
		}
		res, err := s.queryService(req.Optimize).RunPlan(ctx, question, plan)
		if err != nil {
			if s.maybeDegrade(w, r, question, req.IncludePlan, res, err, start) {
				return
			}
			s.writeError(w, r, statusOf(err), err)
			return
		}
		out := QueryResponse{
			TraceID:  traceFrom(r.Context()),
			Question: question,
			Answer:   res.Answer.String(),
			Kind:     string(res.Answer.Kind),
			Docs:     len(res.Docs),
			WallMS:   time.Since(start).Milliseconds(),
		}
		if req.IncludePlan {
			d := resultDetail(res)
			out.Plan = &d
		}
		s.writeJSON(w, http.StatusOK, out)
		return
	}

	if req.RAG {
		resp, err := s.sys.AskRAG(ctx, req.Question)
		if err != nil {
			if s.maybeDegrade(w, r, req.Question, false, nil, err, start) {
				return
			}
			s.writeError(w, r, statusOf(err), err)
			return
		}
		answer := resp.Answer
		if answer == "" {
			answer = resp.Text
		}
		s.writeJSON(w, http.StatusOK, QueryResponse{
			TraceID:  traceFrom(r.Context()),
			Question: req.Question,
			Answer:   answer,
			Kind:     "rag",
			Docs:     resp.Retrieved,
			WallMS:   time.Since(start).Milliseconds(),
		})
		return
	}

	res, err := s.queryService(req.Optimize).Ask(ctx, req.Question)
	if err != nil {
		if s.maybeDegrade(w, r, req.Question, req.IncludePlan, res, err, start) {
			return
		}
		s.writeError(w, r, statusOf(err), err)
		return
	}
	out := QueryResponse{
		TraceID:  traceFrom(r.Context()),
		Question: req.Question,
		Answer:   res.Answer.String(),
		Kind:     string(res.Answer.Kind),
		Docs:     len(res.Docs),
		LLM:      res.LLM,
		WallMS:   time.Since(start).Milliseconds(),
	}
	if req.IncludePlan {
		d := resultDetail(res)
		out.Plan = &d
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if req.Question == "" {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("question is required"))
		return
	}

	var sess *session
	fresh := false
	if req.SessionID == "" {
		conv, err := s.sys.NewSession()
		if err != nil {
			s.writeError(w, r, http.StatusConflict, err)
			return
		}
		sess, err = s.sessions.create(conv)
		if err != nil {
			w.Header().Set("Retry-After", "30")
			s.writeError(w, r, http.StatusTooManyRequests, err)
			return
		}
		fresh = true
	} else if sess = s.sessions.get(req.SessionID); sess == nil {
		s.writeError(w, r, http.StatusNotFound,
			fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}

	ctx, cancel := s.workCtx(r)
	defer cancel()
	start := time.Now()
	// One exchange = Ask plus the turn read, under the session lock so a
	// parallel client of the same session cannot make Turn misreport.
	sess.mu.Lock()
	res, err := sess.conv.Ask(ctx, req.Question)
	turn := sess.conv.Turns()
	sess.mu.Unlock()
	if err != nil {
		if resilience.Unavailable(err) && r.Context().Err() == nil {
			// Degrade the turn instead of 500ing. The session survives —
			// the client gets its ID and keeps its history; the failed turn
			// is not recorded, so follow-ups resolve against the last good
			// answer once the backend recovers.
			answer, _ := s.sys.RetrievalOnly(req.Question, 5)
			s.degradedServed.Add(1)
			s.writeJSON(w, http.StatusOK, ChatResponse{
				TraceID:        traceFrom(r.Context()),
				SessionID:      sess.id,
				Turn:           turn,
				Answer:         answer,
				Kind:           "retrieval-only",
				Degraded:       true,
				DegradedReason: err.Error(),
				WallMS:         time.Since(start).Milliseconds(),
			})
			return
		}
		if fresh {
			// The client never learned this session's ID; drop it rather
			// than leak a MaxSessions slot until TTL eviction.
			s.sessions.remove(sess.id)
		}
		s.writeError(w, r, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, ChatResponse{
		TraceID:   traceFrom(r.Context()),
		SessionID: sess.id,
		Turn:      turn,
		Answer:    res.Answer.String(),
		Kind:      string(res.Answer.Kind),
		WallMS:    time.Since(start).Milliseconds(),
	})
}

// ---- fault control (dev-only chaos API) ----

func (s *Server) faultState(r *http.Request, purged int) FaultStateResponse {
	spec := s.cfg.Fault.Spec()
	return FaultStateResponse{
		TraceID:            traceFrom(r.Context()),
		Spec:               spec,
		Active:             spec.Active(),
		Stats:              s.cfg.Fault.Stats(),
		PurgedCacheEntries: purged,
	}
}

func (s *Server) handleFaultsGet(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.faultState(r, 0))
}

func (s *Server) handleFaultsPost(w http.ResponseWriter, r *http.Request) {
	var req FaultControlRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	switch {
	case req.Clear:
		s.cfg.Fault.Clear()
	case req.Spec != nil:
		s.cfg.Fault.Set(*req.Spec)
	}
	purged := 0
	if req.PurgeLLMCache {
		purged = s.sys.PurgeLLMCache()
	}
	s.writeJSON(w, http.StatusOK, s.faultState(r, purged))
}

// ---- plumbing ----

// statusOf maps execution errors to HTTP statuses: invalid plans are the
// client's input failing to validate (400, with every node-level problem
// listed in the structured errors array), backend unavailability that
// could not be degraded is 503 (with Retry-After when the breaker knows
// its probe time), a deadline hit is 504, everything else is a server
// fault.
func statusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, luna.ErrInvalidPlan):
		return http.StatusBadRequest
	case resilience.Unavailable(err):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// decodeBody decodes a JSON request body capped at limit bytes, writing
// the error response itself (413 over the cap, 400 malformed). Without
// the cap one huge body could exhaust memory and collapse the server the
// admission gate is there to protect. Unknown fields are rejected: a
// typo'd knob silently ignored is worse than a 400 that names it.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody renders err as the unified envelope's inner object: a
// machine-matchable code derived from the HTTP status (refined by error
// identity where one status covers several conditions) plus the human
// message and any structured sub-failures.
func errorBody(status int, err error) api.ErrorBody {
	body := api.ErrorBody{Message: err.Error()}
	switch status {
	case http.StatusBadRequest:
		body.Code = api.CodeBadRequest
		if errors.Is(err, luna.ErrInvalidPlan) {
			body.Code = api.CodeInvalidPlan
		}
	case http.StatusNotFound:
		body.Code = api.CodeNotFound
	case http.StatusConflict:
		body.Code = api.CodeConflict
	case http.StatusRequestEntityTooLarge:
		body.Code = api.CodeTooLarge
	case http.StatusTooManyRequests:
		body.Code = api.CodeSaturated
	case http.StatusServiceUnavailable:
		body.Code = api.CodeUnavailable
	case http.StatusGatewayTimeout:
		body.Code = api.CodeTimeout
	default:
		body.Code = api.CodeInternal
	}
	if errors.Is(err, luna.ErrInvalidPlan) {
		// errors.Join aggregates node-level validation failures; the
		// structured array lets a plan editor show them all at once.
		body.Details = luna.Issues(err)
	}
	return body
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if after, ok := resilience.RetryAfterHint(err); ok {
		// Propagate the backend's "come back later" hint (circuit probe
		// time, injected Retry-After) so well-behaved clients pace
		// themselves instead of hammering a recovering backend.
		secs := int(after / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	s.writeJSON(w, status, api.ErrorEnvelope{
		Error:   errorBody(status, err),
		TraceID: traceFrom(r.Context()),
	})
}

// newTraceID mints a per-request ID: a monotonic sequence (cheap ordering
// for logs) plus the serving start time so IDs from different boots don't
// collide.
func (s *Server) newTraceID() string {
	return fmt.Sprintf("t%x-%d", s.start.UnixNano()&0xffffff, s.traceSeq.Add(1))
}

type traceKey struct{}

func withTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// traceFrom recovers the request's trace ID ("" outside a request).
func traceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
