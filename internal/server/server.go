package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aryn/internal/core"
	"aryn/internal/fault"
	"aryn/internal/llm"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
	"aryn/internal/resilience"
)

// Config tunes the serving layer. Zero values pick sane defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing work requests (default 16).
	MaxInFlight int
	// MaxWaiters bounds requests queued for a slot; beyond this the
	// server sheds with 429 (default 64).
	MaxWaiters int
	// QueueWait is how long a queued request waits for a slot before
	// being shed (default 2s).
	QueueWait time.Duration
	// SessionTTL evicts idle chat sessions (default 30m).
	SessionTTL time.Duration
	// MaxSessions caps live chat sessions (default 1024).
	MaxSessions int
	// RequestTimeout bounds one query/chat execution (0 picks the 60s
	// default; negative disables the bound entirely — arynd's
	// -query-timeout 0).
	RequestTimeout time.Duration
	// IngestTimeout bounds one ingest run (default 10m).
	IngestTimeout time.Duration
	// MaxIngestDocs caps the synthetic-corpus size one /ingest request
	// may ask for (default 10000).
	MaxIngestDocs int
	// MaxIngestBodyBytes caps an /ingest request body (default 64 MiB) —
	// blob uploads are big but must not be unbounded.
	MaxIngestBodyBytes int64
	// MaxBodyBytes caps every other request body (default 1 MiB).
	MaxBodyBytes int64
	// Fault, when set, exposes the dev-only /faults endpoint controlling
	// the injector (wire the same injector into core.Config.Fault). Leave
	// nil in production deployments: the route is simply absent.
	Fault *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.MaxWaiters <= 0 {
		c.MaxWaiters = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.IngestTimeout <= 0 {
		c.IngestTimeout = 10 * time.Minute
	}
	if c.MaxIngestDocs <= 0 {
		c.MaxIngestDocs = 10000
	}
	if c.MaxIngestBodyBytes <= 0 {
		c.MaxIngestBodyBytes = 64 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	return c
}

// Server serves one core.System to concurrent clients.
type Server struct {
	sys       *core.System
	cfg       Config
	gate      *gate
	sessions  *sessionTable
	mux       *http.ServeMux
	start     time.Time
	endpoints map[string]*endpointCounters

	// ingestMu makes ingest runs exclusive: a second concurrent /ingest
	// gets 409 instead of racing the pipeline.
	ingestMu sync.Mutex

	traceSeq atomic.Uint64
	requests atomic.Int64
	// degradedServed counts 200s answered retrieval-only because the model
	// backend was unavailable.
	degradedServed atomic.Int64
}

// New wraps sys in a serving layer.
func New(sys *core.System, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:       sys,
		cfg:       cfg,
		gate:      newGate(cfg.MaxInFlight, cfg.MaxWaiters, cfg.QueueWait),
		sessions:  newSessionTable(cfg.SessionTTL, cfg.MaxSessions),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		endpoints: map[string]*endpointCounters{},
	}
	routes := []string{"/healthz", "/stats", "/ingest", "/plan", "/query", "/chat"}
	if cfg.Fault != nil {
		routes = append(routes, "/faults")
	}
	for _, route := range routes {
		s.endpoints[route] = &endpointCounters{}
	}
	s.mux.HandleFunc("GET /healthz", s.counted("/healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /stats", s.counted("/stats", s.handleStats))
	s.mux.HandleFunc("POST /ingest", s.counted("/ingest", s.gated(s.handleIngest)))
	s.mux.HandleFunc("POST /plan", s.counted("/plan", s.gated(s.handlePlan)))
	s.mux.HandleFunc("POST /query", s.counted("/query", s.gated(s.handleQuery)))
	s.mux.HandleFunc("POST /chat", s.counted("/chat", s.gated(s.handleChat)))
	if cfg.Fault != nil {
		// Dev-only chaos control plane: not gated (a saturated or faulted
		// server must still accept "clear the faults").
		s.mux.HandleFunc("GET /faults", s.counted("/faults", s.handleFaultsGet))
		s.mux.HandleFunc("POST /faults", s.counted("/faults", s.handleFaultsPost))
	}
	return s
}

// Handler returns the root handler (trace-ID middleware over the mux).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		trace := s.newTraceID()
		w.Header().Set("X-Trace-Id", trace)
		r = r.WithContext(withTrace(r.Context(), trace))
		s.mux.ServeHTTP(w, r)
	})
}

// Close stops background work (the session janitor).
func (s *Server) Close() { s.sessions.close() }

// workCtx bounds one query/chat execution by RequestTimeout; a negative
// timeout means unlimited (the work still dies with the client).
func (s *Server) workCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout < 0 {
		return context.WithCancel(r.Context())
	}
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

// gated wraps a work handler with admission control: shed with 429 +
// Retry-After when saturated, and bound the request context so a stuck
// client cannot pin a slot forever. Cancellation flows through the
// context into the LLM middleware, which aborts queued calls.
func (s *Server) gated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.gate.acquire(r.Context())
		if !ok {
			retry := s.gate.retryAfter()
			w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
			s.writeError(w, r, http.StatusTooManyRequests,
				fmt.Errorf("server saturated (%d in flight, %d queued); retry in %s",
					s.cfg.MaxInFlight, s.cfg.MaxWaiters, retry))
			return
		}
		defer release()
		h(w, r)
	}
}

// ---- request / response shapes ----

// IngestRequest loads documents: either raw blobs (base64 rawdoc
// binaries keyed by document ID) or a generated synthetic NTSB corpus.
type IngestRequest struct {
	// Blobs are base64-encoded rawdoc binaries keyed by document ID.
	Blobs map[string]string `json:"blobs,omitempty"`
	// Docs generates that many synthetic NTSB reports when Blobs is empty.
	Docs int `json:"docs,omitempty"`
	// Seed drives the synthetic corpus (default 42).
	Seed int64 `json:"seed,omitempty"`
}

// IngestResponse summarizes one ingest run.
type IngestResponse struct {
	TraceID   string         `json:"trace_id"`
	Documents int            `json:"documents"`
	Chunks    int            `json:"chunks"`
	Elements  int            `json:"elements"`
	WallMS    int64          `json:"wall_ms"`
	Usage     llm.Usage      `json:"usage"`
	LLM       llm.StackStats `json:"llm"`
}

// QueryRequest is a one-shot question — or a user-edited plan to execute
// (exactly one of Question/Plan drives execution; Plan wins when both are
// set, with Question kept as the display label).
type QueryRequest struct {
	Question string `json:"question,omitempty"`
	// Plan is a logical plan to execute directly after validation (the
	// §6.2 "modify any part of the plan" path). Accepts the DAG form
	// {"nodes": [...], "output": ...} and the legacy {"ops": [...]} form.
	Plan json.RawMessage `json:"plan,omitempty"`
	// RAG answers through the retrieval-augmented baseline instead of Luna.
	RAG bool `json:"rag,omitempty"`
	// IncludePlan attaches the original and rewritten plan JSON plus the
	// compiled physical pipeline to the response.
	IncludePlan bool `json:"include_plan,omitempty"`
}

// PlanDetail carries every stage of a query's plan: what the planner
// emitted (or the user submitted), what the optimizer made of it, the
// physical pipeline it lowers to — and, when the query executed, the
// EXPLAIN ANALYZE view: the plan annotated with per-node runtime metrics
// (wall/busy time, docs in/out, LLM calls/tokens/cache hits, retries).
type PlanDetail struct {
	Original  json.RawMessage `json:"original,omitempty"`
	Rewritten json.RawMessage `json:"rewritten,omitempty"`
	Compiled  string          `json:"compiled,omitempty"`
	// Executed is the rewritten plan with a "runtime" object per node and
	// an "exec" query-level summary (wall_ms, worker budget, scheduled
	// branches). Present on executed queries (POST /query with
	// include_plan, POST /plan with analyze).
	Executed json.RawMessage `json:"executed,omitempty"`
}

// QueryResponse is the answer to a one-shot question.
type QueryResponse struct {
	TraceID  string          `json:"trace_id"`
	Question string          `json:"question"`
	Answer   string          `json:"answer"`
	Kind     string          `json:"kind,omitempty"`
	Docs     int             `json:"docs,omitempty"`
	Plan     *PlanDetail     `json:"plan,omitempty"`
	LLM      *llm.StackStats `json:"llm,omitempty"`
	WallMS   int64           `json:"wall_ms"`
	// Degraded marks a retrieval-only fallback answer served because the
	// model backend was unavailable (circuit open or retries exhausted);
	// DegradedReason says why. The request still succeeded (200) — the
	// degradation contract is "a worse answer, never a 500".
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// PlanRequest plans a question — or dry-runs an edited plan — without
// executing anything, unless Analyze asks for EXPLAIN ANALYZE.
type PlanRequest struct {
	Question string `json:"question,omitempty"`
	// Plan, when set, is validated, rewritten, and compiled instead of
	// calling the planner (a dry run for hand-edited plans).
	Plan json.RawMessage `json:"plan,omitempty"`
	// Analyze executes the plan (or planned question) and returns the
	// executed plan annotated with per-node runtime metrics — EXPLAIN
	// ANALYZE: full runtime feedback without the answer payload.
	Analyze bool `json:"analyze,omitempty"`
}

// PlanResponse is the inspectable half of the inspect→edit→re-run loop.
type PlanResponse struct {
	TraceID  string     `json:"trace_id"`
	Question string     `json:"question,omitempty"`
	Plan     PlanDetail `json:"plan"`
	WallMS   int64      `json:"wall_ms"`
}

// ChatRequest is one conversational turn. Omit SessionID to open a new
// session; reuse the returned one for follow-ups ("what about …").
type ChatRequest struct {
	SessionID string `json:"session_id,omitempty"`
	Question  string `json:"question"`
}

// ChatResponse is one conversational answer.
type ChatResponse struct {
	TraceID   string `json:"trace_id"`
	SessionID string `json:"session_id"`
	// Turn is the 1-based conversation length after this exchange —
	// clients can assert their session state was neither lost nor
	// interleaved with another session's.
	Turn   int    `json:"turn"`
	Answer string `json:"answer"`
	Kind   string `json:"kind,omitempty"`
	WallMS int64  `json:"wall_ms"`
	// Degraded/DegradedReason mirror QueryResponse: a retrieval-only
	// fallback turn (not recorded in the conversation history — follow-ups
	// never resolve against a degraded answer).
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// StatsResponse is the /stats snapshot.
type StatsResponse struct {
	TraceID  string    `json:"trace_id"`
	UptimeMS int64     `json:"uptime_ms"`
	Requests int64     `json:"requests"`
	Ready    bool      `json:"ready"`
	Docs     int       `json:"docs"`
	Chunks   int       `json:"chunks"`
	Usage    llm.Usage `json:"usage"`
	// UsageFailed is spend carried by calls that ultimately errored
	// (retry storms, injected faults) — kept out of Usage so delivered
	// answers' accounting stays honest.
	UsageFailed llm.Usage      `json:"usage_failed"`
	LLM         llm.StackStats `json:"llm"`
	Gate        gateStats      `json:"admission"`
	Sessions    sessionStats   `json:"sessions"`
	// Resilience reports the retry/breaker middleware (nil when the system
	// was built without it); Fault reports the chaos injector (nil when
	// not wired). Degraded/DegradedServed summarize degraded-mode serving.
	Resilience     *resilience.Stats `json:"resilience,omitempty"`
	Fault          *fault.Stats      `json:"fault,omitempty"`
	Degraded       bool              `json:"degraded"`
	DegradedServed int64             `json:"degraded_served"`
	// Endpoints breaks the traffic down per route: request counts by
	// outcome class (ok / client error / server error / shed) plus
	// cumulative and max handler latency — the server-side counters the
	// arynload harness and operators read.
	Endpoints map[string]EndpointStats `json:"endpoints"`
}

type sessionStats struct {
	Live    int   `json:"live"`
	Evicted int64 `json:"evicted"`
}

type errorResponse struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id"`
	// Errors lists every individual plan-validation failure when the
	// error aggregates several (one round trip shows a plan editor every
	// problem).
	Errors []string `json:"errors,omitempty"`
}

// ---- handlers ----

// handleHealthz distinguishes three conditions: live (the process answers
// at all — implied by any response), ready (data is ingested and queries
// can run), and degraded (serving continues but the model backend is
// unavailable, so answers fall back to retrieval-only). Status stays 200
// even when degraded: a degraded server is still serving, and restarting
// it (what a non-200 health check triggers) would not fix the backend.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	degraded, reason := s.sys.Degraded()
	status := "ok"
	if degraded {
		status = "degraded"
	}
	resp := map[string]any{
		"status":   status,
		"live":     true,
		"ready":    s.sys.Ready(),
		"degraded": degraded,
		"docs":     s.sys.Store.NumDocs(),
		"chunks":   s.sys.Store.NumChunks(),
		"trace_id": traceFrom(r.Context()),
	}
	if reason != "" {
		resp["reason"] = reason
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	endpoints := make(map[string]EndpointStats, len(s.endpoints))
	for route, ep := range s.endpoints {
		endpoints[route] = ep.snapshot()
	}
	degraded, _ := s.sys.Degraded()
	resp := StatsResponse{
		TraceID:        traceFrom(r.Context()),
		UptimeMS:       time.Since(s.start).Milliseconds(),
		Requests:       s.requests.Load(),
		Ready:          s.sys.Ready(),
		Docs:           s.sys.Store.NumDocs(),
		Chunks:         s.sys.Store.NumChunks(),
		Usage:          s.sys.LLM.Usage(),
		UsageFailed:    s.sys.LLM.FailedUsage(),
		LLM:            s.sys.LLMStats(),
		Gate:           s.gate.stats(),
		Sessions:       sessionStats{Live: s.sessions.count(), Evicted: s.sessions.evictedCount()},
		Degraded:       degraded,
		DegradedServed: s.degradedServed.Load(),
		Endpoints:      endpoints,
	}
	if s.sys.Resilience != nil {
		st := s.sys.Resilience.Stats()
		resp.Resilience = &st
	}
	if s.sys.Fault != nil {
		st := s.sys.Fault.Stats()
		resp.Fault = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !s.decodeBody(w, r, s.cfg.MaxIngestBodyBytes, &req) {
		return
	}
	// Claim exclusivity before materializing blobs: a rejected request
	// should not pay for corpus generation it will throw away.
	if !s.ingestMu.TryLock() {
		w.Header().Set("Retry-After", "5")
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("an ingest is already in progress"))
		return
	}
	defer s.ingestMu.Unlock()
	blobs, err := s.ingestBlobs(req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.IngestTimeout)
	defer cancel()
	stats, err := s.sys.Ingest(ctx, blobs)
	if err != nil {
		// statusOf separates backend unavailability (503, retryable — the
		// chaos suite asserts exhausted stage retries never surface as a
		// 500) from real internal failures.
		s.writeError(w, r, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, IngestResponse{
		TraceID:   traceFrom(r.Context()),
		Documents: stats.Documents,
		Chunks:    stats.Chunks,
		Elements:  stats.Elements,
		WallMS:    stats.Wall.Milliseconds(),
		Usage:     stats.Usage,
		LLM:       stats.LLM,
	})
}

// ingestBlobs materializes the request's document set: decoded client
// blobs when provided, a generated NTSB corpus otherwise.
func (s *Server) ingestBlobs(req IngestRequest) (map[string][]byte, error) {
	if len(req.Blobs) > 0 {
		blobs := make(map[string][]byte, len(req.Blobs))
		for id, b64 := range req.Blobs {
			raw, err := base64.StdEncoding.DecodeString(b64)
			if err != nil {
				return nil, fmt.Errorf("blob %q: invalid base64: %w", id, err)
			}
			blobs[id] = raw
		}
		return blobs, nil
	}
	if req.Docs <= 0 {
		return nil, fmt.Errorf("provide blobs or a positive docs count")
	}
	if req.Docs > s.cfg.MaxIngestDocs {
		return nil, fmt.Errorf("docs %d exceeds the per-request cap %d", req.Docs, s.cfg.MaxIngestDocs)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 42
	}
	corpus, err := ntsb.GenerateCorpus(req.Docs, seed)
	if err != nil {
		return nil, fmt.Errorf("generate corpus: %w", err)
	}
	return corpus.Blobs()
}

// handlePlan serves POST /plan: the execution-free half of the plan API,
// plus EXPLAIN ANALYZE. With a question it runs the planner + validator +
// rewriter; with a plan it dry-runs a user edit. Either way the response
// carries the plan JSON the client can edit and POST back to /query.
// With {"analyze": true} the plan (or planned question) additionally
// executes, and the response's plan detail carries "executed" — the plan
// annotated with per-node runtime metrics — while the answer payload is
// withheld (the runtime feedback loop without the result).
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if req.Question == "" && len(req.Plan) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("provide a question or a plan"))
		return
	}
	if !s.sys.Ready() {
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("no data ingested yet"))
		return
	}
	ctx, cancel := s.workCtx(r)
	defer cancel()
	start := time.Now()
	svc := s.sys.QueryService()

	if req.Analyze {
		s.handleAnalyze(w, r, ctx, svc, req, start)
		return
	}

	var preview *luna.PlanPreview
	if len(req.Plan) > 0 {
		plan, err := decodePlan(req.Plan)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		preview, err = svc.InspectPlan(plan)
		if err != nil {
			s.writeError(w, r, statusOf(err), err)
			return
		}
	} else {
		var err error
		preview, err = svc.PlanOnly(ctx, req.Question)
		if err != nil {
			s.writeError(w, r, statusOf(err), err)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, PlanResponse{
		TraceID:  traceFrom(r.Context()),
		Question: req.Question,
		Plan:     planDetail(preview.Plan, preview.Rewritten, preview.Compiled),
		WallMS:   time.Since(start).Milliseconds(),
	})
}

// handleAnalyze serves POST /plan {"analyze": true}: EXPLAIN ANALYZE. The
// plan executes for real (semantic operators run, LLM calls are spent) —
// what comes back is the annotated plan, not the answer.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request, ctx context.Context, svc *luna.Service, req PlanRequest, start time.Time) {
	var res *luna.Result
	var err error
	if len(req.Plan) > 0 {
		var plan *luna.LogicalPlan
		plan, err = decodePlan(req.Plan)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		question := req.Question
		if question == "" {
			question = "(explain analyze)"
		}
		res, err = svc.RunPlan(ctx, question, plan)
	} else {
		res, err = svc.Ask(ctx, req.Question)
	}
	if err != nil {
		s.writeError(w, r, statusOf(err), err)
		return
	}
	detail := planDetail(res.Plan, res.Rewritten, res.Compiled)
	detail.Executed = executedPlan(res)
	s.writeJSON(w, http.StatusOK, PlanResponse{
		TraceID:  traceFrom(r.Context()),
		Question: req.Question,
		Plan:     detail,
		WallMS:   time.Since(start).Milliseconds(),
	})
}

// executedPlan renders a result's EXPLAIN ANALYZE annotation (nil when
// the result carries no runtime detail).
func executedPlan(res *luna.Result) json.RawMessage {
	if res.Exec == nil || res.Rewritten == nil {
		return nil
	}
	return json.RawMessage(res.Rewritten.AnnotatedJSON(res.Exec))
}

// decodePlan parses a submitted plan body (DAG or legacy linear form).
func decodePlan(raw json.RawMessage) (*luna.LogicalPlan, error) {
	var plan luna.LogicalPlan
	if err := json.Unmarshal(raw, &plan); err != nil {
		return nil, fmt.Errorf("bad plan JSON: %w", err)
	}
	return &plan, nil
}

// planDetail renders the plan stages for a response.
func planDetail(original, rewritten *luna.LogicalPlan, compiled string) PlanDetail {
	d := PlanDetail{Compiled: compiled}
	if original != nil {
		d.Original = json.RawMessage(original.JSON())
	}
	if rewritten != nil {
		d.Rewritten = json.RawMessage(rewritten.JSON())
	}
	return d
}

// maybeDegrade serves the degradation contract for /query: when err means
// "the model backend is unavailable" (circuit open or transient failures
// exhausted) and the client is still there, answer 200 with a
// retrieval-only fallback tagged degraded instead of a 5xx. res, when
// non-nil, is the partial result of the failed execution; with includePlan
// its plan detail (including per-node error annotations in "executed")
// rides along for drill-down. Returns true when it wrote the response.
func (s *Server) maybeDegrade(w http.ResponseWriter, r *http.Request, question string, includePlan bool, res *luna.Result, err error, start time.Time) bool {
	if !resilience.Unavailable(err) || r.Context().Err() != nil {
		return false
	}
	answer, docs := s.sys.RetrievalOnly(question, 5)
	out := QueryResponse{
		TraceID:        traceFrom(r.Context()),
		Question:       question,
		Answer:         answer,
		Kind:           "retrieval-only",
		Docs:           docs,
		Degraded:       true,
		DegradedReason: err.Error(),
		WallMS:         time.Since(start).Milliseconds(),
	}
	if includePlan && res != nil {
		d := planDetail(res.Plan, res.Rewritten, res.Compiled)
		d.Executed = executedPlan(res)
		out.Plan = &d
	}
	s.degradedServed.Add(1)
	s.writeJSON(w, http.StatusOK, out)
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if req.Question == "" && len(req.Plan) == 0 {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("question or plan is required"))
		return
	}
	if !s.sys.Ready() {
		s.writeError(w, r, http.StatusConflict, fmt.Errorf("no data ingested yet"))
		return
	}
	ctx, cancel := s.workCtx(r)
	defer cancel()
	start := time.Now()

	// Execute-by-plan: the user edited a plan (typically from POST /plan)
	// and re-runs it; validation still applies but the planner LLM does
	// not.
	if len(req.Plan) > 0 {
		plan, err := decodePlan(req.Plan)
		if err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
		question := req.Question
		if question == "" {
			question = "(user-submitted plan)"
		}
		res, err := s.sys.QueryService().RunPlan(ctx, question, plan)
		if err != nil {
			if s.maybeDegrade(w, r, question, req.IncludePlan, res, err, start) {
				return
			}
			s.writeError(w, r, statusOf(err), err)
			return
		}
		out := QueryResponse{
			TraceID:  traceFrom(r.Context()),
			Question: question,
			Answer:   res.Answer.String(),
			Kind:     string(res.Answer.Kind),
			Docs:     len(res.Docs),
			WallMS:   time.Since(start).Milliseconds(),
		}
		if req.IncludePlan {
			d := planDetail(res.Plan, res.Rewritten, res.Compiled)
			d.Executed = executedPlan(res)
			out.Plan = &d
		}
		s.writeJSON(w, http.StatusOK, out)
		return
	}

	if req.RAG {
		resp, err := s.sys.AskRAG(ctx, req.Question)
		if err != nil {
			if s.maybeDegrade(w, r, req.Question, false, nil, err, start) {
				return
			}
			s.writeError(w, r, statusOf(err), err)
			return
		}
		answer := resp.Answer
		if answer == "" {
			answer = resp.Text
		}
		s.writeJSON(w, http.StatusOK, QueryResponse{
			TraceID:  traceFrom(r.Context()),
			Question: req.Question,
			Answer:   answer,
			Kind:     "rag",
			Docs:     resp.Retrieved,
			WallMS:   time.Since(start).Milliseconds(),
		})
		return
	}

	res, err := s.sys.QueryService().Ask(ctx, req.Question)
	if err != nil {
		if s.maybeDegrade(w, r, req.Question, req.IncludePlan, res, err, start) {
			return
		}
		s.writeError(w, r, statusOf(err), err)
		return
	}
	out := QueryResponse{
		TraceID:  traceFrom(r.Context()),
		Question: req.Question,
		Answer:   res.Answer.String(),
		Kind:     string(res.Answer.Kind),
		Docs:     len(res.Docs),
		LLM:      res.LLM,
		WallMS:   time.Since(start).Milliseconds(),
	}
	if req.IncludePlan {
		d := planDetail(res.Plan, res.Rewritten, res.Compiled)
		d.Executed = executedPlan(res)
		out.Plan = &d
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleChat(w http.ResponseWriter, r *http.Request) {
	var req ChatRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	if req.Question == "" {
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("question is required"))
		return
	}

	var sess *session
	fresh := false
	if req.SessionID == "" {
		conv, err := s.sys.NewSession()
		if err != nil {
			s.writeError(w, r, http.StatusConflict, err)
			return
		}
		sess, err = s.sessions.create(conv)
		if err != nil {
			w.Header().Set("Retry-After", "30")
			s.writeError(w, r, http.StatusTooManyRequests, err)
			return
		}
		fresh = true
	} else if sess = s.sessions.get(req.SessionID); sess == nil {
		s.writeError(w, r, http.StatusNotFound,
			fmt.Errorf("unknown or expired session %q", req.SessionID))
		return
	}

	ctx, cancel := s.workCtx(r)
	defer cancel()
	start := time.Now()
	// One exchange = Ask plus the turn read, under the session lock so a
	// parallel client of the same session cannot make Turn misreport.
	sess.mu.Lock()
	res, err := sess.conv.Ask(ctx, req.Question)
	turn := sess.conv.Turns()
	sess.mu.Unlock()
	if err != nil {
		if resilience.Unavailable(err) && r.Context().Err() == nil {
			// Degrade the turn instead of 500ing. The session survives —
			// the client gets its ID and keeps its history; the failed turn
			// is not recorded, so follow-ups resolve against the last good
			// answer once the backend recovers.
			answer, _ := s.sys.RetrievalOnly(req.Question, 5)
			s.degradedServed.Add(1)
			s.writeJSON(w, http.StatusOK, ChatResponse{
				TraceID:        traceFrom(r.Context()),
				SessionID:      sess.id,
				Turn:           turn,
				Answer:         answer,
				Kind:           "retrieval-only",
				Degraded:       true,
				DegradedReason: err.Error(),
				WallMS:         time.Since(start).Milliseconds(),
			})
			return
		}
		if fresh {
			// The client never learned this session's ID; drop it rather
			// than leak a MaxSessions slot until TTL eviction.
			s.sessions.remove(sess.id)
		}
		s.writeError(w, r, statusOf(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, ChatResponse{
		TraceID:   traceFrom(r.Context()),
		SessionID: sess.id,
		Turn:      turn,
		Answer:    res.Answer.String(),
		Kind:      string(res.Answer.Kind),
		WallMS:    time.Since(start).Milliseconds(),
	})
}

// ---- fault control (dev-only chaos API) ----

// FaultControlRequest mutates the fault injector: activate a spec, clear
// all faults, and/or purge the LLM response cache (the cache-killed
// chaos move). Spec and Clear are mutually exclusive; Clear wins.
type FaultControlRequest struct {
	// Spec activates a new fault spec (replacing the current one; outage
	// windows re-anchor to now).
	Spec *fault.Spec `json:"spec,omitempty"`
	// Clear deactivates all fault injection.
	Clear bool `json:"clear,omitempty"`
	// PurgeLLMCache drops every resident LLM response-cache entry.
	PurgeLLMCache bool `json:"purge_llm_cache,omitempty"`
}

// FaultStateResponse reports the injector state after a control request
// (and on GET).
type FaultStateResponse struct {
	TraceID string      `json:"trace_id"`
	Spec    fault.Spec  `json:"spec"`
	Active  bool        `json:"active"`
	Stats   fault.Stats `json:"stats"`
	// PurgedCacheEntries reports how many cache entries a purge dropped.
	PurgedCacheEntries int `json:"purged_cache_entries,omitempty"`
}

func (s *Server) faultState(r *http.Request, purged int) FaultStateResponse {
	spec := s.cfg.Fault.Spec()
	return FaultStateResponse{
		TraceID:            traceFrom(r.Context()),
		Spec:               spec,
		Active:             spec.Active(),
		Stats:              s.cfg.Fault.Stats(),
		PurgedCacheEntries: purged,
	}
}

func (s *Server) handleFaultsGet(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.faultState(r, 0))
}

func (s *Server) handleFaultsPost(w http.ResponseWriter, r *http.Request) {
	var req FaultControlRequest
	if !s.decodeBody(w, r, s.cfg.MaxBodyBytes, &req) {
		return
	}
	switch {
	case req.Clear:
		s.cfg.Fault.Clear()
	case req.Spec != nil:
		s.cfg.Fault.Set(*req.Spec)
	}
	purged := 0
	if req.PurgeLLMCache {
		purged = s.sys.PurgeLLMCache()
	}
	s.writeJSON(w, http.StatusOK, s.faultState(r, purged))
}

// ---- plumbing ----

// statusOf maps execution errors to HTTP statuses: invalid plans are the
// client's input failing to validate (400, with every node-level problem
// listed in the structured errors array), backend unavailability that
// could not be degraded is 503 (with Retry-After when the breaker knows
// its probe time), a deadline hit is 504, everything else is a server
// fault.
func statusOf(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, luna.ErrInvalidPlan):
		return http.StatusBadRequest
	case resilience.Unavailable(err):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// decodeBody decodes a JSON request body capped at limit bytes, writing
// the error response itself (413 over the cap, 400 malformed). Without
// the cap one huge body could exhaust memory and collapse the server the
// admission gate is there to protect.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	if after, ok := resilience.RetryAfterHint(err); ok {
		// Propagate the backend's "come back later" hint (circuit probe
		// time, injected Retry-After) so well-behaved clients pace
		// themselves instead of hammering a recovering backend.
		secs := int(after / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	resp := errorResponse{Error: err.Error(), TraceID: traceFrom(r.Context())}
	if errors.Is(err, luna.ErrInvalidPlan) {
		// errors.Join aggregates node-level validation failures; the
		// structured array lets a plan editor show them all at once.
		resp.Errors = luna.Issues(err)
	}
	s.writeJSON(w, status, resp)
}

// newTraceID mints a per-request ID: a monotonic sequence (cheap ordering
// for logs) plus the serving start time so IDs from different boots don't
// collide.
func (s *Server) newTraceID() string {
	return fmt.Sprintf("t%x-%d", s.start.UnixNano()&0xffffff, s.traceSeq.Add(1))
}

type traceKey struct{}

func withTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// traceFrom recovers the request's trace ID ("" outside a request).
func traceFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
