package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"aryn/internal/core"
	"aryn/internal/luna"
)

// TestPlanInspectEditReexecute walks the full §6.2 loop over HTTP:
// plan a question without executing, edit the returned DAG JSON, and
// submit the edited plan back through /query for a traced execution.
func TestPlanInspectEditReexecute(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})

	// 1. Inspect: POST /plan returns original + rewritten + compiled.
	var planned PlanResponse
	resp := postJSON(t, ts.URL+"/plan", PlanRequest{Question: "How many incidents were there?"}, &planned)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status = %d", resp.StatusCode)
	}
	if len(planned.Plan.Original) == 0 || len(planned.Plan.Rewritten) == 0 || planned.Plan.Compiled == "" {
		t.Fatalf("plan response incomplete: %+v", planned.Plan)
	}
	if !strings.Contains(string(planned.Plan.Rewritten), `"nodes"`) {
		t.Errorf("plan should be DAG JSON: %s", planned.Plan.Rewritten)
	}

	// 2. Edit: cap the scan with a limit node feeding the count.
	var plan luna.LogicalPlan
	if err := json.Unmarshal(planned.Plan.Rewritten, &plan); err != nil {
		t.Fatal(err)
	}
	count := -1
	for i := range plan.Nodes {
		if plan.Nodes[i].Op == luna.OpCount {
			count = i
		}
	}
	if count < 0 || len(plan.Nodes[count].Inputs) != 1 {
		t.Fatalf("rewritten plan has no count node: %s", planned.Plan.Rewritten)
	}
	plan.Nodes = append(plan.Nodes, luna.PlanNode{
		ID:        "edit1",
		Inputs:    []string{plan.Nodes[count].Inputs[0]},
		LogicalOp: luna.LogicalOp{Op: luna.OpLimit, K: 5},
	})
	plan.Nodes[count].Inputs = []string{"edit1"}
	edited, err := json.Marshal(&plan)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Re-execute: the edited plan runs and the limit bites.
	var out QueryResponse
	resp = postJSON(t, ts.URL+"/query", QueryRequest{Plan: edited, IncludePlan: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute-by-plan status = %d", resp.StatusCode)
	}
	if out.Answer != "5" {
		t.Errorf("edited plan answer = %q, want 5 (limit applied)", out.Answer)
	}
	if out.TraceID == "" {
		t.Error("executed plan should be traced")
	}
	if out.Plan == nil || !strings.Contains(string(out.Plan.Original), "edit1") {
		t.Errorf("include_plan should echo the submitted plan: %+v", out.Plan)
	}
}

// TestJoinPlanOverHTTP executes a two-root DAG with the join operator
// end-to-end against the ingested NTSB corpus: a self-equijoin on
// accident number keeps every document exactly once.
func TestJoinPlanOverHTTP(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	plan := []byte(`{"nodes":[
		{"id":"n1","op":"queryDatabase"},
		{"id":"n2","op":"queryDatabase"},
		{"id":"n3","op":"join","inputs":["n1","n2"],"left_key":"accidentNumber","right_key":"accidentNumber","join_kind":"semi"},
		{"id":"n4","op":"count","inputs":["n3"]}],"output":"n4"}`)
	var out QueryResponse
	resp := postJSON(t, ts.URL+"/query",
		QueryRequest{Question: "join smoke", Plan: plan, IncludePlan: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join plan status = %d", resp.StatusCode)
	}
	if out.Answer != "16" {
		t.Errorf("semi self-join count = %q, want 16", out.Answer)
	}
	if out.Plan == nil || !strings.Contains(out.Plan.Compiled, "join") {
		t.Errorf("compiled pipeline should include the join stage: %+v", out.Plan)
	}
}

func TestPlanDryRunValidatesEdits(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	plan := []byte(`{"nodes":[{"id":"n1","op":"queryDatabase"},{"id":"n2","op":"count","inputs":["n1"]}],"output":"n2"}`)
	var out PlanResponse
	resp := postJSON(t, ts.URL+"/plan", PlanRequest{Plan: plan}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan dry-run status = %d", resp.StatusCode)
	}
	if len(out.Plan.Rewritten) == 0 || out.Plan.Compiled == "" {
		t.Errorf("dry-run should rewrite and compile: %+v", out.Plan)
	}
}

// TestInvalidPlanReturnsStructuredErrors is the 400 structured-error
// regression: every node-level failure must surface in one response.
func TestInvalidPlanReturnsStructuredErrors(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	bad := []byte(`{"nodes":[
		{"id":"n1","op":"queryDatabase","filters":[{"field":"hallucinated","kind":"fuzzy","value":1}]},
		{"id":"n2","op":"llmFilter","inputs":["n1"]},
		{"id":"n3","op":"count","inputs":["n2"]}],"output":"n3"}`)
	for _, path := range []string{"/query", "/plan"} {
		var errOut errorResponse
		resp := postJSON(t, ts.URL+path, map[string]any{"plan": json.RawMessage(bad)}, &errOut)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s invalid plan status = %d, want 400", path, resp.StatusCode)
		}
		if errOut.Error.Code != "invalid_plan" {
			t.Errorf("%s error code = %q, want invalid_plan", path, errOut.Error.Code)
		}
		if len(errOut.Error.Details) < 3 {
			t.Errorf("%s should list all validation failures, got %q", path, errOut.Error.Details)
		}
		joined := strings.Join(errOut.Error.Details, "\n")
		for _, want := range []string{"hallucinated", "filter kind", "llmFilter requires a question"} {
			if !strings.Contains(joined, want) {
				t.Errorf("%s errors missing %q: %q", path, want, errOut.Error.Details)
			}
		}
	}
}

func TestLegacyLinearPlanOverHTTP(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	legacy := []byte(`{"ops":[{"op":"queryDatabase"},{"op":"count"}]}`)
	var out QueryResponse
	resp := postJSON(t, ts.URL+"/query", QueryRequest{Plan: legacy}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy plan status = %d", resp.StatusCode)
	}
	if out.Answer != "16" {
		t.Errorf("legacy plan answer = %q, want 16", out.Answer)
	}
}

func TestPlanEndpointValidation(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	if resp := postJSON(t, ts.URL+"/plan", PlanRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty plan request status = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/plan", map[string]any{"plan": "not an object"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed plan status = %d, want 400", resp.StatusCode)
	}

	sys, err := buildSystem(core.Config{Seed: 3, Parallelism: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	empty := newTestServer(t, sys, Config{})
	if resp := postJSON(t, empty.URL+"/plan", PlanRequest{Question: "anything?"}, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("plan before ingest status = %d, want 409", resp.StatusCode)
	}
}
