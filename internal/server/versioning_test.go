package server

import (
	"net/http"
	"strings"
	"testing"

	"aryn/internal/server/api"
)

// TestVersionedRoutesAndDeprecation pins the /v1 migration contract:
// canonical routes answer clean, legacy unprefixed aliases still work but
// carry Deprecation + successor-version Link headers, and both spellings
// feed one logical endpoint counter.
func TestVersionedRoutesAndDeprecation(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})

	canonical, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	canonical.Body.Close()
	if canonical.StatusCode != http.StatusOK {
		t.Fatalf("/v1/healthz status = %d", canonical.StatusCode)
	}
	if canonical.Header.Get("Deprecation") != "" {
		t.Error("/v1/healthz must not be marked deprecated")
	}

	legacy, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	legacy.Body.Close()
	if legacy.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status = %d; the legacy alias must keep working", legacy.StatusCode)
	}
	if legacy.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy /healthz Deprecation = %q, want true", legacy.Header.Get("Deprecation"))
	}
	link := legacy.Header.Get("Link")
	if !strings.Contains(link, "/v1/healthz") || !strings.Contains(link, "successor-version") {
		t.Errorf("legacy /healthz Link = %q, want a successor-version pointer to /v1/healthz", link)
	}

	// Work endpoints answer identically on both spellings.
	for _, path := range []string{"/v1/query", "/query"} {
		var out QueryResponse
		resp := postJSON(t, ts.URL+path, QueryRequest{Question: "How many incidents were there?"}, &out)
		if resp.StatusCode != http.StatusOK || out.Answer != "16" {
			t.Errorf("%s = %d answer %q, want 200 answer 16", path, resp.StatusCode, out.Answer)
		}
	}

	// Both spellings share one counter keyed by the unversioned path.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Endpoints["/healthz"].Requests < 2 {
		t.Errorf("/healthz logical counter = %d requests, want ≥2 (both spellings)", st.Endpoints["/healthz"].Requests)
	}
	if st.Endpoints["/query"].Requests < 2 {
		t.Errorf("/query logical counter = %d requests, want ≥2 (both spellings)", st.Endpoints["/query"].Requests)
	}
	for key := range st.Endpoints {
		if strings.HasPrefix(key, "/v1/") {
			t.Errorf("endpoint counters must be keyed unversioned, found %q", key)
		}
	}
}

// TestUnknownFieldsRejected: DisallowUnknownFields turns a typo'd knob
// into a 400 that names it instead of silently ignoring it.
func TestUnknownFieldsRejected(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	var out errorResponse
	resp := postJSON(t, ts.URL+"/v1/query", map[string]any{"question": "x", "includeplan": true}, &out)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status = %d, want 400", resp.StatusCode)
	}
	if out.Error.Code != api.CodeBadRequest || !strings.Contains(out.Error.Message, "includeplan") {
		t.Errorf("400 envelope = %+v, want bad_request naming the unknown field", out)
	}
}
