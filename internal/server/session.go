package server

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"aryn/internal/luna"
)

// session is one client's conversational state. mu serializes one
// client-visible exchange (Ask plus the turn-counter read) so parallel
// requests to the same session each report their own turn; lastUsed is
// guarded by the owning table's mutex.
type session struct {
	id       string
	mu       sync.Mutex
	conv     *luna.Conversation
	lastUsed time.Time
}

// sessionTable owns chat sessions: creation, lookup-with-touch, TTL
// eviction by a janitor goroutine, and a hard cap so an open endpoint
// cannot grow memory without bound.
type sessionTable struct {
	mu       sync.Mutex
	m        map[string]*session
	ttl      time.Duration
	max      int
	evicted  int64
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// errSessionsFull is returned by create when the table is at capacity —
// the serving layer maps it to 429 (shed, like the admission gate).
var errSessionsFull = fmt.Errorf("server: session table full")

func newSessionTable(ttl time.Duration, max int) *sessionTable {
	t := &sessionTable{
		m:    make(map[string]*session),
		ttl:  ttl,
		max:  max,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go t.janitor()
	return t
}

// create registers a fresh session around conv and returns it.
func (t *sessionTable) create(conv *luna.Conversation) (*session, error) {
	id := newSessionID()
	s := &session{id: id, conv: conv, lastUsed: time.Now()}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) >= t.max {
		return nil, errSessionsFull
	}
	t.m[id] = s
	return s, nil
}

// get looks up a live session and bumps its TTL clock (nil if unknown or
// already evicted).
func (t *sessionTable) get(id string) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.m[id]
	if s != nil {
		s.lastUsed = time.Now()
	}
	return s
}

// remove drops a session (used when a freshly created session's first
// exchange fails and the client never learned its ID).
func (t *sessionTable) remove(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.m, id)
}

// count reports the live session population.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}

// evictedCount reports how many sessions the janitor has reaped.
func (t *sessionTable) evictedCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evicted
}

// janitor reaps idle sessions every ttl/4 (at least every 100ms for the
// short TTLs tests use).
func (t *sessionTable) janitor() {
	defer close(t.done)
	period := t.ttl / 4
	if period < 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case now := <-ticker.C:
			t.mu.Lock()
			for id, s := range t.m {
				if now.Sub(s.lastUsed) > t.ttl {
					delete(t.m, id)
					t.evicted++
				}
			}
			t.mu.Unlock()
		}
	}
}

// close stops the janitor (idempotent).
func (t *sessionTable) close() {
	t.stopOnce.Do(func() { close(t.stop) })
	<-t.done
}

// newSessionID returns a 128-bit random hex ID.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow
		// does, a time-derived ID keeps the server limping rather than
		// panicking.
		return fmt.Sprintf("s-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}
