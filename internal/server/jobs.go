package server

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"

	"aryn/internal/docset"
	"aryn/internal/server/api"
)

// This file implements the async ingest-job resource: POST /v1/ingest
// answers 202 with a job handle, a background worker runs the ETL
// pipeline, and GET /v1/jobs/{id} (JSON or SSE) reports live per-stage
// progress. Queries keep serving from the last prepared snapshot for the
// whole run — the new corpus becomes visible only at the final Prepare
// swap inside core.Ingest. Terminal jobs stay pollable until JobTTL.

// errJobsFull is returned by submit when the worker queue is at
// capacity; the handler maps it to 429 like the admission gate.
var errJobsFull = fmt.Errorf("server: ingest job queue full")

// ingestJob is one async ingest run through its lifecycle
// queued → running → done | failed.
type ingestJob struct {
	id      string
	docs    int
	created time.Time

	mu       sync.Mutex
	state    string
	blobs    map[string][]byte // released once the run starts
	err      error
	result   *api.IngestResponse
	trace    *docset.Trace // live pipeline trace while running
	finished time.Time

	// done closes when the job reaches a terminal state (the SSE variant
	// selects on it).
	done chan struct{}
}

// snapshot renders the job resource. Phase and per-stage counters come
// straight from the live execution trace, so polling costs the run
// nothing.
func (j *ingestJob) snapshot(traceID string) api.JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := api.JobResponse{
		TraceID: traceID,
		JobID:   j.id,
		State:   j.state,
		Docs:    j.docs,
		Result:  j.result,
		AgeMS:   time.Since(j.created).Milliseconds(),
	}
	if j.err != nil {
		body := errorBody(statusOf(j.err), j.err)
		out.Error = &body
	}
	if j.trace != nil {
		for _, snap := range j.trace.Snapshots() {
			out.Nodes = append(out.Nodes, api.NodeProgress{
				Name:    snap.Name,
				Tag:     snap.Tag,
				In:      snap.In,
				Out:     snap.Out,
				Batches: snap.Batches,
			})
			// The deepest stage work has reached is the job's phase.
			if snap.In > 0 {
				out.Phase = snap.Name
			}
		}
	}
	return out
}

// jobManager owns ingest jobs: a bounded submission queue, one worker
// (ingest is exclusive anyway — see Server.ingestMu), and a janitor that
// reaps terminal jobs after the TTL.
type jobManager struct {
	srv   *Server
	ttl   time.Duration
	queue chan *ingestJob

	mu     sync.Mutex
	jobs   map[string]*ingestJob
	seq    uint64
	reaped int64

	stopOnce    sync.Once
	stop        chan struct{}
	workerDone  chan struct{}
	janitorDone chan struct{}
}

func newJobManager(srv *Server, ttl time.Duration, maxQueued int) *jobManager {
	m := &jobManager{
		srv:         srv,
		ttl:         ttl,
		queue:       make(chan *ingestJob, maxQueued),
		jobs:        make(map[string]*ingestJob),
		stop:        make(chan struct{}),
		workerDone:  make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	go m.worker()
	go m.janitor()
	return m
}

// submit registers a job for blobs and enqueues it (errJobsFull when the
// queue is at capacity).
func (m *jobManager) submit(blobs map[string][]byte) (*ingestJob, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	job := &ingestJob{
		id:      fmt.Sprintf("j%x-%d", m.srv.start.UnixNano()&0xffffff, m.seq),
		docs:    len(blobs),
		created: time.Now(),
		state:   api.JobQueued,
		blobs:   blobs,
		done:    make(chan struct{}),
	}
	select {
	case m.queue <- job:
	default:
		return nil, errJobsFull
	}
	m.jobs[job.id] = job
	return job, nil
}

// get looks up a job (nil when unknown or already reaped).
func (m *jobManager) get(id string) *ingestJob {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// stats snapshots the job population for /stats.
func (m *jobManager) stats() api.JobStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := api.JobStats{Reaped: m.reaped}
	for _, j := range m.jobs {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		switch state {
		case api.JobQueued:
			st.Queued++
		case api.JobRunning:
			st.Running++
		case api.JobDone:
			st.Done++
		case api.JobFailed:
			st.Failed++
		}
	}
	return st
}

// worker drains the queue one job at a time.
func (m *jobManager) worker() {
	defer close(m.workerDone)
	for {
		select {
		case <-m.stop:
			return
		case job := <-m.queue:
			m.run(job)
		}
	}
}

// run executes one job under the same exclusivity lock as the
// synchronous path: a legacy /ingest racing a job still sees its 409,
// and queued jobs serialize.
func (m *jobManager) run(job *ingestJob) {
	m.srv.ingestMu.Lock()
	defer m.srv.ingestMu.Unlock()

	// The state flips to running only once the exclusivity lock is held,
	// so an observed "running" implies a concurrent legacy /ingest 409s.
	job.mu.Lock()
	job.state = api.JobRunning
	blobs := job.blobs
	job.blobs = nil
	job.mu.Unlock()

	// The job runs detached from any request context (the submitting
	// client may be long gone) but dies with the manager on shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), m.srv.cfg.IngestTimeout) //lint:allow ctxflow jobs outlive the submitting request by design; the goroutine below ties cancellation to manager shutdown
	defer cancel()
	go func() {
		select {
		case <-m.stop:
			cancel()
		case <-ctx.Done():
		}
	}()

	stats, err := m.srv.sys.IngestObserved(ctx, blobs, func(tr *docset.Trace) {
		job.mu.Lock()
		job.trace = tr
		job.mu.Unlock()
	})

	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	if err != nil {
		job.state = api.JobFailed
		job.err = err
	} else {
		job.state = api.JobDone
		job.result = &api.IngestResponse{
			Documents: stats.Documents,
			Chunks:    stats.Chunks,
			Elements:  stats.Elements,
			WallMS:    stats.Wall.Milliseconds(),
			Usage:     stats.Usage,
			LLM:       stats.LLM,
		}
	}
	close(job.done)
}

// janitor reaps terminal jobs once their TTL elapses, so the table stays
// bounded while recent outcomes remain pollable.
func (m *jobManager) janitor() {
	defer close(m.janitorDone)
	period := m.ttl / 4
	if period < 50*time.Millisecond {
		period = 50 * time.Millisecond
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case now := <-ticker.C:
			m.mu.Lock()
			for id, j := range m.jobs {
				j.mu.Lock()
				expired := (j.state == api.JobDone || j.state == api.JobFailed) &&
					now.Sub(j.finished) > m.ttl
				j.mu.Unlock()
				if expired {
					delete(m.jobs, id)
					m.reaped++
				}
			}
			m.mu.Unlock()
		}
	}
}

// close stops the worker and janitor, cancelling any in-flight run.
func (m *jobManager) close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.workerDone
	<-m.janitorDone
}

// ---- handlers ----

// handleIngestAsync serves POST /v1/ingest: materialize the corpus,
// enqueue the job, answer 202 with the job handle and a Location header
// pointing at the poll URL.
func (s *Server) handleIngestAsync(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !s.decodeBody(w, r, s.cfg.MaxIngestBodyBytes, &req) {
		return
	}
	blobs, err := s.ingestBlobs(req)
	if err != nil {
		s.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	job, err := s.jobs.submit(blobs)
	if err != nil {
		w.Header().Set("Retry-After", "5")
		s.writeError(w, r, http.StatusTooManyRequests, err)
		return
	}
	loc := "/v1/jobs/" + job.id
	w.Header().Set("Location", loc)
	s.writeJSON(w, http.StatusAccepted, api.JobAccepted{
		TraceID:  traceFrom(r.Context()),
		JobID:    job.id,
		State:    api.JobQueued,
		Location: loc,
	})
}

// handleJob serves GET /v1/jobs/{id}: the JSON snapshot, or — with
// Accept: text/event-stream — progress events until the job reaches a
// terminal state, which arrives as the stream's "result" event.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job := s.jobs.get(id)
	if job == nil {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("unknown or expired job %q", id))
		return
	}
	if wantsSSE(r) {
		s.handleJobStream(w, r, job)
		return
	}
	s.writeJSON(w, http.StatusOK, job.snapshot(traceFrom(r.Context())))
}

func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request, job *ingestJob) {
	conn := openSSE(w)
	if conn == nil {
		s.writeError(w, r, http.StatusInternalServerError,
			fmt.Errorf("response writer does not support streaming"))
		return
	}
	trace := traceFrom(r.Context())
	progress := time.NewTicker(s.cfg.StreamProgress)
	defer progress.Stop()
	heartbeat := time.NewTicker(s.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-progress.C:
			conn.send(api.EventProgress, job.snapshot(trace))
		case <-heartbeat.C:
			conn.send(api.EventHeartbeat, api.HeartbeatEvent{UptimeMS: time.Since(s.start).Milliseconds()})
		case <-job.done:
			conn.send(api.EventResult, job.snapshot(trace))
			return
		case <-r.Context().Done():
			return
		}
	}
}
