package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/llm"
	"aryn/internal/server/api"
)

// jobsSystem is pre-ingested with 8 docs and carries per-call LLM latency
// with batching disabled, so an async ingest job runs long enough for the
// test to observe the running state, concurrent queries, and the sync 409.
var (
	jobsOnce sync.Once
	jobsSys  *core.System
	jobsErr  error
)

func jobsSystem(t *testing.T) *core.System {
	t.Helper()
	jobsOnce.Do(func() {
		jobsSys, jobsErr = buildSystem(core.Config{
			Seed:        7,
			Parallelism: 4,
			LLMMaxBatch: 1,
			LLMOptions:  []llm.SimOption{llm.WithLatency(20 * time.Millisecond)},
		}, 8)
	})
	if jobsErr != nil {
		t.Fatal(jobsErr)
	}
	return jobsSys
}

// waitJobState polls the job resource until it reports want; reaching a
// terminal state while waiting for running fails loudly (the job outran
// the test — grow the corpus).
func waitJobState(t *testing.T, url, want string, within time.Duration) api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		var jr api.JobResponse
		resp := getJSON(t, url, &jr)
		if resp.StatusCode == http.StatusOK && jr.State == want {
			return jr
		}
		if want == api.JobRunning && (jr.State == api.JobDone || jr.State == api.JobFailed) {
			t.Fatalf("job reached terminal state %q before the test observed running", jr.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not reach state %q within %v (last: %+v)", want, within, jr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestIngestJobLifecycle walks the async ingest API end to end: 202 with
// a pollable handle, live progress while queries keep answering from the
// old snapshot, the legacy sync route 409ing against the running job,
// queue-full shedding, and the SSE variant delivering the terminal state.
func TestIngestJobLifecycle(t *testing.T) {
	ts := newTestServer(t, jobsSystem(t), Config{
		StreamProgress: 10 * time.Millisecond,
		MaxQueuedJobs:  1,
	})

	// Submit: 96 docs × 20ms extraction calls keep the worker busy for
	// hundreds of milliseconds.
	var acc api.JobAccepted
	resp := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Docs: 96, Seed: 99}, &acc)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async ingest status = %d, want 202", resp.StatusCode)
	}
	if acc.JobID == "" || acc.State != api.JobQueued {
		t.Fatalf("202 body incomplete: %+v", acc)
	}
	if acc.Location != "/v1/jobs/"+acc.JobID || resp.Header.Get("Location") != acc.Location {
		t.Errorf("Location = %q (header %q), want /v1/jobs/%s", acc.Location, resp.Header.Get("Location"), acc.JobID)
	}

	jobURL := ts.URL + acc.Location
	waitJobState(t, jobURL, api.JobRunning, 10*time.Second)

	// While the job runs, queries keep answering against the last prepared
	// service (the store fills incrementally, so counts may already see
	// newly written docs — what matters is 200s, not 409s or errors).
	var q QueryResponse
	if qr := postJSON(t, ts.URL+"/v1/query", QueryRequest{Question: "How many incidents were there?"}, &q); qr.StatusCode != http.StatusOK {
		t.Fatalf("query during ingest job status = %d, want 200", qr.StatusCode)
	}
	if q.Answer == "" {
		t.Error("query during ingest returned an empty answer")
	}

	// The running job holds the ingest lock: the legacy sync route 409s,
	// and the deprecated alias says so in its headers.
	var er errorResponse
	ir := postJSON(t, ts.URL+"/ingest", IngestRequest{Docs: 1}, &er)
	if ir.StatusCode != http.StatusConflict || er.Error.Code != api.CodeConflict {
		t.Errorf("sync ingest during job = %d (%q), want 409 conflict", ir.StatusCode, er.Error.Code)
	}
	if ir.Header.Get("Deprecation") != "true" {
		t.Errorf("legacy /ingest must answer with Deprecation: true, got %q", ir.Header.Get("Deprecation"))
	}

	// One queue slot: a second job queues, a third is shed with 429.
	var accB api.JobAccepted
	if rb := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Docs: 2, Seed: 5}, &accB); rb.StatusCode != http.StatusAccepted {
		t.Fatalf("second job status = %d, want 202 (queued)", rb.StatusCode)
	}
	var erC errorResponse
	rc := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Docs: 2, Seed: 6}, &erC)
	if rc.StatusCode != http.StatusTooManyRequests || erC.Error.Code != api.CodeSaturated {
		t.Errorf("overflow job = %d (%q), want 429 saturated", rc.StatusCode, erC.Error.Code)
	}
	if rc.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}

	// /stats sees the population.
	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Jobs.Running != 1 || st.Jobs.Queued != 1 {
		t.Errorf("job stats = %+v, want 1 running + 1 queued", st.Jobs)
	}

	// The SSE variant reports progress and delivers the terminal snapshot
	// as its result event.
	sresp := sseOpen(t, context.Background(), "GET", jobURL, nil)
	defer sresp.Body.Close()
	events := readSSE(t, sresp.Body)
	if len(events) == 0 {
		t.Fatal("job stream carried no events")
	}
	last := events[len(events)-1]
	if last.name != api.EventResult {
		t.Fatalf("job stream terminal event = %q, want result", last.name)
	}
	var final api.JobResponse
	decodeEvent(t, last, &final)
	if final.State != api.JobDone || final.Result == nil {
		t.Fatalf("terminal job snapshot = %+v, want done with a result", final)
	}
	if final.Result.Documents < 96 {
		t.Errorf("done job reports %d documents, want ≥96", final.Result.Documents)
	}
	progressWithNodes := false
	for _, ev := range events[:len(events)-1] {
		if ev.name != api.EventProgress && ev.name != api.EventHeartbeat {
			t.Errorf("unexpected job stream event %q", ev.name)
		}
		if ev.name == api.EventProgress {
			var jr api.JobResponse
			decodeEvent(t, ev, &jr)
			if len(jr.Nodes) > 0 && jr.Phase != "" {
				progressWithNodes = true
			}
		}
	}
	if !progressWithNodes {
		t.Error("no progress event carried per-stage counters and a phase")
	}

	// The queued job serializes behind the first and completes too.
	done := waitJobState(t, ts.URL+"/v1/jobs/"+accB.JobID, api.JobDone, 30*time.Second)
	if done.Result == nil {
		t.Errorf("queued job finished without a result: %+v", done)
	}

	// After the swap, queries see the new corpus.
	var q2 QueryResponse
	postJSON(t, ts.URL+"/v1/query", QueryRequest{Question: "How many incidents were there?"}, &q2)
	if q2.Answer == "8" {
		t.Error("queries still answer from the pre-job snapshot after the job completed")
	}
}

// TestJobTTLExpiry: terminal jobs stay pollable until the TTL, then the
// janitor reaps them and the resource 404s.
func TestJobTTLExpiry(t *testing.T) {
	sys, err := buildSystem(core.Config{Seed: 3, Parallelism: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys, Config{JobTTL: 150 * time.Millisecond})

	var acc api.JobAccepted
	if resp := postJSON(t, ts.URL+"/v1/ingest", IngestRequest{Docs: 2}, &acc); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	jobURL := ts.URL + acc.Location
	waitJobState(t, jobURL, api.JobDone, 30*time.Second)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(jobURL)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusNotFound {
			var er errorResponse
			if decodeErr := json.NewDecoder(resp.Body).Decode(&er); decodeErr != nil {
				t.Fatal(decodeErr)
			}
			resp.Body.Close()
			if er.Error.Code != api.CodeNotFound {
				t.Errorf("expired job error code = %q, want not_found", er.Error.Code)
			}
			break
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatal("terminal job never expired past its TTL")
		}
		time.Sleep(25 * time.Millisecond)
	}

	var st StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.Jobs.Reaped < 1 {
		t.Errorf("stats reaped = %d, want ≥1", st.Jobs.Reaped)
	}
}

// TestJobNotFound: an unknown id is a structured 404.
func TestJobNotFound(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != api.CodeNotFound || er.TraceID == "" {
		t.Errorf("404 envelope = %+v, want not_found with trace id", er)
	}
}
