package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/llm"
	"aryn/internal/server/api"
)

// ---- SSE test client ----

type sseEvent struct {
	id   int
	name string
	data json.RawMessage
}

// sseOpen issues a request with Accept: text/event-stream and returns the
// live response; the caller reads (and closes) the streaming body.
func sseOpen(t *testing.T, ctx context.Context, method, url string, body any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readSSE consumes the stream to EOF (the server closes it after the
// terminal event) and returns every event in arrival order.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = id
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE stream: %v", err)
	}
	return events
}

func decodeEvent(t *testing.T, ev sseEvent, out any) {
	t.Helper()
	if err := json.Unmarshal(ev.data, out); err != nil {
		t.Fatalf("decode %s event %s: %v", ev.name, ev.data, err)
	}
}

// verySlowSystem carries enough simulated LLM latency that streaming
// tests can observe heartbeats and cancel mid-execution. Batching is
// disabled so per-call latency compounds predictably.
var (
	verySlowOnce sync.Once
	verySlowSys  *core.System
	verySlowErr  error
)

func verySlowSystem(t *testing.T) *core.System {
	t.Helper()
	verySlowOnce.Do(func() {
		verySlowSys, verySlowErr = buildSystem(core.Config{
			Seed:        7,
			Parallelism: 4,
			LLMMaxBatch: 1,
			LLMOptions:  []llm.SimOption{llm.WithLatency(50 * time.Millisecond)},
		}, 16)
	})
	if verySlowErr != nil {
		t.Fatal(verySlowErr)
	}
	return verySlowSys
}

// filterPlan builds a scan → llmFilter → count plan; distinct questions
// defeat the LLM cache so each test pays real (simulated) latency.
func filterPlan(question string) json.RawMessage {
	return json.RawMessage(`{"nodes":[
		{"id":"n1","op":"queryDatabase"},
		{"id":"n2","op":"llmFilter","question":"` + question + `","inputs":["n1"]},
		{"id":"n3","op":"count","inputs":["n2"]}],"output":"n3"}`)
}

// TestQueryStreamContract pins the SSE event grammar on POST /v1/query:
// progress/partial/heartbeat events, then (optionally) one trace event,
// then exactly one terminal result — nothing after it — with strictly
// increasing ids, and partial counts summing to the result's docs.
func TestQueryStreamContract(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{StreamProgress: 5 * time.Millisecond})
	resp := sseOpen(t, context.Background(), "POST", ts.URL+"/v1/query",
		QueryRequest{Question: "How many incidents were there?"})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if resp.Header.Get("Deprecation") != "" {
		t.Error("canonical /v1 route must not carry a Deprecation header")
	}

	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("stream carried no events")
	}
	last := events[len(events)-1]
	if last.name != api.EventResult {
		t.Fatalf("terminal event = %q, want result (events: %v)", last.name, eventNames(events))
	}
	var res QueryResponse
	decodeEvent(t, last, &res)
	if res.Answer != "16" || res.TraceID == "" {
		t.Errorf("streamed result = %q (trace %q), want answer 16 with a trace id", res.Answer, res.TraceID)
	}

	prevID := 0
	partialDocs, progressSeen, traceSeen := 0, false, false
	for _, ev := range events {
		if ev.id <= prevID {
			t.Errorf("event ids must increase: %d after %d", ev.id, prevID)
		}
		prevID = ev.id
		switch ev.name {
		case api.EventPartial:
			var p api.PartialEvent
			decodeEvent(t, ev, &p)
			if p.Count <= 0 || p.Seq <= 0 {
				t.Errorf("partial event missing seq/count: %+v", p)
			}
			partialDocs += p.Count
		case api.EventProgress:
			progressSeen = true
		case api.EventTrace:
			traceSeen = true
			var tr api.TraceEvent
			decodeEvent(t, ev, &tr)
			if !strings.Contains(string(tr.Executed), "first_out_ms") {
				t.Errorf("trace event lacks first_out_ms runtime: %s", tr.Executed)
			}
		case api.EventHeartbeat, api.EventResult:
		default:
			t.Errorf("unexpected event %q", ev.name)
		}
	}
	if !progressSeen {
		t.Error("every stream must carry at least one progress event")
	}
	if !traceSeen {
		t.Error("an executed query stream must carry the trace event")
	}
	if partialDocs != res.Docs {
		t.Errorf("partial docs sum = %d, want the terminal result's %d", partialDocs, res.Docs)
	}
}

func eventNames(events []sseEvent) []string {
	names := make([]string, len(events))
	for i, ev := range events {
		names[i] = ev.name
	}
	return names
}

// TestQueryStreamMatchesBatch: the same plan streamed and not streamed
// yields identical final answers and doc counts.
func TestQueryStreamMatchesBatch(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	plan := filterPlan("Does the document indicate engine problems?")

	var batch QueryResponse
	if resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Plan: plan}, &batch); resp.StatusCode != http.StatusOK {
		t.Fatalf("batch query status = %d", resp.StatusCode)
	}

	resp := sseOpen(t, context.Background(), "POST", ts.URL+"/v1/query", QueryRequest{Plan: plan})
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	last := events[len(events)-1]
	if last.name != api.EventResult {
		t.Fatalf("terminal event = %q, want result", last.name)
	}
	var streamed QueryResponse
	decodeEvent(t, last, &streamed)
	if streamed.Answer != batch.Answer || streamed.Docs != batch.Docs {
		t.Errorf("streamed (answer %q, docs %d) != batch (answer %q, docs %d)",
			streamed.Answer, streamed.Docs, batch.Answer, batch.Docs)
	}
}

// TestQueryStreamHeartbeat: a short heartbeat cadence on a slow query
// produces multiple heartbeats before the terminal result.
func TestQueryStreamHeartbeat(t *testing.T) {
	ts := newTestServer(t, verySlowSystem(t), Config{
		StreamHeartbeat: 20 * time.Millisecond,
		StreamProgress:  10 * time.Millisecond,
	})
	resp := sseOpen(t, context.Background(), "POST", ts.URL+"/v1/query",
		QueryRequest{Plan: filterPlan("Is the heartbeat cadence observable on this document?")})
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	heartbeats := 0
	for _, ev := range events {
		if ev.name == api.EventHeartbeat {
			heartbeats++
			var hb api.HeartbeatEvent
			decodeEvent(t, ev, &hb)
			if hb.UptimeMS < 0 {
				t.Errorf("heartbeat uptime %d < 0", hb.UptimeMS)
			}
		}
	}
	// 16 docs × 50ms with batching disabled over 4 workers keeps the
	// stream alive ≥200ms: a 20ms cadence must tick several times.
	if heartbeats < 2 {
		t.Errorf("saw %d heartbeats on a slow stream, want ≥2 (events: %v)", heartbeats, eventNames(events))
	}
	if last := events[len(events)-1]; last.name != api.EventResult {
		t.Errorf("terminal event = %q, want result", last.name)
	}
}

// TestQueryStreamInvalidPlanErrorEvent: failures after the stream opened
// arrive as a terminal error event carrying the unified envelope.
func TestQueryStreamInvalidPlanErrorEvent(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	bad := json.RawMessage(`{"nodes":[
		{"id":"n1","op":"queryDatabase","filters":[{"field":"hallucinated","kind":"term","value":1}]}],
		"output":"n1"}`)
	resp := sseOpen(t, context.Background(), "POST", ts.URL+"/v1/query", QueryRequest{Plan: bad})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d; post-open failures must arrive as events", resp.StatusCode)
	}
	events := readSSE(t, resp.Body)
	last := events[len(events)-1]
	if last.name != api.EventError {
		t.Fatalf("terminal event = %q, want error (events: %v)", last.name, eventNames(events))
	}
	var env errorResponse
	decodeEvent(t, last, &env)
	if env.Error.Code != api.CodeInvalidPlan || len(env.Error.Details) == 0 {
		t.Errorf("error event envelope = %+v, want invalid_plan with details", env)
	}
}

// TestQueryStreamDisconnectReleasesSlot: a client that vanishes
// mid-stream must not wedge the executor — the admission slot frees and
// the next request runs. This is the regression test for the drain loop
// in handleQueryStream.
func TestQueryStreamDisconnectReleasesSlot(t *testing.T) {
	ts := newTestServer(t, verySlowSystem(t), Config{
		MaxInFlight:     1,
		StreamProgress:  5 * time.Millisecond,
		StreamHeartbeat: 10 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	resp := sseOpen(t, ctx, "POST", ts.URL+"/v1/query",
		QueryRequest{Plan: filterPlan("Did this document survive a client disconnect?")})

	// Wait for the first event so execution has demonstrably started,
	// then drop the connection.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("read first event line: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The slot must free (the handler drains the hooks until the executor
	// notices cancellation). A wedged drain holds InFlight at 1 forever.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st StatsResponse
		getJSON(t, ts.URL+"/v1/stats", &st)
		if st.Gate.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission slot still held %v after client disconnect: %+v", 10*time.Second, st.Gate)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the single slot is usable again: an LLM-free plan answers fast.
	countPlan := json.RawMessage(`{"nodes":[
		{"id":"n1","op":"queryDatabase"},
		{"id":"n2","op":"count","inputs":["n1"]}],"output":"n2"}`)
	var out QueryResponse
	if resp := postJSON(t, ts.URL+"/v1/query", QueryRequest{Plan: countPlan}, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up query status = %d; the slot was not released cleanly", resp.StatusCode)
	}
	if out.Answer != "16" {
		t.Errorf("follow-up answer = %q, want 16", out.Answer)
	}
}
