package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/server/api"
)

// docs_replay_test replays every HTTP example in docs/plan-api.md against
// a live handler, so the documented wire format cannot drift from the
// implementation: each curl payload must be valid JSON the server accepts,
// and the documented response/annotation keys must match what it returns.

// curlRE matches the doc's curl examples, payload included (payloads are
// JSON with double quotes only, so the non-greedy single-quote span is
// safe across line breaks).
var curlRE = regexp.MustCompile(`(?s)curl -s -X POST :8088(/[a-z]+) -d '(.*?)'`)

func readPlanAPIDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "plan-api.md"))
	if err != nil {
		t.Fatalf("read docs/plan-api.md: %v", err)
	}
	return string(data)
}

// TestPlanAPIDocExamplesReplay runs every curl example from the doc and
// checks the response carries the fields the surrounding prose promises.
func TestPlanAPIDocExamplesReplay(t *testing.T) {
	doc := readPlanAPIDoc(t)
	examples := curlRE.FindAllStringSubmatch(doc, -1)
	if len(examples) < 4 {
		t.Fatalf("found %d curl examples in docs/plan-api.md, expected at least 4 (plan, dry-run, execute, analyze)", len(examples))
	}
	ts := newTestServer(t, readySystem(t), Config{})

	for i, ex := range examples {
		path, payload := ex[1], ex[2]
		t.Run(fmt.Sprintf("example_%d_%s", i+1, strings.TrimPrefix(path, "/")), func(t *testing.T) {
			var req map[string]json.RawMessage
			if err := json.Unmarshal([]byte(payload), &req); err != nil {
				t.Fatalf("documented payload is not valid JSON: %v\n%s", err, payload)
			}
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(payload))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("documented example got status %d", resp.StatusCode)
			}
			var body map[string]json.RawMessage
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatal(err)
			}

			_, hasQuestion := req["question"]
			_, hasPlan := req["plan"]
			analyze := string(req["analyze"]) == "true"

			switch path {
			case "/plan":
				var pr struct {
					Plan PlanDetail `json:"plan"`
				}
				mustUnmarshal(t, body, &pr)
				if hasQuestion && (pr.Plan.Original == nil || pr.Plan.Rewritten == nil || pr.Plan.Compiled == "") {
					t.Error("doc promises plan.original, plan.rewritten and plan.compiled on a planned question")
				}
				if hasPlan && !hasQuestion && (pr.Plan.Rewritten == nil || pr.Plan.Compiled == "") {
					t.Error("doc promises validation+rewrite+compile on a dry-run edit")
				}
				if analyze {
					if pr.Plan.Executed == nil {
						t.Fatal("doc promises plan.executed under analyze:true")
					}
					if _, ok := body["answer"]; ok {
						t.Error("doc says analyze returns no answer payload")
					}
					checkExecutedAnnotations(t, doc, pr.Plan.Executed)
				} else if pr.Plan.Executed != nil {
					t.Error("non-analyze /plan must not execute")
				}
			case "/query":
				var qr struct {
					Answer string `json:"answer"`
				}
				mustUnmarshal(t, body, &qr)
				if qr.Answer == "" {
					t.Error("doc promises an answer on executed plans")
				}
			default:
				t.Fatalf("doc documents unknown endpoint %s", path)
			}
		})
	}
}

func mustUnmarshal(t *testing.T, body map[string]json.RawMessage, out any) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, out); err != nil {
		t.Fatal(err)
	}
}

// checkExecutedAnnotations compares the runtime/exec keys in the doc's
// EXPLAIN ANALYZE example against a real executed plan: documented keys
// must exist, and real keys must be documented (retries is omitempty and
// deliberately undocumented as the one allowed extra).
func checkExecutedAnnotations(t *testing.T, doc string, executed json.RawMessage) {
	t.Helper()
	docRuntime, docExec := documentedAnnotationKeys(t, doc)

	var plan struct {
		Nodes []map[string]json.RawMessage `json:"nodes"`
		Exec  map[string]json.RawMessage   `json:"exec"`
	}
	if err := json.Unmarshal(executed, &plan); err != nil {
		t.Fatalf("decode executed plan: %v", err)
	}
	var withRuntime map[string]json.RawMessage
	for _, node := range plan.Nodes {
		if rt, ok := node["runtime"]; ok {
			var m map[string]json.RawMessage
			if err := json.Unmarshal(rt, &m); err != nil {
				t.Fatalf("decode node runtime: %v", err)
			}
			withRuntime = m
			break
		}
	}
	if withRuntime == nil {
		t.Fatal("executed plan has no node with a runtime annotation")
	}
	for key := range docRuntime {
		if _, ok := withRuntime[key]; !ok {
			t.Errorf("doc documents runtime key %q the server does not emit", key)
		}
	}
	for key := range withRuntime {
		if _, ok := docRuntime[key]; !ok && key != "retries" {
			t.Errorf("server emits runtime key %q the doc does not document", key)
		}
	}
	if plan.Exec == nil {
		t.Fatal("executed plan carries no exec summary")
	}
	for key := range docExec {
		if _, ok := plan.Exec[key]; !ok {
			t.Errorf("doc documents exec key %q the server does not emit", key)
		}
	}
	for key := range plan.Exec {
		if _, ok := docExec[key]; !ok {
			t.Errorf("server emits exec key %q the doc does not document", key)
		}
	}
}

// documentedAnnotationKeys extracts the runtime and exec key sets from the
// doc's §5 annotated-plan JSON example.
func documentedAnnotationKeys(t *testing.T, doc string) (runtime, exec map[string]bool) {
	t.Helper()
	for _, block := range fencedBlocks(doc, "json") {
		var plan struct {
			Nodes []map[string]json.RawMessage `json:"nodes"`
			Exec  map[string]json.RawMessage   `json:"exec"`
		}
		if err := json.Unmarshal([]byte(block), &plan); err != nil || plan.Exec == nil {
			continue
		}
		for _, node := range plan.Nodes {
			rt, ok := node["runtime"]
			if !ok {
				continue
			}
			var m map[string]json.RawMessage
			if err := json.Unmarshal(rt, &m); err != nil {
				t.Fatalf("doc runtime example is not valid JSON: %v", err)
			}
			runtime = map[string]bool{}
			for k := range m {
				runtime[k] = true
			}
			exec = map[string]bool{}
			for k := range plan.Exec {
				exec[k] = true
			}
			return runtime, exec
		}
	}
	t.Fatal("docs/plan-api.md has no annotated-plan JSON example with runtime + exec keys")
	return nil, nil
}

// fencedBlocks returns the contents of every ```lang fenced block.
func fencedBlocks(doc, lang string) []string {
	var out []string
	marker := "```" + lang
	for {
		start := strings.Index(doc, marker)
		if start < 0 {
			return out
		}
		doc = doc[start+len(marker):]
		end := strings.Index(doc, "```")
		if end < 0 {
			return out
		}
		out = append(out, doc[:end])
		doc = doc[end+3:]
	}
}

// ---- docs/streaming-api.md replay ----

// sseCurlRE matches the doc's streamed-query curl examples; asyncCurlRE
// matches the async-ingest submission example.
var (
	sseCurlRE   = regexp.MustCompile(`(?s)curl -sN -X POST :8088(/v1/[a-z]+) -H 'Accept: text/event-stream' -d '(.*?)'`)
	asyncCurlRE = regexp.MustCompile(`(?s)curl -s -X POST :8088(/v1/ingest) -d '(.*?)'`)
)

func readStreamingAPIDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "streaming-api.md"))
	if err != nil {
		t.Fatalf("read docs/streaming-api.md: %v", err)
	}
	return string(data)
}

// TestStreamingAPIDocExamplesReplay executes the streamed-query and
// async-ingest curl examples from docs/streaming-api.md against a live
// handler and holds them to the contract the doc states: a well-formed
// event stream with strictly increasing ids ending in one terminal
// result whose partial counts sum to its doc count, and a 202 job that
// runs to completion and stays pollable (JSON and SSE).
func TestStreamingAPIDocExamplesReplay(t *testing.T) {
	doc := readStreamingAPIDoc(t)
	// A dedicated system: the ingest example below grows the corpus, which
	// must not leak into the tests sharing readySystem.
	sys, err := buildSystem(core.Config{Seed: 7, Parallelism: 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys, Config{StreamProgress: 20 * time.Millisecond})
	ctx := context.Background()

	streamed := sseCurlRE.FindAllStringSubmatch(doc, -1)
	ranQuery := false
	for i, ex := range streamed {
		path, payload := ex[1], ex[2]
		if path != "/v1/query" {
			continue
		}
		ranQuery = true
		t.Run(fmt.Sprintf("sse_example_%d", i+1), func(t *testing.T) {
			if !json.Valid([]byte(payload)) {
				t.Fatalf("documented payload is not valid JSON:\n%s", payload)
			}
			resp := sseOpen(t, ctx, http.MethodPost, ts.URL+path, json.RawMessage(payload))
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("documented stream example got status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
				t.Fatalf("stream content type %q", ct)
			}
			events := readSSE(t, resp.Body)
			checkDocumentedStream(t, doc, events)
		})
	}
	if !ranQuery {
		t.Fatal("docs/streaming-api.md has no streamed /v1/query curl example")
	}

	ingests := asyncCurlRE.FindAllStringSubmatch(doc, -1)
	if len(ingests) == 0 {
		t.Fatal("docs/streaming-api.md has no async /v1/ingest curl example")
	}
	for i, ex := range ingests {
		path, payload := ex[1], ex[2]
		t.Run(fmt.Sprintf("ingest_example_%d", i+1), func(t *testing.T) {
			var req struct {
				Docs int `json:"docs"`
			}
			if err := json.Unmarshal([]byte(payload), &req); err != nil {
				t.Fatalf("documented payload is not valid JSON: %v\n%s", err, payload)
			}
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(payload))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("doc promises 202 Accepted, got %d", resp.StatusCode)
			}
			var acc api.JobAccepted
			if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
				t.Fatal(err)
			}
			if acc.JobID == "" || acc.Location != "/v1/jobs/"+acc.JobID {
				t.Fatalf("doc promises job_id + location: %+v", acc)
			}
			if got := resp.Header.Get("Location"); got != acc.Location {
				t.Errorf("Location header %q != body location %q", got, acc.Location)
			}
			job := pollJobDone(t, ts.URL+acc.Location)
			if job.Result == nil || job.Result.Documents < req.Docs {
				t.Fatalf("done job should carry >= %d ingested documents: %+v", req.Docs, job.Result)
			}
			// The doc's SSE poll example (placeholder job id substituted):
			// a terminal job's stream is exactly one terminal result event.
			sresp := sseOpen(t, ctx, http.MethodGet, ts.URL+acc.Location, nil)
			defer sresp.Body.Close()
			events := readSSE(t, sresp.Body)
			if len(events) == 0 || events[len(events)-1].name != api.EventResult {
				t.Fatalf("job SSE poll should end in a result event, got %v", eventNames(events))
			}
		})
	}
}

// pollJobDone polls the job URL (as the doc instructs) until terminal.
func pollJobDone(t *testing.T, url string) api.JobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		var job api.JobResponse
		err = json.NewDecoder(resp.Body).Decode(&job)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch job.State {
		case api.JobDone:
			return job
		case api.JobFailed:
			t.Fatalf("documented ingest example failed: %+v", job.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %q after deadline", job.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkDocumentedStream asserts the contract bullets the doc states for
// a streamed query, and that the doc's event table covers every event
// name the server actually emitted.
func checkDocumentedStream(t *testing.T, doc string, events []sseEvent) {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("stream carried no events")
	}
	progress, partialDocs := 0, 0
	for i, ev := range events {
		if ev.id != i+1 {
			t.Fatalf("event %d has id %d: ids must increase strictly from 1", i, ev.id)
		}
		if !strings.Contains(doc, "`"+ev.name+"`") {
			t.Errorf("server emitted event %q the doc's table does not document", ev.name)
		}
		switch ev.name {
		case api.EventProgress:
			progress++
		case api.EventPartial:
			var p api.PartialEvent
			decodeEvent(t, ev, &p)
			partialDocs += p.Count
		case api.EventResult, api.EventError:
			if i != len(events)-1 {
				t.Fatalf("terminal %s event at position %d of %d", ev.name, i+1, len(events))
			}
		}
	}
	last := events[len(events)-1]
	if last.name != api.EventResult {
		t.Fatalf("documented example should end in a result event, got %v", eventNames(events))
	}
	if progress == 0 {
		t.Error("doc promises at least one progress event per stream")
	}
	var res api.QueryResponse
	decodeEvent(t, last, &res)
	if partialDocs > 0 && partialDocs != res.Docs {
		t.Errorf("partial counts sum to %d but terminal result has %d docs", partialDocs, res.Docs)
	}
}

// TestPlanAPIDocStructuredErrors pins §4: the documented invalid plan
// comes back 400 with every documented error string in the structured
// array.
func TestPlanAPIDocStructuredErrors(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	bad := `{"plan":{"nodes":[
	  {"id":"n1","op":"queryDatabase","filters":[{"field":"hallucinated","kind":"fuzzy","value":1}]},
	  {"id":"n2","op":"llmFilter","inputs":["n1"]},
	  {"id":"n3","op":"count","inputs":["n2"]}],"output":"n3"}}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid plan: status %d, want 400", resp.StatusCode)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Code != "invalid_plan" || er.Error.Message == "" || er.TraceID == "" {
		t.Errorf("400 must carry the error envelope with code and trace_id: %+v", er)
	}
	joined := strings.Join(er.Error.Details, "\n")
	for _, want := range []string{
		`filter field "hallucinated" not in schema`,
		`unknown filter kind "fuzzy"`,
		`llmFilter requires a question`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("documented error %q missing from details array: %v", want, er.Error.Details)
		}
	}
}
