package server

import (
	"fmt"
	"net/http"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/fault"
	"aryn/internal/resilience"
)

// degradedHarness builds a small system with the resilience stack and a
// controllable injector, served behind the dev-only /faults endpoint.
func degradedHarness(t *testing.T) (ts string, inj *fault.Injector) {
	t.Helper()
	inj = fault.New(fault.Spec{})
	sys, err := buildSystem(core.Config{
		Seed:        7,
		Parallelism: 4,
		Fault:       inj,
		Resilience: &resilience.Options{
			Retry:   resilience.Policy{MaxAttempts: 2, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Seed: 1},
			Breaker: resilience.BreakerConfig{ProbeInterval: 150 * time.Millisecond},
		},
	}, 16)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, sys, Config{Fault: inj})
	t.Cleanup(func() { inj.Clear() })
	return srv.URL, inj
}

// uniqueQuestions defeat the LLM cache so every query actually exercises
// the (possibly broken) backend. The 5M+ year range is disjoint from
// every other suite's question space.
var degradedSeq int

func degradedQuestion() string {
	degradedSeq++
	return fmt.Sprintf("How many incidents were there in year %d?", 5_000_000+degradedSeq)
}

// TestDegradedModeServing pins the serving-layer degradation contract: a
// total model outage yields 200s with retrieval-only answers flagged
// degraded — never a 500 — while /healthz and /stats report the state,
// and clearing the fault recovers within one probe interval.
func TestDegradedModeServing(t *testing.T) {
	url, _ := degradedHarness(t)

	// Script a total outage longer than the test could ever run.
	var fs FaultStateResponse
	resp := postJSON(t, url+"/faults", FaultControlRequest{
		Spec: &fault.Spec{Seed: 11, Outages: []fault.Window{{StartMS: 0, EndMS: 600_000}}},
	}, &fs)
	if resp.StatusCode != http.StatusOK || !fs.Active {
		t.Fatalf("fault activation failed: %d %+v", resp.StatusCode, fs)
	}

	// Every query during the outage degrades; none may fail. Enough
	// queries to walk the breaker past its failure threshold.
	for i := 0; i < 7; i++ {
		var out QueryResponse
		resp := postJSON(t, url+"/query", QueryRequest{Question: degradedQuestion()}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d during outage: status %d, want 200 (degraded)", i, resp.StatusCode)
		}
		if !out.Degraded || out.Kind != "retrieval-only" {
			t.Fatalf("query %d during outage: degraded=%v kind=%q", i, out.Degraded, out.Kind)
		}
		if out.Answer == "" || out.DegradedReason == "" {
			t.Fatalf("query %d: degraded response missing answer (%q) or reason (%q)", i, out.Answer, out.DegradedReason)
		}
	}

	// The state is observable.
	var health map[string]any
	if resp := getJSON(t, url+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d; degraded must stay live", resp.StatusCode)
	}
	if health["status"] != "degraded" {
		t.Errorf("healthz status = %v, want degraded", health["status"])
	}
	var stats StatsResponse
	getJSON(t, url+"/stats", &stats)
	if !stats.Degraded || stats.DegradedServed < 7 {
		t.Errorf("stats degraded=%v served=%d, want degraded with ≥7 served", stats.Degraded, stats.DegradedServed)
	}
	if stats.Resilience == nil || stats.Resilience.Breaker.State == "closed" {
		t.Errorf("breaker did not open across a sustained outage: %+v", stats.Resilience)
	}
	if q := stats.Endpoints["/query"]; q.ServerErrors != 0 {
		t.Errorf("/query produced %d server errors during the outage; the contract is zero 500s", q.ServerErrors)
	}

	// Clearing the fault recovers within a probe interval (plus slack).
	postJSON(t, url+"/faults", FaultControlRequest{Clear: true}, &fs)
	if fs.Active {
		t.Fatalf("injector still active after clear: %+v", fs)
	}
	probe := 150 * time.Millisecond
	deadline := time.Now().Add(2*probe + 10*time.Second)
	for {
		var out QueryResponse
		resp := postJSON(t, url+"/query", QueryRequest{Question: degradedQuestion()}, &out)
		if resp.StatusCode == http.StatusOK && !out.Degraded {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("still degraded %s after the fault cleared (status %d)", 2*probe+10*time.Second, resp.StatusCode)
		}
		time.Sleep(probe / 4)
	}
	getJSON(t, url+"/healthz", &health)
	if health["status"] != "ok" {
		t.Errorf("healthz status = %v after recovery, want ok", health["status"])
	}
}

// TestFaultsEndpointAbsentByDefault: without a wired injector the chaos
// surface does not exist.
func TestFaultsEndpointAbsentByDefault(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	resp, err := http.Get(ts.URL + "/faults")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/faults on a production server = %d, want 404", resp.StatusCode)
	}
}

// TestQueryTimeoutBudget: a tight RequestTimeout turns a wedged query
// into a 504, not a hang.
func TestQueryTimeoutBudget(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{RequestTimeout: time.Nanosecond})
	var out errorResponse
	resp := postJSON(t, ts.URL+"/query", QueryRequest{Question: "How many incidents were there in year 6000001?"}, &out)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 when the request budget fires", resp.StatusCode)
	}
	if out.Error.Code != "timeout" || out.Error.Message == "" || out.TraceID == "" {
		t.Errorf("timeout error envelope incomplete: %+v", out)
	}
}
