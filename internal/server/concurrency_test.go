package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestConcurrentMixedWorkload drives 32 concurrent clients — half
// stateful /chat sessions, half one-shot /query — through one server
// with a deliberately tight admission gate over a latency-bearing LLM,
// asserting the three properties the serving layer exists for:
//
//  1. session integrity: every chat client sees its own session ID and a
//     strictly incrementing turn counter — no lost or interleaved state;
//  2. load shedding: saturation produces 429s (clients retry) instead of
//     unbounded queueing — the waiter high-water mark never exceeds
//     MaxWaiters;
//  3. determinism: identical one-shot questions get identical answers
//     regardless of interleaving.
//
// Run with -race (CI does): it doubles as the data-race audit of the
// session table, conversation locking, and the Prepare swap.
func TestConcurrentMixedWorkload(t *testing.T) {
	sys := latencySystem(t)
	cfg := Config{
		MaxInFlight: 4,
		MaxWaiters:  8,
		QueueWait:   100 * time.Millisecond,
	}
	ts := newTestServer(t, sys, cfg)

	const (
		chatClients  = 16
		queryClients = 16
		turns        = 4
	)
	chatScript := [turns]string{
		"How many incidents involved substantial damage?",
		"what about destroyed aircraft?",
		"How many incidents were there by state?",
		"what about substantial damage?",
	}
	queryQuestions := [4]string{
		"How many incidents were there?",
		"How many incidents were there by state?",
		"How many incidents involved substantial damage?",
		"Which state had the most incidents?",
	}

	// do posts the request, retrying on 429 (the contract: shed clients
	// back off and come back). Any other non-200 is a test failure.
	do := func(t *testing.T, req any, path string, out any) bool {
		body, err := json.Marshal(req)
		if err != nil {
			t.Error(err)
			return false
		}
		for attempt := 0; attempt < 200; attempt++ {
			resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return false
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				resp.Body.Close()
				time.Sleep(time.Duration(5+attempt) * time.Millisecond)
				continue
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s status = %d", path, resp.StatusCode)
				resp.Body.Close()
				return false
			}
			err = json.NewDecoder(resp.Body).Decode(out)
			resp.Body.Close()
			if err != nil {
				t.Errorf("decode %s: %v", path, err)
				return false
			}
			return true
		}
		t.Errorf("%s still shed after 200 retries", path)
		return false
	}

	start := make(chan struct{})
	var wg sync.WaitGroup

	// Chat clients: one session each, sequential turns.
	for c := 0; c < chatClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			sessionID := ""
			for turn := 1; turn <= turns; turn++ {
				var out ChatResponse
				if !do(t, ChatRequest{SessionID: sessionID, Question: chatScript[turn-1]}, "/chat", &out) {
					return
				}
				if turn == 1 {
					sessionID = out.SessionID
					if sessionID == "" {
						t.Errorf("chat client %d: empty session ID", c)
						return
					}
				} else if out.SessionID != sessionID {
					t.Errorf("chat client %d: session hopped %q → %q", c, sessionID, out.SessionID)
					return
				}
				if out.Turn != turn {
					t.Errorf("chat client %d: turn = %d, want %d (lost/interleaved session state)",
						c, out.Turn, turn)
					return
				}
			}
		}(c)
	}

	// Query clients: one-shot questions; record answers per question to
	// check cross-client determinism.
	answers := make([]map[string]string, queryClients)
	for c := 0; c < queryClients; c++ {
		answers[c] = make(map[string]string)
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			for i := 0; i < turns; i++ {
				q := queryQuestions[(c+i)%len(queryQuestions)]
				var out QueryResponse
				if !do(t, QueryRequest{Question: q}, "/query", &out) {
					return
				}
				if out.Answer == "" {
					t.Errorf("query client %d: empty answer for %q", c, q)
					return
				}
				answers[c][q] = out.Answer
			}
		}(c)
	}

	close(start)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Determinism across interleavings: every client that asked question
	// q got the same answer.
	canonical := map[string]string{}
	for c, m := range answers {
		for q, a := range m {
			if want, seen := canonical[q]; !seen {
				canonical[q] = a
			} else if a != want {
				t.Errorf("client %d: answer for %q = %q, others saw %q", c, q, a, want)
			}
		}
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Gate.Shed == 0 {
		t.Error("32 clients against 4 slots + 8 waiters should shed at least once")
	}
	if stats.Gate.WaitersHigh > int64(cfg.MaxWaiters) {
		t.Errorf("waiter high-water %d exceeds MaxWaiters %d — queue is not bounded",
			stats.Gate.WaitersHigh, cfg.MaxWaiters)
	}
	if stats.Gate.InFlight != 0 || stats.Gate.Waiters != 0 {
		t.Errorf("gate should be drained: %+v", stats.Gate)
	}
	if stats.Sessions.Live != chatClients {
		t.Errorf("live sessions = %d, want %d", stats.Sessions.Live, chatClients)
	}
}
