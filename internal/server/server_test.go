package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/llm"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

// sharedSystem ingests one small corpus per test binary; individual tests
// layer their own Server (sessions, gate) over it.
var (
	sharedOnce sync.Once
	sharedSys  *core.System
	sharedErr  error
)

func readySystem(t *testing.T) *core.System {
	t.Helper()
	sharedOnce.Do(func() {
		sharedSys, sharedErr = buildSystem(core.Config{Seed: 7, Parallelism: 4}, 16)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedSys
}

// slowSystem carries simulated per-dispatch LLM latency so saturation
// tests get guaranteed request overlap.
var (
	slowOnce sync.Once
	slowSys  *core.System
	slowErr  error
)

func latencySystem(t *testing.T) *core.System {
	t.Helper()
	slowOnce.Do(func() {
		slowSys, slowErr = buildSystem(core.Config{
			Seed:        7,
			Parallelism: 4,
			LLMOptions:  []llm.SimOption{llm.WithLatency(10 * time.Millisecond)},
		}, 10)
	})
	if slowErr != nil {
		t.Fatal(slowErr)
	}
	return slowSys
}

// buildSystem wires a system and ingests docs synthetic accidents.
func buildSystem(cfg core.Config, docs int) (*core.System, error) {
	sys := core.New(cfg)
	if docs > 0 {
		corpus, err := ntsb.GenerateCorpus(docs, 42)
		if err != nil {
			return nil, err
		}
		blobs, err := corpus.Blobs()
		if err != nil {
			return nil, err
		}
		if _, err := sys.Ingest(context.Background(), blobs); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// newTestServer stands up a Server over sys behind an httptest listener.
func newTestServer(t *testing.T, sys *core.System, cfg Config) *httptest.Server {
	t.Helper()
	srv := New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// postJSON posts v and decodes the response body into out (if non-nil).
func postJSON(t *testing.T, url string, v any, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func TestHealthzReportsReadiness(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	var body map[string]any
	resp := getJSON(t, ts.URL+"/healthz", &body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	if body["status"] != "ok" || body["ready"] != true {
		t.Errorf("healthz body = %+v", body)
	}
	if resp.Header.Get("X-Trace-Id") == "" || body["trace_id"] == "" {
		t.Error("healthz should carry a trace ID in header and body")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	var out QueryResponse
	resp := postJSON(t, ts.URL+"/query",
		QueryRequest{Question: "How many incidents were there?", IncludePlan: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	if out.Answer == "" || out.Kind != string(luna.AnswerNumber) {
		t.Errorf("query answer = %q kind = %q", out.Answer, out.Kind)
	}
	if out.Plan == nil || !strings.Contains(string(out.Plan.Rewritten), luna.OpQueryDatabase) {
		t.Errorf("include_plan should attach the rewritten plan, got %+v", out.Plan)
	}
	if out.Plan != nil && (len(out.Plan.Original) == 0 || out.Plan.Compiled == "") {
		t.Errorf("include_plan should carry the original plan and the compiled pipeline, got %+v", out.Plan)
	}
	if out.TraceID == "" || out.TraceID != resp.Header.Get("X-Trace-Id") {
		t.Errorf("trace mismatch: body %q header %q", out.TraceID, resp.Header.Get("X-Trace-Id"))
	}
}

func TestQueryRAG(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	var out QueryResponse
	resp := postJSON(t, ts.URL+"/query",
		QueryRequest{Question: "How many incidents involved substantial damage?", RAG: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rag query status = %d", resp.StatusCode)
	}
	if out.Kind != "rag" || out.Answer == "" {
		t.Errorf("rag response = %+v", out)
	}
}

func TestQueryValidation(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	var errOut errorResponse
	if resp := postJSON(t, ts.URL+"/query", QueryRequest{}, &errOut); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty question status = %d", resp.StatusCode)
	}
	if errOut.Error.Code != "bad_request" || errOut.Error.Message == "" || errOut.TraceID == "" {
		t.Errorf("error envelope should carry code + message + trace_id: %+v", errOut)
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d, want 405", resp.StatusCode)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{MaxBodyBytes: 256})
	big := QueryRequest{Question: strings.Repeat("x", 1024)}
	resp := postJSON(t, ts.URL+"/query", big, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

func TestQueryBeforeIngestConflicts(t *testing.T) {
	sys, err := buildSystem(core.Config{Seed: 3, Parallelism: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys, Config{})
	resp := postJSON(t, ts.URL+"/query", QueryRequest{Question: "anything?"}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("query before ingest status = %d, want 409", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/query", QueryRequest{Question: "anything?", RAG: true}, nil)
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("RAG query before ingest status = %d, want 409", resp.StatusCode)
	}
}

func TestIngestGeneratedCorpusThenQuery(t *testing.T) {
	sys, err := buildSystem(core.Config{Seed: 3, Parallelism: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys, Config{})

	var ing IngestResponse
	resp := postJSON(t, ts.URL+"/ingest", IngestRequest{Docs: 6, Seed: 11}, &ing)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	if ing.Documents != 6 || ing.Chunks == 0 || ing.Usage.Calls == 0 {
		t.Errorf("ingest response = %+v", ing)
	}

	var out QueryResponse
	if resp := postJSON(t, ts.URL+"/query", QueryRequest{Question: "How many incidents were there?"}, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest query status = %d", resp.StatusCode)
	}
	if out.Answer != "6" {
		t.Errorf("count after 6-doc ingest = %q", out.Answer)
	}
}

func TestIngestValidation(t *testing.T) {
	sys, err := buildSystem(core.Config{Seed: 3, Parallelism: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, sys, Config{MaxIngestDocs: 10})
	if resp := postJSON(t, ts.URL+"/ingest", IngestRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty ingest status = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/ingest", IngestRequest{Docs: 11}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("over-cap ingest status = %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/ingest", IngestRequest{Blobs: map[string]string{"x": "not-base64!"}}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad base64 ingest status = %d, want 400", resp.StatusCode)
	}
}

func TestChatSessionFollowUp(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})

	var first ChatResponse
	resp := postJSON(t, ts.URL+"/chat",
		ChatRequest{Question: "How many incidents involved substantial damage?"}, &first)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chat status = %d", resp.StatusCode)
	}
	if first.SessionID == "" || first.Turn != 1 {
		t.Fatalf("first chat turn = %+v", first)
	}

	var second ChatResponse
	resp = postJSON(t, ts.URL+"/chat",
		ChatRequest{SessionID: first.SessionID, Question: "what about destroyed aircraft?"}, &second)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up status = %d", resp.StatusCode)
	}
	if second.SessionID != first.SessionID || second.Turn != 2 {
		t.Errorf("follow-up = %+v, want same session turn 2", second)
	}
	if second.Answer == first.Answer {
		t.Logf("note: follow-up answer equals first answer (%q)", second.Answer)
	}

	if resp := postJSON(t, ts.URL+"/chat",
		ChatRequest{SessionID: "nope", Question: "hello?"}, nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session status = %d, want 404", resp.StatusCode)
	}
}

func TestChatSessionEviction(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{SessionTTL: 150 * time.Millisecond})

	var first ChatResponse
	if resp := postJSON(t, ts.URL+"/chat",
		ChatRequest{Question: "How many incidents were there?"}, &first); resp.StatusCode != http.StatusOK {
		t.Fatalf("chat status = %d", resp.StatusCode)
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		resp := postJSON(t, ts.URL+"/chat",
			ChatRequest{SessionID: first.SessionID, Question: "How many incidents were there?"}, nil)
		if resp.StatusCode == http.StatusNotFound {
			break // evicted
		}
		if time.Now().After(deadline) {
			t.Fatal("session never evicted after TTL")
		}
		time.Sleep(200 * time.Millisecond)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Sessions.Evicted == 0 {
		t.Errorf("stats should count evictions: %+v", stats.Sessions)
	}
}

func TestFailedFirstChatDoesNotLeakSession(t *testing.T) {
	// A 1ns request deadline makes the first Ask fail after the session
	// was created; the client never learned the ID, so the slot must be
	// reclaimed immediately rather than leak until TTL eviction.
	ts := newTestServer(t, readySystem(t), Config{RequestTimeout: time.Nanosecond})
	// A question no other test asks, so the LLM cache cannot short-circuit
	// the deadline.
	resp := postJSON(t, ts.URL+"/chat",
		ChatRequest{Question: "How many incidents were there in Wyoming?"}, nil)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline chat status = %d, want 504", resp.StatusCode)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/stats", &stats)
	if stats.Sessions.Live != 0 {
		t.Errorf("failed first chat leaked %d session(s)", stats.Sessions.Live)
	}
}

func TestSessionCapSheds(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{MaxSessions: 1})
	if resp := postJSON(t, ts.URL+"/chat",
		ChatRequest{Question: "How many incidents were there?"}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first session status = %d", resp.StatusCode)
	}
	resp := postJSON(t, ts.URL+"/chat",
		ChatRequest{Question: "How many incidents were there?"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-cap session status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("session shed should carry Retry-After")
	}
}

func TestStatsSnapshot(t *testing.T) {
	ts := newTestServer(t, readySystem(t), Config{})
	postJSON(t, ts.URL+"/query", QueryRequest{Question: "How many incidents were there?"}, nil)

	var stats StatsResponse
	resp := getJSON(t, ts.URL+"/stats", &stats)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if !stats.Ready || stats.Docs == 0 || stats.Chunks == 0 {
		t.Errorf("stats readiness = %+v", stats)
	}
	if stats.Requests < 2 || stats.Gate.Admitted == 0 {
		t.Errorf("stats counters = requests %d admitted %d", stats.Requests, stats.Gate.Admitted)
	}
	if stats.Usage.Calls == 0 {
		t.Errorf("stats should expose cumulative LLM usage: %+v", stats.Usage)
	}
}

func TestGateBoundsWaitersAndSheds(t *testing.T) {
	g := newGate(1, 2, 30*time.Millisecond)
	release, ok := g.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire should succeed")
	}

	// With the only slot held, every waiter times out and is shed; the
	// queue never exceeds maxWaiters.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rel, ok := g.acquire(context.Background()); ok {
				rel()
				t.Error("acquire should shed while the slot is held")
			}
		}()
	}
	wg.Wait()
	st := g.stats()
	if st.Shed != 8 {
		t.Errorf("shed = %d, want 8", st.Shed)
	}
	if st.WaitersHigh > 2 {
		t.Errorf("waiters high-water = %d, want ≤ 2", st.WaitersHigh)
	}

	release()
	release() // double release must be harmless
	if rel, ok := g.acquire(context.Background()); !ok {
		t.Error("acquire after release should succeed")
	} else {
		rel()
	}
	if got := g.stats().InFlight; got != 0 {
		t.Errorf("in-flight after drain = %d", got)
	}
}

func TestAdmission429OverHTTP(t *testing.T) {
	ts := newTestServer(t, latencySystem(t), Config{
		MaxInFlight: 1,
		MaxWaiters:  1,
		QueueWait:   20 * time.Millisecond,
	})

	const clients = 12
	statuses := make(chan int, clients)
	retryAfter := make(chan string, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Distinct questions defeat the LLM cache + singleflight so
			// each request does real work and holds its slot.
			body, _ := json.Marshal(QueryRequest{
				Question: fmt.Sprintf("How many incidents were there in year %d?", 2000+i),
			})
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			statuses <- resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter <- resp.Header.Get("Retry-After")
			}
		}(i)
	}
	close(start)
	wg.Wait()
	close(statuses)
	close(retryAfter)

	shed, served := 0, 0
	for code := range statuses {
		switch code {
		case http.StatusTooManyRequests:
			shed++
		case http.StatusOK:
			served++
		default:
			t.Errorf("unexpected status %d", code)
		}
	}
	if served == 0 {
		t.Error("some requests should be served")
	}
	if shed == 0 {
		t.Error("a 12-client burst against 1 slot + 1 waiter should shed")
	}
	for ra := range retryAfter {
		if ra == "" {
			t.Error("429 should carry Retry-After")
		}
	}
}
