package layout

import (
	"fmt"
	"sort"
	"strings"

	"aryn/internal/docmodel"
)

// GroundTruth is one annotated region.
type GroundTruth struct {
	ImageID string
	Box     docmodel.BBox
	Type    docmodel.ElementType
}

// Pred is one detection.
type Pred struct {
	ImageID    string
	Box        docmodel.BBox
	Type       docmodel.ElementType
	Confidence float64
}

// ClassResult is the per-class evaluation outcome.
type ClassResult struct {
	AP    float64
	AR    float64
	NumGT int
}

// Result is the aggregate COCO evaluation.
type Result struct {
	// MAP is mean average precision over IoU in [.50:.05:.95] and classes.
	MAP float64
	// MAR is mean average recall over the same thresholds and classes.
	MAR float64
	// PerClass breaks results down by layout class.
	PerClass map[docmodel.ElementType]ClassResult
}

// iouThresholds is the standard COCO sweep.
var iouThresholds = func() []float64 {
	var out []float64
	for t := 0.50; t < 0.951; t += 0.05 {
		out = append(out, t)
	}
	return out
}()

// maxDetsPerImage is COCO's AR@100 detection cap.
const maxDetsPerImage = 100

// Evaluate computes COCO mAP/mAR for the predictions against the ground
// truth. Classes with no ground-truth instances are excluded from the
// means, matching the COCO convention.
func Evaluate(gts []GroundTruth, preds []Pred) Result {
	res := Result{PerClass: map[docmodel.ElementType]ClassResult{}}
	var mapSum, marSum float64
	classes := 0
	for _, cls := range docmodel.AllElementTypes() {
		cr := evaluateClass(cls, gts, preds)
		if cr.NumGT == 0 {
			continue
		}
		res.PerClass[cls] = cr
		mapSum += cr.AP
		marSum += cr.AR
		classes++
	}
	if classes > 0 {
		res.MAP = mapSum / float64(classes)
		res.MAR = marSum / float64(classes)
	}
	return res
}

func evaluateClass(cls docmodel.ElementType, gts []GroundTruth, preds []Pred) ClassResult {
	// Ground truth per image.
	gtByImage := map[string][]docmodel.BBox{}
	totalGT := 0
	for _, g := range gts {
		if g.Type != cls {
			continue
		}
		gtByImage[g.ImageID] = append(gtByImage[g.ImageID], g.Box)
		totalGT++
	}
	if totalGT == 0 {
		return ClassResult{}
	}

	// Class predictions, capped per image, sorted by confidence.
	perImage := map[string]int{}
	var cp []Pred
	// Stable per-image cap: order by confidence first.
	all := make([]Pred, 0)
	for _, p := range preds {
		if p.Type == cls {
			all = append(all, p)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Confidence > all[j].Confidence })
	for _, p := range all {
		if perImage[p.ImageID] >= maxDetsPerImage {
			continue
		}
		perImage[p.ImageID]++
		cp = append(cp, p)
	}

	var apSum, arSum float64
	for _, thr := range iouThresholds {
		ap, recall := prAtThreshold(cp, gtByImage, totalGT, thr)
		apSum += ap
		arSum += recall
	}
	n := float64(len(iouThresholds))
	return ClassResult{AP: apSum / n, AR: arSum / n, NumGT: totalGT}
}

// prAtThreshold computes 101-point interpolated AP and final recall at one
// IoU threshold.
func prAtThreshold(preds []Pred, gtByImage map[string][]docmodel.BBox, totalGT int, thr float64) (ap, recall float64) {
	matched := map[string][]bool{}
	for img, boxes := range gtByImage {
		matched[img] = make([]bool, len(boxes))
	}
	tp := make([]bool, len(preds))
	for i, p := range preds {
		boxes := gtByImage[p.ImageID]
		bestIoU, bestJ := 0.0, -1
		for j, g := range boxes {
			if matched[p.ImageID][j] {
				continue
			}
			if iou := p.Box.IoU(g); iou >= thr && iou > bestIoU {
				bestIoU, bestJ = iou, j
			}
		}
		if bestJ >= 0 {
			matched[p.ImageID][bestJ] = true
			tp[i] = true
		}
	}
	// Precision/recall curve.
	var cumTP, cumFP int
	precisions := make([]float64, len(preds))
	recalls := make([]float64, len(preds))
	for i := range preds {
		if tp[i] {
			cumTP++
		} else {
			cumFP++
		}
		precisions[i] = float64(cumTP) / float64(cumTP+cumFP)
		recalls[i] = float64(cumTP) / float64(totalGT)
	}
	// Monotone non-increasing precision envelope from the right.
	for i := len(precisions) - 2; i >= 0; i-- {
		if precisions[i+1] > precisions[i] {
			precisions[i] = precisions[i+1]
		}
	}
	// 101-point interpolation.
	var sum float64
	for r := 0; r <= 100; r++ {
		target := float64(r) / 100
		// First index with recall >= target.
		idx := sort.Search(len(recalls), func(i int) bool { return recalls[i] >= target })
		if idx < len(precisions) {
			sum += precisions[idx]
		}
	}
	ap = sum / 101
	if len(recalls) > 0 {
		recall = recalls[len(recalls)-1]
	}
	return ap, recall
}

// String renders the result as a report row.
func (r Result) String() string {
	return fmt.Sprintf("mAP=%.3f mAR=%.3f", r.MAP, r.MAR)
}

// ClassTable renders the per-class breakdown.
func (r Result) ClassTable() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %8s %6s\n", "class", "AP", "AR", "#gt")
	for _, cls := range docmodel.AllElementTypes() {
		cr, ok := r.PerClass[cls]
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "%-16s %8.3f %8.3f %6d\n", cls, cr.AP, cr.AR, cr.NumGT)
	}
	return sb.String()
}
