// Package layout provides the segmentation benchmark of §4.1: a
// synthetic multi-domain labeled page corpus standing in for the
// DocLayNet competition set, and a faithful COCO-style evaluator
// (mAP@[.50:.95] and mAR) for ranking segmentation services — the
// methodology behind Table 1.
//
// Paper counterpart: the DocLayNet evaluation of §4.1 (Table 1).
//
// Concurrency: pure functions over caller-owned data; no shared state.
// Evaluations of different pages may run in parallel freely.
package layout
