package layout

import (
	"strings"
	"testing"

	"aryn/internal/docmodel"
)

func TestGenerateCorpusDeterministic(t *testing.T) {
	a := GenerateCorpus(10, 42)
	b := GenerateCorpus(10, 42)
	if len(a.Docs) != 10 || len(b.Docs) != 10 {
		t.Fatal("wrong corpus size")
	}
	for i := range a.Docs {
		if a.Docs[i].Stats() != b.Docs[i].Stats() {
			t.Fatalf("doc %d differs across runs: %s vs %s", i, a.Docs[i].Stats(), b.Docs[i].Stats())
		}
	}
	c := GenerateCorpus(10, 43)
	if a.Docs[0].Stats() == c.Docs[0].Stats() {
		t.Error("different seeds should differ")
	}
}

func TestCorpusCoversDomainsAndClasses(t *testing.T) {
	corpus := GenerateCorpus(25, 7)
	domains := map[string]bool{}
	for _, d := range corpus.Docs {
		domains[strings.SplitN(d.ID, "-", 2)[0]] = true
	}
	if len(domains) != 5 {
		t.Errorf("domains covered = %v", domains)
	}
	byType := map[docmodel.ElementType]int{}
	for _, g := range corpus.GroundTruths() {
		byType[g.Type]++
	}
	for _, et := range docmodel.AllElementTypes() {
		if byType[et] == 0 {
			t.Errorf("corpus has no %v regions", et)
		}
	}
	if corpus.Pages() < 25 {
		t.Errorf("pages = %d, want >= docs", corpus.Pages())
	}
}

func TestEvaluateSegmenterOrderingMatchesTable1(t *testing.T) {
	// The headline reproduction check: DocParse must beat Textract, which
	// must beat Unstructured, which must beat Azure, in mAP — and DocParse's
	// lead must be roughly the paper's 1.5-2.4x factor.
	results := RunTable1(20, 11)
	if len(results) != 4 {
		t.Fatalf("services = %d", len(results))
	}
	maps := map[string]float64{}
	for _, r := range results {
		maps[r.Service] = r.Result.MAP
	}
	dp, tx, un, az := maps["DocParse"], maps["Amazon Textract"], maps["Unstructured (YoloX)"], maps["Azure AI Document Intelligence"]
	if !(dp > tx && tx > un && un > az) {
		t.Errorf("ordering wrong: dp=%.3f tx=%.3f un=%.3f az=%.3f", dp, tx, un, az)
	}
	// Paper factors: DocParse is 1.5x Textract and 2.4x Azure in mAP.
	if ratio := dp / tx; ratio < 1.2 || ratio > 2.0 {
		t.Errorf("DocParse/Textract ratio %.2f outside paper band (~1.5)", ratio)
	}
	if ratio := dp / az; ratio < 1.8 || ratio > 3.2 {
		t.Errorf("DocParse/Azure ratio %.2f outside paper band (~2.4)", ratio)
	}
	// mAR ordering: DocParse first, all within the paper's rough bands.
	for _, r := range results {
		if r.Result.MAR <= r.Result.MAP-0.2 {
			t.Errorf("%s: mAR %.3f implausibly below mAP %.3f", r.Service, r.Result.MAR, r.Result.MAP)
		}
	}
	table := FormatTable1(results)
	if !strings.Contains(table, "DocParse") || !strings.Contains(table, "mAP") {
		t.Errorf("FormatTable1 malformed:\n%s", table)
	}
}
