package layout

import (
	"math"
	"testing"

	"aryn/internal/docmodel"
)

func box(x0, y0, x1, y1 float64) docmodel.BBox { return docmodel.BBox{X0: x0, Y0: y0, X1: x1, Y1: y1} }

func TestPerfectDetectionsScoreOne(t *testing.T) {
	gts := []GroundTruth{
		{ImageID: "p1", Box: box(0, 0, 100, 50), Type: docmodel.Text},
		{ImageID: "p1", Box: box(0, 60, 100, 120), Type: docmodel.Table},
		{ImageID: "p2", Box: box(0, 0, 80, 40), Type: docmodel.Text},
	}
	var preds []Pred
	for _, g := range gts {
		preds = append(preds, Pred{ImageID: g.ImageID, Box: g.Box, Type: g.Type, Confidence: 0.9})
	}
	r := Evaluate(gts, preds)
	if math.Abs(r.MAP-1) > 1e-9 || math.Abs(r.MAR-1) > 1e-9 {
		t.Errorf("perfect predictions: mAP=%.4f mAR=%.4f", r.MAP, r.MAR)
	}
	if len(r.PerClass) != 2 {
		t.Errorf("classes evaluated = %d, want 2", len(r.PerClass))
	}
}

func TestNoDetectionsScoreZero(t *testing.T) {
	gts := []GroundTruth{{ImageID: "p1", Box: box(0, 0, 10, 10), Type: docmodel.Text}}
	r := Evaluate(gts, nil)
	if r.MAP != 0 || r.MAR != 0 {
		t.Errorf("no preds: mAP=%v mAR=%v", r.MAP, r.MAR)
	}
}

func TestWrongLabelScoresZero(t *testing.T) {
	gts := []GroundTruth{{ImageID: "p1", Box: box(0, 0, 10, 10), Type: docmodel.Text}}
	preds := []Pred{{ImageID: "p1", Box: box(0, 0, 10, 10), Type: docmodel.Table, Confidence: 0.9}}
	r := Evaluate(gts, preds)
	if r.MAP != 0 {
		t.Errorf("label mismatch should score 0, got %v", r.MAP)
	}
}

func TestWrongImageScoresZero(t *testing.T) {
	gts := []GroundTruth{{ImageID: "p1", Box: box(0, 0, 10, 10), Type: docmodel.Text}}
	preds := []Pred{{ImageID: "p2", Box: box(0, 0, 10, 10), Type: docmodel.Text, Confidence: 0.9}}
	if r := Evaluate(gts, preds); r.MAP != 0 {
		t.Errorf("cross-image match should score 0, got %v", r.MAP)
	}
}

func TestLocalizationSensitivity(t *testing.T) {
	// A prediction with IoU ~0.6 passes low thresholds but fails high ones:
	// AP must land strictly between 0 and 1.
	gts := []GroundTruth{{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text}}
	preds := []Pred{{ImageID: "p1", Box: box(0, 20, 100, 100), Type: docmodel.Text, Confidence: 0.9}} // IoU 0.8
	r := Evaluate(gts, preds)
	if r.MAP <= 0.5 || r.MAP >= 1 {
		t.Errorf("partial-overlap mAP = %.3f, want in (0.5, 1)", r.MAP)
	}
}

func TestDuplicateDetectionSemantics(t *testing.T) {
	gts := []GroundTruth{{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text}}

	// COCO subtlety: a duplicate ranked BELOW the matching detection is an
	// FP but cannot reduce AP — full recall was already reached at
	// precision 1, and the interpolated envelope ignores later points.
	lowDup := []Pred{
		{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text, Confidence: 0.95},
		{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text, Confidence: 0.90},
	}
	if r := Evaluate(gts, lowDup); math.Abs(r.MAP-1) > 1e-9 {
		t.Errorf("low-ranked duplicate must not reduce AP: %.3f", r.MAP)
	}

	// But a higher-confidence near-miss duplicate (IoU ~0.8) consumes the
	// high thresholds' match budget as an FP ranked first, dragging AP.
	highDup := []Pred{
		{ImageID: "p1", Box: box(0, 20, 100, 100), Type: docmodel.Text, Confidence: 0.99}, // IoU 0.8
		{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text, Confidence: 0.90},
	}
	single := Evaluate(gts, highDup[1:])
	dup := Evaluate(gts, highDup)
	if dup.MAP >= single.MAP {
		t.Errorf("high-ranked near-miss duplicate should reduce AP: %.3f vs %.3f", dup.MAP, single.MAP)
	}
	if dup.MAR != single.MAR {
		t.Errorf("duplicates must not change recall: %.3f vs %.3f", dup.MAR, single.MAR)
	}
}

func TestConfidenceOrderingMatters(t *testing.T) {
	// A high-confidence FP before the TP drags the precision curve down.
	gts := []GroundTruth{{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text}}
	tpFirst := []Pred{
		{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text, Confidence: 0.9},
		{ImageID: "p1", Box: box(300, 300, 400, 400), Type: docmodel.Text, Confidence: 0.1},
	}
	fpFirst := []Pred{
		{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text, Confidence: 0.1},
		{ImageID: "p1", Box: box(300, 300, 400, 400), Type: docmodel.Text, Confidence: 0.9},
	}
	a := Evaluate(gts, tpFirst)
	b := Evaluate(gts, fpFirst)
	if a.MAP <= b.MAP {
		t.Errorf("confidence ordering should matter: tp-first %.3f vs fp-first %.3f", a.MAP, b.MAP)
	}
}

func TestClassesWithoutGTExcluded(t *testing.T) {
	gts := []GroundTruth{{ImageID: "p1", Box: box(0, 0, 10, 10), Type: docmodel.Text}}
	preds := []Pred{
		{ImageID: "p1", Box: box(0, 0, 10, 10), Type: docmodel.Text, Confidence: 0.9},
		// Spurious detection in a class with no GT must not affect means.
		{ImageID: "p1", Box: box(50, 50, 60, 60), Type: docmodel.Formula, Confidence: 0.9},
	}
	r := Evaluate(gts, preds)
	if math.Abs(r.MAP-1) > 1e-9 {
		t.Errorf("no-GT class leaked into mAP: %v", r.MAP)
	}
	if _, ok := r.PerClass[docmodel.Formula]; ok {
		t.Error("no-GT class should be excluded from PerClass")
	}
}

func TestRecallCountsMissedGT(t *testing.T) {
	gts := []GroundTruth{
		{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text},
		{ImageID: "p1", Box: box(0, 200, 100, 300), Type: docmodel.Text},
	}
	preds := []Pred{{ImageID: "p1", Box: box(0, 0, 100, 100), Type: docmodel.Text, Confidence: 0.9}}
	r := Evaluate(gts, preds)
	if math.Abs(r.MAR-0.5) > 1e-9 {
		t.Errorf("half-recall expected, got %.3f", r.MAR)
	}
}
