package layout

import (
	"fmt"
	"strings"

	"aryn/internal/vision"
)

// ServiceResult is one Table 1 row.
type ServiceResult struct {
	Service string
	Result  Result
}

// EvaluateSegmenter runs a segmenter over every page of the corpus and
// scores it against the ground truth.
func EvaluateSegmenter(c *Corpus, seg vision.Segmenter) Result {
	gts := c.GroundTruths()
	var preds []Pred
	for _, d := range c.Docs {
		for _, p := range d.Pages {
			imageID := fmt.Sprintf("%s/%d", d.ID, p.Number)
			for _, det := range seg.Segment(p, imageID) {
				preds = append(preds, Pred{
					ImageID:    imageID,
					Box:        det.Box,
					Type:       det.Type,
					Confidence: det.Confidence,
				})
			}
		}
	}
	return Evaluate(gts, preds)
}

// Table1Services returns the four evaluated services with their calibrated
// profiles, in the paper's row order.
func Table1Services(seed int64) []vision.Segmenter {
	return []vision.Segmenter{
		vision.NewModel("DocParse", seed, vision.ProfileDocParse()),
		vision.NewModel("Amazon Textract", seed, vision.ProfileTextract()),
		vision.NewModel("Unstructured (YoloX)", seed, vision.ProfileUnstructured()),
		vision.NewModel("Azure AI Document Intelligence", seed, vision.ProfileAzure()),
	}
}

// RunTable1 regenerates Table 1: segmentation performance of the four
// services on the synthetic DocLayNet-style benchmark.
func RunTable1(nDocs int, seed int64) []ServiceResult {
	corpus := GenerateCorpus(nDocs, seed)
	var out []ServiceResult
	for _, seg := range Table1Services(seed + 1) {
		out = append(out, ServiceResult{Service: seg.Name(), Result: EvaluateSegmenter(corpus, seg)})
	}
	return out
}

// FormatTable1 renders results in the paper's Table 1 layout.
func FormatTable1(results []ServiceResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %8s %8s\n", "Service", "mAP", "mAR")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-34s %8.3f %8.3f\n", r.Service, r.Result.MAP, r.Result.MAR)
	}
	return sb.String()
}
