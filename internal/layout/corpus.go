package layout

import (
	"fmt"
	"math/rand"
	"strings"

	"aryn/internal/rawdoc"
)

// Domain is a document genre in the benchmark corpus. DocLayNet draws from
// several professional domains; the synthetic corpus mirrors that spread
// so per-class statistics are diverse.
type Domain string

// The corpus domains.
const (
	DomainFinancial  Domain = "financial"
	DomainScientific Domain = "scientific"
	DomainLegal      Domain = "legal"
	DomainManual     Domain = "manual"
	DomainPatent     Domain = "patent"
)

// AllDomains lists the corpus genres.
func AllDomains() []Domain {
	return []Domain{DomainFinancial, DomainScientific, DomainLegal, DomainManual, DomainPatent}
}

var domainWords = map[Domain][]string{
	DomainFinancial: {"revenue", "quarter", "earnings", "guidance", "margin", "segment",
		"operating", "income", "fiscal", "dividend", "shareholders", "liquidity",
		"assets", "capital", "expenditure", "growth", "outlook", "portfolio"},
	DomainScientific: {"experiment", "baseline", "method", "dataset", "accuracy", "model",
		"evaluation", "hypothesis", "results", "analysis", "significance", "sample",
		"protocol", "measurement", "variance", "distribution", "parameters", "training"},
	DomainLegal: {"plaintiff", "defendant", "court", "motion", "statute", "jurisdiction",
		"liability", "damages", "counsel", "evidence", "ruling", "appeal",
		"contract", "breach", "settlement", "testimony", "injunction", "precedent"},
	DomainManual: {"install", "assembly", "warning", "procedure", "component", "maintenance",
		"torque", "inspect", "replace", "calibration", "safety", "operation",
		"lubricant", "fastener", "bracket", "housing", "switch", "terminal"},
	DomainPatent: {"invention", "embodiment", "apparatus", "claim", "substrate", "actuator",
		"configured", "coupled", "disposed", "plurality", "signal", "processor",
		"housing", "member", "surface", "assembly", "circuit", "interface"},
}

var domainTitles = map[Domain][]string{
	DomainFinancial:  {"Quarterly Earnings Review", "Annual Report Highlights", "Investor Presentation Summary"},
	DomainScientific: {"Empirical Evaluation of Methods", "A Study of System Behavior", "Experimental Results and Analysis"},
	DomainLegal:      {"Memorandum Opinion and Order", "Case Summary and Findings", "Settlement Agreement Overview"},
	DomainManual:     {"Installation and Service Manual", "Operator Reference Guide", "Maintenance Procedures Handbook"},
	DomainPatent:     {"System and Method Disclosure", "Apparatus Specification", "Detailed Description of Embodiments"},
}

// sentence emits a deterministic pseudo-sentence from the domain pool.
func sentence(rng *rand.Rand, words []string, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = words[rng.Intn(len(words))]
	}
	s := strings.Join(parts, " ")
	return strings.ToUpper(s[:1]) + s[1:] + "."
}

func paragraph(rng *rand.Rand, words []string) string {
	n := 2 + rng.Intn(4)
	out := make([]string, n)
	for i := range out {
		out[i] = sentence(rng, words, 8+rng.Intn(9))
	}
	return strings.Join(out, " ")
}

// GenerateDoc synthesizes one labeled document of the given domain.
func GenerateDoc(id string, domain Domain, seed int64) *rawdoc.Doc {
	rng := rand.New(rand.NewSource(seed))
	words := domainWords[domain]
	titles := domainTitles[domain]

	b := rawdoc.NewBuilder(id, titles[rng.Intn(len(titles))])
	b.SetFurniture(strings.ToUpper(string(domain))+" DOCUMENT", id)
	b.AddTitle(titles[rng.Intn(len(titles))])

	nSections := 2 + rng.Intn(3)
	for s := 0; s < nSections; s++ {
		b.AddSectionHeader(fmt.Sprintf("%d. %s", s+1, sentence(rng, words, 3+rng.Intn(3))))
		nBlocks := 2 + rng.Intn(4)
		for blk := 0; blk < nBlocks; blk++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // paragraphs dominate, as in DocLayNet
				b.AddParagraph(paragraph(rng, words))
			case 5:
				for li := 0; li < 2+rng.Intn(3); li++ {
					b.AddListItem(sentence(rng, words, 5+rng.Intn(5)))
				}
			case 6:
				rows := make([][]string, 2+rng.Intn(4))
				cols := 2 + rng.Intn(3)
				for r := range rows {
					row := make([]string, cols)
					for c := range row {
						if r == 0 {
							row[c] = strings.Title(words[rng.Intn(len(words))])
						} else {
							row[c] = fmt.Sprintf("%d", rng.Intn(10000))
						}
					}
					rows[r] = row
				}
				b.AddTable(rows, true)
				b.AddCaption(fmt.Sprintf("Table %d: %s", blk+1, sentence(rng, words, 4)))
			case 7:
				b.AddImage(sentence(rng, words, 5), "png", 400+rng.Intn(400), 250+rng.Intn(250))
				b.AddCaption(fmt.Sprintf("Figure %d: %s", blk+1, sentence(rng, words, 4)))
			case 8:
				b.AddFormula(fmt.Sprintf("f(x) = %c·x + %d", 'a'+rune(rng.Intn(26)), rng.Intn(100)))
			case 9:
				b.AddFootnote(sentence(rng, words, 6+rng.Intn(6)))
			}
		}
	}
	return b.Doc()
}

// Corpus is a labeled page collection.
type Corpus struct {
	Docs []*rawdoc.Doc
}

// GenerateCorpus synthesizes n documents spread evenly across the domains.
func GenerateCorpus(n int, seed int64) *Corpus {
	domains := AllDomains()
	c := &Corpus{}
	for i := 0; i < n; i++ {
		domain := domains[i%len(domains)]
		id := fmt.Sprintf("%s-%04d", domain, i)
		c.Docs = append(c.Docs, GenerateDoc(id, domain, seed+int64(i)*7919))
	}
	return c
}

// Pages reports the total page count.
func (c *Corpus) Pages() int {
	n := 0
	for _, d := range c.Docs {
		n += len(d.Pages)
	}
	return n
}

// GroundTruths flattens every document's regions into evaluation records.
func (c *Corpus) GroundTruths() []GroundTruth {
	var out []GroundTruth
	for _, d := range c.Docs {
		for _, r := range d.Regions {
			out = append(out, GroundTruth{
				ImageID: fmt.Sprintf("%s/%d", d.ID, r.Page),
				Box:     r.Box,
				Type:    r.Type,
			})
		}
	}
	return out
}
