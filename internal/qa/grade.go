package qa

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

// Verdict is a graded outcome, matching Table 4's rows.
type Verdict string

// Verdicts.
const (
	Correct   Verdict = "correct"
	Incorrect Verdict = "incorrect"
	Refusal   Verdict = "refusal"
)

// ErrorCategory classifies an incorrect Luna answer per §7.2's taxonomy.
type ErrorCategory string

// Error categories.
const (
	ErrNone           ErrorCategory = ""
	ErrCounting       ErrorCategory = "counting"       // duplicates counted twice
	ErrFilter         ErrorCategory = "filter"         // llmFilter too generous
	ErrInterpretation ErrorCategory = "interpretation" // schema linking misread
	ErrOther          ErrorCategory = "other"
)

// Grade compares an answer against the question's ground truth.
func Grade(q Question, got luna.Answer, gt luna.Answer) Verdict {
	if got.Refused {
		return Refusal
	}
	switch q.Kind {
	case KindCount:
		if got.Kind != luna.AnswerNumber {
			return Incorrect
		}
		if int(math.Round(got.Number)) == int(math.Round(gt.Number)) {
			return Correct
		}
	case KindNumber, KindFraction:
		if got.Kind != luna.AnswerNumber {
			return Incorrect
		}
		tol := q.Tolerance
		if tol == 0 {
			if got.Number == gt.Number {
				return Correct
			}
			return Incorrect
		}
		denom := math.Abs(gt.Number)
		if denom < 1 {
			denom = 1
		}
		if math.Abs(got.Number-gt.Number) <= tol*denom+1e-9 {
			return Correct
		}
	case KindBreakdown:
		if got.Kind == luna.AnswerTable && tablesEqual(got.Table, gt.Table) {
			return Correct
		}
	case KindTop:
		if got.Kind == luna.AnswerList && setEqual(got.List, gt.List) {
			return Correct
		}
	case KindList:
		if got.Kind == luna.AnswerList && setEqual(got.List, gt.List) {
			return Correct
		}
		// A text answer enumerating exactly the right items also counts.
		if got.Kind == luna.AnswerText && setEqual(splitList(got.Text), gt.List) {
			return Correct
		}
	case KindText:
		hay := strings.ToLower(got.Text)
		if got.Kind == luna.AnswerList {
			hay = strings.ToLower(strings.Join(got.List, " "))
		}
		if hay == "" {
			return Incorrect
		}
		for _, kw := range q.Keywords {
			if !strings.Contains(hay, strings.ToLower(kw)) {
				return Incorrect
			}
		}
		return Correct
	}
	return Incorrect
}

func tablesEqual(a, b map[string]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		bv, ok := b[normLookup(b, k)]
		if !ok || math.Abs(v-bv) > 1e-9 {
			return false
		}
	}
	return true
}

// normLookup finds b's key equal to k case-insensitively.
func normLookup(b map[string]float64, k string) string {
	if _, ok := b[k]; ok {
		return k
	}
	for bk := range b {
		if strings.EqualFold(bk, k) {
			return bk
		}
	}
	return k
}

func setEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	na := normSet(a)
	nb := normSet(b)
	for k := range na {
		if !nb[k] {
			return false
		}
	}
	return true
}

func normSet(items []string) map[string]bool {
	out := map[string]bool{}
	for _, s := range items {
		out[strings.ToLower(strings.TrimSpace(s))] = true
	}
	return out
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ';' }) {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Classify assigns the §7.2 error category to an incorrect Luna answer.
// Priority: a result matching the naive report-level ground truth is a
// counting error; breakdown answers with disjoint key sets indicate a
// misinterpreted group-by field; anything flowing through an llmFilter is
// a filter error.
func Classify(q Question, got luna.Answer, c *ntsb.Corpus, plan *luna.LogicalPlan) ErrorCategory {
	if q.ReportGT != nil {
		rgt := q.ReportGT(c)
		if Grade(q, got, rgt) == Correct {
			return ErrCounting
		}
	}
	if q.Kind == KindBreakdown {
		gt := q.GT(c)
		if got.Kind == luna.AnswerTable && keyOverlap(got.Table, gt.Table) < 0.5 {
			return ErrInterpretation
		}
		return ErrCounting
	}
	if plan != nil && planUsesLLMFilter(plan) {
		return ErrFilter
	}
	return ErrOther
}

// keyOverlap is the fraction of a's keys present in b. A breakdown whose
// keys barely intersect the expected grouping indicates the planner linked
// the wrong field (interpretation error), not a miscount.
func keyOverlap(a, b map[string]float64) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for k := range a {
		if _, ok := b[normLookup(b, k)]; ok {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

func planUsesLLMFilter(plan *luna.LogicalPlan) bool {
	for _, n := range plan.Nodes {
		if n.Op == luna.OpLLMFilter || (n.Op == luna.OpFraction && n.Question != "") {
			return true
		}
	}
	return false
}

// ParseRAGAnswer coerces the RAG baseline's free-text "Answer:" value into
// the question's expected shape, leaving unparseable output as an
// (incorrect) text answer.
func ParseRAGAnswer(q Question, answerLine, fullText string, refused bool) luna.Answer {
	if refused {
		return luna.Answer{Kind: luna.AnswerText, Text: fullText, Refused: true}
	}
	line := strings.TrimSpace(answerLine)
	switch q.Kind {
	case KindCount, KindNumber, KindFraction:
		if f, err := strconv.ParseFloat(strings.TrimSuffix(line, "%"), 64); err == nil {
			return luna.NumberAnswer(f)
		}
		// Grab a leading number if the model wrapped it in words.
		for _, tok := range strings.Fields(line) {
			if f, err := strconv.ParseFloat(strings.Trim(tok, ".,"), 64); err == nil {
				return luna.NumberAnswer(f)
			}
		}
		return luna.TextAnswer(line)
	case KindBreakdown:
		t := map[string]float64{}
		for _, pair := range strings.Split(line, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				continue
			}
			if f, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil {
				t[strings.TrimSpace(k)] = f
			}
		}
		if len(t) > 0 {
			return luna.TableAnswer(t)
		}
		return luna.TextAnswer(line)
	case KindList, KindTop:
		if strings.EqualFold(line, "none") || line == "" {
			return luna.ListAnswer()
		}
		items := splitList(line)
		sort.Strings(items)
		return luna.ListAnswer(items...)
	default:
		return luna.TextAnswer(fullText)
	}
}
