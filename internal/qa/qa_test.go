package qa

import (
	"context"
	"testing"

	"aryn/internal/core"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

func TestGradeCount(t *testing.T) {
	q := Question{Kind: KindCount}
	if Grade(q, luna.NumberAnswer(5), luna.NumberAnswer(5)) != Correct {
		t.Error("exact count should be correct")
	}
	if Grade(q, luna.NumberAnswer(6), luna.NumberAnswer(5)) != Incorrect {
		t.Error("off-by-one count should be incorrect")
	}
	if Grade(q, luna.TextAnswer("five"), luna.NumberAnswer(5)) != Incorrect {
		t.Error("non-numeric answer should be incorrect")
	}
	if Grade(q, luna.Answer{Refused: true}, luna.NumberAnswer(5)) != Refusal {
		t.Error("refusal should be recorded")
	}
}

func TestGradeNumberTolerance(t *testing.T) {
	q := Question{Kind: KindNumber, Tolerance: 0.02}
	if Grade(q, luna.NumberAnswer(101.5), luna.NumberAnswer(100)) != Correct {
		t.Error("within 2% should pass")
	}
	if Grade(q, luna.NumberAnswer(105), luna.NumberAnswer(100)) != Incorrect {
		t.Error("5% off should fail")
	}
	exact := Question{Kind: KindNumber}
	if Grade(exact, luna.NumberAnswer(100.001), luna.NumberAnswer(100)) != Incorrect {
		t.Error("zero tolerance must be exact")
	}
}

func TestGradeBreakdown(t *testing.T) {
	q := Question{Kind: KindBreakdown}
	gt := luna.TableAnswer(map[string]float64{"KY": 3, "CA": 2})
	if Grade(q, luna.TableAnswer(map[string]float64{"ky": 3, "CA": 2}), gt) != Correct {
		t.Error("case-insensitive key match should pass")
	}
	if Grade(q, luna.TableAnswer(map[string]float64{"KY": 4, "CA": 2}), gt) != Incorrect {
		t.Error("wrong value should fail")
	}
	if Grade(q, luna.TableAnswer(map[string]float64{"KY": 3}), gt) != Incorrect {
		t.Error("missing key should fail")
	}
}

func TestGradeListAndTop(t *testing.T) {
	q := Question{Kind: KindList}
	gt := luna.ListAnswer("A1", "B2")
	if Grade(q, luna.ListAnswer("b2", "a1"), gt) != Correct {
		t.Error("set equality should be order- and case-insensitive")
	}
	if Grade(q, luna.ListAnswer("A1"), gt) != Incorrect {
		t.Error("missing element should fail")
	}
	if Grade(q, luna.TextAnswer("A1; B2"), gt) != Correct {
		t.Error("text enumeration of exactly the right items should pass")
	}
}

func TestGradeText(t *testing.T) {
	q := Question{Kind: KindText, Keywords: []string{"fuel", "engine"}}
	if Grade(q, luna.TextAnswer("the Engine stopped from FUEL exhaustion"), luna.Answer{}) != Correct {
		t.Error("keyword grading should be case-insensitive")
	}
	if Grade(q, luna.TextAnswer("the wing failed"), luna.Answer{}) != Incorrect {
		t.Error("missing keyword should fail")
	}
	if Grade(q, luna.TextAnswer(""), luna.Answer{}) != Incorrect {
		t.Error("empty text should fail")
	}
}

func TestParseRAGAnswerShapes(t *testing.T) {
	if a := ParseRAGAnswer(Question{Kind: KindCount}, "42", "", false); a.Number != 42 {
		t.Errorf("count parse = %v", a)
	}
	if a := ParseRAGAnswer(Question{Kind: KindCount}, "about 17 incidents", "", false); a.Number != 17 {
		t.Errorf("wrapped count parse = %v", a)
	}
	if a := ParseRAGAnswer(Question{Kind: KindBreakdown}, "KY=3, CA=2", "", false); a.Table["KY"] != 3 {
		t.Errorf("breakdown parse = %v", a)
	}
	if a := ParseRAGAnswer(Question{Kind: KindList}, "A1, B2", "", false); len(a.List) != 2 {
		t.Errorf("list parse = %v", a)
	}
	if a := ParseRAGAnswer(Question{Kind: KindList}, "none", "", false); len(a.List) != 0 {
		t.Errorf("none should parse to empty list: %v", a)
	}
	if a := ParseRAGAnswer(Question{Kind: KindCount}, "", "refused text", true); !a.Refused {
		t.Error("refusal flag lost")
	}
}

func TestQuestionsCoverAllKinds(t *testing.T) {
	corpus, err := ntsb.GenerateCorpus(30, 42)
	if err != nil {
		t.Fatal(err)
	}
	qs := Questions(corpus)
	if len(qs) != 30 {
		t.Fatalf("benchmark has %d questions, want 30", len(qs))
	}
	kinds := map[Kind]int{}
	for _, q := range qs {
		kinds[q.Kind]++
		gt := q.GT(corpus)
		if gt.Kind == "" {
			t.Errorf("Q%d ground truth has no kind", q.ID)
		}
	}
	for _, k := range []Kind{KindCount, KindBreakdown, KindFraction, KindTop, KindList, KindNumber, KindText} {
		if kinds[k] == 0 {
			t.Errorf("no questions of kind %s", k)
		}
	}
}

func TestGroundTruthAccidentSemantics(t *testing.T) {
	corpus, err := ntsb.GenerateCorpus(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	qs := Questions(corpus)
	// Q24 (total) must count accidents, not reports.
	var total, totalReports luna.Answer
	for _, q := range qs {
		if q.ID == 24 {
			total = q.GT(corpus)
			totalReports = q.ReportGT(corpus)
		}
	}
	if int(total.Number) != 100 {
		t.Errorf("accident-level total = %v, want 100", total.Number)
	}
	if int(totalReports.Number) <= 100 {
		t.Errorf("report-level total = %v, should exceed 100 (multi-aircraft pairs)", totalReports.Number)
	}
}

// TestTable4Reproduction is the headline §7.2 regression: on the standard
// corpus and seeds, Luna and RAG must land in the paper's Table 4 regime.
// Exact per-cell equality with the paper (Luna 20/10/0 with 6 counting +
// 3 filter + 1 interpretation; RAG 2/20/8) holds at the canonical seeds
// and is recorded in EXPERIMENTS.md; this test pins the slightly wider
// bands that any reasonable seed satisfies, so the reproduction cannot
// silently regress.
func TestTable4Reproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus evaluation")
	}
	corpus, err := ntsb.GenerateCorpus(100, 42)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7, Parallelism: 8})
	if _, err := sys.Ingest(context.Background(), blobs); err != nil {
		t.Fatal(err)
	}
	t4, err := RunTable4(context.Background(), sys, corpus)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", t4.Format())

	// Luna column: ~2/3 correct, zero refusals, all three error categories.
	if t4.Luna.Correct < 18 || t4.Luna.Correct > 22 {
		t.Errorf("Luna correct = %d, want ~20", t4.Luna.Correct)
	}
	if t4.Luna.Refusal != 0 {
		t.Errorf("Luna must never refuse (aggregation is engine-side), got %d", t4.Luna.Refusal)
	}
	if n := t4.Luna.ByCategory[ErrCounting]; n < 4 || n > 8 {
		t.Errorf("counting errors = %d, want ~6", n)
	}
	if n := t4.Luna.ByCategory[ErrFilter]; n < 2 || n > 5 {
		t.Errorf("filter errors = %d, want ~3", n)
	}
	if n := t4.Luna.ByCategory[ErrInterpretation]; n != 1 {
		t.Errorf("interpretation errors = %d, want 1", n)
	}
	if n := t4.Luna.ByCategory[ErrOther]; n != 0 {
		t.Errorf("unclassified errors = %d, want 0", n)
	}

	// RAG column: near-total failure, substantial refusals.
	if t4.RAG.Correct > 4 {
		t.Errorf("RAG correct = %d, want ~2", t4.RAG.Correct)
	}
	if t4.RAG.Refusal < 5 || t4.RAG.Refusal > 11 {
		t.Errorf("RAG refusals = %d, want ~8", t4.RAG.Refusal)
	}
	if t4.Luna.Correct <= 3*t4.RAG.Correct {
		t.Errorf("Luna (%d) should dominate RAG (%d) by a wide margin", t4.Luna.Correct, t4.RAG.Correct)
	}

	// The Hawaii zero-count must be RAG's success case, as in the paper.
	for _, r := range t4.RAGRecords {
		if r.Question.ID == 3 && r.Verdict != Correct {
			t.Errorf("RAG should answer the Hawaii zero-count correctly, got %s", r.Verdict)
		}
	}
}

// TestRecordedPlansReExecute closes the §6.2 inspect→edit→re-run loop
// through the harness: every plan the benchmark recorded round-trips
// through its DAG JSON and, resubmitted via RunPlan, reproduces the
// answer it was recorded with.
func TestRecordedPlansReExecute(t *testing.T) {
	corpus, err := ntsb.GenerateCorpus(20, 42)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	sys := core.New(core.Config{Seed: 7, Parallelism: 4})
	if _, err := sys.Ingest(context.Background(), blobs); err != nil {
		t.Fatal(err)
	}
	records, _, err := RunLuna(context.Background(), sys, corpus)
	if err != nil {
		t.Fatal(err)
	}
	replayed := 0
	for _, rec := range records {
		if rec.Err != nil || rec.Plan == nil {
			continue
		}
		parsed, perr := luna.ParsePlan(rec.Plan.JSON())
		if perr != nil {
			t.Fatalf("q%d: recorded plan does not round-trip: %v", rec.Question.ID, perr)
		}
		res, rerr := sys.Query.RunPlan(context.Background(), rec.Question.Text, parsed)
		if rerr != nil {
			t.Fatalf("q%d: recorded plan does not re-execute: %v", rec.Question.ID, rerr)
		}
		if res.Answer.String() != rec.Answer.String() {
			t.Errorf("q%d: re-executed answer %q != recorded %q",
				rec.Question.ID, res.Answer.String(), rec.Answer.String())
		}
		replayed++
	}
	if replayed < 20 {
		t.Errorf("only %d plans replayed", replayed)
	}
}
