// Package qa implements the §7 evaluation: the 30-question NTSB
// analytics benchmark, ground-truth computation at accident granularity,
// mechanical graders for every answer shape, and the harness that
// regenerates Table 4 (Luna vs. RAG) with the paper's error taxonomy.
//
// Paper counterpart: the evaluation of §7.2 (Table 4).
//
// Concurrency: the harness drives the system one question at a time (the
// benchmark measures answer quality, not throughput); helpers are pure
// functions and may be called from any goroutine.
package qa
