package qa

import (
	"context"
	"fmt"
	"strings"

	"aryn/internal/core"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

// Record is the outcome of one question under one system.
type Record struct {
	Question Question
	Answer   luna.Answer
	GT       luna.Answer
	Verdict  Verdict
	Category ErrorCategory // Luna only
	Plan     *luna.LogicalPlan
	Err      error
}

// Tally is one Table 4 column.
type Tally struct {
	Correct   int
	Incorrect int
	Refusal   int
	// ByCategory breaks the incorrect answers down (Luna column).
	ByCategory map[ErrorCategory]int
}

func (t Tally) total() int { return t.Correct + t.Incorrect + t.Refusal }

// Table4 is the full Luna-vs-RAG comparison.
type Table4 struct {
	Luna        Tally
	RAG         Tally
	LunaRecords []Record
	RAGRecords  []Record
}

// RunLuna evaluates every benchmark question through Luna.
func RunLuna(ctx context.Context, sys *core.System, corpus *ntsb.Corpus) ([]Record, Tally, error) {
	tally := Tally{ByCategory: map[ErrorCategory]int{}}
	var records []Record
	for _, q := range Questions(corpus) {
		gt := q.GT(corpus)
		rec := Record{Question: q, GT: gt}
		res, err := sys.Query.Ask(ctx, q.Text)
		if err != nil {
			rec.Err = err
			rec.Verdict = Incorrect
			rec.Category = ErrOther
		} else {
			rec.Answer = res.Answer
			rec.Plan = res.Rewritten
			rec.Verdict = Grade(q, res.Answer, gt)
			if rec.Verdict == Incorrect {
				rec.Category = Classify(q, res.Answer, corpus, res.Rewritten)
			}
		}
		switch rec.Verdict {
		case Correct:
			tally.Correct++
		case Refusal:
			tally.Refusal++
		default:
			tally.Incorrect++
			tally.ByCategory[rec.Category]++
		}
		records = append(records, rec)
	}
	return records, tally, nil
}

// RunRAG evaluates every benchmark question through the RAG baseline.
func RunRAG(ctx context.Context, sys *core.System, corpus *ntsb.Corpus) ([]Record, Tally, error) {
	tally := Tally{ByCategory: map[ErrorCategory]int{}}
	var records []Record
	for _, q := range Questions(corpus) {
		gt := q.GT(corpus)
		rec := Record{Question: q, GT: gt}
		resp, err := sys.AskRAG(ctx, q.Text)
		if err != nil {
			rec.Err = err
			rec.Verdict = Incorrect
		} else {
			rec.Answer = ParseRAGAnswer(q, resp.Answer, resp.Text, resp.Refused)
			rec.Verdict = Grade(q, rec.Answer, gt)
		}
		switch rec.Verdict {
		case Correct:
			tally.Correct++
		case Refusal:
			tally.Refusal++
		default:
			tally.Incorrect++
		}
		records = append(records, rec)
	}
	return records, tally, nil
}

// RunTable4 runs the full comparison.
func RunTable4(ctx context.Context, sys *core.System, corpus *ntsb.Corpus) (*Table4, error) {
	lunaRecs, lunaTally, err := RunLuna(ctx, sys, corpus)
	if err != nil {
		return nil, err
	}
	ragRecs, ragTally, err := RunRAG(ctx, sys, corpus)
	if err != nil {
		return nil, err
	}
	return &Table4{Luna: lunaTally, RAG: ragTally, LunaRecords: lunaRecs, RAGRecords: ragRecs}, nil
}

// Format renders the comparison in the paper's Table 4 layout.
func (t *Table4) Format() string {
	var sb strings.Builder
	pct := func(n, total int) string { return fmt.Sprintf("%d (%.1f%%)", n, 100*float64(n)/float64(total)) }
	fmt.Fprintf(&sb, "%-12s %-14s %-14s\n", "", "Luna", "RAG")
	fmt.Fprintf(&sb, "%-12s %-14s %-14s\n", "Correct", pct(t.Luna.Correct, t.Luna.total()), pct(t.RAG.Correct, t.RAG.total()))
	fmt.Fprintf(&sb, "%-12s %-14s %-14s\n", "Incorrect", pct(t.Luna.Incorrect, t.Luna.total()), pct(t.RAG.Incorrect, t.RAG.total()))
	fmt.Fprintf(&sb, "%-12s %-14s %-14s\n", "Refusal", pct(t.Luna.Refusal, t.Luna.total()), pct(t.RAG.Refusal, t.RAG.total()))
	fmt.Fprintf(&sb, "%-12s %-14d %-14d\n", "Total", t.Luna.total(), t.RAG.total())
	if len(t.Luna.ByCategory) > 0 {
		sb.WriteString("\nLuna error taxonomy (§7.2):\n")
		for _, cat := range []ErrorCategory{ErrCounting, ErrFilter, ErrInterpretation, ErrOther} {
			if n := t.Luna.ByCategory[cat]; n > 0 {
				fmt.Fprintf(&sb, "  %-16s %d\n", cat, n)
			}
		}
	}
	return sb.String()
}

// Detail renders per-question outcomes for both systems.
func (t *Table4) Detail() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-3s %-9s %-10s %-9s %s\n", "Q", "Luna", "category", "RAG", "question")
	for i := range t.LunaRecords {
		lr, rr := t.LunaRecords[i], t.RAGRecords[i]
		fmt.Fprintf(&sb, "%-3d %-9s %-10s %-9s %s\n",
			lr.Question.ID, lr.Verdict, string(lr.Category), rr.Verdict, truncateTo(lr.Question.Text, 70))
	}
	return sb.String()
}

func truncateTo(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
