package qa

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

// Kind is the expected answer shape of a benchmark question.
type Kind string

// Question kinds.
const (
	KindCount     Kind = "count"
	KindBreakdown Kind = "breakdown"
	KindFraction  Kind = "fraction"
	KindTop       Kind = "top"
	KindList      Kind = "list"
	KindNumber    Kind = "number" // avg/max style
	KindText      Kind = "text"
)

// Question is one benchmark item with programmatic ground truth.
type Question struct {
	ID   int
	Text string
	Kind Kind
	// GT computes the correct answer at accident granularity (distinct
	// accident numbers), the unit "how many incidents" should count.
	GT func(c *ntsb.Corpus) luna.Answer
	// ReportGT computes the naive report-granularity answer, used to
	// classify counting errors (nil when identical to GT).
	ReportGT func(c *ntsb.Corpus) luna.Answer
	// Keywords grade text answers: all must appear (case-insensitive).
	Keywords []string
	// Tolerance for numeric comparison (0 = exact; fractions use 0.02).
	Tolerance float64
}

// accident groups the reports belonging to one accident number.
type accident []*ntsb.Incident

func accidents(c *ntsb.Corpus) []accident {
	byNum := map[string]accident{}
	var order []string
	for i := range c.Incidents {
		in := &c.Incidents[i]
		if _, ok := byNum[in.AccidentNumber]; !ok {
			order = append(order, in.AccidentNumber)
		}
		byNum[in.AccidentNumber] = append(byNum[in.AccidentNumber], in)
	}
	out := make([]accident, 0, len(order))
	for _, n := range order {
		out = append(out, byNum[n])
	}
	return out
}

func (a accident) any(pred func(*ntsb.Incident) bool) bool {
	for _, in := range a {
		if pred(in) {
			return true
		}
	}
	return false
}

// countAcc counts accidents where any involved aircraft matches.
func countAcc(c *ntsb.Corpus, pred func(*ntsb.Incident) bool) int {
	n := 0
	for _, a := range accidents(c) {
		if a.any(pred) {
			n++
		}
	}
	return n
}

// countRep counts report documents matching — the naive count a plan
// without deduplication produces.
func countRep(c *ntsb.Corpus, pred func(*ntsb.Incident) bool) int {
	n := 0
	for i := range c.Incidents {
		if pred(&c.Incidents[i]) {
			n++
		}
	}
	return n
}

func countAnswer(n int) luna.Answer { return luna.NumberAnswer(float64(n)) }

// breakdownAcc groups accidents by a key of the first member (pairs share
// state/month) and counts.
func breakdownAcc(c *ntsb.Corpus, key func(*ntsb.Incident) string) luna.Answer {
	t := map[string]float64{}
	for _, a := range accidents(c) {
		t[key(a[0])]++
	}
	return luna.TableAnswer(t)
}

// partCounts tallies damaged parts over matching reports (each aircraft
// damages its own part, so part statistics are report-granularity).
func partCounts(c *ntsb.Corpus, pred func(*ntsb.Incident) bool) map[string]int {
	t := map[string]int{}
	for i := range c.Incidents {
		in := &c.Incidents[i]
		if pred(in) {
			t[in.DamagedPart]++
		}
	}
	return t
}

// topParts returns the k most common parts (deterministic tie-break).
func topParts(counts map[string]int, k int) []string {
	type kv struct {
		part string
		n    int
	}
	all := make([]kv, 0, len(counts))
	for p, n := range counts {
		all = append(all, kv{p, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].part < all[j].part
	})
	var out []string
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].part)
	}
	return out
}

func causeKeywords(cause ntsb.Cause) []string {
	switch cause {
	case ntsb.CauseEngine:
		return []string{"engine"}
	case ntsb.CauseFuel:
		return []string{"fuel"}
	case ntsb.CausePilot:
		return []string{"control"}
	case ntsb.CauseWeather:
		return []string{"wind"}
	case ntsb.CauseBird:
		return []string{"birds"}
	case ntsb.CauseMaintenance:
		return []string{"maintenance"}
	case ntsb.CauseMidair:
		return []string{"midair"}
	default:
		return []string{"undetermined"}
	}
}

// Questions builds the 30-question benchmark for the given corpus (one
// question references a concrete accident number from it).
func Questions(c *ntsb.Corpus) []Question {
	// A stable single-aircraft accident for the lookup question.
	lookupAcc := &c.Incidents[0]
	for i := range c.Incidents {
		if c.Incidents[i].Cause != ntsb.CauseMidair {
			lookupAcc = &c.Incidents[i]
			break
		}
	}

	isSubstantial := func(in *ntsb.Incident) bool { return in.Damage == "Substantial" }
	isEngine := func(in *ntsb.Incident) bool { return in.Cause == ntsb.CauseEngine }

	return []Question{
		{ID: 1, Text: "How many incidents were there by state?", Kind: KindBreakdown,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return breakdownAcc(c, func(in *ntsb.Incident) string { return in.StateAbbrev() })
			},
			ReportGT: func(c *ntsb.Corpus) luna.Answer {
				t := map[string]float64{}
				for i := range c.Incidents {
					t[c.Incidents[i].StateAbbrev()]++
				}
				return luna.TableAnswer(t)
			}},
		{ID: 2, Text: "How many incidents involved substantial damage?", Kind: KindCount,
			GT:       func(c *ntsb.Corpus) luna.Answer { return countAnswer(countAcc(c, isSubstantial)) },
			ReportGT: func(c *ntsb.Corpus) luna.Answer { return countAnswer(countRep(c, isSubstantial)) }},
		{ID: 3, Text: "How many incidents were there in Hawaii?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.State == "Hawaii" }))
			}},
		{ID: 4, Text: "Which incidents occurred in July involving birds?", Kind: KindList,
			GT: func(c *ntsb.Corpus) luna.Answer {
				var ids []string
				for _, a := range accidents(c) {
					if a.any(func(in *ntsb.Incident) bool { return in.BirdStrike && in.Date.Month() == time.July }) {
						ids = append(ids, a[0].AccidentNumber)
					}
				}
				return luna.ListAnswer(ids...)
			}},
		{ID: 5, Text: "How many incidents were due to engine problems?", Kind: KindCount,
			GT:       func(c *ntsb.Corpus) luna.Answer { return countAnswer(countAcc(c, isEngine)) },
			ReportGT: func(c *ntsb.Corpus) luna.Answer { return countAnswer(countRep(c, isEngine)) }},
		{ID: 6, Text: "What fraction of incidents that resulted in substantial damage were due to engine problems?", Kind: KindFraction, Tolerance: 0.02,
			GT: func(c *ntsb.Corpus) luna.Answer {
				den := countAcc(c, isSubstantial)
				num := countAcc(c, func(in *ntsb.Incident) bool { return isSubstantial(in) && isEngine(in) })
				if den == 0 {
					return luna.NumberAnswer(0)
				}
				return luna.NumberAnswer(float64(num) / float64(den))
			}},
		{ID: 7, Text: "In incidents involving Piper aircraft, what was the most commonly damaged part of the aircraft?", Kind: KindTop,
			GT: func(c *ntsb.Corpus) luna.Answer {
				counts := partCounts(c, func(in *ntsb.Incident) bool { return in.Manufacturer == "Piper" })
				return luna.ListAnswer(topParts(counts, 1)...)
			}},
		{ID: 8, Text: "How many incidents were there, broken down by number of engines?", Kind: KindBreakdown,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return breakdownAcc(c, func(in *ntsb.Incident) string { return fmt.Sprintf("%d", in.Engines) })
			},
			ReportGT: func(c *ntsb.Corpus) luna.Answer {
				t := map[string]float64{}
				for i := range c.Incidents {
					t[fmt.Sprintf("%d", c.Incidents[i].Engines)]++
				}
				return luna.TableAnswer(t)
			}},
		{ID: 9, Text: "What was the breakdown of incident causes by aircraft manufacturer?", Kind: KindBreakdown,
			GT: func(c *ntsb.Corpus) luna.Answer {
				t := map[string]float64{}
				for _, a := range accidents(c) {
					seen := map[string]bool{}
					for _, in := range a {
						if !seen[in.Manufacturer] {
							seen[in.Manufacturer] = true
							t[in.Manufacturer]++
						}
					}
				}
				return luna.TableAnswer(t)
			}},
		{ID: 10, Text: "How many incidents resulted in fatalities?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Fatal > 0 }))
			},
			ReportGT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countRep(c, func(in *ntsb.Incident) bool { return in.Fatal > 0 }))
			}},
		{ID: 11, Text: "How many incidents occurred in each month?", Kind: KindBreakdown,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return breakdownAcc(c, func(in *ntsb.Incident) string { return in.Month() })
			},
			ReportGT: func(c *ntsb.Corpus) luna.Answer {
				t := map[string]float64{}
				for i := range c.Incidents {
					t[c.Incidents[i].Month()]++
				}
				return luna.TableAnswer(t)
			}},
		{ID: 12, Text: "Which state had the most incidents?", Kind: KindTop,
			GT: func(c *ntsb.Corpus) luna.Answer {
				t := map[string]int{}
				for _, a := range accidents(c) {
					t[a[0].StateAbbrev()]++
				}
				return luna.ListAnswer(topParts(t, 1)...)
			}},
		{ID: 13, Text: "How many incidents involved helicopters?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Category == "Helicopter" }))
			}},
		{ID: 14, Text: "How many aircraft were destroyed due to an accident?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Damage == "Destroyed" }))
			}},
		{ID: 15, Text: "How many incidents involved student pilots?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.StudentPilot }))
			}},
		{ID: 16, Text: "How many incidents occurred at night?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Night }))
			}},
		{ID: 17, Text: "How many incidents involved a post-crash fire?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Fire }))
			}},
		{ID: 18, Text: "How many incidents occurred in instrument meteorological conditions?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return strings.Contains(in.Conditions, "IMC") }))
			}},
		{ID: 19, Text: "How many flights were conducted under Part 137?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return strings.Contains(in.PartRegulation, "137") }))
			}},
		{ID: 20, Text: "What was the average total flight time of pilots in fatal incidents?", Kind: KindNumber, Tolerance: 0.02,
			GT: func(c *ntsb.Corpus) luna.Answer {
				sum, n := 0.0, 0
				for i := range c.Incidents {
					if c.Incidents[i].Fatal > 0 {
						sum += float64(c.Incidents[i].PilotHours)
						n++
					}
				}
				if n == 0 {
					return luna.NumberAnswer(0)
				}
				return luna.NumberAnswer(sum / float64(n))
			}},
		{ID: 21, Text: "What was the maximum wind speed recorded, in knots?", Kind: KindNumber,
			GT: func(c *ntsb.Corpus) luna.Answer {
				maxW := 0
				for i := range c.Incidents {
					if c.Incidents[i].WindSpeed > maxW {
						maxW = c.Incidents[i].WindSpeed
					}
				}
				return luna.NumberAnswer(float64(maxW))
			}},
		// The NTSB "defining event" semantics: a fuel-exhaustion accident's
		// engine also stops, but the event is Fuel related, not Loss of
		// engine power. An llmFilter cannot make that distinction from the
		// narrative — the §7.2 generosity failure in its purest form.
		{ID: 22, Text: "How many incidents were caused by a loss of engine power?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, isEngine))
			}},
		{ID: 23, Text: "How many incidents were due to midair collisions?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Cause == ntsb.CauseMidair }))
			},
			ReportGT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countRep(c, func(in *ntsb.Incident) bool { return in.Cause == ntsb.CauseMidair }))
			}},
		{ID: 24, Text: "How many incidents were there in total?", Kind: KindCount,
			GT:       func(c *ntsb.Corpus) luna.Answer { return countAnswer(len(accidents(c))) },
			ReportGT: func(c *ntsb.Corpus) luna.Answer { return countAnswer(len(c.Incidents)) }},
		{ID: 25, Text: "How many incidents were caused by weather?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.WeatherRelated }))
			}},
		{ID: 26, Text: "How many incidents involved aircraft manufactured by Cessna?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Manufacturer == "Cessna" }))
			}},
		{ID: 27, Text: "List the registration numbers of aircraft that were destroyed.", Kind: KindList,
			GT: func(c *ntsb.Corpus) luna.Answer {
				var regs []string
				for i := range c.Incidents {
					if c.Incidents[i].Damage == "Destroyed" {
						regs = append(regs, c.Incidents[i].Registration)
					}
				}
				return luna.ListAnswer(regs...)
			}},
		{ID: 28, Text: "How many incidents involved gliders?", Kind: KindCount,
			GT: func(c *ntsb.Corpus) luna.Answer {
				return countAnswer(countAcc(c, func(in *ntsb.Incident) bool { return in.Category == "Glider" }))
			}},
		{ID: 29, Text: "What are the top three most commonly damaged parts in single-engine aircraft incidents?", Kind: KindTop,
			GT: func(c *ntsb.Corpus) luna.Answer {
				counts := partCounts(c, func(in *ntsb.Incident) bool { return in.Engines == 1 })
				return luna.ListAnswer(topParts(counts, 3)...)
			}},
		{ID: 30, Text: "What was the probable cause of accident " + lookupAcc.AccidentNumber + "?", Kind: KindText,
			Keywords: causeKeywords(lookupAcc.Cause),
			GT: func(c *ntsb.Corpus) luna.Answer {
				return luna.TextAnswer(strings.Join(causeKeywords(lookupAcc.Cause), " "))
			}},
	}
}
