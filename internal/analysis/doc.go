// Package analysis is a dependency-free reimplementation of the core of
// golang.org/x/tools/go/analysis: the Analyzer/Pass/Diagnostic vocabulary
// that custom vet checkers are written against. The arynvet suite
// (cmd/arynvet) is built on it because the repository's invariants —
// byte-reproducible plan execution, the scheduler's yield-during-model-
// call lock discipline, cancelable request paths, the frozen /v1 wire
// contract, id-monotonic SSE emission — are exactly the properties the
// compiler cannot check and reviewer memory eventually drops.
//
// The subpackages divide as:
//
//   - unit: the `go vet -vettool` driver protocol (-V=full, -flags, and
//     per-package *.cfg analysis units), so the suite runs under the
//     standard build cache with export data supplied by the go command;
//   - analyzertest: an analysistest-style golden harness that loads
//     GOPATH-shaped fixture trees and matches `// want "regexp"`
//     expectations;
//   - registry: the list of analyzers cmd/arynvet registers (kept out of
//     package main so tests can enumerate it);
//   - determinism, lockheld, ctxflow, wirestable, sseorder: the
//     analyzers themselves, one invariant each (docs/static-analysis.md
//     documents what each enforces and why).
//
// Suppression: a finding that reflects an intentional, justified
// exception is silenced by a `//lint:allow <analyzer> <reason>` comment
// on the flagged line or the line above it. The reason is mandatory by
// convention (docs/static-analysis.md); the marker is scoped to a single
// analyzer and a single line, so blanket opt-outs are impossible.
//
// Concurrency contract: Analyzers are stateless values; a Pass is used
// by one goroutine at a time. The unit driver runs analyzers
// sequentially within a compilation unit (the go command already
// parallelizes across packages).
package analysis
