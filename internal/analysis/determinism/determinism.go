// Package determinism enforces the byte-reproducibility invariant of
// plan execution: the same plan over the same corpus must produce the
// same bytes regardless of worker budget or scheduling (the property the
// scheduler's determinism tests pin). It flags, inside internal/docset
// and internal/luna only:
//
//   - time.Now — wall-clock reads feed nondeterministic values into
//     results (trace-only timing is the sanctioned exception, annotated
//     with //lint:allow determinism);
//   - package-level math/rand (and math/rand/v2) calls — the global
//     generator is unseeded; randomness must flow through an explicitly
//     seeded *rand.Rand (rand.New(rand.NewSource(seed)));
//   - map iteration that feeds ordered output (appends into a slice
//     that is not subsequently sorted, channel sends, stream/string
//     writes, string concatenation) — Go's map order is deliberately
//     random, so such loops change output bytes run to run.
//
// Concurrency contract: stateless; see package analysis.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"aryn/internal/analysis"
)

// Analyzer flags nondeterminism sources in plan-execution packages.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, unseeded randomness, and map-ordered output in byte-reproducible plan-execution paths\n\n" +
		"Plan execution (internal/docset, internal/luna) promises byte-identical results across runs and worker budgets; " +
		"time.Now, the global math/rand generator, and map iteration order all break that promise silently.",
	Run: run,
}

// scope is the set of packages whose output must be byte-reproducible.
var scope = []string{"internal/docset", "internal/luna"}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				checkUse(pass, id)
			}
			return true
		})
		inspectStmtLists(f, func(list []ast.Stmt) {
			for i, s := range list {
				if rng, ok := s.(*ast.RangeStmt); ok {
					checkMapRange(pass, rng, list[i+1:])
				}
			}
		})
	}
	return nil, nil
}

// checkUse flags any reference to time.Now or a package-level math/rand
// function — calls and function values alike, so `f := time.Now` cannot
// smuggle the wall clock past the check.
func checkUse(pass *analysis.Pass, id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "time":
		if name == "Now" {
			pass.Reportf(id.Pos(), "time.Now in a byte-reproducible execution path: inject a clock, or this is trace-only timing")
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(name, "New") {
			pass.Reportf(id.Pos(), "package-level %s.%s uses an unseeded global generator: use rand.New(rand.NewSource(seed))", pkg, name)
		}
	}
}

// checkMapRange flags `for ... := range m` over a map whose body emits
// into ordered output. The canonical collect-keys-then-sort idiom is
// recognized: appends whose target is passed to a sort call later in the
// same block are clean.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}

	sorted := sortedObjects(pass, rest)
	var emissions []string
	var pos token.Pos
	note := func(kind string, at token.Pos) {
		if len(emissions) == 0 {
			pos = at
		}
		emissions = append(emissions, kind)
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			note("channel send", n.Pos())
		case *ast.AssignStmt:
			// keys = append(keys, k): ordered unless keys is sorted below.
			if target, call := appendTarget(pass, n); target != nil {
				if !sorted[target] {
					note("append", call.Pos())
				}
				return true
			}
			// s += v string building is order-dependent.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 {
				if lt := pass.TypesInfo.TypeOf(n.Lhs[0]); lt != nil {
					if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						note("string concatenation", n.Pos())
					}
				}
			}
		case *ast.CallExpr:
			if isOutputWrite(pass, n) {
				note("write", n.Pos())
			}
		}
		return true
	})

	if len(emissions) > 0 {
		pass.Reportf(pos, "map iteration order reaches ordered output (%s): iterate sorted keys instead", strings.Join(dedup(emissions), ", "))
	}
}

// appendTarget returns the assigned-to object of `x = append(x, ...)`
// (nil when the statement is not an append assignment).
func appendTarget(pass *analysis.Pass, n *ast.AssignStmt) (types.Object, *ast.CallExpr) {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return nil, nil
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, nil
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return nil, nil
	}
	return refObject(pass, n.Lhs[0]), call
}

// refObject resolves an ident or field selector to its object (the
// variable, or the struct field for a.examples-style targets).
func refObject(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Defs[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// sortedObjects collects the objects passed to a sort/slices sort call
// in the statements following the range loop.
func sortedObjects(pass *analysis.Pass, rest []ast.Stmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, recv, name := analysis.FuncID(analysis.Callee(pass.TypesInfo, call))
			isSort := recv == "" && (pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort")))
			if !isSort {
				return true
			}
			for _, arg := range call.Args {
				if obj := refObject(pass, arg); obj != nil {
					out[obj] = true
				}
			}
			return true
		})
	}
	return out
}

// isOutputWrite reports calls that serialize into an output stream or
// buffer: fmt printing and Write*/String-building methods.
func isOutputWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	pkg, recv, name := analysis.FuncID(analysis.Callee(pass.TypesInfo, call))
	if pkg == "fmt" && recv == "" && (strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Sprint")) {
		return true
	}
	return recv != "" && (name == "Write" || strings.HasPrefix(name, "Write"))
}

// inspectStmtLists visits every statement list (blocks, case and comm
// clause bodies) under n.
func inspectStmtLists(n ast.Node, visit func([]ast.Stmt)) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			visit(n.List)
		case *ast.CaseClause:
			visit(n.Body)
		case *ast.CommClause:
			visit(n.Body)
		}
		return true
	})
}

func dedup(in []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
