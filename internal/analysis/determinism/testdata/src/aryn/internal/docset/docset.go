// Fixture for the determinism analyzer: wall-clock reads, unseeded
// randomness, and map-ordered output inside a byte-reproducible
// execution package (the import path ends in internal/docset).
package docset

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// The sanctioned seam pattern: exactly one suppressed wall-clock read,
// everything else routes through it.
var wallclock = time.Now //lint:allow determinism trace-only timing seam

func clocks() {
	t := time.Now() // want "time\\.Now in a byte-reproducible execution path"
	_ = t
	f := time.Now // want "time\\.Now in a byte-reproducible execution path"
	_ = f
	_ = wallclock() // routed through the seam: clean
	_ = time.Since(wallclock())
}

func randomness(seed int64) {
	_ = rand.Intn(10)                   // want "package-level math/rand\\.Intn uses an unseeded global generator"
	r := rand.New(rand.NewSource(seed)) // seeded generator: clean
	_ = r.Intn(10)
	g := rand.Float64 // want "package-level math/rand\\.Float64 uses an unseeded global generator"
	_ = g
}

func mapOrder(m map[string]int, out chan<- string) {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "map iteration order reaches ordered output \\(append\\)"
	}
	_ = keys

	var names []string
	for k := range m { // collect-then-sort idiom: clean
		names = append(names, k)
	}
	sort.Strings(names)

	for k := range m {
		out <- k // want "map iteration order reaches ordered output \\(channel send\\)"
	}

	s := ""
	for k := range m {
		s += k // want "map iteration order reaches ordered output \\(string concatenation\\)"
	}
	_ = s

	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "map iteration order reaches ordered output \\(write\\)"
	}

	for _, v := range []int{1, 2} { // slice range: order is defined, clean
		out <- fmt.Sprint(v)
	}
}

type collector struct{ examples []string }

// Selector-target appends are emissions too (the InferSchema shape).
func (c *collector) fields(m map[string]string) {
	for _, v := range m {
		c.examples = append(c.examples, v) // want "map iteration order reaches ordered output \\(append\\)"
	}
}
