// Fixture pinning the analyzer's scope: this package is outside
// internal/docset and internal/luna, so nothing here is flagged even
// though every determinism sin appears.
package other

import (
	"math/rand"
	"time"
)

func unscoped(m map[string]int) []string {
	_ = time.Now()
	_ = rand.Intn(10)
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
