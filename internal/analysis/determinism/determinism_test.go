package determinism_test

import (
	"testing"

	"aryn/internal/analysis/analyzertest"
	"aryn/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analyzertest.Run(t, "testdata", determinism.Analyzer,
		"aryn/internal/docset", // in scope: every finding class
		"aryn/internal/other",  // out of scope: same sins, no findings
	)
}
