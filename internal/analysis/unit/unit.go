// Package unit implements the command protocol `go vet -vettool=...`
// speaks, so the arynvet suite runs as a first-class vet tool: per
// package, under the go command's build cache, with type information
// supplied as compiler export data. It is a dependency-free analogue of
// golang.org/x/tools/go/analysis/unitchecker.
//
// The protocol (see cmd/go/internal/work and cmd/go/internal/vet):
//
//	tool -V=full      print "name version <hash>" for build caching
//	tool -flags       print a JSON description of supported flags
//	tool [flags] x.cfg analyze one compilation unit described by x.cfg
//
// The .cfg file is JSON: the unit's Go files, its import map, and the
// export-data file of every dependency. Diagnostics go to stderr as
// "file:line:col: message (analyzer)"; any diagnostic exits 1, which go
// vet turns into a failed run. Facts are not used — every arynvet
// analyzer is package-local — so the vetx output the go command expects
// is written empty.
//
// Concurrency contract: one process analyzes one compilation unit;
// analyzers run sequentially. The go command itself fans units out.
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"aryn/internal/analysis"
)

// Config mirrors the JSON vet config the go command writes for each
// compilation unit (cmd/go/internal/work.vetConfig). Fields the driver
// does not consume are retained so unknown-field decoding stays strict
// in tests while the real decoder stays lenient across toolchains.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet tool built on this driver. It never
// returns: it exits 0 on a clean unit, 1 when diagnostics were reported,
// and 2 on driver failure.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	version := fs.String("V", "", "print version and exit (the go command passes -V=full)")
	describeFlags := fs.Bool("flags", false, "print a JSON description of flags and exit")
	enabled := make(map[string]*bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name] = fs.Bool(a.Name, true, firstLine(a.Doc))
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}

	if *version != "" {
		// The go command requires "<f0> version <f2...>" and hashes the
		// output into its action cache, so the version must change when
		// the tool's code does: hash the executable itself.
		fmt.Printf("%s version %s\n", progname, selfHash())
		os.Exit(0)
	}
	if *describeFlags {
		printFlagDefs(analyzers)
		os.Exit(0)
	}

	args := fs.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "%s: expected exactly one *.cfg argument (invoke via go vet -vettool)\n", progname)
		os.Exit(2)
	}

	var active []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}

	exit, err := Run(args[0], active, os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(2)
	}
	os.Exit(exit)
}

// Run analyzes the compilation unit described by the config file with
// the given analyzers, writing diagnostics to w. It returns the intended
// exit code (0 clean, 1 diagnostics).
func Run(configFile string, analyzers []*analysis.Analyzer, w io.Writer) (int, error) {
	data, err := os.ReadFile(configFile)
	if err != nil {
		return 0, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("cannot decode vet config %s: %v", configFile, err)
	}
	if len(cfg.GoFiles) == 0 {
		return 0, fmt.Errorf("package %s has no Go files", cfg.ImportPath)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg)
			}
			return 0, err
		}
		files = append(files, f)
	}

	tc := &types.Config{
		Importer:  configImporter(cfg, fset),
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(cfg)
		}
		return 0, err
	}

	exit := 0
	if !cfg.VetxOnly {
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     files,
				Pkg:       pkg,
				TypesInfo: info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return 0, fmt.Errorf("analyzer %s: %v", a.Name, err)
			}
			diags = analysis.Suppress(fset, files, a.Name, diags)
			sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
			for _, d := range diags {
				fmt.Fprintf(w, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, a.Name)
				exit = 1
			}
		}
	}

	if _, err := writeVetx(cfg); err != nil {
		return 0, err
	}
	return exit, nil
}

// writeVetx writes the (empty — no facts) vetx output the go command
// caches for downstream units.
func writeVetx(cfg *Config) (int, error) {
	if cfg.VetxOutput == "" {
		return 0, nil
	}
	return 0, os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}

// configImporter resolves imports through the unit's import map to the
// compiler export data the go command already produced for every
// dependency — the same mechanism the standard vet tool uses.
func configImporter(cfg *Config, fset *token.FileSet) types.Importer {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("cannot resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printFlagDefs prints the JSON flag description `go vet` requests with
// -flags: one boolean per analyzer, so -<name>=false disables it.
func printFlagDefs(analyzers []*analysis.Analyzer) {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := make([]flagDef, 0, len(analyzers))
	for _, a := range analyzers {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
	}
	out, _ := json.MarshalIndent(defs, "", "\t")
	fmt.Println(string(out))
}

// selfHash content-hashes the running executable so rebuilt tools get
// fresh cache keys.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
