// Package lockheld enforces the scheduler's lock discipline: no blocking
// operation while a sync.Mutex or sync.RWMutex is held. The worker-
// budget contract (docset.Context: workers yield their slot during model
// round-trips) and the SSE/jobs layer both depend on critical sections
// staying compute-only — a channel send, select, sleep, WaitGroup wait,
// or llm.Client round-trip under a lock turns a microsecond critical
// section into one bounded by the network, and is one cycle away from
// deadlock.
//
// The analysis is intra-procedural and per-branch: it tracks Lock/RLock
// acquisitions linearly through each function body, treats `defer
// mu.Unlock()` as held-until-return, and analyzes nested function
// literals as independent bodies (their execution time is not the
// enclosing critical section).
//
// Concurrency contract: stateless; see package analysis.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"aryn/internal/analysis"
)

// Analyzer flags blocking calls made while a mutex is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc: "flag channel operations, sleeps, waits, and llm.Client round-trips made while a sync.Mutex/RWMutex is held\n\n" +
		"Critical sections must be compute-only: the scheduler's worker-budget contract yields slots during model " +
		"round-trips, which is impossible if the round-trip happens under a lock.",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.SrcFiles() {
		// Each function body — declaration or literal — is analyzed as an
		// independent critical-section window (walkStmt/checkExpr never
		// descend into nested literals, so nothing is analyzed twice).
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walkStmts(pass, n.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				walkStmts(pass, n.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil, nil
}

// lockOp classifies a call as a mutex acquisition (+1), release (-1), or
// neither (0), returning the receiver expression's render as the key.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (key string, op int) {
	fn := analysis.Callee(pass.TypesInfo, call)
	pkg, recv, name := analysis.FuncID(fn)
	if pkg != "sync" || (recv != "Mutex" && recv != "RWMutex") {
		return "", 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	key = types.ExprString(sel.X)
	switch name {
	case "Lock", "RLock":
		return key, 1
	case "Unlock", "RUnlock":
		return key, -1
	}
	return "", 0
}

// walkStmts interprets one statement list, tracking which mutexes are
// held. Statements in the same block mutate the state linearly; branch
// constructs analyze each arm on a copy and join the arms' end states
// (a mutex is held after the construct if any reachable arm leaves it
// held — so a switch whose every case unlocks before blocking work
// leaves the fall-through path clean).
func walkStmts(pass *analysis.Pass, list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		walkStmt(pass, s, held)
	}
}

// walkBranch analyzes one arm on a copy of the state and returns its end
// state, or nil when the arm cannot fall through (it returns).
func walkBranch(pass *analysis.Pass, list []ast.Stmt, held map[string]bool) map[string]bool {
	h := clone(held)
	walkStmts(pass, list, h)
	if len(list) > 0 {
		if _, ok := list[len(list)-1].(*ast.ReturnStmt); ok {
			return nil
		}
	}
	return h
}

// setUnion replaces held with the union of the given end states,
// ignoring unreachable (nil) arms.
func setUnion(held map[string]bool, states []map[string]bool) {
	union := make(map[string]bool)
	for _, s := range states {
		for k := range s {
			union[k] = true
		}
	}
	for k := range held {
		delete(held, k)
	}
	for k := range union {
		held[k] = true
	}
}

func walkStmt(pass *analysis.Pass, s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, op := lockOp(pass, call); op != 0 {
				if op > 0 {
					held[key] = true
				} else {
					delete(held, key)
				}
				return
			}
		}
		checkExpr(pass, s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held for the remainder of
		// the body; the deferred call itself runs outside our window.
		for _, arg := range s.Call.Args {
			checkExpr(pass, arg, held)
		}
	case *ast.GoStmt:
		// Only the arguments evaluate on this goroutine.
		for _, arg := range s.Call.Args {
			checkExpr(pass, arg, held)
		}
	case *ast.SendStmt:
		if key := anyHeld(held); key != "" {
			pass.Reportf(s.Pos(), "channel send while %s is held", key)
		}
		checkExpr(pass, s.Chan, held)
		checkExpr(pass, s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			checkExpr(pass, e, held)
		}
		for _, e := range s.Lhs {
			checkExpr(pass, e, held)
		}
	case *ast.DeclStmt:
		checkExpr(pass, s, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			checkExpr(pass, e, held)
		}
	case *ast.IncDecStmt:
		checkExpr(pass, s.X, held)
	case *ast.LabeledStmt:
		walkStmt(pass, s.Stmt, held)
	case *ast.BlockStmt:
		walkStmts(pass, s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		checkExpr(pass, s.Cond, held)
		states := []map[string]bool{walkBranch(pass, s.Body.List, held)}
		switch e := s.Else.(type) {
		case nil:
			states = append(states, clone(held)) // condition false, skipped
		case *ast.BlockStmt:
			states = append(states, walkBranch(pass, e.List, held))
		default: // else-if chain
			h := clone(held)
			walkStmt(pass, e, h)
			states = append(states, h)
		}
		setUnion(held, states)
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Cond != nil {
			checkExpr(pass, s.Cond, held)
		}
		states := []map[string]bool{walkBranch(pass, s.Body.List, held), clone(held)}
		setUnion(held, states)
	case *ast.RangeStmt:
		checkExpr(pass, s.X, held)
		states := []map[string]bool{walkBranch(pass, s.Body.List, held), clone(held)}
		setUnion(held, states)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(pass, s.Init, held)
		}
		if s.Tag != nil {
			checkExpr(pass, s.Tag, held)
		}
		walkClauses(pass, s.Body.List, held)
	case *ast.TypeSwitchStmt:
		walkClauses(pass, s.Body.List, held)
	case *ast.SelectStmt:
		if key := anyHeld(held); key != "" && !hasDefault(s) {
			pass.Reportf(s.Pos(), "blocking select while %s is held", key)
		}
		var states []map[string]bool
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				states = append(states, walkBranch(pass, cc.Body, held))
			}
		}
		if len(states) > 0 {
			setUnion(held, states)
		}
	}
}

// checkExpr flags blocking operations inside an expression evaluated
// while locks are held. Nested function literals are skipped: defining
// one blocks nothing.
func checkExpr(pass *analysis.Pass, n ast.Node, held map[string]bool) {
	key := anyHeld(held)
	if key == "" {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive while %s is held", key)
			}
		case *ast.CallExpr:
			if kind := blockingCall(pass, n); kind != "" {
				pass.Reportf(n.Pos(), "%s while %s is held", kind, key)
			}
		}
		return true
	})
}

// blockingCall classifies calls that park the goroutine: sleeps, waits,
// and model round-trips (any Complete/CompleteBatch on a type declared
// in internal/llm — the scheduler yields its worker slot for these,
// which is impossible under a lock).
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	pkg, recv, name := analysis.FuncID(analysis.Callee(pass.TypesInfo, call))
	switch {
	case pkg == "time" && recv == "" && name == "Sleep":
		return "time.Sleep"
	case pkg == "sync" && recv == "WaitGroup" && name == "Wait":
		return "sync.WaitGroup.Wait"
	case pkg == "sync" && recv == "Cond" && name == "Wait":
		return "sync.Cond.Wait"
	case analysis.PathHasSuffix(pkg, "internal/llm") && recv != "" && (name == "Complete" || name == "CompleteBatch"):
		return "llm.Client round-trip (" + recv + "." + name + ")"
	}
	return ""
}

// walkClauses analyzes a switch/type-switch body: each case arm on a
// copy, then joins the reachable end states. Without a default clause
// the construct may match nothing, so the incoming state is also a
// reachable outcome.
func walkClauses(pass *analysis.Pass, clauses []ast.Stmt, held map[string]bool) {
	var states []map[string]bool
	hasDefaultCase := false
	for _, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefaultCase = true
		}
		for _, e := range cc.List {
			checkExpr(pass, e, held)
		}
		states = append(states, walkBranch(pass, cc.Body, held))
	}
	if !hasDefaultCase {
		states = append(states, clone(held))
	}
	setUnion(held, states)
}

func anyHeld(held map[string]bool) string {
	if len(held) == 0 {
		return ""
	}
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys[0]
}

func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func clone(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
