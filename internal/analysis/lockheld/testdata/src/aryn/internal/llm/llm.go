// Fixture dependency: a stand-in for the repo's llm.Client so the
// round-trip detection (Complete/CompleteBatch on internal/llm types)
// can be exercised hermetically.
package llm

import "context"

type Request struct{ Prompt string }
type Response struct{ Text string }

type Client struct{}

func (c *Client) Complete(ctx context.Context, req Request) (Response, error) {
	return Response{}, nil
}

func (c *Client) CompleteBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	return nil, nil
}
