// Fixture for the lockheld analyzer: blocking operations inside and
// outside critical sections, including the branch-join cases the
// analyzer must get right to avoid false positives.
package example

import (
	"context"
	"sync"
	"time"

	"aryn/internal/llm"
)

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
	c  *llm.Client
	ch chan int
}

func (s *state) sendWhileHeld() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while s\\.mu is held"
	s.mu.Unlock()
}

func (s *state) sendAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1 // lock released: clean
}

func (s *state) deferKeepsHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want "channel send while s\\.mu is held"
}

func (s *state) recvWhileHeld() {
	s.rw.RLock()
	v := <-s.ch // want "channel receive while s\\.rw is held"
	_ = v
	s.rw.RUnlock()
}

func (s *state) sleepWhileHeld() {
	s.mu.Lock()
	time.Sleep(time.Second) // want "time\\.Sleep while s\\.mu is held"
	s.mu.Unlock()
}

func (s *state) waitWhileHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "sync\\.WaitGroup\\.Wait while s\\.mu is held"
	s.mu.Unlock()
}

func (s *state) roundTripWhileHeld(ctx context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.c.Complete(ctx, llm.Request{Prompt: "q"}) // want "llm\\.Client round-trip \\(Client\\.Complete\\) while s\\.mu is held"
}

func (s *state) roundTripAfterUnlock(ctx context.Context) {
	s.mu.Lock()
	req := llm.Request{Prompt: "q"}
	s.mu.Unlock()
	_, _ = s.c.Complete(ctx, req) // lock released: clean
}

func (s *state) selectWhileHeld() {
	s.mu.Lock()
	select { // want "blocking select while s\\.mu is held"
	case <-s.ch:
	}
	s.mu.Unlock()
}

func (s *state) selectWithDefault() {
	s.mu.Lock()
	select { // non-blocking poll: clean
	case v := <-s.ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

// Every switch arm releases the lock before the blocking select — the
// branch join must leave the fall-through path clean (regression shape:
// the llm batcher's dispatch wake-up).
func (s *state) switchAllArmsUnlock(n int) {
	s.mu.Lock()
	switch n {
	case 0:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
	}
	select { // no reachable path holds the lock: clean
	case <-s.ch:
	}
}

func (s *state) ifOnlyOneArmUnlocks(b bool) {
	s.mu.Lock()
	if b {
		s.mu.Unlock()
	}
	s.ch <- 1 // want "channel send while s\\.mu is held"
	if !b {
		s.mu.Unlock()
	}
}

func (s *state) heldArmReturns(b bool) {
	s.mu.Lock()
	if !b {
		s.mu.Unlock()
		s.ch <- 1
		return
	}
	s.mu.Unlock()
	s.ch <- 1 // the arm that fell through unlocked: clean
}

// Function literals are independent windows: the body below runs
// whenever f is invoked, not inside this critical section...
func (s *state) litOutsideWindow() {
	s.mu.Lock()
	f := func() {
		s.ch <- 1 // defining a literal blocks nothing: clean
	}
	s.mu.Unlock()
	f()
}

// ...but a literal body holding its own lock is analyzed on its own.
func (s *state) litOwnWindow() {
	f := func() {
		s.mu.Lock()
		s.ch <- 1 // want "channel send while s\\.mu is held"
		s.mu.Unlock()
	}
	f()
}

// A suppressed finding: the send is sanctioned (buffered wake-up).
func (s *state) sanctioned() {
	s.mu.Lock()
	s.ch <- 1 //lint:allow lockheld fixture: buffered wake-up channel, never blocks
	s.mu.Unlock()
}
