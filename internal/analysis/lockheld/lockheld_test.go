package lockheld_test

import (
	"testing"

	"aryn/internal/analysis/analyzertest"
	"aryn/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	analyzertest.Run(t, "testdata", lockheld.Analyzer, "aryn/internal/example")
}
