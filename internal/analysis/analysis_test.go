package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"aryn/internal/analysis"
)

func TestPathHasSuffix(t *testing.T) {
	cases := []struct {
		path     string
		suffixes []string
		want     bool
	}{
		{"aryn/internal/docset", []string{"internal/docset"}, true},
		{"internal/docset", []string{"internal/docset"}, true},
		{"aryn/internal/docset", []string{"internal/luna", "internal/docset"}, true},
		{"aryn/internal/docsetx", []string{"internal/docset"}, false}, // segment-aligned, not a string suffix
		{"aryn/myinternal/docset", []string{"internal/docset"}, false},
		{"aryn/internal/docset/sub", []string{"internal/docset"}, false},
		{"aryn/internal/docset", nil, false},
	}
	for _, c := range cases {
		if got := analysis.PathHasSuffix(c.path, c.suffixes...); got != c.want {
			t.Errorf("PathHasSuffix(%q, %v) = %v, want %v", c.path, c.suffixes, got, c.want)
		}
	}
}

// TestSuppress pins the //lint:allow contract: the marker silences one
// named analyzer, on the flagged line or the line directly above it.
func TestSuppress(t *testing.T) {
	src := `package p

func f() {
	a() //lint:allow det sanctioned on the same line
	b()
	//lint:allow det sanctioned from the line above
	c()
	d() //lint:allow other a different analyzer's marker
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}

	diags := map[string]analysis.Diagnostic{}
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			name := call.Fun.(*ast.Ident).Name
			diags[name] = analysis.Diagnostic{Pos: call.Pos(), Message: name + " flagged"}
		}
		return true
	})
	all := []analysis.Diagnostic{diags["a"], diags["b"], diags["c"], diags["d"]}

	kept := analysis.Suppress(fset, []*ast.File{f}, "det", all)
	want := map[string]bool{"b flagged": true, "d flagged": true}
	if len(kept) != len(want) {
		t.Fatalf("Suppress kept %d diagnostics, want %d: %+v", len(kept), len(want), kept)
	}
	for _, d := range kept {
		if !want[d.Message] {
			t.Errorf("Suppress kept %q; expected only b and d to survive", d.Message)
		}
	}
}
