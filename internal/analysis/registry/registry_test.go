package registry_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"aryn/internal/analysis/registry"
)

// Every analyzer registered in the arynvet suite must ship golden
// fixtures and a test exercising them: an analyzer without fixtures can
// regress silently behind a green CI.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	all := registry.All()
	if len(all) == 0 {
		t.Fatal("registry is empty")
	}

	_, self, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate the registry source directory")
	}
	analysisDir := filepath.Dir(filepath.Dir(self))

	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q: Name, Doc, and Run are all mandatory", a.Name)
			continue
		}
		if seen[a.Name] {
			t.Errorf("analyzer %q registered twice", a.Name)
		}
		seen[a.Name] = true

		pkgDir := filepath.Join(analysisDir, a.Name)
		fixtures := filepath.Join(pkgDir, "testdata", "src")
		if fi, err := os.Stat(fixtures); err != nil || !fi.IsDir() {
			t.Errorf("analyzer %q: no fixture tree at %s", a.Name, fixtures)
			continue
		}
		if !hasWantComment(t, fixtures) {
			t.Errorf("analyzer %q: fixture tree %s has no `// want` expectation — at least one positive case is required", a.Name, fixtures)
		}
		if !hasTestFile(t, pkgDir) {
			t.Errorf("analyzer %q: no _test.go next to the analyzer in %s", a.Name, pkgDir)
		}
	}
}

// hasWantComment reports whether any fixture .go file under root
// carries a `// want "..."` expectation.
func hasWantComment(t *testing.T, root string) bool {
	t.Helper()
	found := false
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || found || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		if strings.Contains(string(src), "// want \"") {
			found = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	return found
}

func hasTestFile(t *testing.T, pkgDir string) bool {
	t.Helper()
	entries, err := os.ReadDir(pkgDir)
	if err != nil {
		t.Fatalf("reading %s: %v", pkgDir, err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}
