// Package registry enumerates the arynvet analyzer suite. It exists
// apart from cmd/arynvet so tests (and future drivers) can iterate the
// registered analyzers: the meta-test asserting every analyzer ships
// golden fixtures walks this list.
//
// Concurrency contract: All returns a fresh slice of shared, stateless
// analyzer values; safe for concurrent use.
package registry

import (
	"aryn/internal/analysis"
	"aryn/internal/analysis/ctxflow"
	"aryn/internal/analysis/determinism"
	"aryn/internal/analysis/lockheld"
	"aryn/internal/analysis/sseorder"
	"aryn/internal/analysis/wirestable"
)

// All returns every analyzer in the arynvet suite, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		determinism.Analyzer,
		lockheld.Analyzer,
		sseorder.Analyzer,
		wirestable.Analyzer,
	}
}
