// Package wirestable enforces the stability of the /v1 wire contract
// (internal/server/api). Three rules keep producer, consumers, and
// documentation in lockstep:
//
//   - every exported field of an api struct carries an explicit
//     snake_case json tag (or "-") — field names are wire surface, and
//     Go's default CamelCase marshaling leaks refactors onto the wire;
//   - api struct literals are keyed, everywhere in the tree — an
//     unkeyed literal silently reshuffles meaning when a DTO gains a
//     field;
//   - request decoders in the serving layer call DisallowUnknownFields
//     before Decode — silently dropped request fields are wire drift on
//     the read side.
//
// Concurrency contract: stateless; see package analysis.
package wirestable

import (
	"go/ast"
	"go/types"
	"reflect"
	"regexp"
	"strconv"
	"strings"

	"aryn/internal/analysis"
)

// Analyzer enforces the /v1 DTO conventions.
var Analyzer = &analysis.Analyzer{
	Name: "wirestable",
	Doc: "flag wire-contract drift in internal/server/api: missing or non-snake_case json tags, unkeyed api literals, lenient request decoders\n\n" +
		"The /v1 DTO package is frozen wire surface; this keeps its field names explicit, its literals keyed, " +
		"and its request decoding strict.",
	Run: run,
}

// apiPkg is the wire-contract package; decoderScope is where request
// bodies are decoded.
const apiPkg = "internal/server/api"

var decoderScope = []string{"internal/server", apiPkg}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func run(pass *analysis.Pass) (any, error) {
	inAPI := analysis.PathHasSuffix(pass.Pkg.Path(), apiPkg)
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if inAPI {
					checkTags(pass, n)
				}
			case *ast.CompositeLit:
				checkKeyed(pass, n)
			}
			return true
		})
	}
	if analysis.PathHasSuffix(pass.Pkg.Path(), decoderScope...) {
		for _, f := range pass.SrcFiles() {
			checkDecoders(pass, f)
		}
	}
	return nil, nil
}

// checkTags requires an explicit snake_case json tag on every exported,
// non-embedded field of an exported api struct.
func checkTags(pass *analysis.Pass, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok || !spec.Name.IsExported() {
		return
	}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded
		}
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			if field.Tag == nil {
				pass.Reportf(name.Pos(), "exported api field %s.%s has no json tag: field names are wire surface", spec.Name.Name, name.Name)
				continue
			}
			raw, err := strconv.Unquote(field.Tag.Value)
			if err != nil {
				continue
			}
			tag, ok := reflect.StructTag(raw).Lookup("json")
			if !ok {
				pass.Reportf(name.Pos(), "exported api field %s.%s has no json tag: field names are wire surface", spec.Name.Name, name.Name)
				continue
			}
			wire, _, _ := strings.Cut(tag, ",")
			if wire == "-" {
				continue
			}
			if !snakeCase.MatchString(wire) {
				pass.Reportf(name.Pos(), "api field %s.%s json tag %q is not snake_case", spec.Name.Name, name.Name, wire)
			}
		}
	}
}

// checkKeyed flags unkeyed composite literals of api struct types, in
// whatever package they appear.
func checkKeyed(pass *analysis.Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return
	}
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !analysis.PathHasSuffix(obj.Pkg().Path(), apiPkg) {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, e := range lit.Elts {
		if _, ok := e.(*ast.KeyValueExpr); !ok {
			pass.Reportf(lit.Pos(), "unkeyed %s.%s literal: adding a DTO field would silently reshuffle it", obj.Pkg().Name(), obj.Name())
			return
		}
	}
}

// checkDecoders enforces DisallowUnknownFields on request decoders: a
// chained json.NewDecoder(...).Decode(...) can never be strict, and a
// decoder variable must call DisallowUnknownFields somewhere in the same
// function as its Decode.
func checkDecoders(pass *analysis.Pass, f *ast.File) {
	var funcs []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				funcs = append(funcs, n.Body)
			}
			return false
		case *ast.FuncLit:
			funcs = append(funcs, n.Body)
			return false
		}
		return true
	})
	for _, body := range funcs {
		checkDecodersIn(pass, body)
	}
}

func checkDecodersIn(pass *analysis.Pass, body ast.Node) {
	type decoderUse struct {
		decodes []*ast.CallExpr
		strict  bool
	}
	uses := make(map[types.Object]*decoderUse)

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, recv, name := analysis.FuncID(analysis.Callee(pass.TypesInfo, call))
		if pkg != "encoding/json" || recv != "Decoder" {
			return true
		}
		// Chained json.NewDecoder(r).Decode(v): strictness is impossible.
		if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok && name == "Decode" {
			ipkg, irecv, iname := analysis.FuncID(analysis.Callee(pass.TypesInfo, inner))
			if ipkg == "encoding/json" && irecv == "" && iname == "NewDecoder" {
				pass.Reportf(call.Pos(), "json.NewDecoder(...).Decode chained directly: call DisallowUnknownFields first so unknown request fields fail loudly")
				return true
			}
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		u := uses[obj]
		if u == nil {
			u = &decoderUse{}
			uses[obj] = u
		}
		switch name {
		case "Decode":
			u.decodes = append(u.decodes, call)
		case "DisallowUnknownFields":
			u.strict = true
		}
		return true
	})

	for _, u := range uses {
		if u.strict {
			continue
		}
		for _, call := range u.decodes {
			pass.Reportf(call.Pos(), "decoder Decode without DisallowUnknownFields: unknown request fields would be dropped silently")
		}
	}
}
