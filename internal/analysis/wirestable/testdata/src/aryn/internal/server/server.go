// Fixture: the serving layer consuming the wire-contract package —
// literal keying is enforced everywhere, decoder strictness in the
// decoder scope.
package server

import (
	"encoding/json"
	"io"

	"aryn/internal/server/api"
)

func keyed() api.QueryRequest {
	return api.QueryRequest{Question: "q"} // keyed: clean
}

func unkeyed() api.Envelope {
	return api.Envelope{api.QueryRequest{Question: "q"}, "id"} // want "unkeyed api\\.Envelope literal"
}

func decodeChained(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v) // want "Decode chained directly"
}

func decodeLenient(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	return dec.Decode(v) // want "decoder Decode without DisallowUnknownFields"
}

func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	return dec.Decode(v) // strict: clean
}
