// Fixture: a stand-in for the frozen /v1 wire-contract package. Every
// exported field of an exported struct is wire surface.
package api

type QueryRequest struct {
	Question   string `json:"question"`
	MaxDocs    int    // want "exported api field QueryRequest\\.MaxDocs has no json tag"
	PlanHint   string `json:"PlanHint"`    // want "json tag \"PlanHint\" is not snake_case"
	TraceLevel string `json:"trace-level"` // want "json tag \"trace-level\" is not snake_case"
	NoJSONKey  string `yaml:"no_json"`     // want "exported api field QueryRequest\\.NoJSONKey has no json tag"
	internal   string // unexported: not wire surface
	Skipped    string `json:"-"` // explicitly not serialized: clean
}

type queryState struct {
	Field string // unexported type: exempt
}

type Envelope struct {
	QueryRequest        // embedded: exempt
	ID           string `json:"id"`
}

func defaults() QueryRequest {
	return QueryRequest{"q", 10, "", "", "", "", ""} // want "unkeyed api\\.QueryRequest literal"
}
