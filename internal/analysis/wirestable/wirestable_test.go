package wirestable_test

import (
	"testing"

	"aryn/internal/analysis/analyzertest"
	"aryn/internal/analysis/wirestable"
)

func TestWirestable(t *testing.T) {
	analyzertest.Run(t, "testdata", wirestable.Analyzer,
		"aryn/internal/server/api", // tag discipline + in-package literals
		"aryn/internal/server",     // cross-package literals + decoder strictness
	)
}
