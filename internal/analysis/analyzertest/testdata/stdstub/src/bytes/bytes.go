// Package bytes is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package bytes

type Buffer struct{ buf []byte }

func (b *Buffer) Write(p []byte) (int, error)       { return 0, nil }
func (b *Buffer) WriteString(s string) (int, error) { return 0, nil }
func (b *Buffer) String() string                    { return "" }
func (b *Buffer) Bytes() []byte                     { return nil }
