// Package strings is a type-only stub of the standard library package
// for analyzer fixtures (see package analyzertest).
package strings

type Builder struct{ buf []byte }

func (b *Builder) WriteString(s string) (int, error) { return 0, nil }
func (b *Builder) WriteByte(c byte) error            { return nil }
func (b *Builder) Write(p []byte) (int, error)       { return 0, nil }
func (b *Builder) String() string                    { return "" }

func Join(elems []string, sep string) string { return "" }
