// Package sort is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package sort

func Strings(x []string)                          {}
func Ints(x []int)                                {}
func Slice(x any, less func(i, j int) bool)       {}
func SliceStable(x any, less func(i, j int) bool) {}
