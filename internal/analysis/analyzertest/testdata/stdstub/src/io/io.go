// Package io is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package io

type Reader interface {
	Read(p []byte) (n int, err error)
}

type Writer interface {
	Write(p []byte) (n int, err error)
}
