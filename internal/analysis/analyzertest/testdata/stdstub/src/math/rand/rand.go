// Package rand is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package rand

type Source interface{ Int63() int64 }

type stubSource struct{}

func (stubSource) Int63() int64 { return 0 }

func NewSource(seed int64) Source { return stubSource{} }

type Rand struct{ src Source }

func New(src Source) *Rand { return &Rand{src: src} }

func (r *Rand) Int() int                           { return 0 }
func (r *Rand) Intn(n int) int                     { return 0 }
func (r *Rand) Float64() float64                   { return 0 }
func (r *Rand) Shuffle(n int, swap func(i, j int)) {}
func (r *Rand) Perm(n int) []int                   { return nil }

func Int() int                           { return 0 }
func Intn(n int) int                     { return 0 }
func Int63() int64                       { return 0 }
func Float64() float64                   { return 0 }
func Perm(n int) []int                   { return nil }
func Shuffle(n int, swap func(i, j int)) {}
func Seed(seed int64)                    {}
