// Package time is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package time

type Duration int64

const (
	Nanosecond  Duration = 1
	Millisecond          = 1000000 * Nanosecond
	Second               = 1000 * Millisecond
)

type Time struct{ wall uint64 }

func (t Time) Sub(u Time) Duration { return 0 }
func (t Time) UnixNano() int64     { return 0 }

func Now() Time             { return Time{} }
func Since(t Time) Duration { return 0 }
func Sleep(d Duration)      {}
func After(d Duration) <-chan Time {
	return nil
}
