// Package json is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package json

import "io"

type RawMessage []byte

func Marshal(v any) ([]byte, error)      { return nil, nil }
func Unmarshal(data []byte, v any) error { return nil }

type Decoder struct{ r io.Reader }

func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

func (d *Decoder) Decode(v any) error     { return nil }
func (d *Decoder) DisallowUnknownFields() {}
func (d *Decoder) UseNumber()             {}
