// Package fmt is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package fmt

import "io"

func Sprintf(format string, a ...any) string { return "" }
func Sprint(a ...any) string                 { return "" }
func Errorf(format string, a ...any) error   { return nil }

func Fprintf(w io.Writer, format string, a ...any) (int, error) { return 0, nil }
func Fprint(w io.Writer, a ...any) (int, error)                 { return 0, nil }
func Fprintln(w io.Writer, a ...any) (int, error)               { return 0, nil }
func Printf(format string, a ...any) (int, error)               { return 0, nil }
func Println(a ...any) (int, error)                             { return 0, nil }
