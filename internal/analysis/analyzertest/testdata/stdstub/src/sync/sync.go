// Package sync is a type-only stub of the standard library package for
// analyzer fixtures (see package analyzertest).
package sync

type Mutex struct{ state int32 }

func (m *Mutex) Lock()         {}
func (m *Mutex) Unlock()       {}
func (m *Mutex) TryLock() bool { return true }

type RWMutex struct{ state int32 }

func (m *RWMutex) Lock()    {}
func (m *RWMutex) Unlock()  {}
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

type WaitGroup struct{ state int32 }

func (w *WaitGroup) Add(delta int) {}
func (w *WaitGroup) Done()         {}
func (w *WaitGroup) Wait()         {}

type Locker interface {
	Lock()
	Unlock()
}

type Cond struct{ L Locker }

func NewCond(l Locker) *Cond { return &Cond{L: l} }
func (c *Cond) Wait()        {}
func (c *Cond) Signal()      {}
func (c *Cond) Broadcast()   {}
