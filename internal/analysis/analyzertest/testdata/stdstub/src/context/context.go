// Package context is a type-only stub of the standard library package
// for analyzer fixtures (see package analyzertest).
package context

type Context interface {
	Done() <-chan struct{}
	Err() error
}

type CancelFunc func()

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }
func (emptyCtx) Err() error            { return nil }

func Background() Context { return emptyCtx{} }
func TODO() Context       { return emptyCtx{} }

func WithCancel(parent Context) (Context, CancelFunc) { return parent, func() {} }
