// Package analyzertest is the golden-test harness for arynvet analyzers,
// in the style of golang.org/x/tools/go/analysis/analysistest: each
// analyzer package carries a testdata/src/<importpath>/ fixture tree;
// fixture lines that should be flagged carry a trailing
// `// want "regexp"` comment; the harness loads the fixture package,
// runs the analyzer, and fails on any unmatched diagnostic or unmet
// expectation.
//
// Fixtures are loaded GOPATH-style, so an analyzer scoped to (say)
// aryn/internal/docset is exercised against a fixture package with
// exactly that import path. Imports resolve with this precedence:
//
//  1. the analyzer's own testdata/src tree (fixture dependencies),
//  2. the shared stub tree under analyzertest/testdata/stdstub/src —
//     minimal
//     source stand-ins for the handful of stdlib packages fixtures use
//     (sync, time, context, ...), keeping tests hermetic and fast,
//  3. the real standard library, type-checked from $GOROOT source.
//
// The //lint:allow suppression filter runs exactly as in the unit
// driver, so fixtures pin suppression semantics too.
//
// Concurrency contract: a Loader is single-goroutine; each test creates
// its own.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"aryn/internal/analysis"
)

// Run loads each fixture package (an import path under
// testdata/src/) with the analyzer under test and checks its
// diagnostics against the fixtures' `// want` expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, importPaths ...string) {
	t.Helper()
	for _, path := range importPaths {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			ld := newLoader(testdata)
			fset, files, pkg, info, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}

			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     files,
				Pkg:       pkg,
				TypesInfo: info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if _, err := a.Run(pass); err != nil {
				t.Fatalf("analyzer %s: %v", a.Name, err)
			}
			diags = analysis.Suppress(fset, files, a.Name, diags)

			checkExpectations(t, fset, files, diags)
		})
	}
}

// expectation is one `// want "re"` clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitQuoted(t, pos, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// splitQuoted parses the space-separated quoted regexps of a want
// clause: `"re1" "re2"`.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want clause must be a sequence of quoted regexps, got %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want regexp in %q", pos, s)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, s[:end+1], err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

// loader type-checks fixture packages with the documented import
// precedence.
type loader struct {
	fset     *token.FileSet
	testdata string
	stubs    string
	std      types.Importer
	pkgs     map[string]*types.Package
	// info accumulates type facts for every fixture package loaded, so
	// the pass sees uses inside fixture dependencies too.
	info *types.Info
}

func newLoader(testdata string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:     fset,
		testdata: testdata,
		stubs:    filepath.Join(selfDir(), "testdata", "stdstub", "src"),
		std:      importer.ForCompiler(fset, "source", nil),
		pkgs:     make(map[string]*types.Package),
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Instances:  make(map[*ast.Ident]types.Instance),
			Scopes:     make(map[ast.Node]*types.Scope),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		},
	}
}

// load type-checks the fixture package at importPath and returns its
// syntax and types.
func (ld *loader) load(importPath string) (*token.FileSet, []*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(ld.testdata, "src", filepath.FromSlash(importPath))
	files, err := ld.parseDir(dir)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	tc := &types.Config{Importer: ld, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	pkg, err := tc.Check(importPath, ld.fset, files, ld.info)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return ld.fset, files, pkg, ld.info, nil
}

// Import implements types.Importer with the fixture → stub → GOROOT
// precedence.
func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	for _, root := range []string{filepath.Join(ld.testdata, "src"), ld.stubs} {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			files, err := ld.parseDir(dir)
			if err != nil {
				return nil, err
			}
			tc := &types.Config{Importer: ld, Sizes: types.SizesFor("gc", runtime.GOARCH)}
			pkg, err := tc.Check(path, ld.fset, files, ld.info)
			if err != nil {
				return nil, fmt.Errorf("typechecking %s (from %s): %v", path, dir, err)
			}
			ld.pkgs[path] = pkg
			return pkg, nil
		}
	}
	pkg, err := ld.std.Import(path)
	if err == nil {
		ld.pkgs[path] = pkg
	}
	return pkg, err
}

func (ld *loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	return files, nil
}

// selfDir locates this package's source directory so the shared stub
// tree resolves regardless of the test's working directory.
func selfDir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "."
	}
	return filepath.Dir(file)
}
