// Package ctxflow enforces context discipline on request paths: work
// started on behalf of a request must be cancelable from that request.
// It flags, inside the serving and execution packages:
//
//   - context.Background() / context.TODO() — a fresh root context
//     detaches the work from request cancellation and server shutdown
//     (command mains and tests are out of scope; deliberately detached
//     work — async job runners, shared batch dispatch — carries a
//     //lint:allow ctxflow marker with its justification);
//   - goroutines launched from a function literal that references no
//     context, channel, or WaitGroup — the fire-and-forget shape that
//     leaks goroutines when the request goes away (the SSE drain path's
//     historical bug class).
//
// Concurrency contract: stateless; see package analysis.
package ctxflow

import (
	"go/ast"
	"go/types"

	"aryn/internal/analysis"
)

// Analyzer flags uncancelable contexts and unsupervised goroutines in
// request paths.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/TODO() and unsupervised goroutines in request paths\n\n" +
		"Request-path work must descend from the request context (or the server lifecycle), so cancellation " +
		"and shutdown reach it; goroutines must be joined by a context, channel, or WaitGroup.",
	Run: run,
}

// scope is the set of request-path package suffixes the invariant
// covers: the HTTP serving layer and everything a request executes
// through.
var scope = []string{
	"internal/server",
	"internal/docset",
	"internal/luna",
	"internal/llm",
	"internal/core",
	"internal/index",
	"internal/scenario",
}

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	for _, f := range pass.SrcFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				pkg, recv, name := analysis.FuncID(analysis.Callee(pass.TypesInfo, n))
				if pkg == "context" && recv == "" && (name == "Background" || name == "TODO") {
					pass.Reportf(n.Pos(), "context.%s on a request path detaches work from cancellation: derive from the request or server context", name)
				}
			case *ast.GoStmt:
				checkGo(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkGo flags `go func(){...}()` launches with no supervision signal:
// no context to observe, no channel to communicate over, no WaitGroup to
// join. Named-function launches are not analyzed (their bodies may live
// elsewhere); the fire-and-forget literal is the leak shape this guards.
func checkGo(pass *analysis.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	for _, arg := range g.Call.Args {
		if supervisionType(pass.TypesInfo.TypeOf(arg)) {
			return
		}
	}
	supervised := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if supervised {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && supervisionType(obj.Type()) {
				supervised = true
			}
		}
		return true
	})
	if !supervised {
		pass.Reportf(g.Pos(), "goroutine has no context, channel, or WaitGroup: it cannot be canceled or joined and will leak")
	}
}

// supervisionType reports types that tie a goroutine to a lifecycle: a
// context, any channel, a WaitGroup, or a time.Ticker/Timer (whose Stop
// is driven by an owner).
func supervisionType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if analysis.IsNamedType(t, "context", "Context") {
		return true
	}
	if analysis.IsNamedType(t, "sync", "WaitGroup") {
		return true
	}
	return false
}
