// Fixture for the ctxflow analyzer: fresh root contexts and
// unsupervised goroutines on a request path (the import path ends in
// internal/server, which is in scope).
package server

import (
	"context"
	"sync"
)

func roots(ctx context.Context) {
	_ = context.Background() // want "context\\.Background on a request path detaches work from cancellation"
	_ = context.TODO()       // want "context\\.TODO on a request path detaches work from cancellation"

	child, cancel := context.WithCancel(ctx) // deriving from the request: clean
	defer cancel()
	_ = child
}

// Deliberately detached work carries the suppression marker with its
// justification.
func detached() {
	ctx := context.Background() //lint:allow ctxflow fixture: deliberately detached background job
	_ = ctx
}

func goroutines(ctx context.Context, done chan struct{}) {
	go func() { // want "goroutine has no context, channel, or WaitGroup"
		work()
	}()

	go func(ctx context.Context) { // supervised: context passed as argument
		work()
	}(ctx)

	go func() { // supervised: joined through the channel it closes over
		work()
		<-done
	}()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // supervised: WaitGroup membership
		defer wg.Done()
		work()
	}()
	wg.Wait()

	go work() // named-function launch: body lives elsewhere, not analyzed
}

func work() {}
