package ctxflow_test

import (
	"testing"

	"aryn/internal/analysis/analyzertest"
	"aryn/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxflow.Analyzer, "aryn/internal/server")
}
