// Fixture emitter file: stream.go is the one place allowed to assemble
// SSE frames.
package server

import (
	"fmt"
	"io"
)

func send(w io.Writer, id int, event, data string) {
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data) // emitter file: clean
}
