// Fixture handler file: frame assembly anywhere but stream.go bypasses
// the id-monotonic emitter.
package server

import (
	"fmt"
	"io"
)

func handler(w io.Writer) {
	fmt.Fprintf(w, "data: %s\n\n", "payload") // want "SSE frame assembled outside the id-monotonic emitter"
	s := "event: done\n\n"                    // want "SSE frame assembled outside the id-monotonic emitter"
	_ = s
	m := "x\ndata: y" // want "SSE frame assembled outside the id-monotonic emitter"
	_ = m

	fmt.Fprintf(w, "plain text %s", "x") // not a frame: clean
	_ = "metadata: value"                // field prefix is anchored at line start: clean
}
