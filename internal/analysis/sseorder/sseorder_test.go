package sseorder_test

import (
	"testing"

	"aryn/internal/analysis/analyzertest"
	"aryn/internal/analysis/sseorder"
)

func TestSSEOrder(t *testing.T) {
	analyzertest.Run(t, "testdata", sseorder.Analyzer, "aryn/internal/server")
}
