// Package sseorder enforces single-point SSE emission: every
// Server-Sent-Events frame in the serving layer is written by the
// id-monotonic emitter in internal/server/stream.go (sseConn.send), and
// nowhere else. The streaming contract — strictly increasing event ids,
// exactly one terminal event, flush-per-frame — is a property of that
// one code path; a handler hand-writing "data: ..." bypasses the id
// counter and silently breaks client resume and event ordering.
//
// The check is textual at the frame level: any string literal in
// internal/server (outside stream.go) whose content contains an SSE
// field prefix at the start of a line ("id: ", "event: ", "data: ",
// "retry: ") is a frame being assembled outside the emitter.
//
// Concurrency contract: stateless; see package analysis.
package sseorder

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"

	"aryn/internal/analysis"
)

// Analyzer flags SSE frames written outside the emitter.
var Analyzer = &analysis.Analyzer{
	Name: "sseorder",
	Doc: "flag SSE frame writes outside the id-monotonic emitter (internal/server/stream.go)\n\n" +
		"Every SSE frame must flow through sseConn.send so event ids stay strictly increasing and " +
		"each stream has exactly one terminal event.",
	Run: run,
}

// serverPkg scopes the check; emitterFile is the one file allowed to
// assemble frames.
const (
	serverPkg   = "internal/server"
	emitterFile = "stream.go"
)

// frameField matches an SSE field prefix at the start of a line of the
// literal's content.
var frameField = regexp.MustCompile(`(?m)^(id|event|data|retry): `)

func run(pass *analysis.Pass) (any, error) {
	if !analysis.PathHasSuffix(pass.Pkg.Path(), serverPkg) ||
		analysis.PathHasSuffix(pass.Pkg.Path(), serverPkg+"/api") {
		return nil, nil
	}
	for _, f := range pass.SrcFiles() {
		if analysis.FileBase(pass.Fset, f.Pos()) == emitterFile {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			content, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if frameField.MatchString(content) {
				pass.Reportf(lit.Pos(), "SSE frame assembled outside the id-monotonic emitter: route it through sseConn.send (stream.go)")
			}
			return true
		})
	}
	return nil, nil
}
