package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// An Analyzer describes one invariant checker: a name (which doubles as
// the -flag that disables it and the suppression key in //lint:allow
// markers), one-paragraph documentation, and the Run function applied to
// each package.
type Analyzer struct {
	// Name is a short lowercase identifier, unique within the suite.
	Name string
	// Doc states the enforced invariant; the first line is the summary
	// shown by flag help.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	// The result value is unused by the unit driver and exists only for
	// interface parity with x/tools analyzers.
	Run func(*Pass) (any, error)
}

// A Pass carries one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// A Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// SrcFiles returns the pass's non-test files: analyzers enforce
// production invariants, and test code legitimately uses
// context.Background, detached goroutines, and unordered iteration.
func (p *Pass) SrcFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// PathHasSuffix reports whether the package path ends in one of the given
// path suffixes (segment-aligned, so "internal/luna" does not match
// "internal/lunatic"). Analyzers use it to scope themselves to the
// packages whose invariant they enforce while staying testable against
// fixture trees rooted elsewhere.
func PathHasSuffix(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Callee resolves the statically-called function or method of a call
// expression, or nil for calls through function values, conversions, and
// builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// FuncID names a function for matching: package-level functions yield
// ("pkg/path", "", "Name"); methods (including interface methods) yield
// ("pkg/path", "Type", "Name") with pointer receivers dereferenced.
func FuncID(fn *types.Func) (pkgPath, typeName, name string) {
	if fn == nil {
		return "", "", ""
	}
	name = fn.Name()
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return pkgPath, "", name
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		typeName = named.Obj().Name()
		if named.Obj().Pkg() != nil {
			pkgPath = named.Obj().Pkg().Path()
		}
	}
	return pkgPath, typeName, name
}

// IsNamedType reports whether t (after pointer dereference) is the named
// type typeName defined in a package whose path ends in pkgSuffix.
func IsNamedType(t types.Type, pkgSuffix, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil {
		return false
	}
	return PathHasSuffix(obj.Pkg().Path(), pkgSuffix)
}

// allowMarker is the suppression comment prefix: //lint:allow <analyzer>
// <reason>. See docs/static-analysis.md for policy.
const allowMarker = "lint:allow"

// Suppress filters out diagnostics covered by a //lint:allow marker for
// the named analyzer on the diagnostic's line or the line above it. Both
// the unit driver and the analyzertest harness apply it, so fixtures can
// pin suppression behavior.
func Suppress(fset *token.FileSet, files []*ast.File, analyzer string, diags []Diagnostic) []Diagnostic {
	// allowed maps file -> line -> marker present for this analyzer.
	// codeLines marks lines on which a non-comment node starts: a marker
	// trailing code on its line suppresses that line only, while a
	// standalone marker suppresses the line below it.
	allowed := make(map[string]map[int]bool)
	codeLines := make(map[string]map[int]bool)
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		cl := codeLines[fname]
		if cl == nil {
			cl = make(map[int]bool)
			codeLines[fname] = cl
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup:
				return true
			}
			cl[fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, allowMarker) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowMarker))
				if len(fields) == 0 || fields[0] != analyzer {
					continue
				}
				pos := fset.Position(c.Pos())
				m := allowed[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					allowed[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if m := allowed[pos.Filename]; m != nil {
			if m[pos.Line] {
				continue
			}
			if m[pos.Line-1] && !codeLines[pos.Filename][pos.Line-1] {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// FileBase returns the base name of the file containing pos.
func FileBase(fset *token.FileSet, pos token.Pos) string {
	return filepath.Base(fset.Position(pos).Filename)
}
