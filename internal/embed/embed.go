package embed

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"aryn/internal/llm"
)

// Dim is the embedding dimensionality. MiniLM uses 384 trained
// dimensions; random-projection hash embeddings need more headroom to
// push the inter-document noise floor (~1/sqrt(Dim)) below weak true
// signals, so the simulator uses 1024.
const Dim = 1024

// Embedder converts text to fixed-size vectors.
type Embedder interface {
	// Embed returns the vector for text; always length Dim().
	Embed(text string) []float32
	// Dim returns the vector dimensionality.
	Dim() int
	// Name identifies the model for traces.
	Name() string
}

// Hash is the hashed bag-of-tokens embedder. Token directions are pure
// functions of (seed, token), so they are memoized: the first sighting of
// a token pays for the Gaussian generation, every later Embed — per chunk
// at ingest, per query at ask-time — reuses the cached unit direction.
// Safe for concurrent use.
type Hash struct {
	seed int64
	dim  int

	mu   sync.RWMutex
	dirs map[string][]float32 // token -> cached unit direction (read-only)
}

// NewHash builds an embedder with the given seed. Different seeds produce
// incompatible vector spaces, like different embedding models.
func NewHash(seed int64) *Hash {
	return &Hash{seed: seed, dim: Dim, dirs: make(map[string][]float32)}
}

// Name identifies the model.
func (h *Hash) Name() string { return "hash-minilm-sim" }

// Dim returns the vector dimensionality.
func (h *Hash) Dim() int { return h.dim }

// functionWords carry no retrieval signal and are excluded from
// embeddings, approximating the attention-weighting of a trained encoder.
var functionWords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "for": true, "from": true, "had": true,
	"has": true, "have": true, "how": true, "in": true, "is": true,
	"it": true, "its": true, "many": true, "no": true, "not": true,
	"of": true, "on": true, "or": true, "that": true, "the": true,
	"there": true, "this": true, "to": true, "was": true, "were": true,
	"what": true, "which": true, "with": true,
}

// stem applies a light plural fold ("incidents" -> "incident"), standing
// in for the sub-word tokenization of real embedding models.
func stem(tok string) string {
	if len(tok) > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") {
		return tok[:len(tok)-1]
	}
	return tok
}

// synonymWeight is the contribution of a token's synonym directions — the
// semantic smoothing that makes "problems" land near "fault"/"failure"
// vocabulary, as a trained encoder's geometry does.
const synonymWeight = 0.35

// encoderAssociations are additional embedding-space neighborhoods beyond
// the lexical synonym table: causal/liability vocabulary clusters tightly
// in trained encoders (which is precisely why NTSB disclaimers get
// retrieved for "due to ... problems" questions, §7.2).
var encoderAssociations = map[string][]string{
	"problem":  {"fault", "blame", "liability"},
	"due":      {"cause", "caused", "because"},
	"cause":    {"fault", "blame", "due", "reason"},
	"caused":   {"cause", "fault", "due"},
	"why":      {"cause", "reason"},
	"reason":   {"cause", "why"},
	"fault":    {"blame", "cause", "liability"},
	"incident": {"accident"},
	"accident": {"incident"},
}

// Embed computes the normalized hashed bag-of-tokens vector of text. The
// zero vector is returned for token-free text. Tokens accumulate in sorted
// order so floating-point summation is byte-reproducible across runs.
func (h *Hash) Embed(text string) []float32 {
	vec := make([]float32, h.dim)
	counts := map[string]int{}
	for _, raw := range llm.Tokenize(text) {
		if functionWords[raw] {
			continue
		}
		counts[stem(raw)]++
	}
	toks := make([]string, 0, len(counts))
	for tok := range counts {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		// Sub-linear term frequency, as in standard lexical weighting.
		w := float32(1 + math.Log(float64(counts[tok])))
		dir := h.tokenDirection(tok)
		for i, v := range dir {
			vec[i] += w * v
		}
		// Semantic smoothing toward synonym directions.
		syns := llm.Expand(tok)
		if len(syns) > 5 {
			syns = syns[:5]
		}
		neighbors := append(syns[1:], encoderAssociations[tok]...)
		for _, syn := range neighbors {
			for _, word := range strings.Fields(syn) {
				sdir := h.tokenDirection(stem(word))
				for i, v := range sdir {
					vec[i] += synonymWeight * w * v
				}
			}
		}
	}
	Normalize(vec)
	return vec
}

// tokenDirection derives the token's unit direction from its hash,
// memoizing the result. Cached slices are shared and must not be written.
func (h *Hash) tokenDirection(tok string) []float32 {
	h.mu.RLock()
	dir, ok := h.dirs[tok]
	h.mu.RUnlock()
	if ok {
		return dir
	}
	hs := fnv.New64a()
	hs.Write([]byte(tok))
	rng := rand.New(rand.NewSource(h.seed ^ int64(hs.Sum64())))
	dir = make([]float32, h.dim)
	for i := range dir {
		dir[i] = float32(rng.NormFloat64())
	}
	Normalize(dir)
	h.mu.Lock()
	if prior, ok := h.dirs[tok]; ok {
		dir = prior // a concurrent Embed won the race; share its slice
	} else if len(h.dirs) < maxCachedDirections {
		h.dirs[tok] = dir
	}
	h.mu.Unlock()
	return dir
}

// maxCachedDirections bounds the direction cache. Each entry costs
// Dim*4 bytes (4 KB), so the cap holds worst-case residency to ~64 MB.
// Common vocabulary is seen (and cached) early; once full, long-tail
// tokens — report numbers, dates, one-off IDs — are recomputed instead
// of growing the cache without bound.
const maxCachedDirections = 16384

// Normalize scales vec to unit L2 norm in place (no-op on zero vectors).
func Normalize(vec []float32) {
	var sum float64
	for _, v := range vec {
		sum += float64(v) * float64(v)
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range vec {
		vec[i] *= inv
	}
}

// Cosine returns the cosine similarity of a and b (0 for mismatched or
// zero-norm inputs). For unit vectors this equals the dot product.
func Cosine(a, b []float32) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Dot returns the inner product of a and b (0 for mismatched inputs).
// Embed emits unit vectors, so for embeddings Dot equals Cosine without
// recomputing either norm — the score function of the vector-index hot
// path.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}
