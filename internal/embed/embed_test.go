package embed

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	e := NewHash(1)
	a := e.Embed("the engine lost power during cruise")
	b := e.Embed("the engine lost power during cruise")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same text should embed identically")
		}
	}
}

func TestEmbedUnitNorm(t *testing.T) {
	e := NewHash(1)
	v := e.Embed("substantial damage to the left wing")
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	if math.Abs(sum-1) > 1e-4 {
		t.Errorf("norm^2 = %v, want 1", sum)
	}
	if len(v) != Dim {
		t.Errorf("dim = %d, want %d", len(v), Dim)
	}
}

func TestEmbedZeroForEmpty(t *testing.T) {
	e := NewHash(1)
	v := e.Embed("!!! --- ???")
	for _, x := range v {
		if x != 0 {
			t.Fatal("token-free text should embed to zero vector")
		}
	}
}

func TestSimilarTextsCloserThanUnrelated(t *testing.T) {
	e := NewHash(1)
	q := e.Embed("engine power loss during flight")
	related := e.Embed("the airplane had a total loss of engine power")
	unrelated := e.Embed("quarterly municipal budget allocations for sidewalk repair")
	if Cosine(q, related) <= Cosine(q, unrelated) {
		t.Errorf("related %.3f should beat unrelated %.3f",
			Cosine(q, related), Cosine(q, unrelated))
	}
	if Cosine(q, related) < 0.2 {
		t.Errorf("related similarity too low: %.3f", Cosine(q, related))
	}
}

func TestDifferentSeedsDifferentSpaces(t *testing.T) {
	a := NewHash(1).Embed("engine failure")
	b := NewHash(2).Embed("engine failure")
	if Cosine(a, b) > 0.5 {
		t.Errorf("different seeds should give unrelated spaces, cos=%.3f", Cosine(a, b))
	}
}

func TestCosineEdgeCases(t *testing.T) {
	if Cosine([]float32{1, 0}, []float32{1, 0, 0}) != 0 {
		t.Error("mismatched dims should return 0")
	}
	if Cosine(nil, nil) != 0 {
		t.Error("nil vectors should return 0")
	}
	if Cosine([]float32{0, 0}, []float32{1, 1}) != 0 {
		t.Error("zero vector should return 0")
	}
	if math.Abs(Cosine([]float32{3, 4}, []float32{3, 4})-1) > 1e-9 {
		t.Error("self-cosine should be 1")
	}
}

func TestCosineSymmetricAndBounded(t *testing.T) {
	e := NewHash(7)
	f := func(s1, s2 string) bool {
		a, b := e.Embed(s1), e.Embed(s2)
		c1, c2 := Cosine(a, b), Cosine(b, a)
		return math.Abs(c1-c2) < 1e-9 && c1 >= -1-1e-9 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTokenDirectionCacheTransparent proves memoized directions change
// nothing observable: a warm embedder reproduces a cold embedder's output
// byte for byte.
func TestTokenDirectionCacheTransparent(t *testing.T) {
	texts := []string{
		"the engine lost power during cruise",
		"substantial damage to the left wing",
		"engine power loss during the forced landing", // shares tokens with both
	}
	warm := NewHash(1)
	for _, txt := range texts { // populate the cache
		warm.Embed(txt)
	}
	for _, txt := range texts {
		cold := NewHash(1) // fresh cache per text
		a, b := cold.Embed(txt), warm.Embed(txt)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cached embedding diverged for %q at dim %d", txt, i)
			}
		}
	}
}

// TestEmbedConcurrent exercises the direction cache under parallel Embed
// calls (meaningful under -race, which `make test` always enables).
func TestEmbedConcurrent(t *testing.T) {
	e := NewHash(1)
	want := NewHash(1).Embed("engine fire during landing approach")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := e.Embed("engine fire during landing approach")
				for j := range got {
					if got[j] != want[j] {
						t.Errorf("worker %d: concurrent embed diverged", w)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDotMatchesCosineForUnitVectors(t *testing.T) {
	e := NewHash(1)
	a := e.Embed("engine power loss during flight")
	b := e.Embed("the airplane had a total loss of engine power")
	if math.Abs(Dot(a, b)-Cosine(a, b)) > 1e-6 {
		t.Errorf("Dot %.9f should match Cosine %.9f on unit vectors", Dot(a, b), Cosine(a, b))
	}
	if Dot([]float32{1}, []float32{1, 2}) != 0 {
		t.Error("mismatched dims should return 0")
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	v := []float32{3, 4}
	Normalize(v)
	if math.Abs(float64(v[0])-0.6) > 1e-6 || math.Abs(float64(v[1])-0.8) > 1e-6 {
		t.Errorf("Normalize([3 4]) = %v", v)
	}
	Normalize(v)
	if math.Abs(float64(v[0])-0.6) > 1e-6 {
		t.Error("Normalize should be idempotent")
	}
}
