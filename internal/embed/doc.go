// Package embed provides the deterministic text-embedding model used in
// place of all-MiniLM-L6-v2. Each token hashes to a seeded random
// direction in R^d; a text embeds as the L2-normalized sum of its token
// directions (with sub-linear term weighting). Texts sharing vocabulary
// land near each other under cosine similarity — the property vector
// retrieval needs — and identical inputs embed identically across runs.
//
// Paper counterpart: the embedding model of the §6.1 vector-search path
// (the paper uses MiniLM embeddings indexed in OpenSearch).
//
// Concurrency: Hash memoizes per-token directions behind an internal
// lock, so Embed is safe (and fast) to call from concurrent pipeline
// workers.
package embed
