package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"aryn/internal/cost"
	"aryn/internal/docmodel"
	"aryn/internal/docparse"
	"aryn/internal/docset"
	"aryn/internal/embed"
	"aryn/internal/fault"
	"aryn/internal/index"
	"aryn/internal/llm"
	"aryn/internal/luna"
	"aryn/internal/rag"
	"aryn/internal/resilience"
)

// Config parameterizes a System.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// Parallelism is the Sycamore worker count per stage.
	Parallelism int
	// HNSW switches the vector index to approximate search.
	HNSW bool
	// LLMOptions tune the simulated model (context window, leniency…).
	LLMOptions []llm.SimOption
	// RAGK is the baseline retrieval depth (default 100).
	RAGK int
	// DisableLLMCache turns off the content-addressed response cache.
	DisableLLMCache bool
	// LLMCacheCapacity bounds the response cache (default 4096 entries).
	LLMCacheCapacity int
	// LLMCachePath warm-starts the response cache from disk when set;
	// call SaveLLMCache to persist it back.
	LLMCachePath string
	// LLMMaxBatch bounds the batching dispatcher (default 8; 1 disables).
	LLMMaxBatch int
	// LLMBatchLinger is how long an under-full batch waits for peers
	// (default 1ms).
	LLMBatchLinger time.Duration
	// Resilience, when set, inserts the retry/circuit-breaker middleware
	// into the LLM stack (between singleflight and the batcher) and paces
	// docset retries with the same backoff family. Nil keeps the
	// historical stack — library users opt in; the server always opts in.
	Resilience *resilience.Options
	// Fault, when set, wraps the backing model with the fault injector and
	// hooks docset stage attempts — the chaos-testing seam. The injector
	// stays inert until a spec is activated, so wiring it costs nothing.
	Fault *fault.Injector
	// StreamBatch sets how many documents streaming edges accumulate per
	// batch (0 = docset default). Smaller batches lower time-to-first-
	// result on streamed queries at the cost of more channel handoffs.
	StreamBatch int
	// StreamBuffer sets the bounded depth, in batches, of streaming task
	// edges (0 = docset default).
	StreamBuffer int
	// Optimize enables the cost-based plan-optimization phase (cheap
	// pre-filters hoisted above LLM operators, llmFilter order refined by
	// observed selectivities, proxy cascades). Off by default so
	// equivalence tests and cautious deployments can diff optimized
	// against unoptimized output; the feedback store records observations
	// either way, so enabling it later starts warm.
	Optimize bool
	// CascadeLow/CascadeHigh override the proxy-cascade threshold band
	// (0 = docset defaults).
	CascadeLow, CascadeHigh float64
	// FeedbackPath warm-starts the optimizer feedback store from disk
	// when set; call SaveFeedback to persist it back.
	FeedbackPath string
}

// System is a fully wired Aryn instance.
//
// The query-facing fields (Schema, Query, Conv) are replaced wholesale by
// Prepare after each ingest; concurrent readers (the serving layer) must
// go through the accessors — QueryService, NewSession, Ready, Ask — which
// synchronize against that swap. Direct field access remains fine for
// single-goroutine CLI/example use.
type System struct {
	Config   Config
	Sim      *llm.Sim
	Stack    *llm.Stack
	LLM      *llm.Meter
	Embedder embed.Embedder
	Store    *index.Store
	Parser   *docparse.Service
	EC       *docset.Context
	Schema   luna.Schema
	Query    *luna.Service
	Conv     *luna.Conversation
	RAG      *rag.Pipeline
	// Resilience is the retry/breaker middleware instance when
	// Config.Resilience was set (nil otherwise).
	Resilience *resilience.Middleware
	// Fault is the injector from Config.Fault (nil when chaos testing is
	// not wired).
	Fault *fault.Injector
	// Cost is the optimizer's cost model and feedback store. Built once
	// at construction and re-injected into every query service Prepare
	// swaps in, so observed evidence survives re-ingests.
	Cost *cost.Model

	// mu guards the Prepare swap of Schema/Query/Conv against concurrent
	// accessor reads.
	mu sync.RWMutex
}

// New builds a system: the Sim LLM (with Luna's planner skill registered)
// behind the call-middleware stack (cache → singleflight → batcher), the
// hash embedder, an empty store, and DocParse.
func New(cfg Config) *System {
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 4
	}
	if cfg.RAGK <= 0 {
		cfg.RAGK = 100
	}
	sim := llm.NewSim(cfg.Seed, cfg.LLMOptions...)
	sim.Register(luna.PlannerSkill{})
	stackOpts := []llm.StackOption{}
	if cfg.DisableLLMCache {
		stackOpts = append(stackOpts, llm.WithoutCache())
	}
	if cfg.LLMCacheCapacity > 0 {
		stackOpts = append(stackOpts, llm.WithCacheCapacity(cfg.LLMCacheCapacity))
	}
	if cfg.LLMCachePath != "" {
		stackOpts = append(stackOpts, llm.WithCachePersistence(cfg.LLMCachePath))
	}
	if cfg.LLMMaxBatch > 0 || cfg.LLMBatchLinger > 0 {
		maxBatch, linger := cfg.LLMMaxBatch, cfg.LLMBatchLinger
		if maxBatch <= 0 {
			maxBatch = 8
		}
		if linger <= 0 {
			linger = time.Millisecond
		}
		stackOpts = append(stackOpts, llm.WithBatching(maxBatch, linger))
	}
	var resMW *resilience.Middleware
	if cfg.Resilience != nil {
		stackOpts = append(stackOpts, llm.WithResilience(func(inner llm.Client) llm.Client {
			resMW = resilience.Wrap(inner, *cfg.Resilience)
			return resMW
		}))
	}
	// The fault injector wraps the backend itself so injected failures
	// exercise the full middleware stack above it (breaker, retries,
	// cache-served degradation) exactly like a real outage would.
	var backend llm.Client = sim
	if cfg.Fault != nil {
		backend = cfg.Fault.Client(sim)
	}
	stack := llm.NewStack(backend, stackOpts...)
	meter := llm.NewMeter(stack)
	embedder := embed.NewHash(cfg.Seed)
	var store *index.Store
	if cfg.HNSW {
		store = index.NewStore(index.WithHNSW(cfg.Seed))
	} else {
		store = index.NewStore()
	}
	ecOpts := []docset.Option{
		docset.WithLLM(meter),
		docset.WithEmbedder(embedder),
		docset.WithParallelism(cfg.Parallelism),
	}
	if cfg.Resilience != nil {
		// Pace docset-level retries with the same jitter family as the LLM
		// middleware (fresh retrier: independent stream, same policy).
		ecOpts = append(ecOpts, docset.WithBackoff(resilience.NewRetrier(cfg.Resilience.Retry)))
	}
	if cfg.Fault != nil {
		ecOpts = append(ecOpts, docset.WithFaultHook(cfg.Fault.Hook))
	}
	if cfg.StreamBatch > 0 {
		ecOpts = append(ecOpts, docset.WithStreamBatch(cfg.StreamBatch))
	}
	if cfg.StreamBuffer > 0 {
		ecOpts = append(ecOpts, docset.WithStreamBuffer(cfg.StreamBuffer))
	}
	s := &System{
		Config:     cfg,
		Sim:        sim,
		Stack:      stack,
		LLM:        meter,
		Embedder:   embedder,
		Store:      store,
		Parser:     docparse.New(docparse.WithSeed(cfg.Seed + 1)),
		EC:         docset.NewContext(ecOpts...),
		Resilience: resMW,
		Fault:      cfg.Fault,
	}
	s.RAG = rag.New(store, meter, embedder)
	s.RAG.K = cfg.RAGK
	feedback := cost.NewStore()
	if cfg.FeedbackPath != "" {
		// A missing file is a cold start; a malformed one degrades to cold
		// rather than failing construction (the store rebuilds itself from
		// the very next query).
		_ = feedback.Load(cfg.FeedbackPath)
	}
	s.Cost = cost.NewModel(feedback)
	return s
}

// ExtractionSchema is the ETL-time llmExtract field set — the Table 3
// schema the paper loads into OpenSearch.
func ExtractionSchema() []llm.FieldSpec {
	return []llm.FieldSpec{
		{Name: "accidentNumber", Type: "string", Description: "NTSB accident number"},
		{Name: "aircraft", Type: "string", Description: "aircraft make and model"},
		{Name: "aircraftCategory", Type: "string", Description: "airplane, helicopter, or glider"},
		{Name: "aircraftDamage", Type: "string", Description: "damage level"},
		{Name: "registration", Type: "string", Description: "tail number"},
		{Name: "injuries", Type: "string", Description: "injury summary"},
		{Name: "dateAndTime", Type: "string", Description: "accident date and time"},
		{Name: "us_state", Type: "string", Description: "US state abbreviation"},
		{Name: "operator", Type: "string", Description: "aircraft operator"},
		{Name: "flightConductedUnder", Type: "string", Description: "regulation part"},
		{Name: "conditions", Type: "string", Description: "VMC or IMC"},
		{Name: "conditionOfLight", Type: "string", Description: "day or night"},
		{Name: "visibility", Type: "string", Description: "visibility in miles"},
		{Name: "windSpeed", Type: "int", Description: "wind speed in knots"},
		{Name: "temperature", Type: "float", Description: "temperature in C"},
		{Name: "pilotCertificate", Type: "string", Description: "pilot certificate level"},
		{Name: "flightTime", Type: "int", Description: "total pilot flight hours"},
		{Name: "engines", Type: "int", Description: "number of engines"},
		{Name: "probable_cause", Type: "string", Description: "probable cause statement"},
		{Name: "weather_related", Type: "bool", Description: "whether weather contributed"},
	}
}

// IngestStats summarizes one ingestion run.
type IngestStats struct {
	Documents int
	Chunks    int
	Elements  int
	Wall      time.Duration
	Usage     llm.Usage
	// LLM reports middleware activity (cache hits, batches) for the run.
	LLM llm.StackStats
}

// Ingest runs the Fig. 4 ETL pipeline over raw blobs: partition with
// DocParse, llmExtract the Table 3 schema, derive calendar/injury fields,
// index the parent documents, then explode, embed, and index the chunks.
// It finishes by inferring the query schema and wiring Luna.
func (s *System) Ingest(ctx context.Context, blobs map[string][]byte) (*IngestStats, error) {
	return s.IngestObserved(ctx, blobs, nil)
}

// IngestObserved is Ingest with a live trace sink: sink (when non-nil)
// receives the pipeline's *docset.Trace before execution starts, so
// callers — the async ingest-job API — can poll per-stage progress
// snapshots while the run is in flight. Queries keep serving from the
// last prepared snapshot throughout; the new data becomes visible only
// at the final Prepare swap.
func (s *System) IngestObserved(ctx context.Context, blobs map[string][]byte, sink func(*docset.Trace)) (*IngestStats, error) {
	start := time.Now()
	before := s.LLM.Usage()
	llmBefore := s.Stack.StackStats()

	ec := s.EC
	if sink != nil {
		scoped := *s.EC
		scoped.TraceSink = sink
		ec = &scoped
	}
	ds := docset.ReadBinary(ec, blobs).
		Partition(s.Parser).
		LLMExtract(ExtractionSchema()).
		Map("deriveFields", deriveFields).
		Write(s.Store).
		Explode().
		MergeChunks(120).
		Embed().
		Write(s.Store)

	chunks, _, err := ds.Execute(ctx)
	if err != nil {
		return nil, fmt.Errorf("core: ingest: %w", err)
	}
	elements := 0
	for _, c := range chunks {
		elements += len(c.Elements)
	}
	s.Prepare()
	return &IngestStats{
		Documents: s.Store.NumDocs(),
		Chunks:    s.Store.NumChunks(),
		Elements:  elements,
		Wall:      time.Since(start),
		Usage:     s.LLM.Usage().Sub(before),
		LLM:       s.Stack.StackStats().Sub(llmBefore),
	}, nil
}

// Prepare (re)infers the schema from the store and wires the Luna query
// service and conversation. Called automatically by Ingest; call it
// manually after loading a persisted store. Safe to call while queries
// are in flight: readers using the accessors see either the old or the
// new service, never a half-built one.
func (s *System) Prepare() {
	schema := luna.InferSchema(s.Store)
	cascade := luna.DefaultCascade()
	if s.Config.CascadeLow > 0 {
		cascade.Low = s.Config.CascadeLow
	}
	if s.Config.CascadeHigh > 0 {
		cascade.High = s.Config.CascadeHigh
	}
	query := &luna.Service{
		Planner:  luna.NewPlanner(s.LLM, schema),
		Executor: &luna.Executor{EC: s.EC, Store: s.Store},
		Cost:     s.Cost,
		Optimize: s.Config.Optimize,
		Cascade:  cascade,
	}
	conv := luna.NewConversation(query)
	s.mu.Lock()
	s.Schema = schema
	s.Query = query
	s.Conv = conv
	s.mu.Unlock()
}

// QueryService returns the current Luna service (nil before any ingest).
// The returned service is stateless and safe for concurrent Ask calls.
func (s *System) QueryService() *luna.Service {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.Query
}

// Ready reports whether the system has ingested data and can answer
// queries.
func (s *System) Ready() bool { return s.QueryService() != nil }

// NewSession opens an independent conversation over the current query
// service, so each client gets isolated follow-up history (the serving
// layer opens one per chat session).
func (s *System) NewSession() (*luna.Conversation, error) {
	q := s.QueryService()
	if q == nil {
		return nil, fmt.Errorf("core: no data ingested yet")
	}
	return luna.NewConversation(q), nil
}

// LLMStats snapshots the middleware counters (cache hit/miss, singleflight
// collapses, batch sizes) accumulated since construction.
func (s *System) LLMStats() llm.StackStats { return s.Stack.StackStats() }

// SaveLLMCache persists the response cache next to the index snapshots so
// a later process warm-starts (pair with Config.LLMCachePath).
func (s *System) SaveLLMCache(path string) error { return s.Stack.SaveCache(path) }

// SaveFeedback persists the optimizer feedback store so a later process
// starts with observed per-operator costs (pair with Config.FeedbackPath).
func (s *System) SaveFeedback(path string) error { return s.Cost.Store.Save(path) }

// OptimizerStats snapshots the feedback store's counters for /stats.
func (s *System) OptimizerStats() cost.StoreStats { return s.Cost.Store.Stats() }

// Ask answers a natural-language question through Luna (conversational:
// follow-ups resolve against the previous query) using the system's
// default shared conversation.
func (s *System) Ask(ctx context.Context, question string) (*luna.Result, error) {
	s.mu.RLock()
	conv := s.Conv
	s.mu.RUnlock()
	if conv == nil {
		return nil, fmt.Errorf("core: no data ingested yet")
	}
	return conv.Ask(ctx, question)
}

// AskRAG answers through the RAG baseline for comparison.
func (s *System) AskRAG(ctx context.Context, question string) (*rag.Response, error) {
	return s.RAG.Answer(ctx, question)
}

// Degraded reports whether the system is serving in degraded mode —
// currently: the LLM circuit breaker is not closed — along with a short
// operator-facing reason.
func (s *System) Degraded() (bool, string) {
	if s.Resilience == nil {
		return false, ""
	}
	if st := s.Resilience.Breaker().State(); st != resilience.Closed {
		return true, fmt.Sprintf("llm circuit %s", st)
	}
	return false, ""
}

// PurgeLLMCache drops every resident response-cache entry (the
// cache-killed-mid-run chaos hook), returning how many were dropped.
func (s *System) PurgeLLMCache() int {
	if c := s.Stack.CacheLayer(); c != nil {
		return c.Purge()
	}
	return 0
}

// RetrievalOnly answers a question without any LLM call: the top-k
// retrieved chunks rendered as a numbered excerpt list. This is the
// degraded-mode fallback the serving layer uses when the model backend is
// unavailable — strictly worse than a synthesized answer, strictly better
// than a 500. Returns the rendered answer and how many chunks backed it.
func (s *System) RetrievalOnly(question string, k int) (string, int) {
	if k <= 0 {
		k = 5
	}
	vec := s.Embedder.Embed(question)
	hits := s.Store.SearchChunks(index.Query{Vector: vec, K: k})
	if len(hits) == 0 {
		return "No indexed content matched the question (LLM backend unavailable; retrieval-only answer).", 0
	}
	var sb strings.Builder
	sb.WriteString("LLM backend unavailable; showing the most relevant indexed excerpts instead of a synthesized answer:\n")
	for i, h := range hits {
		text := strings.ReplaceAll(h.Chunk.Text, "\n", " ")
		if len(text) > 240 {
			text = text[:240] + "…"
		}
		fmt.Fprintf(&sb, "[%d] (doc %s) %s\n", i+1, h.Chunk.ParentID, text)
	}
	return sb.String(), len(hits)
}

// deriveFields computes post-extraction properties: calendar month/year
// from dateAndTime and a numeric fatality count from the injury summary —
// ordinary ETL enrichment (§5: "the line between ETL and analytics gets
// blurred").
func deriveFields(d *docmodel.Document) (*docmodel.Document, error) {
	if dt := d.Property("dateAndTime"); dt != "" {
		if t, err := time.Parse("January 2, 2006 15:04", dt); err == nil {
			d.SetProperty("month", t.Month().String())
			d.SetProperty("year", t.Year())
		} else if t, err := time.Parse("January 2, 2006", strings.SplitN(dt, " at", 2)[0]); err == nil {
			d.SetProperty("month", t.Month().String())
			d.SetProperty("year", t.Year())
		}
	}
	d.SetProperty("fatalities", fatalCount(d.Property("injuries")))
	return d, nil
}

// fatalCount parses "2 Fatal, 1 Minor" style injury summaries.
func fatalCount(injuries string) int {
	low := strings.ToLower(injuries)
	idx := strings.Index(low, "fatal")
	if idx < 0 {
		return 0
	}
	fields := strings.Fields(low[:idx])
	if len(fields) == 0 {
		return 1
	}
	if n, err := strconv.Atoi(fields[len(fields)-1]); err == nil {
		return n
	}
	return 1
}
