// Package core is the Aryn system facade: it wires DocParse, Sycamore
// (docset), the index store, Luna, and the RAG baseline into the
// end-to-end platform of Figure 1 of the paper, exposing Ingest (the ETL
// pipeline of Fig. 4) and Ask (natural-language analytics).
//
// Paper counterpart: the assembled Aryn stack of §3 — DocParse feeding
// Sycamore feeding the index feeding Luna.
//
// Concurrency: a System's query-facing fields (Schema, Query, Conv) are
// swapped wholesale by Prepare after each ingest; concurrent readers must
// use the synchronized accessors (QueryService, NewSession, Ready, Ask).
// The returned luna.Service is stateless and safe for concurrent Ask
// calls; Ingest is not reentrant — the serving layer runs one ingest at a
// time. Direct field access remains fine for single-goroutine CLI use.
package core
