package core

import (
	"context"
	"strings"
	"testing"

	"aryn/internal/index"
	"aryn/internal/luna"
	"aryn/internal/ntsb"
)

// buildSystem ingests a small NTSB corpus once per test binary.
var cachedSystem *System
var cachedCorpus *ntsb.Corpus

func testSystem(t *testing.T) (*System, *ntsb.Corpus) {
	t.Helper()
	if cachedSystem != nil {
		return cachedSystem, cachedCorpus
	}
	corpus, err := ntsb.GenerateCorpus(30, 42)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	sys := New(Config{Seed: 7, Parallelism: 4})
	stats, err := sys.Ingest(context.Background(), blobs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Documents != len(blobs) || stats.Chunks == 0 {
		t.Fatalf("ingest stats: %+v", stats)
	}
	if stats.Usage.Calls == 0 {
		t.Fatal("ingest should consume LLM calls (llmExtract)")
	}
	cachedSystem, cachedCorpus = sys, corpus
	return sys, corpus
}

func TestIngestExtractsSchema(t *testing.T) {
	sys, corpus := testSystem(t)
	if sys.Schema.Field("us_state") == nil || sys.Schema.Field("aircraftDamage") == nil {
		t.Fatalf("schema missing extracted fields: %+v", sys.Schema)
	}
	// Spot-check extraction quality on one document.
	inc := corpus.Incidents[0]
	doc, ok := sys.Store.Document(inc.ReportID)
	if !ok {
		t.Fatal("ingested doc missing")
	}
	if got := doc.Property("us_state"); got != inc.StateAbbrev() {
		t.Errorf("us_state = %q, want %q", got, inc.StateAbbrev())
	}
	if got := doc.Property("aircraft"); got != inc.Aircraft {
		t.Errorf("aircraft = %q, want %q", got, inc.Aircraft)
	}
	if got := doc.Property("aircraftDamage"); got != inc.Damage {
		t.Errorf("damage = %q, want %q", got, inc.Damage)
	}
	if got := doc.Property("month"); got != inc.Month() {
		t.Errorf("month = %q, want %q", got, inc.Month())
	}
	if got, _ := doc.Properties.Int("engines"); got != inc.Engines {
		t.Errorf("engines = %d, want %d", got, inc.Engines)
	}
}

func TestAskCountByState(t *testing.T) {
	sys, corpus := testSystem(t)
	// Pick a state present in the corpus ground truth.
	state := corpus.Incidents[0].State
	want := 0
	for _, in := range corpus.Incidents {
		if in.State == state {
			want++
		}
	}
	res, err := sys.Ask(context.Background(), "How many incidents were there in "+state+"?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != luna.AnswerNumber {
		t.Fatalf("answer kind = %v", res.Answer.Kind)
	}
	if int(res.Answer.Number) != want {
		t.Errorf("count for %s = %v, want %d (report-level)", state, res.Answer.Number, want)
	}
	if res.Plan == nil || len(res.Plan.Ops) < 2 {
		t.Error("plan missing")
	}
	if res.Trace == nil || len(res.Trace.Nodes) == 0 {
		t.Error("trace missing")
	}
}

func TestAskBreakdownAndTopState(t *testing.T) {
	sys, _ := testSystem(t)
	res, err := sys.Ask(context.Background(), "How many incidents were there by state?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != luna.AnswerTable || len(res.Answer.Table) == 0 {
		t.Fatalf("breakdown answer = %+v", res.Answer)
	}
	res2, err := sys.Ask(context.Background(), "Which state had the most incidents?")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answer.Kind != luna.AnswerList || len(res2.Answer.List) != 1 {
		t.Fatalf("top-state answer = %+v", res2.Answer)
	}
}

func TestAskWithLLMFilter(t *testing.T) {
	sys, corpus := testSystem(t)
	res, err := sys.Ask(context.Background(), "How many incidents involved birds?")
	if err != nil {
		t.Fatal(err)
	}
	gtBirds := 0
	for _, in := range corpus.Incidents {
		if in.BirdStrike {
			gtBirds++
		}
	}
	got := int(res.Answer.Number)
	if got < gtBirds {
		t.Errorf("bird count %d below ground truth %d (filter should be recall-biased)", got, gtBirds)
	}
	if got > gtBirds+5 {
		t.Errorf("bird count %d wildly above ground truth %d", got, gtBirds)
	}
	// The plan must include an llmFilter (birds are not in the schema).
	if !strings.Contains(res.Rewritten.String(), "llmFilter") {
		t.Errorf("plan should use llmFilter:\n%s", res.Rewritten.String())
	}
}

func TestAskQueryTimeExtraction(t *testing.T) {
	sys, _ := testSystem(t)
	res, err := sys.Ask(context.Background(), "What was the most commonly damaged part of the aircraft?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != luna.AnswerList || len(res.Answer.List) != 1 {
		t.Fatalf("mode answer = %+v", res.Answer)
	}
	if !strings.Contains(res.Rewritten.String(), "llmExtract") {
		t.Errorf("plan should extract at query time:\n%s", res.Rewritten.String())
	}
}

func TestConversationFollowUp(t *testing.T) {
	sys, _ := testSystem(t)
	ctx := context.Background()
	first, err := sys.Ask(ctx, "How many incidents involved substantial damage?")
	if err != nil {
		t.Fatal(err)
	}
	follow, err := sys.Ask(ctx, "what about destroyed aircraft?")
	if err != nil {
		t.Fatal(err)
	}
	if follow.Answer.Kind != luna.AnswerNumber {
		t.Fatalf("follow-up kind = %v", follow.Answer.Kind)
	}
	if follow.Answer.Number == first.Answer.Number {
		t.Error("follow-up should change the filter (destroyed != substantial counts)")
	}
	// The merged plan must keep the count terminal and swap the damage filter.
	planStr := follow.Rewritten.String()
	if !strings.Contains(planStr, "Destroyed") || !strings.Contains(planStr, "count()") {
		t.Errorf("merged follow-up plan wrong:\n%s", planStr)
	}
}

func TestAskRAG(t *testing.T) {
	sys, _ := testSystem(t)
	resp, err := sys.AskRAG(context.Background(), "How many incidents involved substantial damage?")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Retrieved == 0 {
		t.Fatal("RAG retrieved nothing")
	}
	if resp.Answer == "" {
		t.Errorf("RAG produced no Answer line: %s", resp.Text)
	}
}

func TestRAGRefusalOnCauseQuestion(t *testing.T) {
	sys, _ := testSystem(t)
	resp, err := sys.AskRAG(context.Background(), "How many incidents were due to engine problems?")
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Refused {
		t.Errorf("fault-adjacent question over poisoned corpus should refuse (poisoned=%d/%d): %s",
			resp.PoisonedChunks, resp.Retrieved, resp.Text)
	}
}

func TestAskBeforeIngestFails(t *testing.T) {
	sys := New(Config{Seed: 1})
	if _, err := sys.Ask(context.Background(), "anything"); err == nil {
		t.Error("Ask before ingest should error")
	}
}

func TestStorePersistenceRoundTrip(t *testing.T) {
	sys, _ := testSystem(t)
	path := t.TempDir() + "/store.gob.gz"
	if err := sys.Store.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := index.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh system over the loaded store answers identically.
	sys2 := New(Config{Seed: 7})
	sys2.Store = loaded
	sys2.Query = nil
	sys2.Prepare()
	// Rewire the executor onto the loaded store (Prepare uses sys2.Store).
	res, err := sys2.Query.Ask(context.Background(), "How many incidents involved substantial damage?")
	if err != nil {
		t.Fatal(err)
	}
	orig, err := sys.Query.Ask(context.Background(), "How many incidents involved substantial damage?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Number != orig.Answer.Number {
		t.Errorf("loaded store answers differently: %v vs %v", res.Answer.Number, orig.Answer.Number)
	}
}

func TestSemanticSearchEndToEnd(t *testing.T) {
	sys, _ := testSystem(t)
	res, err := sys.Query.Ask(context.Background(), "Find reports about bird strikes")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind != luna.AnswerList || len(res.Answer.List) == 0 {
		t.Fatalf("semantic search answer = %+v", res.Answer)
	}
	if !strings.Contains(res.Rewritten.String(), "queryVectorDatabase") {
		t.Errorf("plan should use vector search:\n%s", res.Rewritten.String())
	}
}

func TestLLMMiddlewareWiredThroughQueries(t *testing.T) {
	sys, _ := testSystem(t)
	ctx := context.Background()
	question := "How many unique incidents were there in each state?"

	first, err := sys.Query.Ask(ctx, question)
	if err != nil {
		t.Fatal(err)
	}
	if first.LLM == nil {
		t.Fatal("Result.LLM not populated: middleware stats not wired through Luna")
	}
	usageBefore := sys.LLM.Usage()

	second, err := sys.Query.Ask(ctx, question)
	if err != nil {
		t.Fatal(err)
	}
	if second.LLM == nil || second.LLM.Cache.Hits == 0 {
		t.Fatalf("repeated query should hit the response cache, stats: %+v", second.LLM)
	}
	if second.Answer.Kind != first.Answer.Kind {
		t.Errorf("cached answer kind diverged: %v vs %v", second.Answer.Kind, first.Answer.Kind)
	}
	// The repeat's planner call is a guaranteed hit (identical prompt), so
	// it must not be metered as upstream spend.
	usageAfter := sys.LLM.Usage()
	if d := usageAfter.Calls - usageBefore.Calls; d != 0 {
		t.Errorf("repeated query consumed %d upstream calls, want 0 (all cached)", d)
	}
	if second.Trace == nil || second.Trace.LLM == nil {
		t.Fatal("execution trace missing middleware stats")
	}
	if !strings.Contains(second.Trace.String(), "llm middleware:") {
		t.Error("trace rendering missing the middleware line")
	}
}

func TestIngestReportsMiddlewareStats(t *testing.T) {
	corpus, err := ntsb.GenerateCorpus(6, 99)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	sys := New(Config{Seed: 11, Parallelism: 4})
	stats, err := sys.Ingest(context.Background(), blobs)
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.LLM.Cache.Misses; got == 0 {
		t.Errorf("ingest should record cache misses for fresh extracts, stats: %+v", stats.LLM)
	}
	if sys.LLMStats().Cache.Misses == 0 {
		t.Error("system-level middleware stats empty after ingest")
	}
}

func TestDisabledMiddlewareStillAnswers(t *testing.T) {
	corpus, err := ntsb.GenerateCorpus(5, 123)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	sys := New(Config{Seed: 3, Parallelism: 2, DisableLLMCache: true, LLMMaxBatch: 1})
	if _, err := sys.Ingest(context.Background(), blobs); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Ask(context.Background(), "How many incidents were there?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Kind == "" {
		t.Error("no answer with middleware disabled")
	}
}
