package index

import "sort"

// This file implements bounded top-k selection over Scored candidates,
// shared by BM25, exact kNN, and RRF fusion. Selecting k of n through a
// size-k min-heap is O(n log k) instead of the O(n log n) full sort the
// paths used previously, and the (Score desc, Doc asc) total order makes
// the result independent of candidate encounter order.

// scoredBetter is the global ranking order: higher score first, ties by
// ascending chunk ordinal (deterministic across runs).
func scoredBetter(a, b Scored) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Doc < b.Doc
}

// topK is a bounded selector keeping the k best candidates seen so far.
// The zero value is unusable; make one with newTopK. Not safe for
// concurrent use.
type topK struct {
	k     int
	items []Scored // min-heap on scoredBetter: worst survivor at items[0]
}

func newTopK(k int) *topK {
	return &topK{k: k, items: make([]Scored, 0, k)}
}

// offer considers one candidate, evicting the current worst when full.
func (t *topK) offer(s Scored) {
	if len(t.items) < t.k {
		t.items = append(t.items, s)
		t.up(len(t.items) - 1)
		return
	}
	if !scoredBetter(s, t.items[0]) {
		return
	}
	t.items[0] = s
	t.down(0)
}

// take returns the survivors ordered best-first and resets the selector.
func (t *topK) take() []Scored {
	out := t.items
	t.items = nil
	sort.Slice(out, func(i, j int) bool { return scoredBetter(out[i], out[j]) })
	return out
}

func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		// Min-heap on "better": the worst candidate bubbles to the root.
		if !scoredBetter(t.items[parent], t.items[i]) {
			break
		}
		t.items[parent], t.items[i] = t.items[i], t.items[parent]
		i = parent
	}
}

func (t *topK) down(i int) {
	n := len(t.items)
	for {
		worst := i
		if l := 2*i + 1; l < n && scoredBetter(t.items[worst], t.items[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && scoredBetter(t.items[worst], t.items[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.items[i], t.items[worst] = t.items[worst], t.items[i]
		i = worst
	}
}

// selectTopK ranks candidates and returns the best k (all of them, fully
// sorted, when k <= 0).
func selectTopK(cands []Scored, k int) []Scored {
	if k <= 0 || k >= len(cands) {
		sort.Slice(cands, func(i, j int) bool { return scoredBetter(cands[i], cands[j]) })
		return cands
	}
	t := newTopK(k)
	for _, s := range cands {
		t.offer(s)
	}
	return t.take()
}
