package index

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"

	"aryn/internal/docmodel"
)

func init() {
	// Concrete types carried inside Properties interface values.
	gob.Register(map[string]any{})
	gob.Register(docmodel.Properties{})
	gob.Register([]any{})
	gob.Register([]string{})
	gob.Register(int(0))
	gob.Register(int64(0))
	gob.Register(float64(0))
	gob.Register(false)
	gob.Register("")
}

// snapshot is the serialized store state.
type snapshot struct {
	Docs     []*docmodel.Document
	DocOrder []string
	Chunks   []Chunk
}

// Save writes the store to path (gzip+gob). The vector and keyword indexes
// are rebuilt on Load, so only source data is persisted.
func (s *Store) Save(path string) error {
	s.mu.RLock()
	snap := snapshot{DocOrder: append([]string(nil), s.docOrder...), Chunks: append([]Chunk(nil), s.chunks...)}
	for _, id := range s.docOrder {
		snap.Docs = append(snap.Docs, s.docs[id])
	}
	s.mu.RUnlock()

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("index: save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(snap); err != nil {
		return fmt.Errorf("index: save encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("index: save flush: %w", err)
	}
	return f.Close()
}

// Load reads a store snapshot from path and rebuilds the indexes.
func Load(path string, opts ...StoreOption) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	defer zr.Close()
	var snap snapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, fmt.Errorf("index: load decode: %w", err)
	}
	s := NewStore(opts...)
	for _, d := range snap.Docs {
		if err := s.PutDocument(d); err != nil {
			return nil, err
		}
	}
	for _, c := range snap.Chunks {
		if err := s.PutChunk(c); err != nil {
			return nil, err
		}
	}
	return s, nil
}
