package index

import (
	"strings"
	"testing"
	"testing/quick"

	"aryn/internal/docmodel"
)

func props() docmodel.Properties {
	return docmodel.Properties{
		"us_state": "KY",
		"aircraft": "Piper PA-38-112",
		"injuries": 3,
		"year":     2024.0,
		"fatal":    false,
		"nilProp":  nil,
	}
}

func TestTermPredicate(t *testing.T) {
	p := props()
	if !Term("us_state", "KY").Match(p) {
		t.Error("exact term should match")
	}
	if !Term("us_state", "ky").Match(p) {
		t.Error("term match should be case-insensitive")
	}
	if Term("us_state", "CA").Match(p) {
		t.Error("wrong value should not match")
	}
	if !Term("injuries", 3).Match(p) {
		t.Error("numeric term should match")
	}
	if !Term("injuries", "3.0").Match(p) {
		t.Error("numeric coercion should match 3 == 3.0")
	}
	if Term("missing", "x").Match(p) {
		t.Error("missing field should not match")
	}
	if Term("nilProp", "x").Match(p) {
		t.Error("nil value should not match")
	}
}

func TestContainsPredicate(t *testing.T) {
	p := props()
	if !Contains("aircraft", "piper").Match(p) {
		t.Error("case-insensitive substring should match")
	}
	if Contains("aircraft", "cessna").Match(p) {
		t.Error("absent substring should not match")
	}
}

func TestRangePredicate(t *testing.T) {
	p := props()
	lo, hi := 2020.0, 2025.0
	if !Range("year", &lo, &hi).Match(p) {
		t.Error("in-range should match")
	}
	if !Range("year", &lo, nil).Match(p) {
		t.Error("open upper bound should match")
	}
	hi2 := 2023.0
	if Range("year", nil, &hi2).Match(p) {
		t.Error("above-max should not match")
	}
	if Range("aircraft", &lo, &hi).Match(p) {
		t.Error("non-numeric field should not match range")
	}
}

func TestBooleanCombinators(t *testing.T) {
	p := props()
	pred := And(Term("us_state", "KY"), Not(Term("fatal", true)))
	if !pred.Match(p) {
		t.Error("AND/NOT combination should match")
	}
	if !Or(Term("us_state", "CA"), Contains("aircraft", "Piper")).Match(p) {
		t.Error("OR should match on second branch")
	}
	if !And().Match(p) {
		t.Error("empty AND is vacuously true")
	}
	if Or().Match(p) {
		t.Error("empty OR is vacuously false")
	}
	if !Exists("us_state").Match(p) || Exists("nilProp").Match(p) || Exists("nope").Match(p) {
		t.Error("Exists semantics wrong")
	}
}

func TestNotIsInvolution(t *testing.T) {
	f := func(field, value string) bool {
		p := docmodel.Properties{field: value}
		base := Term(field, value)
		return Not(Not(base)).Match(p) == base.Match(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredicateStrings(t *testing.T) {
	s := And(Term("a", 1), Or(Contains("b", "x"), Not(Exists("c")))).String()
	for _, want := range []string{"a == \"1\"", "AND", "OR", "NOT", "exists(c)", "b contains \"x\""} {
		if !strings.Contains(s, want) {
			t.Errorf("predicate string missing %q: %s", want, s)
		}
	}
	lo := 1.0
	if got := Range("y", &lo, nil).String(); !strings.Contains(got, "[1, +inf]") {
		t.Errorf("range string = %q", got)
	}
}
