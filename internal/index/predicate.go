package index

import (
	"fmt"
	"strconv"
	"strings"

	"aryn/internal/docmodel"
)

// Predicate is a boolean filter over document properties, the "filters over
// the properties" half of queryDatabase (Table 2a).
type Predicate interface {
	// Match evaluates the predicate against a property map.
	Match(p docmodel.Properties) bool
	// String renders the predicate for plan display and traces.
	String() string
}

type matchAll struct{}

func (matchAll) Match(docmodel.Properties) bool { return true }
func (matchAll) String() string                 { return "*" }

// MatchAll accepts every document.
func MatchAll() Predicate { return matchAll{} }

type termPred struct {
	field string
	value string
}

// Term matches documents whose field equals value (case-insensitive string
// comparison after coercion; numeric values compare numerically).
func Term(field string, value any) Predicate {
	return termPred{field: field, value: fmt.Sprintf("%v", value)}
}

func (t termPred) Match(p docmodel.Properties) bool {
	v, ok := p.Get(t.field)
	if !ok || v == nil {
		return false
	}
	have := p.String(t.field)
	if fn, err1 := strconv.ParseFloat(strings.TrimSpace(have), 64); err1 == nil {
		if wn, err2 := strconv.ParseFloat(strings.TrimSpace(t.value), 64); err2 == nil {
			return fn == wn
		}
	}
	return strings.EqualFold(strings.TrimSpace(have), strings.TrimSpace(t.value))
}

func (t termPred) String() string { return fmt.Sprintf("%s == %q", t.field, t.value) }

type containsPred struct {
	field string
	sub   string
}

// Contains matches documents whose field's string form contains sub
// (case-insensitive) — the keyword-in-field filter Luna uses for queries
// like "involving Piper aircraft".
func Contains(field, sub string) Predicate { return containsPred{field: field, sub: sub} }

func (c containsPred) Match(p docmodel.Properties) bool {
	return strings.Contains(strings.ToLower(p.String(c.field)), strings.ToLower(c.sub))
}

func (c containsPred) String() string { return fmt.Sprintf("%s contains %q", c.field, c.sub) }

type rangePred struct {
	field    string
	min, max *float64 // nil = unbounded
}

// Range matches documents whose numeric field lies in [min, max]; pass nil
// for an open bound.
func Range(field string, min, max *float64) Predicate {
	return rangePred{field: field, min: min, max: max}
}

func (r rangePred) Match(p docmodel.Properties) bool {
	f, ok := p.Float(r.field)
	if !ok {
		return false
	}
	if r.min != nil && f < *r.min {
		return false
	}
	if r.max != nil && f > *r.max {
		return false
	}
	return true
}

func (r rangePred) String() string {
	lo, hi := "-inf", "+inf"
	if r.min != nil {
		lo = strconv.FormatFloat(*r.min, 'f', -1, 64)
	}
	if r.max != nil {
		hi = strconv.FormatFloat(*r.max, 'f', -1, 64)
	}
	return fmt.Sprintf("%s in [%s, %s]", r.field, lo, hi)
}

type existsPred struct{ field string }

// Exists matches documents where the field is present and non-nil.
func Exists(field string) Predicate { return existsPred{field: field} }

func (e existsPred) Match(p docmodel.Properties) bool {
	v, ok := p.Get(e.field)
	return ok && v != nil
}

func (e existsPred) String() string { return fmt.Sprintf("exists(%s)", e.field) }

type andPred struct{ ps []Predicate }

// And matches when every sub-predicate matches (vacuously true when empty).
func And(ps ...Predicate) Predicate {
	if len(ps) == 1 {
		return ps[0]
	}
	return andPred{ps: ps}
}

func (a andPred) Match(p docmodel.Properties) bool {
	for _, sub := range a.ps {
		if !sub.Match(p) {
			return false
		}
	}
	return true
}

func (a andPred) String() string { return joinPreds(a.ps, " AND ") }

type orPred struct{ ps []Predicate }

// Or matches when any sub-predicate matches (vacuously false when empty).
func Or(ps ...Predicate) Predicate {
	if len(ps) == 1 {
		return ps[0]
	}
	return orPred{ps: ps}
}

func (o orPred) Match(p docmodel.Properties) bool {
	for _, sub := range o.ps {
		if sub.Match(p) {
			return true
		}
	}
	return false
}

func (o orPred) String() string { return joinPreds(o.ps, " OR ") }

type notPred struct{ p Predicate }

// Not inverts a predicate.
func Not(p Predicate) Predicate { return notPred{p: p} }

func (n notPred) Match(p docmodel.Properties) bool { return !n.p.Match(p) }
func (n notPred) String() string                   { return "NOT (" + n.p.String() + ")" }

func joinPreds(ps []Predicate, sep string) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}
