package index

import (
	"container/heap"
	"math"
	"math/rand"
	"sort"

	"aryn/internal/embed"
)

// VectorSearcher is the kNN contract the store consumes. Exact gives
// ground-truth ranking; HNSW trades a little recall for sub-linear search.
type VectorSearcher interface {
	// Add indexes vec under the chunk ordinal id.
	Add(id int, vec []float32)
	// Search returns the top-k ids by cosine similarity (descending).
	Search(query []float32, k int) []Scored
	// Len reports the number of indexed vectors.
	Len() int
}

// Exact is brute-force kNN: always correct, O(n·d) per query.
type Exact struct {
	ids  []int
	vecs [][]float32
}

// NewExact returns an empty brute-force index.
func NewExact() *Exact { return &Exact{} }

// Add indexes vec under id.
func (e *Exact) Add(id int, vec []float32) {
	e.ids = append(e.ids, id)
	e.vecs = append(e.vecs, vec)
}

// Len reports the number of indexed vectors.
func (e *Exact) Len() int { return len(e.ids) }

// Search scans all vectors and returns the k most similar.
func (e *Exact) Search(query []float32, k int) []Scored {
	out := make([]Scored, 0, len(e.ids))
	for i, v := range e.vecs {
		out = append(out, Scored{Doc: e.ids[i], Score: embed.Cosine(query, v)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// HNSW is a hierarchical navigable small-world graph index
// (Malkov & Yashunin), the ANN structure OpenSearch's kNN plugin uses.
type HNSW struct {
	m              int // max links per node per layer (above layer 0)
	mmax0          int // max links at layer 0
	efConstruction int
	efSearch       int
	levelMult      float64
	rng            *rand.Rand

	vecs    [][]float32
	ids     []int
	links   [][][]int32 // node -> layer -> neighbor node indices
	levels  []int
	entry   int
	maxL    int
	started bool
}

// NewHNSW builds an empty HNSW index with standard parameters (M=16,
// efConstruction=128, efSearch=64). The seed fixes level assignment so
// builds are reproducible.
func NewHNSW(seed int64) *HNSW {
	m := 16
	return &HNSW{
		m:              m,
		mmax0:          2 * m,
		efConstruction: 128,
		efSearch:       64,
		levelMult:      1 / math.Log(float64(m)),
		rng:            rand.New(rand.NewSource(seed)),
	}
}

// SetEFSearch tunes the search beam width (recall/latency trade-off).
func (h *HNSW) SetEFSearch(ef int) {
	if ef > 0 {
		h.efSearch = ef
	}
}

// Len reports the number of indexed vectors.
func (h *HNSW) Len() int { return len(h.ids) }

func (h *HNSW) dist(a, b []float32) float64 { return 1 - embed.Cosine(a, b) }

// Add inserts vec under id.
func (h *HNSW) Add(id int, vec []float32) {
	node := len(h.vecs)
	level := int(math.Floor(-math.Log(h.rng.Float64()+1e-12) * h.levelMult))
	h.vecs = append(h.vecs, vec)
	h.ids = append(h.ids, id)
	h.levels = append(h.levels, level)
	layers := make([][]int32, level+1)
	h.links = append(h.links, layers)

	if !h.started {
		h.entry = node
		h.maxL = level
		h.started = true
		return
	}

	cur := h.entry
	// Greedy descent through layers above the insertion level.
	for l := h.maxL; l > level; l-- {
		cur = h.greedyClosest(vec, cur, l)
	}
	// Insert with beam search from min(level, maxL) down to 0.
	top := level
	if h.maxL < top {
		top = h.maxL
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(vec, cur, h.efConstruction, l)
		maxLinks := h.m
		if l == 0 {
			maxLinks = h.mmax0
		}
		sel := cands
		if len(sel) > h.m {
			sel = sel[:h.m]
		}
		for _, c := range sel {
			h.connect(node, c.Doc, l, maxLinks)
			h.connect(c.Doc, node, l, maxLinks)
		}
		if len(cands) > 0 {
			cur = cands[0].Doc
		}
	}
	if level > h.maxL {
		h.maxL = level
		h.entry = node
	}
}

// connect links from -> to at layer l, pruning to the maxLinks closest.
func (h *HNSW) connect(from, to int, l, maxLinks int) {
	if from == to {
		return
	}
	nbrs := h.links[from][l]
	for _, n := range nbrs {
		if int(n) == to {
			return
		}
	}
	nbrs = append(nbrs, int32(to))
	if len(nbrs) > maxLinks {
		// Keep the maxLinks closest neighbors.
		base := h.vecs[from]
		sort.Slice(nbrs, func(i, j int) bool {
			return h.dist(base, h.vecs[nbrs[i]]) < h.dist(base, h.vecs[nbrs[j]])
		})
		nbrs = nbrs[:maxLinks]
	}
	h.links[from][l] = nbrs
}

// greedyClosest walks layer l greedily toward vec from start.
func (h *HNSW) greedyClosest(vec []float32, start, l int) int {
	cur := start
	curD := h.dist(vec, h.vecs[cur])
	for {
		improved := false
		for _, n := range h.neighbors(cur, l) {
			if d := h.dist(vec, h.vecs[n]); d < curD {
				cur, curD = n, d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

func (h *HNSW) neighbors(node, l int) []int {
	if l >= len(h.links[node]) {
		return nil
	}
	out := make([]int, len(h.links[node][l]))
	for i, n := range h.links[node][l] {
		out[i] = int(n)
	}
	return out
}

// searchLayer runs beam search of width ef at layer l, returning candidates
// ordered by increasing distance.
func (h *HNSW) searchLayer(vec []float32, entry, ef, l int) []Scored {
	visited := map[int]bool{entry: true}
	entryD := h.dist(vec, h.vecs[entry])
	cand := &distHeap{min: true}
	res := &distHeap{min: false}
	heap.Push(cand, distItem{node: entry, d: entryD})
	heap.Push(res, distItem{node: entry, d: entryD})

	for cand.Len() > 0 {
		c := heap.Pop(cand).(distItem)
		worst := res.peek().d
		if c.d > worst && res.Len() >= ef {
			break
		}
		for _, n := range h.neighbors(c.node, l) {
			if visited[n] {
				continue
			}
			visited[n] = true
			d := h.dist(vec, h.vecs[n])
			if res.Len() < ef || d < res.peek().d {
				heap.Push(cand, distItem{node: n, d: d})
				heap.Push(res, distItem{node: n, d: d})
				if res.Len() > ef {
					heap.Pop(res)
				}
			}
		}
	}
	out := make([]Scored, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		it := heap.Pop(res).(distItem)
		out[i] = Scored{Doc: it.node, Score: 1 - it.d}
	}
	return out
}

// Search returns the top-k ids by cosine similarity.
func (h *HNSW) Search(query []float32, k int) []Scored {
	if !h.started {
		return nil
	}
	cur := h.entry
	for l := h.maxL; l > 0; l-- {
		cur = h.greedyClosest(query, cur, l)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(query, cur, ef, 0)
	out := make([]Scored, 0, k)
	for _, c := range cands {
		out = append(out, Scored{Doc: h.ids[c.Doc], Score: c.Score})
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// distItem / distHeap implement both min- and max-heaps over distances.
type distItem struct {
	node int
	d    float64
}

type distHeap struct {
	items []distItem
	min   bool
}

func (h *distHeap) Len() int { return len(h.items) }
func (h *distHeap) Less(i, j int) bool {
	if h.min {
		return h.items[i].d < h.items[j].d
	}
	return h.items[i].d > h.items[j].d
}
func (h *distHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x any)    { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() any {
	it := h.items[len(h.items)-1]
	h.items = h.items[:len(h.items)-1]
	return it
}
func (h *distHeap) peek() distItem { return h.items[0] }

var (
	_ VectorSearcher = (*Exact)(nil)
	_ VectorSearcher = (*HNSW)(nil)
)
