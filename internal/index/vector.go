package index

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"aryn/internal/embed"
)

// VectorSearcher is the kNN contract the store consumes. Exact gives
// ground-truth ranking; HNSW trades a little recall for sub-linear search.
type VectorSearcher interface {
	// Add indexes vec under the chunk ordinal id.
	Add(id int, vec []float32)
	// Search returns the top-k ids by cosine similarity (descending).
	Search(query []float32, k int) []Scored
	// Len reports the number of indexed vectors.
	Len() int
}

// unitVector returns vec scaled to unit L2 norm. Vectors already unit
// (within float32 rounding — everything embed.Hash emits) are returned
// as-is; others are copied so the caller's slice is never mutated. With
// unit vectors indexed, cosine similarity reduces to a plain dot product
// and searches skip the per-comparison norm recomputation of Cosine.
func unitVector(vec []float32) []float32 {
	var sum float64
	for _, v := range vec {
		sum += float64(v) * float64(v)
	}
	if sum == 0 || math.Abs(sum-1) <= 1e-6 {
		return vec
	}
	inv := float32(1 / math.Sqrt(sum))
	cp := make([]float32, len(vec))
	for i, v := range vec {
		cp[i] = v * inv
	}
	return cp
}

// Exact is brute-force kNN: always correct, O(n·d) per query. Searches
// over large corpora shard the scan across a worker pool.
type Exact struct {
	ids  []int
	vecs [][]float32
}

// exactShardMin is the corpus size at which Search fans the scan out
// across CPUs; below it the goroutine overhead outweighs the win.
const exactShardMin = 4096

// NewExact returns an empty brute-force index.
func NewExact() *Exact { return &Exact{} }

// Add indexes vec under id (normalized to unit length).
func (e *Exact) Add(id int, vec []float32) {
	e.ids = append(e.ids, id)
	e.vecs = append(e.vecs, unitVector(vec))
}

// Len reports the number of indexed vectors.
func (e *Exact) Len() int { return len(e.ids) }

// Search scans all vectors and returns the k most similar (all of them,
// ranked, when k <= 0). Ties break by ascending id.
func (e *Exact) Search(query []float32, k int) []Scored {
	q := unitVector(query)
	n := len(e.ids)
	if k <= 0 || k >= n {
		out := make([]Scored, n)
		for i, v := range e.vecs {
			out[i] = Scored{Doc: e.ids[i], Score: embed.Dot(q, v)}
		}
		return selectTopK(out, k)
	}

	workers := runtime.GOMAXPROCS(0)
	if max := n / exactShardMin; workers > max {
		workers = max
	}
	if workers <= 1 {
		t := newTopK(k)
		for i, v := range e.vecs {
			t.offer(Scored{Doc: e.ids[i], Score: embed.Dot(q, v)})
		}
		return t.take()
	}

	// Sharded scan: each worker heap-selects its shard's top-k, then the
	// per-shard winners merge through one more selection. The (Score, Doc)
	// total order makes the result identical to the single-threaded scan.
	var wg sync.WaitGroup
	parts := make([][]Scored, workers)
	stride := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*stride, (w+1)*stride
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t := newTopK(k)
			for i := lo; i < hi; i++ {
				t.offer(Scored{Doc: e.ids[i], Score: embed.Dot(q, e.vecs[i])})
			}
			parts[w] = t.take()
		}(w, lo, hi)
	}
	wg.Wait()
	merged := newTopK(k)
	for _, part := range parts {
		for _, s := range part {
			merged.offer(s)
		}
	}
	return merged.take()
}

// HNSW is a hierarchical navigable small-world graph index
// (Malkov & Yashunin), the ANN structure OpenSearch's kNN plugin uses.
type HNSW struct {
	m              int // max links per node per layer (above layer 0)
	mmax0          int // max links at layer 0
	efConstruction int
	efSearch       int
	levelMult      float64
	rng            *rand.Rand

	vecs    [][]float32
	ids     []int
	links   [][][]int32 // node -> layer -> neighbor node indices
	levels  []int
	entry   int
	maxL    int
	started bool

	// scratch pools per-search state (visited marks, beam heaps) so the
	// hot path allocates nothing per hop. Pooled rather than owned so
	// concurrent searches (the store runs them under RLock) each get
	// their own buffers.
	scratch sync.Pool
}

// hnswScratch is the reusable per-search state.
type hnswScratch struct {
	visited []uint32 // node -> generation mark (== gen means visited)
	gen     uint32
	cand    distHeap
	res     distHeap
}

// mark records node as visited, reporting whether it already was.
func (sc *hnswScratch) mark(node, size int) bool {
	if len(sc.visited) < size {
		grown := make([]uint32, size*2)
		copy(grown, sc.visited)
		sc.visited = grown
	}
	if sc.visited[node] == sc.gen {
		return true
	}
	sc.visited[node] = sc.gen
	return false
}

// NewHNSW builds an empty HNSW index with standard parameters (M=16,
// efConstruction=128, efSearch=64). The seed fixes level assignment so
// builds are reproducible.
func NewHNSW(seed int64) *HNSW {
	m := 16
	h := &HNSW{
		m:              m,
		mmax0:          2 * m,
		efConstruction: 128,
		efSearch:       64,
		levelMult:      1 / math.Log(float64(m)),
		rng:            rand.New(rand.NewSource(seed)),
	}
	h.scratch.New = func() any {
		return &hnswScratch{cand: distHeap{min: true}, res: distHeap{min: false}}
	}
	return h
}

// getScratch leases per-search buffers, advancing the visited generation
// so stale marks from earlier searches read as unvisited.
func (h *HNSW) getScratch() *hnswScratch {
	sc := h.scratch.Get().(*hnswScratch)
	sc.gen++
	if sc.gen == 0 { // wrapped: clear stale marks that now alias gen 0
		for i := range sc.visited {
			sc.visited[i] = 0
		}
		sc.gen = 1
	}
	sc.cand.items = sc.cand.items[:0]
	sc.res.items = sc.res.items[:0]
	return sc
}

// SetEFSearch tunes the search beam width (recall/latency trade-off).
func (h *HNSW) SetEFSearch(ef int) {
	if ef > 0 {
		h.efSearch = ef
	}
}

// Len reports the number of indexed vectors.
func (h *HNSW) Len() int { return len(h.ids) }

// dist is the cosine distance between unit vectors (see unitVector).
func (h *HNSW) dist(a, b []float32) float64 { return 1 - embed.Dot(a, b) }

// Add inserts vec under id (normalized to unit length).
func (h *HNSW) Add(id int, vec []float32) {
	vec = unitVector(vec)
	node := len(h.vecs)
	level := int(math.Floor(-math.Log(h.rng.Float64()+1e-12) * h.levelMult))
	h.vecs = append(h.vecs, vec)
	h.ids = append(h.ids, id)
	h.levels = append(h.levels, level)
	layers := make([][]int32, level+1)
	h.links = append(h.links, layers)

	if !h.started {
		h.entry = node
		h.maxL = level
		h.started = true
		return
	}

	cur := h.entry
	// Greedy descent through layers above the insertion level.
	for l := h.maxL; l > level; l-- {
		cur = h.greedyClosest(vec, cur, l)
	}
	// Insert with beam search from min(level, maxL) down to 0.
	top := level
	if h.maxL < top {
		top = h.maxL
	}
	for l := top; l >= 0; l-- {
		cands := h.searchLayer(vec, cur, h.efConstruction, l)
		maxLinks := h.m
		if l == 0 {
			maxLinks = h.mmax0
		}
		sel := cands
		if len(sel) > h.m {
			sel = sel[:h.m]
		}
		for _, c := range sel {
			h.connect(node, c.Doc, l, maxLinks)
			h.connect(c.Doc, node, l, maxLinks)
		}
		if len(cands) > 0 {
			cur = cands[0].Doc
		}
	}
	if level > h.maxL {
		h.maxL = level
		h.entry = node
	}
}

// connect links from -> to at layer l, pruning to the maxLinks closest
// (distance ties break by node ordinal, keeping builds reproducible).
func (h *HNSW) connect(from, to int, l, maxLinks int) {
	if from == to {
		return
	}
	nbrs := h.links[from][l]
	for _, n := range nbrs {
		if int(n) == to {
			return
		}
	}
	nbrs = append(nbrs, int32(to))
	if len(nbrs) > maxLinks {
		// Keep the maxLinks closest neighbors.
		base := h.vecs[from]
		sort.Slice(nbrs, func(i, j int) bool {
			di, dj := h.dist(base, h.vecs[nbrs[i]]), h.dist(base, h.vecs[nbrs[j]])
			if di != dj {
				return di < dj
			}
			return nbrs[i] < nbrs[j]
		})
		nbrs = nbrs[:maxLinks]
	}
	h.links[from][l] = nbrs
}

// neighborsAt returns the neighbor list of node at layer l without
// copying; callers must not mutate it.
func (h *HNSW) neighborsAt(node, l int) []int32 {
	if l >= len(h.links[node]) {
		return nil
	}
	return h.links[node][l]
}

// greedyClosest walks layer l greedily toward vec from start.
func (h *HNSW) greedyClosest(vec []float32, start, l int) int {
	cur := start
	curD := h.dist(vec, h.vecs[cur])
	for {
		improved := false
		for _, n := range h.neighborsAt(cur, l) {
			if d := h.dist(vec, h.vecs[int(n)]); d < curD {
				cur, curD = int(n), d
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer runs beam search of width ef at layer l, returning candidates
// ordered by increasing distance (ties by ascending node ordinal, so runs
// over identical builds are byte-reproducible).
func (h *HNSW) searchLayer(vec []float32, entry, ef, l int) []Scored {
	sc := h.getScratch()
	defer h.scratch.Put(sc)

	n := len(h.vecs)
	sc.mark(entry, n)
	entryD := h.dist(vec, h.vecs[entry])
	cand, res := &sc.cand, &sc.res
	cand.push(distItem{node: entry, d: entryD})
	res.push(distItem{node: entry, d: entryD})

	for cand.Len() > 0 {
		c := cand.pop()
		worst := res.peek().d
		if c.d > worst && res.Len() >= ef {
			break
		}
		for _, n32 := range h.neighborsAt(c.node, l) {
			nb := int(n32)
			if sc.mark(nb, n) {
				continue
			}
			d := h.dist(vec, h.vecs[nb])
			if res.Len() < ef || d < res.peek().d {
				cand.push(distItem{node: nb, d: d})
				res.push(distItem{node: nb, d: d})
				if res.Len() > ef {
					res.pop()
				}
			}
		}
	}
	out := make([]Scored, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		it := res.pop()
		out[i] = Scored{Doc: it.node, Score: 1 - it.d}
	}
	return out
}

// Search returns the top-k ids by cosine similarity (score ties ordered
// by ascending chunk ordinal, as Exact and BM25 do).
func (h *HNSW) Search(query []float32, k int) []Scored {
	if !h.started {
		return nil
	}
	q := unitVector(query)
	cur := h.entry
	for l := h.maxL; l > 0; l-- {
		cur = h.greedyClosest(q, cur, l)
	}
	ef := h.efSearch
	if ef < k {
		ef = k
	}
	cands := h.searchLayer(q, cur, ef, 0)
	out := make([]Scored, 0, k)
	for _, c := range cands {
		out = append(out, Scored{Doc: h.ids[c.Doc], Score: c.Score})
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// distItem / distHeap implement both min- and max-heaps over distances,
// with node-ordinal tie-breaks so heap order is a total order.
type distItem struct {
	node int
	d    float64
}

type distHeap struct {
	items []distItem
	min   bool
}

func (h *distHeap) Len() int { return len(h.items) }

// less orders the heap: min-heaps surface the closest node (ties by
// ascending ordinal); max-heaps surface the farthest (ties by descending
// ordinal, so trimming evicts the highest ordinal among equals first).
func (h *distHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.min {
		if a.d != b.d {
			return a.d < b.d
		}
		return a.node < b.node
	}
	if a.d != b.d {
		return a.d > b.d
	}
	return a.node > b.node
}

func (h *distHeap) swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	it := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		best := i
		if l := 2*i + 1; l < last && h.less(l, best) {
			best = l
		}
		if r := 2*i + 2; r < last && h.less(r, best) {
			best = r
		}
		if best == i {
			return it
		}
		h.swap(i, best)
		i = best
	}
}

func (h *distHeap) peek() distItem { return h.items[0] }

var (
	_ VectorSearcher = (*Exact)(nil)
	_ VectorSearcher = (*HNSW)(nil)
)
