// Package index is the in-process data store standing in for OpenSearch
// (§6.1): keyword (BM25) search over chunk text, typed property filters,
// and vector similarity search (exact and HNSW), with chunk→document
// reassembly. Luna only requires these three contracts of its backing
// store, so the substitution preserves the paper's query surface.
//
// Paper counterpart: the OpenSearch indexes Sycamore loads and Luna
// queries (§3, §6.1).
//
// Concurrency: Store is safe for concurrent readers and writers behind
// internal locks. Reads are zero-clone: documents are deep-cloned once on
// Put and the shared snapshot is returned directly thereafter — callers
// must treat returned documents as read-only (DocSet pipelines clone at
// the source when a plan mutates).
package index
