package index

import (
	"fmt"
	"sync"

	"aryn/internal/docmodel"
)

// Chunk is one indexed unit of text with provenance back to its parent
// document. Indexing happens at chunk granularity; query results are
// reassembled into documents (§6.1).
type Chunk struct {
	ID       string
	ParentID string
	Text     string
	Vector   []float32
	Page     int
}

// Store is the in-process document store: parent documents with their
// properties, plus a chunk-level BM25 inverted index and vector index.
// Safe for concurrent use.
//
// Documents are immutable-on-write: PutDocument deep-clones its input
// once, and every read path (Document, Documents, SearchDocs) returns
// that stored snapshot directly — zero clones per hit. Returned documents
// are shared and MUST be treated as read-only; callers that need to
// mutate take an explicit copy with Document.Clone (the docset sources do
// this automatically when a pipeline contains a mutating operator).
type Store struct {
	mu       sync.RWMutex
	docs     map[string]*docmodel.Document
	docOrder []string
	chunks   []Chunk
	bm25     *bm25Index
	vec      VectorSearcher
}

// StoreOption configures a Store.
type StoreOption func(*Store)

// WithHNSW switches the vector index to approximate HNSW search with the
// given seed (default: exact brute-force).
func WithHNSW(seed int64) StoreOption {
	return func(s *Store) { s.vec = NewHNSW(seed) }
}

// NewStore returns an empty store.
func NewStore(opts ...StoreOption) *Store {
	s := &Store{
		docs: make(map[string]*docmodel.Document),
		bm25: newBM25(),
		vec:  NewExact(),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// PutDocument upserts a parent document (replacing any prior version with
// the same ID). The input is deep-cloned once here — the immutable-on-write
// snapshot every later read shares. Chunk postings for replaced documents
// are not rewritten; re-ingest into a fresh store for full replacement
// semantics, as with an OpenSearch reindex.
func (s *Store) PutDocument(d *docmodel.Document) error {
	if d == nil || d.ID == "" {
		return fmt.Errorf("index: document must have an ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.docs[d.ID]; !exists {
		s.docOrder = append(s.docOrder, d.ID)
	}
	s.docs[d.ID] = d.Clone()
	return nil
}

// PutChunk indexes one text chunk (keyword + vector).
func (s *Store) PutChunk(c Chunk) error {
	if c.ParentID == "" {
		return fmt.Errorf("index: chunk %q must reference a parent document", c.ID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ord := len(s.chunks)
	s.chunks = append(s.chunks, c)
	s.bm25.add(ord, c.Text)
	if c.Vector != nil {
		s.vec.Add(ord, c.Vector)
	}
	return nil
}

// Document returns the stored parent document by ID. The returned
// document is the store's shared immutable snapshot: read-only (Clone
// before mutating).
func (s *Store) Document(id string) (*docmodel.Document, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.docs[id]
	if !ok {
		return nil, false
	}
	return d, true
}

// Documents returns all parent documents in insertion order, as shared
// read-only snapshots.
func (s *Store) Documents() []*docmodel.Document {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*docmodel.Document, 0, len(s.docOrder))
	for _, id := range s.docOrder {
		out = append(out, s.docs[id])
	}
	return out
}

// NumDocs reports the parent document count.
func (s *Store) NumDocs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.docs)
}

// NumChunks reports the indexed chunk count.
func (s *Store) NumChunks() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// VocabSize reports the BM25 vocabulary size.
func (s *Store) VocabSize() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bm25.vocabSize()
}

// Query describes one retrieval: keyword search, vector search, a property
// filter, or any combination. Zero-value fields are unused.
type Query struct {
	// Keyword ranks chunks by BM25 when non-empty.
	Keyword string
	// Vector ranks chunks by cosine similarity when non-nil.
	Vector []float32
	// Filter restricts results by parent-document properties.
	Filter Predicate
	// K limits the result count (0 = no limit).
	K int
}

// DocHit is one reassembled document result.
type DocHit struct {
	Doc   *docmodel.Document
	Score float64
}

// ChunkHit is one chunk-granularity result (used by the RAG baseline).
type ChunkHit struct {
	Chunk Chunk
	Score float64
}

// SearchDocs runs the query and returns parent documents, reassembled from
// their best-matching chunks, ordered by descending score (insertion order
// for pure filter scans). Hit documents are shared read-only snapshots
// (see the Store doc comment).
func (s *Store) SearchDocs(q Query) []DocHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	filter := q.Filter
	if filter == nil {
		filter = MatchAll()
	}

	ranked, truncated := s.rankChunks(q, overFetch(q.K))
	if ranked == nil && !truncated {
		// Pure metadata scan.
		var out []DocHit
		for _, id := range s.docOrder {
			d := s.docs[id]
			if filter.Match(d.Properties) {
				out = append(out, DocHit{Doc: d, Score: 1})
				if q.K > 0 && len(out) == q.K {
					break
				}
			}
		}
		return out
	}

	out := s.collectDocHits(ranked, filter, q.K)
	if q.K > 0 && len(out) < q.K && truncated {
		// Under-fill: the parent filter rejected most of the over-fetched
		// ranking. Widen to a full ranking so selective filters still fill K.
		ranked, _ = s.rankChunks(q, len(s.chunks))
		out = s.collectDocHits(ranked, filter, q.K)
	}
	return out
}

// collectDocHits groups ranked chunks by parent (best score per parent,
// first-seen rank order) and applies the parent-property filter.
func (s *Store) collectDocHits(ranked []Scored, filter Predicate, k int) []DocHit {
	best := map[string]float64{}
	var order []string
	for _, sc := range ranked {
		c := s.chunks[sc.Doc]
		if _, seen := best[c.ParentID]; !seen {
			order = append(order, c.ParentID)
			best[c.ParentID] = sc.Score
		}
	}
	var out []DocHit
	for _, pid := range order {
		d, ok := s.docs[pid]
		if !ok || !filter.Match(d.Properties) {
			continue
		}
		out = append(out, DocHit{Doc: d, Score: best[pid]})
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// SearchChunks runs the query at chunk granularity (RAG retrieval path).
func (s *Store) SearchChunks(q Query) []ChunkHit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	filter := q.Filter
	if filter == nil {
		filter = MatchAll()
	}
	ranked, truncated := s.rankChunks(q, overFetch(q.K))
	if ranked == nil && !truncated {
		// No ranking signal: return chunks in index order.
		ranked = make([]Scored, 0, len(s.chunks))
		for i := range s.chunks {
			ranked = append(ranked, Scored{Doc: i, Score: 1})
		}
	}
	out := s.collectChunkHits(ranked, filter, q.K)
	if q.K > 0 && len(out) < q.K && truncated {
		// Widen as in SearchDocs: selective parent filters must still fill K.
		ranked, _ = s.rankChunks(q, len(s.chunks))
		out = s.collectChunkHits(ranked, filter, q.K)
	}
	return out
}

// collectChunkHits applies the parent-property filter to a ranked chunk
// list, capped at k.
func (s *Store) collectChunkHits(ranked []Scored, filter Predicate, k int) []ChunkHit {
	var out []ChunkHit
	for _, sc := range ranked {
		c := s.chunks[sc.Doc]
		if parent, ok := s.docs[c.ParentID]; ok && !filter.Match(parent.Properties) {
			continue
		}
		out = append(out, ChunkHit{Chunk: c, Score: sc.Score})
		if k > 0 && len(out) == k {
			break
		}
	}
	return out
}

// overFetch is the first-pass ranking depth for a K-limited query: enough
// headroom that typical parent filters still fill K without ranking the
// whole corpus.
func overFetch(k int) int {
	if k <= 0 {
		return 0
	}
	return k * 8
}

// rankChunks produces a ranked chunk list of depth fetch (0 = unlimited)
// for the query's search signal, or nil when the query has no
// keyword/vector component. truncated reports whether the ranking may
// have more candidates beyond fetch — the signal SearchDocs/SearchChunks
// use to widen after an under-fill.
func (s *Store) rankChunks(q Query, fetch int) (ranked []Scored, truncated bool) {
	mayHaveMore := func(list []Scored) bool {
		return fetch > 0 && len(list) >= fetch && fetch < len(s.chunks)
	}
	switch {
	case q.Keyword != "" && q.Vector != nil:
		// Hybrid: reciprocal-rank fusion of both rankings. The fused list
		// may be incomplete when either side hit its fetch cap OR the
		// union itself got truncated to fetch (both sides under their
		// caps can still fuse to more than fetch distinct chunks).
		kw := s.bm25.search(q.Keyword, fetch)
		vs := s.vec.Search(q.Vector, fetch)
		fused := fuseRRF(kw, vs, fetch)
		return fused, mayHaveMore(kw) || mayHaveMore(vs) || mayHaveMore(fused)
	case q.Keyword != "":
		ranked = s.bm25.search(q.Keyword, fetch)
		return ranked, mayHaveMore(ranked)
	case q.Vector != nil:
		ranked = s.vec.Search(q.Vector, fetch)
		return ranked, mayHaveMore(ranked)
	default:
		return nil, false
	}
}

// fuseRRF merges two rankings with reciprocal rank fusion (k=60), the
// standard hybrid-search combiner. Top-k selection is heap-bounded.
func fuseRRF(a, b []Scored, k int) []Scored {
	const rrfK = 60.0
	score := map[int]float64{}
	add := func(list []Scored) {
		for rank, sc := range list {
			score[sc.Doc] += 1 / (rrfK + float64(rank+1))
		}
	}
	add(a)
	add(b)
	if k > 0 && k < len(score) {
		t := newTopK(k)
		for d, s := range score {
			t.offer(Scored{Doc: d, Score: s})
		}
		return t.take()
	}
	out := make([]Scored, 0, len(score))
	for d, s := range score {
		out = append(out, Scored{Doc: d, Score: s})
	}
	return selectTopK(out, 0)
}
