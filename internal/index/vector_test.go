package index

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"aryn/internal/embed"
)

func randomVectors(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		embed.Normalize(v)
		out[i] = v
	}
	return out
}

func TestExactTopKOrdering(t *testing.T) {
	e := NewExact()
	vecs := randomVectors(50, 16, 1)
	for i, v := range vecs {
		e.Add(i, v)
	}
	q := vecs[7]
	res := e.Search(q, 5)
	if len(res) != 5 {
		t.Fatalf("want 5 results, got %d", len(res))
	}
	if res[0].Doc != 7 {
		t.Errorf("self should rank first, got %d", res[0].Doc)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("scores not descending at %d", i)
		}
	}
}

func TestHNSWRecallAgainstExact(t *testing.T) {
	const n, dim, k = 600, 32, 10
	vecs := randomVectors(n, dim, 2)
	exact, hnsw := NewExact(), NewHNSW(3)
	for i, v := range vecs {
		exact.Add(i, v)
		hnsw.Add(i, v)
	}
	queries := randomVectors(30, dim, 4)
	var hit, total int
	for _, q := range queries {
		truth := map[int]bool{}
		for _, r := range exact.Search(q, k) {
			truth[r.Doc] = true
		}
		for _, r := range hnsw.Search(q, k) {
			if truth[r.Doc] {
				hit++
			}
		}
		total += k
	}
	recall := float64(hit) / float64(total)
	if recall < 0.85 {
		t.Errorf("HNSW recall@%d = %.3f, want >= 0.85", k, recall)
	}
}

func TestHNSWEmptyAndSingle(t *testing.T) {
	h := NewHNSW(1)
	if got := h.Search([]float32{1, 0}, 3); got != nil {
		t.Errorf("empty index should return nil, got %v", got)
	}
	h.Add(42, []float32{1, 0})
	res := h.Search([]float32{1, 0}, 3)
	if len(res) != 1 || res[0].Doc != 42 {
		t.Errorf("single-element search = %v", res)
	}
}

func TestHNSWDeterministicBuild(t *testing.T) {
	vecs := randomVectors(100, 8, 5)
	q := randomVectors(1, 8, 6)[0]
	run := func() []int {
		h := NewHNSW(9)
		for i, v := range vecs {
			h.Add(i, v)
		}
		var ids []int
		for _, r := range h.Search(q, 5) {
			ids = append(ids, r.Doc)
		}
		return ids
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed should give identical results: %v vs %v", a, b)
	}
}

func TestHNSWSetEFSearch(t *testing.T) {
	h := NewHNSW(1)
	h.SetEFSearch(256)
	if h.efSearch != 256 {
		t.Error("SetEFSearch ignored")
	}
	h.SetEFSearch(0) // ignored
	if h.efSearch != 256 {
		t.Error("non-positive ef should be ignored")
	}
}

// fullSortRanking is the pre-overhaul reference ranking: score every
// candidate, sort the whole list by (score desc, id asc), truncate to k.
func fullSortRanking(cands []Scored, k int) []Scored {
	out := append([]Scored(nil), cands...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Doc < out[j].Doc
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// TestExactHeapSelectMatchesFullSort proves the bounded-heap (and
// sharded) top-k path returns exactly the old full-sort ranking,
// including duplicate-vector score ties broken by id. GOMAXPROCS is
// raised so the sharded scan (n >= 2*exactShardMin with multiple
// workers) is exercised even on single-core runners.
func TestExactHeapSelectMatchesFullSort(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const dim = 32
	vecs := randomVectors(2*exactShardMin+800, dim, 11)
	// Duplicates exercise the id tie-break.
	for i := 0; i < 200; i++ {
		vecs = append(vecs, vecs[i])
	}
	e := NewExact()
	for i, v := range vecs {
		e.Add(i, v)
	}
	for _, q := range randomVectors(10, dim, 12) {
		// Reference: score all candidates with the same dot product, full sort.
		all := make([]Scored, len(vecs))
		for i, v := range vecs {
			all[i] = Scored{Doc: i, Score: embed.Dot(q, v)}
		}
		for _, k := range []int{1, 10, 100} {
			want := fullSortRanking(all, k)
			got := e.Search(q, k)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("k=%d: heap select diverged from full sort\ngot  %v\nwant %v", k, got[:3], want[:3])
			}
		}
	}
}

// TestBM25HeapSelectMatchesFullSort proves BM25's bounded top-k equals
// truncating the exhaustive (k=0) ranking.
func TestBM25HeapSelectMatchesFullSort(t *testing.T) {
	ix := newBM25()
	words := []string{"engine", "wing", "fuel", "pilot", "runway", "fire", "stall"}
	for i := 0; i < 500; i++ {
		text := fmt.Sprintf("%s %s %s report %d",
			words[i%len(words)], words[(i/3)%len(words)], words[(i/5)%len(words)], i)
		ix.add(i, text)
	}
	for _, query := range []string{"engine fire", "pilot runway stall", "wing"} {
		all := ix.search(query, 0)
		for _, k := range []int{1, 7, 50} {
			want := all
			if len(want) > k {
				want = want[:k]
			}
			got := ix.search(query, k)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("query %q k=%d: heap select diverged from full ranking", query, k)
			}
		}
	}
}

// TestHNSWDeterministicTies indexes duplicate vectors and checks that
// equal-score results come back in ascending id order, identically across
// two independent builds — byte-reproducible ANN output.
func TestHNSWDeterministicTies(t *testing.T) {
	base := randomVectors(30, 16, 21)
	build := func() *HNSW {
		h := NewHNSW(9)
		id := 0
		for _, v := range base {
			// Three copies of every vector: every score is a 3-way tie.
			for c := 0; c < 3; c++ {
				h.Add(id, v)
				id++
			}
		}
		return h
	}
	a, b := build(), build()
	for qi, q := range randomVectors(10, 16, 22) {
		ra, rb := a.Search(q, 12), b.Search(q, 12)
		if fmt.Sprint(ra) != fmt.Sprint(rb) {
			t.Fatalf("query %d: identical builds returned different rankings", qi)
		}
		for i := 1; i < len(ra); i++ {
			if ra[i].Score == ra[i-1].Score && ra[i].Doc < ra[i-1].Doc {
				t.Fatalf("query %d: tie at %d not ordered by ordinal: %v", qi, i, ra)
			}
		}
	}
}

// TestExactNormalizationPreservesCosine checks that indexing non-unit
// vectors still ranks by true cosine similarity (Add normalizes copies,
// never the caller's slice).
func TestExactNormalizationPreservesCosine(t *testing.T) {
	e := NewExact()
	raw := []float32{3, 4, 0, 0}
	rawCopy := append([]float32(nil), raw...)
	e.Add(0, raw)
	e.Add(1, []float32{0, 0, 5, 0})
	for i := range raw {
		if raw[i] != rawCopy[i] {
			t.Fatal("Add must not mutate the caller's vector")
		}
	}
	res := e.Search([]float32{6, 8, 0, 0}, 2)
	if res[0].Doc != 0 || math.Abs(res[0].Score-1) > 1e-6 {
		t.Errorf("parallel vector should score cosine 1, got %+v", res[0])
	}
	if math.Abs(res[1].Score) > 1e-6 {
		t.Errorf("orthogonal vector should score 0, got %+v", res[1])
	}
}

func TestBM25BasicRelevance(t *testing.T) {
	ix := newBM25()
	ix.add(0, "the engine failed during cruise flight")
	ix.add(1, "the pilot landed safely at the airport")
	ix.add(2, "engine engine engine maintenance records")
	res := ix.search("engine failed", 3)
	if len(res) < 2 {
		t.Fatalf("want >=2 hits, got %d", len(res))
	}
	if res[0].Doc != 0 {
		// doc 0 matches both terms; doc 2 matches one term thrice.
		t.Errorf("doc 0 should outrank repetition-only doc 2: %v", res)
	}
}

func TestBM25EmptyCases(t *testing.T) {
	ix := newBM25()
	if got := ix.search("anything", 5); got != nil {
		t.Error("empty index should return nil")
	}
	ix.add(0, "content here")
	if got := ix.search("", 5); got != nil {
		t.Error("empty query should return nil")
	}
	if got := ix.search("zzz qqq", 5); len(got) != 0 {
		t.Error("no matching terms should return empty")
	}
}

func TestBM25RareTermWeighsMore(t *testing.T) {
	ix := newBM25()
	for i := 0; i < 20; i++ {
		ix.add(i, "airplane airplane common words")
	}
	ix.add(20, "airplane gyrocopter unusual")
	res := ix.search("gyrocopter", 5)
	if len(res) != 1 || res[0].Doc != 20 {
		t.Fatalf("rare term lookup = %v", res)
	}
}
