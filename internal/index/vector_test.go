package index

import (
	"fmt"
	"math/rand"
	"testing"

	"aryn/internal/embed"
)

func randomVectors(n, dim int, seed int64) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		embed.Normalize(v)
		out[i] = v
	}
	return out
}

func TestExactTopKOrdering(t *testing.T) {
	e := NewExact()
	vecs := randomVectors(50, 16, 1)
	for i, v := range vecs {
		e.Add(i, v)
	}
	q := vecs[7]
	res := e.Search(q, 5)
	if len(res) != 5 {
		t.Fatalf("want 5 results, got %d", len(res))
	}
	if res[0].Doc != 7 {
		t.Errorf("self should rank first, got %d", res[0].Doc)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Errorf("scores not descending at %d", i)
		}
	}
}

func TestHNSWRecallAgainstExact(t *testing.T) {
	const n, dim, k = 600, 32, 10
	vecs := randomVectors(n, dim, 2)
	exact, hnsw := NewExact(), NewHNSW(3)
	for i, v := range vecs {
		exact.Add(i, v)
		hnsw.Add(i, v)
	}
	queries := randomVectors(30, dim, 4)
	var hit, total int
	for _, q := range queries {
		truth := map[int]bool{}
		for _, r := range exact.Search(q, k) {
			truth[r.Doc] = true
		}
		for _, r := range hnsw.Search(q, k) {
			if truth[r.Doc] {
				hit++
			}
		}
		total += k
	}
	recall := float64(hit) / float64(total)
	if recall < 0.85 {
		t.Errorf("HNSW recall@%d = %.3f, want >= 0.85", k, recall)
	}
}

func TestHNSWEmptyAndSingle(t *testing.T) {
	h := NewHNSW(1)
	if got := h.Search([]float32{1, 0}, 3); got != nil {
		t.Errorf("empty index should return nil, got %v", got)
	}
	h.Add(42, []float32{1, 0})
	res := h.Search([]float32{1, 0}, 3)
	if len(res) != 1 || res[0].Doc != 42 {
		t.Errorf("single-element search = %v", res)
	}
}

func TestHNSWDeterministicBuild(t *testing.T) {
	vecs := randomVectors(100, 8, 5)
	q := randomVectors(1, 8, 6)[0]
	run := func() []int {
		h := NewHNSW(9)
		for i, v := range vecs {
			h.Add(i, v)
		}
		var ids []int
		for _, r := range h.Search(q, 5) {
			ids = append(ids, r.Doc)
		}
		return ids
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed should give identical results: %v vs %v", a, b)
	}
}

func TestHNSWSetEFSearch(t *testing.T) {
	h := NewHNSW(1)
	h.SetEFSearch(256)
	if h.efSearch != 256 {
		t.Error("SetEFSearch ignored")
	}
	h.SetEFSearch(0) // ignored
	if h.efSearch != 256 {
		t.Error("non-positive ef should be ignored")
	}
}

func TestBM25BasicRelevance(t *testing.T) {
	ix := newBM25()
	ix.add(0, "the engine failed during cruise flight")
	ix.add(1, "the pilot landed safely at the airport")
	ix.add(2, "engine engine engine maintenance records")
	res := ix.search("engine failed", 3)
	if len(res) < 2 {
		t.Fatalf("want >=2 hits, got %d", len(res))
	}
	if res[0].Doc != 0 {
		// doc 0 matches both terms; doc 2 matches one term thrice.
		t.Errorf("doc 0 should outrank repetition-only doc 2: %v", res)
	}
}

func TestBM25EmptyCases(t *testing.T) {
	ix := newBM25()
	if got := ix.search("anything", 5); got != nil {
		t.Error("empty index should return nil")
	}
	ix.add(0, "content here")
	if got := ix.search("", 5); got != nil {
		t.Error("empty query should return nil")
	}
	if got := ix.search("zzz qqq", 5); len(got) != 0 {
		t.Error("no matching terms should return empty")
	}
}

func TestBM25RareTermWeighsMore(t *testing.T) {
	ix := newBM25()
	for i := 0; i < 20; i++ {
		ix.add(i, "airplane airplane common words")
	}
	ix.add(20, "airplane gyrocopter unusual")
	res := ix.search("gyrocopter", 5)
	if len(res) != 1 || res[0].Doc != 20 {
		t.Fatalf("rare term lookup = %v", res)
	}
}
