package index

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/embed"
)

// buildTestStore indexes three documents with chunked text and vectors.
func buildTestStore(t *testing.T, opts ...StoreOption) *Store {
	t.Helper()
	s := NewStore(opts...)
	em := embed.NewHash(1)
	docs := []struct {
		id    string
		state string
		text  []string
	}{
		{"R1", "KY", []string{
			"The airplane experienced a total loss of engine power during cruise.",
			"The airplane sustained substantial damage to the left wing.",
		}},
		{"R2", "CA", []string{
			"The pilot lost directional control during landing in gusty crosswinds.",
			"A post-crash fire consumed the fuselage.",
		}},
		{"R3", "KY", []string{
			"The airplane struck a flock of geese shortly after takeoff in July.",
			"Bird remains were found in the engine inlet.",
		}},
	}
	for _, d := range docs {
		doc := docmodel.New(d.id)
		doc.SetProperty("us_state", d.state)
		if err := s.PutDocument(doc); err != nil {
			t.Fatal(err)
		}
		for i, text := range d.text {
			err := s.PutChunk(Chunk{
				ID: fmt.Sprintf("%s-c%d", d.id, i), ParentID: d.id,
				Text: text, Vector: em.Embed(text), Page: i + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

func TestKeywordSearchRanksRelevantDocFirst(t *testing.T) {
	s := buildTestStore(t)
	hits := s.SearchDocs(Query{Keyword: "engine power loss", K: 3})
	if len(hits) == 0 || hits[0].Doc.ID != "R1" {
		t.Fatalf("expected R1 first, got %+v", hitIDs(hits))
	}
}

func TestVectorSearchFindsSemanticMatch(t *testing.T) {
	s := buildTestStore(t)
	em := embed.NewHash(1)
	q := em.Embed("geese bird strike after takeoff")
	hits := s.SearchDocs(Query{Vector: q, K: 1})
	if len(hits) != 1 || hits[0].Doc.ID != "R3" {
		t.Fatalf("expected R3, got %v", hitIDs(hits))
	}
}

func TestFilterOnlyScanPreservesOrder(t *testing.T) {
	s := buildTestStore(t)
	hits := s.SearchDocs(Query{Filter: Term("us_state", "KY")})
	if len(hits) != 2 || hits[0].Doc.ID != "R1" || hits[1].Doc.ID != "R3" {
		t.Fatalf("KY scan = %v", hitIDs(hits))
	}
}

func TestKeywordPlusFilter(t *testing.T) {
	s := buildTestStore(t)
	// "engine" appears in R1 and R3; CA filter excludes both.
	hits := s.SearchDocs(Query{Keyword: "engine", Filter: Term("us_state", "CA")})
	if len(hits) != 0 {
		t.Fatalf("CA+engine should be empty, got %v", hitIDs(hits))
	}
	hits = s.SearchDocs(Query{Keyword: "engine", Filter: Term("us_state", "KY")})
	if len(hits) != 2 {
		t.Fatalf("KY+engine should return R1,R3: %v", hitIDs(hits))
	}
}

func TestHybridSearch(t *testing.T) {
	s := buildTestStore(t)
	em := embed.NewHash(1)
	hits := s.SearchDocs(Query{
		Keyword: "substantial damage wing",
		Vector:  em.Embed("wing damage substantial"),
		K:       2,
	})
	if len(hits) == 0 || hits[0].Doc.ID != "R1" {
		t.Fatalf("hybrid should rank R1 first: %v", hitIDs(hits))
	}
}

func TestSearchChunksForRAG(t *testing.T) {
	s := buildTestStore(t)
	em := embed.NewHash(1)
	hits := s.SearchChunks(Query{Vector: em.Embed("bird strike geese"), K: 2})
	if len(hits) != 2 {
		t.Fatalf("want 2 chunks, got %d", len(hits))
	}
	if hits[0].Chunk.ParentID != "R3" {
		t.Errorf("top chunk should come from R3, got %s", hits[0].Chunk.ParentID)
	}
}

func TestSearchChunksNoSignalReturnsAll(t *testing.T) {
	s := buildTestStore(t)
	hits := s.SearchChunks(Query{})
	if len(hits) != 6 {
		t.Fatalf("want all 6 chunks, got %d", len(hits))
	}
}

func TestKLimit(t *testing.T) {
	s := buildTestStore(t)
	hits := s.SearchDocs(Query{Keyword: "the airplane pilot engine", K: 1})
	if len(hits) != 1 {
		t.Fatalf("K=1 should cap results, got %d", len(hits))
	}
}

func TestDocumentAccessorsAndSnapshotSemantics(t *testing.T) {
	s := buildTestStore(t)
	// Immutable-on-write: mutating the caller's document after PutDocument
	// must not leak into the stored snapshot.
	original := docmodel.New("R9")
	original.SetProperty("us_state", "TX")
	if err := s.PutDocument(original); err != nil {
		t.Fatal(err)
	}
	original.SetProperty("us_state", "MUTATED")
	stored, ok := s.Document("R9")
	if !ok {
		t.Fatal("R9 missing")
	}
	if stored.Property("us_state") != "TX" {
		t.Error("PutDocument must snapshot its input (immutable-on-write)")
	}
	// Zero-clone reads: repeated reads share the same snapshot.
	again, _ := s.Document("R9")
	if stored != again {
		t.Error("Document should return the shared snapshot, not a fresh clone")
	}
	hits := s.SearchDocs(Query{Filter: Term("us_state", "TX")})
	if len(hits) != 1 || hits[0].Doc != stored {
		t.Error("SearchDocs should share the same snapshot pointer")
	}
	if s.NumDocs() != 4 || s.NumChunks() != 6 {
		t.Errorf("counts: docs=%d chunks=%d", s.NumDocs(), s.NumChunks())
	}
	if s.VocabSize() == 0 {
		t.Error("vocabulary should be non-empty")
	}
	if _, ok := s.Document("nope"); ok {
		t.Error("missing doc should report !ok")
	}
}

// TestSearchDocsUnderfillWidensFetch reproduces the K*8 over-fetch
// exhaustion: a selective parent filter rejects every top-ranked chunk, so
// the first pass under-fills and the store must widen to a full ranking.
func TestSearchDocsUnderfillWidensFetch(t *testing.T) {
	s := NewStore()
	// 40 high-scoring non-KY docs: "engine" three times in a short chunk.
	for i := 0; i < 40; i++ {
		d := docmodel.New(fmt.Sprintf("N%02d", i))
		d.SetProperty("us_state", "CA")
		if err := s.PutDocument(d); err != nil {
			t.Fatal(err)
		}
		err := s.PutChunk(Chunk{
			ID: d.ID + "-c", ParentID: d.ID,
			Text: "engine engine engine",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// 2 KY docs ranked below all of them: one "engine" diluted by padding.
	for i := 0; i < 2; i++ {
		d := docmodel.New(fmt.Sprintf("K%02d", i))
		d.SetProperty("us_state", "KY")
		if err := s.PutDocument(d); err != nil {
			t.Fatal(err)
		}
		err := s.PutChunk(Chunk{
			ID: d.ID + "-c", ParentID: d.ID,
			Text: "engine surrounded by much much longer padding narrative text diluting term frequency statistics considerably",
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// K=2 ranks 16 chunks on the first pass — all CA. The widened retry
	// must still find both KY docs.
	hits := s.SearchDocs(Query{Keyword: "engine", Filter: Term("us_state", "KY"), K: 2})
	if len(hits) != 2 {
		t.Fatalf("filtered search should fill K=2 after widening, got %d hits", len(hits))
	}
	for _, h := range hits {
		if h.Doc.Property("us_state") != "KY" {
			t.Errorf("filter violated: %s", h.Doc.ID)
		}
	}
	// Same under-fill at chunk granularity.
	chunks := s.SearchChunks(Query{Keyword: "engine", Filter: Term("us_state", "KY"), K: 2})
	if len(chunks) != 2 {
		t.Fatalf("filtered chunk search should fill K=2 after widening, got %d", len(chunks))
	}
}

// TestStoreConcurrentReadWrite interleaves writers and zero-clone readers;
// run under -race (make test) this proves the snapshot read path is safe
// alongside concurrent ingestion.
func TestStoreConcurrentReadWrite(t *testing.T) {
	s := buildTestStore(t)
	em := embed.NewHash(1)
	qvec := em.Embed("engine power loss")
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 50; i++ {
				d := docmodel.New(fmt.Sprintf("W%d-%03d", w, i))
				d.SetProperty("us_state", "KY")
				if err := s.PutDocument(d); err != nil {
					t.Error(err)
					return
				}
				err := s.PutChunk(Chunk{
					ID: d.ID + "-c", ParentID: d.ID,
					Text:   fmt.Sprintf("engine narrative %d from writer %d", i, w),
					Vector: em.Embed(fmt.Sprintf("engine narrative %d", i)),
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, h := range s.SearchDocs(Query{Keyword: "engine narrative", K: 5}) {
					_ = h.Doc.Property("us_state") // read-only access
				}
				s.SearchChunks(Query{Vector: qvec, K: 5})
				for _, d := range s.Documents() {
					_ = d.Property("us_state")
				}
			}
		}()
	}
	// Readers overlap the full write burst, then wind down.
	writers.Wait()
	close(stop)
	readers.Wait()
	if s.NumDocs() != 3+200 {
		t.Errorf("docs after concurrent writes = %d, want %d", s.NumDocs(), 203)
	}
}

func TestPutValidation(t *testing.T) {
	s := NewStore()
	if err := s.PutDocument(docmodel.New("")); err == nil {
		t.Error("empty ID should be rejected")
	}
	if err := s.PutChunk(Chunk{ID: "c"}); err == nil {
		t.Error("chunk without parent should be rejected")
	}
}

func TestUpsertDocument(t *testing.T) {
	s := NewStore()
	d := docmodel.New("X")
	d.SetProperty("v", 1)
	_ = s.PutDocument(d)
	d2 := docmodel.New("X")
	d2.SetProperty("v", 2)
	_ = s.PutDocument(d2)
	if s.NumDocs() != 1 {
		t.Fatalf("upsert should not duplicate, docs=%d", s.NumDocs())
	}
	got, _ := s.Document("X")
	if v, _ := got.Properties.Int("v"); v != 2 {
		t.Errorf("upsert should replace, v=%d", v)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := buildTestStore(t)
	path := filepath.Join(t.TempDir(), "store.gob.gz")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != 3 || loaded.NumChunks() != 6 {
		t.Fatalf("loaded counts: %d docs %d chunks", loaded.NumDocs(), loaded.NumChunks())
	}
	// Indexes are rebuilt: search must work identically.
	hits := loaded.SearchDocs(Query{Keyword: "engine power loss", K: 1})
	if len(hits) != 1 || hits[0].Doc.ID != "R1" {
		t.Errorf("post-load search broken: %v", hitIDs(hits))
	}
	d, _ := loaded.Document("R1")
	if d.Property("us_state") != "KY" {
		t.Error("properties lost in round trip")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.gob")); err == nil {
		t.Error("loading a missing file should error")
	}
}

func TestSaveToBadPath(t *testing.T) {
	s := NewStore()
	if err := s.Save(filepath.Join(string(os.PathSeparator), "no", "such", "dir", "f")); err == nil {
		t.Error("saving to an invalid path should error")
	}
}

func hitIDs(hits []DocHit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.Doc.ID
	}
	return out
}
