package index

import (
	"math"

	"aryn/internal/llm"
)

// BM25 parameters (standard Robertson/Walker defaults, as in OpenSearch).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// bm25Index is an inverted index over chunk texts with BM25 ranking.
// Length statistics are maintained incrementally on add, so avgLen is
// O(1) at search time rather than a per-search rescan.
type bm25Index struct {
	postings map[string][]posting // term -> sorted doc postings
	docLen   []int                // tokens per indexed chunk
	totalLen int                  // running sum of docLen
}

type posting struct {
	doc int // chunk ordinal
	tf  int
}

func newBM25() *bm25Index {
	return &bm25Index{postings: make(map[string][]posting)}
}

// add indexes the text of the chunk with ordinal id. Chunks must be added
// in increasing id order (the store guarantees this).
func (ix *bm25Index) add(id int, text string) {
	toks := llm.Tokenize(text)
	counts := map[string]int{}
	for _, t := range toks {
		counts[t]++
	}
	for t, tf := range counts {
		ix.postings[t] = append(ix.postings[t], posting{doc: id, tf: tf})
	}
	for len(ix.docLen) <= id {
		ix.docLen = append(ix.docLen, 0)
	}
	ix.docLen[id] = len(toks)
	ix.totalLen += len(toks)
}

func (ix *bm25Index) avgLen() float64 {
	if len(ix.docLen) == 0 {
		return 0
	}
	return float64(ix.totalLen) / float64(len(ix.docLen))
}

// Scored is one ranked chunk hit: the chunk ordinal and its score.
type Scored struct {
	Doc   int
	Score float64
}

// search returns the top-k chunks by BM25 score for the query text. k <= 0
// means unlimited.
func (ix *bm25Index) search(query string, k int) []Scored {
	n := len(ix.docLen)
	if n == 0 {
		return nil
	}
	terms := llm.Tokenize(query)
	if len(terms) == 0 {
		return nil
	}
	avg := ix.avgLen()
	scores := map[int]float64{}
	seen := map[string]bool{}
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		idf := math.Log(1 + (float64(n)-float64(len(plist))+0.5)/(float64(len(plist))+0.5))
		for _, p := range plist {
			tf := float64(p.tf)
			dl := float64(ix.docLen[p.doc])
			denom := tf + bm25K1*(1-bm25B+bm25B*dl/avg)
			scores[p.doc] += idf * tf * (bm25K1 + 1) / denom
		}
	}
	// Bounded top-k selection instead of sorting the whole score map; the
	// (Score desc, Doc asc) total order keeps results deterministic
	// regardless of map iteration order.
	if k > 0 && k < len(scores) {
		t := newTopK(k)
		for d, s := range scores {
			t.offer(Scored{Doc: d, Score: s})
		}
		return t.take()
	}
	out := make([]Scored, 0, len(scores))
	for d, s := range scores {
		out = append(out, Scored{Doc: d, Score: s})
	}
	return selectTopK(out, 0)
}

// vocabSize reports the number of distinct indexed terms.
func (ix *bm25Index) vocabSize() int { return len(ix.postings) }
