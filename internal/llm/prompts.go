package llm

import (
	"fmt"
	"strings"
)

// Prompt contracts. Sycamore's semantic operators and the RAG baseline
// build prompts with these constructors; Sim recognizes the task marker on
// the first line and parses the labeled sections. A production deployment
// would send the same prompts to a hosted model — the markers are ordinary
// instruction text.

// Task markers (first line of the prompt).
const (
	TaskExtract   = "### TASK: extract"
	TaskFilter    = "### TASK: filter"
	TaskSummarize = "### TASK: summarize"
	TaskAnswer    = "### TASK: answer"
	TaskPlan      = "### TASK: plan"
)

const (
	docOpen  = "<<<DOCUMENT"
	docClose = "DOCUMENT>>>"
)

// CallClass classifies a request by its task marker: "plan", "extract",
// "filter", "summarize", "answer", or "generic" for prompts carrying no
// marker. The resilience middleware keys per-call-class timeout budgets
// on it (a planning call warrants a longer attempt budget than a yes/no
// filter probe), and a backend router could key tiering on it the same
// way.
func CallClass(req Request) string {
	first := req.Prompt
	if i := strings.IndexByte(first, '\n'); i >= 0 {
		first = first[:i]
	}
	switch first {
	case TaskPlan:
		return "plan"
	case TaskExtract:
		return "extract"
	case TaskFilter:
		return "filter"
	case TaskSummarize:
		return "summarize"
	case TaskAnswer:
		return "answer"
	}
	return "generic"
}

// FieldSpec describes one field an llmExtract call should pull from a
// document, mirroring the JSON-schema input of the paper's
// OpenAIPropertyExtractor (Fig. 4).
type FieldSpec struct {
	Name        string `json:"name"`
	Type        string `json:"type"` // "string" | "int" | "float" | "bool" | "date"
	Description string `json:"description,omitempty"`
}

// ExtractPrompt builds the prompt for extracting fields from one document.
func ExtractPrompt(fields []FieldSpec, docText string) string {
	var sb strings.Builder
	sb.WriteString(TaskExtract + "\n")
	sb.WriteString("Extract the following fields from the document below. Respond with a single JSON object. Use null for fields that cannot be determined.\n")
	sb.WriteString("FIELDS:\n")
	for _, f := range fields {
		desc := f.Description
		if desc != "" {
			desc = ": " + desc
		}
		fmt.Fprintf(&sb, "- %s (%s)%s\n", f.Name, f.Type, desc)
	}
	sb.WriteString(docOpen + "\n")
	sb.WriteString(docText)
	sb.WriteString("\n" + docClose + "\n")
	return sb.String()
}

// FilterPrompt builds the prompt for a yes/no document predicate.
func FilterPrompt(question, docText string) string {
	var sb strings.Builder
	sb.WriteString(TaskFilter + "\n")
	sb.WriteString("Answer strictly \"yes\" or \"no\".\n")
	sb.WriteString("QUESTION: " + question + "\n")
	sb.WriteString(docOpen + "\n")
	sb.WriteString(docText)
	sb.WriteString("\n" + docClose + "\n")
	return sb.String()
}

// SummarizePrompt builds the prompt for summarizing/combining items under
// an instruction (llmGenerate / llmReduceByKey).
func SummarizePrompt(instruction string, items []string) string {
	var sb strings.Builder
	sb.WriteString(TaskSummarize + "\n")
	sb.WriteString("INSTRUCTION: " + instruction + "\n")
	sb.WriteString("ITEMS:\n")
	for i, it := range items {
		fmt.Fprintf(&sb, "[%d] %s\n", i+1, strings.ReplaceAll(it, "\n", " "))
	}
	return sb.String()
}

// RAGPrompt builds the conventional RAG prompt: retrieved chunks stuffed as
// context followed by the user question (§7.2 baseline).
func RAGPrompt(question string, chunks []RAGChunk) string {
	var sb strings.Builder
	sb.WriteString(TaskAnswer + "\n")
	sb.WriteString("Answer the question using ONLY the context below. End your reply with a final line of the form \"Answer: <value>\".\n")
	sb.WriteString("QUESTION: " + question + "\n")
	sb.WriteString("CONTEXT:\n")
	for i, c := range chunks {
		fmt.Fprintf(&sb, "[%d] (doc %s) %s\n", i+1, c.DocID, strings.ReplaceAll(c.Text, "\n", " "))
	}
	return sb.String()
}

// RAGChunk is one retrieved context chunk with provenance.
type RAGChunk struct {
	DocID string
	Text  string
}

// section extracts the text following "LABEL:" up to the next line that
// looks like another section label or the end of s.
func section(s, label string) string {
	idx := strings.Index(s, label)
	if idx < 0 {
		return ""
	}
	rest := s[idx+len(label):]
	if nl := strings.Index(rest, "\n"); nl >= 0 {
		// Single-line sections (QUESTION:, INSTRUCTION:) end at the newline.
		return strings.TrimSpace(rest[:nl])
	}
	return strings.TrimSpace(rest)
}

// documentBody extracts the document text between the delimiters. If the
// closing delimiter was truncated away by the context window, everything
// after the opener is used (the model sees a cut-off document).
func documentBody(prompt string) string {
	start := strings.Index(prompt, docOpen)
	if start < 0 {
		return ""
	}
	body := prompt[start+len(docOpen):]
	if end := strings.Index(body, docClose); end >= 0 {
		body = body[:end]
	}
	return strings.TrimSpace(body)
}

// parseFieldSpecs reads back the FIELDS: block of an extract prompt.
func parseFieldSpecs(prompt string) []FieldSpec {
	idx := strings.Index(prompt, "FIELDS:\n")
	if idx < 0 {
		return nil
	}
	var out []FieldSpec
	for _, line := range strings.Split(prompt[idx+len("FIELDS:\n"):], "\n") {
		if !strings.HasPrefix(line, "- ") {
			break
		}
		line = strings.TrimPrefix(line, "- ")
		name, rest, ok := strings.Cut(line, " (")
		if !ok {
			continue
		}
		typ, desc, _ := strings.Cut(rest, ")")
		desc = strings.TrimPrefix(desc, ":")
		out = append(out, FieldSpec{Name: strings.TrimSpace(name), Type: strings.TrimSpace(typ), Description: strings.TrimSpace(desc)})
	}
	return out
}

// parseRAGChunks reads back the CONTEXT chunks of an answer prompt,
// tolerating a final chunk cut off by window truncation.
func parseRAGChunks(prompt string) []RAGChunk {
	idx := strings.Index(prompt, "CONTEXT:\n")
	if idx < 0 {
		return nil
	}
	var out []RAGChunk
	for _, line := range strings.Split(prompt[idx+len("CONTEXT:\n"):], "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "[") {
			continue
		}
		_, rest, ok := strings.Cut(line, "] (doc ")
		if !ok {
			continue
		}
		id, text, ok := strings.Cut(rest, ") ")
		if !ok {
			continue
		}
		out = append(out, RAGChunk{DocID: id, Text: text})
	}
	return out
}
