package llm

import (
	"encoding/json"
	"regexp"
	"strconv"
	"strings"
)

// runExtract implements the extract skill: pull the requested fields out of
// the document text, the way a model reads a report. It works from three
// signal sources, in priority order: (1) key/value structure (markdown
// table rows and "Key: Value" lines), (2) domain sentence patterns, and
// (3) keyword presence for booleans.
func (s *Sim) runExtract(prompt string) string {
	fields := parseFieldSpecs(prompt)
	doc := documentBody(prompt)
	kv := parseKV(doc)
	out := make(map[string]any, len(fields))
	for _, f := range fields {
		v := extractField(f, doc, kv)
		out[f.Name] = v
	}
	b, err := json.Marshal(out)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// kvPair is one key/value fact found in the document structure.
type kvPair struct {
	key   string // normalized (lower, space-joined tokens)
	value string
}

var kvLineRe = regexp.MustCompile(`^([A-Z][A-Za-z0-9 /()'&-]{1,40}):\s+(.+)$`)

// parseKV mines key/value structure: 2-column markdown table rows and
// "Key: Value" prose lines.
func parseKV(doc string) []kvPair {
	var pairs []kvPair
	for _, line := range strings.Split(doc, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "|") {
			cells := splitMarkdownRow(line)
			if len(cells) == 2 && cells[0] != "" && !strings.HasPrefix(cells[0], "---") {
				pairs = append(pairs, kvPair{key: normKey(cells[0]), value: strings.TrimSpace(cells[1])})
			}
			continue
		}
		if m := kvLineRe.FindStringSubmatch(line); m != nil {
			pairs = append(pairs, kvPair{key: normKey(m[1]), value: strings.TrimSpace(m[2])})
		}
	}
	return pairs
}

func splitMarkdownRow(line string) []string {
	line = strings.Trim(line, "|")
	parts := strings.Split(line, "|")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

// normKey lower-cases and splits camelCase/snake_case into space-joined
// tokens.
func normKey(k string) string {
	var sb strings.Builder
	runes := []rune(k)
	for i, r := range runes {
		if r >= 'A' && r <= 'Z' && i > 0 && runes[i-1] >= 'a' && runes[i-1] <= 'z' {
			sb.WriteByte(' ')
		}
		switch {
		case r == '_' || r == '-' || r == '/':
			sb.WriteByte(' ')
		default:
			sb.WriteRune(r)
		}
	}
	return strings.Join(strings.Fields(strings.ToLower(sb.String())), " ")
}

// fieldAliasDrop are tokens in field names that carry no matching signal.
var fieldAliasDrop = map[string]bool{
	"us": true, "abbrev": true, "abbreviation": true, "and": true, "of": true,
	"the": true, "name": true, "number": true, "related": true, "involved": true,
}

// keyTokens returns the meaningful tokens of a normalized field/key name.
func keyTokens(norm string) []string {
	var out []string
	for _, t := range strings.Fields(norm) {
		if !fieldAliasDrop[t] {
			out = append(out, t)
		}
	}
	return out
}

// lookupKV finds the best key/value match for the field name: exact
// normalized equality first, then token-subset containment.
func lookupKV(fieldNorm string, kv []kvPair) (string, bool) {
	for _, p := range kv {
		if p.key == fieldNorm {
			return p.value, true
		}
	}
	ft := keyTokens(fieldNorm)
	if len(ft) == 0 {
		return "", false
	}
	best, bestScore := "", 0
	for _, p := range kv {
		pt := keyTokens(p.key)
		score := tokenOverlap(ft, pt)
		// Require full containment of one side in the other.
		if score == len(ft) || (len(pt) > 0 && score == len(pt)) {
			if score > bestScore {
				best, bestScore = p.value, score
			}
		}
	}
	return best, bestScore > 0
}

func tokenOverlap(a, b []string) int {
	set := make(map[string]bool, len(b))
	for _, t := range b {
		set[t] = true
	}
	n := 0
	for _, t := range a {
		if set[t] {
			n++
		}
	}
	return n
}

var (
	damagePartRe = regexp.MustCompile(`(?i)damage to (?:the |its )?([a-z][a-z ]{2,40}?)(?:\.|,|;| and | which| during| when| after)`)
	engineNumRe  = regexp.MustCompile(`(?i)\b(single|twin|one|two|three|four|1|2|3|4)[- ]engine`)
	numberRe     = regexp.MustCompile(`-?\d+(\.\d+)?`)
	// causeTailRe captures the formal cause statement: the text after the
	// colon in "... determines the probable cause of this accident to be:
	// <statement>", up to the end of the paragraph line.
	causeTailRe = regexp.MustCompile(`(?i)probable cause[^.:\n]{0,60}:\s*(.{10,600}?)(?:\n|$)`)
)

// extractField resolves one field from the document.
func extractField(f FieldSpec, doc string, kv []kvPair) any {
	norm := normKey(f.Name)
	toks := keyTokens(norm)

	// Probable cause: quote the cause statement.
	if strings.Contains(norm, "cause") {
		if m := causeTailRe.FindStringSubmatch(doc); m != nil {
			return coerce(firstSentences(strings.TrimSpace(m[1]), 2), f.Type, doc, toks)
		}
		// No colon-anchored statement: take the first substantive sentence
		// discussing the cause (section headers are too short to qualify).
		for _, sent := range sentences(doc) {
			if len(sent) >= 50 && strings.Contains(strings.ToLower(sent), "cause") {
				return coerce(sent, f.Type, doc, toks)
			}
		}
		return nil
	}

	// State fields: derive from an explicit state key or the location.
	if strings.Contains(norm, "state") {
		if v, ok := lookupKV(norm, kv); ok {
			if ab := StateAbbrev(v); ab != "" {
				return ab
			}
			if ab := StateOfLocation(v); ab != "" {
				return ab
			}
		}
		for _, key := range []string{"location", "city state", "site"} {
			if v, ok := lookupKV(key, kv); ok {
				if ab := StateOfLocation(v); ab != "" {
					return ab
				}
			}
		}
		// Last resort: scan prose for "City, State" patterns.
		if ab := StateOfLocation(firstSentences(doc, 4)); ab != "" {
			return ab
		}
		return nil
	}

	// Damaged-part style fields: sentence pattern over the narrative.
	if (strings.Contains(norm, "part") && strings.Contains(norm, "damage")) ||
		norm == "damaged part" || norm == "part damaged" {
		if m := damagePartRe.FindStringSubmatch(doc); m != nil {
			return strings.TrimSpace(m[1])
		}
		return nil
	}

	// Engine-count style fields.
	if strings.Contains(norm, "engine") && (f.Type == "int" || strings.Contains(norm, "count")) {
		if v, ok := lookupKV(norm, kv); ok {
			return coerce(v, f.Type, doc, toks)
		}
		if m := engineNumRe.FindStringSubmatch(doc); m != nil {
			return wordToNumber(strings.ToLower(m[1]))
		}
		return nil
	}

	// Structured lookup.
	if v, ok := lookupKV(norm, kv); ok {
		return coerce(v, f.Type, doc, toks)
	}

	// Booleans fall back to keyword presence (recall-biased, like a model
	// answering "is this weather related?").
	if f.Type == "bool" {
		return keywordPresent(doc, toks)
	}

	// Final fallback: first sentence mentioning the field's tokens.
	if sent := sentenceWith(doc, toks); sent != "" && f.Type == "string" {
		return sent
	}
	return nil
}

// coerce converts a raw extracted string to the requested type.
func coerce(v, typ, doc string, fieldToks []string) any {
	v = strings.TrimSpace(v)
	if v == "" {
		return nil
	}
	switch typ {
	case "int":
		if m := numberRe.FindString(v); m != "" {
			if n, err := strconv.Atoi(strings.SplitN(m, ".", 2)[0]); err == nil {
				return n
			}
		}
		if n := wordToNumber(strings.ToLower(v)); n != nil {
			return n
		}
		return nil
	case "float":
		if m := numberRe.FindString(v); m != "" {
			if f, err := strconv.ParseFloat(m, 64); err == nil {
				return f
			}
		}
		return nil
	case "bool":
		low := strings.ToLower(v)
		switch {
		case strings.HasPrefix(low, "yes") || low == "true":
			return true
		case strings.HasPrefix(low, "no") || low == "false":
			return false
		default:
			return keywordPresent(doc, fieldToks)
		}
	default:
		return v
	}
}

func wordToNumber(w string) any {
	switch w {
	case "zero":
		return 0
	case "one", "single":
		return 1
	case "two", "twin":
		return 2
	case "three":
		return 3
	case "four":
		return 4
	case "1", "2", "3", "4":
		n, _ := strconv.Atoi(w)
		return n
	}
	return nil
}

// keywordPresent scans the document's prose for any synonym-expanded field
// token. Table rows are excluded: "Wind Speed | 4 knots" appears in every
// report and says nothing about whether the incident was weather-related.
func keywordPresent(doc string, fieldToks []string) bool {
	var prose []string
	for _, line := range strings.Split(doc, "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "|") {
			prose = append(prose, line)
		}
	}
	docToks := make(map[string]bool)
	for _, t := range Tokenize(strings.Join(prose, "\n")) {
		docToks[t] = true
	}
	for _, ft := range fieldToks {
		for _, syn := range Expand(ft) {
			for _, w := range strings.Fields(syn) {
				if docToks[w] {
					return true
				}
			}
		}
	}
	return false
}

var sentenceSplitRe = regexp.MustCompile(`(?s)[^.!?\n]+[.!?]?`)

// sentences splits text into rough sentence units.
func sentences(text string) []string {
	var out []string
	for _, m := range sentenceSplitRe.FindAllString(text, -1) {
		m = strings.TrimSpace(m)
		if m != "" {
			out = append(out, m)
		}
	}
	return out
}

// firstSentences returns the first n sentences of text joined together.
func firstSentences(text string, n int) string {
	ss := sentences(text)
	if len(ss) > n {
		ss = ss[:n]
	}
	return strings.Join(ss, " ")
}

// sentenceWith returns the first sentence containing any of the tokens.
func sentenceWith(text string, toks []string) string {
	if len(toks) == 0 {
		return ""
	}
	for _, sent := range sentences(text) {
		low := strings.ToLower(sent)
		for _, t := range toks {
			if strings.Contains(low, t) {
				return sent
			}
		}
	}
	return ""
}
