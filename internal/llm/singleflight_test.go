package llm

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFlightCollapsesConcurrentIdenticalRequests(t *testing.T) {
	inner := &countingClient{delay: 20 * time.Millisecond}
	flight := NewFlight(inner)
	ctx := context.Background()

	const waiters = 16
	var wg sync.WaitGroup
	texts := make([]string, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := flight.Complete(ctx, Request{Prompt: "same prompt"})
			texts[i], errs[i] = resp.Text, err
		}(i)
	}
	wg.Wait()

	for i := range errs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if texts[i] != "echo:same prompt" {
			t.Errorf("waiter %d got %q", i, texts[i])
		}
	}
	// The 20ms upstream delay guarantees overlap: all waiters must share
	// one upstream call.
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("upstream called %d times, want 1", got)
	}
	st := flight.Stats()
	if st.Leads != 1 || st.Shared != waiters-1 {
		t.Errorf("stats = %d leads / %d shared, want 1/%d", st.Leads, st.Shared, waiters-1)
	}
}

func TestFlightDistinctRequestsDoNotCollapse(t *testing.T) {
	inner := &countingClient{delay: 5 * time.Millisecond}
	flight := NewFlight(inner)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := flight.Complete(ctx, Request{Prompt: fmt.Sprintf("p%d", i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := inner.calls.Load(); got != 4 {
		t.Errorf("upstream called %d times, want 4", got)
	}
}

func TestFlightFollowerUsageZeroed(t *testing.T) {
	inner := &countingClient{delay: 20 * time.Millisecond}
	flight := NewFlight(inner)
	meter := NewMeter(flight)
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := meter.Complete(ctx, Request{Prompt: "dedup me"}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Only the leader's usage should be metered: duplicate work costs
	// nothing upstream.
	if u := meter.Usage(); u.Calls != 1 {
		t.Errorf("metered %d calls, want 1", u.Calls)
	}
}

func TestFlightWaiterHonorsOwnCancellation(t *testing.T) {
	inner := &countingClient{delay: 200 * time.Millisecond}
	flight := NewFlight(inner)

	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		flight.Complete(context.Background(), Request{Prompt: "slow"})
	}()
	// Let the leader take off, then join with an already-expiring context.
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := flight.Complete(ctx, Request{Prompt: "slow"})
	if err == nil {
		t.Fatal("expected context error")
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("cancelled waiter blocked %v on the leader", elapsed)
	}
	<-leaderDone
}

func TestFlightFollowerRetriesAfterLeaderCancellation(t *testing.T) {
	inner := &countingClient{delay: 50 * time.Millisecond}
	flight := NewFlight(inner)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := flight.Complete(leaderCtx, Request{Prompt: "shared"})
		leaderErr <- err
	}()
	time.Sleep(10 * time.Millisecond) // leader in flight

	followerDone := make(chan error, 1)
	go func() {
		_, err := flight.Complete(context.Background(), Request{Prompt: "shared"})
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // follower joined the flight
	cancelLeader()

	if err := <-leaderErr; err == nil {
		t.Error("cancelled leader should fail")
	}
	// The follower's context is healthy: it must re-issue, not inherit
	// the leader's cancellation.
	if err := <-followerDone; err != nil {
		t.Errorf("follower inherited leader's cancellation: %v", err)
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("upstream called %d times, want 2 (leader + follower retry)", got)
	}
}
