package llm

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the batching dispatcher, the third layer of the LLM
// call middleware. Per-document semantic operators issue many small,
// homogeneous completions; real model APIs amortize dispatch overhead when
// those are grouped into one batched call (the paper's batched
// extract/filter execution; UQE batches per-tuple predicates the same
// way). The Batcher coalesces concurrent Complete calls into grouped
// upstream dispatches bounded by batch size and a linger window.

// BatchClient is the optional upstream interface for grouped completions.
// When the wrapped client implements it, a whole batch is dispatched as
// one upstream call; otherwise the Batcher falls back to per-request
// forwarding (still in arrival order, preserving test-double determinism).
type BatchClient interface {
	CompleteBatch(ctx context.Context, reqs []Request) ([]Response, error)
}

// BatchStats is a snapshot of batching counters.
type BatchStats struct {
	// Batches counts upstream dispatches.
	Batches int64
	// Requests counts requests that flowed through the batcher.
	Requests int64
	// SizeFlushes and LingerFlushes split dispatches by trigger.
	SizeFlushes, LingerFlushes int64
	// MaxSize is the largest batch dispatched.
	MaxSize int64
}

// Sub returns the stats accumulated since prev (MaxSize is carried over).
func (s BatchStats) Sub(prev BatchStats) BatchStats {
	return BatchStats{
		Batches:       s.Batches - prev.Batches,
		Requests:      s.Requests - prev.Requests,
		SizeFlushes:   s.SizeFlushes - prev.SizeFlushes,
		LingerFlushes: s.LingerFlushes - prev.LingerFlushes,
		MaxSize:       s.MaxSize,
	}
}

// batchResult delivers one request's outcome back to its waiter.
type batchResult struct {
	resp Response
	err  error
}

// pendingReq is one enqueued request awaiting dispatch.
type pendingReq struct {
	req  Request
	done chan batchResult // buffered(1): dispatch never blocks on waiters
}

// Batcher coalesces concurrent Complete calls into grouped upstream
// dispatches. A batch flushes when it reaches MaxBatch requests or when
// the oldest pending request has lingered for the linger window. A request
// arriving while no other call is in flight dispatches immediately, so
// sequential callers (e.g. Luna's planner) never pay the linger.
type Batcher struct {
	inner    Client
	maxBatch int
	linger   time.Duration

	inflight atomic.Int64 // callers currently inside Complete

	mu      sync.Mutex
	pending []*pendingReq
	timer   *time.Timer
	// gen invalidates linger timers whose Stop raced their firing: a
	// fired-but-blocked lingerFlush from batch N must not drain batch N+1.
	gen   uint64
	stats BatchStats
}

// BatcherOption configures a Batcher.
type BatcherOption func(*Batcher)

// WithMaxBatch bounds the batch size (default 8; 1 disables coalescing).
func WithMaxBatch(n int) BatcherOption {
	return func(b *Batcher) {
		if n > 0 {
			b.maxBatch = n
		}
	}
}

// WithLinger sets how long an under-full batch waits for peers before
// flushing (default 1ms).
func WithLinger(d time.Duration) BatcherOption {
	return func(b *Batcher) {
		if d > 0 {
			b.linger = d
		}
	}
}

// NewBatcher wraps inner with a batching dispatcher.
func NewBatcher(inner Client, opts ...BatcherOption) *Batcher {
	b := &Batcher{inner: inner, maxBatch: 8, linger: time.Millisecond}
	for _, o := range opts {
		o(b)
	}
	return b
}

// Complete enqueues the request and waits for its batch to be dispatched.
func (b *Batcher) Complete(ctx context.Context, req Request) (Response, error) {
	if b.maxBatch <= 1 {
		return b.inner.Complete(ctx, req)
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)

	p := &pendingReq{req: req, done: make(chan batchResult, 1)}

	b.mu.Lock()
	b.pending = append(b.pending, p)
	n := len(b.pending)
	switch {
	case n >= b.maxBatch:
		// Flush on size: this caller dispatches the full batch.
		batch := b.takeLocked()
		b.stats.SizeFlushes++
		b.mu.Unlock()
		b.dispatch(batch)
	case b.inflight.Load() == 1:
		// Sole caller: nobody else can join this batch, dispatch now.
		batch := b.takeLocked()
		b.mu.Unlock()
		b.dispatch(batch)
	case n == 1:
		// First of a concurrent group: arm the linger timer.
		gen := b.gen
		b.timer = time.AfterFunc(b.linger, func() { b.lingerFlush(gen) })
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}

	select {
	case r := <-p.done:
		return r.resp, r.err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

// takeLocked drains the pending queue, stops the linger timer, and bumps
// the generation so a stale fired timer becomes a no-op. Callers must hold
// b.mu.
func (b *Batcher) takeLocked() []*pendingReq {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// lingerFlush fires when an under-full batch has waited out the linger.
func (b *Batcher) lingerFlush(gen uint64) {
	b.mu.Lock()
	if gen != b.gen {
		// This timer's batch was already flushed (by size or Flush) while
		// we waited for the lock; the pending queue belongs to a newer
		// batch.
		b.mu.Unlock()
		return
	}
	batch := b.takeLocked()
	if len(batch) > 0 {
		b.stats.LingerFlushes++
	}
	b.mu.Unlock()
	b.dispatch(batch)
}

// Flush dispatches any pending requests immediately (shutdown hook).
func (b *Batcher) Flush() {
	b.mu.Lock()
	batch := b.takeLocked()
	b.mu.Unlock()
	b.dispatch(batch)
}

// dispatch sends one batch upstream and fans results back to the waiters.
// The upstream call runs under a background context: the batch is shared
// by callers with independent contexts, and each waiter still honors its
// own cancellation while waiting.
func (b *Batcher) dispatch(batch []*pendingReq) {
	if len(batch) == 0 {
		return
	}
	b.mu.Lock()
	b.stats.Batches++
	b.stats.Requests += int64(len(batch))
	if int64(len(batch)) > b.stats.MaxSize {
		b.stats.MaxSize = int64(len(batch))
	}
	b.mu.Unlock()

	ctx := context.Background() //lint:allow ctxflow a flushed batch aggregates many callers' requests; no single caller's context may cancel the shared round-trip
	if bc, ok := b.inner.(BatchClient); ok && len(batch) > 1 {
		reqs := make([]Request, len(batch))
		for i, p := range batch {
			reqs[i] = p.req
		}
		resps, err := bc.CompleteBatch(ctx, reqs)
		if err == nil && len(resps) == len(batch) {
			for i, p := range batch {
				p.done <- batchResult{resp: resps[i]}
			}
			return
		}
		// Batch-level failure (e.g. one transient fault): degrade to
		// per-request dispatch so one poisoned request doesn't fail its
		// whole cohort and amplify the failure rate ~maxBatch-fold.
	}
	for _, p := range batch {
		resp, err := b.inner.Complete(ctx, p.req)
		p.done <- batchResult{resp: resp, err: err}
	}
}

// Name identifies the wrapped model.
func (b *Batcher) Name() string { return b.inner.Name() }

// Inner returns the wrapped client.
func (b *Batcher) Inner() Client { return b.inner }

// Stats returns a snapshot of the batching counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

var _ Client = (*Batcher)(nil)
