package llm

import (
	"fmt"
	"math/rand"
	"regexp"
	"sort"
	"strings"
)

// DisclaimerMarker is the liability boilerplate every NTSB report carries.
// When retrieved chunks containing it dominate a RAG context and the
// question touches cause or fault, the model declines to answer — the
// context-poisoning failure the paper highlights (§7.2).
const DisclaimerMarker = "does not assign fault or blame"

// RefusalText mirrors the paper's reported refusal response.
const RefusalText = "The NTSB does not assign fault or blame for accidents or incidents; " +
	"accident/incident investigations are fact-finding proceedings with no formal issues, " +
	"and are not conducted for the purpose of determining the rights or liabilities of any person. " +
	"I cannot attribute causes from these materials."

var faultTerms = []string{
	"cause", "caused", "causes", "causal", "fault", "blame", "due",
	"problem", "problems", "failure", "why", "reason",
}

// runSummarize implements llmGenerate/llmReduceByKey: combine items under
// an instruction into a terse abstractive summary.
func (s *Sim) runSummarize(prompt string) string {
	instruction := section(prompt, "INSTRUCTION: ")
	items := parseItems(prompt)
	if len(items) == 0 {
		return "No items to summarize."
	}
	var parts []string
	limit := len(items)
	if limit > 12 {
		limit = 12
	}
	for _, it := range items[:limit] {
		if sent := firstSentences(it, 1); sent != "" {
			parts = append(parts, sent)
		}
	}
	head := fmt.Sprintf("Summary of %d items", len(items))
	if instruction != "" {
		head += " (" + instruction + ")"
	}
	return head + ": " + strings.Join(parts, " ")
}

func parseItems(prompt string) []string {
	idx := strings.Index(prompt, "ITEMS:\n")
	if idx < 0 {
		return nil
	}
	var items []string
	for _, line := range strings.Split(prompt[idx+len("ITEMS:\n"):], "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "[") {
			if _, rest, ok := strings.Cut(line, "] "); ok {
				items = append(items, rest)
			}
		}
	}
	return items
}

// runAnswer implements the RAG answer skill over stuffed context. Its
// failure modes are the point: it only sees chunks surviving window
// truncation, attends to at most attendItems of them, refuses on poisoned
// context, miscounts long enumerations, and answers aggregate questions by
// enumerating what it can see.
func (s *Sim) runAnswer(rng *rand.Rand, prompt string) (string, bool, error) {
	question := section(prompt, "QUESTION: ")
	chunks := parseRAGChunks(prompt)
	if len(chunks) == 0 {
		return "I don't have enough context to answer.\nAnswer: unknown", false, nil
	}

	// Context poisoning check runs over everything inside the window: the
	// boilerplate primes the refusal no matter where it sits in context
	// (§7.2: "whenever these text chunks are included in the vector search
	// results fed as context, the final response is effectively poisoned").
	if isFaultAdjacent(question) {
		poisoned := 0
		for _, c := range chunks {
			if strings.Contains(strings.ToLower(c.Text), DisclaimerMarker) {
				poisoned++
			}
		}
		if float64(poisoned) >= s.refusalRatio*float64(len(chunks)) && poisoned > 0 {
			return RefusalText, true, nil
		}
	}

	// Lost in the middle: aggregate answers (counts, breakdowns,
	// fractions) require global attention over the context and degrade to
	// the leading window of items. Needle-style questions (listing or
	// quoting a few specific matches) are what in-context retrieval is
	// actually good at, so they read everything visible.
	attended := chunks
	if len(attended) > s.attendItems {
		attended = attended[:s.attendItems]
	}

	qlow := strings.ToLower(question)
	switch {
	case strings.Contains(qlow, "how many") && strings.Contains(qlow, " by "):
		return answerBreakdown(question, attended), false, nil
	case strings.Contains(qlow, "how many") || strings.HasPrefix(qlow, "count"):
		return answerCount(rng, question, attended), false, nil
	case strings.Contains(qlow, "fraction") || strings.Contains(qlow, "percentage") || strings.Contains(qlow, "percent"):
		return answerFraction(question, attended), false, nil
	case strings.Contains(qlow, "most common") || strings.Contains(qlow, "most frequently") || strings.Contains(qlow, "top "):
		return answerMostCommon(question, attended), false, nil
	case strings.HasPrefix(qlow, "which") || strings.HasPrefix(qlow, "list") || strings.Contains(qlow, "which incidents"):
		return answerList(question, chunks), false, nil
	default:
		return answerLookup(question, chunks), false, nil
	}
}

func isFaultAdjacent(question string) bool {
	q := strings.ToLower(question)
	for _, t := range faultTerms {
		if containsWord(q, t) {
			return true
		}
	}
	return false
}

// matchingDocs returns the distinct doc IDs (in first-seen order) whose
// visible chunks — concatenated per document, since the model can read
// across chunks of the same source — satisfy the question predicate.
func matchingDocs(question string, chunks []RAGChunk) []string {
	var order []string
	byDoc := map[string]*strings.Builder{}
	for _, c := range chunks {
		sb, ok := byDoc[c.DocID]
		if !ok {
			sb = &strings.Builder{}
			byDoc[c.DocID] = sb
			order = append(order, c.DocID)
		}
		sb.WriteString(c.Text)
		sb.WriteString(". ")
	}
	var ids []string
	for _, id := range order {
		if filterMatch(nil, question, byDoc[id].String(), 1) {
			ids = append(ids, id)
		}
	}
	return ids
}

func answerCount(rng *rand.Rand, question string, chunks []RAGChunk) string {
	n := len(matchingDocs(question, chunks))
	// Counting long enumerations inside a stuffed context is unreliable
	// for language models [Liu et al. 2023]: beyond a handful of items the
	// reported tally slips by one or two.
	if n >= 4 && rng != nil {
		switch r := rng.Float64(); {
		case r < 0.35: // exact
		case r < 0.62:
			n--
		case r < 0.80:
			n -= 2
		case r < 0.93:
			n++
		default:
			n -= 3
		}
		if n < 0 {
			n = 0
		}
	}
	return fmt.Sprintf("Based on the provided context I can identify %d matching incident(s).\nAnswer: %d", n, n)
}

var stateWordRe = regexp.MustCompile(`(?i)\b([A-Z][a-z]+(?: [A-Z][a-z]+)?),? (?:[A-Z]{2}\b)?`)

func answerBreakdown(question string, chunks []RAGChunk) string {
	counts := map[string]int{}
	byState := strings.Contains(strings.ToLower(question), "state")
	for _, c := range chunks {
		if !filterMatch(nil, question, c.Text, 1) && !byState {
			continue
		}
		key := ""
		if byState {
			key = StateOfLocation(c.Text)
			if key == "" {
				// Scan capitalized phrases for state names.
				for _, m := range stateWordRe.FindAllStringSubmatch(c.Text, -1) {
					if ab := StateAbbrev(m[1]); ab != "" {
						key = ab
						break
					}
				}
			}
		} else {
			// Best effort: first content token of the chunk acts as a key.
			toks := ContentTokens(c.Text)
			if len(toks) > 0 {
				key = toks[0]
			}
		}
		if key != "" {
			counts[key]++
		}
	}
	if len(counts) == 0 {
		return "The context does not contain a usable breakdown.\nAnswer: unknown"
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	return "Partial breakdown from visible context.\nAnswer: " + strings.Join(parts, ", ")
}

func answerFraction(question string, chunks []RAGChunk) string {
	ids := matchingDocs(question, chunks)
	total := map[string]bool{}
	for _, c := range chunks {
		total[c.DocID] = true
	}
	if len(total) == 0 {
		return "Answer: unknown"
	}
	frac := float64(len(ids)) / float64(len(total))
	return fmt.Sprintf("Roughly %d of %d visible incidents match.\nAnswer: %.2f", len(ids), len(total), frac)
}

func answerMostCommon(question string, chunks []RAGChunk) string {
	counts := map[string]int{}
	for _, c := range chunks {
		for _, m := range damagePartRe.FindAllStringSubmatch(c.Text, -1) {
			counts[strings.TrimSpace(strings.ToLower(m[1]))]++
		}
	}
	if len(counts) == 0 {
		return "The context does not identify specific items.\nAnswer: unknown"
	}
	best, bestN := "", 0
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic tie-break
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return fmt.Sprintf("The most frequently mentioned is %q (%d mentions).\nAnswer: %s", best, bestN, best)
}

func answerList(question string, chunks []RAGChunk) string {
	ids := matchingDocs(question, chunks)
	if len(ids) == 0 {
		return "No matching incidents appear in the context.\nAnswer: none"
	}
	if len(ids) > 10 {
		ids = ids[:10]
	}
	return "Matching incidents: " + strings.Join(ids, ", ") + "\nAnswer: " + strings.Join(ids, ", ")
}

func answerLookup(question string, chunks []RAGChunk) string {
	toks := ContentTokens(question)
	for _, c := range chunks {
		if sent := sentenceWith(c.Text, toks); sent != "" {
			return fmt.Sprintf("From doc %s: %s\nAnswer: %s", c.DocID, sent, sent)
		}
	}
	return "The context does not address the question.\nAnswer: unknown"
}
