package llm

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// This file composes the middleware layers into the canonical stack:
//
//	Cache → Flight → [Resilience] → Batcher → backing model
//
// The cache is outermost so hits skip everything; singleflight sits above
// the batcher so concurrent identical requests collapse before grouping;
// the optional resilience layer (WithResilience — retries, circuit
// breaker, attempt timeouts) sits below the cache so cached answers keep
// serving through an outage, and above the batcher so retried attempts
// re-enter batching; the batcher coalesces what remains into grouped
// upstream dispatches. An outer Meter (not part of the stack) keeps
// reporting true upstream spend because hit/follower responses carry
// zero Usage.

// StackStats aggregates the counters of every middleware layer.
type StackStats struct {
	Cache  CacheStats
	Flight FlightStats
	Batch  BatchStats
}

// Sub returns the stats accumulated since prev.
func (s StackStats) Sub(prev StackStats) StackStats {
	return StackStats{
		Cache:  s.Cache.Sub(prev.Cache),
		Flight: s.Flight.Sub(prev.Flight),
		Batch:  s.Batch.Sub(prev.Batch),
	}
}

// String renders a one-line summary for traces and CLI reports.
func (s StackStats) String() string {
	parts := []string{}
	lookups := s.Cache.Hits + s.Cache.Misses
	if lookups > 0 {
		parts = append(parts, fmt.Sprintf("cache %d/%d hits (%d tokens saved)",
			s.Cache.Hits, lookups, s.Cache.Saved.Total()))
	}
	if s.Flight.Shared > 0 {
		parts = append(parts, fmt.Sprintf("singleflight %d shared", s.Flight.Shared))
	}
	if s.Batch.Batches > 0 {
		parts = append(parts, fmt.Sprintf("%d requests in %d batches (max %d)",
			s.Batch.Requests, s.Batch.Batches, s.Batch.MaxSize))
	}
	if len(parts) == 0 {
		return "no middleware activity"
	}
	return strings.Join(parts, ", ")
}

// Stack is the assembled middleware pipeline. It satisfies Client, so it
// drops into any place a model is consumed; individual layers stay
// addressable for stats and persistence.
type Stack struct {
	client  Client // entry point (outermost enabled layer)
	cache   *Cache
	flight  *Flight
	batcher *Batcher
	inner   Client
}

// stackConfig collects construction options.
type stackConfig struct {
	disableCache  bool
	disableFlight bool
	cacheCapacity int
	cachePath     string
	maxBatch      int
	linger        time.Duration
	resilience    func(Client) Client
}

// StackOption configures a Stack.
type StackOption func(*stackConfig)

// WithoutCache disables the response cache layer.
func WithoutCache() StackOption { return func(c *stackConfig) { c.disableCache = true } }

// WithoutSingleflight disables the deduplication layer.
func WithoutSingleflight() StackOption { return func(c *stackConfig) { c.disableFlight = true } }

// WithCacheCapacity bounds the response cache (default 4096 entries).
func WithCacheCapacity(n int) StackOption { return func(c *stackConfig) { c.cacheCapacity = n } }

// WithCachePersistence warm-starts the cache from path when the file
// exists; call Stack.SaveCache to write it back.
func WithCachePersistence(path string) StackOption {
	return func(c *stackConfig) { c.cachePath = path }
}

// WithBatching sets the dispatcher's batch bound and linger window.
// maxBatch 1 disables coalescing (every call forwards directly).
func WithBatching(maxBatch int, linger time.Duration) StackOption {
	return func(c *stackConfig) {
		c.maxBatch = maxBatch
		c.linger = linger
	}
}

// WithResilience inserts wrap between the singleflight layer and the
// batcher: below the cache (hits never touch a breaker — serving cached
// answers during an outage is the first line of graceful degradation)
// and above the batcher (retried attempts re-enter batching). The
// wrapped client should expose Inner() Client so StatsOf keeps walking
// the chain. The llm package stays dependency-free of the resilience
// implementation; internal/resilience provides the canonical wrapper.
func WithResilience(wrap func(Client) Client) StackOption {
	return func(c *stackConfig) { c.resilience = wrap }
}

// NewStack assembles the middleware pipeline around a backing client.
func NewStack(inner Client, opts ...StackOption) *Stack {
	cfg := stackConfig{cacheCapacity: 4096, maxBatch: 8, linger: time.Millisecond}
	for _, o := range opts {
		o(&cfg)
	}
	s := &Stack{inner: inner}
	client := inner
	if cfg.maxBatch > 1 {
		s.batcher = NewBatcher(client, WithMaxBatch(cfg.maxBatch), WithLinger(cfg.linger))
		client = s.batcher
	}
	if cfg.resilience != nil {
		client = cfg.resilience(client)
	}
	if !cfg.disableFlight {
		s.flight = NewFlight(client)
		client = s.flight
	}
	if !cfg.disableCache {
		s.cache = NewCache(client, WithCapacity(cfg.cacheCapacity))
		if cfg.cachePath != "" {
			// Best-effort warm start: a missing or unreadable snapshot just
			// means a cold cache.
			_ = s.cache.Load(cfg.cachePath)
		}
		client = s.cache
	}
	s.client = client
	return s
}

// Complete runs the request through the middleware pipeline.
func (s *Stack) Complete(ctx context.Context, req Request) (Response, error) {
	return s.client.Complete(ctx, req)
}

// Name identifies the backing model.
func (s *Stack) Name() string { return s.inner.Name() }

// Inner returns the backing client beneath all middleware.
func (s *Stack) Inner() Client { return s.inner }

// Cache returns the cache layer (nil when disabled).
func (s *Stack) CacheLayer() *Cache { return s.cache }

// SaveCache persists the response cache to path (no-op when disabled).
func (s *Stack) SaveCache(path string) error {
	if s.cache == nil {
		return nil
	}
	return s.cache.Save(path)
}

// StackStats snapshots every layer's counters.
func (s *Stack) StackStats() StackStats {
	var st StackStats
	if s.cache != nil {
		st.Cache = s.cache.Stats()
	}
	if s.flight != nil {
		st.Flight = s.flight.Stats()
	}
	if s.batcher != nil {
		st.Batch = s.batcher.Stats()
	}
	return st
}

// statsProvider is implemented by the Stack (and anything else that can
// report middleware stats).
type statsProvider interface{ StackStats() StackStats }

// wrapper is implemented by middleware that exposes its wrapped client.
type wrapper interface{ Inner() Client }

// StatsOf walks a chain of wrapped clients (Meter, Cache, Flight, Batcher,
// Stack…) and returns the first middleware stats snapshot found.
func StatsOf(c Client) (StackStats, bool) {
	for c != nil {
		if sp, ok := c.(statsProvider); ok {
			return sp.StackStats(), true
		}
		w, ok := c.(wrapper)
		if !ok {
			break
		}
		c = w.Inner()
	}
	return StackStats{}, false
}

var _ Client = (*Stack)(nil)
