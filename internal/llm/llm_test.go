package llm

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("The pilot's failure, at 19:02!")
	want := []string{"the", "pilot", "s", "failure", "at", "19", "02"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestCountTokens(t *testing.T) {
	if CountTokens("") != 0 {
		t.Error("empty should be 0 tokens")
	}
	if n := CountTokens("one two three"); n != 3 {
		t.Errorf("CountTokens = %d, want 3", n)
	}
	// Punctuation-heavy text falls back to the length heuristic.
	if n := CountTokens(strings.Repeat("--==++~~", 12)); n == 0 {
		t.Error("symbol soup should still cost tokens")
	}
}

func TestTruncateTokens(t *testing.T) {
	text := "alpha beta gamma delta epsilon"
	got := TruncateTokens(text, 3)
	if CountTokens(got) != 3 {
		t.Errorf("TruncateTokens kept %d tokens: %q", CountTokens(got), got)
	}
	if !strings.HasPrefix(text, got) {
		t.Errorf("truncation must be a prefix: %q", got)
	}
	if TruncateTokens(text, 100) != text {
		t.Error("no-op truncation should return input")
	}
	if TruncateTokens(text, 0) != "" {
		t.Error("zero budget should return empty")
	}
}

func TestStateHelpers(t *testing.T) {
	if StateAbbrev("Kentucky") != "KY" || StateAbbrev("ky") != "KY" {
		t.Error("StateAbbrev failed for Kentucky")
	}
	if StateAbbrev("Gondor") != "" {
		t.Error("unknown state should be empty")
	}
	if got := StateOfLocation("Gilbertsville, Kentucky"); got != "KY" {
		t.Errorf("StateOfLocation = %q", got)
	}
	if got := StateOfLocation("near Winchester, Virginia (OKV)"); got != "VA" {
		t.Errorf("StateOfLocation with airport code = %q", got)
	}
	if StateName("NM") != "New Mexico" {
		t.Errorf("StateName(NM) = %q", StateName("NM"))
	}
}

func TestUsageSub(t *testing.T) {
	after := Usage{Calls: 10, PromptTokens: 500, CompletionTokens: 120}
	before := Usage{Calls: 4, PromptTokens: 180, CompletionTokens: 50}
	got := after.Sub(before)
	want := Usage{Calls: 6, PromptTokens: 320, CompletionTokens: 70}
	if got != want {
		t.Errorf("Sub = %+v, want %+v", got, want)
	}
	if (after.Sub(Usage{})) != after {
		t.Error("Sub of zero snapshot should be identity")
	}
}

func TestMeterAccumulates(t *testing.T) {
	sim := NewSim(1)
	m := NewMeter(sim)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := m.Complete(ctx, Request{Prompt: "hello world test prompt"}); err != nil {
			t.Fatal(err)
		}
	}
	u := m.Usage()
	if u.Calls != 3 || u.PromptTokens == 0 {
		t.Errorf("Usage = %+v", u)
	}
	m.Reset()
	if m.Usage().Calls != 0 {
		t.Error("Reset failed")
	}
}

func TestSimDeterminism(t *testing.T) {
	ctx := context.Background()
	req := Request{Prompt: FilterPrompt("does the document mention engine problems?",
		"The engine lost power. Examination revealed a failure of the carburetor.")}
	a, _ := NewSim(42).Complete(ctx, req)
	b, _ := NewSim(42).Complete(ctx, req)
	if a.Text != b.Text {
		t.Errorf("same seed should give same answer: %q vs %q", a.Text, b.Text)
	}
}

func TestSimContextWindowTruncates(t *testing.T) {
	sim := NewSim(1, WithContextWindow(50))
	long := strings.Repeat("filler words to blow the window ", 50)
	resp, err := sim.Complete(context.Background(), Request{Prompt: long})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.PromptTokens > 50 {
		t.Errorf("prompt tokens %d exceed window", resp.Usage.PromptTokens)
	}
}

func TestSimStrictContextRejects(t *testing.T) {
	sim := NewSim(1, WithContextWindow(10), WithStrictContext())
	long := strings.Repeat("word ", 100)
	_, err := sim.Complete(context.Background(), Request{Prompt: long})
	if !errors.Is(err, ErrContextTooLong) {
		t.Errorf("want ErrContextTooLong, got %v", err)
	}
}

func TestSimFailureInjection(t *testing.T) {
	sim := NewSim(7, WithFailureRate(1.0))
	_, err := sim.Complete(context.Background(), Request{Prompt: "anything"})
	if !errors.Is(err, ErrTransient) {
		t.Errorf("want ErrTransient, got %v", err)
	}
}

func TestSimCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSim(1).Complete(ctx, Request{Prompt: "x"}); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestScriptedClient(t *testing.T) {
	s := &Scripted{Responses: []Response{{Text: "one"}, {Text: "two"}}}
	ctx := context.Background()
	r1, _ := s.Complete(ctx, Request{Prompt: "a"})
	r2, _ := s.Complete(ctx, Request{Prompt: "b"})
	r3, _ := s.Complete(ctx, Request{Prompt: "c"})
	if r1.Text != "one" || r2.Text != "two" || r3.Text != "two" {
		t.Errorf("scripted sequence: %q %q %q", r1.Text, r2.Text, r3.Text)
	}
	if s.Calls() != 3 || len(s.Requests) != 3 {
		t.Error("call recording broken")
	}
}

func TestGenericCompletion(t *testing.T) {
	sim := NewSim(1)
	resp, err := sim.Complete(context.Background(), Request{Prompt: "tell me about airplanes and weather"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text == "" {
		t.Error("generic completion should produce text")
	}
}

func TestCustomSkillDispatch(t *testing.T) {
	sim := NewSim(1)
	sim.Register(skillFunc{
		match: func(r Request) bool { return strings.HasPrefix(r.Prompt, TaskPlan) },
		run:   func(r Request) (string, error) { return `{"plan":"ok"}`, nil },
	})
	resp, err := sim.Complete(context.Background(), Request{Prompt: TaskPlan + "\nquery here"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != `{"plan":"ok"}` {
		t.Errorf("custom skill not dispatched: %q", resp.Text)
	}
}

type skillFunc struct {
	match func(Request) bool
	run   func(Request) (string, error)
}

func (s skillFunc) Match(r Request) bool { return s.match(r) }
func (s skillFunc) Run(_ *rand.Rand, r Request) (string, error) {
	return s.run(r)
}
