package llm

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"
)

// Sim is the deterministic heuristic language model. It dispatches on the
// task marker in the prompt and runs the matching skill. All stochastic
// behaviour (fault injection, leniency) is seeded per-request so runs are
// reproducible.
type Sim struct {
	name           string
	seed           int64
	contextWindow  int
	strictContext  bool
	filterLeniency float64
	failureRate    float64
	attendItems    int
	refusalRatio   float64
	latency        time.Duration
	skills         []Skill
	calls          atomic.Int64
}

// Skill extends the Sim with a custom task handler (e.g. Luna's planner).
type Skill interface {
	// Match reports whether this skill handles the request.
	Match(req Request) bool
	// Run produces the completion text. rng is seeded per request.
	Run(rng *rand.Rand, req Request) (string, error)
}

// SimOption configures a Sim.
type SimOption func(*Sim)

// WithContextWindow sets the prompt token budget (default 8192). Prompts
// over the window are truncated (or rejected under WithStrictContext).
func WithContextWindow(tokens int) SimOption {
	return func(s *Sim) { s.contextWindow = tokens }
}

// WithStrictContext makes over-window prompts an error instead of
// truncating.
func WithStrictContext() SimOption { return func(s *Sim) { s.strictContext = true } }

// WithFilterLeniency sets the probability that a weak single-concept match
// still passes an llmFilter (default 0.85 — the paper's "occasionally too
// generous" behaviour).
func WithFilterLeniency(p float64) SimOption { return func(s *Sim) { s.filterLeniency = p } }

// WithFailureRate injects seeded transient failures at rate p, exercising
// executor retries.
func WithFailureRate(p float64) SimOption { return func(s *Sim) { s.failureRate = p } }

// WithAttendItems caps how many context items the answer skill can attend
// to (default 30): the "lost in the middle" effect [Liu et al. 2023].
func WithAttendItems(n int) SimOption { return func(s *Sim) { s.attendItems = n } }

// WithRefusalRatio sets the fraction of visible context chunks that must
// carry liability boilerplate before a fault-adjacent question triggers a
// refusal (default 0.08, §7.2 context poisoning).
func WithRefusalRatio(p float64) SimOption { return func(s *Sim) { s.refusalRatio = p } }

// WithName overrides the reported model name.
func WithName(name string) SimOption { return func(s *Sim) { s.name = name } }

// WithLatency adds a fixed per-dispatch delay modelling network round-trip
// to a hosted model. A batched dispatch (CompleteBatch) pays it once for
// the whole group — the amortization that makes batching worthwhile.
func WithLatency(d time.Duration) SimOption { return func(s *Sim) { s.latency = d } }

// NewSim builds the simulated model with the given seed.
func NewSim(seed int64, opts ...SimOption) *Sim {
	s := &Sim{
		name:           "sim-gpt",
		seed:           seed,
		contextWindow:  8192,
		filterLeniency: 0.85,
		attendItems:    30,
		refusalRatio:   0.08,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Name identifies the model.
func (s *Sim) Name() string { return s.name }

// Register adds a custom skill, consulted before the built-in ones.
func (s *Sim) Register(sk Skill) { s.skills = append(s.skills, sk) }

// rng derives a deterministic per-request random source from the Sim seed
// and the prompt content.
func (s *Sim) rng(prompt string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(prompt))
	return rand.New(rand.NewSource(s.seed ^ int64(h.Sum64())))
}

// Complete implements Client.
func (s *Sim) Complete(ctx context.Context, req Request) (Response, error) {
	if err := s.sleep(ctx); err != nil {
		return Response{}, err
	}
	return s.complete(ctx, req)
}

// sleep models the network round-trip of one dispatch.
func (s *Sim) sleep(ctx context.Context) error {
	if s.latency <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(s.latency)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// complete is the latency-free completion path shared by solo and batched
// dispatch.
func (s *Sim) complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	// Failure injection draws from a per-call stream so retries of the same
	// prompt can succeed; skill behaviour below stays prompt-deterministic.
	call := s.calls.Add(1)
	if s.failureRate > 0 {
		failRng := rand.New(rand.NewSource(s.seed ^ (call * 0x9e3779b9)))
		if failRng.Float64() < s.failureRate {
			return Response{}, fmt.Errorf("simulated rate limit: %w", ErrTransient)
		}
	}
	rng := s.rng(req.System + "\x00" + req.Prompt)

	prompt := req.Prompt
	promptTokens := CountTokens(req.System) + CountTokens(prompt)
	if promptTokens > s.contextWindow {
		if s.strictContext {
			return Response{}, fmt.Errorf("%d tokens > window %d: %w", promptTokens, s.contextWindow, ErrContextTooLong)
		}
		// Hard truncation: the model never sees past the window.
		budget := s.contextWindow - CountTokens(req.System)
		prompt = TruncateTokens(prompt, budget)
		promptTokens = s.contextWindow
	}

	text, refusal, err := s.dispatch(rng, Request{System: req.System, Prompt: prompt, MaxTokens: req.MaxTokens, Temperature: req.Temperature})
	if err != nil {
		return Response{}, err
	}
	if req.MaxTokens > 0 {
		text = TruncateTokens(text, req.MaxTokens)
	}
	return Response{
		Text:    text,
		Refusal: refusal,
		Usage:   Usage{Calls: 1, PromptTokens: promptTokens, CompletionTokens: CountTokens(text)},
	}, nil
}

func (s *Sim) dispatch(rng *rand.Rand, req Request) (text string, refusal bool, err error) {
	for _, sk := range s.skills {
		if sk.Match(req) {
			t, err := sk.Run(rng, req)
			return t, false, err
		}
	}
	first, _, _ := strings.Cut(req.Prompt, "\n")
	switch strings.TrimSpace(first) {
	case TaskExtract:
		return s.runExtract(req.Prompt), false, nil
	case TaskFilter:
		return s.runFilter(rng, req.Prompt), false, nil
	case TaskSummarize:
		return s.runSummarize(req.Prompt), false, nil
	case TaskAnswer:
		return s.runAnswer(rng, req.Prompt)
	default:
		// Generic completion: echo a terse acknowledgment summary. Real
		// models free-form here; nothing in the system depends on it.
		return s.genericCompletion(req.Prompt), false, nil
	}
}

// genericCompletion produces a short abstractive-looking reply for prompts
// outside the known task set.
func (s *Sim) genericCompletion(prompt string) string {
	toks := ContentTokens(prompt)
	if len(toks) > 24 {
		toks = toks[:24]
	}
	return "Summary: " + strings.Join(toks, " ")
}

// CompleteBatch runs a grouped completion: each request goes through the
// same deterministic skill path as a solo Complete (so batched and
// unbatched runs produce identical text), but the group is accounted as a
// single upstream call — only the first response carries Calls=1,
// modelling the amortized dispatch of a real batched API.
func (s *Sim) CompleteBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	// One round trip for the whole group.
	if err := s.sleep(ctx); err != nil {
		return nil, err
	}
	resps := make([]Response, len(reqs))
	for i, req := range reqs {
		resp, err := s.complete(ctx, req)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			resp.Usage.Calls = 0
		}
		resps[i] = resp
	}
	return resps, nil
}

var _ Client = (*Sim)(nil)
var _ BatchClient = (*Sim)(nil)
