package llm

import (
	"math/rand"
	"strings"
)

// runFilter implements the yes/no predicate skill behind llmFilter. It
// decomposes the question into concept groups (content token + synonyms)
// and checks whether the concepts co-occur in the document.
//
// The matcher is deliberately recall-biased: a document where all concepts
// appear in one sentence passes outright, and even a single-concept match
// passes with probability filterLeniency. That reproduces the paper's
// observed failure mode — "the LLM filter operation ... tends to pass
// through documents where an engine problem was not indicated" — because
// NTSB-style reports mention engines, weather, and damage in many
// incidental contexts (§7.2, Filter errors).
func (s *Sim) runFilter(rng *rand.Rand, prompt string) string {
	question := section(prompt, "QUESTION: ")
	doc := documentBody(prompt)
	if question == "" || doc == "" {
		return "no"
	}
	if filterMatch(rng, question, doc, s.filterLeniency) {
		return "yes"
	}
	return "no"
}

// filterMatch is the shared predicate evaluation (also used by the RAG
// answer skill when screening chunks).
func filterMatch(rng *rand.Rand, question, doc string, leniency float64) bool {
	groups := conceptGroups(question)
	if len(groups) == 0 {
		// Contentless predicate: everything matches.
		return true
	}
	doc = stripNegatedRows(doc)
	sents := sentences(strings.ToLower(doc))
	full := strings.ToLower(doc)

	matchedAnywhere := 0
	for _, g := range groups {
		if groupMatches(g, full) {
			matchedAnywhere++
		}
	}
	if matchedAnywhere == 0 {
		return false
	}
	if matchedAnywhere == len(groups) {
		// All concepts present somewhere. Strong signal if they co-occur in
		// one sentence.
		for _, sent := range sents {
			n := 0
			for _, g := range groups {
				if groupMatches(g, sent) {
					n++
				}
			}
			if n == len(groups) {
				return true
			}
		}
		// Concepts scattered across the document (never co-occurring in a
		// sentence): a weak signal, but the generous filter still passes a
		// meaningful share of these (§7.2).
		return rng != nil && rng.Float64() < leniency*0.4
	}
	// Partial concept coverage: weakest match.
	frac := float64(matchedAnywhere) / float64(len(groups))
	if frac < 0.5 {
		return false
	}
	return rng != nil && rng.Float64() < leniency*frac*0.35
}

// stripNegatedRows removes key/value structure whose value is an explicit
// negative ("Aircraft Fire: None"), so a predicate about fire does not
// match every report's boilerplate table row. The model reads tables; it
// understands "None".
func stripNegatedRows(doc string) string {
	var out []string
	for _, line := range strings.Split(doc, "\n") {
		trimmed := strings.TrimSpace(line)
		value := ""
		switch {
		case strings.HasPrefix(trimmed, "|"):
			cells := strings.Split(strings.Trim(trimmed, "|"), "|")
			if len(cells) == 2 {
				value = strings.TrimSpace(cells[1])
			}
		case strings.Contains(trimmed, ": "):
			_, v, _ := strings.Cut(trimmed, ": ")
			value = strings.TrimSpace(v)
		}
		if negatedValue(value) {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func negatedValue(v string) bool {
	switch strings.ToLower(v) {
	case "none", "no", "n/a", "not applicable", "false":
		return true
	}
	return false
}

// conceptGroups splits a predicate question into concept groups: each
// content token plus its synonym expansion. Multi-word proper phrases
// (capitalized sequences like "Piper" or "New York") form their own group.
func conceptGroups(question string) [][]string {
	var groups [][]string
	seen := map[string]bool{}
	for _, tok := range ContentTokens(question) {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		groups = append(groups, Expand(tok))
	}
	return groups
}

func groupMatches(group []string, text string) bool {
	for _, syn := range group {
		if syn == "" {
			continue
		}
		// Morphological fold: a model matches "collisions" against
		// "collision" effortlessly.
		variants := []string{syn}
		if strings.HasSuffix(syn, "s") && !strings.HasSuffix(syn, "ss") && len(syn) > 3 {
			variants = append(variants, syn[:len(syn)-1])
		} else {
			variants = append(variants, syn+"s")
		}
		for _, v := range variants {
			if containsWord(text, v) {
				return true
			}
		}
	}
	return false
}

// containsWord reports whether text contains syn on word boundaries
// (substring match for multi-word synonyms).
func containsWord(text, syn string) bool {
	if strings.ContainsRune(syn, ' ') {
		return strings.Contains(text, syn)
	}
	idx := 0
	for {
		i := strings.Index(text[idx:], syn)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(syn)
		beforeOK := start == 0 || !isWordByte(text[start-1])
		afterOK := end >= len(text) || !isWordByte(text[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
