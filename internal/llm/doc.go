// Package llm defines the language-model abstraction Sycamore's semantic
// operators and Luna's planner are built on, the call middleware stack
// (content-addressed cache, singleflight, batching), and Sim — a
// deterministic, heuristic stand-in for GPT-4o-class models.
//
// The paper's results depend on the *system behaviour* of LLMs, not their
// raw intelligence: bounded context windows, lossy attention over long
// prompts, over-generous filters, boilerplate-driven refusals, and
// reliable narrow-task performance when queries are decomposed (§2
// tenets, §7.2 failure analysis). Sim reproduces those mechanisms with
// seeded determinism so every experiment regenerates identically.
//
// Paper counterpart: the GPT-4o calls made by Sycamore transforms and the
// Luna planner (§5.2, §6.1).
//
// Concurrency: every Client in this package (Sim, Meter, Stack and its
// middleware layers, Scripted) is safe for concurrent Complete calls;
// pipeline workers, concurrent queries, and the serving layer all share
// one client chain. The singleflight and batching layers exist precisely
// to exploit concurrent callers.
package llm
