package llm

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// usageErrClient returns a response carrying usage together with an
// error — the shape of a fault injected after tokens were burned.
type usageErrClient struct {
	mu   sync.Mutex
	errs []error
	i    int
}

func (c *usageErrClient) Complete(_ context.Context, _ Request) (Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if c.i < len(c.errs) {
		err = c.errs[c.i]
	}
	c.i++
	return Response{Text: "x", Usage: Usage{Calls: 1, PromptTokens: 10, CompletionTokens: 5}}, err
}

func (c *usageErrClient) Name() string { return "usage-err" }

// TestMeterFailedUsage: spend carried by failed calls accumulates
// separately from delivered-answer spend, and Reset clears both.
func TestMeterFailedUsage(t *testing.T) {
	transient := errors.New("boom")
	m := NewMeter(&usageErrClient{errs: []error{nil, transient, transient, nil}})
	for i := 0; i < 4; i++ {
		_, _ = m.Complete(context.Background(), Request{Prompt: "p"})
	}
	if u := m.Usage(); u.Calls != 2 || u.Total() != 30 {
		t.Errorf("successful usage = %+v, want 2 calls / 30 tokens", u)
	}
	if f := m.FailedUsage(); f.Calls != 2 || f.Total() != 30 {
		t.Errorf("failed usage = %+v, want the 2 errored calls' spend", f)
	}
	m.Reset()
	if u, f := m.Usage(), m.FailedUsage(); u.Total() != 0 || f.Total() != 0 {
		t.Errorf("Reset left usage %+v / failed %+v", u, f)
	}
}

// TestCallClass pins the task-marker → class mapping the resilience
// middleware keys per-class timeout budgets on.
func TestCallClass(t *testing.T) {
	cases := []struct {
		prompt string
		want   string
	}{
		{TaskPlan + "\nhow many?", "plan"},
		{TaskExtract + "\nfields", "extract"},
		{TaskFilter + "\nkeep?", "filter"},
		{TaskSummarize + "\ndocs", "summarize"},
		{TaskAnswer + "\nquestion", "answer"},
		{TaskPlan, "plan"}, // marker with no body
		{"free-form prompt", "generic"},
		{"", "generic"},
		{"  " + TaskPlan + "\nindented marker is not a marker", "generic"},
	}
	for _, c := range cases {
		if got := CallClass(Request{Prompt: c.prompt}); got != c.want {
			t.Errorf("CallClass(%q) = %q, want %q", c.prompt, got, c.want)
		}
	}
}

// TestCachePurge: Purge empties residency but preserves counters, and the
// next lookup is a genuine miss.
func TestCachePurge(t *testing.T) {
	inner := &Scripted{Responses: []Response{{Text: "a"}, {Text: "b"}}}
	c := NewCache(inner)
	ctx := context.Background()
	req := Request{Prompt: "q"}
	if _, err := c.Complete(ctx, req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(ctx, req); err != nil { // hit
		t.Fatal(err)
	}
	if got := c.Stats(); got.Hits != 1 {
		t.Fatalf("stats before purge = %+v, want 1 hit", got)
	}
	if n := c.Purge(); n != 1 {
		t.Fatalf("Purge dropped %d entries, want 1", n)
	}
	if c.Len() != 0 {
		t.Fatalf("cache still holds %d entries after Purge", c.Len())
	}
	resp, err := c.Complete(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "b" {
		t.Fatalf("post-purge answer %q, want a fresh backend response", resp.Text)
	}
	if got := c.Stats(); got.Hits != 1 || got.Misses != 2 {
		t.Errorf("stats after purge = %+v; purge must keep counters and miss afresh", got)
	}
}

// countingWrap is a stand-in resilience layer that counts traversals and
// exposes Inner so StatsOf keeps walking the chain.
type countingWrap struct {
	inner Client
	mu    sync.Mutex
	calls int
}

func (w *countingWrap) Complete(ctx context.Context, req Request) (Response, error) {
	w.mu.Lock()
	w.calls++
	w.mu.Unlock()
	return w.inner.Complete(ctx, req)
}
func (w *countingWrap) Name() string  { return w.inner.Name() }
func (w *countingWrap) Inner() Client { return w.inner }

// TestStackResilienceOrder: WithResilience sits below the cache — a hit
// never traverses the resilience layer (cached answers keep serving
// through an outage) — and above the batcher, and StatsOf still finds the
// stack through an outer Meter.
func TestStackResilienceOrder(t *testing.T) {
	var wrap *countingWrap
	stack := NewStack(&Scripted{Responses: []Response{{Text: "ok"}}},
		WithResilience(func(inner Client) Client {
			wrap = &countingWrap{inner: inner}
			return wrap
		}))
	if wrap == nil {
		t.Fatal("WithResilience wrapper was never installed")
	}
	meter := NewMeter(stack)
	ctx := context.Background()
	req := Request{Prompt: "same question"}
	for i := 0; i < 3; i++ {
		if _, err := meter.Complete(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	wrap.mu.Lock()
	calls := wrap.calls
	wrap.mu.Unlock()
	if calls != 1 {
		t.Errorf("resilience layer saw %d calls for 1 miss + 2 hits, want 1 (hits must bypass it)", calls)
	}
	st, ok := StatsOf(meter)
	if !ok {
		t.Fatal("StatsOf failed to walk Meter → Stack")
	}
	if st.Cache.Hits != 2 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %+v, want 2 hits / 1 miss", st.Cache)
	}
}
