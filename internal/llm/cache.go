package llm

import (
	"compress/gzip"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"os"
	"sync"
)

// This file implements the content-addressed response cache, the first
// layer of the LLM call middleware. Per-document semantic operators issue
// the same prompt whenever the same document flows through the same plan
// node — across retries, repeated queries, and conversation follow-ups —
// so memoizing on (model, request) content removes the dominant cost of
// re-execution (UQE §4; "Accurate and Efficient Document Analytics with
// LLMs" makes the same observation).

// Key is the content address of one completion call: a SHA-256 over the
// model identity and every request field that affects the completion.
func Key(model string, req Request) string {
	h := sha256.New()
	var buf [8]byte
	writePart := func(s string) {
		binary.BigEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writePart(model)
	writePart(req.System)
	writePart(req.Prompt)
	binary.BigEndian.PutUint64(buf[:], uint64(req.MaxTokens))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(req.Temperature))
	h.Write(buf[:])
	return string(h.Sum(nil))
}

// keyCtx threads a computed content key to inner middleware layers so a
// request's prompt is hashed once per traversal, not once per layer.
type keyCtx struct{}

// withKey stashes a computed key for downstream layers.
func withKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, keyCtx{}, key)
}

// keyOf returns the key an outer layer already computed, or derives it.
func keyOf(ctx context.Context, model string, req Request) string {
	if k, ok := ctx.Value(keyCtx{}).(string); ok {
		return k
	}
	return Key(model, req)
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	// Hits and Misses count lookups.
	Hits, Misses int64
	// Evictions counts entries dropped by the LRU policy.
	Evictions int64
	// Entries is the current resident entry count.
	Entries int
	// Saved accumulates the usage the cached responses cost when first
	// computed — i.e. the spend avoided by serving them from cache.
	Saved Usage
}

// Sub returns the stats accumulated since prev.
func (s CacheStats) Sub(prev CacheStats) CacheStats {
	return CacheStats{
		Hits:      s.Hits - prev.Hits,
		Misses:    s.Misses - prev.Misses,
		Evictions: s.Evictions - prev.Evictions,
		Entries:   s.Entries,
		Saved: Usage{
			Calls:            s.Saved.Calls - prev.Saved.Calls,
			PromptTokens:     s.Saved.PromptTokens - prev.Saved.PromptTokens,
			CompletionTokens: s.Saved.CompletionTokens - prev.Saved.CompletionTokens,
		},
	}
}

// Cache is a content-addressed LRU response cache wrapped around a Client.
// Successful completions (including deterministic refusals) are cached;
// errors are not. Cache hits return the stored response with FromCache set
// and zero Usage, so an outer Meter keeps reporting true upstream spend;
// the avoided spend accumulates in CacheStats.Saved.
type Cache struct {
	inner Client

	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element
	stats   CacheStats
}

type cacheEntry struct {
	key  string
	resp Response
}

// CacheOption configures a Cache.
type CacheOption func(*Cache)

// WithCapacity bounds the number of resident entries (default 4096).
func WithCapacity(n int) CacheOption {
	return func(c *Cache) {
		if n > 0 {
			c.cap = n
		}
	}
}

// NewCache wraps inner with a content-addressed LRU response cache.
func NewCache(inner Client, opts ...CacheOption) *Cache {
	c := &Cache{
		inner:   inner,
		cap:     4096,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Complete serves the request from cache when possible, otherwise forwards
// to the wrapped client and memoizes the result.
func (c *Cache) Complete(ctx context.Context, req Request) (Response, error) {
	key := Key(c.inner.Name(), req)

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		entry := el.Value.(*cacheEntry)
		c.stats.Hits++
		c.stats.Saved.Add(entry.resp.Usage)
		resp := entry.resp
		c.mu.Unlock()
		resp.Usage = Usage{}
		resp.FromCache = true
		return resp, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	resp, err := c.inner.Complete(withKey(ctx, key), req)
	if err != nil {
		return resp, err
	}
	if resp.Usage == (Usage{}) {
		// A singleflight-follower copy: zero usage. The leader's own
		// traversal caches the fully-accounted response; memoizing this
		// one would permanently under-report CacheStats.Saved.
		return resp, nil
	}
	c.put(key, resp)
	return resp, nil
}

// put inserts a response, evicting from the LRU tail when over capacity.
func (c *Cache) put(key string, resp Response) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		// A concurrent miss already stored this key (e.g. two different
		// wrappers racing); refresh recency and keep the existing value.
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: key, resp: resp})
	c.entries[key] = el
	for len(c.entries) > c.cap {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Name identifies the wrapped model.
func (c *Cache) Name() string { return c.inner.Name() }

// Inner returns the wrapped client.
func (c *Cache) Inner() Client { return c.inner }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	return s
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every resident entry, returning how many were dropped —
// the "kill the cache mid-run" chaos hook. Hit/miss/eviction counters
// survive (a purge is an operational event, not a stats reset), so
// hit-rate deltas around a purge remain meaningful.
func (c *Cache) Purge() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.entries)
	c.order.Init()
	c.entries = make(map[string]*list.Element)
	return n
}

// persistedCache is the on-disk representation (keys in LRU order, most
// recent first), serialized like the index store: gzip over gob.
type persistedCache struct {
	Keys      []string
	Responses []Response
}

// Save writes the cache contents to path so a later process can warm-start
// (the disk sibling of index/persist.go). Stats are not persisted.
func (c *Cache) Save(path string) error {
	c.mu.Lock()
	snap := persistedCache{
		Keys:      make([]string, 0, len(c.entries)),
		Responses: make([]Response, 0, len(c.entries)),
	}
	for el := c.order.Front(); el != nil; el = el.Next() {
		entry := el.Value.(*cacheEntry)
		snap.Keys = append(snap.Keys, entry.key)
		snap.Responses = append(snap.Responses, entry.resp)
	}
	c.mu.Unlock()

	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("llm: cache save: %w", err)
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	if err := gob.NewEncoder(zw).Encode(snap); err != nil {
		return fmt.Errorf("llm: cache save encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("llm: cache save flush: %w", err)
	}
	return f.Close()
}

// Load merges persisted entries into the cache (existing keys keep their
// resident value). Loading counts toward capacity and may evict.
func (c *Cache) Load(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("llm: cache load: %w", err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("llm: cache load: %w", err)
	}
	defer zr.Close()
	var snap persistedCache
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return fmt.Errorf("llm: cache load decode: %w", err)
	}
	if len(snap.Keys) != len(snap.Responses) {
		return fmt.Errorf("llm: cache load: corrupt snapshot (%d keys, %d responses)", len(snap.Keys), len(snap.Responses))
	}
	// Insert least-recent first so the persisted MRU order survives.
	for i := len(snap.Keys) - 1; i >= 0; i-- {
		c.put(snap.Keys[i], snap.Responses[i])
	}
	return nil
}

var _ Client = (*Cache)(nil)
