package llm

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// batchCountingClient adds a recording CompleteBatch to countingClient.
type batchCountingClient struct {
	countingClient
	mu         sync.Mutex
	batchSizes []int
}

func (c *batchCountingClient) CompleteBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	c.mu.Lock()
	c.batchSizes = append(c.batchSizes, len(reqs))
	c.mu.Unlock()
	resps := make([]Response, len(reqs))
	for i, r := range reqs {
		resp, err := c.countingClient.Complete(ctx, r)
		if err != nil {
			return nil, err
		}
		if i > 0 {
			resp.Usage.Calls = 0
		}
		resps[i] = resp
	}
	return resps, nil
}

func (c *batchCountingClient) sizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.batchSizes...)
}

// occupy keeps one slow request in flight so subsequent callers see
// concurrency and coalesce instead of taking the sole-caller fast path.
func occupy(t *testing.T, b *Batcher, delay time.Duration) (release func()) {
	t.Helper()
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		if _, err := b.Complete(context.Background(), Request{Prompt: "occupier"}); err != nil {
			t.Error(err)
		}
	}()
	<-started
	time.Sleep(delay)
	return func() { <-done }
}

func TestBatcherFlushOnSize(t *testing.T) {
	inner := &batchCountingClient{countingClient: countingClient{delay: 150 * time.Millisecond}}
	// Linger far beyond the test horizon: only a size flush can deliver.
	b := NewBatcher(inner, WithMaxBatch(4), WithLinger(time.Hour))
	release := occupy(t, b, 30*time.Millisecond)

	var wg sync.WaitGroup
	texts := make([]string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := b.Complete(context.Background(), Request{Prompt: fmt.Sprintf("req%d", i)})
			if err != nil {
				t.Error(err)
				return
			}
			texts[i] = resp.Text
		}(i)
	}
	wg.Wait()
	release()

	for i, text := range texts {
		if want := fmt.Sprintf("echo:req%d", i); text != want {
			t.Errorf("request %d got %q, want %q (fan-back misrouted)", i, text, want)
		}
	}
	found := false
	for _, s := range inner.sizes() {
		if s == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("upstream batch sizes %v, want one batch of 4", inner.sizes())
	}
	if st := b.Stats(); st.SizeFlushes != 1 {
		t.Errorf("size flushes = %d, want 1", st.SizeFlushes)
	}
}

func TestBatcherFlushOnLinger(t *testing.T) {
	inner := &batchCountingClient{countingClient: countingClient{delay: 150 * time.Millisecond}}
	b := NewBatcher(inner, WithMaxBatch(8), WithLinger(30*time.Millisecond))
	release := occupy(t, b, 30*time.Millisecond)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := b.Complete(context.Background(), Request{Prompt: fmt.Sprintf("linger%d", i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	release()

	// The pair is under the size bound, so only the linger timer flushed it.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("under-full batch returned in %v, before the linger window", elapsed)
	}
	if st := b.Stats(); st.LingerFlushes < 1 {
		t.Errorf("linger flushes = %d, want >= 1", st.LingerFlushes)
	}
	found := false
	for _, s := range inner.sizes() {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("upstream batch sizes %v, want one batch of 2", inner.sizes())
	}
}

func TestBatcherSoleCallerSkipsLinger(t *testing.T) {
	inner := &batchCountingClient{}
	b := NewBatcher(inner, WithMaxBatch(8), WithLinger(time.Hour))
	start := time.Now()
	resp, err := b.Complete(context.Background(), Request{Prompt: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text != "echo:solo" {
		t.Errorf("got %q", resp.Text)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("sole caller waited %v — must dispatch immediately", elapsed)
	}
	if st := b.Stats(); st.Batches != 1 || st.Requests != 1 {
		t.Errorf("stats = %+v, want one batch of one request", st)
	}
}

func TestBatcherFallbackWithoutBatchClient(t *testing.T) {
	inner := &countingClient{delay: 100 * time.Millisecond} // no CompleteBatch
	b := NewBatcher(inner, WithMaxBatch(4), WithLinger(time.Hour))
	release := occupy(t, b, 20*time.Millisecond)

	var wg sync.WaitGroup
	texts := make([]string, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := b.Complete(context.Background(), Request{Prompt: fmt.Sprintf("fb%d", i)})
			if err != nil {
				t.Error(err)
				return
			}
			texts[i] = resp.Text
		}(i)
	}
	wg.Wait()
	release()
	for i, text := range texts {
		if want := fmt.Sprintf("echo:fb%d", i); text != want {
			t.Errorf("request %d got %q, want %q", i, text, want)
		}
	}
}

func TestBatcherDisabledPassthrough(t *testing.T) {
	inner := &batchCountingClient{}
	b := NewBatcher(inner, WithMaxBatch(1))
	if _, err := b.Complete(context.Background(), Request{Prompt: "direct"}); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Batches != 0 {
		t.Errorf("passthrough must not batch, stats = %+v", st)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("upstream called %d times, want 1", got)
	}
}

func TestSimCompleteBatchMatchesSolo(t *testing.T) {
	sim := NewSim(7)
	reqs := []Request{
		{Prompt: TaskFilter + "\nQuestion: engine problems?\nDocument:\nengine failure on approach"},
		{Prompt: "tell me about airplanes"},
		{Prompt: TaskSummarize + "\nInstruction: summarize\n- item one\n- item two"},
	}
	batched, err := sim.CompleteBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for i, req := range reqs {
		solo, err := NewSim(7).Complete(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if batched[i].Text != solo.Text {
			t.Errorf("request %d: batched %q != solo %q", i, batched[i].Text, solo.Text)
		}
		calls += batched[i].Usage.Calls
	}
	if calls != 1 {
		t.Errorf("batch accounted %d calls, want 1 (grouped dispatch)", calls)
	}
}

// faultyBatchClient fails every grouped dispatch but serves per-request
// calls, modelling a batch poisoned by one transient fault.
type faultyBatchClient struct {
	countingClient
	batchCalls atomic.Int64
}

func (c *faultyBatchClient) CompleteBatch(ctx context.Context, reqs []Request) ([]Response, error) {
	c.batchCalls.Add(1)
	return nil, ErrTransient
}

func TestBatcherDegradesToSinglesOnBatchError(t *testing.T) {
	inner := &faultyBatchClient{countingClient: countingClient{delay: 50 * time.Millisecond}}
	b := NewBatcher(inner, WithMaxBatch(4), WithLinger(time.Hour))
	release := occupy(t, b, 20*time.Millisecond)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := b.Complete(context.Background(), Request{Prompt: fmt.Sprintf("d%d", i)})
			if err != nil {
				t.Errorf("request %d failed with its whole cohort: %v", i, err)
				return
			}
			if want := fmt.Sprintf("echo:d%d", i); resp.Text != want {
				t.Errorf("request %d got %q, want %q", i, resp.Text, want)
			}
		}(i)
	}
	wg.Wait()
	release()
	if got := inner.batchCalls.Load(); got < 1 {
		t.Fatal("grouped dispatch was never attempted")
	}
}
