package llm

import (
	"context"
	"errors"
	"sync"
)

// This file implements singleflight deduplication, the second layer of the
// LLM call middleware. DocSet map stages run with worker parallelism, so
// the same prompt is routinely in flight on several workers at once (e.g.
// duplicate accident reports in the NTSB corpus, or a fan-out query re-
// extracting the same chunk). Collapsing those into one upstream call is
// free latency and cost: followers wait on the leader's result instead of
// re-issuing it.

// FlightStats is a snapshot of deduplication counters.
type FlightStats struct {
	// Leads counts calls that actually went upstream.
	Leads int64
	// Shared counts calls that piggybacked on an in-flight leader.
	Shared int64
}

// Sub returns the stats accumulated since prev.
func (s FlightStats) Sub(prev FlightStats) FlightStats {
	return FlightStats{Leads: s.Leads - prev.Leads, Shared: s.Shared - prev.Shared}
}

// flightCall is one in-flight upstream completion.
type flightCall struct {
	done chan struct{}
	resp Response
	err  error
}

// Flight wraps a Client with singleflight deduplication: concurrent
// requests with the same content address issue one upstream call and share
// the result. Follower responses carry zero Usage (the leader's response
// already accounts for the spend) and errors are shared across the flight.
type Flight struct {
	inner Client

	mu       sync.Mutex
	inflight map[string]*flightCall
	stats    FlightStats
}

// NewFlight wraps inner with singleflight deduplication.
func NewFlight(inner Client) *Flight {
	return &Flight{inner: inner, inflight: make(map[string]*flightCall)}
}

// Complete issues the request upstream, or waits on an identical in-flight
// request and shares its result. A follower whose leader died of the
// leader's own context cancellation retries (becoming leader itself)
// rather than inheriting a cancellation that isn't its own.
func (f *Flight) Complete(ctx context.Context, req Request) (Response, error) {
	key := keyOf(ctx, f.inner.Name(), req)

	for {
		f.mu.Lock()
		call, ok := f.inflight[key]
		if !ok {
			call = &flightCall{done: make(chan struct{})}
			f.inflight[key] = call
			f.stats.Leads++
			f.mu.Unlock()

			call.resp, call.err = f.inner.Complete(ctx, req)
			f.mu.Lock()
			delete(f.inflight, key)
			f.mu.Unlock()
			close(call.done)
			return call.resp, call.err
		}
		f.stats.Shared++
		f.mu.Unlock()
		select {
		case <-call.done:
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
		if call.err == nil {
			resp := call.resp
			resp.Usage = Usage{}
			return resp, nil
		}
		if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
			if err := ctx.Err(); err != nil {
				return Response{}, err
			}
			// The leader's context died, not ours: re-issue.
			continue
		}
		return Response{}, call.err
	}
}

// Name identifies the wrapped model.
func (f *Flight) Name() string { return f.inner.Name() }

// Inner returns the wrapped client.
func (f *Flight) Inner() Client { return f.inner }

// Stats returns a snapshot of the deduplication counters.
func (f *Flight) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

var _ Client = (*Flight)(nil)
