package llm

import (
	"context"
	"strings"
	"testing"
)

func ragComplete(t *testing.T, question string, chunks []RAGChunk) Response {
	t.Helper()
	sim := NewSim(1)
	resp, err := sim.Complete(context.Background(), Request{Prompt: RAGPrompt(question, chunks)})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAnswerSkillBreakdownByState(t *testing.T) {
	chunks := []RAGChunk{
		{DocID: "A1", Text: "The accident occurred near Fresno, California during landing."},
		{DocID: "B2", Text: "The accident occurred near Mesa, Arizona during takeoff."},
		{DocID: "C3", Text: "The accident occurred near Redding, California in cruise."},
	}
	resp := ragComplete(t, "How many incidents were there by state?", chunks)
	ans := answerLine(resp.Text)
	if !strings.Contains(ans, "CA=2") || !strings.Contains(ans, "AZ=1") {
		t.Errorf("breakdown answer = %q", ans)
	}
}

func TestAnswerSkillBreakdownNoKeys(t *testing.T) {
	chunks := []RAGChunk{{DocID: "A1", Text: "no location words here"}}
	resp := ragComplete(t, "How many incidents were there by state?", chunks)
	if answerLine(resp.Text) != "unknown" {
		t.Errorf("keyless breakdown should be unknown: %q", answerLine(resp.Text))
	}
}

func TestAnswerSkillFraction(t *testing.T) {
	chunks := []RAGChunk{
		{DocID: "A1", Text: "The airplane sustained substantial damage."},
		{DocID: "B2", Text: "The airplane landed without damage or incident."},
	}
	resp := ragComplete(t, "What fraction of incidents involved substantial damage?", chunks)
	ans := answerLine(resp.Text)
	if ans == "" || ans == "unknown" {
		t.Errorf("fraction answer = %q (%s)", ans, resp.Text)
	}
}

func TestAnswerSkillMostCommon(t *testing.T) {
	chunks := []RAGChunk{
		{DocID: "A1", Text: "resulting in substantial damage to the left wing."},
		{DocID: "B2", Text: "resulting in substantial damage to the left wing."},
		{DocID: "C3", Text: "resulting in substantial damage to the fuselage."},
	}
	resp := ragComplete(t, "What was the most commonly damaged part?", chunks)
	if got := answerLine(resp.Text); got != "left wing" {
		t.Errorf("most common = %q", got)
	}
	// No extractable parts -> unknown.
	resp2 := ragComplete(t, "What was the most commonly damaged part?", []RAGChunk{{DocID: "X", Text: "nothing here"}})
	if got := answerLine(resp2.Text); got != "unknown" {
		t.Errorf("no parts should be unknown: %q", got)
	}
}

func TestAnswerSkillLookup(t *testing.T) {
	chunks := []RAGChunk{
		{DocID: "A1", Text: "The registration of the accident airplane was N220SW."},
	}
	resp := ragComplete(t, "What was the registration of the accident airplane?", chunks)
	if !strings.Contains(resp.Text, "N220SW") {
		t.Errorf("lookup failed: %s", resp.Text)
	}
	// No matching sentence -> unknown.
	resp2 := ragComplete(t, "What was the cargo manifest?", []RAGChunk{{DocID: "X", Text: "unrelated text"}})
	if got := answerLine(resp2.Text); got != "unknown" {
		t.Errorf("unanswerable lookup = %q", got)
	}
}

func TestAnswerSkillEmptyContext(t *testing.T) {
	resp := ragComplete(t, "How many incidents were there?", nil)
	if got := answerLine(resp.Text); got != "unknown" {
		t.Errorf("empty context should be unknown: %q", got)
	}
}

func TestCoerceTypes(t *testing.T) {
	if v := coerce("3 Serious", "int", "", nil); v != 3 {
		t.Errorf("int coercion = %v", v)
	}
	if v := coerce("two", "int", "", nil); v != 2 {
		t.Errorf("word number = %v", v)
	}
	if v := coerce("no numbers", "int", "", nil); v != nil {
		t.Errorf("unparseable int = %v", v)
	}
	if v := coerce("15.8C", "float", "", nil); v != 15.8 {
		t.Errorf("float coercion = %v", v)
	}
	if v := coerce("junk", "float", "", nil); v != nil {
		t.Errorf("unparseable float = %v", v)
	}
	if v := coerce("Yes, definitely", "bool", "", nil); v != true {
		t.Errorf("yes -> true, got %v", v)
	}
	if v := coerce("No", "bool", "", nil); v != false {
		t.Errorf("no -> false, got %v", v)
	}
	if v := coerce("", "string", "", nil); v != nil {
		t.Errorf("empty -> nil, got %v", v)
	}
	if v := coerce("as-is", "string", "", nil); v != "as-is" {
		t.Errorf("string passthrough = %v", v)
	}
}

func TestWordToNumber(t *testing.T) {
	cases := map[string]any{
		"zero": 0, "one": 1, "single": 1, "two": 2, "twin": 2,
		"three": 3, "four": 4, "2": 2,
	}
	for in, want := range cases {
		if got := wordToNumber(in); got != want {
			t.Errorf("wordToNumber(%q) = %v, want %v", in, got, want)
		}
	}
	if wordToNumber("eleven") != nil {
		t.Error("unknown word should be nil")
	}
}

func TestUsageTotalAndClamp(t *testing.T) {
	u := Usage{PromptTokens: 10, CompletionTokens: 5}
	if u.Total() != 15 {
		t.Errorf("Total = %d", u.Total())
	}
	if clamp01(-1) != 0 || clamp01(2) != 1 || clamp01(0.5) != 0.5 {
		t.Error("clamp01 broken")
	}
}

func TestSimOptionSetters(t *testing.T) {
	s := NewSim(1,
		WithFilterLeniency(0.5),
		WithRefusalRatio(0.3),
		WithName("custom-model"),
	)
	if s.filterLeniency != 0.5 || s.refusalRatio != 0.3 {
		t.Error("options not applied")
	}
	if s.Name() != "custom-model" {
		t.Errorf("Name = %q", s.Name())
	}
	m := NewMeter(s)
	if m.Name() != "custom-model" {
		t.Error("meter should proxy name")
	}
	var sc Scripted
	if sc.Name() != "scripted" {
		t.Error("scripted name")
	}
}

func TestStripNegatedRows(t *testing.T) {
	doc := "| Aircraft Fire | None |\n| Aircraft Damage | Substantial |\nGround Injuries: N/A\nNarrative line about fire damage."
	out := stripNegatedRows(doc)
	if strings.Contains(out, "Aircraft Fire") {
		t.Error("negated table row should be removed")
	}
	if strings.Contains(out, "Ground Injuries") {
		t.Error("negated KV line should be removed")
	}
	if !strings.Contains(out, "Substantial") || !strings.Contains(out, "Narrative line") {
		t.Error("positive content must remain")
	}
}
