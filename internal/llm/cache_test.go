package llm

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingClient is a middleware test double: deterministic responses,
// atomic upstream-call counting, optional per-call delay.
type countingClient struct {
	calls atomic.Int64
	delay time.Duration
	err   error
}

func (c *countingClient) Complete(ctx context.Context, req Request) (Response, error) {
	c.calls.Add(1)
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return Response{}, ctx.Err()
		}
	}
	if c.err != nil {
		return Response{}, c.err
	}
	return Response{
		Text:  "echo:" + req.Prompt,
		Usage: Usage{Calls: 1, PromptTokens: CountTokens(req.Prompt), CompletionTokens: 2},
	}, nil
}

func (c *countingClient) Name() string { return "counting" }

func TestCacheKeyDiscriminates(t *testing.T) {
	base := Request{System: "s", Prompt: "p", MaxTokens: 10, Temperature: 0.5}
	same := Key("m", base)
	variants := []Request{
		{System: "s2", Prompt: "p", MaxTokens: 10, Temperature: 0.5},
		{System: "s", Prompt: "p2", MaxTokens: 10, Temperature: 0.5},
		{System: "s", Prompt: "p", MaxTokens: 11, Temperature: 0.5},
		{System: "s", Prompt: "p", MaxTokens: 10, Temperature: 0.6},
	}
	for i, v := range variants {
		if Key("m", v) == same {
			t.Errorf("variant %d collided with base key", i)
		}
	}
	if Key("other-model", base) == same {
		t.Error("different model collided with base key")
	}
	if Key("m", base) != same {
		t.Error("identical request produced different keys")
	}
	// Field-boundary ambiguity: ("ab","c") must differ from ("a","bc").
	if Key("m", Request{System: "ab", Prompt: "c"}) == Key("m", Request{System: "a", Prompt: "bc"}) {
		t.Error("system/prompt boundary is ambiguous in the key")
	}
}

func TestCacheHitMiss(t *testing.T) {
	inner := &countingClient{}
	cache := NewCache(inner)
	ctx := context.Background()

	first, err := cache.Complete(ctx, Request{Prompt: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Error("first call must miss")
	}
	second, err := cache.Complete(ctx, Request{Prompt: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Error("second identical call must hit")
	}
	if second.Text != first.Text {
		t.Errorf("cached text %q != original %q", second.Text, first.Text)
	}
	if second.Usage != (Usage{}) {
		t.Errorf("cache hit must carry zero usage, got %+v", second.Usage)
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("upstream called %d times, want 1", got)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	if st.Saved.Total() != first.Usage.Total() {
		t.Errorf("saved %d tokens, want %d", st.Saved.Total(), first.Usage.Total())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	inner := &countingClient{}
	cache := NewCache(inner, WithCapacity(2))
	ctx := context.Background()

	for _, p := range []string{"a", "b"} {
		if _, err := cache.Complete(ctx, Request{Prompt: p}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" becomes the LRU victim.
	if resp, _ := cache.Complete(ctx, Request{Prompt: "a"}); !resp.FromCache {
		t.Fatal("expected hit on a")
	}
	if _, err := cache.Complete(ctx, Request{Prompt: "c"}); err != nil {
		t.Fatal(err)
	}
	// Check the survivor first: a miss-check re-inserts its key and would
	// evict the survivor before we looked at it.
	if resp, _ := cache.Complete(ctx, Request{Prompt: "a"}); !resp.FromCache {
		t.Error("a should have survived eviction")
	}
	if resp, _ := cache.Complete(ctx, Request{Prompt: "b"}); resp.FromCache {
		t.Error("b should have been evicted")
	}
	if st := cache.Stats(); st.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", st.Evictions)
	}
	if cache.Len() != 2 {
		t.Errorf("resident entries = %d, want 2", cache.Len())
	}
}

func TestCacheDoesNotStoreErrors(t *testing.T) {
	inner := &countingClient{err: ErrTransient}
	cache := NewCache(inner)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := cache.Complete(ctx, Request{Prompt: "x"}); err == nil {
			t.Fatal("expected error")
		}
	}
	if got := inner.calls.Load(); got != 2 {
		t.Errorf("upstream called %d times, want 2 (errors must not be cached)", got)
	}
}

func TestCachePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "llm-cache.gob.gz")
	inner := &countingClient{}
	cache := NewCache(inner)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := cache.Complete(ctx, Request{Prompt: fmt.Sprintf("p%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cache.Save(path); err != nil {
		t.Fatal(err)
	}

	inner2 := &countingClient{}
	warm := NewCache(inner2)
	if err := warm.Load(path); err != nil {
		t.Fatal(err)
	}
	if warm.Len() != 5 {
		t.Fatalf("loaded %d entries, want 5", warm.Len())
	}
	resp, err := warm.Complete(ctx, Request{Prompt: "p3"})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.FromCache {
		t.Error("warm-started cache should hit on persisted entry")
	}
	if got := inner2.calls.Load(); got != 0 {
		t.Errorf("upstream called %d times on a warm hit, want 0", got)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	inner := &countingClient{}
	cache := NewCache(inner, WithCapacity(8))
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				// 16 distinct prompts over capacity 8: constant churn.
				if _, err := cache.Complete(ctx, Request{Prompt: fmt.Sprintf("p%d", (w+i)%16)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Hits+st.Misses != 16*50 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 16*50)
	}
	if cache.Len() > 8 {
		t.Errorf("resident entries = %d, want <= 8", cache.Len())
	}
}
