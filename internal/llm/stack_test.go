package llm

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStackCacheShortCircuitsAllLayers(t *testing.T) {
	inner := &batchCountingClient{}
	stack := NewStack(inner)
	meter := NewMeter(stack)
	ctx := context.Background()

	req := Request{Prompt: "repeated workload"}
	if _, err := meter.Complete(ctx, req); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		resp, err := meter.Complete(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.FromCache {
			t.Fatalf("repeat %d missed the cache", i)
		}
	}
	if got := inner.calls.Load(); got != 1 {
		t.Errorf("upstream called %d times for 11 identical requests, want 1", got)
	}
	if u := meter.Usage(); u.Calls != 1 {
		t.Errorf("metered %d calls, want 1 (hits are free)", u.Calls)
	}
	st := stack.StackStats()
	if st.Cache.Hits != 10 || st.Cache.Misses != 1 {
		t.Errorf("cache stats = %d hits / %d misses, want 10/1", st.Cache.Hits, st.Cache.Misses)
	}
}

func TestStackConcurrentMixedWorkload(t *testing.T) {
	inner := &batchCountingClient{countingClient: countingClient{delay: 2 * time.Millisecond}}
	stack := NewStack(inner, WithBatching(8, 5*time.Millisecond))
	meter := NewMeter(stack)
	ctx := context.Background()

	// 8 workers × 40 requests over 20 distinct prompts: heavy overlap both
	// concurrently (singleflight) and over time (cache).
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				req := Request{Prompt: fmt.Sprintf("prompt-%d", (w*7+i)%20)}
				resp, err := meter.Complete(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				if want := "echo:" + req.Prompt; resp.Text != want {
					t.Errorf("got %q, want %q", resp.Text, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// 20 distinct prompts → at most 20 upstream completions, no matter how
	// the 320 requests interleaved.
	if got := inner.calls.Load(); got > 20 {
		t.Errorf("upstream completed %d distinct calls, want <= 20", got)
	}
	st := stack.StackStats()
	if st.Cache.Hits+st.Flight.Shared < 300 {
		t.Errorf("only %d of 300 duplicate requests were deduplicated (%s)",
			st.Cache.Hits+st.Flight.Shared, st)
	}
}

func TestStackStatsDiscoveryThroughMeter(t *testing.T) {
	stack := NewStack(&countingClient{})
	meter := NewMeter(stack)
	if _, err := meter.Complete(context.Background(), Request{Prompt: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := meter.Complete(context.Background(), Request{Prompt: "x"}); err != nil {
		t.Fatal(err)
	}
	st, ok := StatsOf(meter)
	if !ok {
		t.Fatal("StatsOf failed to find the stack behind the meter")
	}
	if st.Cache.Hits != 1 {
		t.Errorf("discovered stats report %d hits, want 1", st.Cache.Hits)
	}
	if _, ok := StatsOf(&countingClient{}); ok {
		t.Error("StatsOf found stats on a bare client")
	}
}

func TestStackLayerToggles(t *testing.T) {
	bare := NewStack(&countingClient{}, WithoutCache(), WithoutSingleflight(), WithBatching(1, 0))
	if bare.CacheLayer() != nil {
		t.Error("cache layer present despite WithoutCache")
	}
	if _, err := bare.Complete(context.Background(), Request{Prompt: "p"}); err != nil {
		t.Fatal(err)
	}
	if st := bare.StackStats(); st.Cache.Misses != 0 || st.Flight.Leads != 0 || st.Batch.Requests != 0 {
		t.Errorf("disabled layers recorded activity: %+v", st)
	}
	if err := bare.SaveCache("/nonexistent/dir/file"); err != nil {
		t.Errorf("SaveCache on cacheless stack must be a no-op, got %v", err)
	}
}

func TestStackDeterminismWithSim(t *testing.T) {
	// The middleware must be behaviour-preserving: a stacked Sim and a bare
	// Sim answer identically, and batched/unbatched runs match.
	prompts := []string{
		TaskFilter + "\nQuestion: weather related?\nDocument:\nheavy crosswind during landing",
		TaskSummarize + "\nInstruction: key causes\n- engine\n- fuel",
		"free form question about aviation",
	}
	stacked := NewStack(NewSim(42), WithBatching(4, time.Millisecond))
	for _, p := range prompts {
		want, err := NewSim(42).Complete(context.Background(), Request{Prompt: p})
		if err != nil {
			t.Fatal(err)
		}
		got, err := stacked.Complete(context.Background(), Request{Prompt: p})
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != want.Text {
			t.Errorf("stacked sim diverged on %q: %q != %q", p[:20], got.Text, want.Text)
		}
	}
}

func TestStackStatsString(t *testing.T) {
	var empty StackStats
	if s := empty.String(); s != "no middleware activity" {
		t.Errorf("empty stats rendered %q", s)
	}
	busy := StackStats{
		Cache:  CacheStats{Hits: 3, Misses: 1, Saved: Usage{PromptTokens: 90, CompletionTokens: 10}},
		Flight: FlightStats{Leads: 1, Shared: 2},
		Batch:  BatchStats{Batches: 2, Requests: 9, MaxSize: 5},
	}
	s := busy.String()
	for _, want := range []string{"cache 3/4 hits", "100 tokens saved", "singleflight 2 shared", "9 requests in 2 batches (max 5)"} {
		if !strings.Contains(s, want) {
			t.Errorf("stats string %q missing %q", s, want)
		}
	}
}
