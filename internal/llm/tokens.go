package llm

import (
	"strings"
	"unicode"
)

// Tokenize splits text into lower-cased word tokens (letters/digits runs).
// It is the shared lexical unit for token counting, BM25 indexing, and the
// Sim's text analysis, so context-window math is consistent system-wide.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			cur.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// CountTokens approximates the model tokenizer: one token per word plus a
// small overhead for punctuation-heavy text (~4 chars/token floor, like BPE
// on prose).
func CountTokens(text string) int {
	words := len(Tokenize(text))
	byLen := len(text) / 6
	if byLen > words {
		return byLen
	}
	return words
}

// TruncateTokens returns the prefix of text containing at most n tokens.
// This models hard context-window truncation: everything beyond the window
// is invisible to the model.
func TruncateTokens(text string, n int) string {
	if n <= 0 {
		return ""
	}
	count := 0
	inWord := false
	for i, r := range text {
		isWord := unicode.IsLetter(r) || unicode.IsDigit(r)
		if isWord && !inWord {
			count++
			if count > n {
				return text[:i]
			}
		}
		inWord = isWord
	}
	return text
}
