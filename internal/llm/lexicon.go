package llm

import "strings"

// This file is the Sim's "world knowledge": the lexical associations a
// pretrained model brings to a task. It is intentionally generic (not tuned
// to any benchmark question) — domain synonym sets plus US geography.

// stopwords excluded from predicate/content matching.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "by": true, "did": true, "do": true, "does": true, "for": true,
	"from": true, "had": true, "has": true, "have": true, "in": true,
	"indicate": true, "involve": true, "involved": true, "involving": true,
	"is": true, "it": true, "its": true, "of": true, "on": true, "or": true,
	"that": true, "the": true, "their": true, "there": true, "this": true,
	"to": true, "was": true, "were": true, "with": true, "due": true,
	"document": true, "report": true, "incident": true, "incidents": true,
	"accident": true, "aircraft": true, "any": true, "occur": true,
	"occurred": true, "following": true, "mention": true, "describe": true,
	"describes": true, "which": true, "what": true, "how": true, "many": true,
	"who": true, "where": true, "when": true, "all": true, "into": true,
}

// IsStopword reports whether tok carries no content for matching purposes.
func IsStopword(tok string) bool { return stopwords[tok] }

// synonyms expands a content token into related surface forms. Mirrors the
// associative recall of a language model; deliberately recall-biased, which
// is what makes llmFilter "occasionally too generous" (§7.2).
var synonyms = map[string][]string{
	"engine":      {"powerplant", "cylinder", "carburetor", "crankshaft", "rpm", "engines", "turbine"},
	"engines":     {"engine", "powerplant"},
	"bird":        {"birds", "goose", "geese", "avian", "flock", "waterfowl"},
	"birds":       {"bird", "goose", "geese", "avian", "flock", "waterfowl"},
	"weather":     {"wind", "gust", "icing", "fog", "thunderstorm", "turbulence", "crosswind", "windshear"},
	"fuel":        {"gasoline", "avgas", "tank", "exhaustion", "starvation", "contamination"},
	"fire":        {"flames", "smoke", "burned", "burning", "postcrash"},
	"damage":      {"damaged", "destroyed", "substantial", "wreckage"},
	"damaged":     {"damage", "destroyed", "substantial"},
	"injury":      {"injuries", "injured", "fatal", "serious", "minor"},
	"injuries":    {"injury", "injured", "fatal", "serious", "minor"},
	"fatal":       {"fatality", "fatalities", "killed", "died"},
	"fatalities":  {"fatal", "fatality", "killed", "died"},
	"fatality":    {"fatal", "fatalities", "killed", "died"},
	"landing":     {"landed", "touchdown", "runway", "flare"},
	"takeoff":     {"departure", "departed", "liftoff", "rotation"},
	"student":     {"instructional", "trainee", "solo", "instructor"},
	"maintenance": {"mechanic", "overhaul", "inspection", "annual"},
	"water":       {"lake", "river", "ocean", "ditching", "ditched"},
	"gear":        {"landing gear", "wheel", "strut", "collapsed"},
	"wing":        {"wings", "aileron", "spar", "wingtip"},
	"propeller":   {"prop", "blade", "blades"},
	"pilot":       {"airman", "aviator", "crew"},
	"helicopter":  {"rotorcraft", "rotor"},
	"power":       {"thrust", "rpm"},
	"loss":        {"lost", "failure", "failed"},
	"failure":     {"failed", "malfunction", "loss"},
	"mountain":    {"terrain", "ridge", "canyon"},
	"night":       {"dark", "dusk"},
	"ice":         {"icing", "frost"},
	"stall":       {"stalled", "aerodynamic stall", "spin"},
	"problem":     {"problems", "failure", "malfunction", "issue", "trouble"},
	"problems":    {"problem", "failure", "malfunction", "issue", "trouble"},
}

// Expand returns tok plus its synonym set (lower-cased).
func Expand(tok string) []string {
	tok = strings.ToLower(tok)
	out := []string{tok}
	out = append(out, synonyms[tok]...)
	return out
}

// usStates maps full state names to USPS abbreviations.
var usStates = map[string]string{
	"alabama": "AL", "alaska": "AK", "arizona": "AZ", "arkansas": "AR",
	"california": "CA", "colorado": "CO", "connecticut": "CT", "delaware": "DE",
	"florida": "FL", "georgia": "GA", "hawaii": "HI", "idaho": "ID",
	"illinois": "IL", "indiana": "IN", "iowa": "IA", "kansas": "KS",
	"kentucky": "KY", "louisiana": "LA", "maine": "ME", "maryland": "MD",
	"massachusetts": "MA", "michigan": "MI", "minnesota": "MN", "mississippi": "MS",
	"missouri": "MO", "montana": "MT", "nebraska": "NE", "nevada": "NV",
	"new hampshire": "NH", "new jersey": "NJ", "new mexico": "NM", "new york": "NY",
	"north carolina": "NC", "north dakota": "ND", "ohio": "OH", "oklahoma": "OK",
	"oregon": "OR", "pennsylvania": "PA", "rhode island": "RI", "south carolina": "SC",
	"south dakota": "SD", "tennessee": "TN", "texas": "TX", "utah": "UT",
	"vermont": "VT", "virginia": "VA", "washington": "WA", "west virginia": "WV",
	"wisconsin": "WI", "wyoming": "WY",
}

// StateAbbrev resolves a state name or abbreviation to its USPS code
// ("" if unrecognized).
func StateAbbrev(s string) string {
	s = strings.TrimSpace(strings.ToLower(s))
	if ab, ok := usStates[s]; ok {
		return ab
	}
	up := strings.ToUpper(s)
	if len(up) == 2 {
		for _, ab := range usStates {
			if ab == up {
				return ab
			}
		}
	}
	return ""
}

// StateOfLocation extracts the US state from a "City, State" location
// string ("" if none found).
func StateOfLocation(loc string) string {
	parts := strings.Split(loc, ",")
	for i := len(parts) - 1; i >= 0; i-- {
		if ab := StateAbbrev(parts[i]); ab != "" {
			return ab
		}
	}
	// Fall back to scanning for any state name in the string.
	low := strings.ToLower(loc)
	for name, ab := range usStates {
		if strings.Contains(low, name) {
			return ab
		}
	}
	return ""
}

// StateName returns the title-cased full name for a USPS code ("" if
// unknown).
func StateName(abbrev string) string {
	up := strings.ToUpper(strings.TrimSpace(abbrev))
	for name, ab := range usStates {
		if ab == up {
			// Title-case each word.
			words := strings.Fields(name)
			for i, w := range words {
				words[i] = strings.ToUpper(w[:1]) + w[1:]
			}
			return strings.Join(words, " ")
		}
	}
	return ""
}

// ContentTokens tokenizes text and strips stopwords.
func ContentTokens(text string) []string {
	var out []string
	for _, t := range Tokenize(text) {
		if !IsStopword(t) {
			out = append(out, t)
		}
	}
	return out
}
