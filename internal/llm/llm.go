package llm

import (
	"context"
	"errors"
	"sync"
)

// Request is one completion call.
type Request struct {
	// System is the system prompt (task framing).
	System string
	// Prompt is the user prompt, including any stuffed context.
	Prompt string
	// MaxTokens caps the completion length (0 = model default).
	MaxTokens int
	// Temperature is accepted for API fidelity; Sim is deterministic at
	// any temperature but uses it to scale its error knobs.
	Temperature float64
}

// Response is a completion result.
type Response struct {
	// Text is the completion.
	Text string
	// Refusal marks a model refusal (e.g. context poisoning, §7.2).
	Refusal bool
	// Usage records the cost of this single call. Responses served from
	// the middleware cache carry zero Usage (nothing was spent upstream).
	Usage Usage
	// FromCache marks a response served by the middleware cache rather
	// than the backing model.
	FromCache bool
}

// Usage tracks token accounting across calls.
type Usage struct {
	Calls            int
	PromptTokens     int
	CompletionTokens int
}

// Add accumulates other into u.
func (u *Usage) Add(other Usage) {
	u.Calls += other.Calls
	u.PromptTokens += other.PromptTokens
	u.CompletionTokens += other.CompletionTokens
}

// Sub returns the delta u − prev, for before/after snapshots around a
// pipeline run (mirrors StackStats.Sub).
func (u Usage) Sub(prev Usage) Usage {
	return Usage{
		Calls:            u.Calls - prev.Calls,
		PromptTokens:     u.PromptTokens - prev.PromptTokens,
		CompletionTokens: u.CompletionTokens - prev.CompletionTokens,
	}
}

// Total returns total tokens in + out.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Client is the minimal LLM interface the rest of the system consumes.
type Client interface {
	// Complete runs one completion.
	Complete(ctx context.Context, req Request) (Response, error)
	// Name identifies the backing model (for traces and reports).
	Name() string
}

// ErrTransient marks a retryable model failure (rate limit, timeout). The
// DocSet executor retries these.
var ErrTransient = errors.New("llm: transient failure")

// ErrContextTooLong is returned when a prompt exceeds the context window
// and the model is configured to reject rather than truncate.
var ErrContextTooLong = errors.New("llm: prompt exceeds context window")

// Meter wraps a Client and accumulates usage across calls; safe for
// concurrent use.
type Meter struct {
	inner  Client
	mu     sync.Mutex
	usage  Usage
	failed Usage
}

// NewMeter wraps client with a usage accumulator.
func NewMeter(client Client) *Meter { return &Meter{inner: client} }

// Complete forwards to the wrapped client and records usage. Spend
// carried by failed calls accumulates separately (FailedUsage): a retry
// storm against a flaky backend must not inflate the reported completion
// tokens of answers that were actually delivered.
func (m *Meter) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := m.inner.Complete(ctx, req)
	m.mu.Lock()
	if err != nil {
		m.failed.Add(resp.Usage)
	} else {
		m.usage.Add(resp.Usage)
	}
	m.mu.Unlock()
	return resp, err
}

// Name returns the wrapped model's name.
func (m *Meter) Name() string { return m.inner.Name() }

// Inner returns the wrapped client (for middleware-stats discovery).
func (m *Meter) Inner() Client { return m.inner }

// Usage returns a snapshot of usage accumulated by successful calls.
func (m *Meter) Usage() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.usage
}

// FailedUsage returns the spend carried by calls that ultimately errored
// (partial batches, faults injected after tokens were burned).
func (m *Meter) FailedUsage() Usage {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// Reset clears accumulated usage (successful and failed).
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.usage = Usage{}
	m.failed = Usage{}
}

// Scripted is a test double that returns canned responses in order, then
// repeats the last one.
type Scripted struct {
	mu        sync.Mutex
	Responses []Response
	Errs      []error
	calls     int
	// Requests records every request for assertion.
	Requests []Request
}

// Complete returns the next scripted response.
func (s *Scripted) Complete(_ context.Context, req Request) (Response, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Requests = append(s.Requests, req)
	i := s.calls
	s.calls++
	if i < len(s.Errs) && s.Errs[i] != nil {
		return Response{}, s.Errs[i]
	}
	if len(s.Responses) == 0 {
		return Response{Text: ""}, nil
	}
	if i >= len(s.Responses) {
		i = len(s.Responses) - 1
	}
	r := s.Responses[i]
	r.Usage = Usage{Calls: 1, PromptTokens: CountTokens(req.Prompt), CompletionTokens: CountTokens(r.Text)}
	return r, nil
}

// Name identifies the scripted double.
func (s *Scripted) Name() string { return "scripted" }

// Calls returns how many completions have been requested.
func (s *Scripted) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}
