package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

const ntsbLikeDoc = `Aviation Investigation Final Report
| Location | Gilbertsville, Kentucky |
| Accident Number | CEN23FA095 |
| Date & Time | June 28, 2024 19:02 |
| Aircraft | Piper PA-38-112 |
| Aircraft Damage | Substantial |
| Registration | N220SW |
| Injuries | 3 Serious |
| Engines | 1 Reciprocating |
Analysis
The pilot reported that during cruise flight the single-engine airplane experienced a
partial loss of engine power. The airplane descended into trees, resulting in
substantial damage to the left wing. Examination revealed water in the fuel tank.
Probable Cause and Findings
The probable cause of this accident was: The pilot's failure to remove all water from the fuel tank, which resulted in fuel contamination and a partial loss of engine power.
The NTSB does not assign fault or blame for an accident or incident.`

func completeText(t *testing.T, sim *Sim, prompt string) string {
	t.Helper()
	resp, err := sim.Complete(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	return resp.Text
}

func TestExtractSkillStructuredFields(t *testing.T) {
	sim := NewSim(1)
	fields := []FieldSpec{
		{Name: "us_state", Type: "string"},
		{Name: "aircraft", Type: "string"},
		{Name: "registration", Type: "string"},
		{Name: "aircraftDamage", Type: "string"},
		{Name: "probable_cause", Type: "string"},
		{Name: "weather_related", Type: "bool"},
		{Name: "number_of_engines", Type: "int"},
	}
	out := completeText(t, sim, ExtractPrompt(fields, ntsbLikeDoc))
	var got map[string]any
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("extract output is not JSON: %v\n%s", err, out)
	}
	if got["us_state"] != "KY" {
		t.Errorf("us_state = %v, want KY", got["us_state"])
	}
	if got["aircraft"] != "Piper PA-38-112" {
		t.Errorf("aircraft = %v", got["aircraft"])
	}
	if got["registration"] != "N220SW" {
		t.Errorf("registration = %v", got["registration"])
	}
	if got["aircraftDamage"] != "Substantial" {
		t.Errorf("aircraftDamage = %v", got["aircraftDamage"])
	}
	cause, _ := got["probable_cause"].(string)
	if !strings.Contains(cause, "water") || !strings.Contains(cause, "fuel") {
		t.Errorf("probable_cause = %q", cause)
	}
	if got["weather_related"] != false {
		t.Errorf("weather_related = %v, want false (no weather terms)", got["weather_related"])
	}
	if n, ok := got["number_of_engines"].(float64); !ok || n != 1 {
		t.Errorf("number_of_engines = %v", got["number_of_engines"])
	}
}

func TestExtractDamagedPart(t *testing.T) {
	sim := NewSim(1)
	out := completeText(t, sim, ExtractPrompt([]FieldSpec{{Name: "damaged_part", Type: "string"}}, ntsbLikeDoc))
	var got map[string]any
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatal(err)
	}
	if got["damaged_part"] != "left wing" {
		t.Errorf("damaged_part = %v, want left wing", got["damaged_part"])
	}
}

func TestExtractMissingFieldIsNull(t *testing.T) {
	sim := NewSim(1)
	out := completeText(t, sim, ExtractPrompt([]FieldSpec{{Name: "operator_certificate", Type: "string"}}, "Nothing relevant here."))
	var got map[string]any
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatal(err)
	}
	if got["operator_certificate"] != nil {
		t.Errorf("missing field should be null, got %v", got["operator_certificate"])
	}
}

func TestFilterSkillPositive(t *testing.T) {
	sim := NewSim(1)
	out := completeText(t, sim, FilterPrompt("Does the document indicate engine problems?", ntsbLikeDoc))
	if out != "yes" {
		t.Errorf("engine-problem doc should pass filter, got %q", out)
	}
}

func TestFilterSkillNegative(t *testing.T) {
	sim := NewSim(1)
	doc := "The glider landed long and overran the runway into a fence. No mechanical issues with the airframe."
	out := completeText(t, sim, FilterPrompt("Does the document mention birds?", doc))
	if out != "no" {
		t.Errorf("no birds mentioned, filter said %q", out)
	}
}

func TestFilterSkillGenerousOnIncidentalMentions(t *testing.T) {
	// A report that mentions the engine incidentally (ruled out as a cause)
	// still tends to pass an "engine problems" filter — the §7.2 failure.
	doc := `The pilot lost directional control during landing in gusting crosswinds.
The airplane veered off the runway. Examination of the engine revealed no anomalies,
and there was no evidence of any pre-impact failure.`
	passes := 0
	for seed := int64(0); seed < 20; seed++ {
		sim := NewSim(seed)
		if completeText(t, sim, FilterPrompt("Was the incident due to engine problems?", doc)) == "yes" {
			passes++
		}
	}
	if passes == 0 {
		t.Error("the recall-biased filter should sometimes pass incidental engine mentions")
	}
}

func TestSummarizeSkill(t *testing.T) {
	sim := NewSim(1)
	out := completeText(t, sim, SummarizePrompt("summarize the causes", []string{
		"Fuel exhaustion led to a forced landing. More detail here.",
		"Carburetor icing caused power loss.",
	}))
	if !strings.Contains(out, "Fuel exhaustion") || !strings.Contains(out, "Carburetor icing") {
		t.Errorf("summary missing item leads: %s", out)
	}
	if !strings.Contains(out, "2 items") {
		t.Errorf("summary should report item count: %s", out)
	}
}

func TestAnswerSkillCount(t *testing.T) {
	sim := NewSim(1)
	chunks := []RAGChunk{
		{DocID: "A1", Text: "The airplane sustained substantial damage to the fuselage."},
		{DocID: "A1", Text: "Weather was clear."},
		{DocID: "B2", Text: "The helicopter sustained substantial damage during the hard landing."},
		{DocID: "C3", Text: "The airplane was not damaged."},
	}
	resp, err := sim.Complete(context.Background(), Request{Prompt: RAGPrompt("How many incidents involved substantial damage?", chunks)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Text, "Answer: ") {
		t.Fatalf("no Answer line: %s", resp.Text)
	}
	// A1 and B2 match on "substantial damage"; C3 matches "damaged" via
	// synonym expansion — the model's generous counting is itself realistic,
	// so accept 2 or 3 but not 0 or 4+.
	ans := answerLine(resp.Text)
	if ans != "2" && ans != "3" {
		t.Errorf("count answer = %q", ans)
	}
}

func TestAnswerSkillRefusalOnPoisonedContext(t *testing.T) {
	sim := NewSim(1)
	disclaimer := "The NTSB does not assign fault or blame for an accident or incident."
	chunks := []RAGChunk{
		{DocID: "A1", Text: disclaimer},
		{DocID: "B2", Text: disclaimer},
		{DocID: "C3", Text: "The engine lost power due to fuel starvation."},
	}
	resp, err := sim.Complete(context.Background(), Request{Prompt: RAGPrompt("How many incidents were due to engine problems?", chunks)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Refusal {
		t.Errorf("poisoned fault-adjacent question should refuse, got: %s", resp.Text)
	}
}

func TestAnswerSkillNoRefusalOnNeutralQuestion(t *testing.T) {
	sim := NewSim(1)
	disclaimer := "The NTSB does not assign fault or blame for an accident or incident."
	chunks := []RAGChunk{
		{DocID: "A1", Text: disclaimer + " The flight departed Hilo, Hawaii."},
	}
	resp, err := sim.Complete(context.Background(), Request{Prompt: RAGPrompt("How many incidents were there in Hawaii?", chunks)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Refusal {
		t.Error("neutral question should not refuse")
	}
}

func TestAnswerSkillZeroCount(t *testing.T) {
	sim := NewSim(1)
	chunks := []RAGChunk{
		{DocID: "A1", Text: "The flight departed Dallas, Texas in the morning."},
	}
	resp, _ := sim.Complete(context.Background(), Request{Prompt: RAGPrompt("How many incidents were there in Hawaii?", chunks)})
	if got := answerLine(resp.Text); got != "0" {
		t.Errorf("Hawaii count should be 0, got %q (%s)", got, resp.Text)
	}
}

func TestAnswerSkillList(t *testing.T) {
	sim := NewSim(1)
	chunks := []RAGChunk{
		{DocID: "A1", Text: "On July 4 the airplane struck a flock of geese after takeoff."},
		{DocID: "B2", Text: "The airplane collided with terrain in dense fog."},
		{DocID: "C3", Text: "During July cruise flight a bird penetrated the windshield."},
	}
	resp, _ := sim.Complete(context.Background(), Request{Prompt: RAGPrompt("Which incidents occurred in July involving birds?", chunks)})
	ans := answerLine(resp.Text)
	if !strings.Contains(ans, "A1") || !strings.Contains(ans, "C3") {
		t.Errorf("list answer missing expected docs: %q", ans)
	}
	if strings.Contains(ans, "B2") {
		t.Errorf("list answer includes non-matching doc: %q", ans)
	}
}

func TestAnswerSkillAttendLimit(t *testing.T) {
	sim := NewSim(1, WithAttendItems(5))
	var chunks []RAGChunk
	for i := 0; i < 40; i++ {
		chunks = append(chunks, RAGChunk{DocID: string(rune('A' + i%26)), Text: "substantial damage to the wing"})
	}
	resp, _ := sim.Complete(context.Background(), Request{Prompt: RAGPrompt("How many incidents involved substantial damage?", chunks)})
	// 26 distinct docs, but only the first 5 chunks are attended; the
	// counting-slip noise then perturbs the tally by at most a few.
	got := answerLine(resp.Text)
	if got == "" {
		t.Fatalf("no Answer line: %s", resp.Text)
	}
	n := 0
	if _, err := fmt.Sscanf(got, "%d", &n); err != nil {
		t.Fatalf("non-numeric count %q", got)
	}
	if n < 2 || n > 6 {
		t.Errorf("attend-limited count = %d, want within slip range of 5", n)
	}
}

// answerLine extracts the value after the final "Answer:" marker.
func answerLine(text string) string {
	idx := strings.LastIndex(text, "Answer:")
	if idx < 0 {
		return ""
	}
	return strings.TrimSpace(text[idx+len("Answer:"):])
}

func TestParseKV(t *testing.T) {
	pairs := parseKV("| Aircraft | Cessna 172 |\n| --- | --- |\nLocation: Mesa, Arizona\nnot a kv line")
	if len(pairs) != 2 {
		t.Fatalf("parseKV found %d pairs: %+v", len(pairs), pairs)
	}
	if pairs[0].key != "aircraft" || pairs[1].key != "location" {
		t.Errorf("keys = %q, %q", pairs[0].key, pairs[1].key)
	}
}

func TestNormKey(t *testing.T) {
	cases := map[string]string{
		"aircraftDamage":  "aircraft damage",
		"us_state_abbrev": "us state abbrev",
		"Date & Time":     "date & time",
		"lowestCeiling":   "lowest ceiling",
	}
	for in, want := range cases {
		if got := normKey(in); got != want {
			t.Errorf("normKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestContainsWord(t *testing.T) {
	if !containsWord("the engine failed", "engine") {
		t.Error("word should match")
	}
	if containsWord("disengaged autopilot", "engage") {
		t.Error("substring inside word should not match")
	}
	if !containsWord("pre-impact failure noted", "failure") {
		t.Error("hyphenated context should match")
	}
	if !containsWord("struck a flock of geese", "flock of geese") {
		t.Error("multi-word synonym should substring-match")
	}
}
