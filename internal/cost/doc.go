// Package cost implements the cost model behind Luna's cost-based plan
// optimization: per-operator default estimates (selectivity, LLM calls
// per document, relative unit costs) refined by a persistent feedback
// store that accumulates the per-operator costs EXPLAIN ANALYZE observes
// after every executed query. ZenDB and UQE both argue that an LLM query
// engine must learn operator costs from its own runs — LLM spend
// dominates so thoroughly that even coarse observed selectivities beat
// static guesses; this package is that loop's memory.
//
// The package is deliberately dependency-free (it imports nothing from
// the rest of the tree): luna owns the plan DAG and walks it, asking this
// package for per-operator numbers keyed by stable signature strings.
//
// Concurrency: Store is safe for concurrent Observe/Lookup/Stats from
// any number of query goroutines (one mutex; operations are O(1)).
// Model is a stateless view over a Store and is safe to share.
package cost
