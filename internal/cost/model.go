package cost

// Relative unit costs, calibrated so one LLM round-trip dwarfs any
// amount of predicate evaluation — the paper's core economics. The
// absolute numbers are arbitrary; only the ratios steer the optimizer.
const (
	// UnitsPerLLMCall is the unit cost of one LLM round-trip.
	UnitsPerLLMCall = 100.0
	// UnitsPerPredicate is the unit cost of evaluating one structured
	// predicate (or index probe) on one document.
	UnitsPerPredicate = 0.01
	// UnitsPerProxy is the unit cost of one embedding-similarity proxy
	// screen (a dot product; far cheaper than an LLM call, pricier than
	// a property compare).
	UnitsPerProxy = 1.0
)

// DefaultEscalationRate is the assumed fraction of documents a proxy
// cascade escalates to the full LLM before any evidence is observed.
// Deliberately conservative: the optimizer should not promise savings
// the cascade has not yet demonstrated.
const DefaultEscalationRate = 0.7

// defaultSelectivity maps operator names to the fraction of input
// documents assumed to survive, before any observed evidence. Operator
// names mirror luna's wire constants; this package keeps its own copy
// to stay import-free.
var defaultSelectivity = map[string]float64{
	"basicFilter":      0.5,
	"llmFilter":        0.5,
	"llmFilterCascade": 0.5,
	"distinct":         0.9,
}

// DefaultSelectivity returns the assumed selectivity for an operator
// with no observed evidence (1.0 for pass-through operators).
func DefaultSelectivity(op string) float64 {
	if s, ok := defaultSelectivity[op]; ok {
		return s
	}
	return 1.0
}

// defaultCallsPerDoc maps operator names to assumed LLM calls per input
// document before any observed evidence.
var defaultCallsPerDoc = map[string]float64{
	"llmFilter":        1.0,
	"llmFilterCascade": DefaultEscalationRate,
	"llmExtract":       1.0,
	"llmCluster":       1.0,
	"fraction":         1.0,
}

// DefaultCallsPerDoc returns the assumed LLM calls per input document
// for an operator with no observed evidence.
func DefaultCallsPerDoc(op string) float64 {
	return defaultCallsPerDoc[op]
}

// Model answers per-operator cost questions, preferring observed
// evidence from its feedback store over the static defaults. A nil
// Store (or a signature the store has never seen) falls back to
// defaults, so a cold model is always usable.
type Model struct {
	Store *Store
}

// NewModel returns a model backed by store (which may be nil for a
// defaults-only model).
func NewModel(store *Store) *Model {
	return &Model{Store: store}
}

// Selectivity returns the expected docs-out/docs-in ratio for an
// operator instance, and whether the figure comes from observed
// evidence rather than defaults.
func (m *Model) Selectivity(op, signature string) (sel float64, observed bool) {
	if m != nil && m.Store != nil {
		if a, ok := m.Store.Lookup(signature); ok {
			if s, ok := a.Selectivity(); ok {
				return s, true
			}
		}
	}
	return DefaultSelectivity(op), false
}

// CallsPerDoc returns the expected LLM calls per input document for an
// operator instance, and whether the figure is observed.
func (m *Model) CallsPerDoc(op, signature string) (calls float64, observed bool) {
	if m != nil && m.Store != nil {
		if a, ok := m.Store.Lookup(signature); ok {
			if c, ok := a.CallsPerDoc(); ok {
				return c, true
			}
		}
	}
	return DefaultCallsPerDoc(op), false
}

// NodeEstimate is one plan node's cost estimate, wire-stable for
// embedding in /plan responses and EXPLAIN output.
type NodeEstimate struct {
	ID string `json:"id"`
	Op string `json:"op"`
	// DocsIn/DocsOut are the estimated document counts crossing the node.
	DocsIn  float64 `json:"docs_in"`
	DocsOut float64 `json:"docs_out"`
	// LLMCalls is the estimated number of LLM round-trips the node makes.
	LLMCalls float64 `json:"llm_calls"`
	// Units is the node's estimated cost in abstract units
	// (UnitsPerLLMCall per call + cheap per-document work).
	Units float64 `json:"units"`
	// Observed is true when the estimate is refined by feedback-store
	// evidence rather than seeded entirely from defaults.
	Observed bool `json:"observed,omitempty"`
}

// PlanEstimate is a whole plan's cost estimate: per-node figures in
// topological order plus plan-level totals.
type PlanEstimate struct {
	Nodes []NodeEstimate `json:"nodes"`
	// LLMCalls/Units are the totals across all nodes.
	LLMCalls float64 `json:"llm_calls"`
	Units    float64 `json:"units"`
}

// Add folds a node estimate into the plan totals.
func (p *PlanEstimate) Add(n NodeEstimate) {
	p.Nodes = append(p.Nodes, n)
	p.LLMCalls += n.LLMCalls
	p.Units += n.Units
}
