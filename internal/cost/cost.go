package cost

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
)

// Observation is one operator's measured behaviour from a single query
// execution, distilled from its NodeTrace snapshot.
type Observation struct {
	// Op is the logical operator name ("llmFilter", "basicFilter", ...).
	Op string
	// Signature identifies the operator instance across queries: the
	// operator name plus its semantically load-bearing parameters (the
	// question for llmFilter, the rendered predicate for basicFilter).
	// Proxy cascades share the plain llmFilter signature — they evaluate
	// the same predicate, so their selectivity evidence is interchangeable.
	Signature string
	// DocsIn/DocsOut are the document counts crossing the operator.
	DocsIn, DocsOut int64
	// LLMCalls and token counts are the operator's LLM spend.
	LLMCalls, PromptTokens, CompletionTokens int64
	// BusyMS is the operator's cumulative worker-occupied milliseconds.
	BusyMS float64
}

// Aggregate is the accumulated evidence for one operator signature. All
// fields are sums over the observations recorded so far; derived ratios
// (selectivity, calls per document) come from the accessor methods so a
// zero denominator can be reported as "no evidence".
type Aggregate struct {
	Op               string  `json:"op"`
	Count            int64   `json:"count"`
	DocsIn           int64   `json:"docs_in"`
	DocsOut          int64   `json:"docs_out"`
	LLMCalls         int64   `json:"llm_calls"`
	PromptTokens     int64   `json:"prompt_tokens"`
	CompletionTokens int64   `json:"completion_tokens"`
	BusyMS           float64 `json:"busy_ms"`
}

// Selectivity reports the observed docs-out/docs-in ratio. ok is false
// when no documents have flowed through the operator yet.
func (a Aggregate) Selectivity() (float64, bool) {
	if a.DocsIn <= 0 {
		return 0, false
	}
	return float64(a.DocsOut) / float64(a.DocsIn), true
}

// CallsPerDoc reports the observed LLM calls per input document. ok is
// false when no documents have flowed through the operator yet.
func (a Aggregate) CallsPerDoc() (float64, bool) {
	if a.DocsIn <= 0 {
		return 0, false
	}
	return float64(a.LLMCalls) / float64(a.DocsIn), true
}

// StoreStats is the wire-stable snapshot of a feedback store, surfaced
// on /stats so operators can watch the loop learn.
type StoreStats struct {
	// Entries is the number of distinct operator signatures observed.
	Entries int `json:"entries"`
	// Observations counts Observe calls (one per operator per query).
	Observations int64 `json:"observations"`
	// Hits/Misses count optimizer lookups that found / did not find
	// observed evidence for a signature.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// Store is the persistent feedback store: a signature → Aggregate map
// fed by EXPLAIN ANALYZE after every query and consulted by the
// optimizer's cost model. Safe for concurrent use.
type Store struct {
	mu           sync.Mutex
	entries      map[string]*Aggregate
	observations int64
	hits, misses int64
}

// NewStore returns an empty feedback store.
func NewStore() *Store {
	return &Store{entries: make(map[string]*Aggregate)}
}

// Observe folds one operator execution into the signature's aggregate.
func (s *Store) Observe(o Observation) {
	if o.Signature == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.entries[o.Signature]
	if a == nil {
		a = &Aggregate{Op: o.Op}
		s.entries[o.Signature] = a
	}
	a.Count++
	a.DocsIn += o.DocsIn
	a.DocsOut += o.DocsOut
	a.LLMCalls += o.LLMCalls
	a.PromptTokens += o.PromptTokens
	a.CompletionTokens += o.CompletionTokens
	a.BusyMS += o.BusyMS
	s.observations++
}

// Lookup returns the aggregate for a signature, counting the probe as a
// hit or miss in the store's stats.
func (s *Store) Lookup(signature string) (Aggregate, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.entries[signature]
	if !ok {
		s.misses++
		return Aggregate{}, false
	}
	s.hits++
	return *a, true
}

// Len reports the number of distinct signatures observed.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:      len(s.entries),
		Observations: s.observations,
		Hits:         s.hits,
		Misses:       s.misses,
	}
}

// storeFile is the on-disk format: versioned so later PRs can migrate.
// encoding/json marshals map keys in sorted order, so the file bytes are
// deterministic for a given store state.
type storeFile struct {
	Version int                   `json:"version"`
	Entries map[string]*Aggregate `json:"entries"`
}

// Save writes the store's aggregates to path as indented JSON. Counter
// state (hits/misses/observations) is process-local and not persisted.
func (s *Store) Save(path string) error {
	s.mu.Lock()
	file := storeFile{Version: 1, Entries: make(map[string]*Aggregate, len(s.entries))}
	for sig, a := range s.entries {
		cp := *a
		file.Entries[sig] = &cp
	}
	s.mu.Unlock()
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return fmt.Errorf("cost: encode feedback store: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load merges aggregates from a file written by Save into the store.
// A missing file is not an error (cold start); a malformed file is.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("cost: read feedback store: %w", err)
	}
	var file storeFile
	if err := json.Unmarshal(data, &file); err != nil {
		return fmt.Errorf("cost: decode feedback store %s: %w", path, err)
	}
	if file.Version != 1 {
		return fmt.Errorf("cost: feedback store %s: unsupported version %d", path, file.Version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for sig, a := range file.Entries {
		if a == nil || sig == "" {
			continue
		}
		cur := s.entries[sig]
		if cur == nil {
			cp := *a
			s.entries[sig] = &cp
			continue
		}
		cur.Count += a.Count
		cur.DocsIn += a.DocsIn
		cur.DocsOut += a.DocsOut
		cur.LLMCalls += a.LLMCalls
		cur.PromptTokens += a.PromptTokens
		cur.CompletionTokens += a.CompletionTokens
		cur.BusyMS += a.BusyMS
	}
	return nil
}
