package cost

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestObserveAggregatesAndStats(t *testing.T) {
	s := NewStore()
	s.Observe(Observation{Op: "llmFilter", Signature: "llmFilter|q", DocsIn: 10, DocsOut: 4, LLMCalls: 10, PromptTokens: 100, CompletionTokens: 20, BusyMS: 5})
	s.Observe(Observation{Op: "llmFilter", Signature: "llmFilter|q", DocsIn: 10, DocsOut: 2, LLMCalls: 10, PromptTokens: 100, CompletionTokens: 20, BusyMS: 5})
	s.Observe(Observation{Signature: ""}) // ignored: no signature

	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	a, ok := s.Lookup("llmFilter|q")
	if !ok {
		t.Fatal("Lookup miss for observed signature")
	}
	if a.Count != 2 || a.DocsIn != 20 || a.DocsOut != 6 || a.LLMCalls != 20 {
		t.Fatalf("aggregate = %+v", a)
	}
	if sel, ok := a.Selectivity(); !ok || sel != 0.3 {
		t.Fatalf("Selectivity = %v, %v; want 0.3, true", sel, ok)
	}
	if c, ok := a.CallsPerDoc(); !ok || c != 1.0 {
		t.Fatalf("CallsPerDoc = %v, %v; want 1, true", c, ok)
	}
	if _, ok := s.Lookup("unknown"); ok {
		t.Fatal("Lookup hit for unseen signature")
	}
	st := s.Stats()
	if st.Entries != 1 || st.Observations != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestAggregateNoEvidence(t *testing.T) {
	var a Aggregate
	if _, ok := a.Selectivity(); ok {
		t.Fatal("Selectivity ok with zero docs in")
	}
	if _, ok := a.CallsPerDoc(); ok {
		t.Fatal("CallsPerDoc ok with zero docs in")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "feedback.json")

	s := NewStore()
	s.Observe(Observation{Op: "llmFilter", Signature: "llmFilter|a", DocsIn: 8, DocsOut: 2, LLMCalls: 8})
	s.Observe(Observation{Op: "basicFilter", Signature: "basicFilter|state=CA", DocsIn: 8, DocsOut: 5})
	if err := s.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// Saved bytes are deterministic (sorted map keys).
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(path); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("Save output not deterministic")
	}

	loaded := NewStore()
	// Pre-seed one overlapping signature so Load's merge path is covered.
	loaded.Observe(Observation{Op: "llmFilter", Signature: "llmFilter|a", DocsIn: 2, DocsOut: 1, LLMCalls: 2})
	if err := loaded.Load(path); err != nil {
		t.Fatalf("Load: %v", err)
	}
	a, ok := loaded.Lookup("llmFilter|a")
	if !ok || a.DocsIn != 10 || a.DocsOut != 3 || a.LLMCalls != 10 {
		t.Fatalf("merged aggregate = %+v, ok=%v", a, ok)
	}
	if _, ok := loaded.Lookup("basicFilter|state=CA"); !ok {
		t.Fatal("loaded signature missing")
	}
}

func TestLoadMissingAndMalformed(t *testing.T) {
	s := NewStore()
	if err := s.Load(filepath.Join(t.TempDir(), "absent.json")); err != nil {
		t.Fatalf("missing file should be a cold start, got %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(bad); err == nil {
		t.Fatal("malformed file should error")
	}
	wrongVersion := filepath.Join(t.TempDir(), "v9.json")
	if err := os.WriteFile(wrongVersion, []byte(`{"version":9,"entries":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Load(wrongVersion); err == nil {
		t.Fatal("unsupported version should error")
	}
}

func TestModelPrefersObservedEvidence(t *testing.T) {
	s := NewStore()
	s.Observe(Observation{Op: "llmFilter", Signature: "llmFilter|q", DocsIn: 10, DocsOut: 1, LLMCalls: 10})
	m := NewModel(s)

	if sel, observed := m.Selectivity("llmFilter", "llmFilter|q"); !observed || sel != 0.1 {
		t.Fatalf("Selectivity = %v, observed=%v; want 0.1 observed", sel, observed)
	}
	if sel, observed := m.Selectivity("llmFilter", "llmFilter|unseen"); observed || sel != 0.5 {
		t.Fatalf("default Selectivity = %v, observed=%v; want 0.5 default", sel, observed)
	}
	if c, observed := m.CallsPerDoc("llmFilter", "llmFilter|q"); !observed || c != 1.0 {
		t.Fatalf("CallsPerDoc = %v, observed=%v; want 1 observed", c, observed)
	}
	if c, observed := m.CallsPerDoc("llmExtract", "llmExtract|x"); observed || c != 1.0 {
		t.Fatalf("default CallsPerDoc = %v, observed=%v; want 1 default", c, observed)
	}
}

func TestModelNilStoreFallsBack(t *testing.T) {
	var m *Model
	if sel, observed := m.Selectivity("basicFilter", "sig"); observed || sel != 0.5 {
		t.Fatalf("nil model Selectivity = %v, observed=%v", sel, observed)
	}
	m2 := NewModel(nil)
	if c, observed := m2.CallsPerDoc("topK", "sig"); observed || c != 0 {
		t.Fatalf("storeless CallsPerDoc = %v, observed=%v", c, observed)
	}
	if s := DefaultSelectivity("project"); s != 1.0 {
		t.Fatalf("pass-through default selectivity = %v", s)
	}
}

func TestPlanEstimateAdd(t *testing.T) {
	var p PlanEstimate
	p.Add(NodeEstimate{ID: "n1", Op: "queryDatabase", DocsOut: 100, Units: 1})
	p.Add(NodeEstimate{ID: "n2", Op: "llmFilter", DocsIn: 100, DocsOut: 50, LLMCalls: 100, Units: 100 * UnitsPerLLMCall})
	if len(p.Nodes) != 2 || p.LLMCalls != 100 {
		t.Fatalf("plan estimate = %+v", p)
	}
	if p.Units != 1+100*UnitsPerLLMCall {
		t.Fatalf("Units = %v", p.Units)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Observe(Observation{Op: "llmFilter", Signature: "llmFilter|q", DocsIn: 1, DocsOut: 1, LLMCalls: 1})
				s.Lookup("llmFilter|q")
				s.Stats()
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Observations != 800 {
		t.Fatalf("Observations = %d, want 800", st.Observations)
	}
}
