package scenario

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"aryn/internal/ntsb"
	"aryn/internal/server/api"
)

// Rotation counters give concurrent executions distinct inputs (fresh
// corpus seeds, cache-defeating question variants) without shared locks.
var (
	questionSeq atomic.Int64
	corpusSeq   atomic.Int64
	burstSeq    atomic.Int64
)

// oneshotQuestions is the rotating question set for the steady-state read
// path. Deliberately small: repeats across executions are what make the
// LLM cache hit-rate a meaningful serving metric.
var oneshotQuestions = []string{
	"How many incidents were there?",
	"How many incidents involved substantial damage?",
	"Which state had the most incidents?",
	"How many incidents were caused by engine failure?",
	"How many incidents involved fatalities?",
	"What fraction of incidents happened at night?",
}

func init() {
	Register(Scenario{
		Name:        "query-oneshot",
		Description: "One-shot analytics questions from a rotating set: the steady-state read path, warming and reusing the LLM response cache",
		Paper:       "§6 (Luna queries), §5 (LLM call middleware)",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			q := oneshotQuestions[int(questionSeq.Add(1))%len(oneshotQuestions)]
			var out api.QueryResponse
			if _, err := c.PostJSON(ctx, "/query", api.QueryRequest{Question: q}, &out); err != nil {
				return err
			}
			if out.Answer == "" {
				return fmt.Errorf("empty answer for %q", q)
			}
			return nil
		},
		Verify: verifyServed("/query"),
	})

	Register(Scenario{
		Name:        "ingest-multi-corpus",
		Description: "Loads two corpora per execution — a generated synthetic one and a client-supplied blob upload under its own ID namespace — and checks both land in the store",
		Paper:       "§4–5 (DocParse + Sycamore ETL over multiple corpora)",
		Execute: func(ctx context.Context, c *Client) error {
			before, err := storeDocs(ctx, c)
			if err != nil {
				return err
			}
			seed := 1000 + corpusSeq.Add(1)

			// Corpus 1: server-generated synthetic reports. A concurrent
			// ingest answers 409 — itself the documented exclusivity
			// contract — so contention is an accepted outcome, not a
			// failure.
			synStatus, err := c.PostJSON(ctx, "/ingest",
				api.IngestRequest{Docs: c.Params.IngestDocs, Seed: seed}, nil,
				http.StatusOK, http.StatusConflict)
			if err != nil && !errors.Is(err, ErrShed) {
				return err
			}

			// Corpus 2: client-side blobs re-keyed into their own
			// namespace, so the two corpora cannot collide on document IDs.
			blobs, err := corpusBlobs(c.Params.IngestDocs, seed)
			if err != nil {
				return err
			}
			blobStatus, err := c.PostJSON(ctx, "/ingest",
				api.IngestRequest{Blobs: blobs}, nil,
				http.StatusOK, http.StatusConflict)
			if err != nil && !errors.Is(err, ErrShed) {
				return err
			}

			// The blob corpus uses fresh IDs, so a successful upload must
			// grow the store by at least its size (nothing ever deletes).
			if blobStatus == http.StatusOK {
				after, err := storeDocs(ctx, c)
				if err != nil {
					return err
				}
				if after < before+c.Params.IngestDocs {
					return fmt.Errorf("blob corpus did not land: %d docs before, %d after, wanted ≥ %d",
						before, after, before+c.Params.IngestDocs)
				}
			}
			_ = synStatus
			return nil
		},
		Verify: func(ctx context.Context, c *Client) error {
			n, err := storeDocs(ctx, c)
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("no documents in the store after ingest runs")
			}
			return nil
		},
	})

	Register(Scenario{
		Name:        "plan-edit-roundtrip",
		Description: "Plans a question, edits the returned DAG JSON (retargets a filter), dry-runs the edit, then executes it and reads back the runtime-annotated plan",
		Paper:       "§6.2 (inspect → edit → re-run plans)",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			var planned api.PlanResponse
			if _, err := c.PostJSON(ctx, "/plan",
				api.PlanRequest{Question: "How many incidents were there in Kentucky?"}, &planned); err != nil {
				return err
			}
			if len(planned.Plan.Rewritten) == 0 || planned.Plan.Compiled == "" {
				return fmt.Errorf("/plan returned no rewritten plan or compiled pipeline")
			}

			edited, err := retargetStateFilter(planned.Plan.Rewritten, "CA")
			if err != nil {
				return err
			}

			// Dry-run the edit (validation + rewrite + compile, no
			// execution), then execute it for real.
			if _, err := c.PostJSON(ctx, "/plan", api.PlanRequest{Plan: edited}, nil); err != nil {
				return err
			}
			var out api.QueryResponse
			if _, err := c.PostJSON(ctx, "/query",
				api.QueryRequest{Plan: edited, IncludePlan: true}, &out); err != nil {
				return err
			}
			if out.Answer == "" {
				return fmt.Errorf("edited plan executed to an empty answer")
			}
			if _, err := strconv.Atoi(out.Answer); err != nil {
				return fmt.Errorf("edited count plan answered %q, want a number", out.Answer)
			}
			if out.Plan == nil || len(out.Plan.Executed) == 0 {
				return fmt.Errorf("include_plan response missing the executed plan")
			}
			return nil
		},
		Verify: verifyServed("/query"),
	})

	Register(Scenario{
		Name:        "explain-analyze",
		Description: "Submits a two-root join DAG with analyze:true and checks the executed plan carries per-node runtime metrics but no answer payload",
		Paper:       "§6.2 (EXPLAIN ANALYZE), concurrent branch scheduling",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			var out api.PlanResponse
			if _, err := c.PostJSON(ctx, "/plan",
				api.PlanRequest{Plan: json.RawMessage(selfJoinPlan), Analyze: true}, &out); err != nil {
				return err
			}
			if len(out.Plan.Executed) == 0 {
				return fmt.Errorf("analyze response missing plan.executed")
			}
			var executed struct {
				Nodes []map[string]json.RawMessage `json:"nodes"`
				Exec  map[string]json.RawMessage   `json:"exec"`
			}
			if err := json.Unmarshal(out.Plan.Executed, &executed); err != nil {
				return fmt.Errorf("plan.executed is not a plan object: %w", err)
			}
			withRuntime := 0
			for _, n := range executed.Nodes {
				if _, ok := n["runtime"]; ok {
					withRuntime++
				}
			}
			if withRuntime == 0 {
				return fmt.Errorf("no node in the executed plan carries a runtime object")
			}
			if len(executed.Exec) == 0 {
				return fmt.Errorf("executed plan missing the query-level exec summary")
			}
			return nil
		},
		Verify: verifyServed("/plan"),
	})

	Register(Scenario{
		Name:        "chat-session",
		Description: "Opens a conversational session and plays follow-up turns, checking the session ID stays stable and the turn counter increments exactly",
		Paper:       "§6 (conversational analytics), serving-layer sessions",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			var first api.ChatResponse
			if _, err := c.PostJSON(ctx, "/chat",
				api.ChatRequest{Question: "How many incidents involved substantial damage?"}, &first); err != nil {
				return err
			}
			if first.SessionID == "" || first.Turn != 1 {
				return fmt.Errorf("first exchange = session %q turn %d, want a session at turn 1", first.SessionID, first.Turn)
			}
			followUps := []string{
				"what about destroyed aircraft?",
				"and minor damage?",
				"which of those happened at night?",
			}
			for i := 0; i < c.Params.ChatTurns; i++ {
				var resp api.ChatResponse
				if _, err := c.PostJSON(ctx, "/chat", api.ChatRequest{
					SessionID: first.SessionID,
					Question:  followUps[i%len(followUps)],
				}, &resp); err != nil {
					return err
				}
				if resp.SessionID != first.SessionID {
					return fmt.Errorf("turn %d switched session %q → %q", i+2, first.SessionID, resp.SessionID)
				}
				if resp.Turn != i+2 {
					return fmt.Errorf("turn counter = %d after %d exchanges, want %d", resp.Turn, i+2, i+2)
				}
			}
			return nil
		},
		Verify: func(ctx context.Context, c *Client) error {
			stats, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			if stats.Sessions.Live == 0 && stats.Sessions.Evicted == 0 {
				return fmt.Errorf("no chat sessions were ever created")
			}
			return nil
		},
	})

	Register(Scenario{
		Name:        "chat-expiry",
		Description: "Checks the session TTL contract: unknown or expired session IDs answer 404 (and, with a TTL wait configured, a real idle session is evicted)",
		Paper:       "serving-layer session lifecycle (TTL eviction)",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			status, err := c.PostJSON(ctx, "/chat", api.ChatRequest{
				SessionID: "scenario-expired-session",
				Question:  "are you still there?",
			}, nil, http.StatusNotFound)
			if err != nil {
				return err
			}
			if status != http.StatusNotFound {
				return fmt.Errorf("unknown session answered %d, want 404", status)
			}
			if c.Params.TTLWait <= 0 {
				return nil
			}
			// Against a short-TTL server (suite tests), prove a real idle
			// session is reaped: open one, go idle past the TTL, and watch
			// the follow-up turn into a 404.
			var first api.ChatResponse
			if _, err := c.PostJSON(ctx, "/chat",
				api.ChatRequest{Question: "How many incidents were there?"}, &first); err != nil {
				return err
			}
			deadline := time.Now().Add(c.Params.TTLWait + 5*time.Second)
			time.Sleep(c.Params.TTLWait)
			for {
				status, err := c.PostJSON(ctx, "/chat", api.ChatRequest{
					SessionID: first.SessionID,
					Question:  "still with me?",
				}, nil, http.StatusOK, http.StatusNotFound)
				if err != nil && !errors.Is(err, ErrShed) {
					return err
				}
				if status == http.StatusNotFound {
					return nil // evicted
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("session %s never expired after TTL wait %s", first.SessionID, c.Params.TTLWait)
				}
				time.Sleep(200 * time.Millisecond)
			}
		},
	})

	Register(Scenario{
		Name:        "overload-shed",
		Description: "Fires a burst of concurrent cache-defeating queries and checks saturation degrades only into 429+Retry-After sheds, never into errors",
		Paper:       "§3 (serving platform), bounded admission gate",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			base := burstSeq.Add(1) * 1000
			var wg sync.WaitGroup
			errs := make([]error, c.Params.BurstSize)
			for i := 0; i < c.Params.BurstSize; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Distinct questions defeat the response cache and
					// singleflight, so every admitted request holds a slot
					// for real work.
					q := fmt.Sprintf("How many incidents were there in year %d?", 1900+base+int64(i))
					_, err := c.PostJSON(ctx, "/query", api.QueryRequest{Question: q}, nil)
					if err != nil && !errors.Is(err, ErrShed) {
						errs[i] = err
					}
				}(i)
			}
			wg.Wait()
			return errors.Join(errs...)
		},
		Verify: func(ctx context.Context, c *Client) error {
			stats, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			if stats.Gate.Admitted == 0 {
				return fmt.Errorf("admission gate admitted nothing during the run")
			}
			return nil
		},
	})

	Register(Scenario{
		Name:        "query-stream",
		Description: "Streams a fixed filter plan over SSE and cross-checks it against the batch path: a well-formed event stream, partial batches that account for the terminal result, and identical final answers on both paths",
		Paper:       "§3/§6 (pipelined execution streamed to clients)",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			plan := json.RawMessage(streamFilterPlan)
			before, err := c.Stats(ctx)
			if err != nil {
				return err
			}

			// Stream first, cache-cold relative to this execution's batch
			// run. QueryStream enforces the event grammar as it reads and
			// records time-to-first-event — the mix-level TTFE SLO and
			// TestStreamFirstPartialBeatsBatch own the timing claims.
			st, err := c.QueryStream(ctx, api.QueryRequest{Plan: plan})
			if err != nil {
				return err
			}
			if st.Result.Answer == "" {
				return fmt.Errorf("streamed plan produced an empty terminal answer")
			}
			if st.Partials > 0 && st.PartialDocs != st.Result.Docs {
				return fmt.Errorf("partials carried %d docs, terminal result says %d", st.PartialDocs, st.Result.Docs)
			}

			// The batch path must agree on the outcome — comparable only
			// when no ingest (sync or job) touched the store between the
			// two runs. A running job writes documents incrementally, so
			// quiescence means no jobs in flight and none finishing.
			var batch api.QueryResponse
			if _, err := c.PostJSON(ctx, "/v1/query", api.QueryRequest{Plan: plan}, &batch); err != nil {
				return err
			}
			after, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			quiescent := before.Docs == after.Docs &&
				before.Jobs == after.Jobs &&
				after.Jobs.Running == 0
			if quiescent && (batch.Answer != st.Result.Answer || batch.Docs != st.Result.Docs) {
				return fmt.Errorf("stream (answer %q, docs %d) != batch (answer %q, docs %d) on a stable corpus",
					st.Result.Answer, st.Result.Docs, batch.Answer, batch.Docs)
			}
			return nil
		},
		Verify: verifyServed("/query"),
	})

	Register(Scenario{
		Name:        "ingest-async",
		Description: "Submits an async ingest job (202 + job handle), keeps the read path answering while it runs, and polls the job resource to a verified terminal state",
		Paper:       "§4–5 (ETL as a background job), serving-layer job lifecycle",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			seed := 500_000 + corpusSeq.Add(1)
			var acc api.JobAccepted
			if _, err := c.PostJSON(ctx, "/v1/ingest",
				api.IngestRequest{Docs: c.Params.IngestDocs, Seed: seed}, &acc,
				http.StatusAccepted); err != nil {
				return err // a full job queue sheds with 429 → ErrShed
			}
			if acc.JobID == "" || acc.Location == "" {
				return fmt.Errorf("202 did not carry a job handle: %+v", acc)
			}

			// Ingest must not block the read path: a query issued while the
			// job runs (or queues) still answers. Sheds are acceptable — the
			// admission gate owns that call — errors are not.
			var q api.QueryResponse
			if _, err := c.PostJSON(ctx, "/query",
				api.QueryRequest{Question: "How many incidents were there?"}, &q); err != nil && !errors.Is(err, ErrShed) {
				return fmt.Errorf("query during async ingest: %w", err)
			}

			deadline := time.Now().Add(120 * time.Second)
			for {
				var job api.JobResponse
				if _, err := c.GetJSON(ctx, acc.Location, &job); err != nil {
					return err
				}
				switch job.State {
				case api.JobDone:
					if job.Result == nil || job.Result.Documents < c.Params.IngestDocs {
						return fmt.Errorf("job %s done with result %+v, want ≥%d documents", acc.JobID, job.Result, c.Params.IngestDocs)
					}
					return nil
				case api.JobFailed:
					return fmt.Errorf("ingest job %s failed: %+v", acc.JobID, job.Error)
				}
				if time.Now().After(deadline) {
					return fmt.Errorf("job %s still %q after 120s", acc.JobID, job.State)
				}
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(100 * time.Millisecond):
				}
			}
		},
		Verify: func(ctx context.Context, c *Client) error {
			stats, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			if stats.Jobs.Failed > 0 {
				return fmt.Errorf("%d ingest jobs failed during the run", stats.Jobs.Failed)
			}
			if stats.Jobs.Done == 0 && stats.Jobs.Reaped == 0 {
				return fmt.Errorf("no ingest job ever reached a terminal state")
			}
			return nil
		},
	})
}

// streamFilterPlan is the fixed plan the streaming scenario runs on both
// paths: a scan feeding an llmFilter feeding a count. The filter stage is
// per-document LLM work, so under a latency-carrying backend the batch
// wall stretches while streaming still emits its first partial after the
// first batch clears — the shape that makes time-to-first-result visible.
const streamFilterPlan = `{"nodes":[
  {"id":"n1","op":"queryDatabase"},
  {"id":"n2","op":"llmFilter","question":"Does the report mention an engine problem?","inputs":["n1"]},
  {"id":"n3","op":"count","inputs":["n2"]}],"output":"n3"}`

// ensureCorpus is the shared Setup for query-flavored scenarios: make
// sure the server has something to answer over, ingesting a small corpus
// if the store is empty (and waiting out a concurrent ingest's 409).
func ensureCorpus(ctx context.Context, c *Client) error {
	n, err := storeDocs(ctx, c)
	if err != nil {
		return err
	}
	if n > 0 {
		return nil
	}
	status, err := c.PostJSON(ctx, "/ingest",
		api.IngestRequest{Docs: 32, Seed: 42}, nil,
		http.StatusOK, http.StatusConflict)
	if err != nil && !errors.Is(err, ErrShed) {
		return err
	}
	if status == http.StatusOK {
		return nil
	}
	// Someone else is ingesting; wait until their corpus shows up.
	deadline := time.Now().Add(60 * time.Second)
	for {
		n, err := storeDocs(ctx, c)
		if err != nil {
			return err
		}
		if n > 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("store still empty after waiting for a concurrent ingest")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// storeDocs reads the indexed document count from /healthz.
func storeDocs(ctx context.Context, c *Client) (int, error) {
	h, err := c.Healthz(ctx)
	if err != nil {
		return 0, err
	}
	n, _ := h["docs"].(float64)
	return int(n), nil
}

// corpusBlobs builds a client-side corpus of n synthetic reports under a
// seed-specific ID namespace, base64-encoded for the /ingest blob path.
func corpusBlobs(n int, seed int64) (map[string]string, error) {
	corpus, err := ntsb.GenerateCorpus(n, seed)
	if err != nil {
		return nil, fmt.Errorf("generate blob corpus: %w", err)
	}
	raw, err := corpus.Blobs()
	if err != nil {
		return nil, fmt.Errorf("encode blob corpus: %w", err)
	}
	out := make(map[string]string, len(raw))
	for id, blob := range raw {
		out[fmt.Sprintf("mc%d-%s", seed, id)] = base64.StdEncoding.EncodeToString(blob)
	}
	return out, nil
}

// retargetStateFilter is the scripted §6.2 "edit": decode the plan JSON,
// point any us_state term filter at state, and re-encode. A plan without
// such a filter passes through unchanged (the round-trip is still a real
// user-submitted-plan execution).
func retargetStateFilter(plan json.RawMessage, state string) (json.RawMessage, error) {
	var p map[string]any
	if err := json.Unmarshal(plan, &p); err != nil {
		return nil, fmt.Errorf("decode plan for editing: %w", err)
	}
	nodes, _ := p["nodes"].([]any)
	for _, n := range nodes {
		node, _ := n.(map[string]any)
		filters, _ := node["filters"].([]any)
		for _, f := range filters {
			filter, _ := f.(map[string]any)
			if filter["field"] == "us_state" {
				filter["value"] = state
			}
		}
	}
	out, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("re-encode edited plan: %w", err)
	}
	return out, nil
}

// selfJoinPlan is a fixed two-root DAG (semi self-join on accident number
// then count): two independent scan branches the scheduler can overlap,
// cheap enough to analyze under load.
const selfJoinPlan = `{"nodes":[
  {"id":"n1","op":"queryDatabase"},
  {"id":"n2","op":"queryDatabase"},
  {"id":"n3","op":"join","inputs":["n1","n2"],"left_key":"accidentNumber","right_key":"accidentNumber","join_kind":"semi"},
  {"id":"n4","op":"count","inputs":["n3"]}],"output":"n4"}`

// verifyServed returns a Verify stage asserting the endpoint actually
// served successful requests during the run (per-endpoint /stats
// counters).
func verifyServed(endpoint string) func(context.Context, *Client) error {
	return func(ctx context.Context, c *Client) error {
		stats, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		ep, ok := stats.Endpoints[endpoint]
		if !ok {
			return fmt.Errorf("/stats carries no counters for %s", endpoint)
		}
		if ep.OK == 0 {
			return fmt.Errorf("%s served no successful requests", endpoint)
		}
		return nil
	}
}
