package scenario

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// Scenario is one named, self-describing serving workload.
type Scenario struct {
	// Name identifies the scenario (registry key, arynload -list, mix
	// weights).
	Name string
	// Description says what the scenario exercises, in one line.
	Description string
	// Paper names the paper section (or serving-layer claim) the scenario
	// puts under load.
	Paper string

	// Setup prepares server state (may be nil). Run once per run.
	Setup func(ctx context.Context, c *Client) error
	// Execute performs one unit of the workload — the repeated stage.
	Execute func(ctx context.Context, c *Client) error
	// Verify asserts the end-state contract (may be nil). Run once, after
	// the last Execute.
	Verify func(ctx context.Context, c *Client) error
}

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds s to the scenario registry. Registration happens at
// package init; a malformed or duplicate entry is a programming error.
func Register(s Scenario) {
	if s.Name == "" || s.Description == "" || s.Paper == "" || s.Execute == nil {
		panic(fmt.Sprintf("scenario: Register(%q): Name, Description, Paper, and Execute are required", s.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration %q", s.Name))
	}
	registry[s.Name] = s
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// All returns every registered scenario, sorted by name.
func All() []Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Run executes one full Setup→Execute→Verify pass of s against c — the
// suite-test entry point (load runs use RunLoad, which repeats Execute).
func Run(ctx context.Context, s Scenario, c *Client) error {
	sc := c.forScenario(s.Name)
	if s.Setup != nil {
		if err := s.Setup(ctx, sc); err != nil {
			return fmt.Errorf("scenario %s: setup: %w", s.Name, err)
		}
	}
	if err := s.Execute(ctx, sc); err != nil {
		return fmt.Errorf("scenario %s: execute: %w", s.Name, err)
	}
	if s.Verify != nil {
		if err := s.Verify(ctx, sc); err != nil {
			return fmt.Errorf("scenario %s: verify: %w", s.Name, err)
		}
	}
	return nil
}
