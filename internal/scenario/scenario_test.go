package scenario

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"aryn/internal/core"
	"aryn/internal/fault"
	"aryn/internal/llm"
	"aryn/internal/ntsb"
	"aryn/internal/resilience"
	"aryn/internal/server"
	"aryn/internal/server/api"
)

// sharedSys is one system per test binary, ingested lazily by the
// scenarios' own Setup stages (ensureCorpus); tests layer their own
// server configs over it. It carries an inactive fault injector and the
// resilience middleware (short probe interval) so the chaos scenarios run
// in the suite without slowing their recovery checks; with no spec active
// the injector injects nothing and every other scenario behaves as before.
var (
	sharedOnce sync.Once
	sharedSys  *core.System
	sharedInj  *fault.Injector
)

func testSystem(t *testing.T) *core.System {
	t.Helper()
	sharedOnce.Do(func() {
		sharedInj = fault.New(fault.Spec{})
		sharedSys = core.New(core.Config{
			Seed:        7,
			Parallelism: 4,
			Fault:       sharedInj,
			Resilience: &resilience.Options{
				Retry:   resilience.Policy{BaseDelay: 5 * time.Millisecond, MaxDelay: 40 * time.Millisecond},
				Breaker: resilience.BreakerConfig{ProbeInterval: 150 * time.Millisecond},
			},
		})
	})
	return sharedSys
}

// newHarness stands up an in-process arynd (httptest) and a recording
// client sized for -short runs.
func newHarness(t *testing.T, cfg server.Config, params Params) (*Client, *recorder) {
	t.Helper()
	sys := testSystem(t)
	cfg.Fault = sharedInj
	srv := server.New(sys, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	rec := &recorder{}
	c := NewClient(ts.URL, WithRecorder(rec), WithParams(params))
	return c, rec
}

// shortParams keeps scenario executions light for the in-process suite.
func shortParams() Params {
	return Params{IngestDocs: 3, ChatTurns: 2, BurstSize: 4}
}

// TestEveryRegisteredScenario runs every scenario in the registry through
// a full Setup→Execute→Verify pass against an in-process server — the
// suite-level guarantee behind "every registered scenario runs green in
// CI".
func TestEveryRegisteredScenario(t *testing.T) {
	all := All()
	if len(all) < 10 {
		t.Fatalf("registry has %d scenarios, expected the full built-in set", len(all))
	}
	c, rec := newHarness(t, server.Config{}, shortParams())
	ctx := context.Background()
	for _, s := range all {
		t.Run(s.Name, func(t *testing.T) {
			if err := Run(ctx, s, c); err != nil {
				t.Fatalf("scenario %s failed: %v", s.Name, err)
			}
		})
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.obs) == 0 {
		t.Fatal("no observations recorded across the suite")
	}
	for _, o := range rec.obs {
		if o.Scenario == "" || o.Endpoint == "" {
			t.Fatalf("observation missing scenario/endpoint labels: %+v", o)
		}
	}
}

// TestScenariosAreSelfDescribing pins the docs contract: every scenario
// carries the name, description, and paper section that `arynload -list`
// surfaces.
func TestScenariosAreSelfDescribing(t *testing.T) {
	for _, s := range All() {
		if s.Name == "" || s.Description == "" || s.Paper == "" {
			t.Errorf("scenario %+v is not self-describing (need Name, Description, Paper)", s)
		}
		if s.Execute == nil {
			t.Errorf("scenario %s has no Execute stage", s.Name)
		}
	}
	for _, want := range []string{
		"ingest-multi-corpus", "plan-edit-roundtrip", "explain-analyze",
		"chat-session", "chat-expiry", "overload-shed", "query-oneshot",
		"query-stream", "ingest-async",
		"chaos-llm-outage", "chaos-flaky-backend", "chaos-cache-kill",
		"chaos-ingest-saturation",
	} {
		if _, ok := Get(want); !ok {
			t.Errorf("built-in scenario %q missing from the registry", want)
		}
	}
}

// TestStreamFirstPartialBeatsBatch is the acceptance proof for streamed
// execution: against a backend with real per-call latency, the SSE path
// delivers its first partial batch strictly before the batch path's total
// wall for the same plan at the same cache temperature — the LLM cache is
// purged between runs so both pay the full cold cost.
func TestStreamFirstPartialBeatsBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock latency bound")
	}
	ctx := context.Background()
	inj := fault.New(fault.Spec{})
	sys := core.New(core.Config{
		Seed:        11,
		Parallelism: 4,
		LLMMaxBatch: 1,
		LLMOptions:  []llm.SimOption{llm.WithLatency(20 * time.Millisecond)},
		Fault:       inj,
		// Per-document streaming hand-off: the first document to clear the
		// filter reaches the client immediately instead of waiting for a
		// default-sized batch to fill.
		StreamBatch: 1,
	})
	corpus, err := ntsb.GenerateCorpus(32, 9)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Ingest(ctx, blobs); err != nil {
		t.Fatal(err)
	}
	srv := server.New(sys, server.Config{Fault: inj})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := NewClient(ts.URL, WithParams(shortParams()))
	plan := json.RawMessage(streamFilterPlan)

	// Batch-mode wall, cache-cold: 32 llmFilter calls at 20ms each with
	// batching disabled keep it in the hundreds of milliseconds.
	var batch api.QueryResponse
	start := time.Now()
	if _, err := c.PostJSON(ctx, "/v1/query", api.QueryRequest{Plan: plan}, &batch); err != nil {
		t.Fatal(err)
	}
	batchWall := time.Since(start)

	// Purge the response cache so the streamed run pays the same cost.
	if _, err := c.SetFaults(ctx, api.FaultControlRequest{PurgeLLMCache: true}); err != nil {
		t.Fatal(err)
	}

	st, err := c.QueryStream(ctx, api.QueryRequest{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if st.Result.Answer != batch.Answer || st.Result.Docs != batch.Docs {
		t.Fatalf("stream (answer %q, docs %d) != batch (answer %q, docs %d)",
			st.Result.Answer, st.Result.Docs, batch.Answer, batch.Docs)
	}
	if st.Partials == 0 || st.FirstPartial == 0 {
		t.Fatalf("stream carried no partial batches (events %d); nothing pipelined", st.Events)
	}
	if st.FirstPartial >= batchWall {
		t.Errorf("first partial at %s did not beat the %s batch wall", st.FirstPartial, batchWall)
	}
	t.Logf("batch wall %s, stream first partial %s, stream wall %s (%d partials)",
		batchWall, st.FirstPartial, st.Wall, st.Partials)
}

// TestChatExpiryRealTTL proves the expiry scenario detects a real TTL
// eviction against a short-TTL server.
func TestChatExpiryRealTTL(t *testing.T) {
	if testing.Short() {
		t.Skip("TTL wait is wall-clock bound")
	}
	params := shortParams()
	params.TTLWait = 400 * time.Millisecond
	c, _ := newHarness(t, server.Config{SessionTTL: 150 * time.Millisecond}, params)
	s, ok := Get("chat-expiry")
	if !ok {
		t.Fatal("chat-expiry not registered")
	}
	if err := Run(context.Background(), s, c); err != nil {
		t.Fatal(err)
	}
}

// TestOverloadShedAgainstTinyGate drives the overload scenario at a
// 1-slot gate and checks sheds really happen and are recorded as sheds,
// not failures.
func TestOverloadShedAgainstTinyGate(t *testing.T) {
	params := shortParams()
	params.BurstSize = 8
	c, rec := newHarness(t, server.Config{
		MaxInFlight: 1,
		MaxWaiters:  1,
		QueueWait:   20 * time.Millisecond,
	}, params)
	s, _ := Get("overload-shed")
	if err := Run(context.Background(), s, c); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	shed := 0
	for _, o := range rec.obs {
		if o.Failed {
			t.Errorf("overload against a tiny gate must shed, not fail: %+v", o)
		}
		if o.Shed {
			shed++
			if o.Status != http.StatusTooManyRequests {
				t.Errorf("shed observation with status %d", o.Status)
			}
		}
	}
	if shed == 0 {
		t.Error("an 8-burst against 1 slot + 1 waiter should record sheds")
	}
}
