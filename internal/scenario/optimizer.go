package scenario

// Optimizer scenarios: the serving-layer contract of the cost-based
// optimization loop. optimizer-roundtrip walks the loop end to end (plan
// with cost annotations → execute optimized → feedback store grows);
// optimizer-equivalence runs the same plan optimized and unoptimized over
// HTTP and requires identical answers on a stable corpus.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"aryn/internal/server/api"
)

// optimizerPlan is the fixed DAG both scenarios run: full scan → LLM
// predicate → count. Under optimization the predicate becomes a proxy
// cascade, so the plan exercises screening, escalation accounting, and
// the feedback write path in one shot.
const optimizerPlan = `{"nodes":[
  {"id":"n1","op":"queryDatabase"},
  {"id":"n2","op":"llmFilter","question":"Does the report mention an engine problem?","inputs":["n1"]},
  {"id":"n3","op":"count","inputs":["n2"]}],"output":"n3"}`

func optBool(v bool) *bool { return &v }

// optimizerObservations reads the feedback-store observation counter from
// /stats (0 when the optimizer block is absent).
func optimizerObservations(ctx context.Context, c *Client) (int64, error) {
	stats, err := c.Stats(ctx)
	if err != nil {
		return 0, err
	}
	if stats.Optimizer == nil {
		return 0, nil
	}
	return stats.Optimizer.Observations, nil
}

func init() {
	Register(Scenario{
		Name:        "optimizer-roundtrip",
		Description: "Plans with optimize:true, checks the response carries cost-annotated original and optimized plans, executes the optimized plan, and watches the observed costs land in the feedback store",
		Paper:       "§6 (plan optimization), ZenDB/UQE-style cost feedback loop",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			plan := json.RawMessage(optimizerPlan)

			var planned api.PlanResponse
			if _, err := c.PostJSON(ctx, "/plan",
				api.PlanRequest{Plan: plan, Optimize: optBool(true)}, &planned); err != nil {
				return err
			}
			if len(planned.Plan.Optimized) == 0 {
				return fmt.Errorf("optimize:true plan response missing plan.optimized")
			}
			if planned.Plan.Cost == nil || planned.Plan.CostOptimized == nil {
				return fmt.Errorf("plan response missing cost estimates: cost=%v cost_optimized=%v",
					planned.Plan.Cost != nil, planned.Plan.CostOptimized != nil)
			}
			if planned.Plan.CostOptimized.LLMCalls > planned.Plan.Cost.LLMCalls {
				return fmt.Errorf("optimizer estimates MORE LLM calls: %.1f > %.1f",
					planned.Plan.CostOptimized.LLMCalls, planned.Plan.Cost.LLMCalls)
			}
			// The optimized plan must have converted the predicate into a
			// proxy cascade.
			if !planContainsOp(planned.Plan.Optimized, "llmFilterCascade") {
				return fmt.Errorf("optimized plan carries no llmFilterCascade node: %s", planned.Plan.Optimized)
			}

			before, err := optimizerObservations(ctx, c)
			if err != nil {
				return err
			}
			var out api.QueryResponse
			if _, err := c.PostJSON(ctx, "/query",
				api.QueryRequest{Plan: plan, Optimize: optBool(true), IncludePlan: true}, &out); err != nil {
				if errors.Is(err, ErrShed) {
					return nil // saturated server: the loop check needs a served query
				}
				return err
			}
			if out.Plan == nil || len(out.Plan.Optimized) == 0 || len(out.Plan.Executed) == 0 {
				return fmt.Errorf("optimized query response missing plan detail")
			}
			after, err := optimizerObservations(ctx, c)
			if err != nil {
				return err
			}
			if after <= before {
				return fmt.Errorf("feedback store did not grow: %d observations before, %d after", before, after)
			}
			return nil
		},
		Verify: func(ctx context.Context, c *Client) error {
			stats, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			if stats.Optimizer == nil || stats.Optimizer.Observations == 0 {
				return fmt.Errorf("no optimizer observations recorded during the run")
			}
			return nil
		},
	})

	Register(Scenario{
		Name:        "optimizer-equivalence",
		Description: "Executes the same plan with optimize:false and optimize:true over HTTP and requires identical answers and doc counts on a stable corpus",
		Paper:       "§6 (plan optimization must preserve semantics)",
		Setup:       ensureCorpus,
		Execute: func(ctx context.Context, c *Client) error {
			plan := json.RawMessage(optimizerPlan)
			before, err := c.Stats(ctx)
			if err != nil {
				return err
			}

			var plain api.QueryResponse
			if _, err := c.PostJSON(ctx, "/query",
				api.QueryRequest{Plan: plan, Optimize: optBool(false)}, &plain); err != nil {
				return err
			}
			var optimized api.QueryResponse
			if _, err := c.PostJSON(ctx, "/query",
				api.QueryRequest{Plan: plan, Optimize: optBool(true)}, &optimized); err != nil {
				return err
			}

			// Comparable only when no ingest changed the corpus between the
			// two runs (same quiescence rule as the stream/batch cross-check).
			after, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			quiescent := before.Docs == after.Docs &&
				before.Jobs == after.Jobs &&
				after.Jobs.Running == 0
			if quiescent && (plain.Answer != optimized.Answer || plain.Docs != optimized.Docs) {
				return fmt.Errorf("optimized (answer %q, docs %d) != unoptimized (answer %q, docs %d) on a stable corpus",
					optimized.Answer, optimized.Docs, plain.Answer, plain.Docs)
			}
			return nil
		},
		Verify: verifyServed("/query"),
	})
}

// planContainsOp reports whether any node of an encoded plan carries op.
func planContainsOp(plan json.RawMessage, op string) bool {
	var p struct {
		Nodes []struct {
			Op string `json:"op"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(plan, &p); err != nil {
		return false
	}
	for _, n := range p.Nodes {
		if n.Op == op {
			return true
		}
	}
	return false
}
