package scenario

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"aryn/internal/fault"
	"aryn/internal/server/api"
)

// Chaos scenarios script the server's fault injector through /faults and
// assert the degradation contract from docs/fault-injection.md: under any
// injected failure, /query answers 200 (possibly degraded, possibly
// shed), never a 5xx — and once the faults end, the circuit breaker
// closes again within roughly one probe interval.
//
// They require an arynd started with -fault-endpoint (or -fault-spec);
// requireFaults turns a missing endpoint into a clear setup error. The
// chaos mix (ChaosMix) is therefore not part of the default Mixes() set.

// chaosMu serializes the fault-scripting executions: the injector is one
// global dial, so two scenarios rewriting it concurrently would invalidate
// each other's assertions. Executions take it with TryLock — a chaos
// execution launched while another is scripting faults no-ops rather than
// queueing, which keeps load-generator workers from convoying behind
// breaker-recovery waits. Non-chaos background traffic (query-oneshot in
// the chaos mix) keeps running outside the lock — that traffic only relies
// on the contract every spec guarantees, not on which spec is live.
var chaosMu sync.Mutex

// chaosSeq rotates cache-defeating questions for chaos executions, in a
// number range disjoint from the overload-shed burst questions so a chaos
// query can never be answered from another scenario's cache entry.
var chaosSeq atomic.Int64

func chaosQuestion() string {
	return fmt.Sprintf("How many incidents were there in year %d?", 1_000_000+chaosSeq.Add(1))
}

// requireFaults is the shared chaos Setup: the server must expose /faults
// and run the resilience middleware, and needs a corpus so retrieval-only
// fallbacks have something to answer from.
func requireFaults(ctx context.Context, c *Client) error {
	if _, err := c.Faults(ctx); err != nil {
		return fmt.Errorf("chaos scenarios need the /faults endpoint (start arynd with -fault-endpoint): %w", err)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	if stats.Resilience == nil {
		return fmt.Errorf("server reports no resilience stats; chaos recovery cannot be verified")
	}
	return ensureCorpus(ctx, c)
}

// clearFaultsAndRecover is the shared chaos Verify: end injection, then
// prove the recovery half of the contract — probe traffic closes the
// breaker within about one probe interval, after which queries serve
// undegraded, /healthz drops its degraded flag, and /query has never
// answered a 5xx.
func clearFaultsAndRecover(ctx context.Context, c *Client) error {
	if _, err := c.SetFaults(ctx, api.FaultControlRequest{Clear: true}); err != nil {
		return err
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		return err
	}
	if stats.Resilience == nil {
		return fmt.Errorf("server reports no resilience stats; breaker recovery cannot be verified")
	}
	if se := stats.Endpoints["/query"].ServerErrors; se > 0 {
		return fmt.Errorf("/query answered %d server errors under fault injection; the contract is a worse answer, never a 500", se)
	}

	probe := time.Duration(stats.Resilience.Breaker.ProbeIntervalMS) * time.Millisecond
	// One interval for the open circuit to admit probes, a second for a
	// spent probe budget to refresh, plus slack for the probe queries
	// themselves on a loaded CI box.
	deadline := time.Now().Add(2*probe + 10*time.Second)
	pause := probe / 4
	if pause < 10*time.Millisecond {
		pause = 10 * time.Millisecond
	}
	for {
		// Successful traffic is what walks a breaker open → half-open →
		// closed; keep asking until the probes land.
		var out api.QueryResponse
		if _, err := c.PostJSON(ctx, "/query", api.QueryRequest{Question: chaosQuestion()}, &out); err != nil && !errors.Is(err, ErrShed) {
			return fmt.Errorf("recovery query failed: %w", err)
		}
		stats, err = c.Stats(ctx)
		if err != nil {
			return err
		}
		if stats.Resilience.Breaker.State == "closed" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("breaker still %s after faults cleared (probe interval %s)",
				stats.Resilience.Breaker.State, probe)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(pause):
		}
	}

	// Closed breaker: a fresh query must serve undegraded and health must
	// be back to plain ok.
	var out api.QueryResponse
	if _, err := c.PostJSON(ctx, "/query", api.QueryRequest{Question: chaosQuestion()}, &out); err != nil {
		if errors.Is(err, ErrShed) {
			return nil
		}
		return err
	}
	if out.Degraded {
		return fmt.Errorf("query still degraded after the breaker closed: %s", out.DegradedReason)
	}
	h, err := c.Healthz(ctx)
	if err != nil {
		return err
	}
	if h["status"] != "ok" {
		return fmt.Errorf("/healthz still reports %v after recovery", h["status"])
	}
	return nil
}

func init() {
	Register(Scenario{
		Name:        "chaos-llm-outage",
		Description: "Scripts a total LLM outage mid-run and checks /query keeps answering 200 with degraded retrieval-only answers, then that the breaker closes within a probe interval of the outage ending",
		Paper:       "robustness: degraded-mode serving, circuit-breaker recovery",
		Setup:       requireFaults,
		Execute: func(ctx context.Context, c *Client) error {
			if !chaosMu.TryLock() {
				return nil // another execution is scripting faults; skip
			}
			defer chaosMu.Unlock()
			// Start from a steady state: a breaker left open by an earlier
			// chaos execution would hide whether THIS outage opens it.
			if err := clearFaultsAndRecover(ctx, c); err != nil {
				return err
			}
			stats, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			opensBefore := int64(0)
			if stats.Resilience != nil {
				opensBefore = stats.Resilience.Breaker.Opens
			}
			// Outage windows re-anchor to now on every Set, so the whole
			// execution happens inside a dead-backend world.
			if _, err := c.SetFaults(ctx, api.FaultControlRequest{Spec: &fault.Spec{
				Seed:    11,
				Outages: []fault.Window{{StartMS: 0, EndMS: 120_000}},
			}}); err != nil {
				return err
			}
			sawDegraded := false
			// Enough uncached queries to walk the breaker past its failure
			// threshold: the outage hint suppresses in-call retries, so each
			// query contributes one breaker failure until the circuit opens.
			for i := 0; i < 7; i++ {
				var out api.QueryResponse
				_, err := c.PostJSON(ctx, "/query", api.QueryRequest{Question: chaosQuestion()}, &out)
				if errors.Is(err, ErrShed) {
					continue
				}
				if err != nil {
					return fmt.Errorf("query during a total outage must degrade, not fail: %w", err)
				}
				if !out.Degraded {
					return fmt.Errorf("query during a total outage answered undegraded (%q)", out.Answer)
				}
				if out.Kind != "retrieval-only" || out.Answer == "" || out.DegradedReason == "" {
					return fmt.Errorf("degraded answer contract violated: kind=%q reason=%q empty-answer=%v",
						out.Kind, out.DegradedReason, out.Answer == "")
				}
				sawDegraded = true
			}
			if !sawDegraded {
				return fmt.Errorf("every outage query was shed; nothing exercised the degraded path")
			}
			stats, err = c.Stats(ctx)
			if err != nil {
				return err
			}
			if stats.Resilience != nil && stats.Resilience.Breaker.Opens <= opensBefore {
				return fmt.Errorf("breaker never opened across a sustained total outage")
			}
			// End the dead-backend world so concurrent background traffic
			// isn't left degrading for the scripted 120s; the breaker may
			// stay open until Verify (or the next steady-state reset)
			// walks it closed.
			_, err = c.SetFaults(ctx, api.FaultControlRequest{Clear: true})
			return err
		},
		Verify: clearFaultsAndRecover,
	})

	Register(Scenario{
		Name:        "chaos-flaky-backend",
		Description: "Runs sustained traffic against a backend failing a third of its calls and checks retries absorb the flakiness into served answers, never 5xx responses",
		Paper:       "robustness: jittered retry middleware under sustained partial failure",
		Setup:       requireFaults,
		Execute: func(ctx context.Context, c *Client) error {
			if !chaosMu.TryLock() {
				return nil // another execution is scripting faults; skip
			}
			defer chaosMu.Unlock()
			// Start from a steady state: with the breaker open (from an
			// earlier chaos execution) queries short-circuit without ever
			// reaching the retry loop this scenario asserts on.
			if err := clearFaultsAndRecover(ctx, c); err != nil {
				return err
			}
			stats, err := c.Stats(ctx)
			if err != nil {
				return err
			}
			retriesBefore := int64(0)
			if stats.Resilience != nil {
				retriesBefore = stats.Resilience.Retries
			}
			if _, err := c.SetFaults(ctx, api.FaultControlRequest{Spec: &fault.Spec{
				Seed:         13,
				ErrorRate:    0.35,
				RetryAfterMS: 5,
				LatencyMS:    10,
				LatencyRate:  0.2,
			}}); err != nil {
				return err
			}
			// Loop until the middleware has demonstrably retried (bounded:
			// at 0.35 error rate a handful of multi-call queries is plenty).
			for i := 0; i < 20; i++ {
				var out api.QueryResponse
				_, err := c.PostJSON(ctx, "/query", api.QueryRequest{Question: chaosQuestion()}, &out)
				if errors.Is(err, ErrShed) {
					continue
				}
				if err != nil {
					return fmt.Errorf("flaky backend must be absorbed or degraded, not failed: %w", err)
				}
				if out.Answer == "" {
					return fmt.Errorf("flaky-backend query served an empty answer")
				}
				stats, err = c.Stats(ctx)
				if err != nil {
					return err
				}
				if stats.Resilience != nil && stats.Resilience.Retries > retriesBefore {
					// Retries demonstrated; stop injecting before releasing
					// the lock so background traffic runs clean.
					_, err = c.SetFaults(ctx, api.FaultControlRequest{Clear: true})
					return err
				}
			}
			return fmt.Errorf("no middleware retries recorded across 20 queries at 35%% injected error rate")
		},
		Verify: clearFaultsAndRecover,
	})

	Register(Scenario{
		Name:        "chaos-cache-kill",
		Description: "Answers a query, purges the whole LLM response cache mid-run, and checks the re-asked query still serves — with the same answer when both runs reach the model",
		Paper:       "robustness: cache loss is a latency event, not a correctness event",
		Setup:       requireFaults,
		Execute: func(ctx context.Context, c *Client) error {
			if !chaosMu.TryLock() {
				return nil // another execution is scripting faults; skip
			}
			defer chaosMu.Unlock()
			// This scenario is about losing the cache, not the backend:
			// recover to a closed breaker so both queries reach the model
			// and the answers-match assertion has teeth.
			if err := clearFaultsAndRecover(ctx, c); err != nil {
				return err
			}
			q := chaosQuestion()
			var first api.QueryResponse
			_, err := c.PostJSON(ctx, "/query", api.QueryRequest{Question: q}, &first)
			if errors.Is(err, ErrShed) {
				return nil
			}
			if err != nil {
				return err
			}
			state, err := c.SetFaults(ctx, api.FaultControlRequest{PurgeLLMCache: true})
			if err != nil {
				return err
			}
			// An undegraded answer went through the model, so the purge must
			// have found its cache entries.
			if !first.Degraded && state.PurgedCacheEntries == 0 {
				return fmt.Errorf("purge after an uncached query dropped 0 entries")
			}
			var second api.QueryResponse
			_, err = c.PostJSON(ctx, "/query", api.QueryRequest{Question: q}, &second)
			if errors.Is(err, ErrShed) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("re-query after cache purge failed: %w", err)
			}
			// The sim backend is deterministic: when neither run degraded
			// (the breaker can still be recovering from an earlier chaos
			// execution), cache loss must not change the answer.
			if !first.Degraded && !second.Degraded && first.Answer != second.Answer {
				return fmt.Errorf("answer changed across a cache purge: %q → %q", first.Answer, second.Answer)
			}
			return nil
		},
		Verify: clearFaultsAndRecover,
	})

	Register(Scenario{
		Name:        "chaos-ingest-saturation",
		Description: "Ingests a corpus while pipeline-stage faults and latency are injected, accepting success, exclusivity 409s, or clean 503s — and checks queries still serve alongside",
		Paper:       "robustness: ingest-path fault hooks + stage retries with backoff",
		Setup:       requireFaults,
		Execute: func(ctx context.Context, c *Client) error {
			if !chaosMu.TryLock() {
				return nil // another execution is scripting faults; skip
			}
			defer chaosMu.Unlock()
			if _, err := c.SetFaults(ctx, api.FaultControlRequest{Spec: &fault.Spec{
				Seed:        17,
				OpErrorRate: 0.25,
				OpLatencyMS: 2,
			}}); err != nil {
				return err
			}
			seed := 50_000 + chaosSeq.Add(1)
			// Saturated-ingest outcomes: landed (200), lost the exclusivity
			// race (409), or cleanly refused after stage retries exhausted
			// (503). A 500 is the only failure.
			_, err := c.PostJSON(ctx, "/ingest",
				api.IngestRequest{Docs: c.Params.IngestDocs, Seed: seed}, nil,
				http.StatusOK, http.StatusConflict, http.StatusServiceUnavailable)
			if err != nil && !errors.Is(err, ErrShed) {
				return err
			}
			// Query traffic must keep serving while ingest churns.
			var out api.QueryResponse
			_, err = c.PostJSON(ctx, "/query", api.QueryRequest{Question: chaosQuestion()}, &out)
			if errors.Is(err, ErrShed) {
				return nil
			}
			if err != nil {
				return fmt.Errorf("query during saturated ingest failed: %w", err)
			}
			if out.Answer == "" {
				return fmt.Errorf("query during saturated ingest served an empty answer")
			}
			_, err = c.SetFaults(ctx, api.FaultControlRequest{Clear: true})
			return err
		},
		Verify: func(ctx context.Context, c *Client) error {
			n, err := storeDocs(ctx, c)
			if err != nil {
				return err
			}
			if n == 0 {
				return fmt.Errorf("no documents in the store after saturated ingest runs")
			}
			return clearFaultsAndRecover(ctx, c)
		},
	})
}
