package scenario

import (
	"context"
	"testing"
	"time"

	"aryn/internal/server"
)

// TestRunLoadMixedScenarios drives every standard mix through RunLoad
// against an in-process server. MaxExecutions (not Duration) bounds the
// run so the test is load-shaped but time-independent; `make test` runs
// it under -race, which is the concurrency check the ISSUE calls for.
func TestRunLoadMixedScenarios(t *testing.T) {
	params := shortParams()
	params.BurstSize = 2
	c, _ := newHarness(t, server.Config{}, params)
	ctx := context.Background()
	for _, mix := range Mixes() {
		t.Run(mix.Name, func(t *testing.T) {
			report, err := RunLoad(ctx, c, mix, LoadOptions{
				QPS:           500,
				Duration:      time.Minute, // MaxExecutions stops the run first
				MaxExecutions: 12,
				Workers:       4,
				Seed:          1,
			})
			if err != nil {
				t.Fatalf("mix %s: %v", mix.Name, err)
			}
			if report.Mix != mix.Name {
				t.Errorf("report.Mix = %q, want %q", report.Mix, mix.Name)
			}
			if report.Executions == 0 || report.Requests == 0 {
				t.Errorf("mix %s produced no traffic: %+v", mix.Name, report)
			}
			if report.FailedExecs > 0 || report.Failed > 0 {
				t.Errorf("mix %s had failures in-process: %+v", mix.Name, report)
			}
			if report.Requests > 0 && report.P99MS < report.P50MS {
				t.Errorf("mix %s percentiles not monotone: p50 %.2f > p99 %.2f",
					mix.Name, report.P50MS, report.P99MS)
			}
			if report.CacheHits+report.CacheMisses == 0 {
				t.Errorf("mix %s recorded no cache lookups — /stats delta wiring is broken", mix.Name)
			}
		})
	}
}

// TestRunLoadRejectsUnknownScenario pins that a bad mix is a
// configuration error, reported before any load starts.
func TestRunLoadRejectsUnknownScenario(t *testing.T) {
	c, _ := newHarness(t, server.Config{}, shortParams())
	_, err := RunLoad(context.Background(), c, Mix{
		Name:    "bogus",
		Weights: map[string]int{"no-such-scenario": 1},
	}, LoadOptions{MaxExecutions: 1})
	if err == nil {
		t.Fatal("mix referencing an unknown scenario must fail fast")
	}
}

func TestPercentile(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 0.99, 0},
		{"single", []float64{5}, 0.50, 5},
		{"p50 of 4", []float64{1, 2, 3, 4}, 0.50, 2},
		{"p99 of 4", []float64{1, 2, 3, 4}, 0.99, 4},
		{"p95 of 100", seq(100), 0.95, 95},
		{"p99 of 100", seq(100), 0.99, 99},
		{"p50 of 100", seq(100), 0.50, 50},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(..., %v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
}

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

func TestSLOCheck(t *testing.T) {
	slo := SLO{P99: 100 * time.Millisecond, MaxShedRate: 0.01, MaxErrorRate: 0}
	good := &Report{P99MS: 80, ShedRate: 0.005, ErrorRate: 0}
	if v := slo.Check(good); len(v) != 0 {
		t.Errorf("clean report flagged: %v", v)
	}
	bad := &Report{P99MS: 250, ShedRate: 0.5, ErrorRate: 0.1}
	if v := slo.Check(bad); len(v) != 3 {
		t.Errorf("want 3 violations, got %d: %v", len(v), v)
	}
	// Zero-valued P99 means unconstrained, and MaxShedRate 1.0 tolerates
	// total shedding (the overload mix's contract).
	open := SLO{MaxShedRate: 1.0, MaxErrorRate: 0.01}
	if v := open.Check(&Report{P99MS: 9999, ShedRate: 1.0, ErrorRate: 0.01}); len(v) != 0 {
		t.Errorf("unconstrained SLO flagged: %v", v)
	}
}

// TestAggregate checks the observation→report fold: counts, rates, and
// the server-side cache delta.
func TestAggregate(t *testing.T) {
	obs := []Observation{
		{Latency: 10 * time.Millisecond},
		{Latency: 20 * time.Millisecond, Shed: true},
		{Latency: 30 * time.Millisecond, Failed: true},
		{Latency: 40 * time.Millisecond},
	}
	before := &server.StatsResponse{}
	after := &server.StatsResponse{}
	before.LLM.Cache.Hits, before.LLM.Cache.Misses = 10, 5
	after.LLM.Cache.Hits, after.LLM.Cache.Misses = 40, 15
	r := aggregate("m", obs, 2*time.Second, 2, before, after)
	if r.Requests != 4 || r.Shed != 1 || r.Failed != 1 {
		t.Errorf("counts wrong: %+v", r)
	}
	if r.ShedRate != 0.25 || r.ErrorRate != 0.25 {
		t.Errorf("rates wrong: shed %v err %v", r.ShedRate, r.ErrorRate)
	}
	if r.CacheHits != 30 || r.CacheMisses != 10 || r.CacheHitRate != 0.75 {
		t.Errorf("cache delta wrong: %+v", r)
	}
	if r.AchievedQPS != 2 {
		t.Errorf("achieved qps = %v, want 2", r.AchievedQPS)
	}
	if r.MaxMS != 40 {
		t.Errorf("max = %v, want 40", r.MaxMS)
	}
}
