package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"aryn/internal/server/api"
)

// Mix is a named, weighted blend of scenarios plus the SLO its load
// report is checked against.
type Mix struct {
	Name        string         `json:"name"`
	Description string         `json:"description"`
	Weights     map[string]int `json:"weights"`
	SLO         SLO            `json:"slo"`
}

// SLO is the contract a mix's Report must meet (documented in
// docs/serving-slos.md). Zero-valued fields are unconstrained.
type SLO struct {
	// P99 bounds the 99th-percentile per-request latency.
	P99 time.Duration `json:"p99_ns,omitempty"`
	// MaxShedRate bounds the shed fraction of requests (1.0 = shedding is
	// itself the expected behavior, as in the overload mix).
	MaxShedRate float64 `json:"max_shed_rate"`
	// MaxErrorRate bounds the failed fraction of requests.
	MaxErrorRate float64 `json:"max_error_rate"`
	// TTFE bounds the 95th-percentile time-to-first-event across streamed
	// requests — the streaming path's own latency promise: how long until
	// the client sees the first sign of life. Zero = unconstrained (mixes
	// without streaming scenarios).
	TTFE time.Duration `json:"ttfe_p95_ns,omitempty"`
}

// Check returns every SLO violation in r (empty = the report meets the
// contract).
func (s SLO) Check(r *Report) []string {
	var v []string
	if s.P99 > 0 && r.P99MS > float64(s.P99.Milliseconds()) {
		v = append(v, fmt.Sprintf("p99 %.1fms exceeds the %s target", r.P99MS, s.P99))
	}
	if r.ShedRate > s.MaxShedRate {
		v = append(v, fmt.Sprintf("shed rate %.3f exceeds the %.3f target", r.ShedRate, s.MaxShedRate))
	}
	if r.ErrorRate > s.MaxErrorRate {
		v = append(v, fmt.Sprintf("error rate %.3f exceeds the %.3f target", r.ErrorRate, s.MaxErrorRate))
	}
	if s.TTFE > 0 {
		if r.StreamRequests == 0 {
			v = append(v, "mix pins a TTFE SLO but the run made no streamed requests")
		} else if r.TTFEP95MS > float64(s.TTFE.Milliseconds()) {
			v = append(v, fmt.Sprintf("stream TTFE p95 %.1fms exceeds the %s target", r.TTFEP95MS, s.TTFE))
		}
	}
	return v
}

// Mixes returns the standard benchmark mixes — the ≥3 workload blends
// `make bench-serving` reports on. SLO targets are documented and
// justified in docs/serving-slos.md; change them there and here together.
func Mixes() []Mix {
	return []Mix{
		{
			Name:        "read-heavy",
			Description: "Steady-state analytics traffic: mostly one-shot queries with occasional plan inspection — the cache-warm serving fast path",
			Weights: map[string]int{
				"query-oneshot":       6,
				"plan-edit-roundtrip": 1,
				"explain-analyze":     1,
			},
			SLO: SLO{P99: 1500 * time.Millisecond, MaxShedRate: 0.01, MaxErrorRate: 0},
		},
		{
			Name:        "interactive",
			Description: "Analyst sessions: conversational follow-ups, plan edit round-trips, and session-lifecycle checks alongside background reads",
			Weights: map[string]int{
				"chat-session":        3,
				"plan-edit-roundtrip": 2,
				"query-oneshot":       2,
				"chat-expiry":         1,
			},
			SLO: SLO{P99: 2500 * time.Millisecond, MaxShedRate: 0.02, MaxErrorRate: 0},
		},
		{
			Name:        "overload-burst",
			Description: "Hostile load: cache-defeating query bursts and concurrent ingests on top of reads — the mix that must shed gracefully, not collapse",
			Weights: map[string]int{
				"query-oneshot":       4,
				"overload-shed":       2,
				"ingest-multi-corpus": 1,
			},
			SLO: SLO{P99: 6 * time.Second, MaxShedRate: 1.0, MaxErrorRate: 0.01},
		},
		{
			Name:        "stream",
			Description: "Streaming-first clients: SSE queries with a time-to-first-event promise, async ingest jobs churning behind the read path, and plain reads in between",
			Weights: map[string]int{
				"query-stream":  4,
				"query-oneshot": 2,
				"ingest-async":  1,
			},
			// Sheds come from the bounded job queue under sustained async
			// submissions — expected back-pressure, not failure. The TTFE
			// bound is the streaming path's own SLO: first event well before
			// the full answer would have arrived.
			SLO: SLO{P99: 5 * time.Second, MaxShedRate: 0.75, MaxErrorRate: 0, TTFE: 1500 * time.Millisecond},
		},
	}
}

// ChaosMix is the fault-injection blend: chaos scenarios scripting the
// injector under background read traffic. It is not part of Mixes()
// because it needs an arynd started with -fault-endpoint; run it
// explicitly with `arynload -mixes chaos` (the CI chaos job does). The
// error-rate SLO is the degradation contract itself: injected faults must
// degrade or shed, never fail a request.
func ChaosMix() Mix {
	return Mix{
		Name:        "chaos",
		Description: "Fault injection under load: scripted LLM outages, a sustained flaky backend, cache kills, and saturated ingest on top of steady reads — the mix that must degrade, never 500",
		Weights: map[string]int{
			"chaos-llm-outage":        1,
			"chaos-flaky-backend":     2,
			"chaos-cache-kill":        1,
			"chaos-ingest-saturation": 1,
			"query-oneshot":           3,
		},
		SLO: SLO{P99: 10 * time.Second, MaxShedRate: 1.0, MaxErrorRate: 0},
	}
}

// MixByName resolves one of the standard mixes, or the opt-in chaos mix.
func MixByName(name string) (Mix, bool) {
	for _, m := range append(Mixes(), ChaosMix()) {
		if m.Name == name {
			return m, true
		}
	}
	return Mix{}, false
}

// LoadOptions tunes one RunLoad call. Zero values pick defaults.
type LoadOptions struct {
	// QPS is the target scenario-execution launch rate (default 10).
	QPS float64
	// Duration stops the run after this long (default 5s).
	Duration time.Duration
	// MaxExecutions, when positive, stops the run after that many
	// executions even if Duration has not elapsed (tests use this to stay
	// time-independent).
	MaxExecutions int
	// Workers bounds concurrently running executions (default 8). When
	// all workers are busy a tick is skipped and counted, not queued —
	// the generator degrades openly instead of silently lagging its rate.
	Workers int
	// Seed drives the weighted scenario picker (default 1).
	Seed int64
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.QPS <= 0 {
		o.QPS = 10
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Report is one mix's aggregated load measurement — the unit
// BENCH_serving.json records per label.
type Report struct {
	Mix         string  `json:"mix"`
	Executions  int     `json:"executions"`
	ShedExecs   int     `json:"shed_executions"`
	FailedExecs int     `json:"failed_executions"`
	Skipped     int     `json:"skipped_ticks,omitempty"`
	Requests    int     `json:"requests"`
	Failed      int     `json:"failed_requests"`
	Shed        int     `json:"shed_requests"`
	DurationMS  float64 `json:"duration_ms"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`

	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`

	// Stream figures cover SSE requests only: how many there were and the
	// time-to-first-event distribution (the pinned streaming SLO). Zero
	// when the mix contains no streaming scenario.
	StreamRequests int     `json:"stream_requests,omitempty"`
	TTFEP50MS      float64 `json:"ttfe_p50_ms,omitempty"`
	TTFEP95MS      float64 `json:"ttfe_p95_ms,omitempty"`
	TTFEMaxMS      float64 `json:"ttfe_max_ms,omitempty"`

	ErrorRate float64 `json:"error_rate"`
	ShedRate  float64 `json:"shed_rate"`

	// Cache figures come from the server's /stats delta over the run: the
	// LLM response cache is a serving-level resource, so its hit-rate is
	// measured server-side, not inferred client-side.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// recorder collects observations under a mutex.
type recorder struct {
	mu  sync.Mutex
	obs []Observation
}

func (r *recorder) Observe(o Observation) {
	r.mu.Lock()
	r.obs = append(r.obs, o)
	r.mu.Unlock()
}

// RunLoad drives mix against the server behind c at opt.QPS until
// opt.Duration (or opt.MaxExecutions) and returns the aggregated Report.
// Each scenario's Setup runs once before load starts and its Verify once
// after it stops; a Verify failure fails the run.
func RunLoad(ctx context.Context, c *Client, mix Mix, opt LoadOptions) (*Report, error) {
	opt = opt.withDefaults()
	if len(mix.Weights) == 0 {
		return nil, fmt.Errorf("scenario: mix %q has no weights", mix.Name)
	}

	// Resolve the weighted scenario list up front: unknown names are
	// configuration errors, not runtime surprises.
	var picks []Scenario
	names := make([]string, 0, len(mix.Weights))
	for name := range mix.Weights {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("scenario: mix %q references unknown scenario %q", mix.Name, name)
		}
		for i := 0; i < mix.Weights[name]; i++ {
			picks = append(picks, s)
		}
	}

	for _, name := range names {
		s, _ := Get(name)
		if s.Setup != nil {
			if err := s.Setup(ctx, c.forScenario(s.Name)); err != nil {
				return nil, fmt.Errorf("scenario %s: setup: %w", s.Name, err)
			}
		}
	}

	statsBefore, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("scenario: read /stats before load: %w", err)
	}

	rec := &recorder{}
	loadClient := c.withRecorder(rec)
	rng := rand.New(rand.NewSource(opt.Seed))
	interval := time.Duration(float64(time.Second) / opt.QPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(opt.Duration)
	defer deadline.Stop()

	sem := make(chan struct{}, opt.Workers)
	var wg sync.WaitGroup
	var execs, shedExecs, failedExecs, skipped int
	start := time.Now()
	var mu sync.Mutex // guards shedExecs/failedExecs from worker goroutines

loop:
	for opt.MaxExecutions <= 0 || execs < opt.MaxExecutions {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
		}
		s := picks[rng.Intn(len(picks))]
		select {
		case sem <- struct{}{}:
		default:
			skipped++
			continue
		}
		execs++
		wg.Add(1)
		go func(s Scenario) {
			defer wg.Done()
			defer func() { <-sem }()
			err := s.Execute(ctx, loadClient.forScenario(s.Name))
			if err == nil {
				return
			}
			mu.Lock()
			if errors.Is(err, ErrShed) {
				shedExecs++
			} else {
				failedExecs++
			}
			mu.Unlock()
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var verifyErrs []error
	for _, name := range names {
		s, _ := Get(name)
		if s.Verify != nil {
			if err := s.Verify(ctx, c.forScenario(s.Name)); err != nil {
				verifyErrs = append(verifyErrs, fmt.Errorf("scenario %s: verify: %w", s.Name, err))
			}
		}
	}

	statsAfter, err := c.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("scenario: read /stats after load: %w", err)
	}

	report := aggregate(mix.Name, rec.obs, elapsed, opt.QPS, statsBefore, statsAfter)
	report.Executions = execs
	report.ShedExecs = shedExecs
	report.FailedExecs = failedExecs
	report.Skipped = skipped
	return report, errors.Join(verifyErrs...)
}

// aggregate folds per-request observations and the server-side stats
// delta into a Report.
func aggregate(mixName string, obs []Observation, elapsed time.Duration, targetQPS float64, before, after *api.StatsResponse) *Report {
	r := &Report{
		Mix:        mixName,
		Requests:   len(obs),
		DurationMS: float64(elapsed.Milliseconds()),
		TargetQPS:  targetQPS,
	}
	if elapsed > 0 {
		r.AchievedQPS = round2(float64(len(obs)) / elapsed.Seconds())
	}
	latencies := make([]float64, 0, len(obs))
	var ttfes []float64
	for _, o := range obs {
		latencies = append(latencies, float64(o.Latency.Microseconds())/1000)
		if o.FirstEvent > 0 {
			ttfes = append(ttfes, float64(o.FirstEvent.Microseconds())/1000)
		}
		if o.Shed {
			r.Shed++
		}
		if o.Failed {
			r.Failed++
		}
	}
	sort.Float64s(latencies)
	r.P50MS = percentile(latencies, 0.50)
	r.P95MS = percentile(latencies, 0.95)
	r.P99MS = percentile(latencies, 0.99)
	if n := len(latencies); n > 0 {
		r.MaxMS = latencies[n-1]
	}
	sort.Float64s(ttfes)
	r.StreamRequests = len(ttfes)
	r.TTFEP50MS = percentile(ttfes, 0.50)
	r.TTFEP95MS = percentile(ttfes, 0.95)
	if n := len(ttfes); n > 0 {
		r.TTFEMaxMS = ttfes[n-1]
	}
	if len(obs) > 0 {
		r.ErrorRate = round4(float64(r.Failed) / float64(len(obs)))
		r.ShedRate = round4(float64(r.Shed) / float64(len(obs)))
	}
	if before != nil && after != nil {
		r.CacheHits = after.LLM.Cache.Hits - before.LLM.Cache.Hits
		r.CacheMisses = after.LLM.Cache.Misses - before.LLM.Cache.Misses
		if lookups := r.CacheHits + r.CacheMisses; lookups > 0 {
			r.CacheHitRate = round4(float64(r.CacheHits) / float64(lookups))
		}
	}
	return r
}

// percentile reads the p-quantile from sorted (nearest-rank; 0 when
// empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return round2(sorted[idx])
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }
