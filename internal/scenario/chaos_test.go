package scenario

import (
	"context"
	"testing"
	"time"

	"aryn/internal/server"
)

// TestRunLoadChaosMix drives the opt-in chaos mix through RunLoad against
// the in-process harness (whose injector is wired and exposed). The mix's
// SLO is the degradation contract: fault-scripting executions and the
// background one-shot queries they sabotage must all complete without a
// single failed request — degraded 200s, never 500s.
func TestRunLoadChaosMix(t *testing.T) {
	c, _ := newHarness(t, server.Config{Fault: sharedInj}, shortParams())
	mix := ChaosMix()
	report, err := RunLoad(context.Background(), c, mix, LoadOptions{
		QPS:           200,
		Duration:      time.Minute, // MaxExecutions stops the run first
		MaxExecutions: 8,
		Workers:       2,
		Seed:          1,
	})
	if err != nil {
		t.Fatalf("chaos mix: %v", err)
	}
	if report.Executions == 0 || report.Requests == 0 {
		t.Fatalf("chaos mix produced no traffic: %+v", report)
	}
	if report.FailedExecs > 0 || report.Failed > 0 {
		t.Errorf("chaos mix had failures: %+v — the contract is degraded answers, never errors", report)
	}
	if mix.SLO.MaxErrorRate == 0 && report.ErrorRate > 0 {
		t.Errorf("error rate %.4f violates the chaos SLO of zero", report.ErrorRate)
	}
}

// TestChaosMixIsOptIn pins that chaos stays out of the default mix list
// (it needs a -fault-endpoint server) while remaining resolvable by name.
func TestChaosMixIsOptIn(t *testing.T) {
	for _, m := range Mixes() {
		if m.Name == "chaos" {
			t.Fatal("chaos mix must not be part of the default Mixes()")
		}
	}
	m, ok := MixByName("chaos")
	if !ok {
		t.Fatal("chaos mix not resolvable by name")
	}
	for name := range m.Weights {
		if _, ok := Get(name); !ok {
			t.Errorf("chaos mix references unregistered scenario %q", name)
		}
	}
}
