package scenario

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aryn/internal/server/api"
)

// Observation is one recorded HTTP request issued by a scenario.
type Observation struct {
	Scenario string
	Endpoint string
	Status   int
	Latency  time.Duration
	// Shed marks a 429 — the server refusing work by contract, tracked
	// separately from failures.
	Shed bool
	// Failed marks a transport error or a status the scenario did not
	// accept.
	Failed bool
	// FirstEvent is the time to the first SSE event on a streamed request
	// (zero on plain requests). It is the raw material for the stream
	// mixes' time-to-first-event SLO.
	FirstEvent time.Duration
}

// Recorder receives every Observation a Client makes. Implementations
// must be safe for concurrent Observe calls.
type Recorder interface {
	Observe(Observation)
}

// ErrShed is returned by Client calls when the server sheds the request
// with 429. Scenarios abort the rest of their execution on it; the load
// runner counts the execution as shed, not failed.
var ErrShed = errors.New("scenario: request shed (429)")

// Params tunes how heavy one scenario execution is. Zero values pick
// defaults suited to a live benchmark run; tests shrink them.
type Params struct {
	// IngestDocs is the synthetic-corpus size ingest-flavored scenarios
	// load per corpus (default 8).
	IngestDocs int
	// ChatTurns is how many follow-up turns a conversational execution
	// plays (default 3).
	ChatTurns int
	// BurstSize is how many concurrent requests the overload scenario
	// fires per execution (default 8).
	BurstSize int
	// TTLWait, when positive, makes the chat-expiry scenario wait this
	// long for a real TTL eviction (only sensible against a server with a
	// short SessionTTL; load runs leave it zero and check the
	// unknown-session contract instead).
	TTLWait time.Duration
}

func (p Params) withDefaults() Params {
	if p.IngestDocs <= 0 {
		p.IngestDocs = 8
	}
	if p.ChatTurns <= 0 {
		p.ChatTurns = 3
	}
	if p.BurstSize <= 0 {
		p.BurstSize = 8
	}
	return p
}

// Client drives one arynd over HTTP, recording every request it makes.
// The zero Recorder discards; the load runner installs a collecting one.
type Client struct {
	base     string
	hc       *http.Client
	rec      Recorder
	scenario string
	Params   Params
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRecorder installs r as the observation sink.
func WithRecorder(r Recorder) ClientOption { return func(c *Client) { c.rec = r } }

// WithHTTPClient substitutes the underlying http.Client (timeouts,
// transports).
func WithHTTPClient(hc *http.Client) ClientOption { return func(c *Client) { c.hc = hc } }

// WithParams sets the scenario sizing knobs.
func WithParams(p Params) ClientOption { return func(c *Client) { c.Params = p } }

// NewClient returns a client for the arynd at base (e.g.
// "http://127.0.0.1:8088").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base: base,
		hc:   &http.Client{Timeout: 2 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	c.Params = c.Params.withDefaults()
	return c
}

// forScenario returns a shallow copy that labels observations with name.
func (c *Client) forScenario(name string) *Client {
	cc := *c
	cc.scenario = name
	return &cc
}

// withRecorder returns a shallow copy observing into r.
func (c *Client) withRecorder(r Recorder) *Client {
	cc := *c
	cc.rec = r
	return &cc
}

// WaitReady polls /healthz until the server answers or timeout elapses.
func (c *Client) WaitReady(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		reqCtx, cancel := context.WithTimeout(ctx, time.Second)
		req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, c.base+"/healthz", nil)
		if err != nil {
			cancel()
			return err
		}
		resp, err := c.hc.Do(req)
		cancel()
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("scenario: server at %s not healthy after %s", c.base, timeout)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// Stats fetches the /stats snapshot (typed against the server's api
// package, so the harness breaks at compile time if the wire shape
// drifts).
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if _, err := c.do(ctx, http.MethodGet, "/stats", nil, &out, http.StatusOK); err != nil {
		return nil, err
	}
	return &out, nil
}

// Faults fetches the /faults injector state. Servers started without the
// chaos endpoint (no -fault-endpoint) answer 404, which surfaces here as
// an error — chaos scenarios turn that into a clear setup failure.
func (c *Client) Faults(ctx context.Context) (*api.FaultStateResponse, error) {
	var out api.FaultStateResponse
	if _, err := c.do(ctx, http.MethodGet, "/faults", nil, &out, http.StatusOK); err != nil {
		return nil, err
	}
	return &out, nil
}

// SetFaults posts a fault-control request (activate a spec, clear
// injection, purge the LLM cache) and returns the resulting injector
// state.
func (c *Client) SetFaults(ctx context.Context, req api.FaultControlRequest) (*api.FaultStateResponse, error) {
	var out api.FaultStateResponse
	if _, err := c.do(ctx, http.MethodPost, "/faults", req, &out, http.StatusOK); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the /healthz snapshot as a generic map.
func (c *Client) Healthz(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if _, err := c.do(ctx, http.MethodGet, "/healthz", nil, &out, http.StatusOK); err != nil {
		return nil, err
	}
	return out, nil
}

// PostJSON posts body to path and decodes a 2xx response into out (out
// may be nil). Statuses listed in accept (default: 200 only) satisfy the
// call; a 429 anywhere returns ErrShed; anything else is a failure. The
// status actually received is returned either way.
func (c *Client) PostJSON(ctx context.Context, path string, body, out any, accept ...int) (int, error) {
	return c.do(ctx, http.MethodPost, path, body, out, accept...)
}

// GetJSON fetches path and decodes the response into out, under the same
// accept/shed contract as PostJSON. Scenarios use it to poll job
// resources.
func (c *Client) GetJSON(ctx context.Context, path string, out any, accept ...int) (int, error) {
	return c.do(ctx, http.MethodGet, path, nil, out, accept...)
}

// StreamResult summarizes one streamed query: the terminal result plus
// the streaming-specific measurements (time to first event / first
// partial batch) the batch path has no equivalent for.
type StreamResult struct {
	// Result is the terminal result event's payload — identical in shape
	// and content to a batch POST /query response for the same request.
	Result api.QueryResponse
	// Events counts every SSE event on the stream; Partials counts the
	// partial-batch events among them, and PartialDocs sums the documents
	// they carried.
	Events      int
	Partials    int
	PartialDocs int
	// FirstEvent and FirstPartial are offsets from the request start;
	// FirstPartial is zero when the plan produced no output documents.
	FirstEvent   time.Duration
	FirstPartial time.Duration
	// Wall is the full stream duration, open to terminal event.
	Wall time.Duration
}

// QueryStream runs req over the SSE variant of POST /v1/query, consuming
// the stream to its terminal event. It enforces the stream contract as it
// reads — strictly increasing event ids, a result or error terminal — and
// records one Observation whose Latency is the full stream wall and whose
// FirstEvent feeds the TTFE SLO. A terminal error event surfaces as an
// error carrying the envelope's code and message.
func (c *Client) QueryStream(ctx context.Context, reqBody api.QueryRequest) (*StreamResult, error) {
	const path = "/v1/query"
	data, err := json.Marshal(reqBody)
	if err != nil {
		return nil, fmt.Errorf("scenario: encode stream body: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")

	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.observe(Observation{Scenario: c.scenario, Endpoint: path, Latency: time.Since(start), Failed: true})
		return nil, fmt.Errorf("scenario: POST %s (stream): %w", path, err)
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusTooManyRequests {
		latency := time.Since(start)
		if resp.Header.Get("Retry-After") == "" {
			c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: resp.StatusCode, Latency: latency, Failed: true})
			return nil, fmt.Errorf("scenario: %s shed without Retry-After", path)
		}
		c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: resp.StatusCode, Latency: latency, Shed: true})
		return nil, ErrShed
	}
	fail := func(format string, args ...any) (*StreamResult, error) {
		c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: resp.StatusCode, Latency: time.Since(start), Failed: true})
		return nil, fmt.Errorf("scenario: stream %s: %s", path, fmt.Sprintf(format, args...))
	}
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fail("unexpected status %d: %s", resp.StatusCode, snippet)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return fail("Content-Type = %q, want text/event-stream", ct)
	}

	var (
		out      StreamResult
		gotFinal bool
		lastID   int
		evName   string
		evID     int
		evData   []byte
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			if evID, err = strconv.Atoi(strings.TrimPrefix(line, "id: ")); err != nil {
				return fail("bad SSE id line %q", line)
			}
		case strings.HasPrefix(line, "event: "):
			evName = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			evData = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if evName == "" {
				continue
			}
			if evID <= lastID {
				return fail("event ids must increase: %d after %d", evID, lastID)
			}
			lastID = evID
			out.Events++
			if out.FirstEvent == 0 {
				out.FirstEvent = time.Since(start)
			}
			switch evName {
			case api.EventPartial:
				var p api.PartialEvent
				if err := json.Unmarshal(evData, &p); err != nil {
					return fail("decode partial event: %v", err)
				}
				out.Partials++
				out.PartialDocs += p.Count
				if out.FirstPartial == 0 {
					out.FirstPartial = time.Since(start)
				}
			case api.EventResult:
				if err := json.Unmarshal(evData, &out.Result); err != nil {
					return fail("decode result event: %v", err)
				}
				gotFinal = true
			case api.EventError:
				var env api.ErrorEnvelope
				if err := json.Unmarshal(evData, &env); err != nil {
					return fail("decode error event: %v", err)
				}
				return fail("terminal error event %s: %s", env.Error.Code, env.Error.Message)
			case api.EventProgress, api.EventTrace, api.EventHeartbeat:
			default:
				return fail("unexpected event %q", evName)
			}
			evName, evID, evData = "", 0, nil
		}
	}
	if err := sc.Err(); err != nil {
		return fail("read stream: %v", err)
	}
	if !gotFinal {
		return fail("stream ended without a terminal result event")
	}
	out.Wall = time.Since(start)
	c.observe(Observation{
		Scenario:   c.scenario,
		Endpoint:   path,
		Status:     resp.StatusCode,
		Latency:    out.Wall,
		FirstEvent: out.FirstEvent,
	})
	return &out, nil
}

func (c *Client) do(ctx context.Context, method, path string, body, out any, accept ...int) (int, error) {
	if len(accept) == 0 {
		accept = []int{http.StatusOK}
	}
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, fmt.Errorf("scenario: encode %s body: %w", path, err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}

	start := time.Now()
	resp, err := c.hc.Do(req)
	latency := time.Since(start)
	if err != nil {
		c.observe(Observation{Scenario: c.scenario, Endpoint: path, Latency: latency, Failed: true})
		return 0, fmt.Errorf("scenario: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()

	status := resp.StatusCode
	if status == http.StatusTooManyRequests {
		// A shed must carry Retry-After — that is the documented contract;
		// without it the 429 is a server bug, not graceful degradation.
		if resp.Header.Get("Retry-After") == "" {
			c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: status, Latency: latency, Failed: true})
			return status, fmt.Errorf("scenario: %s shed without Retry-After", path)
		}
		c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: status, Latency: latency, Shed: true})
		return status, ErrShed
	}

	ok := false
	for _, a := range accept {
		if status == a {
			ok = true
			break
		}
	}
	if !ok {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: status, Latency: latency, Failed: true})
		return status, fmt.Errorf("scenario: %s %s: unexpected status %d: %s", method, path, status, snippet)
	}
	if out != nil && status < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: status, Latency: latency, Failed: true})
			return status, fmt.Errorf("scenario: decode %s response: %w", path, err)
		}
	}
	c.observe(Observation{Scenario: c.scenario, Endpoint: path, Status: status, Latency: latency})
	return status, nil
}

func (c *Client) observe(o Observation) {
	if c.rec != nil {
		c.rec.Observe(o)
	}
}
