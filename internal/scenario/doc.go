// Package scenario is the end-to-end scenario harness for the serving
// layer: named, self-describing workloads driven over HTTP against a live
// arynd (or an httptest server in the suite tests).
//
// Each Scenario carries a Name, a Description, and the Paper section it
// exercises, plus three stages:
//
//   - Setup prepares server state the scenario needs (e.g. ensures a
//     corpus is ingested). It runs once per scenario per load run.
//   - Execute performs one unit of the workload — the thing a load
//     generator repeats. Every HTTP request it issues is recorded (status,
//     latency, shed) through the Client's Recorder.
//   - Verify asserts the end-state contract after a run (e.g. documents
//     really landed, counters moved). It runs once, after load stops.
//
// The built-in scenarios (see builtin.go, or `arynload -list`) cover
// multi-corpus ingest, plan→edit→re-execute round-trips, EXPLAIN ANALYZE,
// long conversational sessions with TTL expiry, and overload/429-shed
// behavior — the serving-layer counterparts of the paper's §3 platform,
// §4–5 ETL, and §6 Luna claims.
//
// On top of the registry, Mix + RunLoad form the load-generation layer
// used by cmd/arynload: a Mix names a weighted blend of scenarios and the
// SLO its numbers are checked against (docs/serving-slos.md); RunLoad
// drives the blend at a target rate through a bounded worker pool and
// aggregates per-request latency percentiles, error/shed rates, and the
// server-side LLM cache hit-rate (from /stats deltas) into a Report.
//
// Concurrency: a Client is safe for concurrent use; RunLoad runs
// executions on its own worker goroutines. Scenario Execute funcs must be
// safe to run concurrently with themselves and each other — any cross-
// execution state they keep (question rotation, corpus naming) is atomic.
package scenario
