package rag

import (
	"context"
	"strings"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/embed"
	"aryn/internal/index"
	"aryn/internal/llm"
)

func fixture(t *testing.T) *Pipeline {
	t.Helper()
	store := index.NewStore()
	em := embed.NewHash(1)
	add := func(id string, texts ...string) {
		d := docmodel.New(id)
		if err := store.PutDocument(d); err != nil {
			t.Fatal(err)
		}
		for i, text := range texts {
			err := store.PutChunk(index.Chunk{
				ID: id + "-" + string(rune('a'+i)), ParentID: id,
				Text: text, Vector: em.Embed(text),
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	add("A1",
		"On July 4, 2024 the airplane struck a flock of geese after takeoff.",
		"The NTSB does not assign fault or blame for an accident or incident.")
	add("B2",
		"The pilot lost directional control in gusting crosswinds during landing.",
		"The NTSB does not assign fault or blame for an accident or incident.")
	add("C3",
		"The engine lost power due to fuel exhaustion over mountainous terrain.",
		"The NTSB does not assign fault or blame for an accident or incident.")
	return New(store, llm.NewSim(1), em)
}

func TestAnswerRetrievesAndAnswers(t *testing.T) {
	p := fixture(t)
	resp, err := p.Answer(context.Background(), "Which incidents involved birds?")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Retrieved == 0 {
		t.Fatal("nothing retrieved")
	}
	if !strings.Contains(resp.Answer, "A1") {
		t.Errorf("bird doc not found: %q (%s)", resp.Answer, resp.Text)
	}
	if strings.Contains(resp.Answer, "B2") {
		t.Errorf("non-bird doc leaked: %q", resp.Answer)
	}
}

func TestAnswerRefusesOnPoisonedCauseQuestion(t *testing.T) {
	p := fixture(t)
	resp, err := p.Answer(context.Background(), "How many incidents were due to engine problems?")
	if err != nil {
		t.Fatal(err)
	}
	// Half the corpus chunks are disclaimers; a fault-adjacent question
	// must refuse.
	if !resp.Refused {
		t.Errorf("expected refusal, got: %s", resp.Text)
	}
	if resp.PoisonedChunks == 0 {
		t.Error("poisoned chunk accounting broken")
	}
}

func TestAnswerUsageAccounted(t *testing.T) {
	p := fixture(t)
	resp, err := p.Answer(context.Background(), "How many incidents occurred in July?")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.Calls != 1 || resp.Usage.PromptTokens == 0 {
		t.Errorf("usage = %+v", resp.Usage)
	}
}

func TestKDefaulting(t *testing.T) {
	p := fixture(t)
	p.K = 0
	if _, err := p.Answer(context.Background(), "anything at all"); err != nil {
		t.Fatal(err)
	}
	if p.K != 100 {
		t.Errorf("K should default to 100, got %d", p.K)
	}
}

func TestAnswerLine(t *testing.T) {
	if AnswerLine("blah\nAnswer: 42") != "42" {
		t.Error("basic answer line")
	}
	if AnswerLine("Answer: a\nmore\nAnswer: b") != "b" {
		t.Error("should take the last Answer line")
	}
	if AnswerLine("no marker") != "" {
		t.Error("missing marker should be empty")
	}
}
