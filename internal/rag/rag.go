package rag

import (
	"context"
	"fmt"
	"strings"

	"aryn/internal/embed"
	"aryn/internal/index"
	"aryn/internal/llm"
)

// Pipeline is the RAG baseline.
type Pipeline struct {
	// Store supplies vector retrieval over indexed chunks.
	Store *index.Store
	// Client answers over stuffed context.
	Client llm.Client
	// Embedder embeds the question (must match the ingestion embedder).
	Embedder embed.Embedder
	// K is the retrieval depth (the paper uses k=100).
	K int
}

// New builds the baseline with the paper's k=100 default.
func New(store *index.Store, client llm.Client, embedder embed.Embedder) *Pipeline {
	return &Pipeline{Store: store, Client: client, Embedder: embedder, K: 100}
}

// Response is a RAG answer with retrieval diagnostics.
type Response struct {
	// Text is the model's full reply.
	Text string
	// Answer is the value on the final "Answer:" line ("" if absent).
	Answer string
	// Refused marks a model refusal (context poisoning).
	Refused bool
	// Retrieved is the number of chunks fetched.
	Retrieved int
	// PoisonedChunks counts retrieved chunks carrying the liability
	// disclaimer.
	PoisonedChunks int
	// Usage is the LLM cost of the answer call (zero on a cache hit).
	Usage llm.Usage
	// CacheHit marks an answer served by the call-middleware cache.
	CacheHit bool
}

// Answer runs one question through the pipeline.
func (p *Pipeline) Answer(ctx context.Context, question string) (*Response, error) {
	if p.K <= 0 {
		p.K = 100
	}
	vec := p.Embedder.Embed(question)
	// SearchChunks hits are read-only store snapshots; the loop below only
	// reads chunk text, so the zero-clone path is safe here.
	hits := p.Store.SearchChunks(index.Query{Vector: vec, K: p.K})
	chunks := make([]llm.RAGChunk, 0, len(hits))
	poisoned := 0
	for _, h := range hits {
		chunks = append(chunks, llm.RAGChunk{DocID: h.Chunk.ParentID, Text: h.Chunk.Text})
		if strings.Contains(strings.ToLower(h.Chunk.Text), llm.DisclaimerMarker) {
			poisoned++
		}
	}
	resp, err := p.Client.Complete(ctx, llm.Request{Prompt: llm.RAGPrompt(question, chunks)})
	if err != nil {
		return nil, fmt.Errorf("rag: answer: %w", err)
	}
	return &Response{
		Text:           resp.Text,
		Answer:         AnswerLine(resp.Text),
		Refused:        resp.Refusal,
		Retrieved:      len(chunks),
		PoisonedChunks: poisoned,
		Usage:          resp.Usage,
		CacheHit:       resp.FromCache,
	}, nil
}

// AnswerLine extracts the value after the final "Answer:" marker.
func AnswerLine(text string) string {
	idx := strings.LastIndex(text, "Answer:")
	if idx < 0 {
		return ""
	}
	return strings.TrimSpace(text[idx+len("Answer:"):])
}
