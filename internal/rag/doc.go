// Package rag implements the conventional retrieval-augmented-generation
// baseline of §7.2: embed the question, retrieve the k nearest chunks,
// stuff them into the LLM's context, and ask for an answer. Its failure
// modes — context-window truncation, lost-in-the-middle attention, and
// boilerplate poisoning — are what Table 4 measures Luna against.
//
// Paper counterpart: the RAG baseline of §7.2.
//
// Concurrency: a Pipeline is read-only after configuration and safe for
// concurrent Answer calls; it shares the store's snapshot reads and the
// LLM client chain, both of which are synchronized.
package rag
