package docparse

import (
	"fmt"
	"sort"
	"strings"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
	"aryn/internal/vision"
)

// RenderDetections draws a page's labeled regions as ASCII art — the
// textual analogue of Figure 2's visual DocParse output (labeled bounding
// boxes over an NTSB report page, including table cells).
func RenderDetections(page rawdoc.Page, dets []vision.Detection, cols, rows int) string {
	if cols < 20 {
		cols = 80
	}
	if rows < 10 {
		rows = 48
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	sx := float64(cols-1) / page.Width
	sy := float64(rows-1) / page.Height

	// Draw lower-confidence boxes first so confident labels stay on top.
	ordered := append([]vision.Detection(nil), dets...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Confidence < ordered[j].Confidence })
	for _, d := range ordered {
		x0, y0 := int(d.Box.X0*sx), int(d.Box.Y0*sy)
		x1, y1 := int(d.Box.X1*sx), int(d.Box.Y1*sy)
		x0, y0 = clampInt(x0, 0, cols-1), clampInt(y0, 0, rows-1)
		x1, y1 = clampInt(x1, x0, cols-1), clampInt(y1, y0, rows-1)
		for x := x0; x <= x1; x++ {
			grid[y0][x], grid[y1][x] = '-', '-'
		}
		for y := y0; y <= y1; y++ {
			grid[y][x0], grid[y][x1] = '|', '|'
		}
		grid[y0][x0], grid[y0][x1], grid[y1][x0], grid[y1][x1] = '+', '+', '+', '+'
		label := fmt.Sprintf("%s %.2f", d.Type, d.Confidence)
		for i, ch := range label {
			if x0+1+i >= x1 {
				break
			}
			grid[y0][x0+1+i] = ch
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "page %d (%d regions)\n", page.Number, len(dets))
	for _, row := range grid {
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	return sb.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// DescribeElements renders the parsed element list, one line per chunk —
// the JSON-adjacent inspection view of a parse.
func DescribeElements(doc *docmodel.Document) string {
	var sb strings.Builder
	for i, e := range doc.AllElements() {
		text := e.Text
		if e.Type == docmodel.Picture && e.Image != nil {
			text = "[" + e.Image.Summary + "]"
		}
		text = strings.ReplaceAll(text, "\n", " ")
		if len(text) > 70 {
			text = text[:69] + "…"
		}
		fmt.Fprintf(&sb, "%3d  p%-2d %-15s %s\n", i, e.Page, e.Type.String(), text)
	}
	return sb.String()
}
