package docparse

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
)

// Handler exposes DocParse as the REST service the paper describes (§4:
// "DocParse exposes a simple REST API that takes a document in a common
// format … and returns a collection of labeled chunks").
//
// Routes:
//
//	POST /v1/document/partition        body: rawdoc blob
//	     ?format=json|markdown|elements   (default json)
//	GET  /healthz                      liveness + counters
type Handler struct {
	svc *Service
	mux *http.ServeMux

	parsed atomic.Int64
	failed atomic.Int64
}

// NewHandler wraps a parsing service in the HTTP API.
func NewHandler(svc *Service) *Handler {
	h := &Handler{svc: svc, mux: http.NewServeMux()}
	h.mux.HandleFunc("/v1/document/partition", h.partition)
	h.mux.HandleFunc("/healthz", h.health)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// partitionResponse is the JSON envelope for a parse.
type partitionResponse struct {
	ID       string             `json:"id"`
	Title    string             `json:"title,omitempty"`
	Pages    int                `json:"pages"`
	Elements []partitionElement `json:"elements"`
}

// partitionElement is one labeled chunk.
type partitionElement struct {
	Type       string              `json:"type"`
	Page       int                 `json:"page"`
	BBox       docmodel.BBox       `json:"bbox"`
	Confidence float64             `json:"confidence,omitempty"`
	Text       string              `json:"text,omitempty"`
	Table      *docmodel.TableData `json:"table,omitempty"`
	Image      *docmodel.ImageData `json:"image,omitempty"`
}

func (h *Handler) partition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	const maxBody = 64 << 20 // generous cap for a multi-page document
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxBody))
	if err != nil {
		h.failed.Add(1)
		httpError(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	raw, err := rawdoc.Decode(blob)
	if err != nil {
		h.failed.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	doc, err := h.svc.ParseRaw(raw)
	if err != nil {
		h.failed.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	h.parsed.Add(1)

	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		resp := partitionResponse{ID: doc.ID, Title: doc.Title, Pages: doc.PageCount()}
		for _, e := range doc.AllElements() {
			resp.Elements = append(resp.Elements, partitionElement{
				Type: e.Type.String(), Page: e.Page, BBox: e.Box,
				Confidence: e.Confidence, Text: e.Text, Table: e.Table, Image: e.Image,
			})
		}
		writeJSON(w, http.StatusOK, resp)
	case "markdown":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		io.WriteString(w, doc.Markdown())
	case "elements":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, DescribeElements(doc))
	default:
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q", format))
	}
}

func (h *Handler) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"service": h.svc.Name(),
		"parsed":  h.parsed.Load(),
		"failed":  h.failed.Load(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": strings.TrimSpace(msg)})
}
