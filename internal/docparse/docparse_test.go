package docparse

import (
	"context"
	"strings"
	"testing"

	"aryn/internal/docmodel"
	"aryn/internal/docset"
	"aryn/internal/ntsb"
	"aryn/internal/rawdoc"
	"aryn/internal/vision"
)

func sampleRaw(t *testing.T) (*rawdoc.Doc, *ntsb.Incident) {
	t.Helper()
	incs := ntsb.GenerateIncidents(5, 42)
	inc := &incs[0]
	return ntsb.BuildReport(inc), inc
}

func TestParseRawRecoversStructure(t *testing.T) {
	raw, inc := sampleRaw(t)
	svc := New()
	doc, err := svc.ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != inc.ReportID {
		t.Errorf("id = %s", doc.ID)
	}
	if len(doc.ElementsOfType(docmodel.Table)) == 0 {
		t.Error("no tables recovered")
	}
	if len(doc.ElementsOfType(docmodel.Picture)) == 0 {
		t.Error("no pictures recovered")
	}
	text := doc.TextContent()
	for _, want := range []string{inc.AccidentNumber, inc.Registration, "Probable Cause"} {
		if !strings.Contains(text, want) {
			t.Errorf("parsed text missing %q", want)
		}
	}
	// The header table should round-trip to key/value structure.
	found := false
	for _, e := range doc.ElementsOfType(docmodel.Table) {
		if e.Table != nil {
			if v := e.Table.AsMap()["Aircraft"]; v == inc.Aircraft {
				found = true
			}
		}
	}
	if !found {
		t.Error("header table did not round-trip Aircraft value")
	}
}

func TestPartitionRequiresBinary(t *testing.T) {
	svc := New()
	if _, err := svc.Partition(docmodel.New("empty")); err == nil {
		t.Error("empty binary should error")
	}
	bad := docmodel.New("bad")
	bad.Binary = []byte("not a rawdoc")
	if _, err := svc.Partition(bad); err == nil {
		t.Error("garbage binary should error")
	}
}

func TestPartitionPreservesIdentityAndProps(t *testing.T) {
	raw, _ := sampleRaw(t)
	blob, err := raw.Encode()
	if err != nil {
		t.Fatal(err)
	}
	in := docmodel.New("custom-id")
	in.Binary = blob
	in.Path = "/data/x.rawdoc"
	in.SetProperty("ingest_batch", "b1")
	out, err := New().Partition(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != "custom-id" || out.Path != "/data/x.rawdoc" {
		t.Errorf("identity lost: %s %s", out.ID, out.Path)
	}
	if out.Property("ingest_batch") != "b1" {
		t.Error("pre-set properties lost")
	}
}

func TestPartitionInDocSetPipeline(t *testing.T) {
	corpus, err := ntsb.GenerateCorpus(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := corpus.Blobs()
	if err != nil {
		t.Fatal(err)
	}
	ec := docset.NewContext()
	docs, trace, err := docset.ReadBinary(ec, blobs).Partition(New()).Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != len(blobs) {
		t.Fatalf("parsed %d of %d", len(docs), len(blobs))
	}
	nt := trace.Nodes[1]
	if !strings.Contains(nt.Name, "partition[DocParse") || nt.Out != int64(len(blobs)) {
		t.Errorf("partition trace: %+v", nt)
	}
}

func TestOCRPathForScannedDocs(t *testing.T) {
	raw, _ := sampleRaw(t)
	raw.Meta["scanned"] = "true"
	noisy := New(WithOCRErrorRate(0.3))
	doc, err := noisy.ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := New().ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Some characters must differ under heavy OCR noise.
	if doc.TextContent() == clean.TextContent() {
		t.Error("scanned parse should show OCR corruption")
	}
	// Unscanned docs never corrupt regardless of rate.
	raw.Meta["scanned"] = "false"
	direct, err := New(WithOCRErrorRate(0.9)).ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	direct2, err := New(WithOCRErrorRate(0.0)).ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	if direct.TextContent() != direct2.TextContent() {
		t.Error("direct extraction must ignore OCR error rate")
	}
}

func TestPostprocessNMSAndThreshold(t *testing.T) {
	svc := New(WithMinConfidence(0.5))
	dets := []vision.Detection{
		{Box: docmodel.BBox{X0: 0, Y0: 0, X1: 100, Y1: 20}, Type: docmodel.Text, Confidence: 0.9},
		{Box: docmodel.BBox{X0: 2, Y0: 1, X1: 99, Y1: 21}, Type: docmodel.Text, Confidence: 0.7},   // duplicate
		{Box: docmodel.BBox{X0: 0, Y0: 50, X1: 100, Y1: 70}, Type: docmodel.Text, Confidence: 0.3}, // below threshold
		{Box: docmodel.BBox{X0: 0, Y0: 100, X1: 100, Y1: 120}, Type: docmodel.Title, Confidence: 0.8},
	}
	kept := svc.postprocess(dets)
	if len(kept) != 2 {
		t.Fatalf("postprocess kept %d, want 2", len(kept))
	}
	if kept[0].Type != docmodel.Text || kept[1].Type != docmodel.Title {
		t.Errorf("reading order broken: %+v", kept)
	}
}

func TestCompetitorSegmenterDegradesParse(t *testing.T) {
	raw, _ := sampleRaw(t)
	good, err := New().ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	azure := New(WithSegmenter(vision.NewModel("azure", 1, vision.ProfileAzure())))
	bad, err := azure.ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Weaker segmentation should produce a different (usually noisier)
	// element stream; sanity-check both parsed something.
	if len(good.AllElements()) == 0 || len(bad.AllElements()) == 0 {
		t.Fatal("parses should be non-empty")
	}
	if good.Summary() == bad.Summary() && good.TextContent() == bad.TextContent() {
		t.Error("competitor profile produced an identical parse; noise model inert")
	}
}

func TestRenderDetections(t *testing.T) {
	raw, _ := sampleRaw(t)
	page := raw.Pages[0]
	seg := vision.NewModel("DocParse", 1, vision.ProfileDocParse())
	dets := seg.Segment(page, "r/1")
	art := RenderDetections(page, dets, 90, 50)
	if !strings.Contains(art, "Title") && !strings.Contains(art, "Table") {
		t.Errorf("render missing labels:\n%s", art)
	}
	if !strings.Contains(art, "+") || !strings.Contains(art, "|") {
		t.Error("render missing box art")
	}
	// Degenerate dimensions fall back to defaults.
	if RenderDetections(page, dets, 1, 1) == "" {
		t.Error("fallback render empty")
	}
}

func TestDescribeElements(t *testing.T) {
	raw, inc := sampleRaw(t)
	doc, err := New().ParseRaw(raw)
	if err != nil {
		t.Fatal(err)
	}
	desc := DescribeElements(doc)
	if !strings.Contains(desc, "Table") || !strings.Contains(desc, "Section-header") {
		t.Errorf("element description incomplete:\n%s", desc)
	}
	_ = inc
}
