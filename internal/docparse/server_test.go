package docparse

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func serverFixture(t *testing.T) (*httptest.Server, []byte) {
	t.Helper()
	srv := httptest.NewServer(NewHandler(New()))
	t.Cleanup(srv.Close)
	raw, _ := sampleRaw(t)
	blob, err := raw.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return srv, blob
}

func TestPartitionEndpointJSON(t *testing.T) {
	srv, blob := serverFixture(t)
	resp, err := http.Post(srv.URL+"/v1/document/partition", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out partitionResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Pages < 2 || len(out.Elements) == 0 {
		t.Fatalf("response = %+v", out)
	}
	hasTable := false
	for _, e := range out.Elements {
		if e.Type == "Table" && e.Table != nil && len(e.Table.Cells) > 0 {
			hasTable = true
		}
	}
	if !hasTable {
		t.Error("JSON response should include table structure with cells")
	}
}

func TestPartitionEndpointMarkdown(t *testing.T) {
	srv, blob := serverFixture(t)
	resp, err := http.Post(srv.URL+"/v1/document/partition?format=markdown", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "markdown") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(body.String(), "|") {
		t.Error("markdown should include a rendered table")
	}
}

func TestPartitionEndpointElementsFormat(t *testing.T) {
	srv, blob := serverFixture(t)
	resp, err := http.Post(srv.URL+"/v1/document/partition?format=elements", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	if !strings.Contains(body.String(), "Section-header") {
		t.Errorf("elements listing missing classes:\n%s", body.String())
	}
}

func TestPartitionEndpointErrors(t *testing.T) {
	srv, blob := serverFixture(t)

	// Wrong method.
	resp, err := http.Get(srv.URL + "/v1/document/partition")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", resp.StatusCode)
	}

	// Garbage body.
	resp, err = http.Post(srv.URL+"/v1/document/partition", "application/octet-stream", strings.NewReader("not a rawdoc"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("garbage status = %d", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Errorf("error payload = %v, %v", e, err)
	}

	// Unknown format.
	resp, err = http.Post(srv.URL+"/v1/document/partition?format=yaml", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown format status = %d", resp.StatusCode)
	}
}

func TestHealthEndpointCounters(t *testing.T) {
	srv, blob := serverFixture(t)
	// One success, one failure.
	r1, err := http.Post(srv.URL+"/v1/document/partition", "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	r2, err := http.Post(srv.URL+"/v1/document/partition", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["parsed"].(float64) != 1 || h["failed"].(float64) != 1 {
		t.Errorf("health = %v", h)
	}
}
