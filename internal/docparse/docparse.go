package docparse

import (
	"fmt"
	"sort"

	"aryn/internal/docmodel"
	"aryn/internal/rawdoc"
	"aryn/internal/vision"
)

// Service is the parsing pipeline. It implements docset.Partitioner, so
// `ds.Partition(docparse.New())` is the paper's `partition(DocParse())`.
type Service struct {
	segmenter     vision.Segmenter
	minConfidence float64
	ocrErrorRate  float64 // applied only to scanned documents
	seed          int64
}

// Option configures the service.
type Option func(*Service)

// WithSegmenter swaps the segmentation model (e.g. a competitor profile
// for ablations).
func WithSegmenter(s vision.Segmenter) Option {
	return func(svc *Service) { svc.segmenter = s }
}

// WithMinConfidence drops detections under the threshold (default 0.45).
func WithMinConfidence(c float64) Option {
	return func(svc *Service) { svc.minConfidence = c }
}

// WithOCRErrorRate sets the character error rate applied to documents
// marked scanned (default 0.02).
func WithOCRErrorRate(r float64) Option {
	return func(svc *Service) { svc.ocrErrorRate = r }
}

// WithSeed seeds the model noise (default 1).
func WithSeed(seed int64) Option {
	return func(svc *Service) { svc.seed = seed }
}

// New builds a DocParse service with the paper's own segmentation model.
func New(opts ...Option) *Service {
	svc := &Service{minConfidence: 0.45, ocrErrorRate: 0.02, seed: 1}
	for _, o := range opts {
		o(svc)
	}
	if svc.segmenter == nil {
		svc.segmenter = vision.NewModel("DocParse", svc.seed, vision.ProfileDocParse())
	}
	return svc
}

// Name identifies the partitioner in plans.
func (s *Service) Name() string { return "DocParse/" + s.segmenter.Name() }

// Partition parses the document's raw binary into a labeled element tree.
func (s *Service) Partition(doc *docmodel.Document) (*docmodel.Document, error) {
	if len(doc.Binary) == 0 {
		return nil, fmt.Errorf("docparse: document %s has no binary content", doc.ID)
	}
	raw, err := rawdoc.Decode(doc.Binary)
	if err != nil {
		return nil, fmt.Errorf("docparse: %s: %w", doc.ID, err)
	}
	parsed, err := s.ParseRaw(raw)
	if err != nil {
		return nil, err
	}
	// Preserve identity and any pre-set properties.
	parsed.ID = doc.ID
	parsed.Path = doc.Path
	parsed.Properties = parsed.Properties.Merge(doc.Properties)
	return parsed, nil
}

// ParseRaw runs the full pipeline over an in-memory raw document.
func (s *Service) ParseRaw(raw *rawdoc.Doc) (*docmodel.Document, error) {
	out := docmodel.New(raw.ID)
	out.Title = raw.Title
	scanned := raw.Meta["scanned"] == "true"
	ocrRate := 0.0
	if scanned {
		ocrRate = s.ocrErrorRate
	}
	for _, page := range raw.Pages {
		elements := s.parsePage(raw.ID, page, ocrRate)
		out.Elements = append(out.Elements, elements...)
	}
	if out.Title == "" {
		for _, e := range out.Elements {
			if e.Type == docmodel.Title {
				out.Title = e.Text
				break
			}
		}
	}
	return out, nil
}

// parsePage runs segmentation + per-type extraction for one page.
func (s *Service) parsePage(docID string, page rawdoc.Page, ocrRate float64) []*docmodel.Element {
	pageKey := fmt.Sprintf("%s/%d", docID, page.Number)
	dets := s.segmenter.Segment(page, pageKey)
	dets = s.postprocess(dets)
	// Grid regions own their runs: free-text extraction never re-reads
	// table cells, even when a jittered text box overlaps a table edge.
	grids := vision.DetectTableGrids(page.Rules)

	elements := make([]*docmodel.Element, 0, len(dets))
	for _, det := range dets {
		e := &docmodel.Element{
			Type:       det.Type,
			Page:       page.Number,
			Box:        det.Box,
			Confidence: det.Confidence,
		}
		switch det.Type {
		case docmodel.Table:
			e.Table = vision.TableStructureOCR(page, det.Box, ocrRate, s.seed)
			e.Text = e.Table.Markdown()
		case docmodel.Picture:
			img := findImage(page, det.Box)
			if img != nil {
				e.Image = &docmodel.ImageData{
					Format: img.Format, Width: img.Width, Height: img.Height,
					Summary: vision.SummarizeImage(img),
				}
			}
		default:
			e.Text = vision.ExtractTextExcluding(page, det.Box, grids, ocrRate, s.seed)
		}
		// Regions that captured no content are detector hallucinations;
		// postprocessing drops them from the parse output.
		if e.Text == "" && e.Table == nil && e.Image == nil {
			continue
		}
		elements = append(elements, e)
	}
	return elements
}

// postprocess drops low-confidence detections and suppresses duplicates
// (NMS): overlapping boxes keep only the most confident detection.
func (s *Service) postprocess(dets []vision.Detection) []vision.Detection {
	kept := make([]vision.Detection, 0, len(dets))
	byConf := append([]vision.Detection(nil), dets...)
	sort.SliceStable(byConf, func(i, j int) bool { return byConf[i].Confidence > byConf[j].Confidence })
	for _, d := range byConf {
		if d.Confidence < s.minConfidence {
			continue
		}
		overlap := false
		for _, k := range kept {
			if d.Box.IoU(k.Box) > 0.55 {
				overlap = true
				break
			}
		}
		if !overlap {
			kept = append(kept, d)
		}
	}
	// Restore reading order.
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Box.Y0 != kept[j].Box.Y0 {
			return kept[i].Box.Y0 < kept[j].Box.Y0
		}
		return kept[i].Box.X0 < kept[j].Box.X0
	})
	return kept
}

func findImage(page rawdoc.Page, box docmodel.BBox) *rawdoc.ImageBlob {
	var best *rawdoc.ImageBlob
	bestIoU := 0.0
	for i := range page.Images {
		if iou := page.Images[i].Box.IoU(box); iou > bestIoU {
			bestIoU = iou
			best = &page.Images[i]
		}
	}
	if bestIoU < 0.2 {
		return nil
	}
	return best
}
