// Package docparse implements the paper's DocParse service (§4, Fig. 3):
// a compound pipeline that splits a raw document into pages, runs the
// segmentation model on each rendered page, extracts text per region
// (direct or OCR), applies type-specific processing (table-structure
// recovery, image summarization), and assembles the labeled chunks into a
// parsed Document in reading order.
//
// Paper counterpart: Aryn DocParse, the document-partitioning service of
// §4 (Figures 2–3, Table 1).
//
// Concurrency: a Service is read-only after construction and all
// randomness derives from per-document seeds, so concurrent Partition
// calls are safe — the DocSet partition stage relies on this to fan
// documents across workers.
package docparse
