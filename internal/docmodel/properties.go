package docmodel

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Properties is the JSON-like key/value metadata attached to documents and
// elements. Values are restricted to JSON scalar kinds plus nested maps and
// string slices, mirroring what llmExtract produces.
type Properties map[string]any

// Clone returns a deep copy of the property map.
func (p Properties) Clone() Properties {
	if p == nil {
		return nil
	}
	cp := make(Properties, len(p))
	for k, v := range p {
		cp[k] = cloneValue(v)
	}
	return cp
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case Properties:
		return t.Clone()
	case map[string]any:
		return map[string]any(Properties(t).Clone())
	case []string:
		out := make([]string, len(t))
		copy(out, t)
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = cloneValue(e)
		}
		return out
	default:
		return v
	}
}

// Get returns the raw value for key and whether it was present.
func (p Properties) Get(key string) (any, bool) {
	v, ok := p[key]
	return v, ok
}

// String returns the value for key coerced to a string; missing keys and
// nil values yield "".
func (p Properties) String(key string) string {
	v, ok := p[key]
	if !ok || v == nil {
		return ""
	}
	switch t := v.(type) {
	case string:
		return t
	case float64:
		return strconv.FormatFloat(t, 'f', -1, 64)
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case bool:
		return strconv.FormatBool(t)
	default:
		return fmt.Sprintf("%v", t)
	}
}

// Float returns the value for key coerced to float64.
func (p Properties) Float(key string) (float64, bool) {
	v, ok := p[key]
	if !ok {
		return 0, false
	}
	switch t := v.(type) {
	case float64:
		return t, true
	case int:
		return float64(t), true
	case int64:
		return float64(t), true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// Int returns the value for key coerced to int.
func (p Properties) Int(key string) (int, bool) {
	f, ok := p.Float(key)
	if !ok {
		return 0, false
	}
	return int(f), true
}

// Bool returns the value for key coerced to bool. Strings "true"/"false"
// (any case) coerce; other values do not.
func (p Properties) Bool(key string) (bool, bool) {
	v, ok := p[key]
	if !ok {
		return false, false
	}
	switch t := v.(type) {
	case bool:
		return t, true
	case string:
		b, err := strconv.ParseBool(strings.ToLower(strings.TrimSpace(t)))
		if err != nil {
			return false, false
		}
		return b, true
	default:
		return false, false
	}
}

// Set assigns key = value, allocating the map if needed, and returns the
// (possibly new) map so callers can use p = p.Set(...).
func (p Properties) Set(key string, value any) Properties {
	if p == nil {
		p = make(Properties)
	}
	p[key] = value
	return p
}

// Merge copies every entry of other into p (other wins on conflict) and
// returns the (possibly new) map.
func (p Properties) Merge(other Properties) Properties {
	if len(other) == 0 {
		return p
	}
	if p == nil {
		p = make(Properties, len(other))
	}
	for k, v := range other {
		p[k] = cloneValue(v)
	}
	return p
}

// Keys returns the property names in sorted order.
func (p Properties) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// JSON renders the properties as compact JSON (keys sorted by
// encoding/json's map ordering).
func (p Properties) JSON() string {
	b, err := json.Marshal(p)
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Equal reports deep equality of two property maps.
func (p Properties) Equal(other Properties) bool {
	if len(p) != len(other) {
		return false
	}
	for k, v := range p {
		ov, ok := other[k]
		if !ok || !valueEqual(v, ov) {
			return false
		}
	}
	return true
}

func valueEqual(a, b any) bool {
	switch at := a.(type) {
	case Properties:
		return valueEqualMap(at, b)
	case map[string]any:
		return valueEqualMap(Properties(at), b)
	case []string:
		bt, ok := b.([]string)
		if !ok || len(at) != len(bt) {
			return false
		}
		for i := range at {
			if at[i] != bt[i] {
				return false
			}
		}
		return true
	case []any:
		bt, ok := b.([]any)
		if !ok || len(at) != len(bt) {
			return false
		}
		for i := range at {
			if !valueEqual(at[i], bt[i]) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// valueEqualMap compares a map-shaped value against b, accepting either
// Properties or map[string]any on the right-hand side.
func valueEqualMap(at Properties, b any) bool {
	switch bt := b.(type) {
	case Properties:
		return at.Equal(bt)
	case map[string]any:
		return at.Equal(Properties(bt))
	default:
		return false
	}
}
